open Numeric
open Helpers
module Sh = Pll_lib.Sample_hold
module Pll = Pll_lib.Pll

let pll = pll_of spec_default
let w0 = Pll.omega0 pll

let test_zoh_dc_gain () =
  (* the hold is transparent at dc: A_sh -> A there *)
  let s = Cx.jomega (1e-5 *. w0) in
  check_cx ~tol:1e-4 "A_sh ~ A at dc" (Pll.a_of_s pll s) (Sh.a_of_s pll s)

let test_zoh_sinc_magnitude () =
  (* |A_sh/A| = sinc(wT/2) *)
  let w = 0.3 *. w0 in
  let s = Cx.jomega w in
  let shape = Cx.div (Sh.a_of_s pll s) (Pll.a_of_s pll s) in
  let x = w *. Pll.period pll /. 2.0 in
  check_close ~tol:1e-9 "sinc magnitude" (Float.abs (Special.sinc x)) (Cx.abs shape);
  (* and the hold's half-period delay *)
  check_close ~tol:1e-9 "half-period phase lag" (-.x) (Cx.arg shape)

let test_lambda_exact_vs_truncated () =
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-9 "lambda_sh exact vs truncated"
        (Sh.lambda pll s)
        (Sh.lambda_fn pll (Pll.Truncated 2000) s))
    [ 0.07; 0.23; 0.44 ]

let test_impulse_invariance_zoh () =
  (* L_sh(e^{jwT}) = lambda_sh(jw): matrix exponential vs coth sums *)
  let dm = Sh.discretize pll in
  List.iter
    (fun frac ->
      let w = frac *. w0 in
      check_cx ~tol:1e-12 "zoh identity" (Sh.lambda pll (Cx.jomega w))
        (Sh.open_loop_response dm w))
    [ 0.04; 0.19; 0.33; 0.49 ]

let test_h00_vs_generic_htm () =
  let ctx = Htm_core.Htm.ctx ~n_harm:60 ~omega0:w0 in
  let s = Cx.jomega (0.2 *. w0) in
  let c = Htm_core.Htm.index_of_harmonic ctx 0 in
  let lu = Cmat.get (Htm_core.Htm.to_matrix ctx (Sh.closed_loop_htm pll) s) c c in
  check_cx ~tol:1e-6 "closed form vs LU" (Sh.h00 pll s) lu

let test_h00_tracks_at_dc () =
  let h = Sh.h00 pll (Cx.jomega (1e-4 *. w0)) in
  check_close ~tol:1e-3 "unity tracking" 1.0 (Cx.abs h)

let test_margin_comparison () =
  (* the hold's T/2 delay costs margin relative to the impulse pump *)
  let lam = Pll.lambda_fn pll Pll.Exact in
  let lam_sh = Sh.lambda_fn pll Pll.Exact in
  let pm f =
    let r =
      Lti.Margins.analyze (fun w -> f (Cx.jomega w)) ~lo:(w0 *. 1e-5)
        ~hi:(w0 *. 0.4999)
    in
    Option.get r.Lti.Margins.phase_margin_deg
  in
  let pm_imp = pm lam and pm_sh = pm lam_sh in
  check_true
    (Printf.sprintf "S&H margin (%.1f) well below impulse margin (%.1f)" pm_sh pm_imp)
    (pm_sh < pm_imp -. 8.0);
  (* roughly the held delay: dPM ~ (T/2) * w_ug in degrees *)
  let expected_loss = Stats.deg (0.5 *. Pll.period pll *. 0.1 *. w0) in
  check_close ~tol:0.35 "loss ~ half-period delay" expected_loss (pm_imp -. pm_sh)

let test_graceful_degradation () =
  (* the S&H loop stays (barely) stable beyond the charge pump's Gardner
     collapse: two different failure modes *)
  let fast = pll_of (Pll_lib.Design.with_ratio spec_default 0.32) in
  check_true "impulse loop collapsed" (not (Pll_lib.Analysis.is_stable_tv fast));
  check_true "S&H loop still stable" (Sh.is_stable fast)

let test_discrete_requires_ti_vco () =
  let vco =
    Pll_lib.Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6
      ~harmonics:[ Cx.of_float 0.1 ]
  in
  let p = Pll.make ~fref:1e6 ~n_div:64.0 ~filter:pll.Pll.filter ~vco () in
  Alcotest.check_raises "tv vco rejected"
    (Invalid_argument "Sample_hold.discretize: requires a time-invariant VCO")
    (fun () -> ignore (Sh.discretize p))

let test_experiment () =
  let rows = Experiments.Exp_pfd.compute ~ratios:[ 0.1; 0.3 ] () in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      check_true "zoh identity tiny" (r.Experiments.Exp_pfd.identity_dev < 1e-10))
    rows;
  let r01 = List.hd rows and r03 = List.nth rows 1 in
  check_true "impulse better at 0.1"
    (r01.Experiments.Exp_pfd.pm_impulse > r01.Experiments.Exp_pfd.pm_sh);
  check_true "impulse collapsed at 0.3, S&H not"
    ((not r03.Experiments.Exp_pfd.stable_impulse) && r03.Experiments.Exp_pfd.stable_sh)

let prop_h00_conjugate_symmetry =
  qcheck ~count:20 "H00_sh(-jw) = conj H00_sh(jw)"
    (QCheck2.Gen.float_range 0.01 0.45) (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      Cx.approx ~tol:1e-8 (Sh.h00 pll (Cx.neg s)) (Cx.conj (Sh.h00 pll s)))

let prop_identity_random =
  qcheck ~count:15 "zoh impulse invariance at random designs"
    (QCheck2.Gen.pair (QCheck2.Gen.float_range 0.03 0.4)
       (QCheck2.Gen.float_range 0.01 0.49)) (fun (ratio, frac) ->
      let p = pll_of (Pll_lib.Design.with_ratio spec_default ratio) in
      let dm = Sh.discretize p in
      let w = frac *. Pll.omega0 p in
      Cx.approx ~tol:1e-9 (Sh.lambda p (Cx.jomega w)) (Sh.open_loop_response dm w))

let suite =
  [
    case "dc transparency" test_zoh_dc_gain;
    case "sinc shape and half-period lag" test_zoh_sinc_magnitude;
    case "lambda_sh exact vs truncated" test_lambda_exact_vs_truncated;
    case "zoh impulse invariance" test_impulse_invariance_zoh;
    case "H00 vs generic HTM" test_h00_vs_generic_htm;
    case "tracks at dc" test_h00_tracks_at_dc;
    case "margin cost of the hold" test_margin_comparison;
    case "graceful vs abrupt failure" test_graceful_degradation;
    case "time-varying VCO rejected" test_discrete_requires_ti_vco;
    case "experiment harness" test_experiment;
    prop_h00_conjugate_symmetry;
    prop_identity_random;
  ]
