open Numeric
open Helpers
module Htm = Htm_core.Htm

let ctx3 = Htm.ctx ~n_harm:3 ~omega0:2.0
let s0 = Cx.make 0.1 0.4

let test_ctx () =
  check_int "dim" 7 (Htm.dim ctx3);
  check_int "harmonic of index" (-3) (Htm.harmonic_of_index ctx3 0);
  check_int "index of harmonic" 3 (Htm.index_of_harmonic ctx3 0);
  check_int "round trip" 2 (Htm.harmonic_of_index ctx3 (Htm.index_of_harmonic ctx3 2));
  Alcotest.check_raises "negative n_harm"
    (Invalid_argument "Htm.ctx: n_harm must be >= 0") (fun () ->
      ignore (Htm.ctx ~n_harm:(-1) ~omega0:1.0));
  Alcotest.check_raises "bad omega0"
    (Invalid_argument "Htm.ctx: omega0 must be positive") (fun () ->
      ignore (Htm.ctx ~n_harm:2 ~omega0:0.0))

let test_lti_diagonal () =
  (* eq. 12: H_{m,m}(s) = H(s + j m w0), zero off-diagonal *)
  let h = Htm.lti (fun s -> Cx.inv (Cx.add s Cx.one)) in
  let m = Htm.to_matrix ctx3 h s0 in
  for i = 0 to 6 do
    for k = 0 to 6 do
      if i = k then begin
        let shift = float_of_int (Htm.harmonic_of_index ctx3 i) *. 2.0 in
        let expected = Cx.inv (Cx.add (Cx.add s0 (Cx.jomega shift)) Cx.one) in
        check_cx "diagonal entry" expected (Cmat.get m i k)
      end
      else check_cx "off-diagonal zero" Cx.zero (Cmat.get m i k)
    done
  done;
  check_true "is_lti detects diagonal" (Htm.is_lti ctx3 h s0)

let test_periodic_gain_toeplitz () =
  (* eq. 13: H_{n,m} = P_{n-m} *)
  let coeffs = [| Cx.of_float 0.5; Cx.of_float 2.0; Cx.of_float 0.5 |] in
  let h = Htm.periodic_gain coeffs in
  let m = Htm.to_matrix ctx3 h s0 in
  for i = 0 to 6 do
    for k = 0 to 6 do
      let expected =
        match i - k with
        | 0 -> Cx.of_float 2.0
        | 1 | -1 -> Cx.of_float 0.5
        | _ -> Cx.zero
      in
      check_cx "toeplitz" expected (Cmat.get m i k)
    done
  done;
  check_true "multiplier is not LTI" (not (Htm.is_lti ctx3 h s0));
  Alcotest.check_raises "even coefficient array"
    (Invalid_argument "Htm.periodic_gain: coefficient array must have odd length")
    (fun () -> ignore (Htm.periodic_gain [| Cx.one; Cx.one |]))

let test_sampler () =
  (* eq. 19-20: every entry equals w0/2pi *)
  let m = Htm.to_matrix ctx3 Htm.sampler s0 in
  let expected = Cx.of_float (2.0 /. (2.0 *. Float.pi)) in
  for i = 0 to 6 do
    for k = 0 to 6 do
      check_cx "sampler entry" expected (Cmat.get m i k)
    done
  done

let test_identity_zero_scale () =
  check_true "identity" (Cmat.equal (Cmat.identity 7) (Htm.to_matrix ctx3 Htm.identity s0));
  check_true "zero"
    (Cmat.equal (Cmat.zeros 7 7) (Htm.to_matrix ctx3 Htm.zero s0));
  let h = Htm.scale (Cx.of_float 3.0) Htm.identity in
  check_cx "scale" (Cx.of_float 3.0) (Cmat.get (Htm.to_matrix ctx3 h s0) 2 2)

let test_composition () =
  let a = Htm.lti (fun s -> Cx.add s Cx.one) in
  let b = Htm.periodic_gain [| Cx.zero; Cx.of_float 2.0; Cx.j |] in
  let ma = Htm.to_matrix ctx3 a s0 and mb = Htm.to_matrix ctx3 b s0 in
  (* eq. 11: series = matrix product, left applied second *)
  check_true "series"
    (Cmat.equal (Cmat.mul ma mb) (Htm.to_matrix ctx3 (Htm.series a b) s0));
  (* eq. 10: parallel = sum *)
  check_true "parallel"
    (Cmat.equal (Cmat.add ma mb) (Htm.to_matrix ctx3 (Htm.parallel a b) s0));
  check_true "sub"
    (Cmat.equal (Cmat.sub ma mb) (Htm.to_matrix ctx3 (Htm.sub a b) s0));
  check_true "neg"
    (Cmat.equal (Cmat.neg ma) (Htm.to_matrix ctx3 (Htm.neg a) s0));
  check_true "series_list"
    (Cmat.equal
       (Cmat.mul ma (Cmat.mul mb ma))
       (Htm.to_matrix ctx3 (Htm.series_list [ a; b; a ]) s0));
  check_true "series_list empty is identity"
    (Cmat.equal (Cmat.identity 7) (Htm.to_matrix ctx3 (Htm.series_list []) s0))

let test_feedback () =
  (* feedback of a small-gain LTI block: (I+G)^{-1} G *)
  let g = Htm.lti (fun s -> Cx.div (Cx.of_float 0.5) (Cx.add s Cx.one)) in
  let mg = Htm.to_matrix ctx3 g s0 in
  let expected =
    Lu.solve_mat (Lu.decompose (Cmat.add (Cmat.identity 7) mg)) mg
  in
  check_true "feedback = (I+G)^-1 G"
    (Cmat.equal ~tol:1e-12 expected (Htm.to_matrix ctx3 (Htm.feedback g) s0));
  (* for an LTI block, feedback must agree entrywise with the scalar
     closed loop at shifted frequencies *)
  let fb = Htm.to_matrix ctx3 (Htm.feedback g) s0 in
  for i = 0 to 6 do
    let sh = Cx.add s0 (Cx.jomega (float_of_int (Htm.harmonic_of_index ctx3 i) *. 2.0)) in
    let gv = Cx.div (Cx.of_float 0.5) (Cx.add sh Cx.one) in
    check_cx "scalar closed loop" (Cx.div gv (Cx.add Cx.one gv)) (Cmat.get fb i i)
  done

let test_element_baseband () =
  let h = Htm.periodic_gain [| Cx.of_float 0.25; Cx.one; Cx.of_float 0.75 |] in
  check_cx "element (1,0)" (Cx.of_float 0.75) (Htm.element ctx3 h ~n:1 ~m:0 s0);
  check_cx "element (0,1)" (Cx.of_float 0.25) (Htm.element ctx3 h ~n:0 ~m:1 s0);
  check_cx "baseband" Cx.one (Htm.baseband ctx3 h 0.3);
  Alcotest.check_raises "out of truncation"
    (Invalid_argument "Htm.element: harmonic outside truncation") (fun () ->
      ignore (Htm.element ctx3 h ~n:4 ~m:0 s0))

let test_apply_to_tone () =
  (* multiplier column: content entering band m leaves via P_{n-m} *)
  let coeffs = [| Cx.of_float 0.25; Cx.one; Cx.of_float 0.75 |] in
  let h = Htm.periodic_gain coeffs in
  let col = Htm.apply_to_tone ctx3 h ~m:1 0.3 in
  let expected = Htm_core.Lptv.tone_response_multiplier coeffs ~omega0:2.0 ~m:1 in
  List.iter
    (fun (n, amp) ->
      if abs n <= 3 then
        check_cx
          (Printf.sprintf "band %d" n)
          amp
          (Cvec.get col (Htm.index_of_harmonic ctx3 n)))
    expected

let test_conversion_map () =
  let h = Htm.periodic_gain [| Cx.zero; Cx.one; Cx.of_float 0.5 |] in
  let map = Htm.conversion_map ctx3 h 0.3 in
  check_close "diag" 1.0 map.(2).(2);
  check_close "first lower diag" 0.5 map.(3).(2);
  check_close "upper" 0.0 map.(2).(3)

let test_custom () =
  let h = Htm.custom (fun c _ -> Cmat.identity (Htm.dim c)) in
  check_true "custom" (Cmat.equal (Cmat.identity 7) (Htm.to_matrix ctx3 h s0))

let test_max_singular_value () =
  (* diagonal: sigma_max = max |entry| *)
  let h = Htm.lti (fun s -> s) in
  (* at jw, the diagonal entries are j(w + n w0): the largest modulus is
     at the outermost harmonic *)
  let sv = Htm.max_singular_value ctx3 h 0.5 in
  check_close ~tol:1e-8 "diagonal sigma" (0.5 +. (3.0 *. 2.0)) sv;
  (* rank-one sampler: sigma = (w0/2pi) * dim (|l| * |l|) *)
  let sv2 = Htm.max_singular_value ctx3 Htm.sampler 0.3 in
  check_close ~tol:1e-8 "rank-one sigma" (2.0 /. (2.0 *. Float.pi) *. 7.0) sv2;
  (* identity *)
  check_close ~tol:1e-8 "identity sigma" 1.0 (Htm.max_singular_value ctx3 Htm.identity 1.0);
  (* zero *)
  check_close "zero sigma" 0.0 (Htm.max_singular_value ctx3 Htm.zero 1.0)

let test_max_singular_rank_one_stall () =
  (* regression: the power iteration used to start from the fixed ramp
     v0_i = 1 + 0.1(i+1)j. For a rank-one HTM M = u vᴴ with v ⊥ v0 the
     very first product M v0 is exactly zero, so the old iteration
     stalled and reported σ = 0 instead of |u||v|. The seeded random
     start (plus null-space restarts) must recover the true value. *)
  let ctx1 = Htm.ctx ~n_harm:1 ~omega0:2.0 in
  let v0 = Array.init 3 (fun i -> Cx.make 1.0 (0.1 *. float_of_int (i + 1))) in
  (* vᴴ v0 = conj(v_0) v0_0 + conj(v_1) v0_1 = v0_1 v0_0 - v0_0 v0_1 = 0 *)
  let v = [| Cx.conj v0.(1); Cx.neg (Cx.conj v0.(0)); Cx.zero |] in
  let u = [| Cx.make 0.3 0.7; Cx.make (-1.1) 0.2; Cx.make 0.0 2.0 |] in
  let h =
    Htm.custom (fun c _s ->
        Cmat.init (Htm.dim c) (Htm.dim c) (fun i k ->
            Cx.mul u.(i) (Cx.conj v.(k))))
  in
  let norm a =
    sqrt (Array.fold_left (fun acc z -> acc +. Cx.norm2 z) 0.0 a)
  in
  let expected = norm u *. norm v in
  (* confirm the stall construction: vᴴ v0 is exactly zero *)
  let vh_v0 = ref Cx.zero in
  Array.iteri
    (fun k z -> vh_v0 := Cx.add !vh_v0 (Cx.mul (Cx.conj v.(k)) z))
    v0;
  check_cx "old start vector is in the null space" Cx.zero !vh_v0;
  let sv = Htm.max_singular_value ctx1 h 0.4 in
  check_close ~tol:1e-8 "rank-one sigma recovered" expected sv;
  (* the result is deterministic: same seed, same value *)
  check_true "seeded start is deterministic"
    (sv = Htm.max_singular_value ctx1 h 0.4);
  (* the checked API must certify convergence on the same problem *)
  match Htm.max_singular_value_checked ctx1 h 0.4 with
  | Ok cert ->
      check_true "certificate converged" cert.Htm.converged;
      check_true "certificate residual within tolerance"
        (cert.Htm.residual <= 1e-10 *. (1.0 +. cert.Htm.sigma));
      check_close ~tol:1e-8 "certified sigma matches" expected cert.Htm.sigma
  | Error e ->
      Alcotest.failf "unexpected non-convergence: %s"
        (Robust.Pllscope_error.to_string e)

let test_max_singular_bounds_baseband () =
  (* sigma_max of a multiplier dominates any single element *)
  let h = Htm.periodic_gain [| Cx.of_float 0.4; Cx.one; Cx.of_float 0.4 |] in
  let sv = Htm.max_singular_value ctx3 h 0.2 in
  check_true "sigma >= |H00|" (sv >= Cx.abs (Htm.baseband ctx3 h 0.2) -. 1e-12);
  (* and is bounded by the induced norms *)
  let m = Htm.to_matrix ctx3 h (Cx.jomega 0.2) in
  check_true "sigma <= frobenius" (sv <= Cmat.norm_frobenius m +. 1e-9)

let prop_sampler_rank_one =
  qcheck ~count:20 "sampler rows all equal (rank one)"
    (QCheck2.Gen.int_range 1 6) (fun n ->
      let c = Htm.ctx ~n_harm:n ~omega0:1.5 in
      let m = Htm.to_matrix c Htm.sampler (Cx.make 0.2 0.3) in
      let first = Cmat.row m 0 in
      let ok = ref true in
      for i = 1 to Htm.dim c - 1 do
        let r = Cmat.row m i in
        for k = 0 to Htm.dim c - 1 do
          if not (Cx.approx (Cvec.get first k) (Cvec.get r k)) then ok := false
        done
      done;
      !ok)

let prop_series_associative =
  qcheck ~count:20 "series associative"
    (QCheck2.Gen.triple gen_cx gen_cx gen_cx) (fun (a, b, c) ->
      let ha = Htm.periodic_gain [| a; Cx.one; b |] in
      let hb = Htm.lti (fun s -> Cx.add s c) in
      let hc = Htm.periodic_gain [| b; c; a |] in
      let m1 = Htm.to_matrix ctx3 (Htm.series (Htm.series ha hb) hc) s0 in
      let m2 = Htm.to_matrix ctx3 (Htm.series ha (Htm.series hb hc)) s0 in
      Cmat.equal ~tol:1e-8 m1 m2)

let suite =
  [
    case "context" test_ctx;
    case "LTI diagonal (eq. 12)" test_lti_diagonal;
    case "periodic gain Toeplitz (eq. 13)" test_periodic_gain_toeplitz;
    case "sampler (eqs. 19-20)" test_sampler;
    case "identity/zero/scale" test_identity_zero_scale;
    case "composition (eqs. 10-11)" test_composition;
    case "feedback (eq. 28)" test_feedback;
    case "element access" test_element_baseband;
    case "tone response" test_apply_to_tone;
    case "conversion map" test_conversion_map;
    case "custom block" test_custom;
    case "max singular value" test_max_singular_value;
    case "rank-one null-space stall (regression)" test_max_singular_rank_one_stall;
    case "singular value bounds" test_max_singular_bounds_baseband;
    prop_sampler_rank_one;
    prop_series_associative;
  ]
