open Numeric
open Helpers

let test_basics () =
  let m = Rmat.init 2 3 (fun i k -> float_of_int ((10 * i) + k)) in
  check_int "rows" 2 (Rmat.rows m);
  check_int "cols" 3 (Rmat.cols m);
  check_close "get" 12.0 (Rmat.get m 1 2);
  let t = Rmat.transpose m in
  check_close "transpose" 12.0 (Rmat.get t 2 1);
  check_close "norm_inf" 33.0 (Rmat.norm_inf m)

let test_mul_mv () =
  let a = Rmat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Rmat.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Rmat.mul a b in
  check_close "mul" 19.0 (Rmat.get c 0 0);
  check_close "mul 11" 50.0 (Rmat.get c 1 1);
  let v = Rmat.mv a [| 1.0; 10.0 |] in
  check_close "mv" 21.0 v.(0);
  check_close "mv 1" 43.0 v.(1)

let test_solve_inverse () =
  let a = Rmat.of_rows [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let x = Rmat.solve a [| 18.0; 14.0 |] in
  (* solution of 4x+7y=18, 2x+6y=14: x=1, y=2 *)
  check_close ~tol:1e-10 "solve x" 1.0 x.(0);
  check_close ~tol:1e-10 "solve y" 2.0 x.(1);
  let inv = Rmat.inverse a in
  check_true "inverse" (Rmat.equal ~tol:1e-10 (Rmat.identity 2) (Rmat.mul a inv))

let test_expm_diagonal () =
  let a = Rmat.of_rows [| [| 1.0; 0.0 |]; [| 0.0; -2.0 |] |] in
  let e = Rmat.expm a in
  check_close ~tol:1e-12 "e^1" (exp 1.0) (Rmat.get e 0 0);
  check_close ~tol:1e-12 "e^-2" (exp (-2.0)) (Rmat.get e 1 1);
  check_close ~tol:1e-12 "off-diagonal" 0.0 (Rmat.get e 0 1)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly *)
  let a = Rmat.of_rows [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let e = Rmat.expm a in
  check_close ~tol:1e-14 "upper" 1.0 (Rmat.get e 0 1);
  check_close ~tol:1e-14 "diag" 1.0 (Rmat.get e 0 0)

let test_expm_rotation () =
  (* exp(theta J) = rotation by theta *)
  let theta = 0.7 in
  let a = Rmat.of_rows [| [| 0.0; -.theta |]; [| theta; 0.0 |] |] in
  let e = Rmat.expm a in
  check_close ~tol:1e-12 "cos" (cos theta) (Rmat.get e 0 0);
  check_close ~tol:1e-12 "-sin" (-.sin theta) (Rmat.get e 0 1)

let test_expm_large_norm () =
  (* scaling-and-squaring path: big matrix norm *)
  let a = Rmat.of_rows [| [| -30.0; 0.0 |]; [| 0.0; -40.0 |] |] in
  let e = Rmat.expm a in
  check_close ~tol:1e-10 "e^-30" (exp (-30.0)) (Rmat.get e 0 0);
  check_close ~tol:1e-10 "e^-40" (exp (-40.0)) (Rmat.get e 1 1)

let test_expm_additivity () =
  (* e^{A(s+t)} = e^{As} e^{At} for commuting (same A) exponents *)
  let a = Rmat.of_rows [| [| 0.3; 1.0 |]; [| -0.5; -0.2 |] |] in
  let e1 = Rmat.expm a in
  let e_half = Rmat.expm (Rmat.scale 0.5 a) in
  check_true "semigroup" (Rmat.equal ~tol:1e-11 e1 (Rmat.mul e_half e_half))

let test_char_poly () =
  (* [[2,1],[1,2]]: char poly s^2 - 4s + 3, eigenvalues 1 and 3 *)
  let a = Rmat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let p = Rmat.char_poly a in
  check_cx ~tol:1e-12 "c0" (Cx.of_float 3.0) (Poly.coeff p 0);
  check_cx ~tol:1e-12 "c1" (Cx.of_float (-4.0)) (Poly.coeff p 1);
  check_cx ~tol:1e-12 "c2" Cx.one (Poly.coeff p 2);
  let eigs =
    List.sort (fun x y -> compare (Cx.re x) (Cx.re y)) (Rmat.eigenvalues a)
  in
  (match eigs with
  | [ e1; e2 ] ->
      check_cx ~tol:1e-9 "eig 1" Cx.one e1;
      check_cx ~tol:1e-9 "eig 3" (Cx.of_float 3.0) e2
  | _ -> Alcotest.fail "expected two eigenvalues")

let test_eigenvalues_complex () =
  (* rotation generator: eigenvalues +- j theta *)
  let a = Rmat.of_rows [| [| 0.0; -2.0 |]; [| 2.0; 0.0 |] |] in
  let eigs = Rmat.eigenvalues a in
  check_true "pure imaginary pair"
    (List.for_all (fun e -> Float.abs (Cx.re e) < 1e-9 && Float.abs (Float.abs (Cx.im e) -. 2.0) < 1e-9) eigs)

let prop_char_poly_cayley_hamilton =
  qcheck ~count:30 "trace = -c_{n-1}, det relation"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 9) small_float) (fun xs ->
      let a = Rmat.init 3 3 (fun i k -> xs.((3 * i) + k)) in
      let p = Rmat.char_poly a in
      let trace = Rmat.get a 0 0 +. Rmat.get a 1 1 +. Rmat.get a 2 2 in
      (* char poly of 3x3: s^3 - tr s^2 + ... ; and c0 = -det *)
      Float.abs (Cx.re (Poly.coeff p 2) +. trace) < 1e-7 *. (1.0 +. Float.abs trace))

let suite =
  [
    case "basics" test_basics;
    case "multiplication" test_mul_mv;
    case "solve and inverse" test_solve_inverse;
    case "expm diagonal" test_expm_diagonal;
    case "expm nilpotent" test_expm_nilpotent;
    case "expm rotation" test_expm_rotation;
    case "expm scaling path" test_expm_large_norm;
    case "expm semigroup" test_expm_additivity;
    case "characteristic polynomial" test_char_poly;
    case "complex eigenvalues" test_eigenvalues_complex;
    prop_char_poly_cayley_hamilton;
  ]
