(* The grid-batched plan/execute evaluator (Htm_core.Plan) against the
   per-point paths it replaces:

   - a deterministic randomized generator over every Htm constructor
     (lti, lti_rat, periodic_gain, sampler, identity, zero, scale,
     series, parallel, sub, feedback, custom) asserts that a compiled
     plan agrees entrywise with both Htm.to_matrix and the dense oracle
     Htm.to_matrix_dense to 1e-12, across every structure class and
     feedback nesting the generator can produce;
   - plan reuse is safe: one plan over two grids back-to-back, and a
     re-run of the first grid, are bit-identical to a fresh plan;
   - planned sweeps are pool-size independent: Sweep.grid_local over
     per-lane plans is bit-identical at 1 and 4 domains;
   - Rat.eval_into (the allocation-free split-rational kernel plans are
     built on) is bit-identical to Rat.eval;
   - the grid-plan-nan injection site degrades poisoned points to the
     dense oracle, counted in Robust.Stats, and refuses under --strict;
   - golden regression rows pin a 64-point planned grid of the default
     closed loop at n_harm = 20 against test/golden/fig_metrics.txt;
   - the exact-λ fast path, the HTM-native metrics, and the HTM-native
     noise folding agree with their closed-form counterparts. *)

open Numeric
open Helpers
module Htm = Htm_core.Htm
module Smat = Htm_core.Smat
module Plan = Htm_core.Plan
module Pool = Parallel.Pool
module Sweep = Parallel.Sweep
module E = Robust.Pllscope_error

(* ------------------------------------------------------------------ *)
(* deterministic random expression generator (test_htm_struct's, plus
   lti_rat leaves so the split-rational fill path is exercised)         *)

let rint g n = int_of_float (Prng.float g *. float_of_int n)

let gen_cx_with g scale =
  Cx.make (scale *. Prng.gaussian g) (scale *. Prng.gaussian g)

(* an LTI block bounded on the imaginary axis: (a0 + a1 s)/(s + c) with
   re c >= 0.7, so random feedback loops stay comfortably away from
   exact singularity *)
let gen_lti_parts g =
  let a0 = gen_cx_with g 0.8 and a1 = gen_cx_with g 0.4 in
  let c = Cx.add (Cx.of_float (0.7 +. Float.abs (Prng.gaussian g))) (gen_cx_with g 0.3) in
  let c = Cx.make (Float.abs (Cx.re c) +. 0.7) (Cx.im c) in
  (a0, a1, c)

let gen_lti g =
  let a0, a1, c = gen_lti_parts g in
  Htm.lti (fun s -> Cx.div (Cx.add a0 (Cx.mul a1 s)) (Cx.add s c))

let gen_lti_rat g =
  let a0, a1, c = gen_lti_parts g in
  Htm.lti_rat
    (Rat.make (Poly.of_coeffs [ a0; a1 ]) (Poly.of_coeffs [ c; Cx.one ]))

let gen_periodic g =
  let k = rint g 3 in
  let coeffs = Array.init ((2 * k) + 1) (fun _ -> gen_cx_with g 0.5) in
  Htm.periodic_gain coeffs

let gen_custom g =
  let z1 = gen_cx_with g 0.4 and z2 = gen_cx_with g 0.2 in
  Htm.custom (fun c s ->
      let n = Htm.dim c in
      Cmat.init n n (fun i k ->
          let fade = 1.0 /. float_of_int (1 + abs (i - k)) in
          Cx.scale fade (Cx.add z1 (Cx.mul z2 s))))

let rec gen_expr g depth =
  let leaf () =
    match rint g 7 with
    | 0 -> gen_lti g
    | 1 -> gen_lti_rat g
    | 2 -> gen_periodic g
    | 3 -> Htm.sampler
    | 4 -> Htm.identity
    | 5 -> Htm.zero
    | _ -> gen_custom g
  in
  if depth = 0 then leaf ()
  else
    match rint g 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 -> Htm.scale (gen_cx_with g 0.7) (gen_expr g (depth - 1))
    | 4 | 5 -> Htm.series (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 6 -> Htm.parallel (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 -> Htm.sub (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | _ ->
        (* keep the loop gain small so (I + G) stays well conditioned
           and the 1e-12 agreement bound is meaningful *)
        Htm.feedback (Htm.scale (gen_cx_with g 0.15) (gen_expr g (depth - 1)))

let gen_s g = Cx.make (0.5 *. Prng.gaussian g) (2.0 *. Prng.gaussian g)

(* every test that may touch the global robustness state restores it *)
let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ())
    f

let bits_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits msg a b =
  if not (Cx.is_finite a && Cx.is_finite b) then
    Alcotest.failf "%s: non-finite (%s vs %s)" msg (Cx.to_string a)
      (Cx.to_string b);
  if not (bits_equal (Cx.re a) (Cx.re b) && bits_equal (Cx.im a) (Cx.im b))
  then
    Alcotest.failf "%s: not bit-identical (%s vs %s)" msg (Cx.to_string a)
      (Cx.to_string b)

(* ------------------------------------------------------------------ *)
(* randomized differential: plan = per-point = dense oracle            *)

let test_randomized_plan_vs_oracle () =
  let g = Prng.create ~seed:0x6B1DL in
  let checked = ref 0 in
  for trial = 1 to 120 do
    let n_harm = 1 + rint g 4 in
    let c = Htm.ctx ~n_harm ~omega0:(Prng.uniform g ~lo:1.0 ~hi:3.0) in
    let t = gen_expr g 3 in
    let plan = Plan.make c t in
    (* the same plan is streamed over several points: reuse inside the
       trial is part of what is being tested *)
    for point = 1 to 3 do
      let s = gen_s g in
      match
        (Htm.to_matrix_dense c t s, Htm.to_matrix c t s, Plan.to_cmat plan s)
      with
      | exception Lu.Singular -> () (* all paths raise on exact singularity *)
      | dense, structured, planned ->
          incr checked;
          if not (Cmat.equal ~tol:1e-12 dense planned) then
            Alcotest.failf
              "trial %d point %d (n_harm %d): planned and dense disagree \
               beyond 1e-12"
              trial point n_harm;
          if not (Cmat.equal ~tol:1e-12 structured planned) then
            Alcotest.failf
              "trial %d point %d (n_harm %d): planned and per-point \
               structured disagree beyond 1e-12"
              trial point n_harm;
          (* the element fast path reads off the same plan storage *)
          let n = rint g ((2 * n_harm) + 1) - n_harm in
          check_cx ~tol:1e-12
            (Printf.sprintf "trial %d element" trial)
            (Cmat.get dense (Htm.index_of_harmonic c n)
               (Htm.index_of_harmonic c 0))
            (Plan.element plan ~n ~m:0 s)
    done
  done;
  (* the singular guard must not have eaten the test *)
  check_true "almost all trials checked" (!checked >= 330)

let test_run_grid_matches_dense () =
  let g = Prng.create ~seed:0x9157L in
  for trial = 1 to 12 do
    let n_harm = 1 + rint g 3 in
    let c = Htm.ctx ~n_harm ~omega0:(Prng.uniform g ~lo:1.0 ~hi:3.0) in
    let t = gen_expr g 3 in
    let plan = Plan.make c t in
    let ss = Array.init 9 (fun _ -> gen_s g) in
    match (Plan.run_grid plan ss, Array.map (Htm.to_matrix_dense c t) ss) with
    | exception Lu.Singular -> ()
    | planned, oracle ->
        Array.iteri
          (fun i m ->
            if not (Cmat.equal ~tol:1e-12 oracle.(i) m) then
              Alcotest.failf "trial %d grid point %d disagrees with oracle"
                trial i)
          planned
  done

(* run_grid_ba writes the same values into the Bigarray block, with
   exact zeros off-structure *)
let test_run_grid_ba_matches_eval () =
  let g = Prng.create ~seed:0xBA3L in
  for trial = 1 to 12 do
    let n_harm = 1 + rint g 3 in
    let c = Htm.ctx ~n_harm ~omega0:(Prng.uniform g ~lo:1.0 ~hi:3.0) in
    let t = gen_expr g 2 in
    let plan = Plan.make c t in
    let ss = Array.init 5 (fun _ -> gen_s g) in
    match (Plan.run_grid_ba plan ss, Plan.run_grid plan ss) with
    | exception Lu.Singular -> ()
    | out, boxed ->
        check_int "points" (Plan.Out.points out) (Array.length ss);
        check_int "dim" (Plan.Out.dim out) (Htm.dim c);
        let n = Htm.dim c in
        for p = 0 to Array.length ss - 1 do
          for i = 0 to n - 1 do
            for k = 0 to n - 1 do
              check_bits
                (Printf.sprintf "trial %d ba (%d,%d,%d)" trial p i k)
                (Cmat.get boxed.(p) i k)
                (Plan.Out.get out ~p ~i ~k)
            done
          done
        done
  done

(* ------------------------------------------------------------------ *)
(* plan reuse and pool-size independence                               *)

let closed_loop_fixture () =
  let p = pll_of spec_default in
  let w0 = Pll_lib.Pll.omega0 p in
  let ctx = Htm.ctx ~n_harm:8 ~omega0:w0 in
  (p, w0, ctx)

let test_plan_reuse_bit_identical () =
  let p, w0, ctx = closed_loop_fixture () in
  let t = Pll_lib.Pll.closed_loop_htm p in
  let grid lo hi =
    Array.map Cx.jomega (Optimize.logspace (lo *. w0) (hi *. w0) 48)
  in
  let ss1 = grid 1e-3 0.49 and ss2 = grid 3e-3 0.3 in
  let h00 plan ss =
    Plan.run_grid_map plan
      (fun _ sm -> Smat.get sm (Htm.index_of_harmonic ctx 0) (Htm.index_of_harmonic ctx 0))
      ss
  in
  let plan = Plan.make ctx t in
  let first = h00 plan ss1 in
  let _second = h00 plan ss2 in
  let again = h00 plan ss1 in
  let fresh = h00 (Plan.make ctx t) ss1 in
  Array.iteri
    (fun i v ->
      check_bits (Printf.sprintf "reused plan, point %d" i) first.(i) v;
      check_bits (Printf.sprintf "fresh plan, point %d" i) first.(i) fresh.(i))
    again

let test_pool_size_bit_identical () =
  let p, w0, ctx = closed_loop_fixture () in
  let t = Pll_lib.Pll.closed_loop_htm p in
  let ws = Optimize.logspace (w0 *. 1e-3) (w0 *. 0.49) 160 in
  let sweep pool =
    (* one plan per concurrent lane: with 4 domains and a small chunk
       size several plan instances are live at once *)
    Sweep.grid_local ~pool ~chunk:8
      ~local:(fun () -> Plan.make ctx t)
      (fun plan w -> Plan.baseband plan (Cx.jomega w))
      ws
  in
  let seq =
    let plan = Plan.make ctx t in
    Array.map (fun w -> Plan.baseband plan (Cx.jomega w)) ws
  in
  let one = Pool.with_pool ~domains:1 sweep in
  let four = Pool.with_pool ~domains:4 sweep in
  Array.iteri
    (fun i _ ->
      check_bits (Printf.sprintf "1-domain vs sequential, point %d" i)
        seq.(i) one.(i);
      check_bits (Printf.sprintf "4-domain vs sequential, point %d" i)
        seq.(i) four.(i))
    ws

(* ------------------------------------------------------------------ *)
(* Rat.eval_into: the split kernel under the plan's LTI fills          *)

let test_rat_split_bit_identical () =
  let g = Prng.create ~seed:0x5137L in
  for trial = 1 to 200 do
    let coeffs n = List.init n (fun _ -> gen_cx_with g 1.0) in
    let num = Poly.of_coeffs (coeffs (1 + rint g 4)) in
    let den = Poly.of_coeffs (coeffs (1 + rint g 3) @ [ Cx.one ]) in
    let r = Rat.make num den in
    let sp = Rat.split r in
    for _ = 1 to 5 do
      let x = gen_s g in
      let a = Rat.eval r x and b = Rat.eval_split sp x in
      if Cx.is_finite a then
        check_bits (Printf.sprintf "trial %d" trial) a b
    done
  done

(* ------------------------------------------------------------------ *)
(* fault injection: grid-plan-nan                                      *)

let test_injected_nan_falls_back =
  clean (fun () ->
      let p, w0, ctx = closed_loop_fixture () in
      let t = Pll_lib.Pll.closed_loop_htm p in
      let plan = Plan.make ctx t in
      let ss =
        Array.map Cx.jomega (Optimize.logspace (w0 *. 1e-2) (w0 *. 0.4) 8)
      in
      Robust.Stats.reset ();
      Robust.Inject.configure "grid-plan-nan:1";
      let planned = Plan.run_grid plan ss in
      Robust.Inject.disarm ();
      (* every point — the poisoned one via the dense oracle — must
         still match the reference *)
      Array.iteri
        (fun i s ->
          let oracle = Htm.to_matrix_dense ctx t s in
          if not (Cmat.equal ~tol:1e-9 oracle planned.(i)) then
            Alcotest.failf "point %d disagrees with oracle after injection" i)
        ss;
      let st = Robust.Stats.snapshot () in
      check_int "one dense fallback" 1 st.Robust.Stats.dense_fallbacks;
      check_int "counted as non-finite" 1 st.Robust.Stats.nonfinite_guards)

let test_injected_nan_strict_refuses =
  clean (fun () ->
      let p, w0, ctx = closed_loop_fixture () in
      let t = Pll_lib.Pll.closed_loop_htm p in
      let plan = Plan.make ctx t in
      let s = Cx.jomega (0.1 *. w0) in
      Robust.Inject.configure "grid-plan-nan:1";
      Robust.Config.set_strict true;
      (match Plan.eval plan s with
      | exception E.Error (E.Non_finite _) -> ()
      | exception e ->
          Alcotest.failf "expected typed Non_finite, got %s"
            (Printexc.to_string e)
      | _ -> Alcotest.fail "strict mode accepted an injected NaN");
      Robust.Config.set_strict false;
      Robust.Inject.disarm ();
      (* the plan workspace is still usable after the refusal *)
      let oracle = Htm.to_matrix_dense ctx t s in
      if not (Cmat.equal ~tol:1e-9 oracle (Plan.to_cmat plan s)) then
        Alcotest.fail "plan unusable after strict refusal")

(* ------------------------------------------------------------------ *)
(* golden regression: 64-point planned grid at n_harm = 20             *)

let test_planned_grid_golden () =
  let tbl = Test_golden.load () in
  let check_golden key actual =
    match Hashtbl.find_opt tbl key with
    | None -> Alcotest.failf "golden key %s missing from snapshot" key
    | Some expected -> check_close ~tol:1e-9 key expected actual
  in
  let p = pll_of spec_default in
  let w0 = Pll_lib.Pll.omega0 p in
  let ctx = Htm.ctx ~n_harm:20 ~omega0:w0 in
  let c0 = Htm.index_of_harmonic ctx 0 in
  let ss =
    Array.map Cx.jomega (Optimize.logspace (w0 *. 1e-3) (w0 *. 0.49) 64)
  in
  let plan = Pll_lib.Pll.closed_loop_plan ctx p in
  let h00s = Plan.run_grid_map plan (fun _ sm -> Smat.get sm c0 c0) ss in
  Array.iteri
    (fun i h ->
      check_golden (Printf.sprintf "grid_n20.p%d.re" i) (Cx.re h);
      check_golden (Printf.sprintf "grid_n20.p%d.im" i) (Cx.im h))
    h00s;
  let sm = Plan.eval plan ss.(31) in
  check_golden "grid_n20.p31.h10_re" (Cx.re (Smat.get sm (c0 + 1) c0));
  check_golden "grid_n20.p31.h10_im" (Cx.im (Smat.get sm (c0 + 1) c0));
  check_golden "grid_n20.p31.hm10_re" (Cx.re (Smat.get sm (c0 - 1) c0));
  check_golden "grid_n20.p31.hm10_im" (Cx.im (Smat.get sm (c0 - 1) c0));
  check_golden "grid_n20.p31.frobenius"
    (Cmat.norm_frobenius (Smat.to_cmat sm))

(* ------------------------------------------------------------------ *)
(* exact-λ fast path and the HTM-native analysis entry points          *)

let test_exact_lambda_matches_closed_form () =
  let p = pll_of spec_default in
  let w0 = Pll_lib.Pll.omega0 p in
  let ctx = Htm.ctx ~n_harm:20 ~omega0:w0 in
  let plan = Pll_lib.Pll.closed_loop_plan ctx p in
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-9
        (Printf.sprintf "h00 at %g·ω₀" frac)
        (Pll_lib.Pll.h00 p s) (Plan.baseband plan s))
    [ 1e-3; 0.01; 0.07; 0.2; 0.45 ]

let test_metrics_htm_matches_closed_form () =
  let p = pll_of spec_default in
  let m = Pll_lib.Analysis.closed_loop_metrics p in
  let mh = Pll_lib.Analysis.closed_loop_metrics_htm ~n_harm:12 p in
  check_close ~tol:1e-6 "dc_mag" m.Pll_lib.Analysis.dc_mag
    mh.Pll_lib.Analysis.dc_mag;
  check_close ~tol:1e-6 "peak_db" m.Pll_lib.Analysis.peak_db
    mh.Pll_lib.Analysis.peak_db;
  check_close ~tol:1e-6 "peak_freq" m.Pll_lib.Analysis.peak_freq
    mh.Pll_lib.Analysis.peak_freq;
  match (m.Pll_lib.Analysis.bandwidth_3db, mh.Pll_lib.Analysis.bandwidth_3db)
  with
  | Some a, Some b -> check_close ~tol:1e-6 "bandwidth_3db" a b
  | None, None -> ()
  | _ -> Alcotest.fail "bandwidth_3db presence disagrees"

let test_noise_htm_matches_folded () =
  let p = pll_of spec_default in
  let w0 = Pll_lib.Pll.omega0 p in
  let s_ref = Pll_lib.Noise.lorentzian ~level:1e-12 ~corner:(0.02 *. w0) in
  let ws = [| 0.01 *. w0; 0.05 *. w0; 0.15 *. w0; 0.35 *. w0 |] in
  let htm = Pll_lib.Noise.reference_noise_out_htm p ~n_harm:12 s_ref ws in
  Array.iteri
    (fun i w ->
      let reference = Pll_lib.Noise.reference_noise_out p s_ref w in
      (* n_harm = 12 truncates the folding sum that the reference path
         carries to ±50 bands: agreement is up to the folding tail *)
      check_close ~tol:3e-2
        (Printf.sprintf "S_out at %g" w)
        reference htm.(i))
    ws

let suite =
  [
    case "randomized planned = per-point = dense (1e-12)"
      test_randomized_plan_vs_oracle;
    case "run_grid matches the dense oracle" test_run_grid_matches_dense;
    case "run_grid_ba bit-matches run_grid" test_run_grid_ba_matches_eval;
    case "plan reuse over grids is bit-identical" test_plan_reuse_bit_identical;
    case "planned sweeps pool-size independent (1 vs 4 domains)"
      test_pool_size_bit_identical;
    case "Rat.eval_into bit-identical to Rat.eval" test_rat_split_bit_identical;
    case "grid-plan-nan degrades to the dense oracle"
      test_injected_nan_falls_back;
    case "grid-plan-nan refused under strict mode"
      test_injected_nan_strict_refuses;
    case "64-point planned grid vs snapshot (n=20)" test_planned_grid_golden;
    case "exact-λ plan h00 = closed form" test_exact_lambda_matches_closed_form;
    case "HTM-native metrics = closed-form metrics"
      test_metrics_htm_matches_closed_form;
    case "HTM-native noise folding = reference folding"
      test_noise_htm_matches_folded;
  ]
