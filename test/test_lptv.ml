open Numeric
open Helpers
module Lptv = Htm_core.Lptv

let test_coeffs_of_cos () =
  let period = 2.0 *. Float.pi in
  let coeffs =
    Lptv.coeffs_of_function cos ~period ~max_harmonic:2 ()
  in
  check_int "array length" 5 (Array.length coeffs);
  check_cx ~tol:1e-10 "dc" Cx.zero coeffs.(2);
  check_cx ~tol:1e-10 "k=1" (Cx.of_float 0.5) coeffs.(3);
  check_cx ~tol:1e-10 "k=-1" (Cx.of_float 0.5) coeffs.(1);
  check_cx ~tol:1e-10 "k=2" Cx.zero coeffs.(4)

let test_eval_roundtrip () =
  let period = 1.0 in
  let omega0 = 2.0 *. Float.pi in
  let f t = 0.3 +. cos (omega0 *. t) -. (0.4 *. sin (2.0 *. omega0 *. t)) in
  let coeffs = Lptv.coeffs_of_function f ~period ~max_harmonic:3 () in
  List.iter
    (fun t -> check_close ~tol:1e-9 "reconstruction" (f t) (Lptv.eval_coeffs coeffs ~omega0 t))
    [ 0.0; 0.21; 0.5; 0.93 ]

let test_conj_symmetry () =
  let coeffs =
    Lptv.coeffs_of_function (fun t -> sin t +. cos (2.0 *. t))
      ~period:(2.0 *. Float.pi) ~max_harmonic:3 ()
  in
  check_true "real function symmetric" (Lptv.conj_symmetric coeffs);
  let bad = [| Cx.one; Cx.zero; Cx.j |] in
  check_true "asymmetric detected" (not (Lptv.conj_symmetric bad))

let test_tone_response () =
  let coeffs = [| Cx.of_float 0.2; Cx.one; Cx.j |] in
  let resp = Lptv.tone_response_multiplier coeffs ~omega0:1.0 ~m:2 in
  check_int "three bands" 3 (List.length resp);
  check_cx "band 1 (k=-1)" (Cx.of_float 0.2) (List.assoc 1 resp);
  check_cx "band 2 (k=0)" Cx.one (List.assoc 2 resp);
  check_cx "band 3 (k=+1)" Cx.j (List.assoc 3 resp)

let test_tone_response_skips_zeros () =
  let coeffs = [| Cx.zero; Cx.one; Cx.zero |] in
  let resp = Lptv.tone_response_multiplier coeffs ~omega0:1.0 ~m:0 in
  check_int "only dc passes" 1 (List.length resp)

let prop_parseval_coeffs =
  qcheck ~count:20 "coefficient energy bounded by signal power"
    (QCheck2.Gen.triple small_float small_float small_float) (fun (a, b, c) ->
      let period = 2.0 *. Float.pi in
      let f t = a +. (b *. cos t) +. (c *. sin (3.0 *. t)) in
      let coeffs = Lptv.coeffs_of_function f ~period ~max_harmonic:4 () in
      let coeff_energy =
        Array.fold_left (fun acc z -> acc +. Cx.norm2 z) 0.0 coeffs
      in
      let power =
        Quad.periodic_trapezoid (fun t -> f t ** 2.0) ~period ~n:512 /. period
      in
      (* full Parseval here since all harmonics are captured *)
      Float.abs (coeff_energy -. power) < 1e-6 *. (1.0 +. power))

let suite =
  [
    case "fourier coefficients of cos" test_coeffs_of_cos;
    case "synthesis round trip" test_eval_roundtrip;
    case "conjugate symmetry" test_conj_symmetry;
    case "multiplier tone response" test_tone_response;
    case "zero coefficients skipped" test_tone_response_skips_zeros;
    prop_parseval_coeffs;
  ]
