open Numeric
open Helpers
module Tf = Lti.Tf
module Bode = Lti.Bode
module Margins = Lti.Margins

let test_sweep_first_order () =
  let tf = Tf.first_order_pole 10.0 in
  let pts = Bode.sweep_tf tf ~lo:0.1 ~hi:1000.0 ~points:41 in
  check_int "point count" 41 (Array.length pts);
  (* at dc: 0 dB; at corner: -3 dB; decade above: ~-20 dB *)
  check_close ~tol:0.01 "low-frequency flat" 0.0 pts.(0).Bode.mag_db;
  let at w =
    let best = ref pts.(0) in
    Array.iter
      (fun p ->
        if Float.abs (log (p.Bode.omega /. w)) < Float.abs (log (!best.Bode.omega /. w))
        then best := p)
      pts;
    !best
  in
  check_close ~tol:0.1 "corner -3dB" (-3.0103) (at 10.0).Bode.mag_db;
  check_close ~tol:0.3 "decade above" (-20.04) (at 100.0).Bode.mag_db;
  check_close ~tol:0.5 "corner phase -45" (-45.0) (at 10.0).Bode.phase_deg

let test_unwrap () =
  let wrapped = [| 170.0; -175.0; -160.0 |] in
  let un = Bode.unwrap wrapped in
  check_close "unwrap jump" 185.0 un.(1);
  check_close "unwrap continues" 200.0 un.(2);
  Alcotest.(check (array (float 1e-9))) "empty" [||] (Bode.unwrap [||])

let test_unwrap_monotone_integrator2 () =
  (* double integrator + zero: phase should never jump by 360 *)
  let tf = Tf.mul Tf.double_integrator (Tf.first_order_zero 1.0) in
  let pts = Bode.sweep_tf tf ~lo:0.01 ~hi:100.0 ~points:200 in
  let ok = ref true in
  for i = 1 to 199 do
    if Float.abs (pts.(i).Bode.phase_deg -. pts.(i - 1).Bode.phase_deg) > 90.0 then
      ok := false
  done;
  check_true "no phase jumps" !ok

let test_margins_integrator () =
  (* L = 10/s: crossover at 10 rad/s with 90 deg margin *)
  let tf = Tf.scale 10.0 Tf.integrator in
  let r = Margins.analyze_tf tf ~lo:0.1 ~hi:1000.0 in
  (match r.Margins.unity_gain_freq with
  | Some w -> check_close ~tol:1e-6 "crossover" 10.0 w
  | None -> Alcotest.fail "crossover expected");
  match r.Margins.phase_margin_deg with
  | Some pm -> check_close ~tol:1e-6 "pm 90" 90.0 pm
  | None -> Alcotest.fail "phase margin expected"

let test_margins_second_order () =
  (* L = wn^2 / s^2 would have 0 margin; add a zero for positive margin *)
  let tf = Tf.mul (Tf.scale 100.0 Tf.double_integrator) (Tf.first_order_zero 5.0) in
  let r = Margins.analyze_tf tf ~lo:0.01 ~hi:1000.0 in
  match (r.Margins.unity_gain_freq, r.Margins.phase_margin_deg) with
  | Some w, Some pm ->
      check_true "crossover above 10 (zero boosts gain)" (w >= 10.0);
      let expected = Stats.deg (atan (w /. 5.0)) in
      check_close ~tol:1e-6 "margin is the zero's boost" expected pm
  | _ -> Alcotest.fail "margins expected"

let test_gain_margin () =
  (* third-order loop with finite gain margin:
     L(s) = 8 / (1+s)^3 crosses -180 at w = sqrt(3), |L| there = 1, so
     pick gain 4: GM = 20 log10 (8/4) = 6.02 dB *)
  let pole = Tf.first_order_pole 1.0 in
  let tf = Tf.scale 4.0 (Tf.mul pole (Tf.mul pole pole)) in
  let r = Margins.analyze_tf tf ~lo:0.01 ~hi:100.0 in
  (match r.Margins.phase_cross_freq with
  | Some w -> check_close ~tol:1e-4 "phase crossover at sqrt(3)" (sqrt 3.0) w
  | None -> Alcotest.fail "phase crossover expected");
  match r.Margins.gain_margin_db with
  | Some gm -> check_close ~tol:1e-3 "gain margin 6.02 dB" (Stats.db 2.0) gm
  | None -> Alcotest.fail "gain margin expected"

let test_no_crossover () =
  (* |L| < 1 everywhere: no unity-gain crossover *)
  let tf = Tf.scale 0.1 (Tf.first_order_pole 1.0) in
  let r = Margins.analyze_tf tf ~lo:0.01 ~hi:100.0 in
  check_true "no crossover" (Option.is_none r.Margins.unity_gain_freq);
  check_true "no margin" (Option.is_none r.Margins.phase_margin_deg)

let test_phase_margin_at () =
  let f w = Tf.freq_response (Tf.scale 10.0 Tf.integrator) w in
  check_close ~tol:1e-9 "pm at crossover" 90.0 (Margins.phase_margin_at f 10.0)

let prop_margins_scale_invariance =
  qcheck ~count:20 "crossover moves with gain for an integrator"
    (QCheck2.Gen.float_range 1.0 100.0) (fun k ->
      let r = Margins.analyze_tf (Tf.scale k Tf.integrator) ~lo:0.01 ~hi:1000.0 in
      match r.Lti.Margins.unity_gain_freq with
      | Some w -> Float.abs (w -. k) < 1e-6 *. k
      | None -> false)

let suite =
  [
    case "first-order sweep" test_sweep_first_order;
    case "phase unwrap" test_unwrap;
    case "unwrap on swept system" test_unwrap_monotone_integrator2;
    case "integrator margins" test_margins_integrator;
    case "second-order margins" test_margins_second_order;
    case "gain margin" test_gain_margin;
    case "no crossover" test_no_crossover;
    case "phase_margin_at" test_phase_margin_at;
    prop_margins_scale_invariance;
  ]
