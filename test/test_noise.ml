open Numeric
open Helpers
module Noise = Pll_lib.Noise
module Pll = Pll_lib.Pll

let pll = pll_of spec_default
let w0 = Pll.omega0 pll

let test_psd_shapes () =
  check_close "white" 3.0 (Noise.white 3.0 123.0);
  check_close "1/f^2" 0.25 (Noise.one_over_f2 1.0 2.0);
  check_true "1/f^2 at dc" (Float.is_finite (Noise.one_over_f2 1.0 0.0) = false);
  check_close "lorentzian at dc" 2.0 (Noise.lorentzian ~level:2.0 ~corner:10.0 0.0);
  check_close "lorentzian at corner" 1.0 (Noise.lorentzian ~level:2.0 ~corner:10.0 10.0)

let test_reference_folding_white () =
  (* white reference noise folds: TV output exceeds the LTI prediction
     by roughly the number of folded bands *)
  let s_ref = Noise.white 1.0 in
  let w = 0.05 *. w0 in
  let tv = Noise.reference_noise_out pll ~folds:30 s_ref w in
  let lti = Noise.lti_reference_noise_out pll s_ref w in
  check_true "folding amplifies" (tv > 10.0 *. lti);
  (* with white noise, folding multiplies by exactly (2*folds + 1),
     modulo the H00-vs-LTI-H00 difference; compare against closed form *)
  let h = Cx.abs (Pll.h00 pll (Cx.jomega w)) in
  check_close ~tol:1e-9 "fold count exact" (h *. h *. 61.0) tv

let test_reference_folding_bandlimited () =
  (* noise confined below w0/2 does not fold at all *)
  let s_ref wq = if Float.abs wq < 0.5 *. w0 then 1.0 else 0.0 in
  let w = 0.1 *. w0 in
  let tv = Noise.reference_noise_out pll s_ref w in
  let h = Cx.abs (Pll.h00 pll (Cx.jomega w)) in
  check_close ~tol:1e-9 "no folding for band-limited noise" (h *. h) tv

let test_vco_noise_highpass () =
  (* VCO noise is rejected in-band (error function small at dc) and
     passes out of band *)
  let s_vco = Noise.white 1.0 in
  let low = Noise.vco_noise_out pll ~folds:0 s_vco (1e-4 *. w0) in
  let high = Noise.vco_noise_out pll ~folds:0 s_vco (0.45 *. w0) in
  check_true "suppressed at dc" (low < 0.05);
  check_true "passes out of band" (high > 0.3)

let test_vco_noise_formula () =
  let s_vco = Noise.white 2.0 in
  let w = 0.2 *. w0 in
  let h00 = Pll.h00 pll (Cx.jomega w) in
  let expected =
    (Cx.norm2 (Cx.sub Cx.one h00) *. 2.0)
    +. (Cx.norm2 h00 *. 2.0 *. float_of_int (2 * 5))
  in
  check_close ~tol:1e-9 "error + folded terms" expected
    (Noise.vco_noise_out pll ~folds:5 s_vco w)

let test_jitter_integration () =
  (* analytic check: S = 1/w over [lo, hi] gives sigma^2 = ln(hi/lo)/pi *)
  let s w = 1.0 /. w in
  let sigma = Noise.rms_jitter s ~lo:1.0 ~hi:Float.(exp 1.0) in
  check_close ~tol:1e-6 "log integral" (sqrt (1.0 /. Float.pi)) sigma;
  (* flat PSD: sigma^2 = (hi - lo)/pi *)
  let sigma2 = Noise.rms_jitter (Noise.white 1.0) ~lo:1.0 ~hi:11.0 in
  check_close ~tol:1e-6 "flat integral" (sqrt (10.0 /. Float.pi)) sigma2;
  Alcotest.check_raises "bad range"
    (Invalid_argument "Noise.rms_jitter: need 0 < lo < hi") (fun () ->
      ignore (Noise.rms_jitter s ~lo:0.0 ~hi:1.0))

let test_jitter_monotone_in_band () =
  let s_ref = Noise.white 1e-30 in
  let out w = Noise.reference_noise_out pll s_ref w in
  let j1 = Noise.rms_jitter out ~lo:(1e-3 *. w0) ~hi:(0.1 *. w0) in
  let j2 = Noise.rms_jitter out ~lo:(1e-3 *. w0) ~hi:(0.4 *. w0) in
  check_true "wider band, more jitter" (j2 > j1)

let prop_folding_positive =
  qcheck ~count:15 "output PSDs are nonnegative"
    (QCheck2.Gen.float_range 0.01 0.45) (fun frac ->
      let w = frac *. w0 in
      Noise.reference_noise_out pll (Noise.white 1.0) w >= 0.0
      && Noise.vco_noise_out pll (Noise.one_over_f2 1.0) w >= 0.0)

let suite =
  [
    case "psd prototypes" test_psd_shapes;
    case "reference noise folding (white)" test_reference_folding_white;
    case "band-limited noise does not fold" test_reference_folding_bandlimited;
    case "vco noise is highpass-shaped" test_vco_noise_highpass;
    case "vco noise formula" test_vco_noise_formula;
    case "jitter integration (analytic)" test_jitter_integration;
    case "jitter grows with bandwidth" test_jitter_monotone_in_band;
    prop_folding_positive;
  ]
