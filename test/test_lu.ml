open Numeric
open Helpers

let test_solve_known () =
  (* [[2, 1], [1, 3]] x = [5, 10] -> x = [1, 3] *)
  let a = Cmat.of_rows
      [| [| Cx.of_float 2.0; Cx.of_float 1.0 |];
         [| Cx.of_float 1.0; Cx.of_float 3.0 |] |]
  in
  let x = Lu.solve_system a (Cvec.of_real_array [| 5.0; 10.0 |]) in
  check_cx "x0" Cx.one (Cvec.get x 0);
  check_cx "x1" (Cx.of_float 3.0) (Cvec.get x 1)

let test_complex_solve () =
  (* (1+j) x = 2 -> x = 1 - j *)
  let a = Cmat.of_rows [| [| Cx.make 1.0 1.0 |] |] in
  let x = Lu.solve_system a (Cvec.of_array [| Cx.of_float 2.0 |]) in
  check_cx "complex 1x1" (Cx.make 1.0 (-1.0)) (Cvec.get x 0)

let test_pivoting () =
  (* leading zero pivot forces a row swap *)
  let a = Cmat.of_rows
      [| [| Cx.zero; Cx.one |]; [| Cx.one; Cx.zero |] |]
  in
  let x = Lu.solve_system a (Cvec.of_real_array [| 3.0; 7.0 |]) in
  check_cx "swap x0" (Cx.of_float 7.0) (Cvec.get x 0);
  check_cx "swap x1" (Cx.of_float 3.0) (Cvec.get x 1)

let test_inverse () =
  let a = Cmat.of_rows
      [| [| Cx.of_float 4.0; Cx.of_float 7.0 |];
         [| Cx.of_float 2.0; Cx.of_float 6.0 |] |]
  in
  let inv = Lu.inverse a in
  check_true "A * A^-1 = I" (Cmat.equal ~tol:1e-10 (Cmat.identity 2) (Cmat.mul a inv));
  check_true "A^-1 * A = I" (Cmat.equal ~tol:1e-10 (Cmat.identity 2) (Cmat.mul inv a))

let test_det () =
  let a = Cmat.of_rows
      [| [| Cx.of_float 4.0; Cx.of_float 7.0 |];
         [| Cx.of_float 2.0; Cx.of_float 6.0 |] |]
  in
  check_cx "det 2x2" (Cx.of_float 10.0) (Lu.det a);
  check_cx "det identity" Cx.one (Lu.det (Cmat.identity 5));
  (* determinant changes sign when rows are swapped *)
  let swapped = Cmat.of_rows
      [| [| Cx.of_float 2.0; Cx.of_float 6.0 |];
         [| Cx.of_float 4.0; Cx.of_float 7.0 |] |]
  in
  check_cx "det sign under swap" (Cx.of_float (-10.0)) (Lu.det swapped);
  check_cx "det singular" Cx.zero
    (Lu.det (Cmat.of_rows [| [| Cx.one; Cx.one |]; [| Cx.one; Cx.one |] |]))

let test_singular_raises () =
  let a = Cmat.of_rows [| [| Cx.one; Cx.one |]; [| Cx.one; Cx.one |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_solve_mat () =
  let a = Cmat.of_rows
      [| [| Cx.of_float 2.0; Cx.zero |]; [| Cx.zero; Cx.of_float 4.0 |] |]
  in
  let x = Lu.solve_mat (Lu.decompose a) (Cmat.identity 2) in
  check_cx "diag inverse" (Cx.of_float 0.5) (Cmat.get x 0 0);
  check_cx "diag inverse 2" (Cx.of_float 0.25) (Cmat.get x 1 1)

let prop_solve_residual =
  qcheck ~count:60 "random diagonally-dominant solve has tiny residual"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 12) gen_cx) (fun zs ->
      let n = 3 in
      let a =
        Cmat.init n n (fun i k ->
            let z = zs.((n * i) + k) in
            if i = k then Cx.add z (Cx.of_float 30.0) else z)
      in
      let b = Cvec.of_array (Array.sub zs 9 3) in
      let x = Lu.solve_system a b in
      let r = Cvec.sub (Cmat.mv a x) b in
      Cvec.norm_inf r <= 1e-9 *. (1.0 +. Cvec.norm_inf b))

let prop_det_product =
  qcheck ~count:40 "det multiplicative"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 8) gen_cx) (fun zs ->
      let pick off = Cmat.init 2 2 (fun i k -> zs.((2 * i) + k + off)) in
      let a = pick 0 and b = pick 4 in
      Cx.approx ~tol:1e-7 (Lu.det (Cmat.mul a b)) (Cx.mul (Lu.det a) (Lu.det b)))

let suite =
  [
    case "known 2x2 solve" test_solve_known;
    case "complex solve" test_complex_solve;
    case "pivoting" test_pivoting;
    case "inverse" test_inverse;
    case "determinant" test_det;
    case "singular raises" test_singular_raises;
    case "matrix solve" test_solve_mat;
    prop_solve_residual;
    prop_det_product;
  ]
