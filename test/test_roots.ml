open Numeric
open Helpers

let sort_roots rs =
  List.sort
    (fun a b ->
      match compare (Cx.re a) (Cx.re b) with 0 -> compare (Cx.im a) (Cx.im b) | c -> c)
    rs

let check_roots ?(tol = 1e-6) expected actual =
  let e = sort_roots expected and a = sort_roots actual in
  check_int "root count" (List.length e) (List.length a);
  List.iter2 (fun x y -> check_cx ~tol "root" x y) e a

let test_linear () =
  check_roots [ Cx.of_float (-0.5) ] (Roots.all (Poly.of_real_coeffs [ 1.0; 2.0 ]))

let test_quadratic_real () =
  check_roots
    [ Cx.of_float 2.0; Cx.of_float 3.0 ]
    (Roots.all (Poly.of_real_coeffs [ 6.0; -5.0; 1.0 ]))

let test_quadratic_complex () =
  (* s^2 + 1 = 0 *)
  check_roots [ Cx.neg Cx.j; Cx.j ] (Roots.all (Poly.of_real_coeffs [ 1.0; 0.0; 1.0 ]))

let test_quadratic_repeated () =
  check_roots
    [ Cx.of_float 1.0; Cx.of_float 1.0 ]
    (Roots.all (Poly.of_real_coeffs [ 1.0; -2.0; 1.0 ]))

let test_cubic () =
  let roots = [ Cx.of_float (-1.0); Cx.of_float 2.0; Cx.of_float 5.0 ] in
  check_roots roots (Roots.all (Poly.from_roots roots))

let test_complex_coeffs () =
  let roots = [ Cx.make 1.0 1.0; Cx.make (-2.0) 0.5; Cx.make 0.0 (-3.0) ] in
  check_roots ~tol:1e-5 roots (Roots.all (Poly.from_roots roots))

let test_high_degree () =
  (* s^6 - 1: the sixth roots of unity *)
  let p = Poly.of_real_coeffs [ -1.0; 0.0; 0.0; 0.0; 0.0; 0.0; 1.0 ] in
  let roots = Roots.all p in
  check_int "count" 6 (List.length roots);
  List.iter
    (fun r ->
      check_close ~tol:1e-8 "on unit circle" 1.0 (Cx.abs r);
      check_cx ~tol:1e-8 "is a root" Cx.zero (Poly.eval p r))
    roots

let test_scaled_invariance () =
  let p = Poly.scale (Cx.of_float 1e6) (Poly.from_roots [ Cx.one; Cx.j ]) in
  check_roots ~tol:1e-6 [ Cx.one; Cx.j ] (Roots.all p)

let test_constant_and_zero () =
  check_int "constant has no roots" 0 (List.length (Roots.all Poly.one));
  Alcotest.check_raises "zero polynomial"
    (Invalid_argument "Roots.all: zero polynomial") (fun () ->
      ignore (Roots.all Poly.zero))

let test_newton_polish () =
  let p = Poly.from_roots [ Cx.of_float 2.0 ] in
  let z = Roots.newton_polish p (Cx.of_float 1.5) in
  check_cx ~tol:1e-12 "newton converges" (Cx.of_float 2.0) z

let test_cluster () =
  let grouped =
    Roots.cluster
      [ Cx.of_float 1.0; Cx.of_float 1.0000001; Cx.of_float 5.0 ]
  in
  check_int "two clusters" 2 (List.length grouped);
  let m1 = List.assoc_opt true (List.map (fun (r, m) -> (Cx.abs (Cx.sub r Cx.one) < 0.01, m)) grouped) in
  Alcotest.(check (option int)) "double root multiplicity" (Some 2) m1

let prop_roots_recovered =
  qcheck ~count:40 "roots of from_roots recovered"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4)
       (QCheck2.Gen.map2 Cx.make
          (QCheck2.Gen.float_range (-3.0) 3.0)
          (QCheck2.Gen.float_range (-3.0) 3.0)))
    (fun roots ->
      (* keep roots pairwise separated so matching is well-posed *)
      let separated =
        List.for_all
          (fun a ->
            List.for_all (fun b -> a == b || Cx.abs (Cx.sub a b) > 0.3) roots)
          roots
      in
      QCheck2.assume separated;
      let p = Poly.from_roots roots in
      let found = Roots.all p in
      List.for_all
        (fun r ->
          List.exists (fun f -> Cx.abs (Cx.sub r f) < 1e-4) found)
        roots)

let prop_root_residual =
  qcheck ~count:40 "every returned root nearly annihilates p" gen_poly
    (fun p ->
      QCheck2.assume (Poly.degree p >= 1);
      (* normalize: coefficient scale for residual comparison *)
      let scale_mag =
        Array.fold_left (fun m c -> Stdlib.max m (Cx.abs c)) 1.0 (Poly.coeffs p)
      in
      List.for_all
        (fun r -> Cx.abs (Poly.eval p r) <= 1e-4 *. scale_mag *. (1.0 +. (Cx.abs r ** float_of_int (Poly.degree p))))
        (Roots.all p))

let suite =
  [
    case "linear" test_linear;
    case "quadratic real" test_quadratic_real;
    case "quadratic complex" test_quadratic_complex;
    case "quadratic repeated" test_quadratic_repeated;
    case "cubic" test_cubic;
    case "complex coefficients" test_complex_coeffs;
    case "sixth roots of unity" test_high_degree;
    case "scaling invariance" test_scaled_invariance;
    case "degenerate inputs" test_constant_and_zero;
    case "newton polish" test_newton_polish;
    case "clustering" test_cluster;
    prop_roots_recovered;
    prop_root_residual;
  ]
