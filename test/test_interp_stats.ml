open Numeric
open Helpers

let test_linear_interp () =
  let xs = [| 0.0; 1.0; 3.0 |] and ys = [| 0.0; 10.0; 30.0 |] in
  check_close "at node" 10.0 (Interp.linear xs ys 1.0);
  check_close "between" 5.0 (Interp.linear xs ys 0.5);
  check_close "uneven spacing" 20.0 (Interp.linear xs ys 2.0);
  check_close "clamp low" 0.0 (Interp.linear xs ys (-5.0));
  check_close "clamp high" 30.0 (Interp.linear xs ys 99.0)

let test_uniform_interp () =
  let ys = [| 0.0; 1.0; 4.0; 9.0 |] in
  check_close "node" 4.0 (Interp.uniform ~t0:0.0 ~dt:1.0 ys 2.0);
  check_close "midpoint" 2.5 (Interp.uniform ~t0:0.0 ~dt:1.0 ys 1.5);
  check_close "offset origin" 1.0 (Interp.uniform ~t0:10.0 ~dt:1.0 ys 11.0)

let test_resample () =
  let xs = [| 0.0; 2.0; 4.0 |] and ys = [| 0.0; 4.0; 8.0 |] in
  let t0, dt, samples = Interp.resample_uniform xs ys ~n:5 in
  check_close "t0" 0.0 t0;
  check_close "dt" 1.0 dt;
  check_close "sample 3" 6.0 samples.(3)

let test_stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "mean" 2.5 (Stats.mean xs);
  check_close "variance" 1.25 (Stats.variance xs);
  check_close "std" (sqrt 1.25) (Stats.std_dev xs);
  check_close "rms" (sqrt 7.5) (Stats.rms xs);
  check_close "max_abs" 4.0 (Stats.max_abs [| -4.0; 3.0 |])

let test_rel_err () =
  check_close "rel_err" 0.1 (Stats.rel_err 9.0 10.0);
  check_close "rel_err zero safe" 0.0 (Stats.rel_err 0.0 0.0);
  check_close "max_rel_err" 0.5
    (Stats.max_rel_err [| 1.0; 2.0 |] [| 1.0; 4.0 |])

let test_db_deg () =
  check_close "db of 10" 20.0 (Stats.db 10.0);
  check_close "of_db round trip" 3.0 (Stats.of_db (Stats.db 3.0));
  check_close "deg" 180.0 (Stats.deg Float.pi);
  check_close "rad" Float.pi (Stats.rad 180.0)

let prop_interp_exact_on_linear =
  qcheck ~count:40 "linear interp exact on affine data"
    (QCheck2.Gen.triple small_float small_float (QCheck2.Gen.float_range 0.0 5.0))
    (fun (a, b, x) ->
      let xs = [| 0.0; 1.0; 2.0; 5.0 |] in
      let ys = Array.map (fun t -> (a *. t) +. b) xs in
      let expected = (a *. x) +. b in
      Float.abs (Interp.linear xs ys x -. expected)
      < 1e-9 *. (1.0 +. Float.abs expected))

let suite =
  [
    case "linear interpolation" test_linear_interp;
    case "uniform-grid interpolation" test_uniform_interp;
    case "resampling" test_resample;
    case "stats basics" test_stats_basics;
    case "relative error" test_rel_err;
    case "dB and degrees" test_db_deg;
    prop_interp_exact_on_linear;
  ]
