(* Golden regression tests: the paper-facing numbers (closed-loop
   bandwidth/peaking, effective phase margins, Fig. 4 pulse-vs-impulse
   rows) are snapshot in test/golden/fig_metrics.txt and recomputed here
   on the shared parallel pool with tolerance 1e-9 — so refactors of the
   sweep machinery (parallelization included) provably preserve the
   reproduction. Regenerate an intentionally changed snapshot with
   tools/gen_golden. *)

open Helpers

let golden_path = "golden/fig_metrics.txt"

let load () =
  let tbl = Hashtbl.create 64 in
  let ic = open_in golden_path in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then begin
         match String.index_opt line ' ' with
         | None -> Alcotest.failf "malformed golden line: %s" line
         | Some i ->
             let k = String.sub line 0 i in
             let v =
               float_of_string
                 (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
             in
             Hashtbl.replace tbl k v
       end
     done
   with End_of_file -> ());
  close_in ic;
  tbl

let check_golden tbl key actual =
  match Hashtbl.find_opt tbl key with
  | None -> Alcotest.failf "golden key %s missing from %s" key golden_path
  | Some expected ->
      if Float.is_nan expected then
        check_true (key ^ " (nan)") (Float.is_nan actual)
      else check_close ~tol:1e-9 key expected actual

let test_metrics_golden () =
  let tbl = load () in
  let spec = Pll_lib.Design.default_spec in
  List.iter
    (fun ratio ->
      let p = Pll_lib.Design.synthesize (Pll_lib.Design.with_ratio spec ratio) in
      let m = Pll_lib.Analysis.closed_loop_metrics p in
      let eff = Pll_lib.Analysis.effective_report p in
      let key fmt = Printf.sprintf "ratio_%g.%s" ratio fmt in
      check_golden tbl (key "dc_mag") m.Pll_lib.Analysis.dc_mag;
      check_golden tbl (key "peak_db") m.Pll_lib.Analysis.peak_db;
      check_golden tbl (key "peak_freq") m.Pll_lib.Analysis.peak_freq;
      check_golden tbl (key "bandwidth_3db")
        (Option.value ~default:Float.nan m.Pll_lib.Analysis.bandwidth_3db);
      check_golden tbl (key "pm_eff_deg")
        (Option.value ~default:Float.nan eff.Pll_lib.Analysis.phase_margin_deg);
      check_golden tbl (key "omega_ug_eff")
        (Option.value ~default:Float.nan eff.Pll_lib.Analysis.omega_ug))
    [ 0.05; 0.1; 0.2 ]

let test_fig4_golden () =
  let tbl = load () in
  List.iter
    (fun r ->
      let key fmt =
        Printf.sprintf "fig4_w%g.%s" r.Experiments.Exp_fig4.width_frac fmt
      in
      check_golden tbl (key "theta_pulse") r.Experiments.Exp_fig4.theta_pulse;
      check_golden tbl (key "theta_impulse") r.Experiments.Exp_fig4.theta_impulse;
      check_golden tbl (key "rel_err") r.Experiments.Exp_fig4.rel_err)
    (Experiments.Exp_fig4.compute ())

let suite =
  [
    case "closed-loop + effective-margin metrics vs snapshot" test_metrics_golden;
    case "fig4 pulse-vs-impulse rows vs snapshot" test_fig4_golden;
  ]
