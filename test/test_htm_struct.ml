(* The structured HTM evaluator (Htm.structured / Smat) against the
   dense reference oracle (Htm.to_matrix_dense):

   - a deterministic randomized generator over every Htm constructor
     (lti, periodic_gain, sampler, identity, zero, scale, series,
     parallel, sub, feedback, custom) asserts entrywise agreement to
     1e-12 at random complex frequencies;
   - the composition rules must stay low in the structure lattice
     (LTI chains diagonal, periodic gains banded, the sampled closed
     loop rank one all the way through feedback);
   - golden regression rows pin the closed-loop rank-one kernel at
     n_harm = 20 against test/golden/fig_metrics.txt, for both the
     analytic Sherman–Morrison form and the structured evaluation of
     the generic feedback HTM. *)

open Numeric
open Helpers
module Htm = Htm_core.Htm
module Smat = Htm_core.Smat

(* ------------------------------------------------------------------ *)
(* deterministic random expression generator                           *)

let rint g n = int_of_float (Prng.float g *. float_of_int n)

let gen_cx_with g scale =
  Cx.make (scale *. Prng.gaussian g) (scale *. Prng.gaussian g)

(* an LTI block bounded on the imaginary axis: (a0 + a1 s)/(s + c) with
   re c >= 0.7, so random feedback loops stay comfortably away from
   exact singularity *)
let gen_lti g =
  let a0 = gen_cx_with g 0.8 and a1 = gen_cx_with g 0.4 in
  let c = Cx.add (Cx.of_float (0.7 +. Float.abs (Prng.gaussian g))) (gen_cx_with g 0.3) in
  let c = Cx.make (Float.abs (Cx.re c) +. 0.7) (Cx.im c) in
  Htm.lti (fun s -> Cx.div (Cx.add a0 (Cx.mul a1 s)) (Cx.add s c))

let gen_periodic g =
  let k = rint g 3 in
  let coeffs = Array.init ((2 * k) + 1) (fun _ -> gen_cx_with g 0.5) in
  Htm.periodic_gain coeffs

let gen_custom g =
  let z1 = gen_cx_with g 0.4 and z2 = gen_cx_with g 0.2 in
  Htm.custom (fun c s ->
      let n = Htm.dim c in
      Cmat.init n n (fun i k ->
          let fade = 1.0 /. float_of_int (1 + abs (i - k)) in
          Cx.scale fade (Cx.add z1 (Cx.mul z2 s))))

let rec gen_expr g depth =
  let leaf () =
    match rint g 6 with
    | 0 -> gen_lti g
    | 1 -> gen_periodic g
    | 2 -> Htm.sampler
    | 3 -> Htm.identity
    | 4 -> Htm.zero
    | _ -> gen_custom g
  in
  if depth = 0 then leaf ()
  else
    match rint g 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 -> Htm.scale (gen_cx_with g 0.7) (gen_expr g (depth - 1))
    | 4 | 5 -> Htm.series (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 6 -> Htm.parallel (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 -> Htm.sub (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | _ ->
        (* keep the loop gain small so (I + G) stays well conditioned
           and the 1e-12 agreement bound is meaningful *)
        Htm.feedback (Htm.scale (gen_cx_with g 0.15) (gen_expr g (depth - 1)))

let gen_s g = Cx.make (0.5 *. Prng.gaussian g) (2.0 *. Prng.gaussian g)

let test_randomized_equivalence () =
  let g = Prng.create ~seed:0xA11CEL in
  let checked = ref 0 in
  for trial = 1 to 120 do
    let n_harm = 1 + rint g 4 in
    let c = Htm.ctx ~n_harm ~omega0:(Prng.uniform g ~lo:1.0 ~hi:3.0) in
    let t = gen_expr g 3 in
    let s = gen_s g in
    match (Htm.to_matrix_dense c t s, Htm.to_matrix c t s) with
    | exception Lu.Singular -> () (* both paths raise on exact singularity *)
    | dense, structured ->
        incr checked;
        if not (Cmat.equal ~tol:1e-12 dense structured) then
          Alcotest.failf
            "trial %d (n_harm %d): structured and dense evaluations disagree \
             beyond 1e-12"
            trial n_harm
  done;
  (* the singular guard must not have eaten the test *)
  check_true "almost all trials checked" (!checked >= 110)

let test_fast_paths_match_dense () =
  let g = Prng.create ~seed:0xFA57L in
  for trial = 1 to 40 do
    let n_harm = 1 + rint g 3 in
    let c = Htm.ctx ~n_harm ~omega0:(Prng.uniform g ~lo:1.0 ~hi:3.0) in
    let t = gen_expr g 2 in
    let w = Prng.uniform g ~lo:0.0 ~hi:3.0 in
    match Htm.to_matrix_dense c t (Cx.jomega w) with
    | exception Lu.Singular -> ()
    | dense ->
        let name fmt = Printf.sprintf "trial %d: %s" trial fmt in
        (* element fast path reads one entry without densifying *)
        for n = -n_harm to n_harm do
          check_cx ~tol:1e-12 (name "element")
            (Cmat.get dense (Htm.index_of_harmonic c n) (Htm.index_of_harmonic c 0))
            (Htm.element c t ~n ~m:0 (Cx.jomega w))
        done;
        (* apply_to_tone fast path extracts one structured column *)
        let m = rint g ((2 * n_harm) + 1) - n_harm in
        let col = Htm.apply_to_tone c t ~m w in
        for i = 0 to Htm.dim c - 1 do
          check_cx ~tol:1e-12 (name "apply_to_tone")
            (Cmat.get dense i (Htm.index_of_harmonic c m))
            (Cvec.get col i)
        done
  done

let test_structure_preserved () =
  let ctx = Htm.ctx ~n_harm:6 ~omega0:2.0 in
  let s = Cx.make 0.1 0.5 in
  let shape t = Smat.shape (Htm.structured ctx t s) in
  (* LTI chains stay diagonal *)
  let lti1 = Htm.lti (fun s -> Cx.inv (Cx.add s Cx.one)) in
  let lti2 = Htm.lti (fun s -> Cx.add s (Cx.of_float 2.0)) in
  check_true "lti is diag" (shape lti1 = `Diag);
  check_true "lti series stays diag" (shape (Htm.series lti1 lti2) = `Diag);
  check_true "lti feedback stays diag" (shape (Htm.feedback lti1) = `Diag);
  (* periodic gains stay banded, with bandwidths adding under series *)
  let pg = Htm.periodic_gain [| Cx.of_float 0.2; Cx.one; Cx.of_float 0.3 |] in
  check_true "periodic gain is band 1" (shape pg = `Band 1);
  check_true "band·band adds bandwidth" (shape (Htm.series pg pg) = `Band 2);
  check_true "diag·band stays band" (shape (Htm.series lti1 pg) = `Band 1);
  (* the sampler is rank one and everything times it stays rank one,
     through the Sherman–Morrison feedback included *)
  check_true "sampler is rank one" (shape Htm.sampler = `Rank1);
  let open_loop = Htm.series (Htm.series lti1 pg) Htm.sampler in
  check_true "chain·sampler stays rank one" (shape open_loop = `Rank1);
  check_true "closed loop stays rank one" (shape (Htm.feedback open_loop) = `Rank1)

(* ------------------------------------------------------------------ *)
(* golden regression: closed-loop rank-one kernel at n_harm = 20       *)

let check_golden tbl key actual =
  match Hashtbl.find_opt tbl key with
  | None -> Alcotest.failf "golden key %s missing from snapshot" key
  | Some expected -> check_close ~tol:1e-9 key expected actual

let test_closed_loop_rank_one_golden () =
  let tbl = Test_golden.load () in
  let p = Pll_lib.Design.synthesize Pll_lib.Design.default_spec in
  let w0 = Pll_lib.Pll.omega0 p in
  let ctx = Htm.ctx ~n_harm:20 ~omega0:w0 in
  let c0 = Htm.index_of_harmonic ctx 0 in
  let cl = Pll_lib.Pll.closed_loop_htm p in
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      let key fmt = Printf.sprintf "cl_r1_n20_w%g.%s" frac fmt in
      (* the analytic Sherman–Morrison form ... *)
      let m = Pll_lib.Pll.closed_loop_rank_one ctx p s in
      check_golden tbl (key "h00_re") (Cx.re (Cmat.get m c0 c0));
      check_golden tbl (key "h00_im") (Cx.im (Cmat.get m c0 c0));
      check_golden tbl (key "h10_re") (Cx.re (Cmat.get m (c0 + 1) c0));
      check_golden tbl (key "h10_im") (Cx.im (Cmat.get m (c0 + 1) c0));
      check_golden tbl (key "hm10_re") (Cx.re (Cmat.get m (c0 - 1) c0));
      check_golden tbl (key "hm10_im") (Cx.im (Cmat.get m (c0 - 1) c0));
      check_golden tbl (key "frobenius") (Cmat.norm_frobenius m);
      (* ... and the structured evaluation of the generic feedback HTM
         must land on the same snapshot *)
      let ms = Htm.to_matrix ctx cl s in
      check_golden tbl (key "h00_re") (Cx.re (Cmat.get ms c0 c0));
      check_golden tbl (key "h00_im") (Cx.im (Cmat.get ms c0 c0));
      check_golden tbl (key "h10_re") (Cx.re (Cmat.get ms (c0 + 1) c0));
      check_golden tbl (key "h10_im") (Cx.im (Cmat.get ms (c0 + 1) c0));
      check_golden tbl (key "hm10_re") (Cx.re (Cmat.get ms (c0 - 1) c0));
      check_golden tbl (key "hm10_im") (Cx.im (Cmat.get ms (c0 - 1) c0));
      check_golden tbl (key "frobenius") (Cmat.norm_frobenius ms))
    [ 0.07; 0.2; 0.45 ]

let suite =
  [
    case "randomized structured = dense (1e-12)" test_randomized_equivalence;
    case "element/apply_to_tone fast paths" test_fast_paths_match_dense;
    case "structure lattice preserved" test_structure_preserved;
    case "closed-loop rank-one kernel vs snapshot (n=20)"
      test_closed_loop_rank_one_golden;
  ]
