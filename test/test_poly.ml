open Numeric
open Helpers

let p123 = Poly.of_real_coeffs [ 1.0; 2.0; 3.0 ] (* 1 + 2s + 3s^2 *)

let test_construction () =
  check_int "degree" 2 (Poly.degree p123);
  check_int "zero degree" (-1) (Poly.degree Poly.zero);
  check_true "zero is_zero" (Poly.is_zero Poly.zero);
  check_true "trailing zeros trimmed"
    (Poly.degree (Poly.of_real_coeffs [ 1.0; 0.0; 0.0 ]) = 0);
  check_cx "coeff" (Cx.of_float 2.0) (Poly.coeff p123 1);
  check_cx "coeff beyond" Cx.zero (Poly.coeff p123 7);
  check_int "monomial degree" 3 (Poly.degree (Poly.monomial Cx.one 3));
  check_true "monomial of zero" (Poly.is_zero (Poly.monomial Cx.zero 3));
  check_int "s" 1 (Poly.degree Poly.s)

let test_eval () =
  check_cx "eval at 0" Cx.one (Poly.eval p123 Cx.zero);
  check_cx "eval at 2" (Cx.of_float 17.0) (Poly.eval p123 (Cx.of_float 2.0));
  check_cx "eval at j" (Cx.make (-2.0) 2.0) (Poly.eval p123 Cx.j);
  check_cx "eval zero poly" Cx.zero (Poly.eval Poly.zero (Cx.of_float 5.0))

let test_arith () =
  let q = Poly.of_real_coeffs [ 0.0; 1.0 ] in
  check_cx "add" (Cx.of_float 3.0) (Poly.coeff (Poly.add p123 q) 1);
  check_true "sub self" (Poly.is_zero (Poly.sub p123 p123));
  let prod = Poly.mul p123 q in
  check_int "mul degree" 3 (Poly.degree prod);
  check_cx "mul shifts" (Cx.of_float 3.0) (Poly.coeff prod 3);
  check_cx "scale" (Cx.of_float 6.0) (Poly.coeff (Poly.scale (Cx.of_float 2.0) p123) 2);
  check_true "mul by zero" (Poly.is_zero (Poly.mul p123 Poly.zero));
  check_int "pow" 4 (Poly.degree (Poly.pow p123 2));
  check_true "pow 0" (Poly.equal Poly.one (Poly.pow p123 0))

let test_derivative () =
  let d = Poly.derivative p123 in
  (* d/ds (1 + 2s + 3s^2) = 2 + 6s *)
  check_cx "deriv c0" (Cx.of_float 2.0) (Poly.coeff d 0);
  check_cx "deriv c1" (Cx.of_float 6.0) (Poly.coeff d 1);
  check_true "deriv of constant" (Poly.is_zero (Poly.derivative Poly.one))

let test_divmod () =
  (* (s^2 - 1) / (s - 1) = (s + 1), r = 0 *)
  let n = Poly.of_real_coeffs [ -1.0; 0.0; 1.0 ] in
  let d = Poly.of_real_coeffs [ -1.0; 1.0 ] in
  let q, r = Poly.divmod n d in
  check_true "quotient" (Poly.equal q (Poly.of_real_coeffs [ 1.0; 1.0 ]));
  check_true "remainder zero" (Poly.is_zero r);
  (* s^3 + 2 over s^2: q = s, r = 2 *)
  let q2, r2 = Poly.divmod (Poly.of_real_coeffs [ 2.0; 0.0; 0.0; 1.0 ])
      (Poly.of_real_coeffs [ 0.0; 0.0; 1.0 ]) in
  check_true "q2" (Poly.equal q2 Poly.s);
  check_true "r2" (Poly.equal r2 (Poly.of_real_coeffs [ 2.0 ]));
  Alcotest.check_raises "div by zero poly" Division_by_zero (fun () ->
      ignore (Poly.divmod p123 Poly.zero))

let test_from_roots_monic () =
  let p = Poly.from_roots [ Cx.of_float 1.0; Cx.of_float (-2.0) ] in
  (* (s - 1)(s + 2) = s^2 + s - 2 *)
  check_cx "c0" (Cx.of_float (-2.0)) (Poly.coeff p 0);
  check_cx "c1" Cx.one (Poly.coeff p 1);
  check_cx "c2" Cx.one (Poly.coeff p 2);
  let m = Poly.monic (Poly.scale (Cx.of_float 5.0) p) in
  check_cx "monic lead" Cx.one (Poly.coeff m 2)

let test_shift () =
  (* p(s) = s^2; p(s + 1) = s^2 + 2s + 1 *)
  let p = Poly.of_real_coeffs [ 0.0; 0.0; 1.0 ] in
  let sh = Poly.shift p Cx.one in
  check_true "shift square" (Poly.equal sh (Poly.of_real_coeffs [ 1.0; 2.0; 1.0 ]));
  (* general property at a point *)
  let a = Cx.make 0.7 (-0.3) and x = Cx.make (-1.2) 0.4 in
  check_cx "shift evaluates" (Poly.eval p123 (Cx.add x a)) (Poly.eval (Poly.shift p123 a) x)

let test_deflate () =
  let p = Poly.from_roots [ Cx.of_float 2.0; Cx.of_float 3.0 ] in
  let q = Poly.deflate p (Cx.of_float 2.0) in
  check_true "deflated" (Poly.equal q (Poly.of_real_coeffs [ -3.0; 1.0 ]));
  (* deflation keeps the leading coefficient *)
  let p5 = Poly.scale (Cx.of_float 5.0) p in
  check_cx "lead preserved" (Cx.of_float 5.0)
    (Poly.coeff (Poly.deflate p5 (Cx.of_float 2.0)) 1)

let prop_eval_hom =
  qcheck ~count:60 "eval is a ring homomorphism"
    (QCheck2.Gen.triple gen_poly gen_poly gen_cx) (fun (p, q, x) ->
      Cx.approx ~tol:1e-6
        (Poly.eval (Poly.mul p q) x)
        (Cx.mul (Poly.eval p x) (Poly.eval q x))
      && Cx.approx ~tol:1e-6
           (Poly.eval (Poly.add p q) x)
           (Cx.add (Poly.eval p x) (Poly.eval q x)))

let prop_divmod_identity =
  qcheck ~count:60 "n = q d + r" (QCheck2.Gen.pair gen_poly gen_poly)
    (fun (n, d) ->
      QCheck2.assume (not (Poly.is_zero d));
      let q, r = Poly.divmod n d in
      Poly.equal ~tol:1e-6 n (Poly.add (Poly.mul q d) r)
      && (Poly.is_zero r || Poly.degree r < Poly.degree d))

let prop_shift_inverse =
  qcheck ~count:60 "shift by a then by -a" (QCheck2.Gen.pair gen_poly gen_cx)
    (fun (p, a) ->
      Poly.equal ~tol:1e-6 p (Poly.shift (Poly.shift p a) (Cx.neg a)))

let prop_derivative_product_rule =
  qcheck ~count:60 "(pq)' = p'q + pq'" (QCheck2.Gen.pair gen_poly gen_poly)
    (fun (p, q) ->
      Poly.equal ~tol:1e-6
        (Poly.derivative (Poly.mul p q))
        (Poly.add
           (Poly.mul (Poly.derivative p) q)
           (Poly.mul p (Poly.derivative q))))

let suite =
  [
    case "construction" test_construction;
    case "evaluation" test_eval;
    case "arithmetic" test_arith;
    case "derivative" test_derivative;
    case "divmod" test_divmod;
    case "from_roots / monic" test_from_roots_monic;
    case "taylor shift" test_shift;
    case "deflation" test_deflate;
    prop_eval_hom;
    prop_divmod_identity;
    prop_shift_inverse;
    prop_derivative_product_rule;
  ]
