open Numeric
open Helpers

let m22 a b c d =
  Cmat.of_rows [| [| Cx.of_float a; Cx.of_float b |]; [| Cx.of_float c; Cx.of_float d |] |]

let test_construction () =
  let m = Cmat.init 2 3 (fun i k -> Cx.of_float (float_of_int ((10 * i) + k))) in
  check_int "rows" 2 (Cmat.rows m);
  check_int "cols" 3 (Cmat.cols m);
  check_cx "init" (Cx.of_float 12.0) (Cmat.get m 1 2);
  check_cx "identity diag" Cx.one (Cmat.get (Cmat.identity 3) 1 1);
  check_cx "identity off" Cx.zero (Cmat.get (Cmat.identity 3) 0 2);
  let d = Cmat.diagonal (Cvec.of_real_array [| 1.0; 2.0 |]) in
  check_cx "diagonal" (Cx.of_float 2.0) (Cmat.get d 1 1);
  check_cx "diagonal off" Cx.zero (Cmat.get d 0 1)

let test_add_scale () =
  let a = m22 1.0 2.0 3.0 4.0 and b = m22 10.0 20.0 30.0 40.0 in
  check_cx "add" (Cx.of_float 22.0) (Cmat.get (Cmat.add a b) 0 1);
  check_cx "sub" (Cx.of_float 27.0) (Cmat.get (Cmat.sub b a) 1 0);
  check_cx "scale" (Cx.of_float 8.0) (Cmat.get (Cmat.scale (Cx.of_float 2.0) a) 1 1);
  check_cx "neg" (Cx.of_float (-3.0)) (Cmat.get (Cmat.neg a) 1 0)

let test_mul () =
  let a = m22 1.0 2.0 3.0 4.0 and b = m22 5.0 6.0 7.0 8.0 in
  let c = Cmat.mul a b in
  check_cx "mul 00" (Cx.of_float 19.0) (Cmat.get c 0 0);
  check_cx "mul 01" (Cx.of_float 22.0) (Cmat.get c 0 1);
  check_cx "mul 10" (Cx.of_float 43.0) (Cmat.get c 1 0);
  check_cx "mul 11" (Cx.of_float 50.0) (Cmat.get c 1 1);
  check_true "identity neutral" (Cmat.equal a (Cmat.mul a (Cmat.identity 2)));
  check_true "identity neutral left" (Cmat.equal a (Cmat.mul (Cmat.identity 2) a))

let test_mv_vm () =
  let a = m22 1.0 2.0 3.0 4.0 in
  let v = Cvec.of_real_array [| 1.0; 10.0 |] in
  check_cx "mv" (Cx.of_float 21.0) (Cvec.get (Cmat.mv a v) 0);
  check_cx "mv row1" (Cx.of_float 43.0) (Cvec.get (Cmat.mv a v) 1);
  check_cx "vm" (Cx.of_float 31.0) (Cvec.get (Cmat.vm v a) 0);
  check_cx "vm col1" (Cx.of_float 42.0) (Cvec.get (Cmat.vm v a) 1)

let test_outer_rank_one () =
  let u = Cvec.of_real_array [| 1.0; 2.0 |] in
  let v = Cvec.of_real_array [| 3.0; 4.0 |] in
  let o = Cmat.outer u v in
  check_cx "outer 01" (Cx.of_float 4.0) (Cmat.get o 0 1);
  check_cx "outer 10" (Cx.of_float 6.0) (Cmat.get o 1 0);
  (* rank-one: (u v^T) w = u (v . w) *)
  let w = Cvec.of_real_array [| 5.0; 6.0 |] in
  let lhs = Cmat.mv o w in
  let rhs = Cvec.scale (Cvec.dot v w) u in
  check_cx "rank-one action 0" (Cvec.get rhs 0) (Cvec.get lhs 0);
  check_cx "rank-one action 1" (Cvec.get rhs 1) (Cvec.get lhs 1)

let test_transpose () =
  let a = Cmat.init 2 3 (fun i k -> Cx.make (float_of_int i) (float_of_int k)) in
  let t = Cmat.transpose a in
  check_int "transpose rows" 3 (Cmat.rows t);
  check_cx "transpose entry" (Cmat.get a 1 2) (Cmat.get t 2 1);
  let h = Cmat.conj_transpose a in
  check_cx "conj transpose entry" (Cx.conj (Cmat.get a 1 2)) (Cmat.get h 2 1)

let test_aggregates () =
  let a = m22 1.0 2.0 3.0 4.0 in
  check_cx "sum_entries" (Cx.of_float 10.0) (Cmat.sum_entries a);
  check_cx "trace" (Cx.of_float 5.0) (Cmat.trace a);
  check_close "frobenius" (sqrt 30.0) (Cmat.norm_frobenius a);
  check_close "norm_inf" 7.0 (Cmat.norm_inf a)

let test_row_col () =
  let a = m22 1.0 2.0 3.0 4.0 in
  check_cx "row" (Cx.of_float 4.0) (Cvec.get (Cmat.row a 1) 1);
  check_cx "col" (Cx.of_float 2.0) (Cvec.get (Cmat.col a 1) 0)

let prop_mul_assoc =
  qcheck ~count:50 "matrix multiplication associative"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 12) gen_cx) (fun zs ->
      let pick off = Cmat.init 2 2 (fun i k -> zs.((2 * i) + k + off)) in
      let a = pick 0 and b = pick 4 and c = pick 8 in
      Cmat.equal ~tol:1e-7 (Cmat.mul (Cmat.mul a b) c) (Cmat.mul a (Cmat.mul b c)))

let prop_sum_entries_bilinear =
  qcheck ~count:50 "sum_entries m = l^T m l"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 9) gen_cx) (fun zs ->
      let m = Cmat.init 3 3 (fun i k -> zs.((3 * i) + k)) in
      let l = Cvec.ones 3 in
      Cx.approx (Cmat.sum_entries m) (Cvec.dot l (Cmat.mv m l)))

let prop_transpose_involution =
  qcheck ~count:50 "transpose involution"
    (QCheck2.Gen.array_size (QCheck2.Gen.return 6) gen_cx) (fun zs ->
      let m = Cmat.init 2 3 (fun i k -> zs.((3 * i) + k)) in
      Cmat.equal m (Cmat.transpose (Cmat.transpose m)))

let suite =
  [
    case "construction" test_construction;
    case "add/scale" test_add_scale;
    case "multiplication" test_mul;
    case "matrix-vector products" test_mv_vm;
    case "outer product rank one" test_outer_rank_one;
    case "transpose" test_transpose;
    case "aggregates" test_aggregates;
    case "row/col extraction" test_row_col;
    prop_mul_assoc;
    prop_sum_entries_bilinear;
    prop_transpose_involution;
  ]
