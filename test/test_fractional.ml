open Helpers
module Fr = Sim.Fractional

let n_int = 64
let b = 16
let frac = 1.0 /. float_of_int b

let seq m = Fr.divider_sequence { Fr.modulator = m; n_int; frac }

let test_sequence_mean () =
  List.iter
    (fun m ->
      let s = seq m in
      let n = 16384 in
      let total = ref 0.0 in
      for k = 0 to n - 1 do
        total := !total +. s k
      done;
      check_close ~tol:1e-9 "mean modulus = N + frac" (64.0 +. frac)
        (!total /. float_of_int n))
    [ Fr.First_order; Fr.Mash2; Fr.Mash3 ]

let test_sequence_ranges () =
  let check_range m lo hi =
    let s = seq m in
    for k = 0 to 4095 do
      let v = s k -. 64.0 in
      check_true "modulus step in range" (v >= lo && v <= hi)
    done
  in
  check_range Fr.First_order 0.0 1.0;
  check_range Fr.Mash2 (-1.0) 2.0;
  check_range Fr.Mash3 (-3.0) 4.0

let test_first_order_periodicity () =
  (* frac = 1/16: the carry pattern repeats every 16 cycles *)
  let s = seq Fr.First_order in
  for k = 0 to 255 do
    check_close "16-periodic" (s k) (s (k + 16))
  done

let test_memoization_consistency () =
  let s = seq Fr.Mash3 in
  let early = s 5 in
  ignore (s 5000);
  check_close "memo stable under growth" early (s 5)

let test_validation () =
  Alcotest.check_raises "frac out of range"
    (Invalid_argument "Fractional.divider_sequence: frac must be in [0, 1)")
    (fun () ->
      ignore (Fr.divider_sequence { Fr.modulator = Fr.First_order; n_int; frac = 1.5 } 0));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Fractional.divider_sequence: n_int must be >= 2")
    (fun () ->
      ignore (Fr.divider_sequence { Fr.modulator = Fr.First_order; n_int = 1; frac } 0))

let fractional_pll ratio =
  Pll_lib.Design.synthesize
    {
      Pll_lib.Design.default_spec with
      Pll_lib.Design.n_div = float_of_int n_int +. frac;
      ratio;
    }

let test_run_locks_to_fractional_frequency () =
  let pll = fractional_pll 0.05 in
  let record =
    Fr.run pll { Fr.modulator = Fr.Mash3; n_int; frac } ~periods:400 ()
  in
  (* theta is measured against the fractional average frequency: if the
     loop really locks to (N + f) fref, theta stays bounded *)
  let theta = record.Sim.Behavioral.theta in
  let n = Sim.Waveform.length theta in
  let tail =
    Array.init (n / 4) (fun i -> Sim.Waveform.value theta (n - 1 - i))
  in
  check_true "locked to the fractional frequency"
    (Numeric.Stats.max_abs tail < 0.1 *. Pll_lib.Pll.period pll)

let test_mismatched_pll_rejected () =
  let pll = pll_of spec_default (* integer N = 64 *) in
  Alcotest.check_raises "n_div mismatch"
    (Invalid_argument "Fractional.run: pll.n_div must equal n_int + frac")
    (fun () -> ignore (Fr.run pll { Fr.modulator = Fr.First_order; n_int; frac } ~periods:4 ()))

let test_spur_prediction_and_shaping () =
  let r = Experiments.Exp_fractional.compute ~periods:2048 () in
  let find name =
    List.find (fun row -> row.Experiments.Exp_fractional.modulator = name)
      r.Experiments.Exp_fractional.rows
  in
  let fo = find "first-order" in
  check_close ~tol:0.02 "first-order spur matches the sawtooth model (dB)"
    r.Experiments.Exp_fractional.predicted_first_order
    fo.Experiments.Exp_fractional.spur1_dbc;
  let mash3 = find "MASH 1-1-1" in
  check_true
    (Printf.sprintf "MASH shaping buys > 12 dB (%.1f vs %.1f)"
       fo.Experiments.Exp_fractional.spur1_dbc
       mash3.Experiments.Exp_fractional.spur1_dbc)
    (mash3.Experiments.Exp_fractional.spur1_dbc
     < fo.Experiments.Exp_fractional.spur1_dbc -. 12.0)

let test_spur_measure_validation () =
  let pll = fractional_pll 0.05 in
  let record = Fr.run pll { Fr.modulator = Fr.First_order; n_int; frac } ~periods:64 () in
  Alcotest.check_raises "periods must divide"
    (Invalid_argument "Fractional.spur_dbc: periods must be a multiple of the denominator")
    (fun () ->
      ignore (Fr.spur_dbc record ~pll ~frac_denominator:b ~harmonic:1 ~periods:30))

let suite =
  [
    case "sequence means" test_sequence_mean;
    case "sequence ranges" test_sequence_ranges;
    case "first-order periodicity" test_first_order_periodicity;
    case "memoization" test_memoization_consistency;
    case "validation" test_validation;
    slow_case "locks to the fractional frequency" test_run_locks_to_fractional_frequency;
    case "pll mismatch rejected" test_mismatched_pll_rejected;
    slow_case "spur prediction and MASH shaping" test_spur_prediction_and_shaping;
    slow_case "spur measurement validation" test_spur_measure_validation;
  ]
