open Helpers
module B = Sim.Behavioral
module Transient = Sim.Transient
module Waveform = Sim.Waveform

let pll = pll_of spec_default
let period = Pll_lib.Pll.period pll

let steady_offset record =
  let theta = record.B.theta in
  let n = Waveform.length theta in
  let tail = Array.init (n / 5) (fun i -> Waveform.value theta (n - 1 - i)) in
  Numeric.Stats.mean tail

let test_reset_delay_neutral () =
  (* matched currents: the anti-dead-zone pulse pair injects zero net
     charge, so no offset develops *)
  let nonideal = { B.ideal with B.reset_delay = period /. 50.0 } in
  let r = Transient.locked_run pll ~nonideal ~periods:120 () in
  check_true "no offset from matched reset pulses"
    (Float.abs (steady_offset r) < 1e-13)

let test_leakage_offset () =
  (* leakage L drains L*T per period; the UP pulse replacing it has
     width L*T/Icp, which is the static phase error *)
  let icp = spec_default.Pll_lib.Design.icp in
  let leakage = 0.01 *. icp in
  let nonideal = { B.ideal with B.leakage = leakage } in
  let r = Transient.locked_run pll ~nonideal ~steps_per_period:96 ~periods:250 () in
  let expected = -.leakage *. period /. icp in
  check_close ~tol:0.12 "leakage offset ~ -L*T/Icp" expected (steady_offset r);
  (* the replacement pulse makes a visible periodic ripple *)
  check_true "leakage creates ripple"
    (Transient.steady_state_ripple r ~period ~periods:20 > 1e-4)

let test_mismatch_offset_sign () =
  let nonideal gain =
    { B.ideal with B.up_current_gain = gain; reset_delay = period /. 50.0 }
  in
  let up = Transient.locked_run pll ~nonideal:(nonideal 1.1) ~periods:200 () in
  let down = Transient.locked_run pll ~nonideal:(nonideal 0.9) ~periods:200 () in
  let o_up = steady_offset up and o_down = steady_offset down in
  check_true "stronger UP pushes offset positive" (o_up > 0.0);
  check_true "weaker UP pushes offset negative" (o_down < 0.0);
  (* first-order magnitude: (g-1)*t_delay *)
  check_close ~tol:0.05 "offset magnitude" (0.1 *. period /. 50.0) o_up

let test_mismatch_without_delay_invisible () =
  (* with zero reset delay the in-lock pulses have zero width: a pure
     gain mismatch then leaves no static signature *)
  let nonideal = { B.ideal with B.up_current_gain = 1.2 } in
  let r = Transient.locked_run pll ~nonideal ~periods:120 () in
  check_true "no pulses, no offset" (Float.abs (steady_offset r) < 1e-13)

let test_still_locks_with_all_nonidealities () =
  let icp = spec_default.Pll_lib.Design.icp in
  let nonideal =
    {
      B.reset_delay = period /. 40.0;
      up_current_gain = 1.1;
      leakage = 0.01 *. icp;
    }
  in
  let r = Transient.acquisition pll ~nonideal ~freq_offset:100e3 ~periods:400 () in
  match Transient.lock_time r ~tol:(period /. 20.0) with
  | Some _ -> ()
  | None -> Alcotest.fail "loop should still acquire lock"

let test_reference_spur () =
  (* leakage produces a strong reference spur; the theta-line route and
     the control-ripple FM route must agree, and the ideal loop must
     show none *)
  let icp = spec_default.Pll_lib.Design.icp in
  let rows = Experiments.Exp_nonideal.compute () in
  ignore icp;
  let find label =
    List.find (fun r -> r.Experiments.Exp_nonideal.label = label) rows
  in
  let leak = find "leakage 1% of Icp" in
  check_true "leakage spur visible" (leak.Experiments.Exp_nonideal.spur_dbc > -60.0);
  check_close ~tol:0.1 "two spur routes agree (dB scale)"
    leak.Experiments.Exp_nonideal.spur_pred_dbc
    leak.Experiments.Exp_nonideal.spur_dbc;
  let ideal = find "ideal" in
  check_true "ideal loop has no spur" (ideal.Experiments.Exp_nonideal.spur_dbc < -200.0)

let test_experiment_harness () =
  let rows = Experiments.Exp_nonideal.compute () in
  check_int "six cases" 6 (List.length rows);
  List.iter
    (fun row ->
      let open Experiments.Exp_nonideal in
      let scale = Stdlib.max (Float.abs row.predicted_offset) (period /. 1e6) in
      check_true
        (Printf.sprintf "%s: measured %.2e vs predicted %.2e" row.label
           row.measured_offset row.predicted_offset)
        (Float.abs (row.measured_offset -. row.predicted_offset) < 0.15 *. scale
         +. 1e-15))
    rows

let suite =
  [
    slow_case "matched reset delay is charge-neutral" test_reset_delay_neutral;
    slow_case "leakage static offset" test_leakage_offset;
    slow_case "mismatch offset and sign" test_mismatch_offset_sign;
    slow_case "mismatch invisible without delay" test_mismatch_without_delay_invisible;
    slow_case "locks despite non-idealities" test_still_locks_with_all_nonidealities;
    slow_case "reference spur (two routes)" test_reference_spur;
    slow_case "experiment harness vs theory" test_experiment_harness;
  ]
