open Numeric
open Helpers
module Sym_pll = Symbolic.Sym_pll
module Expr = Symbolic.Expr

let pll = pll_of spec_default
let w0 = Pll_lib.Pll.omega0 pll

let test_a_expr_matches_numeric () =
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-12 "symbolic A(s)"
        (Pll_lib.Pll.a_of_s pll s)
        (Expr.eval (Sym_pll.env_of_pll pll ~s) Sym_pll.a_expr))
    [ 0.03; 0.2; 0.45; 3.0 ]

let test_lambda_expr_matches_numeric () =
  (* the headline: a hand-derived symbolic coth expression equals the
     numeric partial-fraction + lattice-sum pipeline to roundoff *)
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-12 "symbolic lambda"
        (Pll_lib.Pll.lambda pll s)
        (Sym_pll.eval_lambda pll s))
    [ 0.05; 0.17; 0.29; 0.41; 0.49 ]

let test_h00_expr_matches_numeric () =
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-12 "symbolic H00" (Pll_lib.Pll.h00 pll s)
        (Sym_pll.eval_h00 pll s);
      check_cx ~tol:1e-12 "symbolic LTI H00" (Pll_lib.Pll.h00_lti pll s)
        (Expr.eval (Sym_pll.env_of_pll pll ~s) Sym_pll.h00_lti_expr))
    [ 0.08; 0.24; 0.4 ]

let test_residues_match_partial_fractions () =
  (* the symbolic residues vs the generic numeric expansion *)
  let env = Sym_pll.env_of_pll pll ~s:Cx.zero in
  let expansion =
    Partial_fraction.expand (Lti.Tf.to_rat (Pll_lib.Pll.open_loop_tf pll))
  in
  let wp = Cx.re (Expr.eval env Sym_pll.residues.Sym_pll.pole) in
  List.iter
    (fun { Partial_fraction.pole; order; residue } ->
      if Cx.abs pole < 1.0 then begin
        (* origin cluster *)
        if order = 2 then
          check_cx ~tol:1e-9 "r20" residue (Expr.eval env Sym_pll.residues.Sym_pll.r20)
        else
          check_cx ~tol:1e-9 "r10" residue (Expr.eval env Sym_pll.residues.Sym_pll.r10)
      end
      else begin
        check_close ~tol:1e-9 "pole location" (-.wp) (Cx.re pole);
        check_cx ~tol:1e-9 "r1p" residue (Expr.eval env Sym_pll.residues.Sym_pll.r1p)
      end)
    expansion.Partial_fraction.terms

let test_works_across_designs () =
  List.iter
    (fun ratio ->
      let p = pll_of (Pll_lib.Design.with_ratio spec_default ratio) in
      let s = Cx.jomega (0.2 *. Pll_lib.Pll.omega0 p) in
      check_cx ~tol:1e-11 "any design" (Pll_lib.Pll.lambda p s)
        (Sym_pll.eval_lambda p s))
    [ 0.03; 0.12; 0.3 ]

let test_sensitivity () =
  (* d lambda / d R via symbolic differentiation vs finite differences
     on the numeric pipeline *)
  let s = Cx.jomega (0.2 *. w0) in
  let sym_sens = Sym_pll.sensitivity Sym_pll.lambda_expr ~wrt:"R" pll ~s in
  let rv, c1v, c2v =
    match pll.Pll_lib.Pll.filter.Pll_lib.Loop_filter.topology with
    | Pll_lib.Loop_filter.Second_order { r; c1; c2 } -> (r, c1, c2)
    | _ -> Alcotest.fail "second order expected"
  in
  let lambda_at rv' =
    let filter =
      Pll_lib.Loop_filter.make
        (Pll_lib.Loop_filter.Second_order { r = rv'; c1 = c1v; c2 = c2v })
        ~icp:spec_default.Pll_lib.Design.icp
    in
    let p =
      Pll_lib.Pll.make ~fref:pll.Pll_lib.Pll.fref ~n_div:pll.Pll_lib.Pll.n_div
        ~filter ~vco:pll.Pll_lib.Pll.vco ()
    in
    Pll_lib.Pll.lambda p s
  in
  let h = rv *. 1e-6 in
  let fd =
    Cx.scale (1.0 /. (2.0 *. h)) (Cx.sub (lambda_at (rv +. h)) (lambda_at (rv -. h)))
  in
  check_cx ~tol:1e-5 "d lambda / dR" fd sym_sens

let test_symbols_inventory () =
  Alcotest.(check (list string)) "lambda symbols"
    [ "C1"; "C2"; "Icp"; "Kv"; "N"; "R"; "fref"; "s" ]
    (Expr.symbols Sym_pll.lambda_expr)

let test_env_rejects_custom_filter () =
  let filt = Pll_lib.Loop_filter.make (Pll_lib.Loop_filter.Custom (Lti.Tf.gain 1.0)) ~icp:1e-4 in
  let p =
    Pll_lib.Pll.make ~fref:1e6 ~n_div:64.0 ~filter:filt ~vco:pll.Pll_lib.Pll.vco ()
  in
  Alcotest.check_raises "custom rejected"
    (Invalid_argument "Sym_pll.env_of_pll: needs a second-order charge-pump filter")
    (fun () -> ignore (Sym_pll.env_of_pll p ~s:Cx.one "s"))

let prop_symbolic_equals_numeric =
  qcheck ~count:25 "symbolic lambda = numeric lambda at random points"
    (QCheck2.Gen.pair (QCheck2.Gen.float_range 0.02 0.4)
       (QCheck2.Gen.float_range 0.01 0.49)) (fun (ratio, frac) ->
      let p = pll_of (Pll_lib.Design.with_ratio spec_default ratio) in
      let s = Cx.jomega (frac *. Pll_lib.Pll.omega0 p) in
      Cx.approx ~tol:1e-10 (Pll_lib.Pll.lambda p s) (Sym_pll.eval_lambda p s))

let suite =
  [
    case "A(s) expression" test_a_expr_matches_numeric;
    case "lambda(s) closed form" test_lambda_expr_matches_numeric;
    case "H00 expressions" test_h00_expr_matches_numeric;
    case "symbolic residues" test_residues_match_partial_fractions;
    case "across designs" test_works_across_designs;
    case "parametric sensitivity dlambda/dR" test_sensitivity;
    case "symbol inventory" test_symbols_inventory;
    case "custom filter rejected" test_env_rejects_custom_filter;
    prop_symbolic_equals_numeric;
  ]
