(* The parallel sweep engine: Pool.map must be observationally identical
   to Array.map — same values, same order, same exceptions — for every
   pool size, chunk size and input size, and a pool must survive worker
   exceptions and reuse its domains across calls. *)

open Helpers
module Pool = Parallel.Pool
module Sweep = Parallel.Sweep

exception Boom of int

let gen_domains = QCheck2.Gen.int_range 1 5
let gen_chunk = QCheck2.Gen.int_range 1 9

(* sizes straddle the chunking: empty, smaller than any chunk, larger *)
let gen_input = QCheck2.Gen.(array_size (int_range 0 65) small_float)

let test_map_matches_array_map =
  qcheck ~count:60 "Pool.map = Array.map (random quadratic)"
    QCheck2.Gen.(
      tup4 gen_domains gen_chunk gen_input (tup3 small_float small_float small_float))
    (fun (domains, chunk, arr, (a, b, c)) ->
      let f x = (a *. x *. x) +. (b *. x) +. c in
      let expected = Array.map f arr in
      let got = Pool.with_pool ~domains (fun p -> Pool.map ~chunk p f arr) in
      expected = got)

let test_mapi_init_match =
  qcheck ~count:40 "Pool.mapi/init = Array.mapi/init"
    QCheck2.Gen.(tup3 gen_domains gen_chunk (int_range 0 70))
    (fun (domains, chunk, n) ->
      let f i x = (i * 3) + int_of_float x in
      let arr = Array.init n (fun i -> float_of_int (i * i)) in
      Pool.with_pool ~domains (fun p ->
          Pool.mapi ~chunk p f arr = Array.mapi f arr
          && Pool.init ~chunk p n (fun i -> i * i) = Array.init n (fun i -> i * i)))

let test_exception_propagates =
  qcheck ~count:40 "worker exceptions propagate, pool survives"
    QCheck2.Gen.(tup3 gen_domains gen_chunk (int_range 1 60))
    (fun (domains, chunk, n) ->
      Pool.with_pool ~domains (fun p ->
          let bad = n / 2 in
          let raised =
            match
              Pool.map ~chunk p
                (fun i -> if i = bad then raise (Boom i) else i)
                (Array.init n Fun.id)
            with
            | _ -> false
            | exception Boom i -> i = bad
          in
          (* the pool must stay fully usable after the failed map *)
          let alive = Pool.map p succ (Array.init 16 Fun.id) in
          raised && alive = Array.init 16 (fun i -> i + 1)))

let test_empty_and_tiny () =
  Pool.with_pool ~domains:4 (fun p ->
      check_int "empty map" 0 (Array.length (Pool.map p succ [||]));
      check_true "singleton, chunk larger than input"
        (Pool.map ~chunk:64 p succ [| 41 |] = [| 42 |]);
      check_true "init 0" (Pool.init p 0 Fun.id = [||]))

let domain_ids_of_map p =
  let ids = Hashtbl.create 8 in
  let m = Mutex.create () in
  ignore
    (Pool.map ~chunk:1 p
       (fun i ->
         Mutex.lock m;
         Hashtbl.replace ids (Domain.self () :> int) ();
         Mutex.unlock m;
         ignore (Sys.opaque_identity (sin (float_of_int i)));
         i)
       (Array.init 64 Fun.id));
  ids

let test_domain_reuse () =
  Pool.with_pool ~domains:4 (fun p ->
      let seen = Hashtbl.create 8 in
      for _ = 1 to 5 do
        Hashtbl.iter (fun id () -> Hashtbl.replace seen id ()) (domain_ids_of_map p)
      done;
      (* if each map spawned fresh domains, five calls would accumulate
         far more than [size] distinct domain ids *)
      check_true "repeated maps reuse the pool's domains"
        (Hashtbl.length seen <= Pool.size p);
      let st = Pool.stats p in
      check_int "every map call counted" 5 st.Pool.maps;
      check_int "every element counted" (5 * 64) st.Pool.items;
      check_true "chunks were executed" (st.Pool.tasks >= 5))

let test_nested_map_no_deadlock () =
  (* a lane that maps on its own pool must not deadlock: the waiting
     caller helps drain the shared queue *)
  Pool.with_pool ~domains:2 (fun p ->
      let out =
        Pool.map ~chunk:1 p
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map ~chunk:1 p (fun j -> (i * 10) + j) (Array.init 8 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expected =
        Array.init 6 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 10) + j)))
      in
      check_true "nested maps complete and agree" (out = expected))

let test_sum_deterministic =
  qcheck ~count:60 "Sweep.sum = sequential left-to-right sum, bit-exact"
    QCheck2.Gen.(tup3 gen_domains gen_chunk gen_input)
    (fun (domains, chunk, terms) ->
      Pool.with_pool ~domains (fun p ->
          let n = Array.length terms in
          let got = Sweep.sum ~pool:p ~chunk n (fun i -> terms.(i)) in
          let expected = Array.fold_left ( +. ) 0.0 terms in
          got = expected))

let test_pool_size_invariance =
  qcheck ~count:20 "map output independent of pool and chunk size"
    QCheck2.Gen.(tup3 (tup2 gen_domains gen_domains) (tup2 gen_chunk gen_chunk) gen_input)
    (fun ((d1, d2), (c1, c2), arr) ->
      let f x = sin (exp x) +. (1.0 /. (1.0 +. (x *. x))) in
      let r1 = Pool.with_pool ~domains:d1 (fun p -> Pool.map ~chunk:c1 p f arr) in
      let r2 = Pool.with_pool ~domains:d2 (fun p -> Pool.map ~chunk:c2 p f arr) in
      r1 = r2)

let test_shutdown () =
  let p = Pool.create ~domains:3 () in
  check_true "map before shutdown" (Pool.map p succ [| 1; 2 |] = [| 2; 3 |]);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Pool.run_indices: pool has been shut down") (fun () ->
      ignore (Pool.map p succ [| 1 |]))

let test_default_sizing () =
  check_true "default_domains is positive" (Pool.default_domains () >= 1);
  let p = Pool.default () in
  check_true "default pool is shared" (p == Pool.default ());
  check_int "default pool size" (Stdlib.max 1 (Pool.default_domains ())) (Pool.size p)

(* cheap end-to-end determinism check; the full multi-domain sweep
   determinism tests live behind the @slow alias (test/slow) *)
let test_metrics_pool_invariant () =
  let pll = pll_of spec_default in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Pll_lib.Analysis.closed_loop_metrics ~points:120 ~pool pll)
  in
  check_true "closed-loop metrics bit-identical at 1 vs 3 domains"
    (run 1 = run 3)

let test_fold_sum_pool_invariant () =
  let pll = pll_of spec_default in
  let w0 = Pll_lib.Pll.omega0 pll in
  let s = Pll_lib.Noise.lorentzian ~level:1e-9 ~corner:(0.3 *. w0) in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Pll_lib.Noise.reference_noise_out pll ~folds:200 ~pool s (0.07 *. w0))
  in
  let r1 = run 1 in
  check_true "noise folding sum bit-identical at 1 vs 4 domains" (r1 = run 4);
  (* and bit-identical to the historical sequential accumulation order *)
  let h = Numeric.Cx.abs (Pll_lib.Pll.h00 pll (Numeric.Cx.jomega (0.07 *. w0))) in
  let seq =
    let acc = ref (s (0.07 *. w0)) in
    for m = 1 to 200 do
      let shift = float_of_int m *. w0 in
      acc := !acc +. s ((0.07 *. w0) +. shift) +. s ((0.07 *. w0) -. shift)
    done;
    h *. h *. !acc
  in
  check_true "matches legacy sequential fold exactly" (r1 = seq)

let suite =
  [
    test_map_matches_array_map;
    test_mapi_init_match;
    test_exception_propagates;
    case "empty and tiny inputs" test_empty_and_tiny;
    case "domain reuse across maps" test_domain_reuse;
    case "nested map on own pool" test_nested_map_no_deadlock;
    test_sum_deterministic;
    test_pool_size_invariance;
    case "shutdown semantics" test_shutdown;
    case "default pool sizing" test_default_sizing;
    case "closed-loop metrics pool-invariant" test_metrics_pool_invariant;
    case "noise fold sum pool-invariant" test_fold_sum_pool_invariant;
  ]
