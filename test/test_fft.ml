open Numeric
open Helpers

let test_next_pow2 () =
  check_int "1" 1 (Fft.next_pow2 1);
  check_int "5 -> 8" 8 (Fft.next_pow2 5);
  check_int "8 -> 8" 8 (Fft.next_pow2 8);
  check_int "1000 -> 1024" 1024 (Fft.next_pow2 1000)

let test_fft_impulse () =
  (* delta -> flat spectrum *)
  let a = Array.make 8 Cx.zero in
  a.(0) <- Cx.one;
  Fft.fft a;
  Array.iter (fun z -> check_cx "flat" Cx.one z) a

let test_fft_dc () =
  let a = Array.make 8 Cx.one in
  Fft.fft a;
  check_cx "dc bin" (Cx.of_float 8.0) a.(0);
  for i = 1 to 7 do
    check_cx ~tol:1e-12 "other bins" Cx.zero a.(i)
  done

let test_fft_tone () =
  (* e^{2 pi i n k0 / N} puts all energy in bin k0 *)
  let n = 16 and k0 = 3 in
  let a =
    Array.init n (fun i ->
        Cx.cis (2.0 *. Float.pi *. float_of_int (i * k0) /. float_of_int n))
  in
  Fft.fft a;
  check_cx ~tol:1e-10 "bin k0" (Cx.of_float (float_of_int n)) a.(k0);
  check_cx ~tol:1e-10 "bin 0" Cx.zero a.(0)

let test_fft_matches_dft () =
  let a = Array.init 16 (fun i -> Cx.make (sin (0.9 *. float_of_int i)) (cos (1.7 *. float_of_int i))) in
  let f = Fft.transform a in
  for k = 0 to 15 do
    check_cx ~tol:1e-9 (Printf.sprintf "bin %d" k) (Fft.dft_bin a k) f.(k)
  done

let test_ifft_roundtrip () =
  let a = Array.init 32 (fun i -> Cx.make (float_of_int i) (-0.5 *. float_of_int i)) in
  let b = Array.copy a in
  Fft.fft b;
  Fft.ifft b;
  Array.iteri (fun i z -> check_cx ~tol:1e-9 "round trip" a.(i) z) b

let test_parseval () =
  let a = Array.init 64 (fun i -> Cx.make (sin (0.3 *. float_of_int i)) 0.0) in
  let f = Fft.transform a in
  let time_energy = Array.fold_left (fun acc z -> acc +. Cx.norm2 z) 0.0 a in
  let freq_energy =
    Array.fold_left (fun acc z -> acc +. Cx.norm2 z) 0.0 f /. 64.0
  in
  check_close ~tol:1e-9 "parseval" time_energy freq_energy

let test_non_pow2_rejected () =
  Alcotest.check_raises "length 12"
    (Invalid_argument "Fft.fft_dir: length must be a power of 2") (fun () ->
      Fft.fft (Array.make 12 Cx.zero))

let test_goertzel_pure_tone () =
  (* x = 3 cos(w t) + 4 sin(w t) over integer periods -> Y = 3 - 4j,
     the amplitude in the Re(Y e^{jwt}) convention *)
  let omega = 2.0 *. Float.pi *. 5.0 in
  let periods = 4.0 in
  let n = 1000 in
  let dt = periods /. omega *. 2.0 *. Float.pi /. float_of_int n in
  let xs =
    Array.init n (fun i ->
        let t = float_of_int i *. dt in
        (3.0 *. cos (omega *. t)) +. (4.0 *. sin (omega *. t)))
  in
  let c = Fft.goertzel xs ~dt ~omega in
  check_cx ~tol:1e-6 "amplitude recovery" (Cx.make 3.0 (-4.0)) c

let test_goertzel_rejects_orthogonal () =
  (* a tone at 2w contributes nothing at w over integer periods of both *)
  let omega = 2.0 *. Float.pi in
  let n = 4096 in
  let dt = 4.0 /. float_of_int n in
  let xs = Array.init n (fun i -> cos (2.0 *. omega *. float_of_int i *. dt)) in
  let c = Fft.goertzel xs ~dt ~omega in
  check_cx ~tol:1e-6 "orthogonal tone rejected" Cx.zero c

let prop_fft_linear =
  qcheck ~count:30 "fft linear"
    (QCheck2.Gen.pair
       (QCheck2.Gen.array_size (QCheck2.Gen.return 8) gen_cx)
       (QCheck2.Gen.array_size (QCheck2.Gen.return 8) gen_cx)) (fun (a, b) ->
      let sum = Array.init 8 (fun i -> Cx.add a.(i) b.(i)) in
      let fs = Fft.transform sum in
      let fa = Fft.transform a and fb = Fft.transform b in
      Array.for_all
        Fun.id
        (Array.init 8 (fun i -> Cx.approx ~tol:1e-7 fs.(i) (Cx.add fa.(i) fb.(i)))))

let suite =
  [
    case "next_pow2" test_next_pow2;
    case "impulse" test_fft_impulse;
    case "dc" test_fft_dc;
    case "pure tone bin" test_fft_tone;
    case "fft matches direct DFT" test_fft_matches_dft;
    case "ifft round trip" test_ifft_roundtrip;
    case "parseval" test_parseval;
    case "non power of two rejected" test_non_pow2_rejected;
    case "goertzel pure tone" test_goertzel_pure_tone;
    case "goertzel orthogonality" test_goertzel_rejects_orthogonal;
    prop_fft_linear;
  ]
