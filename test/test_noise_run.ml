open Helpers
module Nr = Sim.Noise_run

let pll = pll_of spec_default
let w0 = Pll_lib.Pll.omega0 pll

(* Statistical tests with fixed seeds; tolerances sized for the ~111
   Welch segments these runs produce (sigma ~ 10%). *)

let test_vco_noise_shape () =
  let r = Nr.vco_white_fm pll ~sigma_freq:(w0 *. 1e-4) ~periods:2048 () in
  List.iter
    (fun (lo, hi) ->
      let ratio = Nr.band_ratio r ~lo:(lo *. w0) ~hi:(hi *. w0) in
      check_true
        (Printf.sprintf "vco band [%.2f,%.2f]: ratio %.3f in [0.75,1.3]" lo hi ratio)
        (ratio > 0.75 && ratio < 1.3))
    [ (0.02, 0.1); (0.1, 0.3); (0.3, 0.49) ]

let test_vco_noise_is_highpass () =
  (* in-band the loop suppresses VCO noise: the measured PSD at low
     frequency is far below the open-loop 1/w^2 skirt *)
  let sigma_freq = w0 *. 1e-4 in
  let r = Nr.vco_white_fm pll ~sigma_freq ~periods:1024 () in
  (* deep in band (w ~ 0.3 w_UG) the type-2 loop rejects hard *)
  let lo = 0.02 *. w0 and hi = 0.05 *. w0 in
  let measured = Numeric.Psd.band_average r.Nr.estimate ~lo ~hi in
  let wc = 0.031 *. w0 in
  let dt = Pll_lib.Pll.period pll /. 128.0 in
  let w_vco = 2.0 *. Float.pi *. 64.0 *. 1e6 in
  let open_loop =
    sigma_freq *. sigma_freq *. dt /. (w_vco *. w_vco *. wc *. wc)
  in
  check_true
    (Printf.sprintf "in-band suppression (%.2e vs open loop %.2e)" measured open_loop)
    (measured < 0.15 *. open_loop)

let test_reference_noise_folding () =
  let period = Pll_lib.Pll.period pll in
  let r = Nr.reference_white pll ~sigma_theta:(period /. 1e5) ~periods:2048 () in
  let lo = 0.01 *. w0 and hi = 0.2 *. w0 in
  let tv = Nr.band_ratio r ~lo ~hi in
  let lti = Nr.band_ratio_lti r ~lo ~hi in
  check_true
    (Printf.sprintf "TV prediction within 40%% (ratio %.3f)" tv)
    (tv > 0.6 && tv < 1.4);
  check_true
    (Printf.sprintf "LTI misses the folding by far (ratio %.0f)" lti)
    (lti > 20.0)

let test_linearity_in_sigma () =
  (* doubling the injected noise quadruples the output PSD *)
  let r1 = Nr.vco_white_fm pll ~sigma_freq:(w0 *. 1e-4) ~periods:512 ~seed:9L () in
  let r2 = Nr.vco_white_fm pll ~sigma_freq:(w0 *. 2e-4) ~periods:512 ~seed:9L () in
  let b r = Numeric.Psd.band_average r.Nr.estimate ~lo:(0.1 *. w0) ~hi:(0.3 *. w0) in
  check_close ~tol:0.02 "same seed: exactly x4" 4.0 (b r2 /. b r1)

let test_seed_reproducibility () =
  let r1 = Nr.vco_white_fm pll ~sigma_freq:(w0 *. 1e-4) ~periods:256 ~seed:5L () in
  let r2 = Nr.vco_white_fm pll ~sigma_freq:(w0 *. 1e-4) ~periods:256 ~seed:5L () in
  check_close "deterministic"
    (Numeric.Psd.band_average r1.Nr.estimate ~lo:(0.1 *. w0) ~hi:(0.3 *. w0))
    (Numeric.Psd.band_average r2.Nr.estimate ~lo:(0.1 *. w0) ~hi:(0.3 *. w0))

let suite =
  [
    slow_case "vco white FM: PSD matches TV prediction" test_vco_noise_shape;
    slow_case "vco noise suppressed in band" test_vco_noise_is_highpass;
    slow_case "reference noise folding (LTI fails)" test_reference_noise_folding;
    slow_case "linearity in noise power" test_linearity_in_sigma;
    slow_case "seed reproducibility" test_seed_reproducibility;
  ]
