open Numeric
open Helpers
module Zmodel = Pll_lib.Zmodel
module Pll = Pll_lib.Pll

let pll = pll_of spec_default
let zm = Zmodel.of_pll pll
let w0 = Pll.omega0 pll

let test_construction () =
  check_int "third-order chain" 3 (Rmat.rows zm.Zmodel.phi);
  check_close "period" 1e-6 zm.Zmodel.period

let test_impulse_invariance_identity () =
  (* the central theorem: L(e^{jwT}) = lambda(jw) exactly, because the
     chain has relative degree 2 so its impulse response vanishes at 0 *)
  let lam = Pll.lambda_fn pll Pll.Exact in
  List.iter
    (fun frac ->
      let w = frac *. w0 in
      check_cx ~tol:1e-10 "z-model open loop = lambda"
        (lam (Cx.jomega w))
        (Zmodel.open_loop_response zm w))
    [ 0.03; 0.11; 0.24; 0.37; 0.49 ]

let test_open_loop_rational () =
  (* the explicit z-rational must agree with the resolvent route *)
  let l = Zmodel.open_loop zm in
  let w = 0.2 *. w0 in
  check_cx ~tol:1e-9 "rational vs response"
    (Zmodel.open_loop_response zm w)
    (Lti.Zdomain.eval l (Cx.exp (Cx.jomega (w *. zm.Zmodel.period))))

let test_closed_loop_poles_solve_lambda () =
  (* z-poles map to roots of 1 + lambda(s) via s = ln(z)/T *)
  let lam = Pll.lambda_fn pll Pll.Exact in
  let poles = Zmodel.closed_loop_poles zm in
  check_int "pole count" 3 (List.length poles);
  List.iter
    (fun z ->
      if Cx.abs z > 1e-6 then begin
        let s = Cx.scale (1.0 /. zm.Zmodel.period) (Cx.log z) in
        let residual = Cx.abs (Cx.add Cx.one (lam s)) in
        check_true
          (Printf.sprintf "1+lambda ~ 0 at mapped pole (res %.2e)" residual)
          (residual < 1e-6)
      end)
    poles

let test_stability_matches_ratio () =
  check_true "default design stable" (Zmodel.is_stable zm);
  let fast = pll_of (Pll_lib.Design.with_ratio spec_default 0.35) in
  check_true "fast design unstable" (not (Zmodel.is_stable (Zmodel.of_pll fast)))

let test_closed_loop_stability_consistency () =
  (* closed_loop rational poles = closed_loop_poles eigen route *)
  let cl = Zmodel.closed_loop zm in
  let from_rat =
    List.sort (fun a b -> compare (Cx.abs a) (Cx.abs b)) (Lti.Zdomain.poles cl)
  in
  let from_eig =
    List.sort (fun a b -> compare (Cx.abs a) (Cx.abs b))
      (Zmodel.closed_loop_poles zm)
  in
  List.iter2 (fun a b -> check_cx ~tol:1e-6 "pole sets agree" a b) from_rat from_eig

let test_step_response () =
  let step = Zmodel.step_response zm ~n:300 in
  check_int "length" 300 (Array.length step);
  check_close "starts at zero" 0.0 step.(0);
  (* type-2 loop tracks a phase step exactly *)
  check_close ~tol:1e-6 "settles to 1" 1.0 step.(299);
  (* and overshoots on the way (underdamped sampled loop) *)
  let peak = Array.fold_left Stdlib.max neg_infinity step in
  check_true "overshoot present" (peak > 1.0)

let test_predicted_s_poles () =
  let s_poles = Zmodel.predicted_s_poles zm in
  check_true "all in left half plane for stable loop"
    (List.for_all (fun s -> Cx.re s < 0.0) s_poles)

let test_requires_time_invariant () =
  let vco =
    Pll_lib.Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6
      ~harmonics:[ Cx.of_float 0.1 ]
  in
  let p = Pll.make ~fref:1e6 ~n_div:64.0 ~filter:pll.Pll.filter ~vco () in
  Alcotest.check_raises "tv vco rejected"
    (Invalid_argument "Zmodel.of_pll: requires a time-invariant VCO") (fun () ->
      ignore (Zmodel.of_pll p))

let prop_impulse_invariance_random_ratio =
  qcheck ~count:10 "L(e^{jwT}) = lambda(jw) at random ratios and offsets"
    (QCheck2.Gen.pair
       (QCheck2.Gen.float_range 0.03 0.4)
       (QCheck2.Gen.float_range 0.01 0.49)) (fun (ratio, frac) ->
      let p = pll_of (Pll_lib.Design.with_ratio spec_default ratio) in
      let m = Zmodel.of_pll p in
      let w = frac *. Pll.omega0 p in
      let lam = Pll.lambda p (Cx.jomega w) in
      Cx.approx ~tol:1e-8 lam (Zmodel.open_loop_response m w))

let suite =
  [
    case "construction" test_construction;
    case "impulse invariance: L(e^{jwT}) = lambda(jw)" test_impulse_invariance_identity;
    case "explicit z-rational" test_open_loop_rational;
    case "z-poles solve 1+lambda=0" test_closed_loop_poles_solve_lambda;
    case "stability vs ratio" test_stability_matches_ratio;
    case "pole-set consistency" test_closed_loop_stability_consistency;
    case "phase-step response" test_step_response;
    case "s-plane pole mapping" test_predicted_s_poles;
    case "time-varying VCO rejected" test_requires_time_invariant;
    prop_impulse_invariance_random_ratio;
  ]
