open Numeric
open Helpers
module Zd = Lti.Zdomain

let test_eval () =
  (* H(z) = 1 / (z - 0.5) *)
  let h = Zd.make ~num:[ 1.0 ] ~den:[ -0.5; 1.0 ] in
  check_cx "at z=1" (Cx.of_float 2.0) (Zd.eval h Cx.one);
  check_cx "at z=2" (Cx.of_float (1.0 /. 1.5)) (Zd.eval h (Cx.of_float 2.0))

let test_freq_response () =
  let h = Zd.make ~num:[ 1.0 ] ~den:[ -0.5; 1.0 ] in
  let period = 0.1 in
  (* w = 0 -> z = 1 *)
  check_cx "dc" (Cx.of_float 2.0) (Zd.freq_response h ~period 0.0);
  (* w = pi/T -> z = -1 *)
  check_cx ~tol:1e-9 "nyquist" (Cx.of_float (-1.0 /. 1.5))
    (Zd.freq_response h ~period (Float.pi /. period))

let test_stability () =
  check_true "pole inside" (Zd.is_stable (Zd.make ~num:[ 1.0 ] ~den:[ -0.5; 1.0 ]));
  check_true "pole outside"
    (not (Zd.is_stable (Zd.make ~num:[ 1.0 ] ~den:[ -1.5; 1.0 ])));
  check_true "pole on circle"
    (not (Zd.is_stable (Zd.make ~num:[ 1.0 ] ~den:[ -1.0; 1.0 ])))

let test_feedback () =
  (* G = k/(z-a); closed loop pole at a - k *)
  let g = Zd.make ~num:[ 0.3 ] ~den:[ -0.9; 1.0 ] in
  let cl = Zd.feedback_unity g in
  match Zd.poles cl with
  | [ p ] -> check_cx ~tol:1e-9 "closed-loop pole" (Cx.of_float 0.6) p
  | _ -> Alcotest.fail "one pole expected"

let test_from_state_space_first_order () =
  (* x_{k+1} = 0.5 x_k + u_k, y = 2 x: H(z) = 2/(z - 0.5) *)
  let h =
    Zd.from_state_space
      ~phi:(Rmat.of_rows [| [| 0.5 |] |])
      ~b:[| 1.0 |] ~c:[| 2.0 |]
  in
  List.iter
    (fun z ->
      check_cx ~tol:1e-10 "1st order ss"
        (Cx.div (Cx.of_float 2.0) (Cx.sub z (Cx.of_float 0.5)))
        (Zd.eval h z))
    [ Cx.of_float 2.0; Cx.make 0.3 1.0; Cx.cis 1.0 ]

let test_from_state_space_second_order () =
  let phi = Rmat.of_rows [| [| 0.9; 0.1 |]; [| -0.2; 0.7 |] |] in
  let b = [| 1.0; 0.5 |] and c = [| 2.0; -1.0 |] in
  let h = Zd.from_state_space ~phi ~b ~c in
  (* compare against direct resolvent computation *)
  List.iter
    (fun z ->
      let zi_phi =
        Cmat.init 2 2 (fun i k ->
            let p = Cx.of_float (-.Rmat.get phi i k) in
            if i = k then Cx.add z p else p)
      in
      let x = Lu.solve_system zi_phi (Cvec.of_real_array b) in
      let direct =
        Cx.add
          (Cx.scale c.(0) (Cvec.get x 0))
          (Cx.scale c.(1) (Cvec.get x 1))
      in
      check_cx ~tol:1e-9 "resolvent match" direct (Zd.eval h z))
    [ Cx.of_float 2.0; Cx.make 0.1 1.3; Cx.cis 0.5 ]

let test_from_state_space_poles_are_eigenvalues () =
  let phi = Rmat.of_rows [| [| 0.8; 0.3 |]; [| 0.0; 0.4 |] |] in
  let h = Zd.from_state_space ~phi ~b:[| 1.0; 1.0 |] ~c:[| 1.0; 0.0 |] in
  let ps = List.sort (fun a b -> compare (Cx.re a) (Cx.re b)) (Zd.poles h) in
  match ps with
  | [ p1; p2 ] ->
      check_cx ~tol:1e-8 "eig 0.4" (Cx.of_float 0.4) p1;
      check_cx ~tol:1e-8 "eig 0.8" (Cx.of_float 0.8) p2
  | _ -> Alcotest.fail "two poles expected"

let test_algebra () =
  let a = Zd.make ~num:[ 1.0 ] ~den:[ -0.5; 1.0 ] in
  let b = Zd.make ~num:[ 2.0 ] ~den:[ 0.3; 1.0 ] in
  let z = Cx.cis 0.4 in
  check_cx "add" (Cx.add (Zd.eval a z) (Zd.eval b z)) (Zd.eval (Zd.add a b) z);
  check_cx "mul" (Cx.mul (Zd.eval a z) (Zd.eval b z)) (Zd.eval (Zd.mul a b) z);
  check_cx "scale" (Cx.scale 3.0 (Zd.eval a z)) (Zd.eval (Zd.scale 3.0 a) z)

let suite =
  [
    case "evaluation" test_eval;
    case "unit-circle response" test_freq_response;
    case "stability" test_stability;
    case "feedback" test_feedback;
    case "state space 1st order" test_from_state_space_first_order;
    case "state space 2nd order vs resolvent" test_from_state_space_second_order;
    case "ss poles are eigenvalues" test_from_state_space_poles_are_eigenvalues;
    case "algebra" test_algebra;
  ]
