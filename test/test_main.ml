(* The farm tests spawn this binary as their worker subprocess: dispatch
   the protocol server before Alcotest ever sees argv. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "farm-worker" then begin
    Test_farm.worker_main ();
    exit 0
  end

(* The serve shutdown test re-execs this binary as a process stuck in
   its drain, to prove the second signal force-exits it. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve-stuck" then begin
    Test_serve.stuck_main ();
    exit 0
  end

let () =
  Alcotest.run "pllscope"
    [
      ("numeric.cx", Test_cx.suite);
      ("numeric.cvec", Test_cvec.suite);
      ("numeric.cmat", Test_cmat.suite);
      ("numeric.lu", Test_lu.suite);
      ("numeric.poly", Test_poly.suite);
      ("numeric.roots", Test_roots.suite);
      ("numeric.rat", Test_rat.suite);
      ("numeric.partial_fraction", Test_partial_fraction.suite);
      ("numeric.special", Test_special.suite);
      ("numeric.fft", Test_fft.suite);
      ("numeric.quad", Test_quad.suite);
      ("numeric.optimize", Test_optimize.suite);
      ("numeric.ode", Test_ode.suite);
      ("numeric.rmat", Test_rmat.suite);
      ("numeric.interp_stats", Test_interp_stats.suite);
      ("numeric.prng_psd", Test_prng_psd.suite);
      ("lti.tf", Test_tf.suite);
      ("lti.bode_margins", Test_bode_margins.suite);
      ("lti.ss", Test_ss.suite);
      ("lti.zdomain", Test_zdomain.suite);
      ("core.htm", Test_htm.suite);
      ("core.htm_struct", Test_htm_struct.suite);
      ("core.grid", Test_grid.suite);
      ("core.lptv", Test_lptv.suite);
      ("circuit.mna", Test_circuit.suite);
      ("circuit.parse", Test_parse.suite);
      ("symbolic.expr", Test_expr.suite);
      ("symbolic.pll", Test_sym_pll.suite);
      ("pll.loop_filter", Test_loop_filter.suite);
      ("pll.vco_pfd", Test_vco_pfd.suite);
      ("pll.pll", Test_pll.suite);
      ("pll.design_analysis", Test_design_analysis.suite);
      ("pll.zmodel", Test_zmodel.suite);
      ("pll.sample_hold", Test_sample_hold.suite);
      ("pll.noise", Test_noise.suite);
      ("sim.waveform", Test_waveform.suite);
      ("sim.hybrid", Test_hybrid.suite);
      ("sim.behavioral", Test_behavioral.suite);
      ("sim.extract", Test_extract.suite);
      ("serve.stream", Test_stream.suite);
      ("experiments", Test_experiments.suite);
      ("experiments.extensions", Test_extensions.suite);
      ("sim.nonideal", Test_nonideal.suite);
      ("sim.noise_run", Test_noise_run.suite);
      ("sim.fractional", Test_fractional.suite);
      ("parallel.pool", Test_parallel.suite);
      ("robust", Test_robust.suite);
      ("runner", Test_runner.suite);
      ("farm", Test_farm.suite);
      ("serve", Test_serve.suite);
      ("golden.figures", Test_golden.suite);
    ]
