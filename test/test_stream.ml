(* Streaming, resumable, self-healing requests end to end:

   - golden-pinned idempotency keys: the canonical body fingerprint and
     its MD5 are wire format, so their exact bytes are asserted here —
     changing either encoder is a deliberate protocol break;
   - cell codec round trips (Ok rows and typed failure cells alike);
   - a streamed sweep reassembles byte-identical to the one-shot reply;
   - a mid-stream disconnect (injected) resumes by key: the client's
     second attempt starts from its contiguous prefix, the daemon
     replays journaled cells, and no point is ever computed twice;
   - a torn chunk frame (injected) reads as clean EOF and resumes the
     same way;
   - the journal survives a daemon restart: a fresh daemon on the same
     state dir replays the dead one's cells, still byte-identical;
   - a stale journal (injected fingerprint mismatch) is discarded and
     recomputed from scratch, not served;
   - LRU eviction racing concurrent single-flight misses at capacity 1
     stays coherent (all replies correct, evictions counted);
   - the retry budget turns a permanently dead daemon into a typed
     [Budget_exhausted] in bounded wall-clock;
   - the circuit breaker opens after the threshold, fast-fails with
     [Circuit_open], and closes again through a half-open probe;
   - Lru and Memo eviction counters (unit level), and the daemon's
     plan/grid memo hit counters surfaced through stats. *)

open Helpers
module Wire = Serve.Wire
module Client = Serve.Client
module Daemon = Serve.Daemon
module Frame = Runner.Journal.Frame

let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ();
      Parallel.Cancel.reset_global ())
    f

let spec = Pll_lib.Design.default_spec
let sock_counter = ref 0

let scratch_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pllscope_stream_%d_%d.sock" (Unix.getpid ()) !sock_counter)

let scratch_dir () =
  incr sock_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pllscope_state_%d_%d" (Unix.getpid ()) !sock_counter)
  in
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let base_cfg =
  {
    Daemon.default_config with
    Daemon.workers = 2;
    queue_depth = 2;
    max_clients = 16;
    read_timeout = 5.0;
    write_timeout = 5.0;
    drain_grace = 1.0;
    retry_after = 0.02;
    chunk_points = 2;
  }

let with_daemon ?(cfg = base_cfg) f =
  let path = scratch_sock () in
  let cfg = { cfg with Daemon.socket_path = Some path } in
  let d = Daemon.create cfg in
  let final = ref None in
  let th = Thread.create (fun () -> final := Some (Daemon.serve d)) () in
  let out =
    Fun.protect
      ~finally:(fun () ->
        Daemon.stop d;
        Thread.join th;
        if Sys.file_exists path then Sys.remove path)
      (fun () -> f path d)
  in
  match !final with
  | Some stats -> (out, stats)
  | None -> Alcotest.fail "daemon thread did not return stats"

let connect path () = Client.connect (Client.Unix_path path)

let ok = function
  | Ok v -> v
  | Error err ->
      Alcotest.failf "expected Ok, got %s" (Robust.Pllscope_error.to_string err)

let ratios6 = [| 0.05; 0.1; 0.15; 0.2; 0.25; 0.3 |]
let sweep6 = Wire.Sweep { spec; ratios = ratios6 }

(* The raw marshalled payload of a one-shot reply, straight off the
   frame — the reference bytes every streamed reassembly must match. *)
let raw_oneshot path body =
  let c = connect path () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let fd = Client.fd c in
      ok (Wire.send_request fd (Wire.oneshot body));
      match Frame.read_result ~timeout:10.0 fd with
      | Ok (Some (tag, payload)) ->
          check_int "result tag" Wire.tag_result tag;
          payload
      | Ok None -> Alcotest.fail "EOF instead of reply"
      | Error err ->
          Alcotest.failf "frame error: %s" (Robust.Pllscope_error.to_string err))

let streamed ?(attempts = 5) ?seed path =
  Client.sweep_streamed ~timeout:10.0 ~attempts ~base_delay:0.01
    ~max_delay:0.05 ?seed ~connect:(connect path) ~spec ~ratios:ratios6 ()

(* ------------------------------------------------------------------ *)
(* golden idempotency keys                                             *)

let test_stable_key_golden () =
  (* default spec: fref 1 MHz, n_div 64, icp 100 uA, kvco 20 MHz/V,
     ratio 0.1, phase margin 55 deg.  The fingerprint is the
     field-ordered hex of the raw IEEE-754 bits — version-stable text,
     no Marshal involved — and the key is its MD5.  These bytes are on
     the wire and in on-disk journal headers: do not change them
     without a protocol version bump. *)
  Alcotest.(check string)
    "spec fingerprint"
    "412e848000000000,4050000000000000,3f1a36e2eb1c432d,417312d000000000,3fb999999999999a,404b800000000000"
    (Wire.spec_fingerprint spec);
  Alcotest.(check string)
    "sweep fingerprint"
    "sweep|412e848000000000,4050000000000000,3f1a36e2eb1c432d,417312d000000000,3fb999999999999a,404b800000000000|3fa999999999999a|3fb999999999999a"
    (Wire.body_fingerprint (Wire.Sweep { spec; ratios = [| 0.05; 0.1 |] }));
  Alcotest.(check string)
    "sweep stable key" "4a3b334ea330e08bb18b9927f01bd2d4"
    (Wire.stable_key (Wire.Sweep { spec; ratios = [| 0.05; 0.1 |] }));
  Alcotest.(check string)
    "analyze stable key" "86cbece76dbaaab9180128754f3ce6bf"
    (Wire.stable_key (Wire.Analyze spec));
  (* the key depends on every float bit *)
  let spec' =
    { spec with Pll_lib.Design.ratio = Float.succ spec.Pll_lib.Design.ratio }
  in
  check_true "one ulp changes the key"
    (Wire.stable_key (Wire.Analyze spec) <> Wire.stable_key (Wire.Analyze spec'))

let test_cell_roundtrip () =
  let err : Wire.cell =
    Error
      (Robust.Pllscope_error.Worker_failure
         { task = 3; attempts = 2; last = "boom" })
  in
  (match Wire.decode_cell (Wire.encode_cell err) with
  | Ok (Error (Robust.Pllscope_error.Worker_failure f)) ->
      check_int "task survives" 3 f.task
  | _ -> Alcotest.fail "failure cell did not round-trip");
  match Wire.decode_cell "not a marshalled cell" with
  | Error (Robust.Pllscope_error.Parse _) -> ()
  | _ -> Alcotest.fail "garbage cell decoded"

(* ------------------------------------------------------------------ *)
(* streamed sweeps                                                     *)

let test_stream_byte_identical () =
  let (), stats =
    with_daemon (fun path _d ->
        let cold = raw_oneshot path sweep6 in
        let result, st = ok (streamed path) in
        check_true "reassembly byte-identical"
          (String.equal cold (Wire.marshal_response (Wire.R_sweep result)));
        check_int "no resumes" 0 st.Client.resumes;
        check_int "3 chunks of 2" 3 st.Client.chunks;
        check_int "all computed" 6 st.Client.computed;
        check_int "none replayed" 0 st.Client.replayed)
  in
  check_int "stream admitted" 1 stats.Wire.streams_started;
  check_int "no resume" 0 stats.Wire.streams_resumed

let test_stream_disconnect_resumes () =
  let dir = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { base_cfg with Daemon.state_dir = Some dir } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let cold = raw_oneshot path sweep6 in
        Robust.Inject.configure ~seed:3 "stream-disconnect:1";
        let result, st = ok (streamed path) in
        Robust.Inject.disarm ();
        check_true "reassembly byte-identical after resume"
          (String.equal cold (Wire.marshal_response (Wire.R_sweep result)));
        check_true "resumed at least once" (st.Client.resumes >= 1);
        check_true "summary replays the journaled prefix"
          (st.Client.replayed >= 2);
        check_int "summary covers every point" 6
          (st.Client.computed + st.Client.replayed))
  in
  (* the resume property that matters: across both attempts the engine
     evaluated each point exactly once *)
  check_int "no point computed twice" 6 stats.Wire.points_computed;
  check_true "journal replay counted" (stats.Wire.points_replayed >= 2);
  check_true "resume counted" (stats.Wire.streams_resumed >= 1)

let test_chunk_torn_resumes () =
  let dir = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { base_cfg with Daemon.state_dir = Some dir } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let cold = raw_oneshot path sweep6 in
        Robust.Inject.configure ~seed:3 "chunk-torn:1";
        let result, st = ok (streamed path) in
        Robust.Inject.disarm ();
        check_true "torn chunk reads as EOF, resume is byte-identical"
          (String.equal cold (Wire.marshal_response (Wire.R_sweep result)));
        check_true "resumed" (st.Client.resumes >= 1))
  in
  check_int "no point computed twice" 6 stats.Wire.points_computed

let test_daemon_restart_resumes () =
  let dir = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { base_cfg with Daemon.state_dir = Some dir } in
  (* first daemon: every chunk send disconnects; a one-attempt client
     gets the first chunk and gives up, leaving a two-cell journal *)
  let (), stats_a =
    with_daemon ~cfg (fun path _d ->
        Robust.Inject.configure ~seed:3 "stream-disconnect:1+";
        (match streamed ~attempts:1 path with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "stream survived a permanent disconnect fault");
        Robust.Inject.disarm ())
  in
  check_true "first daemon journaled a prefix"
    (stats_a.Wire.points_computed >= 2 && stats_a.Wire.points_computed < 6);
  let computed_a = stats_a.Wire.points_computed in
  (* second daemon, same state dir: the journal outlives the process *)
  let (), stats_b =
    with_daemon ~cfg (fun path _d ->
        let cold = raw_oneshot path sweep6 in
        let result, st = ok (streamed path) in
        check_true "byte-identical across a daemon restart"
          (String.equal cold (Wire.marshal_response (Wire.R_sweep result)));
        check_true "dead daemon's cells replayed"
          (st.Client.replayed >= computed_a))
  in
  check_true "restart resume counted" (stats_b.Wire.streams_resumed >= 1);
  check_int "recomputed only the missing points" (6 - computed_a)
    stats_b.Wire.points_computed

let test_stale_key_discarded () =
  let dir = scratch_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cfg = { base_cfg with Daemon.state_dir = Some dir } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let cold = raw_oneshot path sweep6 in
        let _ = ok (streamed path) in
        (* the journal is complete; a header mismatch must discard it *)
        Robust.Inject.configure ~seed:3 "stale-key:1";
        let result, st = ok (streamed path) in
        Robust.Inject.disarm ();
        check_true "recomputed result still byte-identical"
          (String.equal cold (Wire.marshal_response (Wire.R_sweep result)));
        check_int "nothing served from the stale journal" 6 st.Client.computed;
        check_int "nothing replayed" 0 st.Client.replayed)
  in
  check_int "stale journal counted" 1 stats.Wire.stale_keys

let test_stream_empty_grid_rejected () =
  let (), _stats =
    with_daemon (fun path _d ->
        match
          Client.sweep_streamed ~timeout:5.0 ~attempts:1
            ~connect:(connect path) ~spec ~ratios:[||] ()
        with
        | Error (Robust.Pllscope_error.Parse _) -> ()
        | Ok _ -> Alcotest.fail "empty streamed grid accepted"
        | Error err ->
            Alcotest.failf "wrong error: %s"
              (Robust.Pllscope_error.to_string err))
  in
  ()

(* ------------------------------------------------------------------ *)
(* cache races, budget, breaker                                        *)

let test_lru_races_single_flight () =
  (* capacity 1: every miss on body A evicts body B's entry and vice
     versa, while single-flight leaders and waiters race the same slots.
     Correctness bar: every reply decodes, per-body replies are
     byte-identical, and the counters add up. *)
  let cfg = { base_cfg with Daemon.workers = 4; cache_entries = 1 } in
  let bodies =
    [| Wire.Bode { spec; points = 8 }; Wire.Bode { spec; points = 9 } |]
  in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let golden = Array.map (fun b -> raw_oneshot path b) bodies in
        let bad = Atomic.make 0 in
        let threads =
          Array.init 4 (fun i ->
              Thread.create
                (fun () ->
                  for j = 0 to 7 do
                    let k = (i + j) mod 2 in
                    if
                      not
                        (String.equal golden.(k)
                           (raw_oneshot path bodies.(k)))
                    then Atomic.incr bad
                  done)
                ())
        in
        Array.iter Thread.join threads;
        check_int "every racing reply byte-identical" 0 (Atomic.get bad))
  in
  check_true "evictions happened under the race"
    (stats.Wire.cache_evictions >= 1);
  check_int "all requests accounted" 34
    (stats.Wire.cache_hits + stats.Wire.cache_misses
   + stats.Wire.single_flight_waits)

let test_budget_bounds_wall_clock () =
  let dead = scratch_sock () in
  (* nothing listens there: every attempt fails at connect *)
  let t0 = Unix.gettimeofday () in
  (match
     Client.with_retries ~attempts:1000 ~base_delay:0.05 ~max_delay:1.0
       ~budget:0.3
       ~connect:(fun () -> Client.connect (Client.Unix_path dead))
       (fun _ -> Alcotest.fail "connected to nothing")
   with
  | Error (Robust.Pllscope_error.Budget_exhausted b) ->
      check_close "budget echoed" 0.3 b.budget_s;
      check_true "spent at least one attempt" (b.attempts >= 1)
  | Ok _ -> Alcotest.fail "dead daemon answered"
  | Error err ->
      Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err));
  let elapsed = Unix.gettimeofday () -. t0 in
  (* 1000 attempts would back off for minutes; the budget must cut the
     schedule near its cap (slack for scheduler noise) *)
  check_true "failed in bounded time" (elapsed < 2.0)

let test_breaker_opens_and_recovers () =
  let dead = scratch_sock () in
  let br = Client.breaker ~threshold:2 ~cooldown:0.2 () in
  let call_dead () =
    Client.with_retries ~attempts:1 ~base_delay:0.01 ~breaker:br
      ~connect:(fun () -> Client.connect (Client.Unix_path dead))
      (fun _ -> Alcotest.fail "connected to nothing")
  in
  (match call_dead () with Error _ -> () | Ok _ -> Alcotest.fail "dead ok");
  check_true "one failure stays closed" (not (Client.breaker_is_open br));
  (match call_dead () with Error _ -> () | Ok _ -> Alcotest.fail "dead ok");
  check_true "threshold opens" (Client.breaker_is_open br);
  (* open circuit: typed fast-fail without touching the network *)
  let t0 = Unix.gettimeofday () in
  (match call_dead () with
  | Error (Robust.Pllscope_error.Circuit_open c) ->
      check_true "cooldown hint positive" (c.cooldown_s > 0.0)
  | Ok _ -> Alcotest.fail "open circuit served"
  | Error err ->
      Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err));
  check_true "fast fail" (Unix.gettimeofday () -. t0 < 0.1);
  (* after the cooldown a half-open probe goes through and a success
     closes the circuit again *)
  Thread.delay 0.25;
  let (), _stats =
    with_daemon (fun path _d ->
        (match
           Client.with_retries ~attempts:2 ~base_delay:0.01 ~breaker:br
             ~connect:(connect path)
             (fun c -> Client.request ~timeout:5.0 c (Wire.oneshot Wire.Health))
         with
        | Ok Wire.R_healthy -> ()
        | Ok _ -> Alcotest.fail "health reply mismatch"
        | Error err ->
            Alcotest.failf "half-open probe failed: %s"
              (Robust.Pllscope_error.to_string err));
        check_true "probe success closes" (not (Client.breaker_is_open br)))
  in
  ()

(* ------------------------------------------------------------------ *)
(* eviction counters and the plan/grid memo                            *)

let test_lru_eviction_counter () =
  let t = Serve.Lru.create ~cap:2 in
  Serve.Lru.add t "a" "1";
  Serve.Lru.add t "b" "2";
  check_int "no evictions yet" 0 (Serve.Lru.evictions t);
  Serve.Lru.add t "c" "3";
  Serve.Lru.add t "d" "4";
  check_int "two evictions" 2 (Serve.Lru.evictions t);
  (* refreshing never evicts *)
  Serve.Lru.add t "d" "4'";
  check_int "refresh is not an eviction" 2 (Serve.Lru.evictions t)

let test_memo_unit () =
  let m = Serve.Memo.create ~cap:2 in
  check_int "cold miss computes" 1 (Serve.Memo.find_or_add m "a" (fun () -> 1));
  check_int "warm hit replays" 1
    (Serve.Memo.find_or_add m "a" (fun () -> Alcotest.fail "recomputed"));
  let _ = Serve.Memo.find_or_add m "b" (fun () -> 2) in
  let _ = Serve.Memo.find_or_add m "c" (fun () -> 3) in
  check_int "bounded" 2 (Serve.Memo.length m);
  check_int "one hit" 1 (Serve.Memo.hits m);
  check_int "three misses" 3 (Serve.Memo.misses m);
  check_int "one eviction" 1 (Serve.Memo.evictions m);
  (* cap 0 disables *)
  let z = Serve.Memo.create ~cap:0 in
  let _ = Serve.Memo.find_or_add z "a" (fun () -> 1) in
  let _ = Serve.Memo.find_or_add z "a" (fun () -> 1) in
  check_int "cap 0 never stores" 0 (Serve.Memo.length z);
  check_int "cap 0 always misses" 2 (Serve.Memo.misses z)

let test_daemon_memo_counters () =
  (* response cache off, so the second analyze recomputes — and its
     synthesis comes from the plan memo *)
  let cfg = { base_cfg with Daemon.cache_entries = 0; memo_entries = 8 } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let a = raw_oneshot path (Wire.Analyze spec) in
        let b = raw_oneshot path (Wire.Analyze spec) in
        check_true "memoized recompute byte-identical" (String.equal a b))
  in
  check_true "memo missed cold" (stats.Wire.memo_misses >= 1);
  check_true "memo hit warm" (stats.Wire.memo_hits >= 1)

let suite =
  [
    case "idempotency keys golden-pinned" (clean test_stable_key_golden);
    case "cell codec round-trips" (clean test_cell_roundtrip);
    case "streamed sweep byte-identical to one-shot"
      (clean test_stream_byte_identical);
    slow_case "mid-stream disconnect resumes by key"
      (clean test_stream_disconnect_resumes);
    slow_case "torn chunk frame resumes by key" (clean test_chunk_torn_resumes);
    slow_case "journal survives daemon restart"
      (clean test_daemon_restart_resumes);
    case "stale journal discarded and recomputed"
      (clean test_stale_key_discarded);
    case "empty streamed grid rejected" (clean test_stream_empty_grid_rejected);
    slow_case "lru eviction races single-flight misses"
      (clean test_lru_races_single_flight);
    case "retry budget bounds wall-clock" (clean test_budget_bounds_wall_clock);
    slow_case "breaker opens, fast-fails, recovers"
      (clean test_breaker_opens_and_recovers);
    case "lru eviction counter" (clean test_lru_eviction_counter);
    case "memo hits, misses, evictions" (clean test_memo_unit);
    case "daemon memo counters surface in stats"
      (clean test_daemon_memo_counters);
  ]
