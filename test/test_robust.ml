(* The numerical-robustness layer end to end:

   - typed errors render deterministically (to_string, parse_snippet);
   - checked LU reports condition estimates and typed Singular errors on
     Hilbert-like and rank-deficient matrices;
   - every injected fault (lu-pivot, smat-nan, power-stall, pool-task)
     produces its typed error or a dense-oracle fallback that matches
     to_matrix_dense to 1e-9, counted in Robust.Stats;
   - the SMW denominator guard degrades a near-singular closed loop to
     the dense oracle (and raises under --strict);
   - checked pool sweeps retry deterministically, survivors staying
     bit-identical at any pool size. *)

open Numeric
open Helpers
module Htm = Htm_core.Htm
module Smat = Htm_core.Smat
module Pool = Parallel.Pool
module Sweep = Parallel.Sweep
module E = Robust.Pllscope_error

(* every test restores the global robustness state, pass or fail *)
let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ();
      Parallel.Cancel.reset_global ())
    f

let ctx3 = Htm.ctx ~n_harm:3 ~omega0:2.0

let check_matches_oracle ?(tol = 1e-9) msg ctx t s =
  let got = Htm.to_matrix ctx t s in
  let oracle = Htm.to_matrix_dense ctx t s in
  let n = Htm.dim ctx in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      check_cx ~tol
        (Printf.sprintf "%s (%d,%d)" msg i k)
        (Cmat.get oracle i k) (Cmat.get got i k)
    done
  done

(* ------------------------------------------------------------------ *)
(* typed errors                                                        *)

let test_error_strings () =
  let s = E.to_string in
  check_true "singular prints cond"
    (s (Singular { cond_est = 1e13; context = "Smat.feedback" })
    = "Smat.feedback: matrix is numerically singular (cond ~ 1.000e+13)");
  check_true "exact singular prints zero pivot"
    (s (Singular { cond_est = Float.infinity; context = "lu" })
    = "lu: matrix is exactly singular (zero pivot)");
  check_true "non-convergence"
    (s (Non_convergence { iters = 200; residual = 0.5 })
    = "iteration failed to converge after 200 iterations (residual 5.000e-01)");
  check_true "non-finite"
    (s (Non_finite { where = "Htm.structured" })
    = "Htm.structured: non-finite value (NaN/Inf) in result");
  check_true "parse column is 1-based on display"
    (s (Parse { file = "x.cir"; line = 2; col = 4; msg = "bad node" })
    = "x.cir:2:5: parse error: bad node");
  check_true "worker failure"
    (s (Worker_failure { task = 7; attempts = 3; last = "Failure(\"boom\")" })
    = "task 7 failed after 3 attempt(s): Failure(\"boom\")")

let test_parse_snippet () =
  let src = "R1 1 0 1k\nC2 a 0 1n\n" in
  let err = E.Parse { file = "f.cir"; line = 2; col = 3; msg = "bad node" } in
  (match E.parse_snippet ~src err with
  | Some snip ->
      check_true "caret under column 3" (snip = "  C2 a 0 1n\n     ^")
  | None -> Alcotest.fail "expected a snippet");
  check_true "non-parse errors have no snippet"
    (E.parse_snippet ~src (Non_finite { where = "x" }) = None);
  check_true "out-of-range line has no snippet"
    (E.parse_snippet ~src (Parse { file = "f"; line = 9; col = 0; msg = "" })
    = None)

(* ------------------------------------------------------------------ *)
(* checked LU                                                          *)

let cmatf_init n f =
  let a = Cmatf.create n n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      Cmatf.set a i k (f i k)
    done
  done;
  a

let test_checked_lu_identity () =
  let n = 6 in
  let a = Cmatf.identity n in
  let ws = Cmatf.lu_ws n in
  match Cmatf.lu_decompose_checked ~context:"test" a ws with
  | Ok est ->
      check_true "identity is perfectly conditioned"
        (est >= 1.0 && est <= 1.0 +. 1e-12)
  | Error e -> Alcotest.failf "identity rejected: %s" (E.to_string e)

let test_checked_lu_hilbert () =
  (* the 12x12 Hilbert matrix has kappa_1 ~ 1e16, far past the default
     1e12 threshold: the checked factorization must refuse it with a
     finite estimate in that range *)
  let n = 12 in
  let hilbert =
    cmatf_init n (fun i k -> Cx.of_float (1.0 /. float_of_int (i + k + 1)))
  in
  let ws = Cmatf.lu_ws n in
  match Cmatf.lu_decompose_checked ~context:"hilbert" hilbert ws with
  | Ok est -> Alcotest.failf "Hilbert-12 accepted with cond est %g" est
  | Error (Singular { cond_est; context }) ->
      check_true "context recorded" (context = "hilbert");
      check_true "estimate is finite" (Float.is_finite cond_est);
      check_true "estimate is huge" (cond_est > 1e12)
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

let test_checked_lu_rank_deficient () =
  (* row 1 = 2 x row 0: partial pivoting hits an exactly-zero column *)
  let rows = [| [| 1.0; 2.0; 3.0 |]; [| 2.0; 4.0; 6.0 |]; [| 0.5; 0.1; 0.9 |] |] in
  let a = cmatf_init 3 (fun i k -> Cx.of_float rows.(i).(k)) in
  let ws = Cmatf.lu_ws 3 in
  match Cmatf.lu_decompose_checked ~context:"rankdef" a ws with
  | Ok est -> Alcotest.failf "rank-deficient accepted with cond est %g" est
  | Error (Singular { cond_est; _ }) ->
      check_true "exact singularity reported as infinite cond"
        (cond_est = Float.infinity)
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

let test_checked_lu_threshold () =
  (* diag(1, 1e-8): kappa_1 = 1e8 — fine by default, rejected when the
     caller tightens max_cond below it *)
  let mk () =
    cmatf_init 2 (fun i k ->
        if i <> k then Cx.zero
        else if i = 0 then Cx.one
        else Cx.of_float 1e-8)
  in
  let ws = Cmatf.lu_ws 2 in
  (match Cmatf.lu_decompose_checked ~context:"diag" (mk ()) ws with
  | Ok est -> check_close ~tol:1e-3 "cond est of diag(1,1e-8)" 1e8 est
  | Error e -> Alcotest.failf "rejected under default: %s" (E.to_string e));
  match Cmatf.lu_decompose_checked ~max_cond:1e6 ~context:"diag" (mk ()) ws with
  | Ok est -> Alcotest.failf "accepted past max_cond with est %g" est
  | Error (Singular { cond_est; _ }) ->
      check_close ~tol:1e-3 "rejected with the same estimate" 1e8 cond_est
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

(* ------------------------------------------------------------------ *)
(* fault injection -> typed error / dense fallback                     *)

(* a banded open loop whose feedback takes the LU path *)
let banded_loop =
  Htm.feedback
    (Htm.series
       (Htm.lti (fun s -> Cx.div (Cx.of_float 0.4) (Cx.add s Cx.one)))
       (Htm.periodic_gain [| Cx.of_float 0.2; Cx.one; Cx.of_float 0.2 |]))

(* a chain through the sampler: its structured evaluation runs the
   rank-one matvec composition, i.e. Smat.mv *)
let sampler_chain =
  Htm.series (Htm.lti (fun s -> Cx.div Cx.one (Cx.add s Cx.one))) Htm.sampler

let s0 = Cx.make 0.05 0.4

let test_injected_lu_pivot () =
  Robust.Inject.configure "lu-pivot:1";
  (* the checked API reports the breakdown as a typed Singular *)
  (match Htm.structured_checked ctx3 banded_loop s0 with
  | Error (Singular { cond_est; _ }) ->
      check_true "forced pivot breakdown is exactly singular"
        (cond_est = Float.infinity)
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "injected pivot breakdown not detected");
  check_true "injection site was hit" (Robust.Inject.hits Lu_pivot >= 1);
  (* ... and the public evaluator degrades to the dense oracle *)
  Robust.Inject.configure "lu-pivot:1";
  check_matches_oracle "lu-pivot fallback" ctx3 banded_loop s0;
  let st = Robust.Stats.snapshot () in
  check_int "one dense fallback" 1 st.Robust.Stats.dense_fallbacks;
  check_int "counted as singular" 1 st.Robust.Stats.singular_guards

let test_injected_smat_nan () =
  Robust.Inject.configure "smat-nan:1";
  (match Htm.structured_checked ctx3 sampler_chain s0 with
  | Error (Non_finite { where }) ->
      check_true "NaN attributed to the structured evaluator"
        (String.length where > 0)
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "injected NaN not detected");
  Robust.Inject.configure "smat-nan:1";
  check_matches_oracle "smat-nan fallback" ctx3 sampler_chain s0;
  let st = Robust.Stats.snapshot () in
  check_int "one dense fallback" 1 st.Robust.Stats.dense_fallbacks;
  check_int "counted as non-finite" 1 st.Robust.Stats.nonfinite_guards

let test_injected_power_stall () =
  Robust.Inject.configure "power-stall:*";
  (match Htm.max_singular_value_checked ctx3 banded_loop 0.4 with
  | Error (Non_convergence { iters; residual }) ->
      check_true "budget exhausted" (iters >= 1);
      check_true "residual is reported" (Float.is_finite residual)
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)
  | Ok cert -> Alcotest.failf "stalled iteration certified sigma %g" cert.Htm.sigma);
  let st = Robust.Stats.snapshot () in
  check_int "counted as non-convergence" 1 st.Robust.Stats.non_convergences;
  (* with the stall gone, the same call certifies *)
  Robust.Inject.disarm ();
  match Htm.max_singular_value_checked ctx3 banded_loop 0.4 with
  | Ok cert -> check_true "clean run converges" cert.Htm.converged
  | Error e -> Alcotest.failf "clean run failed: %s" (E.to_string e)

(* ------------------------------------------------------------------ *)
(* SMW denominator guard on a near-singular closed loop                *)

let test_smw_guard_and_strict () =
  (* an aggressive design: omega_UG at 95% of the reference — the
     regime where the closed loop leans hardest on the feedback
     inversion. The guard threshold is then tightened to just above the
     attainable minimum so the Sherman-Morrison denominator check fires
     deterministically. *)
  let p =
    Pll_lib.Design.synthesize
      (Pll_lib.Design.with_ratio Pll_lib.Design.default_spec 0.95)
  in
  let w0 = Pll_lib.Pll.omega0 p in
  let ctx = Htm.ctx ~n_harm:6 ~omega0:w0 in
  let cl = Pll_lib.Pll.closed_loop_htm p in
  let s = Cx.jomega (0.95 *. w0) in
  (* sanity: with default thresholds the structured path is used *)
  check_matches_oracle "clean closed loop" ctx cl s;
  check_int "no fallback on the clean run" 0
    (Robust.Stats.snapshot ()).Robust.Stats.dense_fallbacks;
  (* tighten the guard: every nontrivial denominator trips it *)
  Robust.Config.set_smw_max_cond (1.0 +. 1e-12);
  check_matches_oracle "guarded closed loop falls back" ctx cl s;
  let st = Robust.Stats.snapshot () in
  check_true "fallback taken" (st.Robust.Stats.dense_fallbacks >= 1);
  check_true "counted as singular" (st.Robust.Stats.singular_guards >= 1);
  (* strict mode refuses instead of degrading *)
  Robust.Config.set_strict true;
  match Htm.to_matrix ctx cl s with
  | _ -> Alcotest.fail "strict mode did not raise"
  | exception E.Error (Singular { cond_est; _ }) ->
      check_true "strict raises with the offending proxy" (cond_est > 1.0)

(* ------------------------------------------------------------------ *)
(* checked pool sweeps                                                 *)

let test_pool_partial_failure_deterministic () =
  let f i =
    if i = 3 || i = 11 then failwith "Test_robust: deliberate task failure"
    else float_of_int i *. 1.7 +. sin (float_of_int i)
  in
  let idx = Array.init 16 (fun i -> i) in
  let run domains =
    Pool.with_pool ~domains (fun p -> Sweep.grid_checked ~pool:p ~retries:2 f idx)
  in
  let r1 = run 1 and r4 = run 4 in
  check_int "two failures (serial)" 2 (List.length r1.Sweep.failures);
  check_int "two failures (parallel)" 2 (List.length r4.Sweep.failures);
  check_int "fourteen survivors" 14 (Sweep.ok_count r4);
  List.iter2
    (fun (i1, e1) (i4, e4) ->
      check_int "failed index agrees across pool sizes" i1 i4;
      match (e1, e4) with
      | ( E.Worker_failure { task = t1; attempts = a1; _ },
          E.Worker_failure { task = t4; attempts = a4; _ } ) ->
          check_int "task matches index" i1 t1;
          check_int "task matches index (parallel)" i4 t4;
          check_int "retries exhausted" 3 a1;
          check_int "retries exhausted (parallel)" 3 a4
      | _ -> Alcotest.fail "expected Worker_failure")
    r1.Sweep.failures r4.Sweep.failures;
  (* survivors are bit-identical across pool sizes *)
  Array.iteri
    (fun i v1 ->
      match (v1, r4.Sweep.values.(i)) with
      | Some x1, Some x4 ->
          check_true "survivor bit-identical"
            (Int64.equal (Int64.bits_of_float x1) (Int64.bits_of_float x4))
      | None, None -> ()
      | _ -> Alcotest.fail "survivor sets differ across pool sizes")
    r1.Sweep.values;
  (* ... and bit-identical to the clean run of the surviving indices *)
  Array.iteri
    (fun i v ->
      match v with
      | None -> ()
      | Some x ->
          check_true "survivor matches clean evaluation"
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float (f i))))
    r4.Sweep.values;
  let summary = Format.asprintf "%a" Sweep.pp_partial r4 in
  check_true "summary names the failed points"
    (String.length summary > 0
    && String.length summary >= String.length "sweep:")

let test_pool_retry_recovers () =
  (* fails on first touch of index 5, succeeds on retry: the sweep must
     complete with no failures and count the retry *)
  let touched = Atomic.make 0 in
  let f i =
    if i = 5 && Atomic.fetch_and_add touched 1 = 0 then
      failwith "Test_robust: transient failure"
    else float_of_int (i * i)
  in
  let r =
    Pool.with_pool ~domains:2 (fun p ->
        Sweep.grid_checked ~pool:p ~retries:2 f (Array.init 8 (fun i -> i)))
  in
  check_int "no failures" 0 (List.length r.Sweep.failures);
  check_int "all points ok" 8 (Sweep.ok_count r);
  (match r.Sweep.values.(5) with
  | Some v -> check_close "retried value correct" 25.0 v
  | None -> Alcotest.fail "index 5 missing");
  let st = Robust.Stats.snapshot () in
  check_true "retry counted" (st.Robust.Stats.pool_retries >= 1);
  check_int "no worker failures" 0 st.Robust.Stats.worker_failures

let test_injected_pool_task () =
  (* the injected throw hits exactly one task attempt; the in-lane
     retry absorbs it *)
  Robust.Inject.configure "pool-task:1";
  let f i = float_of_int i +. 0.5 in
  let r =
    Pool.with_pool ~domains:1 (fun p ->
        Sweep.grid_checked ~pool:p ~retries:2 f (Array.init 6 (fun i -> i)))
  in
  check_int "no failures survive the retry" 0 (List.length r.Sweep.failures);
  check_int "all points ok" 6 (Sweep.ok_count r);
  let st = Robust.Stats.snapshot () in
  check_int "exactly one retry" 1 st.Robust.Stats.pool_retries;
  check_true "the injection site was hit" (Robust.Inject.hits Pool_task >= 1)

(* ------------------------------------------------------------------ *)
(* injection harness itself                                            *)

let test_inject_spec_grammar () =
  Robust.Inject.configure "lu-pivot:2";
  check_true "armed" (Robust.Inject.enabled ());
  check_true "first hit passes" (not (Robust.Inject.fire Lu_pivot));
  check_true "second hit fires" (Robust.Inject.fire Lu_pivot);
  check_true "third hit passes" (not (Robust.Inject.fire Lu_pivot));
  Robust.Inject.configure "smat-nan:2+";
  check_true "before threshold" (not (Robust.Inject.fire Smat_nan));
  check_true "at threshold" (Robust.Inject.fire Smat_nan);
  check_true "after threshold" (Robust.Inject.fire Smat_nan);
  (* seeded probabilistic trigger is reproducible *)
  let draw () =
    Robust.Inject.configure ~seed:42 "pool-task:~0.5";
    Array.init 64 (fun _ -> Robust.Inject.fire Pool_task)
  in
  check_true "probabilistic stream is seed-deterministic" (draw () = draw ());
  Robust.Inject.disarm ();
  check_true "disarmed" (not (Robust.Inject.enabled ()));
  check_true "disarmed sites never fire" (not (Robust.Inject.fire Lu_pivot));
  (match Robust.Inject.configure "nope:1" with
  | () -> Alcotest.fail "unknown site accepted"
  | exception Invalid_argument _ -> ());
  match Robust.Inject.configure "lu-pivot" with
  | () -> Alcotest.fail "missing trigger accepted"
  | exception Invalid_argument _ -> ()

let test_stats_pp () =
  Robust.Stats.record_fallback (Singular { cond_est = 1e15; context = "x" });
  Robust.Stats.record_retry ();
  let s = Format.asprintf "%a" Robust.Stats.pp (Robust.Stats.snapshot ()) in
  check_true "pp mentions the fallback"
    (s = "robust: 1 dense fallback(s) (1 singular, 0 non-finite, 0 \
          non-convergent), 1 pool retry(ies), 0 worker failure(s), 0 \
          timeout(s), 0 cancelled point(s), 0 resumed point(s)");
  check_int "total sums every counter" 3
    (Robust.Stats.total (Robust.Stats.snapshot ()));
  Robust.Stats.reset ();
  check_int "reset zeroes" 0 (Robust.Stats.total (Robust.Stats.snapshot ()))

let suite =
  [
    case "typed error rendering" (clean test_error_strings);
    case "parse snippet caret" (clean test_parse_snippet);
    case "checked LU: identity" (clean test_checked_lu_identity);
    case "checked LU: Hilbert-12 rejected" (clean test_checked_lu_hilbert);
    case "checked LU: rank-deficient rejected"
      (clean test_checked_lu_rank_deficient);
    case "checked LU: max_cond threshold" (clean test_checked_lu_threshold);
    case "inject lu-pivot: typed Singular + dense fallback"
      (clean test_injected_lu_pivot);
    case "inject smat-nan: typed Non_finite + dense fallback"
      (clean test_injected_smat_nan);
    case "inject power-stall: typed Non_convergence"
      (clean test_injected_power_stall);
    case "SMW guard: near-singular loop falls back; strict raises"
      (clean test_smw_guard_and_strict);
    case "pool: partial failure is typed and deterministic"
      (clean test_pool_partial_failure_deterministic);
    case "pool: transient failure absorbed by retry"
      (clean test_pool_retry_recovers);
    case "inject pool-task: retry absorbs the throw"
      (clean test_injected_pool_task);
    case "injection spec grammar" (clean test_inject_spec_grammar);
    case "stats formatting and reset" (clean test_stats_pp);
  ]
