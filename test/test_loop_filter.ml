open Numeric
open Helpers
module Lf = Pll_lib.Loop_filter
module Tf = Lti.Tf

let filt = Lf.make (Lf.Second_order { r = 1000.0; c1 = 1e-9; c2 = 1e-10 }) ~icp:1e-4

let test_impedance_against_components () =
  (* Z(s) = (R + 1/sC1) || (1/sC2), computed here directly from the
     component formulas and compared with the library's rational form *)
  let z = Lf.impedance filt in
  List.iter
    (fun w ->
      let s = Cx.jomega w in
      let branch1 =
        Cx.add (Cx.of_float 1000.0) (Cx.inv (Cx.mul s (Cx.of_float 1e-9)))
      in
      let branch2 = Cx.inv (Cx.mul s (Cx.of_float 1e-10)) in
      let expected =
        Cx.div (Cx.mul branch1 branch2) (Cx.add branch1 branch2)
      in
      check_cx ~tol:1e-9 "parallel combination" expected (Tf.eval z s))
    [ 1e3; 1e5; 1e6; 1e8 ]

let test_tf_scales_by_icp () =
  let s = Cx.jomega 1e6 in
  check_cx "H_LF = Icp Z" (Cx.scale 1e-4 (Tf.eval (Lf.impedance filt) s))
    (Tf.eval (Lf.tf filt) s)

let test_corner_frequencies () =
  check_close "zero at 1/RC1" (1.0 /. (1000.0 *. 1e-9)) (Lf.zero_freq filt);
  let cs = 1e-9 *. 1e-10 /. (1e-9 +. 1e-10) in
  check_close "pole at 1/RCs" (1.0 /. (1000.0 *. cs)) (Lf.pole_freq filt);
  check_true "pole above zero" (Lf.pole_freq filt > Lf.zero_freq filt)

let test_impedance_poles () =
  (* one pole at dc, one at -pole_freq *)
  let poles =
    List.sort (fun a b -> compare (Cx.re b) (Cx.re a)) (Tf.poles (Lf.impedance filt))
  in
  match poles with
  | [ p0; p1 ] ->
      check_cx ~tol:1e-9 "dc pole" Cx.zero p0;
      check_close ~tol:1e-6 "finite pole" (-.Lf.pole_freq filt) (Cx.re p1)
  | _ -> Alcotest.fail "expected two poles"

let test_third_order () =
  let f3 =
    Lf.make
      (Lf.Third_order { r = 1000.0; c1 = 1e-9; c2 = 1e-10; r3 = 500.0; c3 = 1e-10 })
      ~icp:1e-4
  in
  let z3 = Lf.impedance f3 in
  (* beyond the ripple pole the extra attenuation appears *)
  let w = 1.0 /. (500.0 *. 1e-10) *. 10.0 in
  let base = Cx.abs (Tf.eval (Lf.impedance filt) (Cx.jomega w)) in
  let with_pole = Cx.abs (Tf.eval z3 (Cx.jomega w)) in
  check_true "ripple pole attenuates" (with_pole < base /. 5.0);
  check_close "same zero" (Lf.zero_freq filt) (Lf.zero_freq f3)

let test_custom () =
  let z = Tf.gain 42.0 in
  let f = Lf.make (Lf.Custom z) ~icp:2.0 in
  check_close "custom tf" 84.0 (Tf.dc_gain (Lf.tf f));
  Alcotest.check_raises "no zero freq for custom"
    (Invalid_argument "Loop_filter.zero_freq: custom topology") (fun () ->
      ignore (Lf.zero_freq f))

let test_validation () =
  Alcotest.check_raises "bad icp"
    (Invalid_argument "Loop_filter.make: icp must be positive") (fun () ->
      ignore (Lf.make (Lf.Custom (Tf.gain 1.0)) ~icp:0.0));
  Alcotest.check_raises "bad component"
    (Invalid_argument "Loop_filter.make: components must be positive") (fun () ->
      ignore (Lf.make (Lf.Second_order { r = -1.0; c1 = 1e-9; c2 = 1e-10 }) ~icp:1e-4))

let test_synthesize () =
  let omega_ug = 1e6 and gamma = 3.0 and ctotal = 1e-9 in
  let r, c1, c2 = Lf.synthesize_second_order ~omega_ug ~gamma ~ctotal in
  check_close ~tol:1e-9 "total capacitance" ctotal (c1 +. c2);
  let f = Lf.make (Lf.Second_order { r; c1; c2 }) ~icp:1e-4 in
  check_close ~tol:1e-9 "zero placement" (omega_ug /. gamma) (Lf.zero_freq f);
  check_close ~tol:1e-9 "pole placement" (omega_ug *. gamma) (Lf.pole_freq f);
  Alcotest.check_raises "gamma <= 1"
    (Invalid_argument "Loop_filter.synthesize_second_order: gamma must exceed 1")
    (fun () -> ignore (Lf.synthesize_second_order ~omega_ug ~gamma:0.9 ~ctotal))

let prop_synthesis_round_trip =
  qcheck ~count:30 "synthesized filter hits requested corners"
    (QCheck2.Gen.pair (QCheck2.Gen.float_range 1.5 10.0)
       (QCheck2.Gen.float_range 1e4 1e8)) (fun (gamma, omega_ug) ->
      let r, c1, c2 =
        Lf.synthesize_second_order ~omega_ug ~gamma ~ctotal:1e-9
      in
      let f = Lf.make (Lf.Second_order { r; c1; c2 }) ~icp:1e-4 in
      Float.abs (Lf.zero_freq f -. (omega_ug /. gamma)) < 1e-6 *. omega_ug
      && Float.abs (Lf.pole_freq f -. (omega_ug *. gamma)) < 1e-6 *. omega_ug *. gamma)

let suite =
  [
    case "impedance vs component math" test_impedance_against_components;
    case "transimpedance scaling" test_tf_scales_by_icp;
    case "corner frequencies" test_corner_frequencies;
    case "pole structure" test_impedance_poles;
    case "third-order ripple pole" test_third_order;
    case "custom topology" test_custom;
    case "validation" test_validation;
    case "synthesis" test_synthesize;
    prop_synthesis_round_trip;
  ]
