open Helpers

(* Integration tests: every experiment harness runs and its output obeys
   the qualitative shape the paper reports. *)

let test_fig5_shape () =
  let rows = Experiments.Exp_fig5.compute ~points:41 () in
  check_int "rows" 41 (List.length rows);
  let first = List.hd rows in
  let last = List.nth rows 40 in
  (* -40 dB/dec at both ends: two decades below crossover ~ +80 dB,
     two decades above ~ -80 dB (one pole cancelled by the zero, one
     added back by the filter pole) *)
  check_true "high gain at low freq" (first.Experiments.Exp_fig5.mag_db > 60.0);
  check_true "low gain at high freq" (last.Experiments.Exp_fig5.mag_db < -60.0);
  (* phase starts near -180, rises through the lead region, returns *)
  check_true "phase starts near -180"
    (Float.abs (first.Experiments.Exp_fig5.phase_deg +. 180.0) < 8.0);
  check_true "phase ends near -180"
    (Float.abs (last.Experiments.Exp_fig5.phase_deg +. 180.0) < 8.0);
  let boost =
    List.fold_left
      (fun acc r -> Stdlib.max acc r.Experiments.Exp_fig5.phase_deg)
      neg_infinity rows
  in
  check_close ~tol:0.5 "max phase boost = -180 + 55 + margin shape" (-125.0) boost

let test_fig5_unity_crossing () =
  let rows = Experiments.Exp_fig5.compute () in
  (* magnitude crosses 0 dB at omega_norm = 1 by construction *)
  let nearest =
    List.fold_left
      (fun acc r ->
        if Float.abs (r.Experiments.Exp_fig5.omega_norm -. 1.0)
           < Float.abs (acc.Experiments.Exp_fig5.omega_norm -. 1.0)
        then r
        else acc)
      (List.hd rows) rows
  in
  check_true "0 dB near crossover" (Float.abs nearest.Experiments.Exp_fig5.mag_db < 1.0)

let test_fig7_reproduces_paper () =
  let rows = Experiments.Exp_fig7.compute ~ratios:[ 0.05; 0.1; 0.2 ] () in
  check_int "rows" 3 (List.length rows);
  List.iter
    (fun r ->
      let open Pll_lib.Analysis in
      check_close ~tol:1e-6 "LTI line flat" 55.0 r.pm_lti_deg;
      check_true "effective UGF >= LTI UGF" (r.omega_ug_eff_norm >= 1.0);
      check_true "margin below LTI" (r.pm_eff_deg < 55.0))
    rows;
  (* the paper's 9% claim at ratio 0.1 *)
  let r01 = List.nth rows 1 in
  let loss = 1.0 -. (r01.Pll_lib.Analysis.pm_eff_deg /. 55.0) in
  check_true
    (Printf.sprintf "PM loss at 0.1 is ~9%% (got %.1f%%)" (100.0 *. loss))
    (loss > 0.07 && loss < 0.11)

let test_fig2_consistency () =
  let r = Experiments.Exp_fig2.compute ~harmonics:2 ~n_harm:40 () in
  check_int "sampler rank" 1 r.Experiments.Exp_fig2.sampler_rank;
  check_true "closed form vs LU within truncation error"
    (r.Experiments.Exp_fig2.max_rel_dev < 5e-3);
  (* baseband row dominates all others (lowpass closed loop) *)
  let cf = r.Experiments.Exp_fig2.closed_form in
  check_true "baseband dominates" (cf.(2).(0) > cf.(1).(0) && cf.(2).(0) > cf.(3).(0));
  (* rank-one structure: each row constant across input bands *)
  Array.iter
    (fun row ->
      Array.iter (fun v -> check_close ~tol:1e-12 "row constant" row.(0) v) row)
    cf

let test_fig4_linear_in_width () =
  let rows = Experiments.Exp_fig4.compute ~widths:[ 1e-3; 1e-2; 1e-1 ] () in
  check_int "rows" 3 (List.length rows);
  let errs = List.map (fun r -> r.Experiments.Exp_fig4.rel_err) rows in
  (match errs with
  | [ e1; e2; e3 ] ->
      check_true "error grows with width" (e1 < e2 && e2 < e3);
      (* leading error is linear in width: a decade in width is about a
         decade in error *)
      check_close ~tol:0.2 "slope ~ 1 decade/decade" 1.0 (log10 (e2 /. e1));
      check_true "narrow pulses are impulses" (e1 < 1e-3)
  | _ -> Alcotest.fail "three rows expected");
  List.iter
    (fun r ->
      check_true "pulse response below impulse response"
        (Float.abs r.Experiments.Exp_fig4.theta_pulse
         <= Float.abs r.Experiments.Exp_fig4.theta_impulse))
    rows

let test_fig6_without_simulation () =
  let curves =
    Experiments.Exp_fig6.compute ~ratios:[ 0.05; 0.2 ] ~points:15 ~sim_points:0 ()
  in
  check_int "two curves" 2 (List.length curves);
  let c01 = List.hd curves and c05 = List.nth curves 1 in
  (* peaking grows with the ratio *)
  let peak c =
    List.fold_left
      (fun acc p -> Stdlib.max acc p.Experiments.Exp_fig6.htm_mag)
      0.0 c.Experiments.Exp_fig6.points
  in
  check_true "peaking grows with loop speed" (peak c05 > peak c01);
  (* HTM and LTI agree at low frequency, disagree near the band edge *)
  let low = List.hd c01.Experiments.Exp_fig6.points in
  check_close ~tol:0.05 "agreement at low frequency"
    low.Experiments.Exp_fig6.htm_mag low.Experiments.Exp_fig6.lti_mag

let test_fig6_with_simulation () =
  let curves =
    Experiments.Exp_fig6.compute ~ratios:[ 0.1 ] ~points:5 ~sim_points:3 ()
  in
  let c = List.hd curves in
  check_true "simulator within paper's 2%" (c.Experiments.Exp_fig6.worst_sim_err < 0.02)

let test_xchk () =
  let r = Experiments.Exp_xchk.compute () in
  List.iter
    (fun row ->
      check_true "truncated close" (row.Experiments.Exp_xchk.truncated_dev < 1e-3);
      check_true "matrix close" (row.Experiments.Exp_xchk.matrix_dev < 5e-3);
      check_true "zmodel exact" (row.Experiments.Exp_xchk.zmodel_dev < 1e-12))
    r.Experiments.Exp_xchk.lambda_rows;
  List.iter
    (fun p -> check_true "pole residual tiny" (p.Experiments.Exp_xchk.residual < 1e-6))
    r.Experiments.Exp_xchk.pole_rows;
  check_true "step settles" (r.Experiments.Exp_xchk.step_final_dev < 1e-6)

let test_report_table_validation () =
  Alcotest.check_raises "ragged rows"
    (Invalid_argument "Report.table: row 0 has 1 cells, expected 2") (fun () ->
      Experiments.Report.table Format.str_formatter ~title:"t"
        ~header:[ "a"; "b" ] [ [ "only" ] ])

let suite =
  [
    case "fig5 open-loop shape" test_fig5_shape;
    case "fig5 unity crossing" test_fig5_unity_crossing;
    case "fig7 margin collapse (paper claim)" test_fig7_reproduces_paper;
    case "fig2 conversion map consistency" test_fig2_consistency;
    case "fig4 pulse-impulse equivalence" test_fig4_linear_in_width;
    case "fig6 analytic curves" test_fig6_without_simulation;
    slow_case "fig6 simulator spot checks" test_fig6_with_simulation;
    slow_case "cross-validation" test_xchk;
    case "report validation" test_report_table_validation;
  ]
