open Numeric
open Helpers

(* 1 / (s + 1) *)
let lowpass = Rat.make Poly.one (Poly.of_real_coeffs [ 1.0; 1.0 ])

(* s / (s + 2) *)
let highpass = Rat.make Poly.s (Poly.of_real_coeffs [ 2.0; 1.0 ])

let test_eval () =
  check_cx "lowpass at 0" Cx.one (Rat.eval lowpass Cx.zero);
  check_cx "lowpass at 1" (Cx.of_float 0.5) (Rat.eval lowpass Cx.one);
  check_cx "s at 3" (Cx.of_float 3.0) (Rat.eval Rat.s (Cx.of_float 3.0));
  check_cx "constant" (Cx.of_float 4.2) (Rat.eval (Rat.constant (Cx.of_float 4.2)) Cx.j)

let test_algebra () =
  let x = Cx.make 0.3 1.7 in
  check_cx "add" (Cx.add (Rat.eval lowpass x) (Rat.eval highpass x))
    (Rat.eval (Rat.add lowpass highpass) x);
  check_cx "sub" (Cx.sub (Rat.eval lowpass x) (Rat.eval highpass x))
    (Rat.eval (Rat.sub lowpass highpass) x);
  check_cx "mul" (Cx.mul (Rat.eval lowpass x) (Rat.eval highpass x))
    (Rat.eval (Rat.mul lowpass highpass) x);
  check_cx "div" (Cx.div (Rat.eval lowpass x) (Rat.eval highpass x))
    (Rat.eval (Rat.div lowpass highpass) x);
  check_cx "neg" (Cx.neg (Rat.eval lowpass x)) (Rat.eval (Rat.neg lowpass) x);
  check_cx "inv" (Cx.inv (Rat.eval lowpass x)) (Rat.eval (Rat.inv lowpass) x);
  check_cx "pow 2" (Cx.mul (Rat.eval lowpass x) (Rat.eval lowpass x))
    (Rat.eval (Rat.pow lowpass 2) x);
  check_cx "pow -1" (Cx.inv (Rat.eval lowpass x)) (Rat.eval (Rat.pow lowpass (-1)) x)

let test_feedback () =
  let x = Cx.make 0.1 0.9 in
  let g = Rat.eval lowpass x and h = Rat.eval highpass x in
  check_cx "feedback formula"
    (Cx.div g (Cx.add Cx.one (Cx.mul g h)))
    (Rat.eval (Rat.feedback lowpass highpass) x);
  check_cx "unity feedback"
    (Cx.div g (Cx.add Cx.one g))
    (Rat.eval (Rat.feedback_unity lowpass) x)

let test_poles_zeros_degree () =
  check_int "relative degree lowpass" 1 (Rat.relative_degree lowpass);
  check_int "relative degree highpass" 0 (Rat.relative_degree highpass);
  check_true "lowpass strictly proper" (Rat.is_strictly_proper lowpass);
  check_true "highpass proper" (Rat.is_proper highpass);
  check_true "highpass not strictly proper" (not (Rat.is_strictly_proper highpass));
  (match Rat.poles lowpass with
  | [ p ] -> check_cx "pole" (Cx.of_float (-1.0)) p
  | _ -> Alcotest.fail "expected one pole");
  match Rat.zeros highpass with
  | [ z ] -> check_cx "zero" Cx.zero z
  | _ -> Alcotest.fail "expected one zero"

let test_derivative () =
  (* d/ds 1/(s+1) = -1/(s+1)^2 *)
  let d = Rat.derivative lowpass in
  let x = Cx.of_float 2.0 in
  check_cx "derivative value" (Cx.of_float (-1.0 /. 9.0)) (Rat.eval d x)

let test_reduce () =
  (* (s+1)(s+2) / (s+1)(s+3): the (s+1) pair cancels *)
  let r =
    Rat.make
      (Poly.from_roots [ Cx.of_float (-1.0); Cx.of_float (-2.0) ])
      (Poly.from_roots [ Cx.of_float (-1.0); Cx.of_float (-3.0) ])
  in
  let reduced = Rat.reduce r in
  check_int "num degree after cancel" 1 (Poly.degree reduced.Rat.num);
  check_int "den degree after cancel" 1 (Poly.degree reduced.Rat.den);
  check_true "same response" (Rat.equal_response r reduced);
  (* zero numerator reduces to literal zero *)
  let z = Rat.reduce (Rat.make Poly.zero (Poly.of_real_coeffs [ 1.0; 1.0 ])) in
  check_true "zero stays zero" (Poly.is_zero z.Rat.num)

let test_normalize () =
  let r = Rat.make (Poly.of_real_coeffs [ 2.0 ]) (Poly.of_real_coeffs [ 4.0; 2.0 ]) in
  let n = Rat.normalize r in
  check_cx "monic den lead" Cx.one (Poly.coeff n.Rat.den 1);
  check_true "same response" (Rat.equal_response r n)

let test_zero_den_raises () =
  Alcotest.check_raises "make with zero den" Division_by_zero (fun () ->
      ignore (Rat.make Poly.one Poly.zero));
  Alcotest.check_raises "inv of zero" Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero))

let gen_rat =
  QCheck2.Gen.map2
    (fun n d ->
      let d = if Poly.is_zero d then Poly.one else d in
      Rat.make n d)
    gen_poly gen_poly

let prop_add_comm =
  qcheck ~count:50 "addition commutative (as response)"
    (QCheck2.Gen.pair gen_rat gen_rat) (fun (a, b) ->
      Rat.equal_response ~tol:1e-5 (Rat.add a b) (Rat.add b a))

let prop_mul_inverse =
  qcheck ~count:50 "r * (1/r) = 1 away from poles/zeros" gen_rat (fun r ->
      QCheck2.assume (not (Poly.is_zero r.Rat.num));
      Rat.equal_response ~tol:1e-5 Rat.one (Rat.mul r (Rat.inv r)))

let suite =
  [
    case "evaluation" test_eval;
    case "field algebra" test_algebra;
    case "feedback composition" test_feedback;
    case "poles/zeros/degrees" test_poles_zeros_degree;
    case "derivative" test_derivative;
    case "pole-zero cancellation" test_reduce;
    case "normalization" test_normalize;
    case "division by zero" test_zero_den_raises;
    prop_add_comm;
    prop_mul_inverse;
  ]
