open Numeric
open Helpers
module Vco = Pll_lib.Vco
module Pfd = Pll_lib.Pfd
module Htm = Htm_core.Htm

let test_time_invariant_sensitivity () =
  let vco = Vco.time_invariant ~kvco:20e6 ~n_div:64.0 ~fref:1e6 in
  check_close "v0 = Kvco/(N fref)" (20e6 /. 64e6) vco.Vco.v0;
  check_true "flagged time-invariant" (Vco.is_time_invariant vco);
  Alcotest.check_raises "bad kvco"
    (Invalid_argument "Vco.sensitivity: kvco, n_div and fref must be positive")
    (fun () ->
      ignore (Vco.time_invariant ~kvco:0.0 ~n_div:64.0 ~fref:1e6))

let test_tf () =
  let vco = Vco.time_invariant ~kvco:20e6 ~n_div:64.0 ~fref:1e6 in
  (* v0/s *)
  check_cx "tf at s=1" (Cx.of_float vco.Vco.v0) (Lti.Tf.eval (Vco.tf vco) Cx.one);
  check_cx "tf at s=2j"
    (Cx.div (Cx.of_float vco.Vco.v0) (Cx.jomega 2.0))
    (Lti.Tf.eval (Vco.tf vco) (Cx.jomega 2.0))

let test_isf_construction () =
  let vco =
    Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6
      ~harmonics:[ Cx.of_float 0.3; Cx.make 0.0 0.1 ]
  in
  check_true "time-varying" (not (Vco.is_time_invariant vco));
  let coeffs = Vco.isf_coeffs vco ~max_harmonic:3 in
  check_int "padded length" 7 (Array.length coeffs);
  check_cx "dc slot" (Cx.of_float vco.Vco.v0) coeffs.(3);
  check_cx "k=1 scaled by v0" (Cx.scale vco.Vco.v0 (Cx.of_float 0.3)) coeffs.(4);
  check_cx "k=-1 conjugate" (Cx.conj coeffs.(4)) coeffs.(2);
  check_cx "k=2" (Cx.scale vco.Vco.v0 (Cx.make 0.0 0.1)) coeffs.(5);
  check_cx "k=3 zero padded" Cx.zero coeffs.(6);
  check_true "real ISF" (Htm_core.Lptv.conj_symmetric coeffs)

let test_isf_truncation () =
  let vco =
    Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6
      ~harmonics:[ Cx.of_float 0.3; Cx.of_float 0.2; Cx.of_float 0.1 ]
  in
  let coeffs = Vco.isf_coeffs vco ~max_harmonic:1 in
  check_int "truncated length" 3 (Array.length coeffs);
  check_cx "k=1 kept" (Cx.scale vco.Vco.v0 (Cx.of_float 0.3)) coeffs.(2)

let test_vco_htm_time_invariant () =
  (* eq. 25 with v_k = 0 for k <> 0: diagonal v0/(s + j n w0) *)
  let vco = Vco.time_invariant ~kvco:20e6 ~n_div:64.0 ~fref:1e6 in
  let omega0 = 2.0 *. Float.pi *. 1e6 in
  let ctx = Htm.ctx ~n_harm:2 ~omega0 in
  let s = Cx.jomega (0.3 *. omega0) in
  let m = Htm.to_matrix ctx (Vco.htm vco) s in
  for i = 0 to 4 do
    let n = float_of_int (Htm.harmonic_of_index ctx i) in
    let expected =
      Cx.div (Cx.of_float vco.Vco.v0) (Cx.add s (Cx.jomega (n *. omega0)))
    in
    check_cx "diagonal v0/(s+jnw0)" expected (Cmat.get m i i)
  done;
  check_true "diagonal overall" (Htm.is_lti ctx (Vco.htm vco) s)

let test_vco_htm_time_varying () =
  (* eq. 25 general: H_{n,m} = v_{n-m} / (s + j n w0) *)
  let vco =
    Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6 ~harmonics:[ Cx.of_float 0.4 ]
  in
  let omega0 = 2.0 *. Float.pi *. 1e6 in
  let ctx = Htm.ctx ~n_harm:2 ~omega0 in
  let s = Cx.jomega (0.2 *. omega0) in
  let m = Htm.to_matrix ctx (Vco.htm vco) s in
  let coeffs = Vco.isf_coeffs vco ~max_harmonic:4 in
  for i = 0 to 4 do
    for k = 0 to 4 do
      let n = Htm.harmonic_of_index ctx i in
      let vk = coeffs.(i - k + 4) in
      let expected =
        Cx.div vk (Cx.add s (Cx.jomega (float_of_int n *. omega0)))
      in
      check_cx "eq. 25 entry" expected (Cmat.get m i k)
    done
  done

let test_pfd_sampling () =
  check_close "lti gain is 1/T" (1.0 /. 2.0 /. Float.pi *. 3.0)
    (Pfd.lti_gain Pfd.sampling ~omega0:3.0);
  let ctx = Htm.ctx ~n_harm:4 ~omega0:2.0 in
  check_int "sampler rank one" 1 (Pfd.sampler_matrix_rank ctx)

let test_pfd_mixing () =
  let pfd = Pfd.mixing ~gain:2.0 in
  check_close "mixer has no baseband gain" 0.0 (Pfd.lti_gain pfd ~omega0:1.0);
  let ctx = Htm.ctx ~n_harm:2 ~omega0:1.0 in
  let m = Htm.to_matrix ctx (Pfd.htm pfd) Cx.one in
  (* multiplication by gain*cos: +-1 diagonals at gain/2 *)
  check_cx "upper diag" Cx.one (Cmat.get m 1 2);
  check_cx "lower diag" Cx.one (Cmat.get m 2 1);
  check_cx "main diag empty" Cx.zero (Cmat.get m 2 2)

let test_divider () =
  let d = Pll_lib.Divider.make 64.0 in
  check_close "time shift preserved" 1.0 (Pll_lib.Divider.time_shift_gain d);
  check_close "radian gain 1/N" (1.0 /. 64.0) (Pll_lib.Divider.radian_gain d);
  check_close "to_radians" (2.0 *. Float.pi)
    (Pll_lib.Divider.to_radians d ~fref:1e6 1e-6);
  check_close "vco radians" (2.0 *. Float.pi *. 64.0)
    (Pll_lib.Divider.vco_radians_of_time_shift d ~fref:1e6 1e-6);
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Divider.make: ratio must be positive") (fun () ->
      ignore (Pll_lib.Divider.make 0.0))

let suite =
  [
    case "time-invariant sensitivity" test_time_invariant_sensitivity;
    case "vco transfer function" test_tf;
    case "isf construction" test_isf_construction;
    case "isf truncation" test_isf_truncation;
    case "vco HTM time-invariant (eq. 25)" test_vco_htm_time_invariant;
    case "vco HTM time-varying (eq. 25)" test_vco_htm_time_varying;
    case "sampling pfd" test_pfd_sampling;
    case "mixing pfd" test_pfd_mixing;
    case "divider conventions" test_divider;
  ]
