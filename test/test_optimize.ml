open Numeric
open Helpers

let test_bisect () =
  check_close ~tol:1e-9 "sqrt 2" (sqrt 2.0)
    (Optimize.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0);
  check_close "root at endpoint" 1.0 (Optimize.bisect (fun x -> x -. 1.0) 1.0 2.0);
  Alcotest.check_raises "no bracket" Optimize.No_bracket (fun () ->
      ignore (Optimize.bisect (fun x -> (x *. x) +. 1.0) (-1.0) 1.0))

let test_brent () =
  check_close ~tol:1e-10 "sqrt 2" (sqrt 2.0)
    (Optimize.brent (fun x -> (x *. x) -. 2.0) 0.0 2.0);
  check_close ~tol:1e-10 "cos crossing" (Float.pi /. 2.0)
    (Optimize.brent cos 1.0 2.0);
  (* nasty flat function near the root *)
  check_close ~tol:1e-6 "cubic root" 0.0
    (Optimize.brent (fun x -> x ** 3.0) (-1.0) 0.5);
  Alcotest.check_raises "no bracket" Optimize.No_bracket (fun () ->
      ignore (Optimize.brent (fun x -> (x *. x) +. 1.0) (-1.0) 1.0))

let test_spaces () =
  let ls = Optimize.linspace 0.0 10.0 11 in
  check_int "linspace count" 11 (Array.length ls);
  check_close "linspace start" 0.0 ls.(0);
  check_close "linspace mid" 5.0 ls.(5);
  check_close "linspace end" 10.0 ls.(10);
  let lg = Optimize.logspace 1.0 100.0 3 in
  check_close "logspace mid" 10.0 lg.(1);
  check_close "logspace end" 100.0 lg.(2);
  Alcotest.check_raises "logspace negative"
    (Invalid_argument "Optimize.logspace: bounds must be positive") (fun () ->
      ignore (Optimize.logspace (-1.0) 1.0 5))

let test_crossings () =
  (* sin crosses zero at pi, 2pi, 3pi within [1, 10] *)
  let found = Optimize.find_all_crossings sin ~lo:1.0 ~hi:10.0 in
  check_int "three crossings" 3 (List.length found);
  List.iteri
    (fun i x ->
      check_close ~tol:1e-8 "crossing location" (float_of_int (i + 1) *. Float.pi) x)
    found;
  match Optimize.find_first_crossing sin ~lo:1.0 ~hi:10.0 with
  | Some x -> check_close ~tol:1e-8 "first crossing" Float.pi x
  | None -> Alcotest.fail "expected a crossing"

let test_no_crossing () =
  Alcotest.(check (option (float 1e-6))) "no crossing" None
    (Optimize.find_first_crossing (fun _ -> 1.0) ~lo:1.0 ~hi:10.0)

let test_golden_min () =
  check_close ~tol:1e-6 "parabola min" 3.0
    (Optimize.golden_min (fun x -> (x -. 3.0) ** 2.0) 0.0 10.0);
  check_close ~tol:1e-6 "cos min" Float.pi (Optimize.golden_min cos 2.0 4.0)

let prop_brent_finds_root =
  qcheck ~count:50 "brent residual tiny"
    (QCheck2.Gen.pair (QCheck2.Gen.float_range 0.2 5.0) (QCheck2.Gen.float_range (-3.0) 3.0))
    (fun (a, b) ->
      (* f(x) = a x + b has root -b/a; bracket generously *)
      let f x = (a *. x) +. b in
      let r = Optimize.brent f (-100.0) 100.0 in
      Float.abs (f r) < 1e-8 *. (1.0 +. Float.abs b))

let suite =
  [
    case "bisect" test_bisect;
    case "brent" test_brent;
    case "linspace/logspace" test_spaces;
    case "crossing search" test_crossings;
    case "no crossing" test_no_crossing;
    case "golden minimum" test_golden_min;
    prop_brent_finds_root;
  ]
