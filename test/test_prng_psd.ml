open Numeric
open Helpers

let test_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check_close "same stream" (Prng.float a) (Prng.float b)
  done;
  let c = Prng.create ~seed:43L in
  check_true "different seeds differ"
    (Prng.float (Prng.create ~seed:42L) <> Prng.float c)

let test_uniform_range () =
  let g = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let x = Prng.float g in
    check_true "in [0,1)" (x >= 0.0 && x < 1.0)
  done;
  let y = Prng.uniform g ~lo:(-2.0) ~hi:5.0 in
  check_true "in range" (y >= -2.0 && y < 5.0)

let test_uniform_moments () =
  let g = Prng.create ~seed:11L in
  let xs = Array.init 100_000 (fun _ -> Prng.float g) in
  check_close ~tol:0.01 "mean 1/2" 0.5 (Stats.mean xs);
  check_close ~tol:0.02 "variance 1/12" (1.0 /. 12.0) (Stats.variance xs)

let test_gaussian_moments () =
  let g = Prng.create ~seed:13L in
  let xs = Prng.gaussian_array g 200_000 ~sigma:2.0 in
  check_close ~tol:0.02 "zero mean" 0.0 (Stats.mean xs);
  check_close ~tol:0.02 "variance sigma^2" 4.0 (Stats.variance xs);
  (* tail sanity: ~2.3% beyond 2 sigma on each side *)
  let beyond =
    Array.fold_left (fun acc x -> if x > 4.0 then acc + 1 else acc) 0 xs
  in
  let frac = float_of_int beyond /. 200_000.0 in
  check_true "upper tail ~ 2.3%" (frac > 0.018 && frac < 0.028)

let test_copy_independent () =
  let g = Prng.create ~seed:3L in
  let h = Prng.copy g in
  check_close "copies continue identically" (Prng.float g) (Prng.float h)

let test_welch_white_noise_level () =
  (* white noise of variance sigma^2 sampled at dt: two-sided PSD is
     sigma^2 * dt *)
  let g = Prng.create ~seed:21L in
  let dt = 1e-3 and sigma = 3.0 in
  let xs = Prng.gaussian_array g 65536 ~sigma in
  let est = Psd.welch xs ~dt ~segment:512 in
  let level = Psd.band_average est ~lo:(est.Psd.omega.(3)) ~hi:(est.Psd.omega.(200)) in
  check_close ~tol:0.06 "white level" (sigma *. sigma *. dt) level;
  (* and the integrated PSD returns the variance *)
  check_close ~tol:0.06 "variance recovered" (sigma *. sigma) (Psd.variance_of est)

let test_welch_sine_peak () =
  (* a pure tone concentrates its power at its bin *)
  let dt = 1e-3 in
  let omega = 2.0 *. Float.pi *. 50.0 in
  let xs = Array.init 16384 (fun i -> sin (omega *. float_of_int i *. dt)) in
  let est = Psd.welch xs ~dt ~segment:1024 in
  (* find the peak bin *)
  let peak = ref 0 in
  Array.iteri (fun k v -> if v > est.Psd.s.(!peak) then peak := k) est.Psd.s;
  check_close ~tol:0.01 "peak at the tone" omega est.Psd.omega.(!peak);
  (* integrated power of a unit sine is 1/2 *)
  check_close ~tol:0.05 "tone power" 0.5 (Psd.variance_of est)

let test_welch_validation () =
  Alcotest.check_raises "segment not a power of two"
    (Invalid_argument "Psd.welch: segment must be a power of two >= 4")
    (fun () -> ignore (Psd.welch (Array.make 100 0.0) ~dt:1.0 ~segment:100));
  Alcotest.check_raises "record too short"
    (Invalid_argument "Psd.welch: record shorter than one segment") (fun () ->
      ignore (Psd.welch (Array.make 100 0.0) ~dt:1.0 ~segment:128))

let test_band_average_validation () =
  let est = Psd.welch (Array.make 1024 1.0) ~dt:1.0 ~segment:256 in
  Alcotest.check_raises "empty band"
    (Invalid_argument "Psd.band_average: empty band") (fun () ->
      ignore (Psd.band_average est ~lo:1e9 ~hi:2e9))

let prop_psd_scales_quadratically =
  qcheck ~count:10 "PSD scales with amplitude squared"
    (QCheck2.Gen.float_range 0.5 4.0) (fun a ->
      let g = Prng.create ~seed:77L in
      let xs = Prng.gaussian_array g 8192 ~sigma:1.0 in
      let scaled = Array.map (fun x -> a *. x) xs in
      let e1 = Psd.welch xs ~dt:1.0 ~segment:256 in
      let e2 = Psd.welch scaled ~dt:1.0 ~segment:256 in
      let r = Psd.variance_of e2 /. Psd.variance_of e1 in
      Float.abs (r -. (a *. a)) < 0.01 *. a *. a)

let suite =
  [
    case "determinism" test_determinism;
    case "uniform range" test_uniform_range;
    case "uniform moments" test_uniform_moments;
    case "gaussian moments" test_gaussian_moments;
    case "copy" test_copy_independent;
    case "welch white level" test_welch_white_noise_level;
    case "welch tone" test_welch_sine_peak;
    case "welch validation" test_welch_validation;
    case "band average validation" test_band_average_validation;
    prop_psd_scales_quadratically;
  ]
