(* The analysis daemon end to end, in process:

   - the LRU caps, promotes and evicts; capacity 0 disables it;
   - QCheck fuzzing of the frame codec: random payloads round-trip,
     random truncations read as clean EOF, random bit flips surface as
     typed Parse errors — never exceptions, never hangs (a timeout
     backstops every read);
   - the deadline variants of Frame.read/write return typed Io_timeout
     on stalled partial frames and wedged pipes;
   - daemon round trips: health, analyze, bode, sweep; request errors
     (bode with one point) come back as typed error frames;
   - a repeated request is served from the cache byte-identical to the
     cold reply, and concurrent identical requests single-flight;
   - a zero deadline cancels analyze with a typed Cancelled frame and
     turns a sweep into an all-points-cancelled partial;
   - with one worker and no queue, a busy daemon sheds with typed
     Overloaded frames carrying the retry-after hint;
   - slow-loris and mid-frame disconnects get typed Io_timeout / clean
     EOF treatment and never wedge the daemon;
   - an 8-client soak with net-torn/net-drop/net-slow injection armed
     completes through client retries with the daemon intact;
   - stopping mid-request still returns from [serve] (typed error or
     dropped connection on the client, never a hang);
   - a second SIGTERM force-exits a stuck process with code 143 (the
     re-exec'd "serve-stuck" subprocess below). *)

open Helpers
module Frame = Runner.Journal.Frame
module Wire = Serve.Wire
module Client = Serve.Client
module Daemon = Serve.Daemon

let () = Runner.Shutdown.ignore_sigpipe ()

let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ();
      Parallel.Cancel.reset_global ())
    f

let spec = Pll_lib.Design.default_spec
let sock_counter = ref 0

let scratch_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pllscope_serve_%d_%d.sock" (Unix.getpid ()) !sock_counter)

(* Small, fast daemon defaults for the tests; individual cases override. *)
let base_cfg =
  {
    Daemon.default_config with
    Daemon.workers = 2;
    queue_depth = 2;
    max_clients = 16;
    read_timeout = 5.0;
    write_timeout = 5.0;
    drain_grace = 1.0;
    retry_after = 0.02;
  }

(* Run [f path daemon] against an in-process daemon on a scratch Unix
   socket; stop, join and hand back the final counters. *)
let with_daemon ?(cfg = base_cfg) f =
  let path = scratch_sock () in
  let cfg = { cfg with Daemon.socket_path = Some path } in
  let d = Daemon.create cfg in
  let final = ref None in
  let th = Thread.create (fun () -> final := Some (Daemon.serve d)) () in
  let out =
    Fun.protect
      ~finally:(fun () ->
        Daemon.stop d;
        Thread.join th;
        if Sys.file_exists path then Sys.remove path)
      (fun () -> f path d)
  in
  match !final with
  | Some stats -> (out, stats)
  | None -> Alcotest.fail "daemon thread did not return stats"

let conn path = Client.connect (Client.Unix_path path)

let request ?timeout ?deadline path body =
  let c = conn path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () -> Client.request ?timeout c (Wire.oneshot ?deadline body))

let ok = function
  | Ok v -> v
  | Error err ->
      Alcotest.failf "expected Ok, got %s" (Robust.Pllscope_error.to_string err)

(* Poll the daemon until [p stats] holds (the stats path bypasses the
   compute gate, so this works while every worker slot is busy). *)
let wait_stats ?(tries = 800) path p =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon never reached the expected state";
    match request path Wire.Stats with
    | Ok (Wire.R_stats s) when p s -> s
    | Ok _ | Error _ ->
        Thread.delay 0.005;
        go (n - 1)
  in
  go tries

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru_evicts () =
  let t = Serve.Lru.create ~cap:2 in
  Serve.Lru.add t "a" "1";
  Serve.Lru.add t "b" "2";
  check_true "find a" (Serve.Lru.find t "a" = Some "1");
  (* a was promoted: adding c evicts b, the least recently used *)
  Serve.Lru.add t "c" "3";
  check_int "length capped" 2 (Serve.Lru.length t);
  check_true "b evicted" (Serve.Lru.find t "b" = None);
  check_true "a kept" (Serve.Lru.find t "a" = Some "1");
  check_true "c kept" (Serve.Lru.find t "c" = Some "3");
  (* refreshing an existing key neither grows nor evicts *)
  Serve.Lru.add t "a" "1'";
  check_int "refresh keeps length" 2 (Serve.Lru.length t);
  check_true "refresh updates" (Serve.Lru.find t "a" = Some "1'")

let test_lru_disabled () =
  let t = Serve.Lru.create ~cap:0 in
  Serve.Lru.add t "a" "1";
  check_int "cap 0 stores nothing" 0 (Serve.Lru.length t);
  check_true "cap 0 finds nothing" (Serve.Lru.find t "a" = None);
  match Serve.Lru.create ~cap:(-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity accepted"

(* ------------------------------------------------------------------ *)
(* frame codec fuzzing                                                 *)

(* Feed raw bytes to Frame.read_result through a pipe whose write end
   is closed, with a timeout backstop so a decoder bug can hang for at
   most a second instead of wedging the suite. *)
let read_frame_bytes raw =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () -> Unix.close r)
    (fun () ->
      let b = Bytes.of_string raw in
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write w b !off (n - !off)
      done;
      Unix.close w;
      Frame.read_result ~timeout:1.0 r)

let gen_payload = QCheck2.Gen.(string_size ~gen:char (int_range 0 200))
let gen_tag = QCheck2.Gen.int_range 0 1000

let fuzz_roundtrip =
  qcheck ~count:100 "frame round-trips"
    QCheck2.Gen.(pair gen_tag gen_payload)
    (fun (tag, payload) ->
      match read_frame_bytes (Frame.encode ~tag payload) with
      | Ok (Some (tag', payload')) -> tag' = tag && payload' = payload
      | Ok None | Error _ -> false)

let fuzz_truncation =
  qcheck ~count:100 "truncated frame reads as clean EOF"
    QCheck2.Gen.(pair (pair gen_tag gen_payload) (float_range 0.0 1.0))
    (fun ((tag, payload), cut) ->
      let raw = Frame.encode ~tag payload in
      let keep = int_of_float (cut *. float_of_int (String.length raw - 1)) in
      match read_frame_bytes (String.sub raw 0 keep) with
      | Ok None -> true
      | Ok (Some _) | Error _ -> false)

let fuzz_corruption =
  qcheck ~count:100 "bit flip surfaces as typed Parse error"
    QCheck2.Gen.(triple gen_tag gen_payload (pair (int_range 4 10_000) (int_range 0 7)))
    (fun (tag, payload, (pos, bit)) ->
      let raw = Frame.encode ~tag payload in
      (* flip anywhere past the length field: tag, CRC or payload bytes
         all participate in the checksum *)
      let pos = 4 + (pos mod (String.length raw - 4)) in
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match read_frame_bytes (Bytes.to_string b) with
      | Error (Robust.Pllscope_error.Parse _) -> true
      | Ok _ | Error _ -> false)

let test_oversized_length () =
  (* a plausible-looking header whose length field is absurd must be
     rejected before any allocation or read of that size *)
  let b = Buffer.create 12 in
  List.iter (Buffer.add_char b)
    [ '\xff'; '\xff'; '\xff'; '\x7f'; '\x01'; '\x00'; '\x00'; '\x00' ];
  Buffer.add_string b "\x00\x00\x00\x00";
  match read_frame_bytes (Buffer.contents b) with
  | Error (Robust.Pllscope_error.Parse { msg; _ }) ->
      check_true "mentions length" (String.length msg > 0)
  | Ok _ -> Alcotest.fail "oversized length accepted"
  | Error err ->
      Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err)

let test_read_timeout_stalled () =
  (* half a frame arrives, then the peer goes silent but keeps the
     connection open: the deadline read must return a typed timeout *)
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      let raw = Frame.encode ~tag:7 "stalled payload" in
      let b = Bytes.of_string raw in
      ignore (Unix.write w b 0 6);
      match Frame.read_result ~timeout:0.1 r with
      | Error (Robust.Pllscope_error.Io_timeout { what; _ }) ->
          check_true "read timeout" (what = "frame read")
      | Ok _ -> Alcotest.fail "stalled frame read succeeded"
      | Error err ->
          Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err))

let test_write_timeout_wedged () =
  (* nobody drains the pipe and the payload exceeds the kernel buffer:
     the deadline write must give up with a typed timeout *)
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      let big = String.make (1 lsl 21) 'x' in
      match Frame.write_result ~timeout:0.1 w ~tag:1 big with
      | Error (Robust.Pllscope_error.Io_timeout { what; _ }) ->
          check_true "write timeout" (what = "frame write")
      | Ok () -> Alcotest.fail "wedged write succeeded"
      | Error err ->
          Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err))

(* ------------------------------------------------------------------ *)
(* wire layer                                                          *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let req = Wire.oneshot ~deadline:1.5 (Wire.Analyze spec) in
      ok (Wire.send_request a req);
      (match ok (Wire.recv_request ~timeout:1.0 b) with
      | Some got ->
          check_true "deadline survives" (got.Wire.deadline = Some 1.5);
          check_true "body survives"
            (Wire.cache_key got.Wire.body = Wire.cache_key req.Wire.body)
      | None -> Alcotest.fail "EOF instead of request");
      (* an Overloaded error rides the dedicated tag *)
      let shed = Robust.Pllscope_error.Overloaded { retry_after = 0.25 } in
      ok (Wire.send_error b shed);
      (match Frame.read_result ~timeout:1.0 a with
      | Ok (Some (tag, _)) -> check_int "overloaded tag" Wire.tag_overloaded tag
      | Ok None -> Alcotest.fail "EOF instead of overloaded frame"
      | Error err ->
          Alcotest.failf "frame error: %s" (Robust.Pllscope_error.to_string err));
      (* and recv_reply decodes error frames to typed errors *)
      ok (Wire.send_error b shed);
      match Wire.recv_reply ~timeout:1.0 a with
      | Error (Robust.Pllscope_error.Overloaded { retry_after }) ->
          check_close "retry hint" 0.25 retry_after
      | Ok _ -> Alcotest.fail "error frame decoded as success"
      | Error err ->
          Alcotest.failf "wrong error: %s" (Robust.Pllscope_error.to_string err))

let test_cache_key_ignores_deadline () =
  check_true "same body, same key"
    (Wire.cache_key (Wire.Analyze spec) = Wire.cache_key (Wire.Analyze spec));
  check_true "different body, different key"
    (Wire.cache_key (Wire.Analyze spec)
    <> Wire.cache_key (Wire.Bode { spec; points = 9 }));
  check_true "stats not cacheable" (not (Wire.cacheable Wire.Stats));
  check_true "health not cacheable" (not (Wire.cacheable Wire.Health));
  check_true "analyze cacheable" (Wire.cacheable (Wire.Analyze spec))

(* ------------------------------------------------------------------ *)
(* daemon round trips                                                  *)

let test_daemon_basic () =
  let (), stats =
    with_daemon (fun path _d ->
        (match ok (request path Wire.Health) with
        | Wire.R_healthy -> ()
        | _ -> Alcotest.fail "health reply mismatch");
        (match ok (request path (Wire.Analyze spec)) with
        | Wire.R_analyze r -> check_true "default design stable" r.Wire.stable
        | _ -> Alcotest.fail "analyze reply mismatch");
        (match ok (request path (Wire.Bode { spec; points = 8 })) with
        | Wire.R_bode b ->
            check_int "grid size" 8 (Array.length b.Wire.a);
            check_int "same grid" 8 (Array.length b.Wire.lambda)
        | _ -> Alcotest.fail "bode reply mismatch");
        match ok (request path (Wire.Sweep { spec; ratios = [| 0.05; 0.1 |] }))
        with
        | Wire.R_sweep s ->
            check_int "all points" 2 s.Wire.total;
            check_true "no failures" (s.Wire.failures = []);
            check_true "rows present" (Array.for_all Option.is_some s.Wire.rows)
        | _ -> Alcotest.fail "sweep reply mismatch")
  in
  check_int "served" 4 stats.Wire.served;
  check_int "no sheds" 0 stats.Wire.shed;
  check_int "no errors" 0 stats.Wire.request_errors

let test_daemon_request_error () =
  let (), stats =
    with_daemon (fun path _d ->
        match request path (Wire.Bode { spec; points = 1 }) with
        | Error (Robust.Pllscope_error.Parse { msg; _ }) ->
            check_true "names the engine"
              (String.length msg > 0 && String.sub msg 0 6 = "Engine")
        | Ok _ -> Alcotest.fail "1-point bode accepted"
        | Error err ->
            Alcotest.failf "wrong error: %s"
              (Robust.Pllscope_error.to_string err))
  in
  check_int "counted as request error" 1 stats.Wire.request_errors

(* The byte-identity guarantee: replay the raw reply frames and compare
   payload bytes, not decoded values. *)
let test_daemon_cache_byte_identical () =
  let raw_analyze path =
    let c = conn path in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let fd = Client.fd c in
        ok (Wire.send_request fd (Wire.oneshot (Wire.Analyze spec)));
        match Frame.read_result ~timeout:10.0 fd with
        | Ok (Some (tag, payload)) ->
            check_int "result tag" Wire.tag_result tag;
            payload
        | Ok None -> Alcotest.fail "EOF instead of reply"
        | Error err ->
            Alcotest.failf "frame error: %s"
              (Robust.Pllscope_error.to_string err))
  in
  let (), stats =
    with_daemon (fun path _d ->
        let cold = raw_analyze path in
        let warm = raw_analyze path in
        check_true "cached reply byte-identical" (String.equal cold warm))
  in
  check_int "one miss" 1 stats.Wire.cache_misses;
  check_int "one hit" 1 stats.Wire.cache_hits

let test_daemon_single_flight () =
  let body = Wire.Bode { spec; points = 30 } in
  let (), stats =
    with_daemon (fun path _d ->
        let results = Array.make 2 None in
        let threads =
          Array.init 2 (fun i ->
              Thread.create (fun () -> results.(i) <- Some (request path body)) ())
        in
        Array.iter Thread.join threads;
        match (results.(0), results.(1)) with
        | Some (Ok r0), Some (Ok r1) ->
            check_true "identical decoded replies"
              (String.equal (Wire.marshal_response r0) (Wire.marshal_response r1))
        | _ -> Alcotest.fail "concurrent identical requests failed")
  in
  (* leader computes once; the twin is a waiter replay or a cache hit *)
  check_int "one miss" 1 stats.Wire.cache_misses;
  check_int "one hit" 1 stats.Wire.cache_hits

(* ------------------------------------------------------------------ *)
(* deadlines, overload, misbehaving clients                             *)

let test_deadline_analyze_cancelled () =
  let (), stats =
    with_daemon (fun path _d ->
        match request ~deadline:0.0 path (Wire.Analyze spec) with
        | Error (Robust.Pllscope_error.Cancelled _) -> ()
        | Ok _ -> Alcotest.fail "zero deadline served"
        | Error err ->
            Alcotest.failf "wrong error: %s"
              (Robust.Pllscope_error.to_string err))
  in
  check_int "typed error, not a shed" 1 stats.Wire.request_errors

let test_deadline_sweep_partial () =
  let (), _stats =
    with_daemon (fun path _d ->
        let ratios = Array.init 6 (fun i -> 0.05 +. (0.05 *. float_of_int i)) in
        match ok (request ~deadline:0.0 path (Wire.Sweep { spec; ratios })) with
        | Wire.R_sweep s ->
            check_int "total points" 6 s.Wire.total;
            check_int "every point cancelled" 6 (List.length s.Wire.failures);
            check_true "rows empty" (Array.for_all Option.is_none s.Wire.rows);
            List.iter
              (fun (_, err) ->
                match err with
                | Robust.Pllscope_error.Cancelled _ -> ()
                | other ->
                    Alcotest.failf "wrong failure: %s"
                      (Robust.Pllscope_error.to_string other))
              s.Wire.failures
        | _ -> Alcotest.fail "sweep reply mismatch")
  in
  ()

let test_overload_sheds () =
  let cfg = { base_cfg with Daemon.workers = 1; queue_depth = 0 } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        (* occupy the only slot with a long sweep *)
        let occupier = ref (Ok Wire.R_healthy) in
        let ratios =
          Array.init 512 (fun i -> 0.05 +. (0.0005 *. float_of_int i))
        in
        let th =
          Thread.create
            (fun () -> occupier := request path (Wire.Sweep { spec; ratios }))
            ()
        in
        let _ = wait_stats path (fun s -> s.Wire.active >= 1) in
        (* the slot and the zero-length queue are taken: shed *)
        (match request path (Wire.Analyze spec) with
        | Error (Robust.Pllscope_error.Overloaded { retry_after }) ->
            check_close "retry hint" base_cfg.Daemon.retry_after retry_after
        | Ok _ -> Alcotest.fail "overloaded daemon served"
        | Error err ->
            Alcotest.failf "wrong error: %s"
              (Robust.Pllscope_error.to_string err));
        Thread.join th;
        match !occupier with
        | Ok (Wire.R_sweep s) -> check_int "occupier completed" 512 s.Wire.total
        | Ok _ -> Alcotest.fail "occupier reply mismatch"
        | Error err ->
            Alcotest.failf "occupier failed: %s"
              (Robust.Pllscope_error.to_string err))
  in
  check_true "shed counted" (stats.Wire.shed >= 1);
  (* the occupier plus the stats probes that watched it start *)
  check_true "occupier served" (stats.Wire.served >= 2)

let test_slow_loris_times_out () =
  let cfg = { base_cfg with Daemon.read_timeout = 0.15 } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        let c = conn path in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let fd = Client.fd c in
            let raw =
              Frame.encode ~tag:Wire.tag_request
                (Wire.marshal_request (Wire.oneshot Wire.Health))
            in
            let b = Bytes.of_string raw in
            ignore (Unix.write fd b 0 6);
            (* go silent mid-frame; the daemon must cut us off *)
            match Wire.recv_reply ~timeout:2.0 fd with
            | Error (Robust.Pllscope_error.Io_timeout _) -> ()
            | Error (Robust.Pllscope_error.Parse _) ->
                (* also acceptable: connection closed before the
                   best-effort error frame got through *)
                ()
            | Ok _ -> Alcotest.fail "slow-loris served"
            | Error err ->
                Alcotest.failf "wrong error: %s"
                  (Robust.Pllscope_error.to_string err));
        (* the daemon is still healthy afterwards *)
        match ok (request path Wire.Health) with
        | Wire.R_healthy -> ()
        | _ -> Alcotest.fail "daemon unhealthy after slow-loris")
  in
  check_true "io timeout counted" (stats.Wire.io_timeouts >= 1)

let test_abrupt_disconnects () =
  let (), _stats =
    with_daemon (fun path _d ->
        (* torn frame, then gone: reads as clean EOF at the daemon *)
        let c1 = conn path in
        let raw =
          Frame.encode ~tag:Wire.tag_request
            (Wire.marshal_request (Wire.oneshot (Wire.Analyze spec)))
        in
        ignore (Unix.write (Client.fd c1) (Bytes.of_string raw) 0 9);
        Client.close c1;
        (* full request, then gone before the reply: daemon's write side
           must absorb the dead peer *)
        let c2 = conn path in
        ok
          (Wire.send_request (Client.fd c2)
             (Wire.oneshot (Wire.Bode { spec; points = 12 })));
        Client.close c2;
        (* and the daemon keeps serving *)
        match ok (request path Wire.Health) with
        | Wire.R_healthy -> ()
        | _ -> Alcotest.fail "daemon unhealthy after disconnects")
  in
  ()

(* ------------------------------------------------------------------ *)
(* fault-injected soak                                                 *)

let test_soak_with_faults () =
  let cfg = { base_cfg with Daemon.read_timeout = 2.0; max_clients = 32 } in
  let (), stats =
    with_daemon ~cfg (fun path _d ->
        Robust.Inject.configure ~seed:7
          "net-torn:~0.2,net-drop:~0.15,net-slow:~0.1";
        Fun.protect
          ~finally:(fun () -> Robust.Inject.disarm ())
          (fun () ->
            let n_clients = 8 and per_client = 6 in
            let failures = Atomic.make 0 in
            let threads =
              Array.init n_clients (fun i ->
                  Thread.create
                    (fun () ->
                      for j = 0 to per_client - 1 do
                        let body =
                          match (i + j) mod 3 with
                          | 0 -> Wire.Analyze spec
                          | 1 -> Wire.Bode { spec; points = 6 + i }
                          | _ -> Wire.Health
                        in
                        let r =
                          Client.with_retries ~attempts:10 ~base_delay:0.01
                            ~max_delay:0.05 ~seed:(i * 100 + j)
                            ~connect:(fun () -> conn path)
                            (fun c ->
                              Client.request ~timeout:5.0 ~stall:0.05 c
                                (Wire.oneshot body))
                        in
                        match r with
                        | Ok _ -> ()
                        | Error _ -> Atomic.incr failures
                      done)
                    ())
            in
            Array.iter Thread.join threads;
            check_int "every request recovered through retries" 0
              (Atomic.get failures));
        (* faults disarmed: the daemon must still be pristine *)
        match ok (request path Wire.Health) with
        | Wire.R_healthy -> ()
        | _ -> Alcotest.fail "daemon unhealthy after soak")
  in
  check_true "soak actually served" (stats.Wire.served >= 8)

(* ------------------------------------------------------------------ *)
(* shutdown                                                            *)

let test_stop_mid_request_returns () =
  let cfg = { base_cfg with Daemon.drain_grace = 0.05; workers = 1 } in
  let (), _stats =
    with_daemon ~cfg (fun path d ->
        let got_reply = ref None in
        let ratios = Array.init 256 (fun i -> 0.05 +. (0.001 *. float_of_int i)) in
        let th =
          Thread.create
            (fun () -> got_reply := Some (request path (Wire.Sweep { spec; ratios })))
            ()
        in
        let _ = wait_stats path (fun s -> s.Wire.active >= 1) in
        Daemon.stop d;
        Thread.join th;
        (* the in-flight request must resolve — a typed error frame, a
           cancelled partial, or a dropped connection — never a hang
           (Thread.join above is the real assertion) *)
        match !got_reply with
        | Some (Ok (Wire.R_sweep _)) | Some (Error _) -> ()
        | Some (Ok _) -> Alcotest.fail "sweep reply mismatch"
        | None -> Alcotest.fail "client thread produced nothing")
  in
  ()

(* Re-exec'd by test_main.ml with argv "serve-stuck": a process whose
   first-signal drain never finishes. The second signal must force an
   immediate exit with the SIGTERM code. *)
let stuck_main () =
  Runner.Shutdown.ignore_sigpipe ();
  Runner.Shutdown.install_handlers ();
  print_string "stuck\n";
  flush stdout;
  while true do
    Thread.delay 0.05
  done

let test_second_signal_forces_exit () =
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "serve-stuck" |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  (* wait for the handlers to be installed before signalling *)
  let buf = Bytes.create 6 in
  let n = Unix.read out_r buf 0 6 in
  Unix.close out_r;
  check_int "subprocess announced readiness" 6 n;
  Unix.kill pid Sys.sigterm;
  Thread.delay 0.2;
  (* still alive: the first signal only requested a drain *)
  let alive, _ = Unix.waitpid [ Unix.WNOHANG ] pid in
  check_int "survived the first SIGTERM" 0 alive;
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED code ->
      check_int "forced exit code" Runner.Shutdown.exit_terminated code
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      Alcotest.fail "subprocess killed instead of exiting"

let suite =
  [
    case "lru evicts least recently used" (clean test_lru_evicts);
    case "lru capacity 0 disables" (clean test_lru_disabled);
    fuzz_roundtrip;
    fuzz_truncation;
    fuzz_corruption;
    case "oversized length rejected" (clean test_oversized_length);
    case "stalled read times out" (clean test_read_timeout_stalled);
    case "wedged write times out" (clean test_write_timeout_wedged);
    case "wire round-trip and error tags" (clean test_wire_roundtrip);
    case "cache key ignores deadline" (clean test_cache_key_ignores_deadline);
    case "daemon serves all request kinds" (clean test_daemon_basic);
    case "request error comes back typed" (clean test_daemon_request_error);
    case "cached reply byte-identical" (clean test_daemon_cache_byte_identical);
    case "identical requests single-flight" (clean test_daemon_single_flight);
    case "zero deadline cancels analyze" (clean test_deadline_analyze_cancelled);
    case "zero deadline yields cancelled partial sweep"
      (clean test_deadline_sweep_partial);
    slow_case "busy daemon sheds with retry hint" (clean test_overload_sheds);
    case "slow-loris client times out" (clean test_slow_loris_times_out);
    case "abrupt disconnects tolerated" (clean test_abrupt_disconnects);
    slow_case "8-client soak with injected faults" (clean test_soak_with_faults);
    slow_case "stop mid-request still returns" (clean test_stop_mid_request_returns);
    case "second SIGTERM forces exit 143" (clean test_second_signal_forces_exit);
  ]
