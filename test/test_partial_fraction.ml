open Numeric
open Helpers

let sample_points =
  [ Cx.make 0.5 0.3; Cx.make (-1.7) 2.2; Cx.make 4.0 (-1.0); Cx.jomega 0.8 ]

let check_expansion ?(tol = 1e-7) r =
  let e = Partial_fraction.expand r in
  List.iter
    (fun x ->
      let direct = Rat.eval r x in
      if Cx.is_finite direct then
        check_cx ~tol "expansion matches rational" direct (Partial_fraction.eval e x))
    sample_points;
  e

let test_simple_poles () =
  (* 1 / ((s+1)(s+2)) = 1/(s+1) - 1/(s+2) *)
  let r =
    Rat.make Poly.one
      (Poly.from_roots [ Cx.of_float (-1.0); Cx.of_float (-2.0) ])
  in
  let e = check_expansion r in
  check_int "two terms" 2 (List.length e.Partial_fraction.terms);
  List.iter
    (fun t ->
      let expected =
        if Cx.abs (Cx.sub t.Partial_fraction.pole (Cx.of_float (-1.0))) < 0.01
        then Cx.one
        else Cx.neg Cx.one
      in
      check_cx ~tol:1e-9 "residue" expected t.Partial_fraction.residue)
    e.Partial_fraction.terms

let test_double_pole () =
  (* (s + 3) / (s+1)^2 = 1/(s+1) + 2/(s+1)^2 *)
  let r =
    Rat.make (Poly.of_real_coeffs [ 3.0; 1.0 ])
      (Poly.mul (Poly.of_real_coeffs [ 1.0; 1.0 ]) (Poly.of_real_coeffs [ 1.0; 1.0 ]))
  in
  let e = check_expansion r in
  check_int "two terms" 2 (List.length e.Partial_fraction.terms);
  List.iter
    (fun t ->
      match t.Partial_fraction.order with
      | 1 -> check_cx ~tol:1e-8 "order-1 residue" Cx.one t.Partial_fraction.residue
      | 2 -> check_cx ~tol:1e-8 "order-2 residue" (Cx.of_float 2.0) t.Partial_fraction.residue
      | n -> Alcotest.failf "unexpected order %d" n)
    e.Partial_fraction.terms

let test_double_pole_at_origin () =
  (* the PLL open loop shape: (1 + s) / (s^2 (1 + s/10)) *)
  let r =
    Rat.make (Poly.of_real_coeffs [ 1.0; 1.0 ])
      (Poly.mul (Poly.of_real_coeffs [ 0.0; 0.0; 1.0 ]) (Poly.of_real_coeffs [ 1.0; 0.1 ]))
  in
  let e = check_expansion ~tol:1e-6 r in
  (* must contain an order-2 term at 0 and an order-1 term at -10 *)
  check_true "has order-2 pole at origin"
    (List.exists
       (fun t -> t.Partial_fraction.order = 2 && Cx.abs t.Partial_fraction.pole < 1e-6)
       e.Partial_fraction.terms);
  check_true "has pole at -10"
    (List.exists
       (fun t -> Cx.abs (Cx.sub t.Partial_fraction.pole (Cx.of_float (-10.0))) < 1e-4)
       e.Partial_fraction.terms)

let test_complex_poles () =
  (* 1 / (s^2 + 1): poles at +-j, residues -+ j/2 *)
  let r = Rat.make Poly.one (Poly.of_real_coeffs [ 1.0; 0.0; 1.0 ]) in
  let e = check_expansion r in
  List.iter
    (fun t ->
      let expected =
        if Cx.im t.Partial_fraction.pole > 0.0 then Cx.scale (-0.5) Cx.j
        else Cx.scale 0.5 Cx.j
      in
      check_cx ~tol:1e-9 "residue at +-j" expected t.Partial_fraction.residue)
    e.Partial_fraction.terms

let test_improper () =
  (* (s^2 + s + 1)/(s + 1) = s + 1/(s+1) *)
  let r =
    Rat.make (Poly.of_real_coeffs [ 1.0; 1.0; 1.0 ]) (Poly.of_real_coeffs [ 1.0; 1.0 ])
  in
  let e = check_expansion r in
  check_true "direct part is s" (Poly.equal e.Partial_fraction.direct Poly.s)

let test_to_rat_roundtrip () =
  let r =
    Rat.make (Poly.of_real_coeffs [ 2.0; 1.0 ])
      (Poly.from_roots [ Cx.of_float (-1.0); Cx.of_float (-4.0); Cx.of_float (-9.0) ])
  in
  let back = Partial_fraction.to_rat (Partial_fraction.expand r) in
  check_true "round trip response" (Rat.equal_response ~tol:1e-6 r back)

let prop_expansion_matches =
  qcheck ~count:40 "expansion evaluates like the rational"
    (QCheck2.Gen.pair gen_poly
       (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 3) gen_stable_pole))
    (fun (num, poles) ->
      (* keep poles separated to avoid ill-conditioned near-multiples *)
      let separated =
        List.for_all
          (fun a ->
            List.for_all (fun b -> a == b || Cx.abs (Cx.sub a b) > 0.3) poles)
          poles
      in
      QCheck2.assume separated;
      QCheck2.assume (not (Poly.is_zero num));
      let r = Rat.make num (Poly.from_roots poles) in
      let e = Partial_fraction.expand r in
      List.for_all
        (fun x ->
          let direct = Rat.eval r x in
          (not (Cx.is_finite direct))
          || Cx.approx ~tol:1e-5 direct (Partial_fraction.eval e x))
        sample_points)

let suite =
  [
    case "simple poles" test_simple_poles;
    case "double pole" test_double_pole;
    case "double pole at origin (PLL shape)" test_double_pole_at_origin;
    case "complex conjugate poles" test_complex_poles;
    case "improper rational" test_improper;
    case "to_rat round trip" test_to_rat_roundtrip;
    prop_expansion_matches;
  ]
