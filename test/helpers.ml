(* Shared test utilities: testables, tolerant float checks, fixtures and
   qcheck generators. *)

open Numeric

let float_eps = 1e-9

let check_close ?(tol = float_eps) msg expected actual =
  let scale = 1.0 +. Float.abs expected +. Float.abs actual in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.1e)" msg expected
      actual tol

let check_cx ?(tol = float_eps) msg expected actual =
  if not (Cx.approx ~tol expected actual) then
    Alcotest.failf "%s: expected %s, got %s (tol %.1e)" msg
      (Cx.to_string expected) (Cx.to_string actual) tol

let check_true msg b = Alcotest.(check bool) msg true b
let check_int msg a b = Alcotest.(check int) msg a b

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Pass an explicit random state: the library default lazily prints a
   "qcheck random seed" banner to stdout at module-init time, which
   corrupts the farm protocol stream when the test binary re-execs
   itself as a farm worker (stdout is the protocol pipe). Fixed seed
   also makes the property suite reproducible; override via
   QCHECK_SEED. *)
let qcheck_rand () =
  let seed =
    match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
    | Some s -> s
    | None -> 421_337
  in
  Random.State.make [| seed |]

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
    (QCheck2.Test.make ~count ~name gen prop)

(* generators *)
let small_float = QCheck2.Gen.float_range (-10.0) 10.0

let nonzero_float =
  QCheck2.Gen.map
    (fun x -> if Float.abs x < 0.1 then x +. 0.5 else x)
    small_float

let gen_cx = QCheck2.Gen.map2 Cx.make small_float small_float

let gen_cx_nonzero =
  QCheck2.Gen.map
    (fun z -> if Cx.abs z < 0.1 then Cx.add z (Cx.make 0.5 0.5) else z)
    gen_cx

(* random polynomial of degree <= 4 with moderate coefficients *)
let gen_poly =
  QCheck2.Gen.map Poly.of_coeffs (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 5) gen_cx)

(* strictly Hurwitz pole set for stable-system generators *)
let gen_stable_pole =
  QCheck2.Gen.map2
    (fun re im -> Cx.make (-.(Float.abs re) -. 0.2) im)
    small_float small_float

(* the reference loop designs used across PLL-level tests *)
let spec_slow =
  { Pll_lib.Design.default_spec with Pll_lib.Design.ratio = 0.05 }

let spec_default = Pll_lib.Design.default_spec (* ratio 0.1 *)

let spec_fast =
  { Pll_lib.Design.default_spec with Pll_lib.Design.ratio = 0.25 }

let pll_of spec = Pll_lib.Design.synthesize spec
