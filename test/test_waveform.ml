open Helpers
module Waveform = Sim.Waveform

let w = Waveform.create ~t0:1.0 ~dt:0.5 [| 0.0; 1.0; 4.0; 9.0; 16.0 |]

let test_accessors () =
  check_int "length" 5 (Waveform.length w);
  check_close "time_of_index" 2.0 (Waveform.time_of_index w 2);
  check_close "value" 4.0 (Waveform.value w 2);
  check_close "duration" 2.0 (Waveform.duration w)

let test_interpolation () =
  check_close "at node" 1.0 (Waveform.at w 1.5);
  check_close "between nodes" 2.5 (Waveform.at w 1.75);
  check_close "clamped low" 0.0 (Waveform.at w 0.0);
  check_close "clamped high" 16.0 (Waveform.at w 10.0)

let test_map () =
  let doubled = Waveform.map (fun x -> 2.0 *. x) w in
  check_close "mapped" 8.0 (Waveform.value doubled 2);
  check_close "original intact" 4.0 (Waveform.value w 2)

let test_slice () =
  let s = Waveform.slice w ~from_time:1.5 ~to_time:2.5 in
  check_int "slice length" 3 (Waveform.length s);
  check_close "slice start time" 1.5 (Waveform.time_of_index s 0);
  check_close "slice first value" 1.0 (Waveform.value s 0);
  Alcotest.check_raises "empty slice"
    (Invalid_argument "Waveform.slice: empty interval") (fun () ->
      ignore (Waveform.slice w ~from_time:5.0 ~to_time:4.0))

let test_stats () =
  let v = Waveform.create ~t0:0.0 ~dt:1.0 [| 3.0; -4.0 |] in
  check_close "max_abs" 4.0 (Waveform.max_abs v);
  check_close "rms" (sqrt 12.5) (Waveform.rms v)

let test_validation () =
  Alcotest.check_raises "bad dt"
    (Invalid_argument "Waveform.create: dt must be positive") (fun () ->
      ignore (Waveform.create ~t0:0.0 ~dt:0.0 [| 1.0 |]))

let test_to_array_copies () =
  let a = Waveform.to_array w in
  a.(0) <- 99.0;
  check_close "copy isolated" 0.0 (Waveform.value w 0)

let suite =
  [
    case "accessors" test_accessors;
    case "interpolation" test_interpolation;
    case "map" test_map;
    case "slice" test_slice;
    case "stats" test_stats;
    case "validation" test_validation;
    case "to_array copies" test_to_array_copies;
  ]
