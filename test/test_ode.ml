open Numeric
open Helpers

(* y' = -y, y(0) = 1: y(t) = e^{-t} *)
let decay _t y = [| -.y.(0) |]

(* harmonic oscillator: x'' = -x as a first-order system *)
let oscillator _t y = [| y.(1); -.y.(0) |]

let test_rk4_decay () =
  let y = Ode.rk4 decay ~t0:0.0 ~y0:[| 1.0 |] ~t1:1.0 ~steps:100 in
  check_close ~tol:1e-8 "e^{-1}" (exp (-1.0)) y.(0)

let test_rk4_oscillator () =
  let y = Ode.rk4 oscillator ~t0:0.0 ~y0:[| 1.0; 0.0 |] ~t1:(2.0 *. Float.pi) ~steps:400 in
  check_close ~tol:1e-6 "cos(2pi)" 1.0 y.(0);
  check_close ~tol:1e-6 "sin(2pi)" 0.0 y.(1)

let test_rk4_order () =
  (* halving the step should cut the error by ~16x (4th order) *)
  let err steps =
    let y = Ode.rk4 decay ~t0:0.0 ~y0:[| 1.0 |] ~t1:1.0 ~steps in
    Float.abs (y.(0) -. exp (-1.0))
  in
  let e1 = err 10 and e2 = err 20 in
  check_true "4th-order convergence" (e1 /. e2 > 12.0 && e1 /. e2 < 20.0)

let test_rk4_trace () =
  let trace = Ode.rk4_trace decay ~t0:0.0 ~y0:[| 1.0 |] ~t1:1.0 ~steps:10 in
  check_int "trace length" 11 (Array.length trace);
  let t5, y5 = trace.(5) in
  check_close "trace time" 0.5 t5;
  check_close ~tol:1e-6 "trace value" (exp (-0.5)) y5.(0)

let test_dopri5 () =
  let y = Ode.dopri5 decay ~t0:0.0 ~y0:[| 1.0 |] ~t1:3.0 () in
  check_close ~tol:1e-7 "e^{-3}" (exp (-3.0)) y.(0);
  let y2 = Ode.dopri5 oscillator ~t0:0.0 ~y0:[| 0.0; 1.0 |] ~t1:Float.pi () in
  check_close ~tol:1e-6 "sin(pi)" 0.0 y2.(0);
  check_close ~tol:1e-6 "cos(pi)" (-1.0) y2.(1)

let test_dopri5_stiff_tolerance () =
  (* fast decay handled by step adaptation *)
  let fast _t y = [| -50.0 *. y.(0) |] in
  let y = Ode.dopri5 fast ~t0:0.0 ~y0:[| 1.0 |] ~t1:1.0 ~rtol:1e-10 () in
  check_close ~tol:1e-8 "e^{-50}" (exp (-50.0)) y.(0)

let test_linear_stepper () =
  (* x' = -x + 1: x(t) = 1 + (x0 - 1) e^{-t} *)
  let a = Rmat.of_rows [| [| -1.0 |] |] in
  let step = Ode.linear_stepper ~a ~b:[| 1.0 |] ~h:0.25 in
  let x = ref [| 0.0 |] in
  for _ = 1 to 4 do
    x := step !x
  done;
  check_close ~tol:1e-12 "affine exact step" (1.0 -. exp (-1.0)) !x.(0)

let test_linear_stepper_rotation () =
  (* rotation has no damping: norm preserved exactly by expm *)
  let a = Rmat.of_rows [| [| 0.0; -1.0 |]; [| 1.0; 0.0 |] |] in
  let step = Ode.linear_stepper ~a ~b:[| 0.0; 0.0 |] ~h:(Float.pi /. 2.0) in
  let x = step [| 1.0; 0.0 |] in
  check_close ~tol:1e-12 "quarter turn x" 0.0 x.(0);
  check_close ~tol:1e-12 "quarter turn y" 1.0 x.(1)

let prop_rk4_linear_exactness =
  qcheck ~count:30 "rk4 solves y' = a with no error"
    (QCheck2.Gen.pair small_float small_float) (fun (a, y0) ->
      let y = Ode.rk4 (fun _ _ -> [| a |]) ~t0:0.0 ~y0:[| y0 |] ~t1:2.0 ~steps:7 in
      Float.abs (y.(0) -. (y0 +. (2.0 *. a))) < 1e-9 *. (1.0 +. Float.abs y0 +. Float.abs a))

let suite =
  [
    case "rk4 exponential decay" test_rk4_decay;
    case "rk4 oscillator" test_rk4_oscillator;
    case "rk4 convergence order" test_rk4_order;
    case "rk4 trace" test_rk4_trace;
    case "dopri5 accuracy" test_dopri5;
    case "dopri5 fast dynamics" test_dopri5_stiff_tolerance;
    case "linear stepper affine" test_linear_stepper;
    case "linear stepper rotation" test_linear_stepper_rotation;
    prop_rk4_linear_exactness;
  ]
