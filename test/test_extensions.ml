open Helpers

(* Ablation and ISF experiment invariants. *)

let test_lambda_truncation_converges () =
  let r = Experiments.Exp_ablation.compute () in
  let errs =
    List.map
      (fun (row : Experiments.Exp_ablation.lambda_row) ->
        row.Experiments.Exp_ablation.rel_err)
      r.Experiments.Exp_ablation.lambda_rows
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_true "monotone convergence" (decreasing errs);
  (* ~1/M rate: 20x more terms, ~20x less error *)
  (match errs with
  | e5 :: _ ->
      let last = List.nth errs (List.length errs - 1) in
      check_true "large dynamic range" (e5 /. last > 100.0)
  | [] -> Alcotest.fail "rows expected");
  let htm_errs =
    List.map
      (fun (row : Experiments.Exp_ablation.htm_row) ->
        row.Experiments.Exp_ablation.rel_err)
      r.Experiments.Exp_ablation.htm_rows
  in
  check_true "HTM truncation also converges" (decreasing htm_errs)

let test_filter_ablation_story () =
  let r = Experiments.Exp_ablation.compute () in
  let rows = r.Experiments.Exp_ablation.filter_rows in
  let second_order = List.hd rows in
  let tight = List.nth rows (List.length rows - 1) in
  let open Experiments.Exp_ablation in
  (* adding a ripple pole always costs LTI margin *)
  check_true "LTI margin falls with the ripple pole"
    (tight.pm_lti_deg < second_order.pm_lti_deg -. 10.0);
  (* but the TV margin is dominated by sampling until the pole crowds
     the crossover: for a far pole the TV margin barely moves *)
  let far = List.nth rows 1 in
  check_true "TV margin insensitive to a far ripple pole"
    (Float.abs (far.pm_eff_deg -. second_order.pm_eff_deg) < 1.0);
  List.iter (fun row -> check_true "still stable" row.stable) rows

let test_isf_study () =
  let rows = Experiments.Exp_isf.compute () in
  check_int "six ratios" 6 (List.length rows);
  let open Experiments.Exp_isf in
  let base = List.hd rows in
  check_close ~tol:1e-12 "zero ISF means zero deviation" 0.0 base.deviation;
  let devs = List.map (fun r -> r.deviation) rows in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b && increasing rest
    | _ -> true
  in
  check_true "deviation grows with ISF content" (increasing devs);
  let sidebands = List.map (fun r -> r.sideband_up) rows in
  check_true "sidebands grow with ISF content" (increasing sidebands);
  List.iter
    (fun r -> check_true "rank-one closure consistent with LU" (r.lu_agreement < 1e-10))
    rows

let test_isf_small_signal_linearity () =
  (* for small ISF the H00 deviation is linear in |v1|/v0 *)
  let rows = Experiments.Exp_isf.compute () in
  let open Experiments.Exp_isf in
  let at ratio = (List.find (fun r -> r.isf_ratio = ratio) rows).deviation in
  let d1 = at 0.05 and d2 = at 0.1 in
  check_close ~tol:0.05 "doubling ISF doubles the deviation" 2.0 (d2 /. d1)

let suite =
  [
    case "lambda/HTM truncation ablation" test_lambda_truncation_converges;
    case "filter topology ablation" test_filter_ablation_story;
    case "time-varying VCO study" test_isf_study;
    case "ISF linearity" test_isf_small_signal_linearity;
  ]
