open Numeric
open Helpers
module Tf = Lti.Tf

let lowpass = Tf.first_order_pole 10.0 (* 1/(1 + s/10) *)

let test_constructors () =
  check_cx "gain" (Cx.of_float 2.5) (Tf.eval (Tf.gain 2.5) (Cx.make 3.0 1.0));
  check_cx "integrator" (Cx.of_float 0.5) (Tf.eval Tf.integrator (Cx.of_float 2.0));
  check_cx "double integrator" (Cx.of_float 0.25)
    (Tf.eval Tf.double_integrator (Cx.of_float 2.0));
  check_cx "first order pole at dc" Cx.one (Tf.eval lowpass Cx.zero);
  check_cx "first order pole at corner"
    (Cx.div Cx.one (Cx.make 1.0 1.0))
    (Tf.freq_response lowpass 10.0);
  check_cx "first order zero at corner" (Cx.make 1.0 1.0)
    (Tf.freq_response (Tf.first_order_zero 10.0) 10.0);
  Alcotest.check_raises "nonpositive pole freq"
    (Invalid_argument "Tf.first_order_pole: frequency must be positive")
    (fun () -> ignore (Tf.first_order_pole 0.0))

let test_from_zpk () =
  let tf = Tf.from_zpk ~zeros:[ -1.0 ] ~poles:[ -2.0; -3.0 ] ~gain:4.0 in
  (* 4 (s+1) / ((s+2)(s+3)) at s=0: 4/6 *)
  check_cx "zpk dc" (Cx.of_float (4.0 /. 6.0)) (Tf.eval tf Cx.zero);
  check_close "dc_gain" (4.0 /. 6.0) (Tf.dc_gain tf)

let test_algebra () =
  let x = Cx.make 0.3 1.1 in
  let a = lowpass and b = Tf.first_order_zero 3.0 in
  check_cx "add" (Cx.add (Tf.eval a x) (Tf.eval b x)) (Tf.eval (Tf.add a b) x);
  check_cx "sub" (Cx.sub (Tf.eval a x) (Tf.eval b x)) (Tf.eval (Tf.sub a b) x);
  check_cx "mul" (Cx.mul (Tf.eval a x) (Tf.eval b x)) (Tf.eval (Tf.mul a b) x);
  check_cx "div" (Cx.div (Tf.eval a x) (Tf.eval b x)) (Tf.eval (Tf.div a b) x);
  check_cx "scale" (Cx.scale 3.0 (Tf.eval a x)) (Tf.eval (Tf.scale 3.0 a) x);
  check_cx "neg" (Cx.neg (Tf.eval a x)) (Tf.eval (Tf.neg a) x)

let test_feedback () =
  let g = Tf.gain 9.0 in
  (* unity feedback of a gain: 9/10 *)
  check_close "static loop" 0.9 (Tf.dc_gain (Tf.feedback_unity g));
  let x = Cx.jomega 2.0 in
  let gv = Tf.eval lowpass x and hv = Tf.eval (Tf.gain 0.5) x in
  check_cx "feedback formula"
    (Cx.div gv (Cx.add Cx.one (Cx.mul gv hv)))
    (Tf.eval (Tf.feedback ~g:lowpass ~h:(Tf.gain 0.5)) x)

let test_poles_zeros () =
  (match Tf.poles lowpass with
  | [ p ] -> check_cx "pole at -10" (Cx.of_float (-10.0)) p
  | _ -> Alcotest.fail "one pole expected");
  check_int "integrator relative degree" 1 (Tf.relative_degree Tf.integrator);
  check_true "integrator proper" (Tf.is_proper Tf.integrator);
  check_true "differentiator improper"
    (not (Tf.is_proper (Tf.make ~num:[ 0.0; 1.0 ] ~den:[ 1.0 ])))

let test_stability () =
  check_true "lowpass stable" (Tf.is_stable lowpass);
  check_true "integrator marginal -> unstable" (not (Tf.is_stable Tf.integrator));
  check_true "rhp pole unstable"
    (not (Tf.is_stable (Tf.make ~num:[ 1.0 ] ~den:[ -1.0; 1.0 ])));
  check_true "second order stable"
    (Tf.is_stable (Tf.make ~num:[ 1.0 ] ~den:[ 1.0; 0.5; 1.0 ]))

let test_coeff_access () =
  let tf = Tf.make ~num:[ 1.0; 2.0 ] ~den:[ 3.0; 4.0; 5.0 ] in
  Alcotest.(check (array (float 1e-12))) "num" [| 1.0; 2.0 |] (Tf.num_coeffs tf);
  Alcotest.(check (array (float 1e-12))) "den" [| 3.0; 4.0; 5.0 |] (Tf.den_coeffs tf)

let prop_freq_response_conj =
  qcheck ~count:40 "real tf: H(-jw) = conj H(jw)"
    (QCheck2.Gen.pair nonzero_float nonzero_float) (fun (wp, w) ->
      let wp = Float.abs wp +. 0.2 and w = Float.abs w in
      let tf = Tf.first_order_pole wp in
      Cx.approx (Tf.freq_response tf (-.w)) (Cx.conj (Tf.freq_response tf w)))

let prop_series_gain =
  qcheck ~count:40 "cascade multiplies magnitudes"
    (QCheck2.Gen.pair (QCheck2.Gen.float_range 0.5 20.0) (QCheck2.Gen.float_range 0.1 50.0))
    (fun (wp, w) ->
      let tf = Tf.first_order_pole wp in
      let double = Tf.mul tf tf in
      let m1 = Cx.abs (Tf.freq_response tf w) in
      let m2 = Cx.abs (Tf.freq_response double w) in
      Float.abs (m2 -. (m1 *. m1)) < 1e-9 *. (1.0 +. m2))

let suite =
  [
    case "constructors" test_constructors;
    case "zpk" test_from_zpk;
    case "algebra" test_algebra;
    case "feedback" test_feedback;
    case "poles/zeros/properness" test_poles_zeros;
    case "stability" test_stability;
    case "coefficient access" test_coeff_access;
    prop_freq_response_conj;
    prop_series_gain;
  ]
