open Numeric
open Helpers
module Pll = Pll_lib.Pll
module Htm = Htm_core.Htm

let pll = pll_of spec_default
let w0 = Pll.omega0 pll

let test_basics () =
  check_close "omega0" (2.0 *. Float.pi *. 1e6) w0;
  check_close "period" 1e-6 (Pll.period pll);
  Alcotest.check_raises "bad fref"
    (Invalid_argument "Pll.make: fref must be positive") (fun () ->
      ignore
        (Pll.make ~fref:0.0 ~n_div:1.0 ~filter:pll.Pll.filter ~vco:pll.Pll.vco ()))

let test_open_loop_formula () =
  (* eq. 35: A(s) = (w0/2pi) (v0/s) H_LF(s) *)
  let s = Cx.jomega (0.27 *. w0) in
  let expected =
    Cx.mul
      (Cx.of_float (w0 /. (2.0 *. Float.pi) *. pll.Pll.vco.Pll_lib.Vco.v0))
      (Cx.mul (Cx.inv s) (Lti.Tf.eval (Pll_lib.Loop_filter.tf pll.Pll.filter) s))
  in
  check_cx ~tol:1e-10 "A(s) assembly" expected (Pll.a_of_s pll s)

let test_open_loop_shape () =
  (* Fig. 5 shape: 3 poles (2 at dc) and one zero *)
  let a = Pll.open_loop_tf pll in
  let poles = Lti.Tf.poles a in
  check_int "three poles" 3 (List.length poles);
  check_int "two at dc" 2
    (List.length (List.filter (fun p -> Cx.abs p < 1e-3 *. w0) poles));
  check_int "one zero" 1 (List.length (Lti.Tf.zeros a));
  check_true "strictly proper"
    (Rat.is_strictly_proper (Lti.Tf.to_rat a))

let test_lambda_methods_agree () =
  let exact = Pll.lambda_fn pll Pll.Exact in
  let trunc = Pll.lambda_fn pll (Pll.Truncated 4000) in
  List.iter
    (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      check_cx ~tol:1e-4 "exact vs truncated" (exact s) (trunc s))
    [ 0.07; 0.21; 0.33; 0.46 ]

let test_lambda_matrix_agrees () =
  let exact = Pll.lambda_fn pll Pll.Exact in
  let ctx = Htm.ctx ~n_harm:400 ~omega0:w0 in
  let s = Cx.jomega (0.31 *. w0) in
  check_cx ~tol:2e-3 "eq. 37 via matrix entries" (exact s)
    (Pll.lambda_matrix ctx pll s)

let test_lambda_periodicity () =
  (* lambda(s + j w0) = lambda(s) *)
  let lam = Pll.lambda_fn pll Pll.Exact in
  let s = Cx.jomega (0.23 *. w0) in
  check_cx ~tol:1e-9 "periodic along jw" (lam s) (lam (Cx.add s (Cx.jomega w0)))

let test_lambda_reduces_to_a_for_slow_loop () =
  (* for w_UG << w0, lambda(jw) ~ A(jw) near crossover — the regime
     where classical LTI analysis is valid *)
  let slow = pll_of spec_slow in
  let w_ug = Pll_lib.Design.omega_ug spec_slow in
  let s = Cx.jomega w_ug in
  let a = Pll.a_of_s slow s in
  let lam = Pll.lambda slow s in
  check_cx ~tol:0.05 "lambda ~ A for slow loops" a lam

let test_h00_formula () =
  (* eq. 38: H00 = A / (1 + lambda) *)
  let s = Cx.jomega (0.17 *. w0) in
  let lam = Pll.lambda pll s in
  check_cx "h00 assembly"
    (Cx.div (Pll.a_of_s pll s) (Cx.add Cx.one lam))
    (Pll.h00 pll s)

let test_h00_tracks_at_dc () =
  (* type-2 loop: |H00| -> 1 at low frequency *)
  let h = Pll.h00 pll (Cx.jomega (1e-4 *. w0)) in
  check_close ~tol:1e-3 "unity tracking" 1.0 (Cx.abs h)

let test_h00_lti () =
  let s = Cx.jomega (0.1 *. w0) in
  let a = Pll.a_of_s pll s in
  check_cx "A/(1+A)" (Cx.div a (Cx.add Cx.one a)) (Pll.h00_lti pll s)

let test_htm_element () =
  (* eq. 36: H_{n,m} = A(s + j n w0)/(1 + lambda(s)), independent of m *)
  let s = Cx.jomega (0.12 *. w0) in
  let lam = Pll.lambda pll s in
  let el1 = Pll.htm_element_fn pll Pll.Exact ~n:1 in
  check_cx "shifted numerator"
    (Cx.div (Pll.a_of_s pll (Cx.add s (Cx.jomega w0))) (Cx.add Cx.one lam))
    (el1 s);
  let el0 = Pll.htm_element_fn pll Pll.Exact ~n:0 in
  check_cx "n=0 is h00" (Pll.h00 pll s) (el0 s)

let test_rank_one_vs_generic () =
  (* the Sherman-Morrison closed form (eq. 34) must agree with the
     truncated LU closed loop (eq. 28) *)
  let ctx = Htm.ctx ~n_harm:25 ~omega0:w0 in
  let s = Cx.jomega (0.19 *. w0) in
  let rank_one = Pll.closed_loop_rank_one ctx pll s in
  let generic = Htm.to_matrix ctx (Pll.closed_loop_htm pll) s in
  (* compare central elements (truncation edges differ slightly) *)
  let c = Htm.index_of_harmonic ctx 0 in
  for dn = -2 to 2 do
    for dm = -2 to 2 do
      check_cx ~tol:2e-3 "rank-one vs LU"
        (Cmat.get generic (c + dn) (c + dm))
        (Cmat.get rank_one (c + dn) (c + dm))
    done
  done

let test_rank_one_columns_equal () =
  (* H = V l^T / (1+lambda): all columns identical *)
  let ctx = Htm.ctx ~n_harm:6 ~omega0:w0 in
  let m = Pll.closed_loop_rank_one ctx pll (Cx.jomega (0.22 *. w0)) in
  let c0 = Cmat.col m 0 in
  for k = 1 to Cmat.cols m - 1 do
    let ck = Cmat.col m k in
    for i = 0 to Cmat.rows m - 1 do
      check_cx "columns equal" (Cvec.get c0 i) (Cvec.get ck i)
    done
  done

let test_rank_one_matches_closed_form_elements () =
  (* the truncated Sherman-Morrison matrix should reproduce eq. 36 *)
  let ctx = Htm.ctx ~n_harm:200 ~omega0:w0 in
  let s = Cx.jomega (0.25 *. w0) in
  let m = Pll.closed_loop_rank_one ctx pll s in
  let el n = Pll.htm_element_fn pll Pll.Exact ~n s in
  let c = Htm.index_of_harmonic ctx 0 in
  for n = -2 to 2 do
    check_cx ~tol:2e-3 "matrix vs analytic element" (el n)
      (Cmat.get m (c + n) c)
  done

let test_v_tilde () =
  (* eq. 29/30: G = V l^T; so lambda = sum of V entries *)
  let ctx = Htm.ctx ~n_harm:50 ~omega0:w0 in
  let s = Cx.jomega (0.3 *. w0) in
  let v = Pll.v_tilde ctx pll s in
  check_int "dimension" (Htm.dim ctx) (Cvec.dim v);
  check_cx "lambda = l^T V" (Pll.lambda_matrix ctx pll s) (Cvec.sum v);
  (* for a time-invariant VCO, V_n = A(s + j n w0) *)
  let c = Htm.index_of_harmonic ctx 0 in
  for n = -2 to 2 do
    check_cx ~tol:1e-9 "V_n = A(s + jnw0)"
      (Pll.a_of_s pll (Cx.add s (Cx.jomega (float_of_int n *. w0))))
      (Cvec.get v (c + n))
  done

let test_mixing_pfd_rejected_in_rank_one () =
  let p =
    Pll.make ~fref:1e6 ~n_div:64.0 ~filter:pll.Pll.filter ~vco:pll.Pll.vco
      ~pfd:(Pll_lib.Pfd.mixing ~gain:1.0) ()
  in
  let ctx = Htm.ctx ~n_harm:4 ~omega0:w0 in
  Alcotest.check_raises "mixing rejected"
    (Invalid_argument "Pll.v_tilde: rank-one form requires a sampling PFD")
    (fun () -> ignore (Pll.v_tilde ctx p Cx.one))

let test_time_varying_vco_closed_loop () =
  (* with ISF harmonics, the rank-one machinery still matches the LU
     closed loop *)
  let vco =
    Pll_lib.Vco.with_isf ~kvco:20e6 ~n_div:64.0 ~fref:1e6
      ~harmonics:[ Cx.of_float 0.2 ]
  in
  let p = Pll.make ~fref:1e6 ~n_div:64.0 ~filter:pll.Pll.filter ~vco () in
  let ctx = Htm.ctx ~n_harm:25 ~omega0:w0 in
  let s = Cx.jomega (0.21 *. w0) in
  let rank_one = Pll.closed_loop_rank_one ctx p s in
  let generic = Htm.to_matrix ctx (Pll.closed_loop_htm p) s in
  let c = Htm.index_of_harmonic ctx 0 in
  for dn = -1 to 1 do
    check_cx ~tol:5e-3 "tv-vco rank-one vs LU"
      (Cmat.get generic (c + dn) c)
      (Cmat.get rank_one (c + dn) c)
  done

let test_closed_loop_plus_error_is_identity () =
  (* theta + e = theta_ref: (I+G)^{-1}G + (I+G)^{-1} = I, realized on
     truncated matrices *)
  let ctx = Htm.ctx ~n_harm:10 ~omega0:w0 in
  let s = Cx.jomega (0.17 *. w0) in
  let g = Htm.to_matrix ctx (Pll.open_loop_htm pll) s in
  let i_plus_g = Cmat.add (Cmat.identity (Htm.dim ctx)) g in
  let f = Lu.decompose i_plus_g in
  let h = Lu.solve_mat f g in
  let e = Lu.solve_mat f (Cmat.identity (Htm.dim ctx)) in
  check_true "H + E = I" (Cmat.equal ~tol:1e-10 (Cmat.identity (Htm.dim ctx)) (Cmat.add h e))

let test_worst_case_gain_exceeds_baseband () =
  (* the LPTV worst-case gain accounts for band conversion: it is at
     least the baseband peaking the paper plots *)
  let ctx = Htm.ctx ~n_harm:10 ~omega0:w0 in
  let w = 0.15 *. w0 in
  let sv = Htm.max_singular_value ctx (Pll.closed_loop_htm pll) w in
  let h00 = Cx.abs (Pll.h00 pll (Cx.jomega w)) in
  check_true "sigma_max >= |H00|" (sv >= h00 -. 1e-9);
  check_true "but of the same order" (sv < 10.0 *. h00)

let prop_h00_conjugate_symmetry =
  qcheck ~count:20 "H00(-jw) = conj H00(jw)"
    (QCheck2.Gen.float_range 0.01 0.45) (fun frac ->
      let s = Cx.jomega (frac *. w0) in
      Cx.approx ~tol:1e-8
        (Pll.h00 pll (Cx.neg s))
        (Cx.conj (Pll.h00 pll s)))

let suite =
  [
    case "basics" test_basics;
    case "open loop assembly (eq. 35)" test_open_loop_formula;
    case "open loop shape (Fig. 5)" test_open_loop_shape;
    case "lambda: exact vs truncated" test_lambda_methods_agree;
    case "lambda: matrix route (eq. 37)" test_lambda_matrix_agrees;
    case "lambda periodicity" test_lambda_periodicity;
    case "lambda -> A for slow loops" test_lambda_reduces_to_a_for_slow_loop;
    case "H00 (eq. 38)" test_h00_formula;
    case "H00 tracks at dc" test_h00_tracks_at_dc;
    case "LTI H00" test_h00_lti;
    case "HTM elements (eq. 36)" test_htm_element;
    case "rank-one vs generic LU (eq. 34 vs 28)" test_rank_one_vs_generic;
    case "rank-one columns equal" test_rank_one_columns_equal;
    case "rank-one vs analytic elements" test_rank_one_matches_closed_form_elements;
    case "V-tilde structure (eq. 29)" test_v_tilde;
    case "mixing PFD rejected in rank-one path" test_mixing_pfd_rejected_in_rank_one;
    case "time-varying VCO closed loop" test_time_varying_vco_closed_loop;
    case "closed loop + error transfer = identity" test_closed_loop_plus_error_is_identity;
    case "worst-case LPTV gain" test_worst_case_gain_exceeds_baseband;
    prop_h00_conjugate_symmetry;
  ]
