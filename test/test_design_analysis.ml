open Numeric
open Helpers
module Design = Pll_lib.Design
module Analysis = Pll_lib.Analysis
module Pll = Pll_lib.Pll

let test_gamma () =
  (* gamma = tan(45 + pm/2): pm = 0 -> 1 *)
  check_close ~tol:1e-9 "pm -> 0 limit" 1.0 (Design.gamma_of_phase_margin 1e-9);
  check_close ~tol:1e-9 "pm 53.13: gamma = 3"
    3.0
    (Design.gamma_of_phase_margin (Stats.deg (atan 3.0 -. atan (1.0 /. 3.0))));
  Alcotest.check_raises "pm out of range"
    (Invalid_argument "Design.gamma_of_phase_margin: need 0 < pm < 90")
    (fun () -> ignore (Design.gamma_of_phase_margin 95.0))

let test_synthesis_hits_targets () =
  List.iter
    (fun (ratio, pm) ->
      let spec =
        { Design.default_spec with Design.ratio; phase_margin_deg = pm }
      in
      let p = Design.synthesize spec in
      let w_ug = Design.omega_ug spec in
      (* |A(j w_ug)| = 1 by construction *)
      let a = Pll.a_of_s p (Cx.jomega w_ug) in
      check_close ~tol:1e-9 "unity gain at target" 1.0 (Cx.abs a);
      check_close ~tol:1e-6 "phase margin at target" pm
        (180.0 +. Stats.deg (Cx.arg a)))
    [ (0.05, 45.0); (0.1, 55.0); (0.2, 60.0); (0.3, 70.0) ]

let test_lti_report_matches_design () =
  let spec = spec_default in
  let p = pll_of spec in
  let r = Analysis.lti_report p in
  (match r.Analysis.omega_ug with
  | Some w -> check_close ~tol:1e-6 "report crossover" (Design.omega_ug spec) w
  | None -> Alcotest.fail "crossover expected");
  match r.Analysis.phase_margin_deg with
  | Some pm -> check_close ~tol:1e-4 "report margin" 55.0 pm
  | None -> Alcotest.fail "margin expected"

let test_effective_report_degrades () =
  (* the paper's central quantitative claim: at w_UG/w0 = 0.1 the
     effective phase margin is ~9% below the LTI one *)
  let p = pll_of spec_default in
  let eff = Analysis.effective_report p in
  match eff.Analysis.phase_margin_deg with
  | Some pm ->
      let loss = (55.0 -. pm) /. 55.0 in
      check_true "margin degraded" (pm < 55.0);
      check_true
        (Printf.sprintf "~9%% loss at ratio 0.1 (got %.1f%%)" (100.0 *. loss))
        (loss > 0.07 && loss < 0.11);
      (* effective UGF above the LTI one *)
      (match eff.Analysis.omega_ug with
      | Some w -> check_true "effective UGF shifted up" (w > Design.omega_ug spec_default)
      | None -> Alcotest.fail "effective crossover expected")
  | None -> Alcotest.fail "effective margin expected"

let test_effective_report_truncated_method () =
  let p = pll_of spec_default in
  let a = Analysis.effective_report p in
  let b = Analysis.effective_report ~method_:(Pll.Truncated 2000) p in
  match (a.Analysis.phase_margin_deg, b.Analysis.phase_margin_deg) with
  | Some x, Some y -> check_close ~tol:1e-2 "methods agree" x y
  | _ -> Alcotest.fail "margins expected"

let test_closed_loop_metrics () =
  let p = pll_of spec_default in
  let m = Analysis.closed_loop_metrics p in
  check_close ~tol:1e-2 "tracks at dc" 1.0 m.Analysis.dc_mag;
  check_true "peaking positive" (m.Analysis.peak_db > 0.0);
  check_true "peak near the loop band"
    (m.Analysis.peak_freq > 0.1 *. Design.omega_ug spec_default
     && m.Analysis.peak_freq < 10.0 *. Design.omega_ug spec_default);
  match m.Analysis.bandwidth_3db with
  | Some bw -> check_true "bandwidth beyond peak" (bw > m.Analysis.peak_freq)
  | None -> Alcotest.fail "bandwidth expected at ratio 0.1"

let test_ratio_sweep_monotone () =
  let rows = Analysis.ratio_sweep Design.default_spec [ 0.02; 0.1; 0.2; 0.25 ] in
  check_int "row count" 4 (List.length rows);
  let margins = List.map (fun r -> r.Analysis.pm_eff_deg) rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_true "phase margin decreases with loop speed" (decreasing margins);
  let norms = List.map (fun r -> r.Analysis.omega_ug_eff_norm) rows in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check_true "effective UGF ratio grows" (increasing norms);
  List.iter
    (fun r ->
      check_close "LTI line is flat" 55.0 r.Analysis.pm_lti_deg ~tol:1e-3;
      check_true "all still stable here" r.Analysis.stable)
    rows

let test_stability_boundary () =
  (* the loop loses time-varying stability between ratio 0.27 and 0.29
     (verified against the nonlinear behavioral simulator) while LTI
     analysis sees a healthy 55 deg margin throughout *)
  check_true "0.27 stable" (Analysis.is_stable_tv (pll_of (Design.with_ratio Design.default_spec 0.27)));
  check_true "0.29 unstable"
    (not (Analysis.is_stable_tv (pll_of (Design.with_ratio Design.default_spec 0.29))))

let test_metrics_consistent_with_sweep () =
  (* the reported peak/bandwidth must agree with a direct |H00| sweep *)
  let p = pll_of spec_default in
  let m = Analysis.closed_loop_metrics p in
  let w0 = Pll.omega0 p in
  let h00 = Pll.h00_fn p Pll.Exact in
  let mag w = Cx.abs (h00 (Cx.jomega w)) in
  (* no grid point beats the reported peak by more than rounding *)
  Array.iter
    (fun w -> check_true "peak is the max" (mag w <= m.Analysis.peak_mag *. (1.0 +. 1e-4)))
    (Optimize.logspace (w0 *. 1e-4) (w0 *. 0.49) 300);
  (* the magnitude at the reported -3dB point is the threshold *)
  match m.Analysis.bandwidth_3db with
  | Some bw ->
      check_close ~tol:1e-3 "threshold at the bandwidth edge"
        (m.Analysis.dc_mag /. sqrt 2.0) (mag bw)
  | None -> Alcotest.fail "bandwidth expected at ratio 0.1"

let test_design_for_effective_margin () =
  (* closing the design loop on lambda: the returned spec really
     delivers the requested effective margin *)
  let base = { Design.default_spec with Design.ratio = 0.15 } in
  (match Analysis.design_for_effective_margin base ~target_deg:45.0 with
  | Some (spec, achieved) ->
      check_close ~tol:2e-3 "achieved = target" 45.0 achieved;
      check_true "over-design needed" (spec.Design.phase_margin_deg > 45.0);
      (* independent check on a fresh synthesis *)
      let p = Design.synthesize spec in
      (match (Analysis.effective_report p).Analysis.phase_margin_deg with
      | Some pm -> check_close ~tol:1e-3 "fresh synthesis agrees" 45.0 pm
      | None -> Alcotest.fail "margin expected")
  | None -> Alcotest.fail "feasible at ratio 0.15");
  (* infeasible at very fast ratios: reports None instead of nonsense *)
  check_true "infeasible reported"
    (Option.is_none
       (Analysis.design_for_effective_margin
          { Design.default_spec with Design.ratio = 0.3 }
          ~target_deg:45.0))

let prop_synthesis_any_ratio =
  qcheck ~count:15 "synthesis pins |A| = 1 at every ratio"
    (QCheck2.Gen.float_range 0.01 0.45) (fun ratio ->
      let spec = Design.with_ratio Design.default_spec ratio in
      let p = Design.synthesize spec in
      let a = Pll.a_of_s p (Cx.jomega (Design.omega_ug spec)) in
      Float.abs (Cx.abs a -. 1.0) < 1e-9)

let suite =
  [
    case "gamma factor" test_gamma;
    case "synthesis hits LTI targets" test_synthesis_hits_targets;
    case "LTI report" test_lti_report_matches_design;
    case "effective margin degradation (paper claim)" test_effective_report_degrades;
    case "exact vs truncated reports" test_effective_report_truncated_method;
    case "closed-loop metrics" test_closed_loop_metrics;
    case "ratio sweep monotonicity (Fig. 7)" test_ratio_sweep_monotone;
    case "stability boundary" test_stability_boundary;
    case "metrics vs direct sweep" test_metrics_consistent_with_sweep;
    slow_case "design for effective margin" test_design_for_effective_margin;
    prop_synthesis_any_ratio;
  ]
