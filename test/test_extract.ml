open Numeric
open Helpers
module Extract = Sim.Extract

let pll = pll_of spec_default

let test_measurement_matches_htm () =
  (* the paper verifies eq. 38 against time-marching within 2%; our
     extraction is leakage-free so it does far better *)
  let m = Extract.measure_h00 pll ~harmonic:3 ~window_periods:24 () in
  check_true
    (Printf.sprintf "relative error %.5f < 0.5%%" m.Extract.rel_err)
    (m.Extract.rel_err < 5e-3)

let test_lti_is_worse_at_fast_ratio () =
  (* at ratio 0.25 the LTI prediction is measurably off while the HTM
     closed form still matches simulation *)
  let fast = pll_of spec_fast in
  let m = Extract.measure_h00 fast ~harmonic:5 ~window_periods:24 () in
  let lti_err =
    Cx.abs (Cx.sub m.Extract.measured m.Extract.predicted_lti)
    /. Cx.abs m.Extract.measured
  in
  check_true "HTM within 1%" (m.Extract.rel_err < 1e-2);
  check_true
    (Printf.sprintf "LTI off by >3%% (got %.1f%%)" (100.0 *. lti_err))
    (lti_err > 0.03)

let test_frequency_placement () =
  let m = Extract.measure_h00 pll ~harmonic:4 ~window_periods:32 () in
  check_close ~tol:1e-12 "w_m = j w0 / window"
    (4.0 /. 32.0 *. Pll_lib.Pll.omega0 pll)
    m.Extract.omega

let test_phase_also_matches () =
  let m = Extract.measure_h00 pll ~harmonic:2 ~window_periods:16 () in
  let phase_err =
    Float.abs (Cx.arg m.Extract.measured -. Cx.arg m.Extract.predicted)
  in
  check_true "phase agrees within 0.5 deg" (phase_err < Stats.rad 0.5)

let test_error_transfer () =
  (* a VCO-internal disturbance sees (I+G)^{-1}: baseband element
     1 - A/(1+lambda) — the shaping the Noise module applies to
     open-loop VCO phase noise *)
  let m = Extract.measure_error_transfer pll ~harmonic:2 ~window_periods:20 () in
  check_true
    (Printf.sprintf "error transfer within 0.5%% (got %.5f)" m.Extract.rel_err)
    (m.Extract.rel_err < 5e-3);
  (* and the LTI prediction 1/(1+A) is measurably wrong here *)
  let lti_err =
    Cx.abs (Cx.sub m.Extract.measured m.Extract.predicted_lti)
    /. Cx.abs m.Extract.measured
  in
  check_true "LTI error transfer off by >5%" (lti_err > 0.05)

let test_error_transfer_highpass () =
  (* VCO noise is rejected in band: |E00| << 1 well below crossover *)
  let m = Extract.measure_error_transfer pll ~harmonic:1 ~window_periods:100 () in
  check_true "in-band rejection" (Cx.abs m.Extract.measured < 0.3);
  check_true "still matches closed form" (m.Extract.rel_err < 1e-2)

let test_sweep_and_worst () =
  let ms = Extract.sweep pll [ (1, 12); (3, 12) ] in
  check_int "two measurements" 2 (List.length ms);
  let worst = Extract.worst_rel_err ms in
  check_true "worst bounded" (worst < 1e-2);
  check_true "worst is the max"
    (List.for_all (fun m -> m.Extract.rel_err <= worst +. 1e-15) ms)

let test_validation () =
  Alcotest.check_raises "harmonic 0"
    (Invalid_argument "Extract.measure_h00: harmonic >= 1") (fun () ->
      ignore (Extract.measure_h00 pll ~harmonic:0 ~window_periods:8 ()));
  Alcotest.check_raises "window too short"
    (Invalid_argument "Extract.measure_h00: window too short for the harmonic")
    (fun () -> ignore (Extract.measure_h00 pll ~harmonic:5 ~window_periods:8 ()))

let test_linearity_in_eps () =
  (* halving the modulation depth must not change the measured gain:
     the loop is in its linear small-signal regime *)
  let period = Pll_lib.Pll.period pll in
  let m1 =
    Extract.measure_h00 pll ~harmonic:3 ~window_periods:16 ~eps:(period /. 2000.0) ()
  in
  let m2 =
    Extract.measure_h00 pll ~harmonic:3 ~window_periods:16 ~eps:(period /. 4000.0) ()
  in
  check_cx ~tol:1e-3 "gain independent of depth" m1.Extract.measured m2.Extract.measured

let suite =
  [
    slow_case "simulator vs HTM closed form" test_measurement_matches_htm;
    slow_case "LTI visibly off for fast loops" test_lti_is_worse_at_fast_ratio;
    case "frequency placement" test_frequency_placement;
    slow_case "phase agreement" test_phase_also_matches;
    slow_case "error transfer (VCO-injected)" test_error_transfer;
    slow_case "error transfer is highpass" test_error_transfer_highpass;
    slow_case "sweep" test_sweep_and_worst;
    case "validation" test_validation;
    slow_case "small-signal linearity" test_linearity_in_eps;
  ]
