(* @slow — multi-domain determinism cross-checks.

   The parallel sweep engine promises that results are bit-identical for
   any pool size: each output slot is written by exactly one lane from
   its own input, and reductions happen in a fixed order. These tests
   run the paper's headline sweeps at pool sizes 1, 2 and 4 and compare
   the {e complete} result structures with polymorphic compare (exact
   float equality, NaN-tolerant) — any nondeterministic float reduction
   order, racy accumulation or scheduling-dependent output ordering
   fails them. *)

let spec = Pll_lib.Design.default_spec

let pool_sizes = [ 1; 2; 4 ]

let at_sizes f =
  List.map
    (fun domains -> Parallel.Pool.with_pool ~domains (fun pool -> f pool))
    pool_sizes

let check_identical name results =
  match results with
  | [] -> ()
  | first :: rest ->
      List.iteri
        (fun i r ->
          if compare first r <> 0 then
            Alcotest.failf
              "%s: pool size %d produced different bits than pool size %d" name
              (List.nth pool_sizes (i + 1))
              (List.hd pool_sizes))
        rest

let test_ratio_sweep_deterministic () =
  check_identical "Analysis.ratio_sweep"
    (at_sizes (fun pool ->
         Pll_lib.Analysis.ratio_sweep ~pool spec [ 0.02; 0.05; 0.1; 0.2; 0.25 ]))

let test_fig4_deterministic () =
  check_identical "Exp_fig4.compute"
    (at_sizes (fun pool -> Experiments.Exp_fig4.compute ~spec ~pool ()))

let test_fig6_deterministic () =
  (* sim_points:0 keeps the time-marching simulator out; the HTM and
     LTI grids are the parallelized part *)
  check_identical "Exp_fig6.compute"
    (at_sizes (fun pool ->
         Experiments.Exp_fig6.compute ~spec ~sim_points:0 ~pool ()))

let test_fig7_metrics_deterministic () =
  check_identical "Exp_fig7.compute (paper ratios)"
    (at_sizes (fun pool ->
         Experiments.Exp_fig7.compute ~spec ~ratios:[ 0.05; 0.1; 0.2 ] ~pool ()))

let test_noise_folding_deterministic () =
  let pll = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 pll in
  let s = Pll_lib.Noise.lorentzian ~level:1e-9 ~corner:(0.3 *. w0) in
  check_identical "Noise folding sums"
    (at_sizes (fun pool ->
         List.map
           (fun frac ->
             ( Pll_lib.Noise.reference_noise_out pll ~folds:512 ~pool s
                 (frac *. w0),
               Pll_lib.Noise.vco_noise_out pll ~folds:512 ~pool s (frac *. w0) ))
           [ 0.03; 0.1; 0.27; 0.44 ]))

let test_htm_sweeps_deterministic () =
  let pll = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 pll in
  let ctx = Htm_core.Htm.ctx ~n_harm:12 ~omega0:w0 in
  let cl = Pll_lib.Pll.closed_loop_htm pll in
  let ws = Numeric.Optimize.logspace (w0 *. 1e-3) (w0 *. 0.49) 24 in
  check_identical "Htm baseband/singular-value sweeps"
    (at_sizes (fun pool ->
         ( Htm_core.Htm.baseband_sweep ~pool ctx cl ws,
           Htm_core.Htm.max_singular_value_sweep ~pool ctx cl ws )))

let () =
  Alcotest.run "pllscope-slow"
    [
      ( "parallel.determinism",
        [
          Alcotest.test_case "ratio_sweep bit-identical at 1/2/4 domains"
            `Slow test_ratio_sweep_deterministic;
          Alcotest.test_case "exp_fig4 bit-identical at 1/2/4 domains" `Slow
            test_fig4_deterministic;
          Alcotest.test_case "exp_fig6 grids bit-identical at 1/2/4 domains"
            `Slow test_fig6_deterministic;
          Alcotest.test_case "exp_fig7 metrics bit-identical at 1/2/4 domains"
            `Slow test_fig7_metrics_deterministic;
          Alcotest.test_case "noise folding bit-identical at 1/2/4 domains"
            `Slow test_noise_folding_deterministic;
          Alcotest.test_case "HTM sweeps bit-identical at 1/2/4 domains" `Slow
            test_htm_sweeps_deterministic;
        ] );
    ]
