open Helpers
module Parse = Circuit.Parse
module Netlist = Circuit.Netlist

let test_values () =
  check_close "plain" 47.0 (Parse.value "47");
  check_close "decimal" 4.7 (Parse.value "4.7");
  check_close "scientific" 1e-9 (Parse.value "1e-9");
  check_close "kilo" 4700.0 (Parse.value "4.7k");
  check_close "mega" 2e6 (Parse.value "2meg");
  check_close "milli" 2e-3 (Parse.value "2m");
  check_close "micro" 1e-6 (Parse.value "1u");
  check_close "nano" 3.3e-9 (Parse.value "3.3n");
  check_close "pico" 1e-12 (Parse.value "1p");
  check_close "femto" 1e-15 (Parse.value "1f");
  check_close "giga" 1e9 (Parse.value "1g");
  check_close "negative exponent with suffix" 2.2e-8 (Parse.value "22e-9") ;
  check_close "case insensitive" 1000.0 (Parse.value "1K")

let test_bad_values () =
  List.iter
    (fun s ->
      match Parse.value s with
      | exception Failure _ -> ()
      | v -> Alcotest.failf "expected failure for %s, got %g" s v)
    [ ""; "k"; "1x"; "--3"; "1e" ]

let test_netlist_roundtrip () =
  let src =
    {|* the paper's second-order charge-pump filter
R1 1 2 55.81k  ; series resistor
C1 2 0 36.18p
C2 1 0 3.993p
|}
  in
  let n = Parse.netlist src in
  check_int "three elements" 3 (List.length (Netlist.elements n));
  check_int "max node" 2 (Netlist.max_node n);
  (* impedance equals the builder's *)
  let built =
    Netlist.second_order_cp_filter ~r:55.81e3 ~c1:36.18e-12 ~c2:3.993e-12
  in
  let z1 = Circuit.Mna.impedance n ~port:1 in
  let z2 = Circuit.Mna.impedance built ~port:1 in
  List.iter
    (fun w ->
      let s = Numeric.Cx.jomega w in
      check_cx ~tol:1e-12 "same impedance" (Lti.Tf.eval z2 s) (Lti.Tf.eval z1 s))
    [ 1e4; 1e6; 1e8 ]

let test_vcvs_and_inductor () =
  let src = {|
L1 1 2 1m
E1 3 0 2 0 2.5
R1 3 0 50
|} in
  let n = Parse.netlist src in
  check_int "elements" 3 (List.length (Netlist.elements n));
  check_int "extra unknowns (L + E)" 2 (Netlist.extra_unknowns n)

let test_errors () =
  let open Robust.Pllscope_error in
  (match Parse.netlist "R1 1 2" with
  | exception Error (Parse { line = 1; col = 0; msg; _ }) ->
      check_true "mentions fields" (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error");
  (match Parse.netlist "X1 1 2 3" with
  | exception Error (Parse { line = 1; _ }) -> ()
  | _ -> Alcotest.fail "unknown element must fail");
  (match Parse.netlist "R1 1 2 -5" with
  | exception Error (Parse { line = 0; _ }) -> ()
  | _ -> Alcotest.fail "negative resistance must fail");
  match Parse.netlist "\n\nC4 a 0 1n" with
  | exception Error (Parse { line = 3; col = 3; msg; _ }) ->
      check_true "bad node reported" (String.length msg > 0)
  | _ -> Alcotest.fail "bad node must fail"

let test_comments_and_blanks () =
  let n = Parse.netlist "* header\n\nR1 1 0 1k ; load\n   \n* trailing" in
  check_int "one element" 1 (List.length (Netlist.elements n))

let prop_value_scaling =
  qcheck ~count:30 "suffixes scale linearly"
    (QCheck2.Gen.float_range 0.1 999.0) (fun x ->
      let s = Printf.sprintf "%.6g" x in
      Float.abs (Parse.value (s ^ "k") -. (1000.0 *. Parse.value s))
      < 1e-6 *. (1.0 +. (1000.0 *. x)))

let suite =
  [
    case "engineering values" test_values;
    case "malformed values" test_bad_values;
    case "netlist round trip" test_netlist_roundtrip;
    case "vcvs and inductor cards" test_vcvs_and_inductor;
    case "error reporting" test_errors;
    case "comments and blanks" test_comments_and_blanks;
    prop_value_scaling;
  ]
