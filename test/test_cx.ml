open Numeric
open Helpers

let test_literals () =
  check_cx "zero" (Cx.make 0.0 0.0) Cx.zero;
  check_cx "one" (Cx.make 1.0 0.0) Cx.one;
  check_cx "j" (Cx.make 0.0 1.0) Cx.j;
  check_cx "j^2 = -1" (Cx.neg Cx.one) (Cx.mul Cx.j Cx.j);
  check_cx "of_float" (Cx.make 3.5 0.0) (Cx.of_float 3.5);
  check_cx "jomega" (Cx.make 0.0 2.5) (Cx.jomega 2.5)

let test_arithmetic () =
  let a = Cx.make 1.0 2.0 and b = Cx.make 3.0 (-1.0) in
  check_cx "add" (Cx.make 4.0 1.0) (Cx.add a b);
  check_cx "sub" (Cx.make (-2.0) 3.0) (Cx.sub a b);
  check_cx "mul" (Cx.make 5.0 5.0) (Cx.mul a b);
  check_cx "div*mul round trip" a (Cx.mul (Cx.div a b) b);
  check_cx "neg" (Cx.make (-1.0) (-2.0)) (Cx.neg a);
  check_cx "inv" Cx.one (Cx.mul a (Cx.inv a));
  check_cx "conj" (Cx.make 1.0 (-2.0)) (Cx.conj a);
  check_cx "scale" (Cx.make 2.0 4.0) (Cx.scale 2.0 a)

let test_polar () =
  check_close "abs of 3+4j" 5.0 (Cx.abs (Cx.make 3.0 4.0));
  check_close "arg of j" (Float.pi /. 2.0) (Cx.arg Cx.j);
  check_close "norm2" 25.0 (Cx.norm2 (Cx.make 3.0 4.0));
  check_cx "cis pi" (Cx.neg Cx.one) (Cx.cis Float.pi) ~tol:1e-12;
  check_cx "exp(j pi/2) = j" Cx.j (Cx.exp (Cx.jomega (Float.pi /. 2.0))) ~tol:1e-12;
  check_cx "log(exp z)" (Cx.make 0.5 1.0) (Cx.log (Cx.exp (Cx.make 0.5 1.0)));
  check_cx "sqrt(-1) = j" Cx.j (Cx.sqrt (Cx.neg Cx.one))

let test_pow_int () =
  let z = Cx.make 1.2 (-0.7) in
  check_cx "pow 0" Cx.one (Cx.pow_int z 0);
  check_cx "pow 1" z (Cx.pow_int z 1);
  check_cx "pow 3" (Cx.mul z (Cx.mul z z)) (Cx.pow_int z 3);
  check_cx "pow -2" (Cx.inv (Cx.mul z z)) (Cx.pow_int z (-2));
  check_cx "pow 10 vs repeated"
    (List.fold_left (fun acc _ -> Cx.mul acc z) Cx.one (List.init 10 Fun.id))
    (Cx.pow_int z 10)

let test_finite_approx () =
  check_true "finite" (Cx.is_finite (Cx.make 1.0 2.0));
  check_true "nan not finite" (not (Cx.is_finite (Cx.make Float.nan 0.0)));
  check_true "inf not finite" (not (Cx.is_finite (Cx.make 0.0 Float.infinity)));
  check_true "approx equal" (Cx.approx Cx.one (Cx.make 1.0 1e-12));
  check_true "approx distinct" (not (Cx.approx Cx.one (Cx.make 1.1 0.0)))

let test_printing () =
  Alcotest.(check string) "positive imag" "1+2i" (Cx.to_string (Cx.make 1.0 2.0));
  Alcotest.(check string) "negative imag" "1-2i" (Cx.to_string (Cx.make 1.0 (-2.0)))

let prop_mul_modulus =
  qcheck "modulus multiplicative" (QCheck2.Gen.pair gen_cx gen_cx)
    (fun (a, b) ->
      let lhs = Cx.abs (Cx.mul a b) and rhs = Cx.abs a *. Cx.abs b in
      Float.abs (lhs -. rhs) <= 1e-9 *. (1.0 +. lhs +. rhs))

let prop_conj_mul =
  qcheck "conj distributes over mul" (QCheck2.Gen.pair gen_cx gen_cx)
    (fun (a, b) ->
      Cx.approx (Cx.conj (Cx.mul a b)) (Cx.mul (Cx.conj a) (Cx.conj b)))

let prop_add_assoc =
  qcheck "addition associative" (QCheck2.Gen.triple gen_cx gen_cx gen_cx)
    (fun (a, b, c) ->
      Cx.approx (Cx.add a (Cx.add b c)) (Cx.add (Cx.add a b) c))

let prop_mul_distrib =
  qcheck "multiplication distributes" (QCheck2.Gen.triple gen_cx gen_cx gen_cx)
    (fun (a, b, c) ->
      Cx.approx ~tol:1e-8
        (Cx.mul a (Cx.add b c))
        (Cx.add (Cx.mul a b) (Cx.mul a c)))

let prop_inv =
  qcheck "inverse" gen_cx_nonzero (fun z ->
      Cx.approx Cx.one (Cx.mul z (Cx.inv z)))

let prop_pow_additive =
  qcheck "pow adds exponents"
    (QCheck2.Gen.triple gen_cx_nonzero (QCheck2.Gen.int_range (-4) 4)
       (QCheck2.Gen.int_range (-4) 4)) (fun (z, n, m) ->
      Cx.approx ~tol:1e-7
        (Cx.pow_int z (n + m))
        (Cx.mul (Cx.pow_int z n) (Cx.pow_int z m)))

let suite =
  [
    case "literals" test_literals;
    case "arithmetic" test_arithmetic;
    case "polar" test_polar;
    case "pow_int" test_pow_int;
    case "finite/approx" test_finite_approx;
    case "printing" test_printing;
    prop_mul_modulus;
    prop_conj_mul;
    prop_add_assoc;
    prop_mul_distrib;
    prop_inv;
    prop_pow_additive;
  ]
