open Numeric
open Helpers
module Tf = Lti.Tf
module Ss = Lti.Ss

let sample_points = [ Cx.make 0.5 1.0; Cx.make (-0.2) 3.0; Cx.jomega 0.7 ]

let check_realization tf =
  let ss = Ss.of_tf tf in
  List.iter
    (fun s ->
      check_cx ~tol:1e-8 "ss eval matches tf eval" (Tf.eval tf s) (Ss.eval ss s))
    sample_points

let test_first_order () = check_realization (Tf.first_order_pole 2.0)

let test_with_zero () =
  check_realization (Tf.make ~num:[ 1.0; 0.5 ] ~den:[ 1.0; 0.3; 1.0 ])

let test_biproper () =
  (* D <> 0: num and den same degree *)
  check_realization (Tf.make ~num:[ 2.0; 1.0 ] ~den:[ 1.0; 1.0 ]);
  let ss = Ss.of_tf (Tf.make ~num:[ 2.0; 1.0 ] ~den:[ 1.0; 1.0 ]) in
  check_close "direct feedthrough" 1.0 ss.Ss.d

let test_static () =
  let ss = Ss.of_tf (Tf.gain 3.0) in
  check_int "order zero" 0 (Ss.order ss);
  check_cx "static eval" (Cx.of_float 3.0) (Ss.eval ss Cx.one)

let test_improper_rejected () =
  Alcotest.check_raises "improper"
    (Invalid_argument "Ss.of_tf: improper transfer function") (fun () ->
      ignore (Ss.of_tf (Tf.make ~num:[ 0.0; 1.0 ] ~den:[ 1.0 ])))

let test_derivative_output () =
  let ss = Ss.of_tf (Tf.first_order_pole 2.0) in
  (* x' = A x + B u; at x = 0, u = 1, dx = B *)
  let dx = Ss.derivative ss [| 0.0 |] 1.0 in
  check_close "dx = b" ss.Ss.b.(0) dx.(0);
  check_close "output at x" (ss.Ss.c.(0) *. 5.0) (Ss.output ss [| 5.0 |] 0.0)

let test_discretize_first_order () =
  (* x' = -x + u: phi = e^{-dt}, gamma = 1 - e^{-dt} *)
  let ss = { Ss.a = Rmat.of_rows [| [| -1.0 |] |]; b = [| 1.0 |]; c = [| 1.0 |]; d = 0.0 } in
  let phi, gamma = Ss.discretize ss ~dt:0.5 in
  check_close ~tol:1e-12 "phi" (exp (-0.5)) (Rmat.get phi 0 0);
  check_close ~tol:1e-12 "gamma" (1.0 -. exp (-0.5)) gamma.(0)

let test_step_response () =
  (* first-order lowpass step: 1 - e^{-w t} *)
  let tf = Tf.first_order_pole 2.0 in
  let ss = Ss.of_tf tf in
  let resp = Ss.step_response ss ~t1:2.0 ~n:21 in
  check_int "samples" 21 (Array.length resp);
  let t, y = resp.(10) in
  check_close "sample time" 1.0 t;
  check_close ~tol:1e-9 "step value" (1.0 -. exp (-2.0)) y;
  let _, y0 = resp.(0) in
  check_close "starts at 0" 0.0 y0

let test_impulse_state () =
  let ss = Ss.of_tf (Tf.first_order_pole 1.0) in
  let x = Ss.impulse_state ss 2.5 in
  check_close "impulse kick" (2.5 *. ss.Ss.b.(0)) x.(0)

let prop_realization_matches =
  qcheck ~count:30 "random stable 2nd-order realization matches"
    (QCheck2.Gen.triple (QCheck2.Gen.float_range 0.2 5.0)
       (QCheck2.Gen.float_range 0.2 5.0) (QCheck2.Gen.float_range (-3.0) 3.0))
    (fun (a, b, c) ->
      let tf = Tf.make ~num:[ c; 1.0 ] ~den:[ a *. b; a +. b; 1.0 ] in
      let ss = Ss.of_tf tf in
      List.for_all
        (fun s -> Cx.approx ~tol:1e-6 (Tf.eval tf s) (Ss.eval ss s))
        sample_points)

let suite =
  [
    case "first order" test_first_order;
    case "with zero" test_with_zero;
    case "biproper (D nonzero)" test_biproper;
    case "static gain" test_static;
    case "improper rejected" test_improper_rejected;
    case "derivative/output" test_derivative_output;
    case "exact discretization" test_discretize_first_order;
    case "step response" test_step_response;
    case "impulse state" test_impulse_state;
    prop_realization_matches;
  ]
