open Numeric
open Helpers

let test_simpson_polynomials () =
  check_close "int x^2 over [0,1]" (1.0 /. 3.0) (Quad.simpson (fun x -> x *. x) 0.0 1.0);
  check_close "int x^3 over [0,2]" 4.0 (Quad.simpson (fun x -> x ** 3.0) 0.0 2.0);
  check_close "empty interval" 0.0 (Quad.simpson (fun _ -> 1.0) 1.0 1.0)

let test_simpson_transcendental () =
  check_close ~tol:1e-8 "int exp over [0,1]" (Float.exp 1.0 -. 1.0)
    (Quad.simpson Float.exp 0.0 1.0);
  check_close ~tol:1e-8 "int sin over [0,pi]" 2.0 (Quad.simpson sin 0.0 Float.pi);
  (* a sharp feature exercises adaptivity *)
  check_close ~tol:1e-6 "narrow gaussian"
    (sqrt Float.pi /. 100.0)
    (Quad.simpson (fun x -> exp (-. ((100.0 *. x) ** 2.0))) (-1.0) 1.0)

let test_periodic_trapezoid () =
  check_close "int sin over period" 0.0
    (Quad.periodic_trapezoid sin ~period:(2.0 *. Float.pi) ~n:64) ~tol:1e-12;
  check_close "int sin^2 over period" Float.pi
    (Quad.periodic_trapezoid (fun t -> sin t ** 2.0) ~period:(2.0 *. Float.pi) ~n:64)

let test_fourier_coeff_cos () =
  (* f = cos(w0 t): coefficients 1/2 at k = +-1 *)
  let period = 2.0 in
  let omega0 = Float.pi in
  let f t = cos (omega0 *. t) in
  check_cx ~tol:1e-12 "k=1" (Cx.of_float 0.5) (Quad.fourier_coeff f ~period ~k:1 ());
  check_cx ~tol:1e-12 "k=-1" (Cx.of_float 0.5) (Quad.fourier_coeff f ~period ~k:(-1) ());
  check_cx ~tol:1e-12 "k=0" Cx.zero (Quad.fourier_coeff f ~period ~k:0 ());
  check_cx ~tol:1e-12 "k=2" Cx.zero (Quad.fourier_coeff f ~period ~k:2 ())

let test_fourier_coeff_sin () =
  (* f = sin(w0 t): coefficients -j/2 at k=1, +j/2 at k=-1 *)
  let period = 1.0 in
  let f t = sin (2.0 *. Float.pi *. t) in
  check_cx ~tol:1e-12 "k=1" (Cx.scale (-0.5) Cx.j) (Quad.fourier_coeff f ~period ~k:1 ());
  check_cx ~tol:1e-12 "k=-1" (Cx.scale 0.5 Cx.j) (Quad.fourier_coeff f ~period ~k:(-1) ())

let test_fourier_square_wave () =
  (* 50% duty square wave +-1: c_k = 2/(j pi k) for odd k, 0 for even *)
  let period = 1.0 in
  let f t =
    let frac = t -. Float.of_int (int_of_float t) in
    if frac < 0.5 then 1.0 else -1.0
  in
  let c1 = Quad.fourier_coeff f ~period ~k:1 ~n:4096 () in
  check_cx ~tol:1e-3 "square k=1" (Cx.div (Cx.of_float 2.0) (Cx.mul Cx.j (Cx.of_float Float.pi))) c1;
  let c2 = Quad.fourier_coeff f ~period ~k:2 ~n:4096 () in
  check_cx ~tol:1e-3 "square k=2 vanishes" Cx.zero c2

let test_fourier_eval_roundtrip () =
  let period = 3.0 in
  let omega0 = 2.0 *. Float.pi /. period in
  let f t = 1.0 +. (0.5 *. cos (omega0 *. t)) -. (0.25 *. sin (2.0 *. omega0 *. t)) in
  let coeffs = Quad.fourier_coeffs f ~period ~max_harmonic:4 () in
  List.iter
    (fun t -> check_close ~tol:1e-9 "synthesis" (f t) (Quad.fourier_eval coeffs ~omega0 t))
    [ 0.0; 0.31; 1.7; 2.9 ]

let test_fourier_eval_rejects_even () =
  Alcotest.check_raises "even array"
    (Invalid_argument "Quad.fourier_eval: even-length array") (fun () ->
      ignore (Quad.fourier_eval [| Cx.one; Cx.one |] ~omega0:1.0 0.0))

let prop_simpson_linear =
  qcheck ~count:30 "simpson linear in the integrand"
    (QCheck2.Gen.pair small_float small_float) (fun (a, b) ->
      let f x = (a *. x) +. b in
      let expected = (a /. 2.0) +. b in
      Float.abs (Quad.simpson f 0.0 1.0 -. expected) < 1e-9 *. (1.0 +. Float.abs expected))

let prop_coeff_conj_symmetry =
  qcheck ~count:20 "real signals give conjugate-symmetric coefficients"
    (QCheck2.Gen.triple small_float small_float small_float) (fun (a, b, c) ->
      let f t = a +. (b *. cos t) +. (c *. sin (2.0 *. t)) in
      let period = 2.0 *. Float.pi in
      let ck = Quad.fourier_coeff f ~period ~k:2 () in
      let cmk = Quad.fourier_coeff f ~period ~k:(-2) () in
      Cx.approx ~tol:1e-9 (Cx.conj ck) cmk)

let suite =
  [
    case "simpson on polynomials" test_simpson_polynomials;
    case "simpson on transcendentals" test_simpson_transcendental;
    case "periodic trapezoid" test_periodic_trapezoid;
    case "fourier coefficients of cos" test_fourier_coeff_cos;
    case "fourier coefficients of sin" test_fourier_coeff_sin;
    case "fourier of square wave" test_fourier_square_wave;
    case "fourier synthesis round trip" test_fourier_eval_roundtrip;
    case "fourier_eval validation" test_fourier_eval_rejects_even;
    prop_simpson_linear;
    prop_coeff_conj_symmetry;
  ]
