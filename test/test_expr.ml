open Numeric
open Helpers
module Expr = Symbolic.Expr

let env_xy name =
  match name with
  | "x" -> Cx.of_float 2.0
  | "y" -> Cx.of_float 3.0
  | _ -> raise Not_found

let x = Expr.sym "x"
let y = Expr.sym "y"

let test_constant_folding () =
  check_true "2+3 folds" (Expr.equal (Expr.num 5.0) (Expr.add (Expr.num 2.0) (Expr.num 3.0)));
  check_true "2*3 folds" (Expr.equal (Expr.num 6.0) (Expr.mul (Expr.num 2.0) (Expr.num 3.0)));
  check_true "x+0 = x" (Expr.equal x (Expr.add x Expr.zero));
  check_true "x*1 = x" (Expr.equal x (Expr.mul x Expr.one));
  check_true "x*0 = 0" (Expr.equal Expr.zero (Expr.mul x Expr.zero));
  check_true "x^0 = 1" (Expr.equal Expr.one (Expr.pow x 0));
  check_true "x^1 = x" (Expr.equal x (Expr.pow x 1));
  check_true "(x^2)^3 = x^6" (Expr.equal (Expr.pow x 6) (Expr.pow (Expr.pow x 2) 3))

let test_eval () =
  let e = Expr.add (Expr.mul x y) (Expr.pow x 2) in
  check_cx "2*3 + 4" (Cx.of_float 10.0) (Expr.eval env_xy e);
  check_close "real eval" 10.0 (Expr.eval_real (function "x" -> 2.0 | "y" -> 3.0 | _ -> raise Not_found) e);
  check_cx "division" (Cx.of_float (2.0 /. 3.0)) (Expr.eval env_xy (Expr.div x y));
  check_cx "exp" (Cx.exp (Cx.of_float 2.0)) (Expr.eval env_xy (Expr.exp x));
  check_cx ~tol:1e-12 "coth" (Special.coth (Cx.of_float 2.0)) (Expr.eval env_xy (Expr.coth x));
  check_cx ~tol:1e-12 "sin" (Cx.of_float (sin 2.0)) (Expr.eval env_xy (Expr.sin x));
  check_cx ~tol:1e-12 "cos" (Cx.of_float (cos 2.0)) (Expr.eval env_xy (Expr.cos x));
  check_cx ~tol:1e-12 "log" (Cx.of_float (log 2.0)) (Expr.eval env_xy (Expr.log x))

let finite_diff e name h =
  let base v = Expr.eval_real (function n when n = name -> v | "x" -> 2.0 | "y" -> 3.0 | _ -> raise Not_found) e in
  (base (2.0 +. h) -. base (2.0 -. h)) /. (2.0 *. h)

let check_derivative ?(tol = 1e-6) e =
  let d = Expr.derivative ~wrt:"x" e in
  let sym_v =
    Expr.eval_real (function "x" -> 2.0 | "y" -> 3.0 | _ -> raise Not_found) d
  in
  let fd = finite_diff e "x" 1e-6 in
  check_close ~tol "derivative vs finite difference" fd sym_v

let test_derivatives () =
  check_derivative (Expr.pow x 3);
  check_derivative (Expr.mul x y);
  check_derivative (Expr.div Expr.one x);
  check_derivative (Expr.exp (Expr.mul x (Expr.num 0.5)));
  check_derivative (Expr.sin x);
  check_derivative (Expr.cos (Expr.pow x 2));
  check_derivative (Expr.coth x);
  check_derivative (Expr.log x);
  check_derivative
    (Expr.div (Expr.add Expr.one (Expr.mul x y)) (Expr.add x (Expr.pow y 2)));
  check_true "d/dx y = 0"
    (Expr.equal Expr.zero (Expr.derivative ~wrt:"x" y))

let test_subst () =
  let e = Expr.add (Expr.pow x 2) y in
  let e' = Expr.subst "x" (Expr.num 5.0) e in
  check_cx "substituted" (Cx.of_float 28.0) (Expr.eval env_xy e');
  let chained = Expr.subst "y" (Expr.mul x x) e in
  check_cx "symbolic substitution" (Cx.of_float 8.0) (Expr.eval env_xy chained)

let test_symbols () =
  let e = Expr.add (Expr.mul x y) (Expr.coth x) in
  Alcotest.(check (list string)) "free symbols" [ "x"; "y" ] (Expr.symbols e);
  Alcotest.(check (list string)) "constants none" [] (Expr.symbols (Expr.num 3.0))

let test_printing () =
  Alcotest.(check string) "sum" "x + y" (Expr.to_string (Expr.add x y));
  Alcotest.(check string) "product precedence" "(x + y)*x"
    (Expr.to_string (Expr.mul (Expr.add x y) x));
  Alcotest.(check string) "power" "x^2" (Expr.to_string (Expr.pow x 2));
  Alcotest.(check string) "function" "coth(x)" (Expr.to_string (Expr.coth x))

let prop_eval_add_homomorphic =
  qcheck ~count:40 "eval is additive" (QCheck2.Gen.pair small_float small_float)
    (fun (a, b) ->
      let env = function "x" -> Cx.of_float a | "y" -> Cx.of_float b | _ -> raise Not_found in
      Cx.approx
        (Expr.eval env (Expr.add x y))
        (Cx.add (Expr.eval env x) (Expr.eval env y)))

let prop_derivative_linear =
  qcheck ~count:30 "d(a e1 + e2) = a de1 + de2"
    (QCheck2.Gen.float_range (-5.0) 5.0) (fun a ->
      let e1 = Expr.pow x 3 and e2 = Expr.sin x in
      let lhs =
        Expr.derivative ~wrt:"x" (Expr.add (Expr.mul (Expr.num a) e1) e2)
      in
      let rhs =
        Expr.add
          (Expr.mul (Expr.num a) (Expr.derivative ~wrt:"x" e1))
          (Expr.derivative ~wrt:"x" e2)
      in
      let at v e = Expr.eval_real (function "x" -> v | _ -> raise Not_found) e in
      Float.abs (at 1.3 lhs -. at 1.3 rhs) < 1e-9 *. (1.0 +. Float.abs (at 1.3 rhs)))

let suite =
  [
    case "constant folding" test_constant_folding;
    case "evaluation" test_eval;
    case "derivatives vs finite differences" test_derivatives;
    case "substitution" test_subst;
    case "free symbols" test_symbols;
    case "printing" test_printing;
    prop_eval_add_homomorphic;
    prop_derivative_linear;
  ]
