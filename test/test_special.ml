open Numeric
open Helpers

let test_coth_basics () =
  (* coth(x) = cosh x / sinh x; coth(1) ~ 1.3130352854993312 *)
  check_cx ~tol:1e-12 "coth(1)" (Cx.of_float 1.3130352854993312)
    (Special.coth Cx.one);
  (* odd function *)
  let z = Cx.make 0.7 0.4 in
  check_cx ~tol:1e-12 "coth odd" (Cx.neg (Special.coth z)) (Special.coth (Cx.neg z));
  (* large-argument limits *)
  check_cx "coth(+400)" Cx.one (Special.coth (Cx.of_float 400.0));
  check_cx "coth(-400)" (Cx.neg Cx.one) (Special.coth (Cx.of_float (-400.0)))

let test_coth_identity () =
  (* coth^2 - csch^2 = 1 *)
  let z = Cx.make 0.9 (-0.3) in
  let c = Special.coth z and k = Special.csch2 z in
  check_cx ~tol:1e-10 "coth^2 - csch^2 = 1" Cx.one (Cx.sub (Cx.mul c c) k)

let test_sinc () =
  check_close "sinc 0" 1.0 (Special.sinc 0.0);
  check_close "sinc pi" 0.0 (Special.sinc Float.pi) ~tol:1e-12;
  check_close "sinc 1" (sin 1.0) (Special.sinc 1.0)

(* the core invariant: closed-form lattice sums match brute force *)
let check_sum k z omega0 =
  let closed = Special.harmonic_sum ~k ~omega0 z in
  let brute = Special.harmonic_sum_truncated ~k ~omega0 ~terms:20000 z in
  (* k=1 truncation converges slowly (~1/M); loosen accordingly *)
  let tol = match k with 1 -> 2e-4 | 2 -> 1e-5 | _ -> 1e-7 in
  check_cx ~tol
    (Printf.sprintf "S_%d at %s" k (Cx.to_string z))
    closed brute

let test_s1 () =
  List.iter
    (fun z -> check_sum 1 z 2.0)
    [ Cx.of_float 0.3; Cx.make 0.5 0.4; Cx.make (-0.7) 0.2 ]

let test_s2 () =
  List.iter
    (fun z -> check_sum 2 z 3.0)
    [ Cx.of_float 0.3; Cx.make 0.5 0.4; Cx.make 1.5 (-0.8) ]

let test_s3_s4_s5 () =
  List.iter
    (fun k -> check_sum k (Cx.make 0.4 0.7) 1.0)
    [ 3; 4; 5 ]

let test_s2_known_value () =
  (* sum over all m of 1/(z + j m)^2 with a = 2*pi gives
     S_2(z, 2*pi) = (1/4) csch^2(z/2) at omega0 = 2 pi *)
  let z = Cx.of_float 1.0 in
  let expected =
    Cx.scale 0.25 (Special.csch2 (Cx.of_float 0.5))
  in
  check_cx ~tol:1e-10 "S2 closed value" expected
    (Special.harmonic_sum ~k:2 ~omega0:(2.0 *. Float.pi) z)

let test_periodicity () =
  (* S_k(z + j omega0) = S_k(z): the lattice sum is periodic *)
  let omega0 = 2.5 in
  let z = Cx.make 0.3 0.4 in
  let shifted = Cx.add z (Cx.jomega omega0) in
  List.iter
    (fun k ->
      check_cx ~tol:1e-9
        (Printf.sprintf "S_%d periodic" k)
        (Special.harmonic_sum ~k ~omega0 z)
        (Special.harmonic_sum ~k ~omega0 shifted))
    [ 1; 2; 3 ]

let test_invalid_k () =
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Special.harmonic_sum: k must be >= 1") (fun () ->
      ignore (Special.harmonic_sum ~k:0 ~omega0:1.0 Cx.one))

let prop_s2_matches_truncation =
  qcheck ~count:30 "S2 closed form vs truncation"
    (QCheck2.Gen.pair
       (QCheck2.Gen.float_range 0.1 2.0)
       (QCheck2.Gen.float_range (-1.0) 1.0)) (fun (re, im) ->
      let z = Cx.make re im in
      let omega0 = 2.0 in
      let closed = Special.harmonic_sum ~k:2 ~omega0 z in
      let brute = Special.harmonic_sum_truncated ~k:2 ~omega0 ~terms:5000 z in
      Cx.approx ~tol:1e-3 closed brute)

let prop_derivative_recursion =
  qcheck ~count:30 "S_{k+1} = -(1/k) dS_k/dz (finite difference)"
    (QCheck2.Gen.pair
       (QCheck2.Gen.float_range 0.3 1.5)
       (QCheck2.Gen.float_range (-0.8) 0.8)) (fun (re, im) ->
      let z = Cx.make re im in
      let omega0 = 2.0 in
      let h = 1e-5 in
      let k = 2 in
      let d =
        Cx.scale (0.5 /. h)
          (Cx.sub
             (Special.harmonic_sum ~k ~omega0 (Cx.add z (Cx.of_float h)))
             (Special.harmonic_sum ~k ~omega0 (Cx.sub z (Cx.of_float h))))
      in
      let expected = Cx.scale (-1.0 /. float_of_int k) d in
      Cx.approx ~tol:1e-4 expected (Special.harmonic_sum ~k:(k + 1) ~omega0 z))

let suite =
  [
    case "coth basics" test_coth_basics;
    case "coth/csch identity" test_coth_identity;
    case "sinc" test_sinc;
    case "S1 vs truncation" test_s1;
    case "S2 vs truncation" test_s2;
    case "S3..S5 vs truncation" test_s3_s4_s5;
    case "S2 closed value" test_s2_known_value;
    case "lattice periodicity" test_periodicity;
    case "invalid order" test_invalid_k;
    prop_s2_matches_truncation;
    prop_derivative_recursion;
  ]
