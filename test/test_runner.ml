(* Crash-safe sweep execution end to end:

   - CRC-32 matches the IEEE reference vector and composes;
   - Atomic_file.write is all-or-nothing: an exception mid-write leaves
     the target untouched and no temp residue;
   - the checkpoint journal round-trips frames, tolerates a torn tail
     (both a real truncation and the journal-torn injection site) and
     rejects non-journal files with a typed Parse error;
   - a run crashed at a random point (crash-at-point) and resumed is
     bit-identical to an uninterrupted run, at pool sizes 1 and 4;
   - a resumed run recomputes only the points missing from the journal;
   - a hung task (task-hang) is condemned by the watchdog as a typed
     Timed_out while the rest of the grid completes;
   - cancellation surfaces as typed Cancelled failures, preserving
     everything computed before the token fired;
   - Robust.Stats.reset isolates back-to-back runs. *)

open Helpers
module Pool = Parallel.Pool
module Sweep = Parallel.Sweep
module Cancel = Parallel.Cancel
module E = Robust.Pllscope_error

(* every test restores the global robustness/cancellation state *)
let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ();
      Cancel.reset_global ())
    f

(* fresh scratch directory per call; tests clean up by rough sweep *)
let scratch_counter = ref 0
let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pllscope_runner_%d_%d" (Unix.getpid ()) !scratch_counter)
  in
  Sys.mkdir d 0o700;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_raw path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* the deterministic sweep task used throughout *)
let fval i = sin (float_of_int i *. 0.7) +. (float_of_int i *. 1.3)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_partial_bit_identical msg (a : float Sweep.partial)
    (b : float Sweep.partial) =
  check_int (msg ^ ": total") a.Sweep.total b.Sweep.total;
  check_int (msg ^ ": failures")
    (List.length a.Sweep.failures)
    (List.length b.Sweep.failures);
  Array.iteri
    (fun i va ->
      match (va, b.Sweep.values.(i)) with
      | Some xa, Some xb ->
          if not (bits_equal xa xb) then
            Alcotest.failf "%s: point %d differs (%h vs %h)" msg i xa xb
      | None, None -> ()
      | _ -> Alcotest.failf "%s: point %d present in one run only" msg i)
    a.Sweep.values

(* ------------------------------------------------------------------ *)
(* crc32                                                               *)

let test_crc32 () =
  (* the IEEE 802.3 check value *)
  check_true "reference vector"
    (Int32.equal (Runner.Crc32.string "123456789") 0xCBF43926l);
  check_true "empty string" (Int32.equal (Runner.Crc32.string "") 0l);
  let a = "journal" and b = " frame payload" in
  check_true "update composes"
    (Int32.equal
       (Runner.Crc32.update (Runner.Crc32.string a) b 0 (String.length b))
       (Runner.Crc32.string (a ^ b)));
  match Runner.Crc32.update 0l "abc" 1 5 with
  | _ -> Alcotest.fail "out-of-range update accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* atomic file writes                                                  *)

let test_atomic_file_write () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "report.json" in
  Runner.Atomic_file.write_string path "{\"ok\": true}";
  check_true "content written" (read_file path = "{\"ok\": true}");
  (* overwrite is atomic too *)
  Runner.Atomic_file.write_string path "{\"ok\": false}";
  check_true "overwritten" (read_file path = "{\"ok\": false}")

let test_atomic_file_failure_leaves_target () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "report.json" in
  Runner.Atomic_file.write_string path "old content";
  (match
     Runner.Atomic_file.write path (fun oc ->
         output_string oc "partial junk";
         failwith "Test_runner: simulated writer crash")
   with
  | () -> Alcotest.fail "writer exception swallowed"
  | exception Failure _ -> ());
  check_true "target untouched after failed write"
    (read_file path = "old content");
  check_int "no temp residue" 1 (Array.length (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* journal                                                             *)

let test_journal_roundtrip () =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  check_true "missing file replays empty" (Runner.Journal.replay path = []);
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:0 "alpha";
  Runner.Journal.append j ~index:3 "beta";
  Runner.Journal.append j ~index:1 "";
  Runner.Journal.close j;
  check_true "frames replay in append order"
    (Runner.Journal.replay path = [ (0, "alpha"); (3, "beta"); (1, "") ]);
  (* re-open appends after the existing frames *)
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:2 "gamma";
  Runner.Journal.close j;
  Runner.Journal.close j (* idempotent *);
  check_true "append after reopen"
    (Runner.Journal.replay path
    = [ (0, "alpha"); (3, "beta"); (1, ""); (2, "gamma") ]);
  match Runner.Journal.append j ~index:9 "x" with
  | () -> Alcotest.fail "append on closed journal accepted"
  | exception Invalid_argument _ -> ()

let test_journal_torn_tail () =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:0 "alpha";
  Runner.Journal.append j ~index:1 "beta";
  Runner.Journal.close j;
  let raw = read_file path in
  (* tear the last frame mid-payload, as a crash mid-write would *)
  write_raw path (String.sub raw 0 (String.length raw - 3));
  check_true "torn tail dropped, complete frames kept"
    (Runner.Journal.replay path = [ (0, "alpha") ]);
  (* open_append truncates the tear so new frames land on a boundary *)
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:7 "gamma";
  Runner.Journal.close j;
  check_true "clean append after truncated tail"
    (Runner.Journal.replay path = [ (0, "alpha"); (7, "gamma") ])

let test_journal_corrupt_frame () =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:0 "alpha";
  Runner.Journal.append j ~index:1 "beta";
  Runner.Journal.close j;
  let raw = read_file path in
  (* flip one payload byte of the last frame: its CRC must reject it *)
  let b = Bytes.of_string raw in
  Bytes.set b (Bytes.length b - 1) 'X';
  write_raw path (Bytes.to_string b);
  check_true "corrupt frame rejected by checksum"
    (Runner.Journal.replay path = [ (0, "alpha") ])

let test_journal_bad_magic () =
  let path = Filename.concat (scratch_dir ()) "notajournal.ckpt" in
  write_raw path "this is not a pllscope checkpoint journal, honest\n";
  match Runner.Journal.replay path with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception E.Error (Parse { msg; _ }) ->
      check_true "error names the magic check"
        (String.length msg > 0)

let test_journal_torn_injection () =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:0 "alpha";
  (* the injected crash tears the next frame halfway through *)
  Robust.Inject.configure "journal-torn:1";
  (match Runner.Journal.append j ~index:1 "beta" with
  | () -> Alcotest.fail "journal-torn site did not fire"
  | exception Robust.Inject.Simulated_crash -> ());
  Robust.Inject.disarm ();
  Runner.Journal.close j;
  check_true "torn frame invisible to replay"
    (Runner.Journal.replay path = [ (0, "alpha") ]);
  let j = Runner.Journal.open_append path in
  Runner.Journal.append j ~index:1 "beta";
  Runner.Journal.close j;
  check_true "recovery resumes on a clean boundary"
    (Runner.Journal.replay path = [ (0, "alpha"); (1, "beta") ])

(* ------------------------------------------------------------------ *)
(* crash-at-point + resume: bit-identical to uninterrupted             *)

let codec : float Runner.Run.codec = Runner.Run.marshal_codec ()

let grid_n = 12
let grid_idx = Array.init grid_n (fun i -> i)

let uninterrupted () =
  Pool.with_pool ~domains:1 (fun p ->
      Runner.Run.grid ~pool:p ~codec fval grid_idx)

let crash_and_resume ~domains ~crash_at =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  (* phase 1: run with a crash injected at the [crash_at]-th computed
     point; the simulated crash escapes Run.grid like a process death *)
  Robust.Inject.configure (Printf.sprintf "crash-at-point:%d" (crash_at + 1));
  (match
     Pool.with_pool ~domains (fun p ->
         Runner.Run.grid ~pool:p ~codec ~checkpoint:path fval grid_idx)
   with
  | (_ : float Sweep.partial) ->
      (* a crash index past the grid size never fires: fine *)
      check_true "crash index past grid" (crash_at >= grid_n)
  | exception Robust.Inject.Simulated_crash -> ());
  Robust.Inject.disarm ();
  let journaled = List.length (Runner.Journal.replay path) in
  Robust.Stats.reset ();
  (* phase 2: resume *)
  let r =
    Pool.with_pool ~domains (fun p ->
        Runner.Run.grid ~pool:p ~codec ~checkpoint:path ~resume:true fval
          grid_idx)
  in
  let st = Robust.Stats.snapshot () in
  check_int "every journaled point resumed, none recomputed" journaled
    st.Robust.Stats.resumed_points;
  r

let test_crash_resume_bit_identical () =
  let reference = uninterrupted () in
  List.iter
    (fun domains ->
      List.iter
        (fun crash_at ->
          let r = crash_and_resume ~domains ~crash_at in
          check_partial_bit_identical
            (Printf.sprintf "crash at %d, %d domain(s)" crash_at domains)
            reference r)
        [ 0; 3; grid_n - 1 ])
    [ 1; 4 ]

let test_crash_resume_random_index =
  qcheck ~count:6 "resume after crash at a random point is bit-identical"
    QCheck2.Gen.(int_range 0 (grid_n - 1))
    (fun crash_at ->
      let wrapped () =
        let reference = uninterrupted () in
        let r = crash_and_resume ~domains:4 ~crash_at in
        check_partial_bit_identical "random crash point" reference r
      in
      clean wrapped ();
      true)

let test_resume_recomputes_only_missing () =
  let path = Filename.concat (scratch_dir ()) "sweep.ckpt" in
  let computed = Atomic.make 0 in
  let f i =
    Atomic.incr computed;
    fval i
  in
  let full =
    Pool.with_pool ~domains:2 (fun p ->
        Runner.Run.grid ~pool:p ~codec ~checkpoint:path f grid_idx)
  in
  check_int "first run computes everything" grid_n (Atomic.get computed);
  (* tear the tail: the last frame is lost, the rest stay durable *)
  let raw = read_file path in
  write_raw path (String.sub raw 0 (String.length raw - 5));
  let kept = List.length (Runner.Journal.replay path) in
  check_int "exactly one frame torn" (grid_n - 1) kept;
  Atomic.set computed 0;
  Robust.Stats.reset ();
  let r =
    Pool.with_pool ~domains:2 (fun p ->
        Runner.Run.grid ~pool:p ~codec ~checkpoint:path ~resume:true f grid_idx)
  in
  check_int "only the torn point recomputed" (grid_n - kept)
    (Atomic.get computed);
  check_int "the rest replayed from the journal" kept
    (Robust.Stats.snapshot ()).Robust.Stats.resumed_points;
  check_partial_bit_identical "torn-tail resume" full r;
  (* a fully journaled grid resumes without computing anything *)
  Atomic.set computed 0;
  let r2 =
    Pool.with_pool ~domains:2 (fun p ->
        Runner.Run.grid ~pool:p ~codec ~checkpoint:path ~resume:true f grid_idx)
  in
  check_int "nothing recomputed on a complete journal" 0 (Atomic.get computed);
  check_partial_bit_identical "complete-journal resume" full r2

let test_resume_requires_checkpoint () =
  match Runner.Run.grid ~resume:true ~codec fval grid_idx with
  | _ -> Alcotest.fail "resume without checkpoint accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* watchdog timeouts and cancellation                                  *)

let test_task_hang_times_out () =
  (* the third task attempt hangs; the watchdog condemns it while the
     rest of the grid completes normally *)
  Robust.Inject.configure "task-hang:3";
  let r =
    Pool.with_pool ~domains:1 (fun p ->
        Sweep.grid_checked ~pool:p ~chunk:1 ~task_timeout:0.2 fval grid_idx)
  in
  check_int "exactly one point lost" 1 (List.length r.Sweep.failures);
  (match r.Sweep.failures with
  | [ (i, E.Timed_out { task; seconds }) ] ->
      check_int "hung point is the third attempt" 2 i;
      check_int "payload task matches" 2 task;
      check_close "payload carries the configured bound" 0.2 seconds
  | _ -> Alcotest.fail "expected a single Timed_out failure");
  check_int "rest of the grid completed" (grid_n - 1) (Sweep.ok_count r);
  Array.iteri
    (fun i v ->
      match v with
      | Some x ->
          check_true "survivor bit-identical to clean eval"
            (bits_equal x (fval i))
      | None -> check_int "only the hung point missing" 2 i)
    r.Sweep.values;
  check_int "timeout counted" 1
    (Robust.Stats.snapshot ()).Robust.Stats.task_timeouts

let test_cancelled_token_preserves_nothing_started () =
  let token = Cancel.create () in
  Cancel.cancel token (Cancel.User "test cancellation");
  let r =
    Pool.with_pool ~domains:2 (fun p ->
        Sweep.grid_checked ~pool:p ~cancel:token fval grid_idx)
  in
  check_int "no point executes after cancellation" 0 (Sweep.ok_count r);
  check_int "every point reported" grid_n (List.length r.Sweep.failures);
  List.iter
    (fun (_, e) ->
      match e with
      | E.Cancelled { reason } -> check_true "reason recorded" (reason <> "")
      | e -> Alcotest.failf "expected Cancelled, got %s" (E.to_string e))
    r.Sweep.failures;
  check_int "cancellations counted" grid_n
    (Robust.Stats.snapshot ()).Robust.Stats.cancelled_points

let test_deadline_drains_cleanly () =
  (* tasks sleep long enough that a 50 ms deadline fires mid-grid: the
     claimed chunks finish, the tail is typed Cancelled *)
  let f i =
    Unix.sleepf 0.02;
    fval i
  in
  let r =
    Cancel.with_deadline ~seconds:0.05 (fun () ->
        Pool.with_pool ~domains:2 (fun p ->
            Sweep.grid_checked ~pool:p ~chunk:1 f (Array.init 24 (fun i -> i))))
  in
  check_true "some points completed before the deadline"
    (Sweep.ok_count r > 0);
  check_true "some points were cancelled" (r.Sweep.failures <> []);
  List.iter
    (fun (_, e) ->
      match e with
      | E.Cancelled { reason } ->
          check_true "reason names the deadline"
            (String.length reason > 0)
      | e -> Alcotest.failf "expected Cancelled, got %s" (E.to_string e))
    r.Sweep.failures;
  (* completed points are bit-identical to a clean run *)
  Array.iteri
    (fun i v ->
      match v with
      | Some x -> check_true "prefix bit-identical" (bits_equal x (fval i))
      | None -> ())
    r.Sweep.values

(* ------------------------------------------------------------------ *)
(* stats isolation between back-to-back runs                           *)

let test_stats_reset_between_runs () =
  (* run 1 records noise: a transient failure absorbed by retry *)
  let touched = Atomic.make 0 in
  let f i =
    if i = 2 && Atomic.fetch_and_add touched 1 = 0 then
      failwith "Test_runner: transient failure"
    else fval i
  in
  let r1 =
    Pool.with_pool ~domains:1 (fun p ->
        Sweep.grid_checked ~pool:p ~retries:2 f grid_idx)
  in
  check_int "run 1 clean after retry" grid_n (Sweep.ok_count r1);
  check_true "run 1 left counters behind"
    (Robust.Stats.total (Robust.Stats.snapshot ()) > 0);
  (* a fresh run (as the CLI does at subcommand start) resets first *)
  Robust.Stats.reset ();
  let r2 =
    Pool.with_pool ~domains:1 (fun p ->
        Sweep.grid_checked ~pool:p ~retries:2 fval grid_idx)
  in
  check_int "run 2 clean" grid_n (Sweep.ok_count r2);
  check_int "run 2 sees none of run 1's counters" 0
    (Robust.Stats.total (Robust.Stats.snapshot ()))

let suite =
  [
    case "crc32 reference vector and composition" (clean test_crc32);
    case "atomic file write" (clean test_atomic_file_write);
    case "atomic write failure leaves target untouched"
      (clean test_atomic_file_failure_leaves_target);
    case "journal: roundtrip and reopen" (clean test_journal_roundtrip);
    case "journal: torn tail tolerated and truncated"
      (clean test_journal_torn_tail);
    case "journal: corrupt frame rejected by CRC"
      (clean test_journal_corrupt_frame);
    case "journal: bad magic is a typed parse error"
      (clean test_journal_bad_magic);
    case "inject journal-torn: tear, recover, resume"
      (clean test_journal_torn_injection);
    case "crash-at-point + resume bit-identical (pool 1 and 4)"
      (clean test_crash_resume_bit_identical);
    test_crash_resume_random_index;
    case "resume recomputes only missing points"
      (clean test_resume_recomputes_only_missing);
    case "resume requires a checkpoint path"
      (clean test_resume_requires_checkpoint);
    case "inject task-hang: typed timeout, rest completes"
      (clean test_task_hang_times_out);
    case "cancelled token: typed failures, nothing executes"
      (clean test_cancelled_token_preserves_nothing_started);
    slow_case "deadline drains cleanly mid-grid"
      (clean test_deadline_drains_cleanly);
    case "stats reset isolates back-to-back runs"
      (clean test_stats_reset_between_runs);
  ]
