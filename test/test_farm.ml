(* Sharded sweep farm end to end:

   - Journal.merge is first-wins, sorted, and canonical; inspect and
     compact report and repair duplicate/torn journals;
   - Journal.Frame round-trips messages over a pipe, reads a torn frame
     as EOF and rejects a corrupt frame with a typed Parse error;
   - a farm run at shard counts 1, 2, 4 and 7 produces payloads and a
     merged base journal byte-identical to the canonical single-process
     journal — the bit-identity guarantee at the process level;
   - a worker kill -9'd at a QCheck-random point with stealing on is
     survived: the range is re-queued, the run completes, bytes equal;
   - without stealing the killed shard's points surface as typed
     Worker_failure and a --resume-style second run completes them,
     bytes equal again;
   - worker Robust.Stats travel back in Exit frames and are absorbed
     into the coordinator's counters.

   The farm spawns real subprocesses: this test binary re-execs itself
   with argv "farm-worker" (dispatched in test_main.ml before Alcotest
   takes over) and serves the protocol via Test_farm.worker_main. *)

open Helpers

let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Robust.Inject.disarm ();
      Robust.Config.reset ();
      Robust.Stats.reset ();
      Parallel.Cancel.reset_global ())
    f

let scratch_counter = ref 0

let scratch_dir () =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pllscope_farm_%d_%d" (Unix.getpid ()) !scratch_counter)
  in
  Sys.mkdir d 0o700;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* the deterministic sweep task used throughout *)
let fval i = sin (float_of_int i *. 0.7) +. (float_of_int i *. 1.3)
let encode_value i = Marshal.to_string (fval i) []
let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* the test workload served by the re-exec'd worker                    *)

type wl = {
  kill : (int * int) option;  (* (shard, kill after N computed points) *)
  flaky_every : int option;  (* index stride that fails on first attempt *)
}

let quiet = { kill = None; flaky_every = None }

let worker_main () =
  Farm.Worker.serve
    ~resolve:(fun shard blob ->
      let wl : wl = Marshal.from_string blob 0 in
      let computed = Atomic.make 0 in
      let m = Mutex.create () in
      let tried : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      fun i ->
        (match wl.kill with
        | Some (ks, after) when ks = shard ->
            if Atomic.fetch_and_add computed 1 >= after then
              Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ());
        (match wl.flaky_every with
        | Some k when k > 0 && i mod k = 0 ->
            let first_attempt =
              Mutex.protect m (fun () ->
                  if Hashtbl.mem tried i then false
                  else begin
                    Hashtbl.add tried i ();
                    true
                  end)
            in
            if first_attempt then
              failwith "Test_farm.worker_main: injected transient failure"
        | _ -> ());
        encode_value i)
    ()

let farm_cfg ?(steal = true) ?(resume = false) ?(slice = Some 3) ~base wl
    shards =
  {
    Farm.Coordinator.shards;
    steal;
    resume;
    checkpoint = base;
    blob = Marshal.to_string wl [];
    worker_argv = (fun _ -> [| Sys.executable_name; "farm-worker" |]);
    slice;
    chunk = None;
    retries = None;
    task_timeout = None;
    progress = false;
  }

(* canonical journal for grid 0..n-1: what any correct farm run's merged
   base must equal byte for byte *)
let canonical_journal dir n =
  let path = Filename.concat dir "canonical.ckpt" in
  let j = Runner.Journal.open_append path in
  for i = 0 to n - 1 do
    Runner.Journal.append j ~index:i (encode_value i)
  done;
  Runner.Journal.close j;
  ignore (Runner.Journal.merge ~into:path [ path ]);
  path

let check_payloads_complete msg n (r : Farm.Coordinator.report) =
  check_int (msg ^ ": total") n r.Farm.Coordinator.total;
  check_int (msg ^ ": failures") 0 (List.length r.Farm.Coordinator.failures);
  Array.iteri
    (fun i p ->
      match p with
      | None -> Alcotest.failf "%s: point %d missing" msg i
      | Some s ->
          let v : float = Marshal.from_string s 0 in
          if not (bits_equal v (fval i)) then
            Alcotest.failf "%s: point %d differs (%h vs %h)" msg i v (fval i))
    r.Farm.Coordinator.payloads

(* ------------------------------------------------------------------ *)
(* journal merge / inspect / compact                                   *)

let mk_journal dir name frames =
  let path = Filename.concat dir name in
  let j = Runner.Journal.open_append path in
  List.iter (fun (i, p) -> Runner.Journal.append j ~index:i p) frames;
  Runner.Journal.close j;
  path

let test_merge_dedup_sort () =
  let dir = scratch_dir () in
  let a = mk_journal dir "a" [ (4, "four"); (0, "zero"); (2, "two-a") ] in
  let b = mk_journal dir "b" [ (1, "one"); (2, "two-b"); (3, "three") ] in
  let into = Filename.concat dir "merged" in
  let n = Runner.Journal.merge ~into [ a; b ] in
  check_int "distinct frames" 5 n;
  let frames = Runner.Journal.replay into in
  check_int "replayed" 5 (List.length frames);
  (* sorted by index *)
  check_true "sorted"
    (List.map fst frames = List.sort compare (List.map fst frames));
  (* first source wins for index 2 *)
  check_true "first-wins" (List.assoc 2 frames = "two-a");
  (* missing sources are empty journals *)
  let n2 =
    Runner.Journal.merge ~into [ a; Filename.concat dir "absent"; b ]
  in
  check_int "missing source tolerated" 5 n2;
  (* merge output is canonical: merging the merge is a fixpoint *)
  let bytes1 = read_file into in
  ignore (Runner.Journal.merge ~into [ into ]);
  check_true "merge is idempotent on its own output"
    (read_file into = bytes1)

let test_inspect () =
  let dir = scratch_dir () in
  let path =
    mk_journal dir "j" [ (0, "a"); (1, "b"); (1, "b2"); (5, "c") ]
  in
  (* torn tail: raw garbage after the last complete frame *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "torn";
  close_out oc;
  let i = Runner.Journal.inspect path in
  check_int "frames" 4 i.Runner.Journal.frames;
  check_int "distinct" 3 i.Runner.Journal.distinct;
  check_int "duplicates" 1 i.Runner.Journal.duplicates;
  check_int "torn bytes" 4 i.Runner.Journal.torn_bytes;
  check_true "max index" (i.Runner.Journal.max_index = Some 5);
  check_int "bytes add up" i.Runner.Journal.bytes
    (i.Runner.Journal.valid_bytes + i.Runner.Journal.torn_bytes);
  (* a missing file is an empty journal *)
  let empty = Runner.Journal.inspect (Filename.concat dir "absent") in
  check_int "missing file frames" 0 empty.Runner.Journal.frames;
  check_true "missing file max" (empty.Runner.Journal.max_index = None)

let test_compact () =
  let dir = scratch_dir () in
  let path =
    mk_journal dir "j"
      [ (2, "two"); (0, "zero"); (2, "late-dup"); (0, "late-dup"); (1, "one") ]
  in
  let kept, dropped = Runner.Journal.compact path in
  check_int "kept" 3 kept;
  check_int "dropped" 2 dropped;
  let frames = Runner.Journal.replay path in
  (* first frame per index survives, in original first-seen order *)
  check_true "content"
    (frames = [ (2, "two"); (0, "zero"); (1, "one") ]);
  let i = Runner.Journal.inspect path in
  check_int "no duplicates left" 0 i.Runner.Journal.duplicates;
  (* compacting a compacted journal is a no-op *)
  let k2, d2 = Runner.Journal.compact path in
  check_int "idempotent kept" 3 k2;
  check_int "idempotent dropped" 0 d2

(* ------------------------------------------------------------------ *)
(* pipe framing                                                        *)

let test_frame_roundtrip () =
  let r, w = Unix.pipe () in
  Runner.Journal.Frame.write w ~tag:3 "hello";
  Runner.Journal.Frame.write w ~tag:0 "";
  Unix.close w;
  (match Runner.Journal.Frame.read r with
  | Some (3, "hello") -> ()
  | _ -> Alcotest.fail "first frame mangled");
  (match Runner.Journal.Frame.read r with
  | Some (0, "") -> ()
  | _ -> Alcotest.fail "empty payload mangled");
  check_true "EOF after last frame" (Runner.Journal.Frame.read r = None);
  Unix.close r;
  match Runner.Journal.Frame.write Unix.stdin ~tag:(-1) "x" with
  | () -> Alcotest.fail "negative tag accepted"
  | exception Invalid_argument _ -> ()

let test_frame_torn_and_corrupt () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "frames" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Runner.Journal.Frame.write fd ~tag:7 "payload";
  Unix.close fd;
  let full = read_file path in
  (* torn mid-frame reads as clean EOF *)
  let torn = Filename.concat dir "torn" in
  Out_channel.with_open_bin torn (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 3)));
  let fd = Unix.openfile torn [ Unix.O_RDONLY ] 0o644 in
  check_true "torn frame is EOF" (Runner.Journal.Frame.read fd = None);
  Unix.close fd;
  (* a bit flip in a complete frame is typed corruption *)
  let bad = Bytes.of_string full in
  Bytes.set bad (String.length full - 1)
    (Char.chr (Char.code (Bytes.get bad (String.length full - 1)) lxor 1));
  let corrupt = Filename.concat dir "corrupt" in
  Out_channel.with_open_bin corrupt (fun oc ->
      Out_channel.output_bytes oc bad);
  let fd = Unix.openfile corrupt [ Unix.O_RDONLY ] 0o644 in
  (match Runner.Journal.Frame.read fd with
  | _ -> Alcotest.fail "corrupt frame accepted"
  | exception Robust.Pllscope_error.Error (Robust.Pllscope_error.Parse _) -> ());
  Unix.close fd

(* ------------------------------------------------------------------ *)
(* farm end to end                                                     *)

let n_points = 60

let test_shard_counts_bit_identical () =
  let dir = scratch_dir () in
  let canon = read_file (canonical_journal dir n_points) in
  List.iter
    (fun shards ->
      let base = Filename.concat dir (Printf.sprintf "farm%d" shards) in
      let report =
        Farm.Coordinator.run (farm_cfg ~base quiet shards) ~n:n_points
      in
      check_payloads_complete (Printf.sprintf "%d shards" shards) n_points
        report;
      check_true
        (Printf.sprintf "%d shards: merged journal byte-identical" shards)
        (read_file base = canon);
      check_true
        (Printf.sprintf "%d shards: shard journals removed" shards)
        (Farm.Coordinator.existing_shards base = []))
    [ 1; 2; 4; 7 ]

let test_more_shards_than_points () =
  let dir = scratch_dir () in
  let base = Filename.concat dir "tiny" in
  let report = Farm.Coordinator.run (farm_cfg ~base quiet 7) ~n:3 in
  check_payloads_complete "7 shards, 3 points" 3 report

let test_empty_grid () =
  let dir = scratch_dir () in
  let base = Filename.concat dir "empty" in
  let report = Farm.Coordinator.run (farm_cfg ~base quiet 2) ~n:0 in
  check_int "empty total" 0 report.Farm.Coordinator.total;
  check_int "empty failures" 0 (List.length report.Farm.Coordinator.failures)

let test_stats_absorbed () =
  let dir = scratch_dir () in
  let base = Filename.concat dir "flaky" in
  Robust.Stats.reset ();
  let report =
    Farm.Coordinator.run
      (farm_cfg ~base { quiet with flaky_every = Some 5 } 3)
      ~n:n_points
  in
  check_payloads_complete "flaky workload retried in-lane" n_points report;
  (* indices 0, 5, ..., 55 each fail once and are retried in their
     worker; the Exit frames carry those counters home *)
  let s = Robust.Stats.snapshot () in
  check_int "absorbed pool retries" 12 s.Robust.Stats.pool_retries;
  check_int "absorbed resumed" 0 s.Robust.Stats.resumed_points

let test_resume_after_full_run_spawns_nothing () =
  let dir = scratch_dir () in
  let base = Filename.concat dir "done" in
  let r1 = Farm.Coordinator.run (farm_cfg ~base quiet 2) ~n:n_points in
  check_payloads_complete "first run" n_points r1;
  let bytes1 = read_file base in
  let r2 =
    Farm.Coordinator.run (farm_cfg ~base ~resume:true quiet 2) ~n:n_points
  in
  check_payloads_complete "resumed no-op run" n_points r2;
  check_int "everything resumed" n_points r2.Farm.Coordinator.resumed;
  check_true "journal unchanged" (read_file base = bytes1)

let gen_kill_scenario =
  QCheck2.Gen.(
    oneofl [ 2; 4; 7 ] >>= fun shards ->
    int_range 0 (shards - 1) >>= fun ks ->
    int_range 0 20 >>= fun after -> return (shards, ks, after))

let qcheck_kill_one_worker_steal =
  qcheck ~count:8 "kill -9 one worker, stealing completes the run"
    gen_kill_scenario
    (fun (shards, ks, after) ->
      let dir = scratch_dir () in
      let canon = read_file (canonical_journal dir n_points) in
      let base = Filename.concat dir "killed" in
      let report =
        Farm.Coordinator.run
          (farm_cfg ~base { quiet with kill = Some (ks, after) } shards)
          ~n:n_points
      in
      check_payloads_complete
        (Printf.sprintf "kill shard %d/%d after %d" ks shards after)
        n_points report;
      check_true "merged journal byte-identical after kill"
        (read_file base = canon);
      true)

let test_kill_no_steal_then_resume () =
  let dir = scratch_dir () in
  let canon = read_file (canonical_journal dir n_points) in
  let base = Filename.concat dir "nosteal" in
  (* shard 0 dies after 2 points; without stealing its remaining points
     must surface as typed Worker_failure *)
  let r1 =
    Farm.Coordinator.run
      (farm_cfg ~steal:false ~base { quiet with kill = Some (0, 2) } 2)
      ~n:n_points
  in
  check_true "worker death detected" (r1.Farm.Coordinator.worker_deaths >= 1);
  check_true "dead shard's points failed"
    (r1.Farm.Coordinator.failures <> []);
  List.iter
    (fun (_, err) ->
      match (err : Robust.Pllscope_error.t) with
      | Worker_failure _ -> ()
      | other ->
          Alcotest.failf "expected Worker_failure, got %s"
            (Robust.Pllscope_error.to_string other))
    r1.Farm.Coordinator.failures;
  (* resume (kill disarmed) completes the missing points *)
  Robust.Stats.reset ();
  let r2 =
    Farm.Coordinator.run (farm_cfg ~resume:true ~base quiet 2) ~n:n_points
  in
  check_payloads_complete "resume completes" n_points r2;
  check_true "resume restored the surviving shard's points"
    (r2.Farm.Coordinator.resumed > 0);
  check_true "merged journal byte-identical after kill + resume"
    (read_file base = canon)

let test_steal_rebalances () =
  let dir = scratch_dir () in
  let base = Filename.concat dir "ragged" in
  (* shard 0 is killed immediately, so every one of its points must be
     stolen by the survivor — steals is forced > 0 *)
  let report =
    Farm.Coordinator.run
      (farm_cfg ~base { quiet with kill = Some (0, 0) } 2)
      ~n:n_points
  in
  check_payloads_complete "stolen run completes" n_points report;
  check_true "stealing happened" (report.Farm.Coordinator.steals > 0);
  check_true "death recorded" (report.Farm.Coordinator.worker_deaths >= 1)

let suite =
  [
    case "journal merge dedups and sorts" (clean test_merge_dedup_sort);
    case "journal inspect counts frames and torn bytes" (clean test_inspect);
    case "journal compact drops duplicates" (clean test_compact);
    case "frame codec round-trips over a pipe" (clean test_frame_roundtrip);
    case "frame codec: torn is EOF, corrupt is Parse"
      (clean test_frame_torn_and_corrupt);
    slow_case "shard counts 1/2/4/7 bit-identical"
      (clean test_shard_counts_bit_identical);
    case "more shards than points" (clean test_more_shards_than_points);
    case "empty grid" (clean test_empty_grid);
    slow_case "worker stats absorbed by coordinator"
      (clean test_stats_absorbed);
    case "resume of a finished run spawns nothing"
      (clean test_resume_after_full_run_spawns_nothing);
    qcheck_kill_one_worker_steal;
    slow_case "kill without stealing fails typed, resume completes"
      (clean test_kill_no_steal_then_resume);
    case "stealing rebalances a dead shard" (clean test_steal_rebalances);
  ]
