open Helpers
module B = Sim.Behavioral
module Transient = Sim.Transient
module Waveform = Sim.Waveform

let pll = pll_of spec_default
let period = Pll_lib.Pll.period pll

let test_quiet_lock_is_quiet () =
  (* phase-aligned start with no stimulus: theta stays at numerical zero
     and no charge-pump activity beyond roundoff-width pulses *)
  let r = Transient.locked_run pll ~periods:20 () in
  check_true "theta negligible"
    (Waveform.max_abs r.B.theta < 1e-15 *. period *. 1e3);
  check_true "control negligible" (Waveform.max_abs r.B.control < 1e-9)

let test_sample_grid () =
  let r = Transient.locked_run pll ~steps_per_period:32 ~periods:10 () in
  check_int "sample count" (10 * 32 + 1) (Waveform.length r.B.theta);
  check_close "dt" (period /. 32.0) r.B.theta.Waveform.dt

let test_pulses_once_per_period () =
  (* with a step stimulus the PFD emits one pulse pair event per period *)
  let stim = B.step_modulation ~eps:(period /. 200.0) ~at:(2.0 *. period) in
  let r = Transient.locked_run pll ~stimulus:stim ~periods:40 () in
  let n = List.length r.B.pulses in
  check_true (Printf.sprintf "pulse count plausible (%d)" n) (n >= 20 && n <= 45)

let test_step_response_settles () =
  (* type-2 loop: theta must settle to the commanded step *)
  let eps = period /. 500.0 in
  let stim = B.step_modulation ~eps ~at:(2.0 *. period) in
  let r = Transient.locked_run pll ~stimulus:stim ~periods:120 () in
  let final = Waveform.value r.B.theta (Waveform.length r.B.theta - 1) in
  check_close ~tol:1e-3 "tracks the step" eps final

let test_step_overshoot_matches_zmodel () =
  (* overshoot of the sampled loop, behavioral vs exact discrete model *)
  let eps = period /. 500.0 in
  let stim = B.step_modulation ~eps ~at:(2.0 *. period) in
  let r = Transient.locked_run pll ~stimulus:stim ~periods:150 () in
  let sim_peak = Waveform.max_abs r.B.theta /. eps in
  let zm = Pll_lib.Zmodel.of_pll pll in
  let z_peak =
    Array.fold_left Stdlib.max neg_infinity
      (Pll_lib.Zmodel.step_response zm ~n:150)
  in
  check_close ~tol:0.02 "overshoot agreement" z_peak sim_peak

let test_acquisition_locks () =
  let r = Transient.acquisition pll ~freq_offset:100e3 ~periods:200 () in
  match Transient.lock_time r ~tol:(period /. 1000.0) with
  | Some t -> check_true "locks reasonably fast" (t < 100.0 *. period)
  | None -> Alcotest.fail "lock expected"

let test_acquisition_pulses_shrink () =
  (* during pull-in the pump pulses start wide and end narrow *)
  let r = Transient.acquisition pll ~freq_offset:200e3 ~periods:200 () in
  let widths = List.map (fun (_, w) -> Float.abs w) r.B.pulses in
  (match widths with
  | first :: _ ->
      let last = List.nth widths (List.length widths - 1) in
      check_true "pulses shrink under lock" (last < first /. 10.0)
  | [] -> Alcotest.fail "pulses expected");
  check_close ~tol:1e-6 "ripple settles" 0.0
    (Transient.steady_state_ripple r ~period ~periods:10)

let test_unstable_design_diverges () =
  (* ratio 0.32 is unstable per the discrete model; the nonlinear
     simulator must agree *)
  let fast = pll_of (Pll_lib.Design.with_ratio spec_default 0.32) in
  let eps = Pll_lib.Pll.period fast /. 1000.0 in
  let stim = B.step_modulation ~eps ~at:(2.0 *. Pll_lib.Pll.period fast) in
  let r = Transient.locked_run fast ~stimulus:stim ~periods:200 () in
  let tail = Waveform.max_abs r.B.theta in
  check_true "oscillation grows" (tail > 10.0 *. eps)

let test_sine_modulation_construction () =
  let s = B.sine_modulation ~eps:2.0 ~omega:3.0 in
  check_close "sine stim" (2.0 *. sin 0.9) (s.B.theta_ref 0.3);
  Alcotest.check_raises "step at t=0 rejected"
    (Invalid_argument "Behavioral.step_modulation: at must be > 0") (fun () ->
      ignore (B.step_modulation ~eps:1.0 ~at:0.0))

let test_lock_time_reports () =
  let r = Transient.acquisition pll ~freq_offset:0.0 ~periods:10 () in
  (match Transient.lock_time r ~tol:(period /. 100.0) with
  | Some t -> check_close "always locked" 0.0 t
  | None -> Alcotest.fail "trivially locked");
  (* impossible tolerance: never locked *)
  let r2 = Transient.acquisition pll ~freq_offset:300e3 ~periods:4 () in
  check_true "not locked under tight tol within 4 periods"
    (Option.is_none (Transient.lock_time r2 ~tol:1e-18))

let suite =
  [
    case "quiet lock stays quiet" test_quiet_lock_is_quiet;
    case "sampling grid" test_sample_grid;
    case "one pulse pair per period" test_pulses_once_per_period;
    slow_case "phase step settles" test_step_response_settles;
    slow_case "overshoot matches discrete model" test_step_overshoot_matches_zmodel;
    slow_case "acquisition locks" test_acquisition_locks;
    slow_case "acquisition pulse narrowing" test_acquisition_pulses_shrink;
    slow_case "unstable design diverges" test_unstable_design_diverges;
    case "stimulus constructors" test_sine_modulation_construction;
    case "lock-time reporting" test_lock_time_reports;
  ]
