(* oracle-only: the all-dense evaluator is the reference oracle; plans
   and checked kernels are the production path. *)

let bad ctx t s = Htm_core.Htm.to_matrix_dense ctx t s

(* allowed: an explicitly sanctioned dense evaluation *)
let allowed ctx t s =
  (Htm_core.Htm.to_matrix_dense ctx t s [@lint.allow "oracle-only"])
