(* ignored-result: a result from a *_checked API may not be dropped —
   its Error carries the degradation the caller must decide about. *)

open Numeric

let bad_ignore a ws = ignore (Cmatf.lu_decompose_checked ~context:"fx" a ws)

let bad_wildcard a ws =
  let _ = Cmatf.lu_decompose_checked ~context:"fx" a ws in
  ()

let bad_wildcard_named a ws b =
  let _dropped = Cmatf.lu_solve_checked a ws b ~context:"fx" in
  ()

(* allowed: a probe that only cares about the side effect *)
let allowed a ws =
  ignore
    (Cmatf.lu_decompose_checked ~context:"fx" a ws
    [@lint.allow "ignored-result"])

(* clean: the result is actually consulted *)
let clean a ws =
  match Cmatf.lu_decompose_checked ~context:"fx" a ws with
  | Ok _ -> true
  | Error _ -> false
