(* hot-alloc: [@lint.hot] marks a kernel; heap allocation inside it is
   a finding. clean_kernel pins the exemptions: eliminate_ref'd local
   accumulators, literal tuple scrutinees, raise arguments and the
   tail-position result never flag. *)

let[@lint.hot] bad_kernel dst src =
  let tmp = Array.copy src in
  Array.blit tmp 0 dst 0 (Array.length tmp);
  let f = fun i -> float_of_int i in
  ignore f

let[@lint.hot] clean_kernel a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. a.(i)
  done;
  (match (Array.length a, Array.length b) with
  | 0, 0 -> invalid_arg ("clean_kernel: " ^ "empty")
  | _ -> ());
  !acc

(* allowed: a sanctioned per-call scratch allocation *)
let[@lint.hot] allowed_kernel n =
  let[@lint.allow "hot-alloc"] scratch = Array.make n 0.0 in
  Array.fill scratch 0 n 1.0;
  scratch.(0)
