(* Typed float-eq: every comparison here is invisible to the syntactic
   tier — the float flows through an alias, a record, or Cx.t. *)

type gain = float

let bad_alias (a : gain) (b : gain) = a = b

type knob = { label : string; value : float }

let bad_contains (a : knob) (b : knob) = a <> b

let bad_complex (a : Numeric.Cx.t) (b : Numeric.Cx.t) = compare a b = 0

(* near-miss: an int alias must stay clean *)
type count = int

let clean_alias (a : count) (b : count) = a = b

(* allowed: comparing against an exactly-representable sentinel *)
let allowed_alias (a : gain) (b : gain) = (a = b) [@lint.allow "float-eq"]
