(* lane-escape: a grid_local lane workspace is owned by one task at a
   time; storing it, returning it or capturing it leaks state across
   tasks. *)

let leak = ref [||]

let bad_store points =
  Parallel.Sweep.grid_local
    ~local:(fun () -> Array.make 4 0.0)
    (fun lane x ->
      leak := lane;
      lane.(0) <- x;
      lane.(0))
    points

let bad_return points =
  Parallel.Sweep.grid_local
    ~local:(fun () -> Array.make 4 0.0)
    (fun lane x ->
      lane.(0) <- x;
      lane)
    points

(* allowed: deliberately published lane state (a probe) *)
let allowed_probe points =
  Parallel.Sweep.grid_local
    ~local:(fun () -> Array.make 4 0.0)
    (fun lane x ->
      (leak := lane) [@lint.allow "lane-escape"];
      lane.(0) <- x;
      lane.(0))
    points

(* clean: the result is copied out of the lane, which never escapes *)
let clean points =
  Parallel.Sweep.grid_local
    ~local:(fun () -> Array.make 4 0.0)
    (fun lane x ->
      lane.(0) <- (x *. 2.0);
      lane.(0))
    points
