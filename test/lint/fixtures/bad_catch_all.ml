[@@@lint.allow "mli-coverage"]

(* Seeded catch-all handler violations (rule applies under --lib-prefix). *)

let wildcard f x = try f x with _ -> 0
let unused_binder f x = try f x with e -> 0
let match_exception f x = match f x with y -> y | exception _ -> 0

(* Handlers that discriminate or re-raise must stay silent. *)
let specific f x = try f x with Not_found -> 0
let reraise f x = try f x with e -> raise e
let inspects f x = try f x with e -> String.length (Printexc.to_string e)
let guarded f x = try f x with e when x > 0 -> 0
let payload f x = try f x with Failure _ -> 0

(* Annotated escape hatch must stay silent. *)
let allowed f x = (try f x with _ -> 0) [@lint.allow "catch-all"]
