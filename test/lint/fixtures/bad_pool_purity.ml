[@@@lint.allow "mli-coverage"]

(* Seeded pool-purity violations: mutable state captured by closures
   handed to Parallel.Pool / Parallel.Sweep. *)

let total = ref 0.0
let hits = Hashtbl.create 16
let trace = Buffer.create 64

type acc = { mutable best : float }

let racy_sum pool xs =
  Parallel.Sweep.grid ~pool
    (fun x ->
      total := !total +. x;
      Hashtbl.replace hits x ();
      Buffer.add_char trace '.';
      x *. 2.0)
    xs

let racy_writes pool shared (r : acc) xs =
  Pool.mapi pool
    (fun i x ->
      if x > r.best then r.best <- x;
      shared.(i) <- x;
      x)
    xs

(* Task-local mutation is fine: everything below is bound inside the
   closure, so no finding. *)
let clean pool xs =
  Parallel.Sweep.grid ~pool
    (fun x ->
      let local = ref 0.0 in
      let scratch = Array.make 4 0.0 in
      let tbl = Hashtbl.create 4 in
      local := x *. 3.0;
      scratch.(0) <- !local;
      Hashtbl.replace tbl 0 x;
      scratch.(0))
    xs
