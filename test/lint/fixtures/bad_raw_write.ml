[@@@lint.allow "mli-coverage"]

(* Seeded raw-result-write violations: result artifacts written without
   Runner.Atomic_file. *)

let bad_json () = open_out "BENCH_demo.json"
let bad_bin () = open_out_bin "results/run.json"

let bad_golden () =
  Out_channel.with_open_bin "test/golden/fig_metrics.txt" (fun _ -> ())

let bad_qualified () = Stdlib.open_out "sweep.json"

(* Suppressed at the site: must stay silent in both golden runs. *)
let allowed () =
  (open_out "BENCH_allowed.json" [@lint.allow "raw-result-write"])

(* Near-misses that must stay silent: non-artifact literal, computed
   path, and a read of an artifact. *)
let ok_log () = open_out "run.log"
let ok_var path = open_out_bin path
let ok_read () = open_in "BENCH_demo.json"
