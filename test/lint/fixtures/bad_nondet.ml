[@@@lint.allow "mli-coverage"]

(* Seeded nondeterminism violations (rule applies under --lib-prefix). *)

let seed () = Random.self_init ()
let wall () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let bucket x = Hashtbl.hash x

(* Annotated escape hatch must stay silent. *)
let timed () = (Sys.time () [@lint.allow "nondeterminism"])
