[@@@lint.allow "mli-coverage"]

(* Seeded error-message-prefix violations. *)

let no_prefix x = if x < 0 then invalid_arg "negative input" else x
let no_function x = if x > 9 then failwith "Prefix: missing function" else x

let dynamic_suffix x =
  if x > 99 then invalid_arg ("too big: " ^ string_of_int x) else x

let sprintf_form x =
  if x < -99 then failwith (Printf.sprintf "too small: %d" x) else x

(* Compliant messages must stay silent. *)
let ok x = if x = 1 then invalid_arg "Bad_prefix.ok: x must not be 1" else x

let ok_dynamic x =
  if x = 2 then failwith ("Bad_prefix.ok_dynamic: bad " ^ string_of_int x)
  else x
