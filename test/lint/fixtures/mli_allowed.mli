[@@@lint.allow "float-eq"]

(* exact-sentinel comparisons are this module's contract; the allow in
   the interface covers the whole implementation *)

val check : float -> float -> bool
