(* The companion .mli carries [@@@lint.allow "float-eq"]; the visible
   float comparison below must be suppressed by it. *)

let check a b = a +. 0.0 = b
