(* A fully compliant module: the linter must stay silent here. *)

let scale = 2.0
let double x = x *. scale

let checked x =
  if Float.compare x 0.0 <= 0 then
    invalid_arg "Clean.checked: x must be positive"
  else x

let offsets pool xs = Parallel.Sweep.grid ~pool (fun x -> x +. 1.0) xs
