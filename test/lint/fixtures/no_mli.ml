(* Deliberately missing its .mli: mli-coverage must report this file. *)

let answer = 42
