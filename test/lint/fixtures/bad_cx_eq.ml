[@@@lint.allow "mli-coverage"]

(* Seeded float-eq violations on Cx.t-shaped operands: each comparison
   below must be reported. *)

let against_zero z = z = Cx.zero
let sparsity_skip z = Cx.mul z z <> Cx.one
let ordered z w = compare (Cx.add z w) Cx.zero
let unit_check z = Cx.conj z = z

(* Near-misses that must stay silent. *)
let ok_is_zero z = Cx.is_zero z
let ok_approx z = Cx.approx z Cx.zero
let ok_modulus z = Float.equal (Cx.abs z) 0.0
let ok_parts z = Float.compare (Cx.re z) (Cx.im z)
let ok_annotated z = ((z = Cx.zero) [@lint.allow "float-eq"])
