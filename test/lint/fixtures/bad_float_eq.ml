[@@@lint.allow "mli-coverage"]

(* Seeded float-eq violations: each comparison below must be reported. *)

let is_zero x = x = 0.0
let drifted x y = (x *. y) +. 1e-9 <> 1.0
let rank x = compare x infinity
let against_pi x = x = Float.pi

(* Near-misses that must stay silent. *)
let ok_equal x = Float.equal x 0.0
let ok_compare x = Float.compare x 0.0 > 0
let ok_int n = n = 0
let ok_string s = s = "zero"
let ok_ordering x = x < 0.0
(* note the extra parens: [@...] binds tighter than infix operators *)
let ok_annotated x = ((x = 0.0) [@lint.allow "float-eq"])
