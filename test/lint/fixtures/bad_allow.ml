(* bad-allow: an allow naming a rule the linter does not know is dead
   weight that silently stops guarding — it is itself a finding. *)

let f x = (x + 1) [@lint.allow "no-such-rule"]

(* a valid rule name passes validation (and suppresses nothing here) *)
let g x = (x + 2) [@lint.allow "float-eq"]
