val scale : float
val double : float -> float
val checked : float -> float
val offsets : pool:Parallel.Pool.t -> float array -> float array
