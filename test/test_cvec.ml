open Numeric
open Helpers

let v123 = Cvec.of_real_array [| 1.0; 2.0; 3.0 |]

let test_construction () =
  check_int "dim" 3 (Cvec.dim v123);
  check_cx "get" (Cx.of_float 2.0) (Cvec.get v123 1);
  check_cx "ones" Cx.one (Cvec.get (Cvec.ones 4) 3);
  check_cx "zeros" Cx.zero (Cvec.get (Cvec.zeros 4) 0);
  check_cx "basis hit" Cx.one (Cvec.get (Cvec.basis 3 1) 1);
  check_cx "basis miss" Cx.zero (Cvec.get (Cvec.basis 3 1) 2);
  let v = Cvec.init 3 (fun i -> Cx.of_float (float_of_int (i * i))) in
  check_cx "init" (Cx.of_float 4.0) (Cvec.get v 2)

let test_mutation_isolated () =
  let a = [| Cx.one; Cx.one |] in
  let v = Cvec.of_array a in
  a.(0) <- Cx.zero;
  check_cx "of_array copies" Cx.one (Cvec.get v 0);
  let b = Cvec.to_array v in
  b.(1) <- Cx.zero;
  check_cx "to_array copies" Cx.one (Cvec.get v 1)

let test_algebra () =
  let w = Cvec.of_real_array [| 10.0; 20.0; 30.0 |] in
  check_cx "add" (Cx.of_float 22.0) (Cvec.get (Cvec.add v123 w) 1);
  check_cx "sub" (Cx.of_float 18.0) (Cvec.get (Cvec.sub w v123) 1);
  check_cx "scale" (Cx.of_float 6.0) (Cvec.get (Cvec.scale (Cx.of_float 2.0) v123) 2);
  check_cx "neg" (Cx.of_float (-3.0)) (Cvec.get (Cvec.neg v123) 2);
  check_cx "map" (Cx.of_float 9.0) (Cvec.get (Cvec.map (fun z -> Cx.mul z z) v123) 2);
  check_cx "mapi" (Cx.of_float 6.0)
    (Cvec.get (Cvec.mapi (fun i z -> Cx.scale (float_of_int i) z) v123) 2)

let test_products () =
  check_cx "dot" (Cx.of_float 140.0)
    (Cvec.dot v123 (Cvec.of_real_array [| 10.0; 20.0; 30.0 |]));
  (* sesquilinear vs bilinear differ for complex entries *)
  let u = Cvec.of_array [| Cx.j |] and w = Cvec.of_array [| Cx.j |] in
  check_cx "dot (bilinear) j*j" (Cx.neg Cx.one) (Cvec.dot u w);
  check_cx "dot_herm conj(j)*j" Cx.one (Cvec.dot_herm u w);
  check_cx "sum" (Cx.of_float 6.0) (Cvec.sum v123);
  check_close "norm2" (sqrt 14.0) (Cvec.norm2 v123);
  check_close "norm_inf" 3.0 (Cvec.norm_inf v123)

let test_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Cvec.lift2: dimension mismatch") (fun () ->
      ignore (Cvec.add v123 (Cvec.zeros 2)))

let prop_dot_linear =
  qcheck "dot linear in first argument"
    (QCheck2.Gen.triple gen_cx gen_cx gen_cx) (fun (a, b, c) ->
      let u = Cvec.of_array [| a; b |] in
      let v = Cvec.of_array [| c; Cx.one |] in
      let w = Cvec.of_array [| Cx.j; c |] in
      Cx.approx ~tol:1e-8
        (Cvec.dot (Cvec.add u w) v)
        (Cx.add (Cvec.dot u v) (Cvec.dot w v)))

let prop_norm_triangle =
  qcheck "triangle inequality" (QCheck2.Gen.pair gen_cx gen_cx) (fun (a, b) ->
      let u = Cvec.of_array [| a; b |] and w = Cvec.of_array [| b; a |] in
      Cvec.norm2 (Cvec.add u w) <= Cvec.norm2 u +. Cvec.norm2 w +. 1e-9)

let prop_sum_is_dot_ones =
  qcheck "sum = dot with ones" (QCheck2.Gen.list_size (QCheck2.Gen.return 5) gen_cx)
    (fun zs ->
      let v = Cvec.of_array (Array.of_list zs) in
      Cx.approx (Cvec.sum v) (Cvec.dot v (Cvec.ones 5)))

let suite =
  [
    case "construction" test_construction;
    case "copies are isolated" test_mutation_isolated;
    case "algebra" test_algebra;
    case "products and norms" test_products;
    case "dimension mismatch" test_dim_mismatch;
    prop_dot_linear;
    prop_norm_triangle;
    prop_sum_is_dot_ones;
  ]
