open Numeric
open Helpers
module Netlist = Circuit.Netlist
module Mna = Circuit.Mna
module Tf = Lti.Tf

let check_tf_matches_direct ?(tol = 1e-9) netlist ~inject ~sense tf =
  List.iter
    (fun w ->
      let s = Cx.jomega w in
      let direct = Cvec.get (Mna.solve_at netlist ~inject s) (sense - 1) in
      check_cx ~tol "rational vs direct LU solve" direct (Tf.eval tf s))
    [ 1e2; 1e4; 1e6; 1e8 ]

let test_single_resistor () =
  (* R to ground: Z = R at all frequencies *)
  let n = Netlist.create [ Netlist.r 1 0 470.0 ] in
  let z = Mna.impedance n ~port:1 in
  check_cx "Z = R" (Cx.of_float 470.0) (Tf.eval z (Cx.jomega 1e5));
  check_cx "Z = R at dc" (Cx.of_float 470.0) (Tf.eval z Cx.zero)

let test_single_capacitor () =
  (* C to ground: Z = 1/sC *)
  let n = Netlist.create [ Netlist.c 1 0 1e-9 ] in
  let z = Mna.impedance n ~port:1 in
  let s = Cx.jomega 1e6 in
  check_cx ~tol:1e-12 "Z = 1/sC" (Cx.inv (Cx.scale 1e-9 s)) (Tf.eval z s);
  (match Tf.poles z with
  | [ p ] -> check_cx "pole at origin" Cx.zero p
  | _ -> Alcotest.fail "one pole expected")

let test_series_rl () =
  (* R in series with L to ground: Z = R + sL (needs the inductor
     branch-current unknown) *)
  let n = Netlist.create [ Netlist.r 1 2 100.0; Netlist.l 2 0 1e-3 ] in
  let z = Mna.impedance n ~port:1 in
  let s = Cx.jomega 1e5 in
  check_cx ~tol:1e-10 "Z = R + sL"
    (Cx.add (Cx.of_float 100.0) (Cx.scale 1e-3 s))
    (Tf.eval z s)

let test_rlc_resonator () =
  (* parallel RLC: resonance at 1/sqrt(LC), impedance peaks to R there *)
  let lv = 1e-6 and cv = 1e-9 and rv = 1e3 in
  let n =
    Netlist.create [ Netlist.r 1 0 rv; Netlist.l 1 0 lv; Netlist.c 1 0 cv ]
  in
  let z = Mna.impedance n ~port:1 in
  let w0 = 1.0 /. sqrt (lv *. cv) in
  check_cx ~tol:1e-7 "resonance impedance = R" (Cx.of_float rv)
    (Tf.eval z (Cx.jomega w0));
  (* far below resonance the inductor dominates: |Z| ~ wL *)
  let w_low = w0 /. 1000.0 in
  check_close ~tol:1e-2 "inductive below resonance" (w_low *. lv)
    (Cx.abs (Tf.eval z (Cx.jomega w_low)));
  check_tf_matches_direct n ~inject:1 ~sense:1 z

let test_second_order_filter_matches_formula () =
  (* the paper's loop filter: netlist-extracted impedance must equal the
     hand-derived rational to machine precision *)
  let rv = 55810.0 and c1 = 3.618e-11 and c2 = 3.993e-12 in
  let n = Netlist.second_order_cp_filter ~r:rv ~c1 ~c2 in
  let z_mna = Mna.impedance n ~port:1 in
  let filt =
    Pll_lib.Loop_filter.make
      (Pll_lib.Loop_filter.Second_order { r = rv; c1; c2 })
      ~icp:1e-4
  in
  let z_ref = Pll_lib.Loop_filter.impedance filt in
  List.iter
    (fun w ->
      let s = Cx.jomega w in
      check_cx ~tol:1e-12 "netlist = formula" (Tf.eval z_ref s) (Tf.eval z_mna s))
    [ 1e3; 1e5; 1e6; 1e7; 1e9 ]

let test_third_order_transimpedance () =
  let n =
    Netlist.third_order_cp_filter ~r:55810.0 ~c1:3.618e-11 ~c2:3.993e-12
      ~r3:1000.0 ~c3:1e-11
  in
  let z = Mna.transimpedance n ~inject:1 ~sense:3 in
  check_int "three poles" 3 (List.length (Tf.poles z));
  check_tf_matches_direct n ~inject:1 ~sense:3 z

let test_voltage_divider () =
  (* R-R divider driven by an ideal source: flat 1/2 *)
  let n = Netlist.create [ Netlist.r 1 2 1000.0; Netlist.r 2 0 1000.0 ] in
  let h = Mna.voltage_transfer n ~from_node:1 ~to_node:2 in
  check_cx ~tol:1e-12 "half" (Cx.of_float 0.5) (Tf.eval h (Cx.jomega 1e4));
  (* RC lowpass divider: pole at 1/RC *)
  let n2 = Netlist.create [ Netlist.r 1 2 1000.0; Netlist.c 2 0 1e-9 ] in
  let h2 = Mna.voltage_transfer n2 ~from_node:1 ~to_node:2 in
  let wc = 1.0 /. (1000.0 *. 1e-9) in
  check_close ~tol:1e-9 "corner magnitude" (1.0 /. sqrt 2.0)
    (Cx.abs (Tf.eval h2 (Cx.jomega wc)))

let test_vcvs_buffer () =
  (* lowpass into a x2 VCVS buffer into a heavy load: the load must not
     affect the filter because the source isolates it *)
  let n =
    Netlist.create
      [
        Netlist.r 1 2 1000.0;
        Netlist.c 2 0 1e-9;
        Netlist.Vcvs { out_pos = 3; out_neg = 0; in_pos = 2; in_neg = 0; gain = 2.0 };
        Netlist.r 3 0 10.0;
      ]
  in
  let h = Mna.voltage_transfer n ~from_node:1 ~to_node:3 in
  check_close ~tol:1e-9 "buffered gain at dc" 2.0 (Cx.abs (Tf.eval h Cx.zero));
  let wc = 1.0 /. (1000.0 *. 1e-9) in
  check_close ~tol:1e-9 "corner follows the filter" (2.0 /. sqrt 2.0)
    (Cx.abs (Tf.eval h (Cx.jomega wc)))

let test_singular_network () =
  (* a node connected only through a capacitor chain with no dc path is
     fine (pole at 0), but a completely floating port is singular *)
  let n = Netlist.create [ Netlist.r 2 0 100.0 ] in
  Alcotest.check_raises "floating port"
    (Mna.Singular_network "singular MNA pencil (floating node or source loop?)")
    (fun () -> ignore (Mna.impedance n ~port:1))

let test_validation () =
  Alcotest.check_raises "negative R"
    (Invalid_argument "Netlist.validate: resistance must be positive") (fun () ->
      ignore (Netlist.create [ Netlist.r 1 0 (-1.0) ]));
  Alcotest.check_raises "bad node"
    (Invalid_argument "Netlist.validate: negative node") (fun () ->
      ignore (Netlist.create [ Netlist.r (-1) 0 1.0 ]))

let test_loop_filter_of_netlist () =
  (* end-to-end: netlist-defined filter drives the PLL analysis and
     reproduces the canonical design's margins *)
  let spec = spec_default in
  let base = pll_of spec in
  let rv, c1, c2 =
    match base.Pll_lib.Pll.filter.Pll_lib.Loop_filter.topology with
    | Pll_lib.Loop_filter.Second_order { r; c1; c2 } -> (r, c1, c2)
    | _ -> Alcotest.fail "expected second-order reference"
  in
  let filt =
    Pll_lib.Loop_filter.of_netlist
      (Netlist.second_order_cp_filter ~r:rv ~c1 ~c2)
      ~icp:spec.Pll_lib.Design.icp ()
  in
  let p =
    Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
      ~n_div:spec.Pll_lib.Design.n_div ~filter:filt ~vco:base.Pll_lib.Pll.vco ()
  in
  let r_ref = Pll_lib.Analysis.effective_report base in
  let r_net = Pll_lib.Analysis.effective_report p in
  match
    (r_ref.Pll_lib.Analysis.phase_margin_deg, r_net.Pll_lib.Analysis.phase_margin_deg)
  with
  | Some a, Some b -> check_close ~tol:1e-6 "same effective margin" a b
  | _ -> Alcotest.fail "margins expected"

let test_active_filter_in_pll () =
  (* an actively buffered loop filter: the passive core drives a unity
     VCVS whose output feeds the VCO; the buffer isolates the core from
     the (here explicit) VCO input load, so the loop behaves exactly
     like the unbuffered reference design *)
  let spec = spec_default in
  let base = pll_of spec in
  let rv, c1, c2 =
    match base.Pll_lib.Pll.filter.Pll_lib.Loop_filter.topology with
    | Pll_lib.Loop_filter.Second_order { r; c1; c2 } -> (r, c1, c2)
    | _ -> Alcotest.fail "expected second-order reference"
  in
  let buffered =
    Netlist.create
      [
        Netlist.r 1 2 rv;
        Netlist.c 2 0 c1;
        Netlist.c 1 0 c2;
        Netlist.Vcvs { out_pos = 3; out_neg = 0; in_pos = 1; in_neg = 0; gain = 1.0 };
        Netlist.r 3 0 1.0 (* heavy load the buffer must isolate *);
      ]
  in
  let filt =
    Pll_lib.Loop_filter.of_netlist buffered ~icp:spec.Pll_lib.Design.icp ~sense:3 ()
  in
  let p =
    Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
      ~n_div:spec.Pll_lib.Design.n_div ~filter:filt ~vco:base.Pll_lib.Pll.vco ()
  in
  (* identical loop: same effective margin and same H00 *)
  (match
     ( (Pll_lib.Analysis.effective_report base).Pll_lib.Analysis.phase_margin_deg,
       (Pll_lib.Analysis.effective_report p).Pll_lib.Analysis.phase_margin_deg )
   with
  | Some a, Some b -> check_close ~tol:1e-6 "buffered = passive margin" a b
  | _ -> Alcotest.fail "margins expected");
  let w = 0.2 *. Pll_lib.Pll.omega0 p in
  check_cx ~tol:1e-9 "same closed loop"
    (Pll_lib.Pll.h00 base (Cx.jomega w))
    (Pll_lib.Pll.h00 p (Cx.jomega w))

let test_characteristic_freq () =
  let n = Netlist.create [ Netlist.r 1 0 1000.0; Netlist.c 1 0 1e-9 ] in
  (* single RC: the scale is exactly 1/RC *)
  check_close ~tol:1e-9 "1/RC" 1e6 (Mna.characteristic_freq n);
  check_close "no reactive parts" 1.0
    (Mna.characteristic_freq (Netlist.create [ Netlist.r 1 0 10.0 ]))

let prop_ladder_matches_direct =
  qcheck ~count:25 "random RC ladder: rational matches direct solve"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4)
       (QCheck2.Gen.pair (QCheck2.Gen.float_range 100.0 1e5)
          (QCheck2.Gen.float_range 1e-12 1e-8))) (fun sections ->
      let elements =
        List.concat
          (List.mapi
             (fun i (rv, cv) ->
               [ Netlist.r (i + 1) (i + 2) rv; Netlist.c (i + 2) 0 cv ])
             sections)
      in
      (* ensure a dc path so the network is well-posed at s=0 too *)
      let n = Netlist.create (Netlist.r 1 0 1e4 :: elements) in
      let z = Mna.impedance n ~port:1 in
      List.for_all
        (fun w ->
          let s = Cx.jomega w in
          let direct = Cvec.get (Mna.solve_at n ~inject:1 s) 0 in
          Cx.approx ~tol:1e-7 direct (Tf.eval z s))
        [ 1e3; 1e5; 1e7 ])

let suite =
  [
    case "single resistor" test_single_resistor;
    case "single capacitor" test_single_capacitor;
    case "series RL (branch current)" test_series_rl;
    case "parallel RLC resonator" test_rlc_resonator;
    case "second-order CP filter vs formula" test_second_order_filter_matches_formula;
    case "third-order transimpedance" test_third_order_transimpedance;
    case "voltage dividers" test_voltage_divider;
    case "VCVS buffer" test_vcvs_buffer;
    case "singular network" test_singular_network;
    case "validation" test_validation;
    case "loop filter from netlist (end-to-end)" test_loop_filter_of_netlist;
    case "active (VCVS-buffered) filter in the PLL" test_active_filter_in_pll;
    case "characteristic frequency" test_characteristic_freq;
    prop_ladder_matches_direct;
  ]
