open Helpers
module Hybrid = Sim.Hybrid

(* a pure ODE model with no events: engine should just integrate *)
let test_plain_integration () =
  let model =
    {
      Hybrid.dynamics = (fun () _t y -> [| -.y.(0) |]);
      events = [];
      transition = (fun m _ _ y -> (m, y));
    }
  in
  let _, y =
    Hybrid.run model
      { Hybrid.t0 = 0.0; t1 = 1.0; dt_max = 0.01; observer = (fun _ _ _ -> ()) }
      ~mode:() ~state:[| 1.0 |]
  in
  check_close ~tol:1e-8 "exp decay" (exp (-1.0)) y.(0)

(* guarded event: integrate dy = 1 until y crosses 2, then reset to 0
   and count the crossings: a sawtooth *)
let test_guarded_sawtooth () =
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 1.0 |]);
      events =
        [ Hybrid.Guarded { tag = (); guard = (fun _ _ y -> y.(0) -. 2.0) } ];
      transition = (fun count () _t _y -> (count + 1, [| 0.0 |]));
    }
  in
  let count, y =
    Hybrid.run model
      { Hybrid.t0 = 0.0; t1 = 7.0; dt_max = 0.13; observer = (fun _ _ _ -> ()) }
      ~mode:0 ~state:[| 0.0 |]
  in
  check_int "three resets" 3 count;
  check_close ~tol:1e-6 "remainder" 1.0 y.(0)

(* event-time accuracy: y' = 1 from 0, guard at y = 0.5 exactly at t = 0.5 *)
let test_event_localization () =
  let hit = ref nan in
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 1.0 |]);
      events =
        [ Hybrid.Guarded { tag = (); guard = (fun _ _ y -> y.(0) -. 0.5) } ];
      transition =
        (fun m () t y ->
          hit := t;
          (m, [| y.(0) -. 10.0 |]));
    }
  in
  ignore
    (Hybrid.run model
       { Hybrid.t0 = 0.0; t1 = 1.0; dt_max = 0.3; observer = (fun _ _ _ -> ()) }
       ~mode:() ~state:[| 0.0 |]);
  check_close ~tol:1e-9 "event time" 0.5 !hit

(* scheduled events fire at requested times *)
let test_scheduled_events () =
  let fired = ref [] in
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 0.0 |]);
      events =
        [
          Hybrid.Scheduled
            {
              tag = ();
              next_time =
                (fun k -> if k < 4 then Some (0.25 +. (0.5 *. float_of_int k)) else None);
            };
        ];
      transition =
        (fun k () t y ->
          fired := t :: !fired;
          (k + 1, y));
    }
  in
  let k, _ =
    Hybrid.run model
      { Hybrid.t0 = 0.0; t1 = 2.0; dt_max = 0.2; observer = (fun _ _ _ -> ()) }
      ~mode:0 ~state:[| 0.0 |]
  in
  check_int "all fired" 4 k;
  let times = List.rev !fired in
  List.iteri
    (fun i t -> check_close ~tol:1e-9 "fire time" (0.25 +. (0.5 *. float_of_int i)) t)
    times

(* the observer must visit every base-grid boundary even when events
   shorten steps *)
let test_grid_alignment () =
  let samples = ref [] in
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 1.0 |]);
      events =
        [
          Hybrid.Scheduled
            { tag = (); next_time = (fun k -> if k < 3 then Some (0.33 +. float_of_int k) else None) };
        ];
      transition = (fun k () _ y -> (k + 1, y));
    }
  in
  let dt = 0.25 in
  ignore
    (Hybrid.run model
       {
         Hybrid.t0 = 0.0;
         t1 = 2.0;
         dt_max = dt;
         observer = (fun _ t _ -> samples := t :: !samples);
       }
       ~mode:0 ~state:[| 0.0 |]);
  let times = List.rev !samples in
  for k = 0 to 8 do
    let target = float_of_int k *. dt in
    check_true
      (Printf.sprintf "grid point %g visited" target)
      (List.exists (fun t -> Float.abs (t -. target) < 1e-9) times)
  done

(* state continuity across an event that does not modify the state *)
let test_state_continuity () =
  let model =
    {
      Hybrid.dynamics = (fun _ _ y -> [| y.(1); -.y.(0) |]);
      events =
        [ Hybrid.Scheduled { tag = (); next_time = (fun k -> if k = 0 then Some 1.0 else None) } ];
      transition = (fun k () _ y -> (k + 1, y));
    }
  in
  let _, y =
    Hybrid.run model
      { Hybrid.t0 = 0.0; t1 = Float.pi; dt_max = 0.01; observer = (fun _ _ _ -> ()) }
      ~mode:0 ~state:[| 1.0; 0.0 |]
  in
  check_close ~tol:1e-6 "cos(pi)" (-1.0) y.(0)

let test_event_storm_detected () =
  (* a scheduled event whose transition never advances its firing time
     must be caught, not loop forever *)
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 0.0 |]);
      events =
        [ Hybrid.Scheduled { tag = (); next_time = (fun _ -> Some 0.5) } ];
      transition = (fun m () _ y -> (m, y));
    }
  in
  Alcotest.check_raises "storm detected"
    (Failure "Hybrid.run: event storm at a single instant") (fun () ->
      ignore
        (Hybrid.run model
           { Hybrid.t0 = 0.0; t1 = 1.0; dt_max = 0.1; observer = (fun _ _ _ -> ()) }
           ~mode:() ~state:[| 0.0 |]))

let test_guard_not_refiring_after_reset () =
  (* a guard that stays nonnegative after its transition must fire only
     once (crossings are from below only) *)
  let count = ref 0 in
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 1.0 |]);
      events =
        [ Hybrid.Guarded { tag = (); guard = (fun _ _ y -> y.(0) -. 0.5) } ];
      transition =
        (fun m () _ y ->
          incr count;
          (m, y) (* state unchanged: guard stays >= 0 *));
    }
  in
  ignore
    (Hybrid.run model
       { Hybrid.t0 = 0.0; t1 = 2.0; dt_max = 0.1; observer = (fun _ _ _ -> ()) }
       ~mode:() ~state:[| 0.0 |]);
  check_int "fires once" 1 !count

let test_validation () =
  let model =
    {
      Hybrid.dynamics = (fun _ _ _ -> [| 0.0 |]);
      events = [];
      transition = (fun m _ _ y -> (m, y));
    }
  in
  Alcotest.check_raises "bad dt_max"
    (Invalid_argument "Hybrid.run: dt_max must be positive") (fun () ->
      ignore
        (Hybrid.run model
           { Hybrid.t0 = 0.0; t1 = 1.0; dt_max = 0.0; observer = (fun _ _ _ -> ()) }
           ~mode:() ~state:[| 0.0 |]))

let suite =
  [
    case "plain integration" test_plain_integration;
    case "guarded sawtooth" test_guarded_sawtooth;
    case "event localization" test_event_localization;
    case "scheduled events" test_scheduled_events;
    case "grid alignment under events" test_grid_alignment;
    case "state continuity" test_state_continuity;
    case "event storm detection" test_event_storm_detected;
    case "guard fires on upward crossings only" test_guard_not_refiring_after_reset;
    case "validation" test_validation;
  ]
