(** Sweep-farm coordinator: shard a grid across worker subprocesses,
    steal work from ragged shards, and merge per-shard checkpoint
    journals into one canonical base journal.

    The coordinator computes nothing itself. It replays prior journals
    (on resume) to find completed points, partitions the missing indices
    into [shards] contiguous regions balanced by count, spawns the
    workers with pipes on their stdin/stdout, and feeds each one slices
    carved from the front of its own region — then, with stealing on,
    from the back of the largest remaining region. A worker that dies
    (EOF without an Exit frame) has its outstanding range re-queued for
    the survivors; everything it journaled before death is kept. At the
    end {!Runner.Journal.merge} collapses base + shard journals to the
    canonical sorted, deduplicated form.

    {b Bit-identity:} with a deterministic task and bit-exact encoding,
    every frame ever written for an index holds identical bytes, so
    first-wins dedup plus index sort make the merged journal — and the
    payload array decoded from it — a pure function of (task, grid):
    byte-equal across shard counts, stealing decisions, worker kills and
    resumes. *)

type config = {
  shards : int;  (** number of worker subprocesses, >= 1 *)
  steal : bool;  (** allow ragged shards to be rebalanced *)
  resume : bool;  (** replay base + shard journals before sharding *)
  checkpoint : string;  (** base journal path; shards use [.shardK] *)
  blob : string;  (** opaque workload, resolved by the worker *)
  worker_argv : int -> string array;  (** argv for shard [k]'s process *)
  slice : int option;
      (** points per Assign; default [max 1 (missing / (shards*16))] *)
  chunk : int option;  (** forwarded to the worker's in-process pool *)
  retries : int option;  (** forwarded in-lane retry count *)
  task_timeout : float option;  (** forwarded per-task watchdog *)
  progress : bool;  (** live progress line when stderr is a TTY *)
}

type report = {
  payloads : string option array;
      (** encoded point values from the merged journal; [None] = failed *)
  failures : (int * Robust.Pllscope_error.t) list;
      (** ascending; typed where a worker reported one, synthesized
          [Worker_failure] (death) or [Cancelled] otherwise *)
  total : int;
  resumed : int;  (** points restored from prior journals *)
  steals : int;  (** ranges carved from another shard's region *)
  worker_deaths : int;  (** EOFs without an Exit frame *)
  assign_waits : int;  (** worker idle waits (from Exit frames) *)
  assign_wait_seconds : float;  (** total worker idle time *)
  merged_frames : int;  (** distinct frames in the merged journal *)
}

(** [shard_path base k] — shard [k]'s private journal path,
    [base ^ ".shard" ^ k]. *)
val shard_path : string -> int -> string

(** [existing_shards base] — every shard journal currently on disk for
    [base], sorted by name, whatever shard count wrote them. *)
val existing_shards : string -> string list

(** [run cfg ~n] — execute the farm over grid indices [0..n-1] and
    return the merged result. Blocks until every worker has exited or
    died; honours {!Parallel.Cancel.global} (stops handing out work,
    lets in-flight ranges finish, marks the rest [Cancelled]). Worker
    [Robust.Stats] are absorbed into this process's counters. Raises
    [Invalid_argument] on [shards < 1], negative [n], an empty
    checkpoint path, or [slice < 1]. *)
val run : config -> n:int -> report
