(* Coordinator <-> worker wire protocol for the sweep farm.

   Messages travel over pipes as Journal CRC-32 frames: the frame's
   index field carries the message tag, the payload is a [Marshal] of a
   plain record (no closures, no custom blocks), so both sides validate
   integrity with the same codec the checkpoint journals use and a
   worker that dies mid-message reads as a clean EOF on the
   coordinator's side.

   Conversation:

     coordinator                      worker
         | -- Hello {shard; blob; ...} ->|      (once, at spawn)
         |<------------ Ready ----------- |
         | ------ Assign {lo; hi} ------->|
         |<------ Done {lo; hi; failed} --|      (doubles as a pull)
         | ------ Assign {lo; hi} ------->|      (own range or stolen)
         |            ...                 |
         | ------------ Fin ------------->|      (no work left)
         |<------ Exit {stats; ...} ------|
         |            EOF                 |

   Ranges are half-open [lo, hi) in global grid indices. A worker that
   has sent Done and received nothing is parked ("hungry") by the
   coordinator until a range frees up (work stealing) or Fin. *)

type hello = {
  shard : int;  (* this worker's shard number, 0-based *)
  journal : string;  (* its private checkpoint journal path *)
  blob : string;  (* workload description, resolved by the worker *)
  chunk : int option;
  retries : int option;
  task_timeout : float option;
}

type range = { lo : int; hi : int }

type done_ = {
  d_lo : int;
  d_hi : int;
  failed : (int * Robust.Pllscope_error.t) list;
      (* global indices + typed errors; payloads already remapped *)
}

type exit_ = {
  stats : Robust.Stats.t;
  waits : int;  (* Assign round-trips that found the worker idle *)
  wait_seconds : float;  (* total time spent idle waiting for Assign *)
}

type msg =
  | Hello of hello
  | Ready
  | Assign of range
  | Done of done_
  | Fin
  | Exit of exit_

let tag_hello = 1
let tag_ready = 2
let tag_assign = 3
let tag_done = 4
let tag_fin = 5
let tag_exit = 6

let marshal v = Marshal.to_string v []

let unmarshal (s : string) : 'a =
  if String.length s < Marshal.header_size then
    Robust.Pllscope_error.raise_
      (Robust.Pllscope_error.Parse
         {
           file = "<pipe>";
           line = 0;
           col = 0;
           msg = "Protocol.unmarshal: short payload";
         });
  Marshal.from_string s 0

let send fd msg =
  let tag, payload =
    match msg with
    | Hello h -> (tag_hello, marshal h)
    | Ready -> (tag_ready, "")
    | Assign r -> (tag_assign, marshal r)
    | Done d -> (tag_done, marshal d)
    | Fin -> (tag_fin, "")
    | Exit e -> (tag_exit, marshal e)
  in
  Runner.Journal.Frame.write fd ~tag payload

let recv fd =
  match Runner.Journal.Frame.read fd with
  | None -> None
  | Some (tag, payload) ->
      let msg =
        if tag = tag_hello then Hello (unmarshal payload : hello)
        else if tag = tag_ready then Ready
        else if tag = tag_assign then Assign (unmarshal payload : range)
        else if tag = tag_done then Done (unmarshal payload : done_)
        else if tag = tag_fin then Fin
        else if tag = tag_exit then Exit (unmarshal payload : exit_)
        else
          Robust.Pllscope_error.raise_
            (Robust.Pllscope_error.Parse
               {
                 file = "<pipe>";
                 line = 0;
                 col = 0;
                 msg = "Protocol.recv: unknown message tag " ^ string_of_int tag;
               })
      in
      Some msg

let msg_name = function
  | Hello _ -> "hello"
  | Ready -> "ready"
  | Assign _ -> "assign"
  | Done _ -> "done"
  | Fin -> "fin"
  | Exit _ -> "exit"
