(* Farm worker: the subprocess side of the protocol.

   A worker is a `pllscope farm-worker` (or test/bench twin) whose
   stdin/stdout are the coordinator's pipes. It reads one Hello, builds
   its task from the workload blob, then serves Assign ranges until Fin
   or EOF. Each computed point is appended to the worker's private
   checkpoint journal *before* the range is acknowledged, so a worker
   killed mid-range loses at most in-flight points — everything
   journaled survives into the merge.

   Determinism: a range [lo, hi) is executed as a checked sweep over the
   global indices lo..hi-1 with the same in-lane retry and timeout
   configuration a single-process run uses, and the payload written per
   point is the task's own encoding — byte-equal to what Run.grid would
   journal for the same index. Failure reports are remapped to global
   task numbers so the coordinator's partial summary matches the
   single-process one. *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

(* Remap a typed error whose task field is a range-local index to the
   global grid index. *)
let globalize_error ~lo (err : Robust.Pllscope_error.t) =
  match err with
  | Worker_failure w -> Robust.Pllscope_error.Worker_failure { w with task = lo + w.task }
  | Timed_out t -> Robust.Pllscope_error.Timed_out { t with task = lo + t.task }
  | Singular _ | Non_convergence _ | Non_finite _ | Parse _ | Cancelled _
  | Overloaded _ | Io_timeout _ | Budget_exhausted _ | Circuit_open _ ->
      err

let run_range ?chunk ?retries ?task_timeout journal task { Protocol.lo; hi } =
  let indices = Array.init (hi - lo) (fun k -> lo + k) in
  let task_and_log i =
    let payload = task i in
    Runner.Journal.append journal ~index:i payload;
    payload
  in
  let partial =
    Parallel.Sweep.grid_checked ?chunk ?retries ?task_timeout task_and_log
      indices
  in
  Runner.Journal.sync journal;
  let failed =
    List.map
      (fun (local, err) -> (lo + local, globalize_error ~lo err))
      partial.Parallel.Sweep.failures
  in
  { Protocol.d_lo = lo; d_hi = hi; failed }

let serve ?chunk ?retries ?task_timeout ~resolve () =
  (* Keep the protocol stream private: dup the inherited stdout for
     framing, then point fd 1 at stderr so any stray print from the
     workload lands in the log instead of corrupting a frame. *)
  let in_fd = Unix.stdin in
  let out_fd = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  Runner.Shutdown.ignore_sigpipe ();
  match Protocol.recv in_fd with
  | None -> ()
  | Some (Protocol.Hello hello) ->
      let chunk = match hello.chunk with Some _ as c -> c | None -> chunk in
      let retries =
        match hello.retries with Some _ as r -> r | None -> retries
      in
      let task_timeout =
        match hello.task_timeout with
        | Some _ as t -> t
        | None -> task_timeout
      in
      let task = resolve hello.shard hello.blob in
      Robust.Stats.reset ();
      let journal = Runner.Journal.open_append hello.journal in
      let waits = ref 0 in
      let wait_seconds = ref 0. in
      let quit = ref false in
      Fun.protect
        ~finally:(fun () -> Runner.Journal.close journal)
        (fun () ->
          (try
             Protocol.send out_fd Protocol.Ready;
             while not !quit do
               let idle_from = now () in
               match Protocol.recv in_fd with
               | Some (Protocol.Assign range) ->
                   let waited = now () -. idle_from in
                   if waited > 0. then wait_seconds := !wait_seconds +. waited;
                   incr waits;
                   let d =
                     run_range ?chunk ?retries ?task_timeout journal task range
                   in
                   Protocol.send out_fd (Protocol.Done d)
               | Some Protocol.Fin ->
                   Protocol.send out_fd
                     (Protocol.Exit
                        {
                          stats = Robust.Stats.snapshot ();
                          waits = !waits;
                          wait_seconds = !wait_seconds;
                        });
                   quit := true
               | Some (Protocol.Hello _ | Protocol.Ready | Protocol.Done _
                      | Protocol.Exit _) ->
                   (* protocol violation from the coordinator; nothing
                      sane to do but stop — the journal is intact *)
                   quit := true
               | None ->
                   (* coordinator gone: exit quietly, journal intact *)
                   quit := true
             done
           with Unix.Unix_error (Unix.EPIPE, _, _) ->
             (* coordinator closed its read end mid-send; same as EOF *)
             ());
          (try Unix.close out_fd with Unix.Unix_error _ -> ()))
  | Some (Protocol.Ready | Protocol.Assign _ | Protocol.Done _ | Protocol.Fin
         | Protocol.Exit _) ->
      invalid_arg "Worker.serve: expected Hello as first message"
