(** Coordinator/worker wire protocol for the sweep farm.

    Messages are {!Runner.Journal.Frame} CRC-32 frames over pipes; the
    frame tag selects the constructor and the payload is a [Marshal] of
    a plain record (Marshal-safe: no closures). A peer that dies
    mid-frame reads as end-of-stream ({!recv} returns [None]), which the
    coordinator treats as worker death and the worker treats as
    coordinator shutdown.

    Conversation: coordinator sends {!msg.Hello} once; the worker
    replies {!msg.Ready}; each {!msg.Assign} of a half-open global index
    range [\[lo, hi)] is answered by a {!msg.Done} carrying the typed
    failures of that range — the Done doubles as a pull request for more
    work (contiguous own-shard ranges first, stolen ranges from ragged
    shards after). {!msg.Fin} ends the conversation; the worker answers
    {!msg.Exit} with its {!Robust.Stats} snapshot and idle-wait
    accounting, then closes. *)

(** Spawn-time workload description. [blob] is opaque to the farm; the
    worker resolves it to a task function (see {!Worker.serve}). *)
type hello = {
  shard : int;
  journal : string;
  blob : string;
  chunk : int option;
  retries : int option;
  task_timeout : float option;
}

(** Half-open range [\[lo, hi)] of global grid indices. *)
type range = { lo : int; hi : int }

(** Completion report for one assigned range; [failed] carries global
    indices with error payloads already remapped to global task
    numbers. *)
type done_ = {
  d_lo : int;
  d_hi : int;
  failed : (int * Robust.Pllscope_error.t) list;
}

(** Worker exit report: counters to absorb plus idle-wait accounting
    (how often and for how long the worker sat waiting for an Assign —
    the farm's measure of steal latency). *)
type exit_ = { stats : Robust.Stats.t; waits : int; wait_seconds : float }

type msg =
  | Hello of hello
  | Ready
  | Assign of range
  | Done of done_
  | Fin
  | Exit of exit_

(** [send fd msg] — write one framed message. Raises
    [Unix.Unix_error EPIPE] if the peer is gone. *)
val send : Unix.file_descr -> msg -> unit

(** [recv fd] — block for the next message; [None] on end-of-stream
    (peer exited or died, including mid-frame). Raises
    {!Robust.Pllscope_error.Error} with a [Parse] payload on a CRC
    failure or unknown tag. *)
val recv : Unix.file_descr -> msg option

(** Lowercase constructor name, for diagnostics. *)
val msg_name : msg -> string
