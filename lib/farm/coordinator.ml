(* Farm coordinator: shard a grid across worker subprocesses and merge
   their checkpoint journals into one canonical result.

   The coordinator never computes a point itself. It

     1. replays the base journal (on resume) and every existing shard
        journal to find which points are already done;
     2. partitions the missing indices into [shards] contiguous regions
        balanced by count;
     3. spawns [shards] workers (pipes on stdin/stdout, stderr
        inherited) and feeds each one slices carved from the front of
        its own region — and, with stealing on, from the back of the
        largest remaining region once its own runs dry;
     4. on worker death (EOF without an Exit frame) re-queues the
        worker's outstanding range at the front of its origin region so
        hungry workers pick it up;
     5. merges base + shard journals with Journal.merge — first frame
        per index wins, output sorted by index — which erases every
        trace of sharding, stealing, death and resume from the bytes.

   Bit-identity argument: the task is deterministic and the payload
   encoding is bit-exact, so any two frames for the same index — from
   different shards, from a dead worker's partial range re-run by a
   thief, from a previous interrupted run — hold identical bytes.
   First-wins dedup over identical candidates is therefore canonical,
   and sorting by index makes the merged journal a pure function of
   {task, grid}: byte-equal to a merged single-shard run, at any shard
   count, with or without kills and resumes. *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type config = {
  shards : int;
  steal : bool;
  resume : bool;
  checkpoint : string;
  blob : string;
  worker_argv : int -> string array;
  slice : int option;
  chunk : int option;
  retries : int option;
  task_timeout : float option;
  progress : bool;
}

type report = {
  payloads : string option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
  resumed : int;
  steals : int;
  worker_deaths : int;
  assign_waits : int;
  assign_wait_seconds : float;
  merged_frames : int;
}

(* ------------------------------------------------------------------ *)
(* shard journal discovery                                             *)

let shard_path base k = base ^ ".shard" ^ string_of_int k

(* Every shard journal on disk for [base], whatever shard count wrote
   it — a resume may use fewer shards than the interrupted run. *)
let existing_shards base =
  let dir = Filename.dirname base in
  let prefix = Filename.basename base ^ ".shard" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name ->
           String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix)
    |> List.sort compare
    |> List.map (Filename.concat dir)

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

(* ------------------------------------------------------------------ *)
(* work regions                                                        *)

type region = { mutable ranges : Protocol.range list; mutable count : int }

let region_of ranges =
  {
    ranges;
    count =
      List.fold_left (fun a { Protocol.lo; hi } -> a + hi - lo) 0 ranges;
  }

(* Maximal runs of not-yet-completed indices, ascending. *)
let missing_ranges completed n =
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if completed.(!i) then incr i
    else begin
      let lo = !i in
      while !i < n && not completed.(!i) do
        incr i
      done;
      out := { Protocol.lo; hi = !i } :: !out
    end
  done;
  List.rev !out

(* Split the missing ranges into [k] contiguous regions of near-equal
   point count, preserving index order: counting missing points from 0,
   region j gets positions [j*total/k, (j+1)*total/k), so a clean fresh
   run shards the grid into k contiguous blocks and a ragged resume
   still balances what is left. *)
let partition ranges k =
  let total =
    List.fold_left (fun a { Protocol.lo; hi } -> a + hi - lo) 0 ranges
  in
  let bound j = j * total / k in
  let out = Array.make k [] in
  let pos = ref 0 in
  let j = ref 0 in
  List.iter
    (fun range ->
      let lo = ref range.Protocol.lo in
      let hi = range.Protocol.hi in
      while !lo < hi do
        while !j < k - 1 && bound (!j + 1) <= !pos do
          incr j
        done;
        let room = if !j = k - 1 then hi - !lo else bound (!j + 1) - !pos in
        let take = min (hi - !lo) room in
        out.(!j) <- { Protocol.lo = !lo; hi = !lo + take } :: out.(!j);
        pos := !pos + take;
        lo := !lo + take
      done)
    ranges;
  Array.map (fun l -> region_of (List.rev l)) out

(* Carve up to [slice] points from the front of [r]. *)
let carve_front r slice =
  match r.ranges with
  | [] -> None
  | ({ Protocol.lo; hi } as head) :: rest ->
      let size = hi - lo in
      if size <= slice then begin
        r.ranges <- rest;
        r.count <- r.count - size;
        Some head
      end
      else begin
        r.ranges <- { Protocol.lo = lo + slice; hi } :: rest;
        r.count <- r.count - slice;
        Some { Protocol.lo; hi = lo + slice }
      end

(* Carve up to [slice] points from the back of [r] (stealing: take the
   work its owner would reach last). *)
let carve_back r slice =
  match List.rev r.ranges with
  | [] -> None
  | { Protocol.lo; hi } :: rev_rest ->
      let size = hi - lo in
      if size <= slice then begin
        r.ranges <- List.rev rev_rest;
        r.count <- r.count - size;
        Some { Protocol.lo; hi }
      end
      else begin
        r.ranges <- List.rev ({ Protocol.lo; hi = hi - slice } :: rev_rest);
        r.count <- r.count - slice;
        Some { Protocol.lo = hi - slice; hi }
      end

let requeue_front r ({ Protocol.lo; hi } as range) =
  r.ranges <- range :: r.ranges;
  r.count <- r.count + (hi - lo)

(* ------------------------------------------------------------------ *)
(* worker bookkeeping                                                  *)

type wstate =
  | Starting  (* spawned, Hello sent, Ready not yet seen *)
  | Busy  (* an Assign is outstanding *)
  | Hungry  (* asked for work; parked until a range frees up *)
  | Finishing  (* Fin sent, Exit not yet seen *)
  | Exited  (* Exit seen; awaiting EOF *)
  | Gone  (* fds closed, process reaped *)

type wrk = {
  k : int;
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable state : wstate;
  mutable outstanding : Protocol.range option;
}

let spawn cfg k =
  (* worker stdin <- [w_c]; worker stdout -> [r_c]. Both pipe ends are
     cloexec in this process; create_process dup2s the child ends onto
     fds 0/1, which clears cloexec there — essential, otherwise the
     coordinator would never see EOF when a worker dies. *)
  let r_c, w_w = Unix.pipe ~cloexec:true () in
  let r_w, w_c = Unix.pipe ~cloexec:true () in
  let argv = cfg.worker_argv k in
  let pid = Unix.create_process argv.(0) argv r_w w_w Unix.stderr in
  Unix.close r_w;
  Unix.close w_w;
  let w =
    { k; pid; to_w = w_c; from_w = r_c; state = Starting; outstanding = None }
  in
  (* If the child died instantly (exec failure) this raises EPIPE; the
     event loop then sees EOF and takes the death path. *)
  (try
     Protocol.send w.to_w
       (Protocol.Hello
          {
            shard = k;
            journal = shard_path cfg.checkpoint k;
            blob = cfg.blob;
            chunk = cfg.chunk;
            retries = cfg.retries;
            task_timeout = cfg.task_timeout;
          })
   with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
  w

let reap w =
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
  w.state <- Gone

(* ------------------------------------------------------------------ *)
(* the run                                                             *)

let validate cfg ~n =
  if cfg.shards < 1 then invalid_arg "Coordinator.run: shards must be >= 1";
  if n < 0 then invalid_arg "Coordinator.run: negative grid size";
  if String.length cfg.checkpoint = 0 then
    invalid_arg "Coordinator.run: empty checkpoint path"

let run cfg ~n =
  validate cfg ~n;
  Runner.Shutdown.ignore_sigpipe ();
  let base = cfg.checkpoint in
  (* --- prior state --- *)
  if not cfg.resume then begin
    remove_if_exists base;
    List.iter remove_if_exists (existing_shards base)
  end;
  let completed = Array.make (max n 1) false in
  let mark (i, _) = if i >= 0 && i < n then completed.(i) <- true in
  if cfg.resume then begin
    if Sys.file_exists base then List.iter mark (Runner.Journal.replay base);
    List.iter
      (fun p -> List.iter mark (Runner.Journal.replay p))
      (existing_shards base)
  end;
  let resumed = Array.fold_left (fun a c -> if c then a + 1 else a) 0 completed in
  let resumed = if n = 0 then 0 else min resumed n in
  Robust.Stats.record_resumed resumed;
  let missing = missing_ranges completed n in
  let missing_total =
    List.fold_left (fun a { Protocol.lo; hi } -> a + hi - lo) 0 missing
  in
  let regions = partition missing cfg.shards in
  let slice =
    match cfg.slice with
    | Some s ->
        if s < 1 then invalid_arg "Coordinator.run: slice must be >= 1";
        s
    | None -> max 1 (missing_total / (cfg.shards * 16))
  in
  (* --- counters --- *)
  let steals = ref 0 in
  let worker_deaths = ref 0 in
  let assign_waits = ref 0 in
  let assign_wait_seconds = ref 0. in
  let points_done = ref resumed in
  let failures : (int, Robust.Pllscope_error.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let cancelled = ref false in
  let check_cancel () =
    if Parallel.Cancel.is_cancelled (Parallel.Cancel.global ()) then
      cancelled := true
  in
  (* --- work handout --- *)
  let next_range k =
    if !cancelled then None
    else
      match carve_front regions.(k) slice with
      | Some _ as r -> r
      | None ->
          if not cfg.steal then None
          else begin
            (* steal from the back of the fattest region *)
            let best = ref (-1) in
            Array.iteri
              (fun j r ->
                if r.count > 0 && (!best < 0 || r.count > regions.(!best).count)
                then best := j)
              regions;
            if !best < 0 then None
            else
              match carve_back regions.(!best) slice with
              | Some _ as r ->
                  incr steals;
                  r
              | None -> None
          end
  in
  (* --- spawn --- *)
  let workers =
    if missing_total = 0 then [||]
    else Array.init cfg.shards (fun k -> spawn cfg k)
  in
  let live () =
    Array.exists (fun w -> w.state <> Gone) workers
  in
  let on_death w =
    (* EOF (or EPIPE) without Exit: the worker died. Its journal holds
       everything it completed; its outstanding range goes back to the
       front of its own region so the remaining points get re-run. *)
    if w.state <> Exited then begin
      incr worker_deaths;
      (match w.outstanding with
      | Some range -> requeue_front regions.(w.k) range
      | None -> ())
    end;
    w.outstanding <- None;
    reap w
  in
  let fin w =
    match Protocol.send w.to_w Protocol.Fin with
    | () -> w.state <- Finishing
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> on_death w
  in
  let assign w =
    match next_range w.k with
    | Some range -> (
        match Protocol.send w.to_w (Protocol.Assign range) with
        | () ->
            w.state <- Busy;
            w.outstanding <- Some range
        | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
            requeue_front regions.(w.k) range;
            on_death w)
    | None ->
        (* No work to hand out right now. If some other worker still has
           an outstanding range, its death could re-queue work we can
           steal — park. Otherwise nothing can appear: finish. *)
        let outstanding_elsewhere =
          cfg.steal && (not !cancelled)
          && Array.exists
               (fun o -> o.k <> w.k && o.outstanding <> None)
               workers
        in
        if outstanding_elsewhere then w.state <- Hungry else fin w
  in
  let wake_hungry () =
    Array.iter (fun w -> if w.state = Hungry then assign w) workers
  in
  (* --- progress --- *)
  let tty = cfg.progress && Unix.isatty Unix.stderr in
  let last_progress = ref 0. in
  let progress ~final () =
    if tty then begin
      let t = now () in
      if final || t -. !last_progress > 0.2 then begin
        last_progress := t;
        let busy =
          Array.fold_left
            (fun a w -> if w.state = Busy then a + 1 else a)
            0 workers
        in
        Printf.eprintf "\rfarm: %d/%d points, %d worker(s) busy, %d steal(s), %d death(s)%s%!"
          !points_done n busy !steals !worker_deaths
          (if final then "\n" else "")
      end
    end
  in
  (* --- event loop --- *)
  let handle w =
    match Protocol.recv w.from_w with
    | None ->
        on_death w;
        (* a death may have re-queued work a parked worker can take, or
           removed the last outstanding range a parked worker was
           waiting on — either way, re-evaluate *)
        wake_hungry ()
    | Some Protocol.Ready -> assign w
    | Some (Protocol.Done d) ->
        List.iter
          (fun (i, err) ->
            if not (Hashtbl.mem failures i) then Hashtbl.add failures i err)
          d.Protocol.failed;
        points_done := !points_done + (d.Protocol.d_hi - d.Protocol.d_lo);
        w.outstanding <- None;
        assign w;
        wake_hungry ()
    | Some (Protocol.Exit e) ->
        Robust.Stats.absorb e.Protocol.stats;
        assign_waits := !assign_waits + e.Protocol.waits;
        assign_wait_seconds := !assign_wait_seconds +. e.Protocol.wait_seconds;
        w.state <- Exited
    | Some (Protocol.Hello _ | Protocol.Assign _ | Protocol.Fin) ->
        (* protocol violation from the worker: treat as death *)
        on_death w;
        wake_hungry ()
  in
  while live () do
    check_cancel ();
    if !cancelled then
      (* stop handing out work; release parked workers *)
      Array.iter (fun w -> if w.state = Hungry then fin w) workers;
    let fds =
      Array.to_list workers
      |> List.filter_map (fun w ->
             if w.state = Gone then None else Some w.from_w)
    in
    if fds = [] then ()
    else begin
      match Unix.select fds [] [] 0.25 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              match
                Array.find_opt
                  (fun w -> w.state <> Gone && w.from_w = fd)
                  workers
              with
              | Some w -> handle w
              | None -> ())
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end;
    progress ~final:false ()
  done;
  if Array.length workers > 0 then progress ~final:true ();
  (* --- merge --- *)
  check_cancel ();
  let sources =
    (if cfg.resume && Sys.file_exists base then [ base ] else [])
    @ existing_shards base
  in
  let merged_frames =
    if sources = [] then begin
      (* nothing ran and nothing pre-existed: write an empty journal so
         the checkpoint path is valid for later resumes *)
      Runner.Journal.close (Runner.Journal.open_append base);
      0
    end
    else Runner.Journal.merge ~into:base sources
  in
  List.iter remove_if_exists (existing_shards base);
  (* --- result assembly --- *)
  let payloads = Array.make (max n 1) None in
  List.iter
    (fun (i, payload) ->
      if i >= 0 && i < n && payloads.(i) = None then
        payloads.(i) <- Some payload)
    (Runner.Journal.replay base);
  let payloads = if n = Array.length payloads then payloads else Array.sub payloads 0 n in
  let final_failures = ref [] in
  for i = n - 1 downto 0 do
    if payloads.(i) = None then
      let err =
        match Hashtbl.find_opt failures i with
        | Some err -> err
        | None ->
            if !cancelled then
              Robust.Pllscope_error.Cancelled
                { reason = "farm: run cancelled before this point" }
            else
              Robust.Pllscope_error.Worker_failure
                {
                  task = i;
                  attempts = 0;
                  last = "farm: worker died before computing this point";
                }
      in
      final_failures := (i, err) :: !final_failures
  done;
  List.iter
    (fun (_, err) ->
      match (err : Robust.Pllscope_error.t) with
      | Cancelled _ -> Robust.Stats.record_cancelled ()
      | Worker_failure _ | Singular _ | Non_convergence _ | Non_finite _
      | Parse _ | Timed_out _ | Overloaded _ | Io_timeout _
      | Budget_exhausted _ | Circuit_open _ ->
          ())
    !final_failures;
  {
    payloads;
    failures = !final_failures;
    total = n;
    resumed;
    steals = !steals;
    worker_deaths = !worker_deaths;
    assign_waits = !assign_waits;
    assign_wait_seconds = !assign_wait_seconds;
    merged_frames;
  }
