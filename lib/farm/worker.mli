(** The subprocess side of the sweep-farm protocol.

    {!serve} is the whole lifecycle of a worker process: it speaks
    {!Protocol} on the inherited stdin/stdout pipes, executes each
    assigned half-open range as a {!Parallel.Sweep.grid_checked} sweep
    over global grid indices, and appends every computed point to its
    private checkpoint journal before acknowledging the range — so a
    [kill -9] mid-range loses only in-flight points and everything
    journaled survives into the coordinator's merge.

    The worker's stdout is re-pointed at stderr after the protocol fd is
    duplicated, so stray prints from workload code cannot corrupt a
    frame. *)

(** [serve ?chunk ?retries ?task_timeout ~resolve ()] — run the worker
    loop to completion (Fin, coordinator EOF, or EPIPE — all clean
    exits). [resolve shard blob] must return the task function mapping a
    {b global} grid index to its encoded payload; the encoding must
    match the coordinator's codec byte-for-byte (use [Marshal] on both
    sides, as {!Runner.Run.marshal_codec} does). Settings carried in the
    Hello override the optional arguments. [Robust.Stats] is reset at
    Hello and its snapshot travels back in the Exit frame for the
    coordinator to absorb. Raises [Invalid_argument] if the first
    message is not Hello. *)
val serve :
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout:float ->
  resolve:(int -> string -> int -> string) ->
  unit ->
  unit
