open Numeric

type point = {
  omega : float;
  response : Cx.t;
  mag_db : float;
  phase_deg : float;
}

let unwrap phases =
  let n = Array.length phases in
  if n = 0 then [||]
  else begin
    let out = Array.make n phases.(0) in
    let offset = ref 0.0 in
    for i = 1 to n - 1 do
      let d = phases.(i) -. phases.(i - 1) in
      if d > 180.0 then offset := !offset -. 360.0
      else if d < -180.0 then offset := !offset +. 360.0;
      out.(i) <- phases.(i) +. !offset
    done;
    out
  end

let of_responses ~ws responses =
  if Array.length ws <> Array.length responses then
    invalid_arg "Bode.of_responses: grid and responses differ in length";
  let raw_phases = Array.map (fun z -> Stats.deg (Cx.arg z)) responses in
  let phases = unwrap raw_phases in
  Array.init (Array.length ws) (fun i ->
      {
        omega = ws.(i);
        response = responses.(i);
        mag_db = Stats.db (Cx.abs responses.(i));
        phase_deg = phases.(i);
      })

let sweep ?pool f ~lo ~hi ~points =
  let ws = Optimize.logspace lo hi points in
  of_responses ~ws (Parallel.Sweep.grid ?pool f ws)

let sweep_tf ?pool tf = sweep ?pool (Tf.freq_response tf)
let mag_db_at f w = Stats.db (Cx.abs (f w))
let phase_deg_at f w = Stats.deg (Cx.arg (f w))
