open Numeric

type t = Rat.t

let make ~num ~den =
  Rat.make (Poly.of_real_coeffs num) (Poly.of_real_coeffs den)

let of_rat r = r
let to_rat r = r
let eval = Rat.eval

let freq_response h ~period w = Rat.eval h (Cx.exp (Cx.jomega (w *. period)))

let add = Rat.add
let mul = Rat.mul
let scale k = Rat.scale (Cx.of_float k)
let feedback_unity = Rat.feedback_unity
let poles = Rat.poles
let zeros = Rat.zeros

let is_stable ?(tol = 1e-9) h =
  List.for_all (fun p -> Cx.abs p < 1.0 -. tol) (poles h)

let from_state_space ~phi ~b ~c =
  let n = Rmat.rows phi in
  if n = 0 then Rat.zero
  else begin
    (* Faddeev–LeVerrier: den(z) = det(zI - Φ), and the matrix
       coefficients B_k of adj(zI - Φ) = Σ_{k=0}^{n-1} B_k z^{n-1-k} come
       out of the same recursion: B_0 = I, c_{n-k} = -tr(Φ B_{k-1})/k,
       B_k = Φ B_{k-1} + c_{n-k} I. *)
    let den = Array.make (n + 1) 0.0 in
    den.(n) <- 1.0;
    let num = Array.make n 0.0 in
    let bk = ref (Rmat.identity n) in
    let cbkb bk =
      let v = Rmat.mv bk b in
      let acc = ref 0.0 in
      Array.iteri (fun i ci -> acc := !acc +. (ci *. v.(i))) c;
      !acc
    in
    let trace m =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. Rmat.get m i i
      done;
      !acc
    in
    for k = 0 to n - 1 do
      num.(n - 1 - k) <- cbkb !bk;
      let phib = Rmat.mul phi !bk in
      let coeff = -.trace phib /. float_of_int (k + 1) in
      den.(n - 1 - k) <- coeff;
      bk := Rmat.add phib (Rmat.scale coeff (Rmat.identity n))
    done;
    Rat.make
      (Poly.of_real_coeffs (Array.to_list num))
      (Poly.of_real_coeffs (Array.to_list den))
  end

let pp = Rat.pp
