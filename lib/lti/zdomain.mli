(** Discrete-time (z-domain) rational transfer functions.

    The substrate for the Hein–Scott-style exact discrete-time PLL
    baseline: sampled-loop transfer functions [L(z)], unit-circle
    frequency response [L(e^{jωT})], and stability by pole modulus. *)

type t

(** [make ~num ~den] — real coefficients in ascending powers of [z]. *)
val make : num:float list -> den:float list -> t

val of_rat : Numeric.Rat.t -> t
val to_rat : t -> Numeric.Rat.t
val eval : t -> Numeric.Cx.t -> Numeric.Cx.t

(** [freq_response h ~period w] is [h(e^{jw·period})]. *)
val freq_response : t -> period:float -> float -> Numeric.Cx.t

val add : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

(** [feedback_unity g] is [g/(1+g)]. *)
val feedback_unity : t -> t

val poles : t -> Numeric.Cx.t list
val zeros : t -> Numeric.Cx.t list

(** All poles strictly inside the unit circle. *)
val is_stable : ?tol:float -> t -> bool

(** [from_state_space ~phi ~b ~c] is [C (zI - Φ)^{-1} B] as an explicit
    rational in [z], assembled from the characteristic polynomial via
    Cramer-style expansion: num(z) = C adj(zI-Φ) B. *)
val from_state_space : phi:Numeric.Rmat.t -> b:float array -> c:float array -> t

val pp : Format.formatter -> t -> unit
