(** Continuous-time transfer functions H(s) with real coefficients.

    A transfer function is a rational in the Laplace variable [s]; this
    is the LTI layer the paper's HTM formalism extends: an LTI block
    embeds into an HTM as the diagonal [H_{m,m}(s) = H(s + j m ω₀)]
    (eq. 12). *)

type t

(** [make ~num ~den] with real coefficients in ascending powers of [s].
    @raise Division_by_zero if the denominator is zero. *)
val make : num:float list -> den:float list -> t

val of_rat : Numeric.Rat.t -> t
val to_rat : t -> Numeric.Rat.t

(** Gain [k] as a transfer function. *)
val gain : float -> t

(** The integrator [1/s]. *)
val integrator : t

(** The double integrator [1/s²]. *)
val double_integrator : t

(** [first_order_pole wp] is [1 / (1 + s/wp)]. *)
val first_order_pole : float -> t

(** [first_order_zero wz] is [1 + s/wz]. *)
val first_order_zero : float -> t

(** [from_zpk ~zeros ~poles ~gain] builds
    [k Π(s - z_i) / Π(s - p_i)] from real zeros/poles. *)
val from_zpk : zeros:float list -> poles:float list -> gain:float -> t

val eval : t -> Numeric.Cx.t -> Numeric.Cx.t

(** [freq_response tf w] is [eval tf (jw)]. *)
val freq_response : t -> float -> Numeric.Cx.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

(** [feedback g h] is [g/(1 + g h)] (negative feedback). *)
val feedback : g:t -> h:t -> t

val feedback_unity : t -> t
val poles : t -> Numeric.Cx.t list
val zeros : t -> Numeric.Cx.t list

(** [dc_gain tf] is [lim_{s->0} tf(s)] (may be infinite for poles at the
    origin). *)
val dc_gain : t -> float

val relative_degree : t -> int
val is_proper : t -> bool

(** [is_stable ?tol tf] — all poles strictly in the open left half plane
    ([Re p < -tol * scale]). Poles at the origin count as unstable. *)
val is_stable : ?tol:float -> t -> bool

val num_coeffs : t -> float array
val den_coeffs : t -> float array
val pp : Format.formatter -> t -> unit
