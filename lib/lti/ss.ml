open Numeric

type t = { a : Rmat.t; b : float array; c : float array; d : float }

let of_tf tf =
  if not (Tf.is_proper tf) then invalid_arg "Ss.of_tf: improper transfer function";
  let num = Tf.num_coeffs tf and den = Tf.den_coeffs tf in
  let n = Array.length den - 1 in
  let lead = den.(n) in
  let den = Array.map (fun x -> x /. lead) den in
  let num = Array.map (fun x -> x /. lead) num in
  if n = 0 then
    { a = Rmat.zeros 0 0; b = [||]; c = [||]; d = (if Array.length num > 0 then num.(0) else 0.0) }
  else begin
    let d = if Array.length num > n then num.(n) else 0.0 in
    (* strictly proper part coefficients: b_i - d * a_i *)
    let bpoly =
      Array.init n (fun i ->
          (if i < Array.length num then num.(i) else 0.0) -. (d *. den.(i)))
    in
    let a =
      Rmat.init n n (fun i k ->
          if i < n - 1 then if k = i + 1 then 1.0 else 0.0
          else -.den.(k))
    in
    let b = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
    let c = bpoly in
    { a; b; c; d }
  end

let order ss = Rmat.rows ss.a

let eval ss s =
  let n = order ss in
  if n = 0 then Cx.of_float ss.d
  else begin
    let si_a =
      Cmat.init n n (fun i k ->
          let aik = Cx.of_float (-.Rmat.get ss.a i k) in
          if i = k then Cx.add s aik else aik)
    in
    let x = Lu.solve_system si_a (Cvec.of_real_array ss.b) in
    let acc = ref (Cx.of_float ss.d) in
    for i = 0 to n - 1 do
      acc := Cx.add !acc (Cx.scale ss.c.(i) (Cvec.get x i))
    done;
    !acc
  end

let derivative ss x u =
  let ax = Rmat.mv ss.a x in
  Array.init (order ss) (fun i -> ax.(i) +. (ss.b.(i) *. u))

let output ss x u =
  let acc = ref (ss.d *. u) in
  for i = 0 to order ss - 1 do
    acc := !acc +. (ss.c.(i) *. x.(i))
  done;
  !acc

let discretize ss ~dt =
  let n = order ss in
  (* augmented exponential: [[A B];[0 0]] -> [[phi gamma];[0 1]] *)
  let m =
    Rmat.init (n + 1) (n + 1) (fun i k ->
        if i < n && k < n then Rmat.get ss.a i k
        else if i < n && k = n then ss.b.(i)
        else 0.0)
  in
  let em = Rmat.expm (Rmat.scale dt m) in
  let phi = Rmat.init n n (fun i k -> Rmat.get em i k) in
  let gamma = Array.init n (fun i -> Rmat.get em i n) in
  (phi, gamma)

let step_response ss ~t1 ~n =
  let dt = t1 /. float_of_int (n - 1) in
  let phi, gamma = discretize ss ~dt in
  let x = ref (Array.make (order ss) 0.0) in
  Array.init n (fun i ->
      let t = float_of_int i *. dt in
      let y = output ss !x 1.0 in
      let px = Rmat.mv phi !x in
      x := Array.mapi (fun k pk -> pk +. gamma.(k)) px;
      (t, y))

let impulse_state ss w = Array.map (fun bi -> bi *. w) ss.b
