open Numeric

type report = {
  unity_gain_freq : float option;
  phase_margin_deg : float option;
  gain_margin_db : float option;
  phase_cross_freq : float option;
}

let unity_gain_crossover ?(steps = 600) f ~lo ~hi =
  let log_mag w = log (Cx.abs (f w)) in
  Optimize.find_first_crossing ~steps log_mag ~lo ~hi

let phase_margin_at f w = 180.0 +. Stats.deg (Cx.arg (f w))

let phase_crossover ?(steps = 600) f ~lo ~hi =
  (* first frequency where the response crosses the negative real axis:
     Im = 0 with Re < 0 *)
  let crossings = Optimize.find_all_crossings ~steps (fun w -> Cx.im (f w)) ~lo ~hi in
  List.find_opt (fun w -> Cx.re (f w) < 0.0) crossings

let analyze ?(steps = 600) f ~lo ~hi =
  let wug = unity_gain_crossover ~steps f ~lo ~hi in
  let phase_margin_deg = Option.map (phase_margin_at f) wug in
  let wpc = phase_crossover ~steps f ~lo ~hi in
  let gain_margin_db = Option.map (fun w -> -.Stats.db (Cx.abs (f w))) wpc in
  {
    unity_gain_freq = wug;
    phase_margin_deg;
    gain_margin_db;
    phase_cross_freq = wpc;
  }

let analyze_tf ?steps tf = analyze ?steps (Tf.freq_response tf)

let pp_opt pp_v ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some v -> pp_v ppf v

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>unity-gain freq: %a rad/s@,phase margin: %a deg@,gain margin: %a dB@,phase crossover: %a rad/s@]"
    (pp_opt (fun f x -> Format.fprintf f "%.6g" x))
    r.unity_gain_freq
    (pp_opt (fun f x -> Format.fprintf f "%.3f" x))
    r.phase_margin_deg
    (pp_opt (fun f x -> Format.fprintf f "%.3f" x))
    r.gain_margin_db
    (pp_opt (fun f x -> Format.fprintf f "%.6g" x))
    r.phase_cross_freq
