(** Stability margins of an open-loop frequency response.

    Phase margin is the paper's headline metric: Fig. 7 shows the phase
    margin of the *effective* open loop λ(jω) collapsing as ω_UG/ω₀
    grows, while the LTI phase margin of A(jω) stays put. Both come out
    of the same crossover search below, applied to different response
    functions. *)

type report = {
  unity_gain_freq : float option;
      (** lowest ω with |L(jω)| = 1 in the scanned range *)
  phase_margin_deg : float option;
      (** 180° + arg L(jω_UG), principal-value argument *)
  gain_margin_db : float option;
      (** -|L| in dB at the lowest phase crossover of -180° *)
  phase_cross_freq : float option;
}

(** [analyze f ~lo ~hi] scans the response [f] (values of the open loop
    at [jω]) between the positive frequencies [lo] and [hi]. *)
val analyze : ?steps:int -> (float -> Numeric.Cx.t) -> lo:float -> hi:float -> report

val analyze_tf : ?steps:int -> Tf.t -> lo:float -> hi:float -> report

(** [unity_gain_crossover f ~lo ~hi] — just the crossover search. *)
val unity_gain_crossover :
  ?steps:int -> (float -> Numeric.Cx.t) -> lo:float -> hi:float -> float option

(** [phase_margin_at f w] is [180 + arg f(jw)] in degrees, using the
    principal value of the argument. *)
val phase_margin_at : (float -> Numeric.Cx.t) -> float -> float

val pp_report : Format.formatter -> report -> unit
