(** Real state-space realizations.

    [x' = A x + B u, y = C x + D u]. The behavioral simulator integrates
    loop-filter dynamics in this form, and the exact discrete-time PLL
    model ({!Pll.Zmodel} upstream) is obtained by exponentiating [A]
    over one reference period. *)

type t = {
  a : Numeric.Rmat.t;
  b : float array;
  c : float array;
  d : float;
}

(** [of_tf tf] — controllable canonical form of a proper transfer
    function. @raise Invalid_argument for improper input. *)
val of_tf : Tf.t -> t

val order : t -> int

(** [eval ss s] is [C (sI - A)^{-1} B + D]; cross-checks against
    [Tf.eval]. *)
val eval : t -> Numeric.Cx.t -> Numeric.Cx.t

(** [derivative ss x u] is [A x + B u]. *)
val derivative : t -> float array -> float -> float array

val output : t -> float array -> float -> float

(** [discretize ss ~dt] — exact zero-order-hold discretization; returns
    [(phi, gamma)] with [x_{k+1} = phi x_k + gamma u_k]. *)
val discretize : t -> dt:float -> Numeric.Rmat.t * float array

(** [step_response ss ~t1 ~n] — [n] samples of the unit step response on
    [[0, t1]] via exact ZOH stepping. *)
val step_response : t -> t1:float -> n:int -> (float * float) array

(** [impulse_state ss w] — state jump produced by an input impulse of
    weight [w]: [x <- x + B w]. *)
val impulse_state : t -> float -> float array
