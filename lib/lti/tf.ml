open Numeric

type t = Rat.t

let make ~num ~den =
  Rat.make (Poly.of_real_coeffs num) (Poly.of_real_coeffs den)

let of_rat r = r
let to_rat r = r
let gain k = make ~num:[ k ] ~den:[ 1.0 ]
let integrator = make ~num:[ 1.0 ] ~den:[ 0.0; 1.0 ]
let double_integrator = make ~num:[ 1.0 ] ~den:[ 0.0; 0.0; 1.0 ]

let first_order_pole wp =
  if wp <= 0.0 then invalid_arg "Tf.first_order_pole: frequency must be positive";
  make ~num:[ 1.0 ] ~den:[ 1.0; 1.0 /. wp ]

let first_order_zero wz =
  if wz <= 0.0 then invalid_arg "Tf.first_order_zero: frequency must be positive";
  make ~num:[ 1.0; 1.0 /. wz ] ~den:[ 1.0 ]

let from_zpk ~zeros ~poles ~gain =
  let num = Poly.from_roots (List.map Cx.of_float zeros) in
  let den = Poly.from_roots (List.map Cx.of_float poles) in
  Rat.make (Poly.scale (Cx.of_float gain) num) den

let eval = Rat.eval
let freq_response tf w = Rat.eval tf (Cx.jomega w)
let add = Rat.add
let sub = Rat.sub
let mul = Rat.mul
let div = Rat.div
let scale k = Rat.scale (Cx.of_float k)
let neg = Rat.neg
let feedback ~g ~h = Rat.feedback g h
let feedback_unity = Rat.feedback_unity
let poles = Rat.poles
let zeros = Rat.zeros

let dc_gain tf = Cx.re (Rat.eval tf Cx.zero)

let relative_degree = Rat.relative_degree
let is_proper = Rat.is_proper

let is_stable ?(tol = 1e-9) tf =
  let ps = poles tf in
  let scale_mag = List.fold_left (fun m p -> Stdlib.max m (Cx.abs p)) 1.0 ps in
  List.for_all (fun p -> Cx.re p < -.tol *. scale_mag) ps

let num_coeffs tf = Array.map Cx.re (Poly.coeffs tf.Rat.num)
let den_coeffs tf = Array.map Cx.re (Poly.coeffs tf.Rat.den)
let pp = Rat.pp
