(** Frequency-response sweeps (Bode data).

    Works on any response function [float -> Complex.t] so the same
    machinery sweeps classical transfer functions [A(jω)] and the
    time-varying effective open loop [λ(jω)] of the paper (Fig. 5 and
    the curves behind Figs. 6–7). *)

type point = {
  omega : float;
  response : Numeric.Cx.t;
  mag_db : float;
  phase_deg : float;  (** unwrapped along the sweep *)
}

(** [of_responses ~ws responses] — build Bode points from responses
    already evaluated on the grid [ws] (phase unwrapped from the
    low-frequency end). This is how batched evaluators — notably the
    grid-batched HTM plans of [Htm_core.Plan] — feed the Bode layer:
    evaluate the grid however is cheapest, then post-process here.
    {!sweep} is [of_responses] over a pool-evaluated log grid.
    @raise Invalid_argument when lengths differ. *)
val of_responses : ws:float array -> Numeric.Cx.t array -> point array

(** [sweep f ~lo ~hi ~points] evaluates [f] on a log grid and unwraps the
    phase continuously from the low-frequency end. Grid points are
    evaluated on [pool] (default [Parallel.Pool.default]); the result is
    bit-identical for any pool size. *)
val sweep :
  ?pool:Parallel.Pool.t ->
  (float -> Numeric.Cx.t) ->
  lo:float ->
  hi:float ->
  points:int ->
  point array

(** [sweep_tf tf ~lo ~hi ~points] sweeps an LTI transfer function. *)
val sweep_tf :
  ?pool:Parallel.Pool.t -> Tf.t -> lo:float -> hi:float -> points:int -> point array

(** [mag_db_at f w] / [phase_deg_at f w] — single-point helpers (phase
    in (-180, 180], not unwrapped). *)
val mag_db_at : (float -> Numeric.Cx.t) -> float -> float

val phase_deg_at : (float -> Numeric.Cx.t) -> float -> float

(** [unwrap phases_deg] removes ±360° jumps from a phase sequence. *)
val unwrap : float array -> float array
