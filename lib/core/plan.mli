(** Grid-batched plan/execute evaluation of HTM composition trees.

    {!make} walks a composition tree {b once}: it runs {!Smat}'s static
    shape rules over every node, preallocates one structured container
    per dynamic node plus every densification scratch and LU workspace a
    point evaluation can need, hoists s-independent feedback-free
    subtrees into plan-time constants, and compiles LTI leaves into
    harmonic shift tables (allocation-free split-rational evaluation for
    [Htm.lti_rat] leaves). {!eval} and the grid drivers then stream
    frequency points through the plan {b entirely in place}.

    Planned evaluation is proven equivalent to the per-point path by the
    differential suite in [test/test_grid.ml]: same values as
    [Htm.to_matrix] against the dense oracle [Htm.to_matrix_dense], and
    bit-identical across pool sizes and plan reuse.

    {b Ownership.} A plan is a mutable workspace: every evaluation
    overwrites every container, and the {!Smat.t} returned by {!eval} is
    a view into plan storage, valid only until the next evaluation. One
    plan must be used by at most one domain lane at a time — parallel
    sweeps create one plan per lane via {!Parallel.Sweep.grid_local}
    (see the ownership rule in its documentation). *)

open Numeric

type ctx = Htm_expr.ctx

type t

(** [make ?lambda ctx tree] — compile [tree] for grid evaluation.

    [lambda] is the [Special] closed-form fast path: when the {b
    outermost} [Feedback] node realizes as rank one (sampling-PFD loop),
    its Sherman–Morrison denominator term [vᵀu] is replaced by
    [lambda s] — the closed-form loop gain λ(s) of eq. 28, exact for
    time-invariant-VCO loops (see [Pll.lambda_fn]). It is ignored for
    other shapes and for inner feedback nodes. *)
val make : ?lambda:(Cx.t -> Cx.t) -> ctx -> Htm_expr.t -> t

val ctx : t -> ctx

(** Matrix dimension [2·n_harm + 1]. *)
val dim : t -> int

(** The statically assigned shape of the realized root — what every
    structured evaluation of this plan returns. May sit higher in the
    lattice than [Htm.to_matrix]'s value-dependent shape (see the static
    shape rules in {!Smat}). *)
val root_shape : t -> Smat.shape_t

(** {1 Point evaluation}

    Guard semantics mirror [Htm.to_matrix] exactly: with
    {!Robust.Config.guards_enabled} off, kernels run unchecked (exact
    singularity raises [Numeric.Lu.Singular]); with guards on, checked
    kernels plus a root finiteness scan degrade failing points to the
    dense oracle, counted in {!Robust.Stats} — unless strict mode
    ({!Robust.Config.is_strict}) raises the typed error instead. *)

(** [eval p s] — realize the HTM at [s]. The result is a view into plan
    storage: use it (or copy out of it) before the next evaluation. *)
val eval : t -> Cx.t -> Smat.t

(** [element p ~n ~m s] — entry [H_{n,m}(s)] by harmonic index. *)
val element : t -> n:int -> m:int -> Cx.t -> Cx.t

(** [baseband p s] — [element p ~n:0 ~m:0 s], the H₀₀ transfer. *)
val baseband : t -> Cx.t -> Cx.t

(** [to_cmat p s] — boxed dense copy of the realized HTM (fresh
    storage, not a view). *)
val to_cmat : t -> Cx.t -> Cmat.t

(** {1 Grid drivers}

    Sequential on one plan; to parallelize, hand [fun () -> Plan.make …]
    to {!Parallel.Sweep.grid_local} so each lane owns its own plan. *)

(** [run_grid p ss] — boxed dense copies, one per point. *)
val run_grid : t -> Cx.t array -> Cmat.t array

(** [run_grid_map p f ss] — [f i view] per point, in index order; [f]
    must copy whatever it keeps out of the view. This is the
    allocation-free path for scalar extraction (Bode responses, noise
    rows). *)
val run_grid_map : t -> (int -> Smat.t -> 'a) -> Cx.t array -> 'a array

(** Bigarray-backed grid output: split re/im [points × dim × dim]
    float64 C-layout blocks, allocated outside the OCaml heap — the
    layout for handing whole grids to plotting or external tools
    without boxing. *)
module Out : sig
  type ba3 =
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array3.t

  type t

  val points : t -> int
  val dim : t -> int
  val get : t -> p:int -> i:int -> k:int -> Cx.t
  val re : t -> ba3
  val im : t -> ba3
end

(** [run_grid_ba p ss] — evaluate the whole grid into one Bigarray
    block. Off-structure entries are exact zeros. *)
val run_grid_ba : t -> Cx.t array -> Out.t
