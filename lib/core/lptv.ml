open Numeric

let coeffs_of_function f ~period ~max_harmonic ?(samples = 2048) () =
  Quad.fourier_coeffs f ~period ~max_harmonic ~n:samples ()

let eval_coeffs coeffs ~omega0 t = Quad.fourier_eval coeffs ~omega0 t

let tone_response_multiplier coeffs ~omega0:_ ~m =
  let kmax = Array.length coeffs / 2 in
  List.filter_map
    (fun k ->
      let c = coeffs.(k + kmax) in
      if Float.equal (Cx.abs c) 0.0 then None else Some (m + k, c))
    (List.init ((2 * kmax) + 1) (fun i -> i - kmax))

let conj_symmetric ?(tol = 1e-9) coeffs =
  let kmax = Array.length coeffs / 2 in
  let ok = ref true in
  for k = 0 to kmax do
    let a = coeffs.(kmax + k) and b = coeffs.(kmax - k) in
    if not (Cx.approx ~tol (Cx.conj a) b) then ok := false
  done;
  !ok
