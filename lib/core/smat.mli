(** Structured truncated HTMs — the shape lattice of the paper's
    algebra, kept symbolic until the API boundary.

    The HTM of every primitive PLL block has structure: LTI blocks are
    diagonal (eq. 12), periodic gains are banded Toeplitz (eq. 13), the
    sampling PFD is rank one (eqs. 19–20). Composition preserves most
    of it — and the Sherman–Morrison–Woodbury closed form of the
    closed loop (eq. 28 specialized to a rank-one return path) exists
    precisely because it does. This module represents a realized
    (numeric, at one [s]) truncated HTM as the cheapest of four shapes

    {v Diag ⊂ Band ⊂ Dense,   Rank1 ⊂ Dense v}

    with composition rules that stay low in the lattice:
    diag·diag is O(n); diag·band and band·band stay banded;
    anything·rank-one stays rank one at the cost of one matvec;
    feedback of a diagonal or rank-one HTM is closed-form O(n).
    Only [Band]/[Dense] feedback pays a dense LU — on the flat unboxed
    {!Numeric.Cmatf.t} layer, not on boxed [Cmat.t].

    Values are immutable: operations return fresh storage (split
    unboxed re/im [float array]s) and never mutate operands. *)

type t

(** Matrix dimension (all shapes are square). *)
val dim : t -> int

(** {1 Constructors} *)

val zeros : int -> t
val identity : int -> t

(** [diag_init n f] — diagonal matrix with [f i] at [(i,i)]. *)
val diag_init : int -> (int -> Numeric.Cx.t) -> t

(** [of_toeplitz ~n coeffs] — banded Toeplitz matrix with
    [(i,j) = coeffs.(i - j + K)] for [|i - j| <= K]
    ([coeffs] has odd length [2K+1]); the band is clamped to the
    matrix. *)
val of_toeplitz : n:int -> Numeric.Cx.t array -> t

(** [rank1_of_arrays ~ure ~uim ~vre ~vim] — [u·vᵀ] (bilinear, no
    conjugation — the sampler's [l·lᵀ] convention). The arrays are
    owned by the result; do not mutate them afterwards. *)
val rank1_of_arrays :
  ure:float array -> uim:float array -> vre:float array -> vim:float array -> t

(** [rank1_const n w] — [w·l·lᵀ] with [l] the all-ones vector: the
    sampling-PFD HTM for [w = ω₀/2π]. *)
val rank1_const : int -> float -> t

val of_cmat : Numeric.Cmat.t -> t
val of_cmatf : Numeric.Cmatf.t -> t

(** {1 Densification — the only place structure is forgotten} *)

val densify : t -> Numeric.Cmatf.t
val to_cmat : t -> Numeric.Cmat.t

(** {1 Access without densifying} *)

val get : t -> int -> int -> Numeric.Cx.t
val col : t -> int -> Numeric.Cvec.t

(** {1 Algebra} *)

val scale : Numeric.Cx.t -> t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [feedback g] — [(I + G)⁻¹·G]. Diagonal and rank-one shapes use the
    closed forms [d/(1+d)] and [u·vᵀ/(1 + vᵀu)] (Sherman–Morrison);
    banded and dense shapes go through the unboxed LU.
    @raise Numeric.Lu.Singular when [I + G] is singular. *)
val feedback : t -> t

(** [feedback_checked ?context g] — guarded [(I + G)⁻¹·G] that never
    raises on numerical failure. Closed-form shapes check their scalar
    denominator's conditioning proxy [(1 + |d|)/|1 + d|] against
    {!Robust.Config.get_smw_max_cond}; banded/dense shapes use
    {!Numeric.Cmatf.lu_decompose_checked}. Returns [Error (Singular _)]
    or [Error (Non_finite _)] accordingly. *)
val feedback_checked :
  ?context:string -> t -> (t, Robust.Pllscope_error.t) result

(** True iff every stored entry is finite. *)
val is_finite : t -> bool

(** {1 Matrix–vector products on split re/im arrays}

    These never densify: the rank-one product is two dot products, the
    banded one touches only the band. *)

(** [mv t ~xre ~xim ~yre ~yim] — [y = T·x]. *)
val mv :
  t ->
  xre:float array -> xim:float array -> yre:float array -> yim:float array ->
  unit

(** [mhv t ~xre ~xim ~yre ~yim] — [y = Tᴴ·x]. *)
val mhv :
  t ->
  xre:float array -> xim:float array -> yre:float array -> yim:float array ->
  unit

(** {1 Plan/execute support}

    The grid-batched evaluator ({!Plan}) allocates one container per
    composition node from the {b static} shape rules below, then
    streams frequency points through the {!Into} kernels — the same
    composition rules as the pure operations, writing into preallocated
    storage. *)

(** A shape descriptor (the type {!shape} returns). *)
type shape_t = [ `Diag | `Band of int | `Rank1 | `Dense ]

(** [create n shape] — a zero-filled container of the given shape,
    meant to be written through {!Into}. *)
val create : int -> shape_t -> t

(** [diag_of_arrays ~dre ~dim_] — zero-copy diagonal view: the arrays
    are the live storage (mutating them mutates the matrix). *)
val diag_of_arrays : dre:float array -> dim_:float array -> t

(** [band_of_arrays ~n ~kmax ~bre ~bim] — zero-copy banded view; entry
    [(i, i+d)], [|d| <= kmax], lives at [i·(2·kmax+1) + d + kmax]. *)
val band_of_arrays :
  n:int -> kmax:int -> bre:float array -> bim:float array -> t

(** Static composition rules, mirroring the value-level dispatch of
    {!add}/{!mul}/{!feedback} decision for decision — except the
    exactly-zero-diagonal shortcut of {!add}, which is value-dependent
    and statically unknowable: the static sum shape never shortcuts, so
    a planned result can sit higher in the lattice than the pure one
    (equal values up to the rounding of adding exact zeros). *)

val shape_add : shape_t -> shape_t -> shape_t

val shape_mul : n:int -> shape_t -> shape_t -> shape_t
val shape_feedback : shape_t -> shape_t

(** [mul_scratch ~n a b] — which operands of an {!Into.mul} at these
    shapes need densification scratch [(da, db)]: only the gemm paths
    (band products too wide for banded storage, dense·band mixes) do. *)
val mul_scratch : n:int -> shape_t -> shape_t -> bool * bool

(** [densify_into t m] — write [t] densely over [m] (cleared first). *)
val densify_into : t -> Numeric.Cmatf.t -> unit

module Into : sig
  (** In-place counterparts of the pure algebra. Every kernel
      overwrites all of [dst]'s storage, so containers are reusable
      point after point without clearing. [dst] must have exactly the
      shape the static rules assign to the operation and must not alias
      an operand; violations raise [Invalid_argument]. *)

  val scale : dst:t -> Numeric.Cx.t -> t -> unit

  (** [add ~dst ?sub a b] — [dst = a + b], or [a - b] with [~sub:true].
      No zero-diagonal shortcut (see the static shape rules). *)
  val add : dst:t -> ?sub:bool -> t -> t -> unit

  (** [mul ~dst ?da ?db a b] — [dst = a·b]; [da]/[db] are densification
      scratch, required exactly when {!mul_scratch} says so. *)
  val mul :
    dst:t -> ?da:Numeric.Cmatf.t -> ?db:Numeric.Cmatf.t -> t -> t -> unit

  (** [feedback ~dst ?scratch ?denom_override ~checked ~context g] —
      [dst = (I + G)⁻¹·G]. [scratch] (an [n×n] matrix and an LU
      workspace) is required for banded/dense [g]. With [~checked:true]
      the guards of {!feedback_checked} run (conditioning proxies,
      checked LU, finiteness) and failures come back as [Error];
      with [~checked:false] exact singularity raises
      [Numeric.Lu.Singular] like {!feedback}. [denom_override] replaces
      the rank-one Sherman–Morrison denominator term [vᵀu] with a
      closed-form loop gain λ(s) — the plan layer's [Special] fast path
      for time-invariant-VCO loops. *)
  val feedback :
    dst:t ->
    ?scratch:Numeric.Cmatf.t * Numeric.Cmatf.lu_ws ->
    ?denom_override:Numeric.Cx.t ->
    checked:bool ->
    context:string ->
    t ->
    (unit, Robust.Pllscope_error.t) result
end

(** {1 Diagnostics} *)

(** The shape actually held — exposed so tests and benchmarks can
    assert that composition stayed low in the lattice. *)
val shape : t -> shape_t

(** Largest off-diagonal modulus ([0.] for [Diag] by construction). *)
val max_offdiag_abs : t -> float

(** Row-sum induced norm, computed entrywise. *)
val norm_inf : t -> float
