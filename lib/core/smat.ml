(* Structured truncated HTMs.

   The paper's HTM algebra is closed over a tiny lattice of shapes:
   LTI blocks are diagonal (eq. 12), periodic gains are banded Toeplitz
   (eq. 13), the sampling PFD is rank one (eqs. 19–20), and the
   closed-loop Sherman–Morrison form exists precisely because the
   composition rules keep those shapes. This module is that lattice as
   data: products, sums and feedback stay in the cheapest shape that
   can represent the result and fall back to a flat unboxed dense
   matrix (Cmatf.t) only when no structure survives.

   Storage is split re/im float arrays throughout, so every entry is
   unboxed. Costs:
     diag·diag              O(n)
     diag·band, band·diag   O(n·k)
     band·band              O(n·k₁·k₂), bandwidth k₁+k₂
     anything·rank-one      O(cost of one matvec) — stays rank one
     feedback(diag)         O(n)
     feedback(rank-one)     O(n)  (Sherman–Morrison–Woodbury)
     feedback(band|dense)   dense LU via Cmatf, O(n³) unboxed *)

open Numeric

type t =
  | Diag of { dre : float array; dim_ : float array }
  | Band of { n : int; kmax : int; bre : float array; bim : float array }
      (* general banded (not necessarily Toeplitz): entry (i, j) with
         |j - i| <= kmax stored at [i*(2*kmax+1) + (j - i + kmax)] *)
  | Rank1 of {
      ure : float array;
      uim : float array;
      vre : float array;
      vim : float array;
    } (* u·vᵀ — bilinear, no conjugation, matching l·lᵀ of the sampler *)
  | Dense of Cmatf.t

let dim = function
  | Diag { dre; _ } -> Array.length dre
  | Band { n; _ } -> n
  | Rank1 { ure; _ } -> Array.length ure
  | Dense m -> Cmatf.rows m

(* ------------------------------------------------------------------ *)
(* constructors                                                        *)

let diag_init n f =
  let dre = Array.make n 0.0 and dim_ = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let z = f i in
    dre.(i) <- Cx.re z;
    dim_.(i) <- Cx.im z
  done;
  Diag { dre; dim_ }

let zeros n = Diag { dre = Array.make n 0.0; dim_ = Array.make n 0.0 }

let identity n =
  Diag { dre = Array.make n 1.0; dim_ = Array.make n 0.0 }

(* Toeplitz band from Fourier coefficients: entry (i,j) = coeffs[(i-j)+K],
   truncated to the matrix. *)
let of_toeplitz ~n coeffs =
  if Array.length coeffs mod 2 = 0 then
    invalid_arg "Smat.of_toeplitz: coefficient array must have odd length";
  let kc = Array.length coeffs / 2 in
  let kmax = Stdlib.min kc (Stdlib.max 0 (n - 1)) in
  let w = (2 * kmax) + 1 in
  let bre = Array.make (n * w) 0.0 and bim = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    for d = -kmax to kmax do
      let j = i + d in
      if j >= 0 && j < n then begin
        (* diff = i - j = -d *)
        let z = coeffs.(kc - d) in
        let p = (i * w) + d + kmax in
        bre.(p) <- Cx.re z;
        bim.(p) <- Cx.im z
      end
    done
  done;
  Band { n; kmax; bre; bim }

let rank1_of_arrays ~ure ~uim ~vre ~vim = Rank1 { ure; uim; vre; vim }

(* The sampler HTM (ω₀/2π)·l·lᵀ with l the all-ones vector. *)
let rank1_const n w =
  Rank1
    {
      ure = Array.make n w;
      uim = Array.make n 0.0;
      vre = Array.make n 1.0;
      vim = Array.make n 0.0;
    }

let of_cmatf m =
  if Cmatf.rows m <> Cmatf.cols m then
    invalid_arg "Smat.of_cmatf: matrix not square";
  Dense m

let of_cmat m = of_cmatf (Cmatf.of_cmat m)

(* ------------------------------------------------------------------ *)
(* densification (the only place structure is forgotten)               *)

let densify = function
  | Diag { dre; dim_ } ->
      let n = Array.length dre in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        Cmatf.set m i i (Cx.make dre.(i) dim_.(i))
      done;
      m
  | Band { n; kmax; bre; bim } ->
      let w = (2 * kmax) + 1 in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        for d = -kmax to kmax do
          let j = i + d in
          if j >= 0 && j < n then
            Cmatf.set m i j (Cx.make bre.((i * w) + d + kmax) bim.((i * w) + d + kmax))
        done
      done;
      m
  | Rank1 { ure; uim; vre; vim } ->
      let n = Array.length ure in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        let ar = ure.(i) and ai = uim.(i) in
        for k = 0 to n - 1 do
          let br = vre.(k) and bi = vim.(k) in
          Cmatf.set m i k (Cx.make ((ar *. br) -. (ai *. bi)) ((ar *. bi) +. (ai *. br)))
        done
      done;
      m
  | Dense m -> m

let to_cmat t = Cmatf.to_cmat (densify t)

(* ------------------------------------------------------------------ *)
(* element / column access without densifying                          *)

let get t i k =
  let n = dim t in
  if i < 0 || i >= n || k < 0 || k >= n then
    invalid_arg "Smat.get: index out of bounds";
  match t with
  | Diag { dre; dim_ } -> if i = k then Cx.make dre.(i) dim_.(i) else Cx.zero
  | Band { kmax; bre; bim; _ } ->
      let d = k - i in
      if abs d > kmax then Cx.zero
      else
        let w = (2 * kmax) + 1 in
        Cx.make bre.((i * w) + d + kmax) bim.((i * w) + d + kmax)
  | Rank1 { ure; uim; vre; vim } ->
      Cx.mul (Cx.make ure.(i) uim.(i)) (Cx.make vre.(k) vim.(k))
  | Dense m -> Cmatf.get m i k

let col t k =
  let n = dim t in
  if k < 0 || k >= n then invalid_arg "Smat.col: index out of bounds";
  Cvec.init n (fun i -> get t i k)

(* ------------------------------------------------------------------ *)
(* scaling and negation (shape-preserving)                             *)

let scale_arrays z re im =
  let zr = Cx.re z and zi = Cx.im z in
  let n = Array.length re in
  let re' = Array.make n 0.0 and im' = Array.make n 0.0 in
  for p = 0 to n - 1 do
    let ar = re.(p) and ai = im.(p) in
    re'.(p) <- (zr *. ar) -. (zi *. ai);
    im'.(p) <- (zr *. ai) +. (zi *. ar)
  done;
  (re', im')

let scale z = function
  | Diag { dre; dim_ } ->
      let dre, dim_ = scale_arrays z dre dim_ in
      Diag { dre; dim_ }
  | Band { n; kmax; bre; bim } ->
      let bre, bim = scale_arrays z bre bim in
      Band { n; kmax; bre; bim }
  | Rank1 { ure; uim; vre; vim } ->
      let ure, uim = scale_arrays z ure uim in
      Rank1 { ure; uim; vre = Array.copy vre; vim = Array.copy vim }
  | Dense m ->
      let m = Cmatf.copy m in
      Cmatf.scale_inplace z m;
      m |> of_cmatf

let neg t = scale (Cx.neg Cx.one) t

(* ------------------------------------------------------------------ *)
(* addition                                                            *)

(* Bandwidth above which banded storage loses to flat dense storage:
   (2k+1)·n words vs n·n. *)
let band_too_wide ~n ~kmax = (2 * kmax) + 1 >= n

let to_band_parts = function
  | Diag { dre; dim_ } ->
      let n = Array.length dre in
      (n, 0, dre, dim_)
  | Band { n; kmax; bre; bim } -> (n, kmax, bre, bim)
  | _ -> invalid_arg "Smat.to_band_parts: not banded"

let add_banded a b =
  let n, ka, are, aim = to_band_parts a in
  let _, kb, bre_, bim_ = to_band_parts b in
  let kmax = Stdlib.max ka kb in
  let w = (2 * kmax) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
  let re = Array.make (n * w) 0.0 and im = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    for d = -kmax to kmax do
      let j = i + d in
      if j >= 0 && j < n then begin
        let p = (i * w) + d + kmax in
        if abs d <= ka then begin
          re.(p) <- re.(p) +. are.((i * wa) + d + ka);
          im.(p) <- im.(p) +. aim.((i * wa) + d + ka)
        end;
        if abs d <= kb then begin
          re.(p) <- re.(p) +. bre_.((i * wb) + d + kb);
          im.(p) <- im.(p) +. bim_.((i * wb) + d + kb)
        end
      end
    done
  done;
  if kmax = 0 then Diag { dre = re; dim_ = im } else Band { n; kmax; bre = re; bim = im }

let is_zero_diag = function
  | Diag { dre; dim_ } ->
      let ok = ref true in
      Array.iter (fun x -> if not (Float.equal x 0.0) then ok := false) dre;
      Array.iter (fun x -> if not (Float.equal x 0.0) then ok := false) dim_;
      !ok
  | _ -> false

let add a b =
  if dim a <> dim b then invalid_arg "Smat.add: dimension mismatch";
  if is_zero_diag a then b
  else if is_zero_diag b then a
  else
    match (a, b) with
    | (Diag _ | Band _), (Diag _ | Band _) -> add_banded a b
    | _ ->
        (* rank-one + anything, or dense involved: no closed shape *)
        let da = densify a in
        let db = Cmatf.copy (densify b) in
        Cmatf.axpy Cx.one da db;
        of_cmatf db

let sub a b = add a (neg b)

(* ------------------------------------------------------------------ *)
(* matvec and conjugate-transpose matvec (never densifies)             *)

let mv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  if Array.length xre <> n || Array.length yre <> n then
    invalid_arg "Smat.mv: dimension mismatch";
  (match t with
  | Diag { dre; dim_ } ->
      for i = 0 to n - 1 do
        let ar = dre.(i) and ai = dim_.(i) in
        let br = xre.(i) and bi = xim.(i) in
        yre.(i) <- (ar *. br) -. (ai *. bi);
        yim.(i) <- (ar *. bi) +. (ai *. br)
      done
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      for i = 0 to n - 1 do
        let sr = ref 0.0 and si = ref 0.0 in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = bim.(p) in
          let br = xre.(j) and bi = xim.(j) in
          sr := !sr +. ((ar *. br) -. (ai *. bi));
          si := !si +. ((ar *. bi) +. (ai *. br))
        done;
        yre.(i) <- !sr;
        yim.(i) <- !si
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* y = u·(vᵀx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = ure.(i) and ai = uim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m -> Cmatf.gemv m ~xre ~xim ~yre ~yim);
  if n > 0 && Robust.Inject.fire Robust.Inject.Smat_nan then yre.(0) <- Float.nan

let mhv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  if Array.length xre <> n || Array.length yre <> n then
    invalid_arg "Smat.mhv: dimension mismatch";
  match t with
  | Diag { dre; dim_ } ->
      for i = 0 to n - 1 do
        let ar = dre.(i) and ai = -.dim_.(i) in
        let br = xre.(i) and bi = xim.(i) in
        yre.(i) <- (ar *. br) -. (ai *. bi);
        yim.(i) <- (ar *. bi) +. (ai *. br)
      done
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      Array.fill yre 0 n 0.0;
      Array.fill yim 0 n 0.0;
      for i = 0 to n - 1 do
        let br = xre.(i) and bi = xim.(i) in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = -.bim.(p) in
          yre.(j) <- yre.(j) +. ((ar *. br) -. (ai *. bi));
          yim.(j) <- yim.(j) +. ((ar *. bi) +. (ai *. br))
        done
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* Mᴴ = conj(v)·uᴴ: y = conj(v)·(uᴴx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = ure.(k) and ai = -.uim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = vre.(i) and ai = -.vim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m -> Cmatf.gemv_herm m ~xre ~xim ~yre ~yim

(* ------------------------------------------------------------------ *)
(* product                                                             *)

(* x ∘ d (componentwise complex product of split arrays) *)
let had_mul are aim bre bim =
  let n = Array.length are in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let ar = are.(i) and ai = aim.(i) in
    let br = bre.(i) and bi = bim.(i) in
    re.(i) <- (ar *. br) -. (ai *. bi);
    im.(i) <- (ar *. bi) +. (ai *. br)
  done;
  (re, im)

(* y = Aᵀ·x without conjugation, for rank-one·X products. *)
let mtv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  match t with
  | Diag _ -> mv t ~xre ~xim ~yre ~yim
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      Array.fill yre 0 n 0.0;
      Array.fill yim 0 n 0.0;
      for i = 0 to n - 1 do
        let br = xre.(i) and bi = xim.(i) in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = bim.(p) in
          yre.(j) <- yre.(j) +. ((ar *. br) -. (ai *. bi));
          yim.(j) <- yim.(j) +. ((ar *. bi) +. (ai *. br))
        done
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* Mᵀ = v·uᵀ: y = v·(uᵀx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = ure.(k) and ai = uim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = vre.(i) and ai = vim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m ->
      let nn = Cmatf.rows m in
      Array.fill yre 0 nn 0.0;
      Array.fill yim 0 nn 0.0;
      for i = 0 to nn - 1 do
        let br = xre.(i) and bi = xim.(i) in
        for k = 0 to nn - 1 do
          let z = Cmatf.get m i k in
          let ar = Cx.re z and ai = Cx.im z in
          yre.(k) <- yre.(k) +. ((ar *. br) -. (ai *. bi));
          yim.(k) <- yim.(k) +. ((ar *. bi) +. (ai *. br))
        done
      done

let mul_band_band a b =
  let n, ka, are, aim = to_band_parts a in
  let _, kb, bre_, bim_ = to_band_parts b in
  let kmax = Stdlib.min (ka + kb) (n - 1) in
  let w = (2 * kmax) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
  let re = Array.make (n * w) 0.0 and im = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    let llo = Stdlib.max 0 (i - ka) and lhi = Stdlib.min (n - 1) (i + ka) in
    for l = llo to lhi do
      let pa = (i * wa) + (l - i) + ka in
      let ar = are.(pa) and ai = aim.(pa) in
      if not (Float.equal ar 0.0 && Float.equal ai 0.0) then begin
        let jlo = Stdlib.max (Stdlib.max 0 (l - kb)) (i - kmax) in
        let jhi = Stdlib.min (Stdlib.min (n - 1) (l + kb)) (i + kmax) in
        for j = jlo to jhi do
          let pb = (l * wb) + (j - l) + kb in
          let br = bre_.(pb) and bi = bim_.(pb) in
          let p = (i * w) + (j - i) + kmax in
          re.(p) <- re.(p) +. ((ar *. br) -. (ai *. bi));
          im.(p) <- im.(p) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done;
  if kmax = 0 then Diag { dre = re; dim_ = im } else Band { n; kmax; bre = re; bim = im }

let mul a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Smat.mul: dimension mismatch";
  match (a, b) with
  | Diag da, Diag db ->
      let dre, dim_ = had_mul da.dre da.dim_ db.dre db.dim_ in
      Diag { dre; dim_ }
  | _, Rank1 { ure; uim; vre; vim } ->
      (* A·(u·vᵀ) = (A·u)·vᵀ *)
      let yre = Array.make n 0.0 and yim = Array.make n 0.0 in
      mv a ~xre:ure ~xim:uim ~yre ~yim;
      Rank1 { ure = yre; uim = yim; vre = Array.copy vre; vim = Array.copy vim }
  | Rank1 { ure; uim; vre; vim }, _ ->
      (* (u·vᵀ)·B = u·(Bᵀv)ᵀ *)
      let yre = Array.make n 0.0 and yim = Array.make n 0.0 in
      mtv b ~xre:vre ~xim:vim ~yre ~yim;
      Rank1 { ure = Array.copy ure; uim = Array.copy uim; vre = yre; vim = yim }
  | (Diag _ | Band _), (Diag _ | Band _) ->
      let _, ka, _, _ = to_band_parts a and _, kb, _, _ = to_band_parts b in
      if band_too_wide ~n ~kmax:(Stdlib.min (ka + kb) (n - 1)) && n > 1 then begin
        let dst = Cmatf.create n n in
        Cmatf.gemm ~dst (densify a) (densify b);
        of_cmatf dst
      end
      else mul_band_band a b
  | Dense da, Diag { dre; dim_ } ->
      (* column scaling, O(n²) *)
      let dst = Cmatf.create n n in
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          let z = Cmatf.get da i k in
          Cmatf.set dst i k (Cx.mul z (Cx.make dre.(k) dim_.(k)))
        done
      done;
      of_cmatf dst
  | Diag { dre; dim_ }, Dense db ->
      (* row scaling, O(n²) *)
      let dst = Cmatf.create n n in
      for i = 0 to n - 1 do
        let d = Cx.make dre.(i) dim_.(i) in
        for k = 0 to n - 1 do
          Cmatf.set dst i k (Cx.mul d (Cmatf.get db i k))
        done
      done;
      of_cmatf dst
  | _ ->
      let dst = Cmatf.create n n in
      Cmatf.gemm ~dst (densify a) (densify b);
      of_cmatf dst

(* ------------------------------------------------------------------ *)
(* feedback: (I + G)⁻¹·G                                               *)

let feedback g =
  let n = dim g in
  match g with
  | Diag { dre; dim_ } ->
      diag_init n (fun i ->
          let d = Cx.make dre.(i) dim_.(i) in
          let denom = Cx.add Cx.one d in
          (* a zero pivot here is exactly a zero pivot of the dense LU *)
          if Float.equal (Cx.abs denom) 0.0 then raise Lu.Singular;
          Cx.div d denom)
  | Rank1 { ure; uim; vre; vim } ->
      (* Sherman–Morrison: (I + u·vᵀ)⁻¹·u·vᵀ = u·vᵀ / (1 + vᵀu) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = ure.(k) and bi = uim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let denom = Cx.add Cx.one (Cx.make !sr !si) in
      if Float.equal (Cx.abs denom) 0.0 then raise Lu.Singular;
      let z = Cx.inv denom in
      let ure', uim' = scale_arrays z ure uim in
      Rank1 { ure = ure'; uim = uim'; vre = Array.copy vre; vim = Array.copy vim }
  | Band _ | Dense _ ->
      let gm = densify g in
      let a = Cmatf.copy gm in
      Cmatf.add_ident a;
      let b = Cmatf.copy gm in
      let ws = Cmatf.lu_ws n in
      Cmatf.lu_decompose_inplace a ws;
      Cmatf.lu_solve_inplace a ws b;
      of_cmatf b

(* ------------------------------------------------------------------ *)
(* finiteness and guarded feedback                                     *)

let all_finite2 re im =
  let len = Array.length re in
  let rec go p =
    p >= len || (Float.is_finite re.(p) && Float.is_finite im.(p) && go (p + 1))
  in
  go 0

let is_finite = function
  | Diag { dre; dim_ } -> all_finite2 dre dim_
  | Band { bre; bim; _ } -> all_finite2 bre bim
  | Rank1 { ure; uim; vre; vim } -> all_finite2 ure uim && all_finite2 vre vim
  | Dense m -> Cmatf.is_finite m

(* Result-returning feedback. The closed-form shapes guard their scalar
   denominators with the conditioning proxy (1 + |d|)/|1 + d| — the
   exact κ of the 1×1 (or rank-one deflated) subproblem the closed form
   solves — against Config.smw_max_cond; the banded/dense shapes go
   through the checked LU with its Hager estimate. *)
let feedback_checked ?(context = "Smat.feedback") g =
  let open Robust in
  let n = dim g in
  let finite_result t =
    if is_finite t then Ok t
    else Error (Pllscope_error.Non_finite { where = context })
  in
  match g with
  | Diag { dre; dim_ } ->
      let worst = ref 1.0 and exact = ref false in
      for i = 0 to n - 1 do
        let d = Cx.make dre.(i) dim_.(i) in
        let dm = Cx.abs (Cx.add Cx.one d) in
        if Float.equal dm 0.0 then exact := true
        else begin
          let proxy = (1.0 +. Cx.abs d) /. dm in
          if proxy > !worst then worst := proxy
        end
      done;
      if !exact then
        Error (Pllscope_error.Singular { cond_est = infinity; context })
      else if !worst > Config.get_smw_max_cond () then
        Error (Pllscope_error.Singular { cond_est = !worst; context })
      else finite_result (feedback g)
  | Rank1 { ure; uim; vre; vim } ->
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = ure.(k) and bi = uim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let vtu = Cx.make !sr !si in
      let dm = Cx.abs (Cx.add Cx.one vtu) in
      if Float.equal dm 0.0 then
        Error (Pllscope_error.Singular { cond_est = infinity; context })
      else begin
        let proxy = (1.0 +. Cx.abs vtu) /. dm in
        if proxy > Config.get_smw_max_cond () then
          Error (Pllscope_error.Singular { cond_est = proxy; context })
        else finite_result (feedback g)
      end
  | Band _ | Dense _ -> (
      let gm = densify g in
      let a = Cmatf.copy gm in
      Cmatf.add_ident a;
      let b = Cmatf.copy gm in
      let ws = Cmatf.lu_ws n in
      match Cmatf.lu_decompose_checked ~context a ws with
      | Error e -> Error e
      | Ok _cond -> (
          match Cmatf.lu_solve_checked a ws b ~context with
          | Error e -> Error e
          | Ok () -> Ok (of_cmatf b)))

(* ------------------------------------------------------------------ *)
(* diagnostics                                                         *)

let shape = function
  | Diag _ -> `Diag
  | Band { kmax; _ } -> `Band kmax
  | Rank1 _ -> `Rank1
  | Dense _ -> `Dense

(* Largest |entry| off the main diagonal — drives Htm.is_lti without a
   dense materialization for structured shapes. *)
let max_offdiag_abs t =
  let n = dim t in
  match t with
  | Diag _ -> 0.0
  | _ ->
      let best = ref 0.0 in
      (match t with
      | Band { kmax; bre; bim; _ } ->
          let w = (2 * kmax) + 1 in
          for i = 0 to n - 1 do
            for d = -kmax to kmax do
              let j = i + d in
              if d <> 0 && j >= 0 && j < n then begin
                let p = (i * w) + d + kmax in
                let m = Float.hypot bre.(p) bim.(p) in
                if m > !best then best := m
              end
            done
          done
      | _ ->
          for i = 0 to n - 1 do
            for k = 0 to n - 1 do
              if i <> k then begin
                let m = Cx.abs (get t i k) in
                if m > !best then best := m
              end
            done
          done);
      !best

let norm_inf t =
  let n = dim t in
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. Cx.abs (get t i k)
    done;
    if !acc > !best then best := !acc
  done;
  !best
