(* Structured truncated HTMs.

   The paper's HTM algebra is closed over a tiny lattice of shapes:
   LTI blocks are diagonal (eq. 12), periodic gains are banded Toeplitz
   (eq. 13), the sampling PFD is rank one (eqs. 19–20), and the
   closed-loop Sherman–Morrison form exists precisely because the
   composition rules keep those shapes. This module is that lattice as
   data: products, sums and feedback stay in the cheapest shape that
   can represent the result and fall back to a flat unboxed dense
   matrix (Cmatf.t) only when no structure survives.

   Storage is split re/im float arrays throughout, so every entry is
   unboxed. Costs:
     diag·diag              O(n)
     diag·band, band·diag   O(n·k)
     band·band              O(n·k₁·k₂), bandwidth k₁+k₂
     anything·rank-one      O(cost of one matvec) — stays rank one
     feedback(diag)         O(n)
     feedback(rank-one)     O(n)  (Sherman–Morrison–Woodbury)
     feedback(band|dense)   dense LU via Cmatf, O(n³) unboxed *)

open Numeric

type t =
  | Diag of { dre : float array; dim_ : float array }
  | Band of { n : int; kmax : int; bre : float array; bim : float array }
      (* general banded (not necessarily Toeplitz): entry (i, j) with
         |j - i| <= kmax stored at [i*(2*kmax+1) + (j - i + kmax)] *)
  | Rank1 of {
      ure : float array;
      uim : float array;
      vre : float array;
      vim : float array;
    } (* u·vᵀ — bilinear, no conjugation, matching l·lᵀ of the sampler *)
  | Dense of Cmatf.t

let dim = function
  | Diag { dre; _ } -> Array.length dre
  | Band { n; _ } -> n
  | Rank1 { ure; _ } -> Array.length ure
  | Dense m -> Cmatf.rows m

(* ------------------------------------------------------------------ *)
(* constructors                                                        *)

let diag_init n f =
  let dre = Array.make n 0.0 and dim_ = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let z = f i in
    dre.(i) <- Cx.re z;
    dim_.(i) <- Cx.im z
  done;
  Diag { dre; dim_ }

let zeros n = Diag { dre = Array.make n 0.0; dim_ = Array.make n 0.0 }

let identity n =
  Diag { dre = Array.make n 1.0; dim_ = Array.make n 0.0 }

(* Toeplitz band from Fourier coefficients: entry (i,j) = coeffs[(i-j)+K],
   truncated to the matrix. *)
let of_toeplitz ~n coeffs =
  if Array.length coeffs mod 2 = 0 then
    invalid_arg "Smat.of_toeplitz: coefficient array must have odd length";
  let kc = Array.length coeffs / 2 in
  let kmax = Stdlib.min kc (Stdlib.max 0 (n - 1)) in
  let w = (2 * kmax) + 1 in
  let bre = Array.make (n * w) 0.0 and bim = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    for d = -kmax to kmax do
      let j = i + d in
      if j >= 0 && j < n then begin
        (* diff = i - j = -d *)
        let z = coeffs.(kc - d) in
        let p = (i * w) + d + kmax in
        bre.(p) <- Cx.re z;
        bim.(p) <- Cx.im z
      end
    done
  done;
  Band { n; kmax; bre; bim }

let rank1_of_arrays ~ure ~uim ~vre ~vim = Rank1 { ure; uim; vre; vim }

(* The sampler HTM (ω₀/2π)·l·lᵀ with l the all-ones vector. *)
let rank1_const n w =
  Rank1
    {
      ure = Array.make n w;
      uim = Array.make n 0.0;
      vre = Array.make n 1.0;
      vim = Array.make n 0.0;
    }

let of_cmatf m =
  if Cmatf.rows m <> Cmatf.cols m then
    invalid_arg "Smat.of_cmatf: matrix not square";
  Dense m

let of_cmat m = of_cmatf (Cmatf.of_cmat m)

(* ------------------------------------------------------------------ *)
(* densification (the only place structure is forgotten)               *)

let densify = function
  | Diag { dre; dim_ } ->
      let n = Array.length dre in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        Cmatf.set m i i (Cx.make dre.(i) dim_.(i))
      done;
      m
  | Band { n; kmax; bre; bim } ->
      let w = (2 * kmax) + 1 in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        for d = -kmax to kmax do
          let j = i + d in
          if j >= 0 && j < n then
            Cmatf.set m i j (Cx.make bre.((i * w) + d + kmax) bim.((i * w) + d + kmax))
        done
      done;
      m
  | Rank1 { ure; uim; vre; vim } ->
      let n = Array.length ure in
      let m = Cmatf.create n n in
      for i = 0 to n - 1 do
        let ar = ure.(i) and ai = uim.(i) in
        for k = 0 to n - 1 do
          let br = vre.(k) and bi = vim.(k) in
          Cmatf.set m i k (Cx.make ((ar *. br) -. (ai *. bi)) ((ar *. bi) +. (ai *. br)))
        done
      done;
      m
  | Dense m -> m

let to_cmat t = Cmatf.to_cmat (densify t)

(* ------------------------------------------------------------------ *)
(* element / column access without densifying                          *)

let get t i k =
  let n = dim t in
  if i < 0 || i >= n || k < 0 || k >= n then
    invalid_arg "Smat.get: index out of bounds";
  match t with
  | Diag { dre; dim_ } -> if i = k then Cx.make dre.(i) dim_.(i) else Cx.zero
  | Band { kmax; bre; bim; _ } ->
      let d = k - i in
      if abs d > kmax then Cx.zero
      else
        let w = (2 * kmax) + 1 in
        Cx.make bre.((i * w) + d + kmax) bim.((i * w) + d + kmax)
  | Rank1 { ure; uim; vre; vim } ->
      Cx.mul (Cx.make ure.(i) uim.(i)) (Cx.make vre.(k) vim.(k))
  | Dense m -> Cmatf.get m i k

let col t k =
  let n = dim t in
  if k < 0 || k >= n then invalid_arg "Smat.col: index out of bounds";
  Cvec.init n (fun i -> get t i k)

(* ------------------------------------------------------------------ *)
(* scaling and negation (shape-preserving)                             *)

let scale_arrays z re im =
  let zr = Cx.re z and zi = Cx.im z in
  let n = Array.length re in
  let re' = Array.make n 0.0 and im' = Array.make n 0.0 in
  for p = 0 to n - 1 do
    let ar = re.(p) and ai = im.(p) in
    re'.(p) <- (zr *. ar) -. (zi *. ai);
    im'.(p) <- (zr *. ai) +. (zi *. ar)
  done;
  (re', im')

let scale z = function
  | Diag { dre; dim_ } ->
      let dre, dim_ = scale_arrays z dre dim_ in
      Diag { dre; dim_ }
  | Band { n; kmax; bre; bim } ->
      let bre, bim = scale_arrays z bre bim in
      Band { n; kmax; bre; bim }
  | Rank1 { ure; uim; vre; vim } ->
      let ure, uim = scale_arrays z ure uim in
      Rank1 { ure; uim; vre = Array.copy vre; vim = Array.copy vim }
  | Dense m ->
      let m = Cmatf.copy m in
      Cmatf.scale_inplace z m;
      m |> of_cmatf

let neg t = scale (Cx.neg Cx.one) t

(* ------------------------------------------------------------------ *)
(* addition                                                            *)

(* Bandwidth above which banded storage loses to flat dense storage:
   (2k+1)·n words vs n·n. *)
let band_too_wide ~n ~kmax = (2 * kmax) + 1 >= n

let to_band_parts = function
  | Diag { dre; dim_ } ->
      let n = Array.length dre in
      (n, 0, dre, dim_)
  | Band { n; kmax; bre; bim } -> (n, kmax, bre, bim)
  | _ -> invalid_arg "Smat.to_band_parts: not banded"

let add_banded a b =
  let n, ka, are, aim = to_band_parts a in
  let _, kb, bre_, bim_ = to_band_parts b in
  let kmax = Stdlib.max ka kb in
  let w = (2 * kmax) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
  let re = Array.make (n * w) 0.0 and im = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    for d = -kmax to kmax do
      let j = i + d in
      if j >= 0 && j < n then begin
        let p = (i * w) + d + kmax in
        if abs d <= ka then begin
          re.(p) <- re.(p) +. are.((i * wa) + d + ka);
          im.(p) <- im.(p) +. aim.((i * wa) + d + ka)
        end;
        if abs d <= kb then begin
          re.(p) <- re.(p) +. bre_.((i * wb) + d + kb);
          im.(p) <- im.(p) +. bim_.((i * wb) + d + kb)
        end
      end
    done
  done;
  if kmax = 0 then Diag { dre = re; dim_ = im } else Band { n; kmax; bre = re; bim = im }

let is_zero_diag = function
  | Diag { dre; dim_ } ->
      let ok = ref true in
      Array.iter (fun x -> if not (Float.equal x 0.0) then ok := false) dre;
      Array.iter (fun x -> if not (Float.equal x 0.0) then ok := false) dim_;
      !ok
  | _ -> false

let add a b =
  if dim a <> dim b then invalid_arg "Smat.add: dimension mismatch";
  if is_zero_diag a then b
  else if is_zero_diag b then a
  else
    match (a, b) with
    | (Diag _ | Band _), (Diag _ | Band _) -> add_banded a b
    | _ ->
        (* rank-one + anything, or dense involved: no closed shape *)
        let da = densify a in
        let db = Cmatf.copy (densify b) in
        Cmatf.axpy Cx.one da db;
        of_cmatf db

let sub a b = add a (neg b)

(* ------------------------------------------------------------------ *)
(* matvec and conjugate-transpose matvec (never densifies)             *)

let mv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  if Array.length xre <> n || Array.length yre <> n then
    invalid_arg "Smat.mv: dimension mismatch";
  (match t with
  | Diag { dre; dim_ } ->
      for i = 0 to n - 1 do
        let ar = dre.(i) and ai = dim_.(i) in
        let br = xre.(i) and bi = xim.(i) in
        yre.(i) <- (ar *. br) -. (ai *. bi);
        yim.(i) <- (ar *. bi) +. (ai *. br)
      done
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      for i = 0 to n - 1 do
        let sr = ref 0.0 and si = ref 0.0 in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = bim.(p) in
          let br = xre.(j) and bi = xim.(j) in
          sr := !sr +. ((ar *. br) -. (ai *. bi));
          si := !si +. ((ar *. bi) +. (ai *. br))
        done;
        yre.(i) <- !sr;
        yim.(i) <- !si
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* y = u·(vᵀx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = ure.(i) and ai = uim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m -> Cmatf.gemv m ~xre ~xim ~yre ~yim);
  if n > 0 && Robust.Inject.fire Robust.Inject.Smat_nan then yre.(0) <- Float.nan

let mhv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  if Array.length xre <> n || Array.length yre <> n then
    invalid_arg "Smat.mhv: dimension mismatch";
  match t with
  | Diag { dre; dim_ } ->
      for i = 0 to n - 1 do
        let ar = dre.(i) and ai = -.dim_.(i) in
        let br = xre.(i) and bi = xim.(i) in
        yre.(i) <- (ar *. br) -. (ai *. bi);
        yim.(i) <- (ar *. bi) +. (ai *. br)
      done
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      Array.fill yre 0 n 0.0;
      Array.fill yim 0 n 0.0;
      for i = 0 to n - 1 do
        let br = xre.(i) and bi = xim.(i) in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = -.bim.(p) in
          yre.(j) <- yre.(j) +. ((ar *. br) -. (ai *. bi));
          yim.(j) <- yim.(j) +. ((ar *. bi) +. (ai *. br))
        done
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* Mᴴ = conj(v)·uᴴ: y = conj(v)·(uᴴx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = ure.(k) and ai = -.uim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = vre.(i) and ai = -.vim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m -> Cmatf.gemv_herm m ~xre ~xim ~yre ~yim

(* ------------------------------------------------------------------ *)
(* product                                                             *)

(* x ∘ d (componentwise complex product of split arrays) *)
let had_mul are aim bre bim =
  let n = Array.length are in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let ar = are.(i) and ai = aim.(i) in
    let br = bre.(i) and bi = bim.(i) in
    re.(i) <- (ar *. br) -. (ai *. bi);
    im.(i) <- (ar *. bi) +. (ai *. br)
  done;
  (re, im)

(* y = Aᵀ·x without conjugation, for rank-one·X products. *)
let mtv t ~xre ~xim ~yre ~yim =
  let n = dim t in
  match t with
  | Diag _ -> mv t ~xre ~xim ~yre ~yim
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      Array.fill yre 0 n 0.0;
      Array.fill yim 0 n 0.0;
      for i = 0 to n - 1 do
        let br = xre.(i) and bi = xim.(i) in
        let jlo = Stdlib.max 0 (i - kmax) and jhi = Stdlib.min (n - 1) (i + kmax) in
        for j = jlo to jhi do
          let p = (i * w) + (j - i) + kmax in
          let ar = bre.(p) and ai = bim.(p) in
          yre.(j) <- yre.(j) +. ((ar *. br) -. (ai *. bi));
          yim.(j) <- yim.(j) +. ((ar *. bi) +. (ai *. br))
        done
      done
  | Rank1 { ure; uim; vre; vim } ->
      (* Mᵀ = v·uᵀ: y = v·(uᵀx) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = ure.(k) and ai = uim.(k) in
        let br = xre.(k) and bi = xim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let tr = !sr and ti = !si in
      for i = 0 to n - 1 do
        let ar = vre.(i) and ai = vim.(i) in
        yre.(i) <- (ar *. tr) -. (ai *. ti);
        yim.(i) <- (ar *. ti) +. (ai *. tr)
      done
  | Dense m ->
      let nn = Cmatf.rows m in
      Array.fill yre 0 nn 0.0;
      Array.fill yim 0 nn 0.0;
      for i = 0 to nn - 1 do
        let br = xre.(i) and bi = xim.(i) in
        for k = 0 to nn - 1 do
          let z = Cmatf.get m i k in
          let ar = Cx.re z and ai = Cx.im z in
          yre.(k) <- yre.(k) +. ((ar *. br) -. (ai *. bi));
          yim.(k) <- yim.(k) +. ((ar *. bi) +. (ai *. br))
        done
      done

let mul_band_band a b =
  let n, ka, are, aim = to_band_parts a in
  let _, kb, bre_, bim_ = to_band_parts b in
  let kmax = Stdlib.min (ka + kb) (n - 1) in
  let w = (2 * kmax) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
  let re = Array.make (n * w) 0.0 and im = Array.make (n * w) 0.0 in
  for i = 0 to n - 1 do
    let llo = Stdlib.max 0 (i - ka) and lhi = Stdlib.min (n - 1) (i + ka) in
    for l = llo to lhi do
      let pa = (i * wa) + (l - i) + ka in
      let ar = are.(pa) and ai = aim.(pa) in
      if not (Float.equal ar 0.0 && Float.equal ai 0.0) then begin
        let jlo = Stdlib.max (Stdlib.max 0 (l - kb)) (i - kmax) in
        let jhi = Stdlib.min (Stdlib.min (n - 1) (l + kb)) (i + kmax) in
        for j = jlo to jhi do
          let pb = (l * wb) + (j - l) + kb in
          let br = bre_.(pb) and bi = bim_.(pb) in
          let p = (i * w) + (j - i) + kmax in
          re.(p) <- re.(p) +. ((ar *. br) -. (ai *. bi));
          im.(p) <- im.(p) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done;
  if kmax = 0 then Diag { dre = re; dim_ = im } else Band { n; kmax; bre = re; bim = im }

let mul a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Smat.mul: dimension mismatch";
  match (a, b) with
  | Diag da, Diag db ->
      let dre, dim_ = had_mul da.dre da.dim_ db.dre db.dim_ in
      Diag { dre; dim_ }
  | _, Rank1 { ure; uim; vre; vim } ->
      (* A·(u·vᵀ) = (A·u)·vᵀ *)
      let yre = Array.make n 0.0 and yim = Array.make n 0.0 in
      mv a ~xre:ure ~xim:uim ~yre ~yim;
      Rank1 { ure = yre; uim = yim; vre = Array.copy vre; vim = Array.copy vim }
  | Rank1 { ure; uim; vre; vim }, _ ->
      (* (u·vᵀ)·B = u·(Bᵀv)ᵀ *)
      let yre = Array.make n 0.0 and yim = Array.make n 0.0 in
      mtv b ~xre:vre ~xim:vim ~yre ~yim;
      Rank1 { ure = Array.copy ure; uim = Array.copy uim; vre = yre; vim = yim }
  | (Diag _ | Band _), (Diag _ | Band _) ->
      let _, ka, _, _ = to_band_parts a and _, kb, _, _ = to_band_parts b in
      if band_too_wide ~n ~kmax:(Stdlib.min (ka + kb) (n - 1)) && n > 1 then begin
        let dst = Cmatf.create n n in
        Cmatf.gemm ~dst (densify a) (densify b);
        of_cmatf dst
      end
      else mul_band_band a b
  | Dense da, Diag { dre; dim_ } ->
      (* column scaling, O(n²) *)
      let dst = Cmatf.create n n in
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          let z = Cmatf.get da i k in
          Cmatf.set dst i k (Cx.mul z (Cx.make dre.(k) dim_.(k)))
        done
      done;
      of_cmatf dst
  | Diag { dre; dim_ }, Dense db ->
      (* row scaling, O(n²) *)
      let dst = Cmatf.create n n in
      for i = 0 to n - 1 do
        let d = Cx.make dre.(i) dim_.(i) in
        for k = 0 to n - 1 do
          Cmatf.set dst i k (Cx.mul d (Cmatf.get db i k))
        done
      done;
      of_cmatf dst
  | _ ->
      let dst = Cmatf.create n n in
      Cmatf.gemm ~dst (densify a) (densify b);
      of_cmatf dst

(* ------------------------------------------------------------------ *)
(* feedback: (I + G)⁻¹·G                                               *)

let feedback g =
  let n = dim g in
  match g with
  | Diag { dre; dim_ } ->
      diag_init n (fun i ->
          let d = Cx.make dre.(i) dim_.(i) in
          let denom = Cx.add Cx.one d in
          (* a zero pivot here is exactly a zero pivot of the dense LU *)
          if Float.equal (Cx.abs denom) 0.0 then raise Lu.Singular;
          Cx.div d denom)
  | Rank1 { ure; uim; vre; vim } ->
      (* Sherman–Morrison: (I + u·vᵀ)⁻¹·u·vᵀ = u·vᵀ / (1 + vᵀu) *)
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = ure.(k) and bi = uim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let denom = Cx.add Cx.one (Cx.make !sr !si) in
      if Float.equal (Cx.abs denom) 0.0 then raise Lu.Singular;
      let z = Cx.inv denom in
      let ure', uim' = scale_arrays z ure uim in
      Rank1 { ure = ure'; uim = uim'; vre = Array.copy vre; vim = Array.copy vim }
  | Band _ | Dense _ ->
      let gm = densify g in
      let a = Cmatf.copy gm in
      Cmatf.add_ident a;
      let b = Cmatf.copy gm in
      let ws = Cmatf.lu_ws n in
      Cmatf.lu_decompose_inplace a ws;
      Cmatf.lu_solve_inplace a ws b;
      of_cmatf b

(* ------------------------------------------------------------------ *)
(* finiteness and guarded feedback                                     *)

let all_finite2 re im =
  let len = Array.length re in
  let rec go p =
    p >= len || (Float.is_finite re.(p) && Float.is_finite im.(p) && go (p + 1))
  in
  go 0

let is_finite = function
  | Diag { dre; dim_ } -> all_finite2 dre dim_
  | Band { bre; bim; _ } -> all_finite2 bre bim
  | Rank1 { ure; uim; vre; vim } -> all_finite2 ure uim && all_finite2 vre vim
  | Dense m -> Cmatf.is_finite m

(* Result-returning feedback. The closed-form shapes guard their scalar
   denominators with the conditioning proxy (1 + |d|)/|1 + d| — the
   exact κ of the 1×1 (or rank-one deflated) subproblem the closed form
   solves — against Config.smw_max_cond; the banded/dense shapes go
   through the checked LU with its Hager estimate. *)
let feedback_checked ?(context = "Smat.feedback") g =
  let open Robust in
  let n = dim g in
  let finite_result t =
    if is_finite t then Ok t
    else Error (Pllscope_error.Non_finite { where = context })
  in
  match g with
  | Diag { dre; dim_ } ->
      let worst = ref 1.0 and exact = ref false in
      for i = 0 to n - 1 do
        let d = Cx.make dre.(i) dim_.(i) in
        let dm = Cx.abs (Cx.add Cx.one d) in
        if Float.equal dm 0.0 then exact := true
        else begin
          let proxy = (1.0 +. Cx.abs d) /. dm in
          if proxy > !worst then worst := proxy
        end
      done;
      if !exact then
        Error (Pllscope_error.Singular { cond_est = infinity; context })
      else if !worst > Config.get_smw_max_cond () then
        Error (Pllscope_error.Singular { cond_est = !worst; context })
      else finite_result (feedback g)
  | Rank1 { ure; uim; vre; vim } ->
      let sr = ref 0.0 and si = ref 0.0 in
      for k = 0 to n - 1 do
        let ar = vre.(k) and ai = vim.(k) in
        let br = ure.(k) and bi = uim.(k) in
        sr := !sr +. ((ar *. br) -. (ai *. bi));
        si := !si +. ((ar *. bi) +. (ai *. br))
      done;
      let vtu = Cx.make !sr !si in
      let dm = Cx.abs (Cx.add Cx.one vtu) in
      if Float.equal dm 0.0 then
        Error (Pllscope_error.Singular { cond_est = infinity; context })
      else begin
        let proxy = (1.0 +. Cx.abs vtu) /. dm in
        if proxy > Config.get_smw_max_cond () then
          Error (Pllscope_error.Singular { cond_est = proxy; context })
        else finite_result (feedback g)
      end
  | Band _ | Dense _ -> (
      let gm = densify g in
      let a = Cmatf.copy gm in
      Cmatf.add_ident a;
      let b = Cmatf.copy gm in
      let ws = Cmatf.lu_ws n in
      match Cmatf.lu_decompose_checked ~context a ws with
      | Error e -> Error e
      | Ok _cond -> (
          match Cmatf.lu_solve_checked a ws b ~context with
          | Error e -> Error e
          | Ok () -> Ok (of_cmatf b)))

(* ------------------------------------------------------------------ *)
(* diagnostics                                                         *)

let shape = function
  | Diag _ -> `Diag
  | Band { kmax; _ } -> `Band kmax
  | Rank1 _ -> `Rank1
  | Dense _ -> `Dense

(* Largest |entry| off the main diagonal — drives Htm.is_lti without a
   dense materialization for structured shapes. *)
let max_offdiag_abs t =
  let n = dim t in
  match t with
  | Diag _ -> 0.0
  | _ ->
      let best = ref 0.0 in
      (match t with
      | Band { kmax; bre; bim; _ } ->
          let w = (2 * kmax) + 1 in
          for i = 0 to n - 1 do
            for d = -kmax to kmax do
              let j = i + d in
              if d <> 0 && j >= 0 && j < n then begin
                let p = (i * w) + d + kmax in
                let m = Float.hypot bre.(p) bim.(p) in
                if m > !best then best := m
              end
            done
          done
      | _ ->
          for i = 0 to n - 1 do
            for k = 0 to n - 1 do
              if i <> k then begin
                let m = Cx.abs (get t i k) in
                if m > !best then best := m
              end
            done
          done);
      !best

let norm_inf t =
  let n = dim t in
  let best = ref 0.0 in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. Cx.abs (get t i k)
    done;
    if !acc > !best then best := !acc
  done;
  !best

(* ------------------------------------------------------------------ *)
(* plan/execute support: static shape algebra, preallocated containers *)
(* and in-place kernels. [Plan] compiles an HTM tree once, allocating  *)
(* one container per node from the static shapes below, then streams   *)
(* s-points through the [Into] kernels — the same composition rules as *)
(* the pure operations above, writing into caller-owned storage        *)
(* instead of fresh arrays.                                            *)

type shape_t = [ `Diag | `Band of int | `Rank1 | `Dense ]

let create n (sh : shape_t) =
  if n < 0 then invalid_arg "Smat.create: negative dimension";
  match sh with
  | `Diag -> Diag { dre = Array.make n 0.0; dim_ = Array.make n 0.0 }
  | `Band kmax ->
      if kmax < 0 then invalid_arg "Smat.create: negative bandwidth";
      let w = (2 * kmax) + 1 in
      Band { n; kmax; bre = Array.make (n * w) 0.0; bim = Array.make (n * w) 0.0 }
  | `Rank1 ->
      Rank1
        {
          ure = Array.make n 0.0;
          uim = Array.make n 0.0;
          vre = Array.make n 0.0;
          vim = Array.make n 0.0;
        }
  | `Dense -> Dense (Cmatf.create n n)

let diag_of_arrays ~dre ~dim_ =
  if Array.length dre <> Array.length dim_ then
    invalid_arg "Smat.diag_of_arrays: length mismatch";
  Diag { dre; dim_ }

let band_of_arrays ~n ~kmax ~bre ~bim =
  let w = (2 * kmax) + 1 in
  if kmax < 0 || Array.length bre <> n * w || Array.length bim <> n * w then
    invalid_arg "Smat.band_of_arrays: storage/bandwidth mismatch";
  Band { n; kmax; bre; bim }

(* Static composition rules, mirroring the value-level dispatch of
   [add]/[mul]/[feedback] decision for decision — with one deliberate
   exception: [add] short-circuits on an exactly-zero diagonal operand
   at runtime (returning the other operand's shape); the static rule
   cannot see values, so it returns the no-shortcut shape. The planned
   result is then equal to the pure one up to the rounding of adding
   exact zeros. *)

let band_k : shape_t -> int = function
  | `Diag -> 0
  | `Band k -> k
  | _ -> invalid_arg "Smat.band_k: not banded"

let shape_add (a : shape_t) (b : shape_t) : shape_t =
  match (a, b) with
  | (`Diag | `Band _), (`Diag | `Band _) ->
      let k = Stdlib.max (band_k a) (band_k b) in
      if k = 0 then `Diag else `Band k
  | _ -> `Dense

let shape_mul ~n (a : shape_t) (b : shape_t) : shape_t =
  match (a, b) with
  | `Diag, `Diag -> `Diag
  | _, `Rank1 | `Rank1, _ -> `Rank1
  | (`Diag | `Band _), (`Diag | `Band _) ->
      let k = Stdlib.min (band_k a + band_k b) (n - 1) in
      if band_too_wide ~n ~kmax:k && n > 1 then `Dense
      else if k = 0 then `Diag
      else `Band k
  | `Dense, `Diag | `Diag, `Dense -> `Dense
  | _ -> `Dense

let shape_feedback : shape_t -> shape_t = function
  | `Diag -> `Diag
  | `Rank1 -> `Rank1
  | `Band _ | `Dense -> `Dense

(* Which operands of an [Into.mul] with these shapes must be densified
   into caller-provided scratch ([da], [db])? Mirrors [Into.mul]'s
   dispatch: only the gemm paths need dense operands. *)
let mul_scratch ~n (a : shape_t) (b : shape_t) =
  match (a, b) with
  | `Diag, `Diag -> (false, false)
  | _, `Rank1 | `Rank1, _ -> (false, false)
  | (`Diag | `Band _), (`Diag | `Band _) ->
      let k = Stdlib.min (band_k a + band_k b) (n - 1) in
      if band_too_wide ~n ~kmax:k && n > 1 then (true, true) else (false, false)
  | `Dense, `Diag | `Diag, `Dense -> (false, false)
  | _ -> (a <> `Dense, b <> `Dense)

(* dst += sgn·t on the raw dense storage (dst must be n×n). *)
let axpy_sgn_into t sgn m =
  let n = dim t in
  let mre, mim = Cmatf.raw m in
  let nc = Cmatf.cols m in
  match t with
  | Diag { dre; dim_ } ->
      for i = 0 to n - 1 do
        let p = (i * nc) + i in
        mre.(p) <- mre.(p) +. (sgn *. dre.(i));
        mim.(p) <- mim.(p) +. (sgn *. dim_.(i))
      done
  | Band { kmax; bre; bim; _ } ->
      let w = (2 * kmax) + 1 in
      for i = 0 to n - 1 do
        for d = Stdlib.max (-kmax) (-i) to Stdlib.min kmax (n - 1 - i) do
          let j = i + d in
          let p = (i * w) + d + kmax in
          mre.((i * nc) + j) <- mre.((i * nc) + j) +. (sgn *. bre.(p));
          mim.((i * nc) + j) <- mim.((i * nc) + j) +. (sgn *. bim.(p))
        done
      done
  | Rank1 { ure; uim; vre; vim } ->
      for i = 0 to n - 1 do
        let ar = ure.(i) and ai = uim.(i) in
        for k = 0 to n - 1 do
          let br = vre.(k) and bi = vim.(k) in
          let p = (i * nc) + k in
          mre.(p) <- mre.(p) +. (sgn *. ((ar *. br) -. (ai *. bi)));
          mim.(p) <- mim.(p) +. (sgn *. ((ar *. bi) +. (ai *. br)))
        done
      done
  | Dense src ->
      let sre, sim = Cmatf.raw src in
      for p = 0 to (n * nc) - 1 do
        mre.(p) <- mre.(p) +. (sgn *. sre.(p));
        mim.(p) <- mim.(p) +. (sgn *. sim.(p))
      done

let densify_into t m =
  if Cmatf.rows m <> dim t || Cmatf.cols m <> dim t then
    invalid_arg "Smat.densify_into: dimension mismatch";
  Cmatf.fill_zero m;
  axpy_sgn_into t 1.0 m

(* Complex division into split scalars, mirroring [Complex.div]
   (Smith's algorithm) so closed-form feedback keeps the exact rounding
   of the pure path. Returns (re, im) as a pair of floats — local use
   only, immediately destructured (no heap escape under flambda, and a
   single short-lived block otherwise). *)
let div_parts nr ni dr di =
  if Float.abs dr >= Float.abs di then begin
    let r = di /. dr in
    let d = dr +. (r *. di) in
    ((nr +. (r *. ni)) /. d, (ni -. (r *. nr)) /. d)
  end
  else begin
    let r = dr /. di in
    let d = di +. (r *. dr) in
    (((r *. nr) +. ni) /. d, ((r *. ni) -. nr) /. d)
  end

(* |re + i·im| mirroring [Complex.norm]'s overflow-safe scaling, so the
   checked-feedback conditioning proxies agree with [feedback_checked]
   to the last ulp. *)
let cnorm re im =
  let r = Float.abs re and i = Float.abs im in
  if Float.equal r 0.0 then i
  else if Float.equal i 0.0 then r
  else if r >= i then
    let q = i /. r in
    r *. Stdlib.sqrt (1.0 +. (q *. q))
  else
    let q = r /. i in
    i *. Stdlib.sqrt (1.0 +. (q *. q))

module Into = struct
  (* All kernels write into [dst]'s storage. [dst] must have exactly
     the shape the static rules above assign to the operation, must not
     alias an operand, and every cell of it is overwritten (containers
     can be reused point after point with no clearing in between). *)

  let scale_pair_into z src_re src_im dst_re dst_im =
    let zr = Cx.re z and zi = Cx.im z in
    for p = 0 to Array.length src_re - 1 do
      let ar = src_re.(p) and ai = src_im.(p) in
      dst_re.(p) <- (zr *. ar) -. (zi *. ai);
      dst_im.(p) <- (zr *. ai) +. (zi *. ar)
    done

  let scale ~dst z t =
    match (dst, t) with
    | Diag d, Diag s -> scale_pair_into z s.dre s.dim_ d.dre d.dim_
    | Band d, Band s when d.kmax = s.kmax ->
        scale_pair_into z s.bre s.bim d.bre d.bim
    | Rank1 d, Rank1 s ->
        scale_pair_into z s.ure s.uim d.ure d.uim;
        Array.blit s.vre 0 d.vre 0 (Array.length s.vre);
        Array.blit s.vim 0 d.vim 0 (Array.length s.vim)
    | Dense d, Dense s ->
        Cmatf.blit ~src:s ~dst:d;
        Cmatf.scale_inplace z d
    | _ -> invalid_arg "Smat.Into.scale: dst shape mismatch"

  let add ~dst ?(sub = false) a b =
    let sgn = if sub then -1.0 else 1.0 in
    match dst with
    | Diag _ | Band _ ->
        let n, kd, dre, dim_ = to_band_parts dst in
        let _, ka, are, aim = to_band_parts a in
        let _, kb, bre_, bim_ = to_band_parts b in
        let w = (2 * kd) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
        Array.fill dre 0 (n * w) 0.0;
        Array.fill dim_ 0 (n * w) 0.0;
        for i = 0 to n - 1 do
          for d = -kd to kd do
            let j = i + d in
            if j >= 0 && j < n then begin
              let p = (i * w) + d + kd in
              if abs d <= ka then begin
                dre.(p) <- dre.(p) +. are.((i * wa) + d + ka);
                dim_.(p) <- dim_.(p) +. aim.((i * wa) + d + ka)
              end;
              if abs d <= kb then begin
                dre.(p) <- dre.(p) +. (sgn *. bre_.((i * wb) + d + kb));
                dim_.(p) <- dim_.(p) +. (sgn *. bim_.((i * wb) + d + kb))
              end
            end
          done
        done
    | Dense m ->
        Cmatf.fill_zero m;
        axpy_sgn_into a 1.0 m;
        axpy_sgn_into b sgn m
    | Rank1 _ -> invalid_arg "Smat.Into.add: rank-one destination"

  let gemm_operand t scratch =
    match t with
    | Dense m -> m
    | _ -> (
        match scratch with
        | Some m ->
            densify_into t m;
            m
        | None -> invalid_arg "Smat.Into.mul: missing densification scratch")

  let mul ~dst ?da ?db a b =
    let n = dim a in
    match (dst, a, b) with
    | Diag d, Diag x, Diag y ->
        for i = 0 to n - 1 do
          let ar = x.dre.(i) and ai = x.dim_.(i) in
          let br = y.dre.(i) and bi = y.dim_.(i) in
          d.dre.(i) <- (ar *. br) -. (ai *. bi);
          d.dim_.(i) <- (ar *. bi) +. (ai *. br)
        done
    | Rank1 d, _, Rank1 r ->
        (* A·(u·vᵀ) = (A·u)·vᵀ *)
        mv a ~xre:r.ure ~xim:r.uim ~yre:d.ure ~yim:d.uim;
        Array.blit r.vre 0 d.vre 0 n;
        Array.blit r.vim 0 d.vim 0 n
    | Rank1 d, Rank1 r, _ ->
        (* (u·vᵀ)·B = u·(Bᵀv)ᵀ *)
        mtv b ~xre:r.vre ~xim:r.vim ~yre:d.vre ~yim:d.vim;
        Array.blit r.ure 0 d.ure 0 n;
        Array.blit r.uim 0 d.uim 0 n
    | (Diag _ | Band _), (Diag _ | Band _), (Diag _ | Band _) ->
        let _, kd, dre, dim_ = to_band_parts dst in
        let _, ka, are, aim = to_band_parts a in
        let _, kb, bre_, bim_ = to_band_parts b in
        let w = (2 * kd) + 1 and wa = (2 * ka) + 1 and wb = (2 * kb) + 1 in
        Array.fill dre 0 (n * w) 0.0;
        Array.fill dim_ 0 (n * w) 0.0;
        for i = 0 to n - 1 do
          let llo = Stdlib.max 0 (i - ka) and lhi = Stdlib.min (n - 1) (i + ka) in
          for l = llo to lhi do
            let pa = (i * wa) + (l - i) + ka in
            let ar = are.(pa) and ai = aim.(pa) in
            if not (Float.equal ar 0.0 && Float.equal ai 0.0) then begin
              let jlo = Stdlib.max (Stdlib.max 0 (l - kb)) (i - kd) in
              let jhi = Stdlib.min (Stdlib.min (n - 1) (l + kb)) (i + kd) in
              for j = jlo to jhi do
                let pb = (l * wb) + (j - l) + kb in
                let br = bre_.(pb) and bi = bim_.(pb) in
                let p = (i * w) + (j - i) + kd in
                dre.(p) <- dre.(p) +. ((ar *. br) -. (ai *. bi));
                dim_.(p) <- dim_.(p) +. ((ar *. bi) +. (ai *. br))
              done
            end
          done
        done
    | Dense d, Dense x, Diag y ->
        (* column scaling *)
        let dr, di = Cmatf.raw d and xr, xi = Cmatf.raw x in
        for i = 0 to n - 1 do
          for k = 0 to n - 1 do
            let p = (i * n) + k in
            let ar = xr.(p) and ai = xi.(p) in
            let br = y.dre.(k) and bi = y.dim_.(k) in
            dr.(p) <- (ar *. br) -. (ai *. bi);
            di.(p) <- (ar *. bi) +. (ai *. br)
          done
        done
    | Dense d, Diag x, Dense y ->
        (* row scaling *)
        let dr, di = Cmatf.raw d and yr, yi = Cmatf.raw y in
        for i = 0 to n - 1 do
          let ar = x.dre.(i) and ai = x.dim_.(i) in
          for k = 0 to n - 1 do
            let p = (i * n) + k in
            let br = yr.(p) and bi = yi.(p) in
            dr.(p) <- (ar *. br) -. (ai *. bi);
            di.(p) <- (ar *. bi) +. (ai *. br)
          done
        done
    | Dense d, _, _ ->
        Cmatf.gemm ~dst:d (gemm_operand a da) (gemm_operand b db)
    | _ -> invalid_arg "Smat.Into.mul: dst shape mismatch"

  let feedback ~dst ?scratch ?denom_override ~checked ~context g =
    let open Robust in
    let n = dim g in
    let max_cond = if checked then Config.get_smw_max_cond () else infinity in
    match (dst, g) with
    | Diag d, Diag x ->
        let guard_err = ref None in
        if checked then begin
          let worst = ref 1.0 and exact = ref false in
          for i = 0 to n - 1 do
            let dr = x.dre.(i) and di = x.dim_.(i) in
            let dm = cnorm (1.0 +. dr) di in
            if Float.equal dm 0.0 then exact := true
            else begin
              let proxy = (1.0 +. cnorm dr di) /. dm in
              if proxy > !worst then worst := proxy
            end
          done;
          (* allocates only when the guard is about to fail — the error
             payload is the failure path, not per-point work *)
          (if !exact then
             guard_err :=
               Some (Pllscope_error.Singular { cond_est = infinity; context })
           else if !worst > max_cond then
             guard_err :=
               Some (Pllscope_error.Singular { cond_est = !worst; context }))
          [@lint.allow "hot-alloc"]
        end;
        (match !guard_err with
        | Some e -> Error e
        | None ->
            for i = 0 to n - 1 do
              let dr = x.dre.(i) and di = x.dim_.(i) in
              let er = 1.0 +. dr in
              if Float.equal (cnorm er di) 0.0 then raise Lu.Singular;
              let qr, qi = div_parts dr di er di in
              d.dre.(i) <- qr;
              d.dim_.(i) <- qi
            done;
            if checked && not (all_finite2 d.dre d.dim_) then
              Error (Pllscope_error.Non_finite { where = context })
            else Ok ())
    | Rank1 d, Rank1 r ->
        let sr = ref 0.0 and si = ref 0.0 in
        for k = 0 to n - 1 do
          let ar = r.vre.(k) and ai = r.vim.(k) in
          let br = r.ure.(k) and bi = r.uim.(k) in
          sr := !sr +. ((ar *. br) -. (ai *. bi));
          si := !si +. ((ar *. bi) +. (ai *. br))
        done;
        (* two scalar matches, not one returning a pair: this path is in
           the hot set and the intermediate tuple would allocate *)
        let lr = match denom_override with Some l -> Cx.re l | None -> !sr in
        let li = match denom_override with Some l -> Cx.im l | None -> !si in
        let er = 1.0 +. lr and ei = li in
        let dm = cnorm er ei in
        if Float.equal dm 0.0 then
          if checked then
            Error (Pllscope_error.Singular { cond_est = infinity; context })
          else raise Lu.Singular
        else begin
          let proxy = (1.0 +. cnorm lr li) /. dm in
          if checked && proxy > max_cond then
            Error (Pllscope_error.Singular { cond_est = proxy; context })
          else begin
            let zr, zi = div_parts 1.0 0.0 er ei in
            for i = 0 to n - 1 do
              let ar = r.ure.(i) and ai = r.uim.(i) in
              d.ure.(i) <- (zr *. ar) -. (zi *. ai);
              d.uim.(i) <- (zr *. ai) +. (zi *. ar)
            done;
            Array.blit r.vre 0 d.vre 0 n;
            Array.blit r.vim 0 d.vim 0 n;
            if
              checked
              && not (all_finite2 d.ure d.uim && all_finite2 d.vre d.vim)
            then Error (Pllscope_error.Non_finite { where = context })
            else Ok ()
          end
        end
    | Dense b, (Band _ | Dense _) -> (
        let a, ws =
          match scratch with
          | Some s -> s
          | None -> invalid_arg "Smat.Into.feedback: missing dense scratch"
        in
        densify_into g b;
        Cmatf.blit ~src:b ~dst:a;
        Cmatf.add_ident a;
        if not checked then begin
          Cmatf.lu_decompose_inplace a ws;
          Cmatf.lu_solve_inplace a ws b;
          Ok ()
        end
        else
          match Cmatf.lu_decompose_checked ~context a ws with
          | Error e -> Error e
          | Ok _cond -> Cmatf.lu_solve_checked a ws b ~context)
    | _ -> invalid_arg "Smat.Into.feedback: dst shape mismatch"
end
