(* Two-phase plan/execute evaluation of HTM composition trees.

   [make] walks the tree once per (ctx, tree) pair: it runs the static
   shape rules of [Smat] over the composition, allocates one container
   per dynamic node plus every densification scratch and LU workspace a
   point evaluation can touch, hoists s-independent subtrees (periodic
   gains, the sampler, identity/zero and their feedback-free
   compositions) into plan-time constants, and precompiles LTI leaves
   into harmonic shift tables (split-coefficient rational forms for
   [Lti_rat], which evaluate without boxing). [eval] then streams one
   s-point through the schedule entirely in place: after the first
   point, a grid evaluation allocates nothing on the OCaml heap beyond
   the caller-requested output.

   Equivalence contract: a planned evaluation computes the same
   composition as [Htm.structured] with the same kernels ([Smat.Into]
   mirrors the pure operations), so planned results match the dense
   oracle [Htm.to_matrix_dense] to the same rounding as the per-point
   structured path — the differential suite in test/test_grid.ml pins
   this. The one structural difference is documented in [Smat]: the
   static shape rules cannot apply the exactly-zero-diagonal [add]
   shortcut, so a plan may carry a sum higher in the shape lattice
   (same values).

   Concurrency contract: a plan is a mutable workspace — every [eval]
   overwrites every container. One plan must be owned by one domain
   lane at a time; grid sweeps distribute points with
   [Parallel.Sweep.grid_local], which instantiates one plan per lane
   (see the ownership rule in sweep.mli). *)

open Numeric

type ctx = Htm_expr.ctx

(* Preallocated storage of one dynamic node, with a zero-copy [Smat.t]
   view over it. The arrays double as fill targets for leaf nodes and
   as [Smat.Into] destinations for interior nodes. *)
type slot = {
  view : Smat.t;
  sh : Smat.shape_t;
  are : float array;  (* diag d / band b / rank1 u, re part *)
  aim : float array;
  bre : float array;  (* rank1 v only *)
  bim : float array;
  dense : Cmatf.t option;
}

let make_slot n (sh : Smat.shape_t) =
  let empty = [||] in
  match sh with
  | `Diag ->
      let are = Array.make n 0.0 and aim = Array.make n 0.0 in
      {
        view = Smat.diag_of_arrays ~dre:are ~dim_:aim;
        sh;
        are;
        aim;
        bre = empty;
        bim = empty;
        dense = None;
      }
  | `Band kmax ->
      let w = (2 * kmax) + 1 in
      let are = Array.make (n * w) 0.0 and aim = Array.make (n * w) 0.0 in
      {
        view = Smat.band_of_arrays ~n ~kmax ~bre:are ~bim:aim;
        sh;
        are;
        aim;
        bre = empty;
        bim = empty;
        dense = None;
      }
  | `Rank1 ->
      let are = Array.make n 0.0 and aim = Array.make n 0.0 in
      let bre = Array.make n 0.0 and bim = Array.make n 0.0 in
      {
        view = Smat.rank1_of_arrays ~ure:are ~uim:aim ~vre:bre ~vim:bim;
        sh;
        are;
        aim;
        bre;
        bim;
        dense = None;
      }
  | `Dense ->
      let m = Cmatf.create n n in
      {
        view = Smat.of_cmatf m;
        sh;
        are = empty;
        aim = empty;
        bre = empty;
        bim = empty;
        dense = Some m;
      }

type node = Static of Smat.t | Dyn of dyn

and dyn = { slot : slot; op : op }

and op =
  | Fill_lti of (Cx.t -> Cx.t) * float array  (* harmonic shifts m·ω₀ *)
  | Fill_rat of Rat.split * float array
  | Fill_custom of (ctx -> Cx.t -> Cmat.t)
  | Kscale of Cx.t * node
  | Kadd of bool (* subtract *) * node * node
  | Kmul of node * node * Cmatf.t option * Cmatf.t option
  | Kfb of node * (Cmatf.t * Cmatf.lu_ws) option * bool (* outermost loop *)

type t = {
  ctx : ctx;
  expr : Htm_expr.t;
  root : node;
  lambda : (Cx.t -> Cx.t) option;
  static_root : Cmatf.t option;  (* densified root when fully static *)
}

let ctx t = t.ctx
let dim t = Htm_expr.dim t.ctx

let shape_of_node = function Static m -> Smat.shape m | Dyn d -> d.slot.sh

let root_shape t = shape_of_node t.root

(* s-independent and feedback-free: safe to realize once at plan time
   with the pure kernels. Feedback is excluded even over constant
   subtrees so its per-point guard semantics (checked realizations,
   strict-mode refusal) stay identical to the per-point path. *)
let rec is_static : Htm_expr.t -> bool = function
  | Periodic_gain _ | Sampler | Identity | Zero -> true
  | Scale (_, g) -> is_static g
  | Series (a, b) | Parallel (a, b) | Sub (a, b) -> is_static a && is_static b
  | Lti _ | Lti_rat _ | Custom _ | Feedback _ -> false

let shifts c =
  Array.init (Htm_expr.dim c) (fun i ->
      float_of_int (Htm_expr.harmonic_of_index c i) *. c.Htm_expr.omega0)

let rec compile c ~outermost (t : Htm_expr.t) =
  if is_static t then
    (* the value of a static subtree does not depend on s *)
    Static (Htm_expr.eval_with ~fb:Smat.feedback c t Cx.zero)
  else begin
    let n = Htm_expr.dim c in
    let dyn sh op = Dyn { slot = make_slot n sh; op } in
    match t with
    | Lti h -> dyn `Diag (Fill_lti (h, shifts c))
    | Lti_rat r -> dyn `Diag (Fill_rat (Rat.split r, shifts c))
    | Custom f -> dyn `Dense (Fill_custom f)
    | Scale (z, g) ->
        let gn = compile c ~outermost:false g in
        dyn (shape_of_node gn) (Kscale (z, gn))
    | Series (a, b) ->
        let an = compile c ~outermost:false a in
        let bn = compile c ~outermost:false b in
        let sa = shape_of_node an and sb = shape_of_node bn in
        let need_da, need_db = Smat.mul_scratch ~n sa sb in
        let scratch need = if need then Some (Cmatf.create n n) else None in
        dyn (Smat.shape_mul ~n sa sb)
          (Kmul (an, bn, scratch need_da, scratch need_db))
    | Parallel (a, b) ->
        let an = compile c ~outermost:false a in
        let bn = compile c ~outermost:false b in
        dyn
          (Smat.shape_add (shape_of_node an) (shape_of_node bn))
          (Kadd (false, an, bn))
    | Sub (a, b) ->
        let an = compile c ~outermost:false a in
        let bn = compile c ~outermost:false b in
        dyn
          (Smat.shape_add (shape_of_node an) (shape_of_node bn))
          (Kadd (true, an, bn))
    | Feedback g ->
        let gn = compile c ~outermost:false g in
        let sh = Smat.shape_feedback (shape_of_node gn) in
        let scratch =
          match sh with
          | `Dense -> Some (Cmatf.create n n, Cmatf.lu_ws n)
          | _ -> None
        in
        dyn sh (Kfb (gn, scratch, outermost))
    | Periodic_gain _ | Sampler | Identity | Zero -> assert false
  end

let make ?lambda c expr =
  let root = compile c ~outermost:true expr in
  let static_root =
    match root with Static m -> Some (Smat.densify m) | Dyn _ -> None
  in
  { ctx = c; expr; root; lambda; static_root }

(* ------------------------------------------------------------------ *)
(* execution                                                           *)

exception Guard of Robust.Pllscope_error.t

let rec exec plan ~checked s node =
  match node with
  | Static m -> m
  | Dyn { slot; op } ->
      (match op with
      | Fill_lti (h, shifts) ->
          let sre = Cx.re s and sim = Cx.im s in
          let dre = slot.are and dim_ = slot.aim in
          for i = 0 to Array.length shifts - 1 do
            let z = h (Cx.make sre (sim +. shifts.(i))) in
            dre.(i) <- Cx.re z;
            dim_.(i) <- Cx.im z
          done
      | Fill_rat (sp, shifts) ->
          let sre = Cx.re s and sim = Cx.im s in
          let dre = slot.are and dim_ = slot.aim in
          for i = 0 to Array.length shifts - 1 do
            Rat.eval_into sp ~re:sre ~im:(sim +. shifts.(i)) ~out_re:dre
              ~out_im:dim_ ~idx:i
          done
      | Fill_custom f ->
          let m = f plan.ctx s in
          let d = Option.get slot.dense in
          let n = Cmat.rows m in
          for i = 0 to n - 1 do
            for k = 0 to n - 1 do
              Cmatf.set d i k (Cmat.get m i k)
            done
          done
      | Kscale (z, g) ->
          let gv = exec plan ~checked s g in
          Smat.Into.scale ~dst:slot.view z gv
      | Kadd (sub, a, b) ->
          let av = exec plan ~checked s a in
          let bv = exec plan ~checked s b in
          Smat.Into.add ~dst:slot.view ~sub av bv
      | Kmul (a, b, da, db) ->
          let av = exec plan ~checked s a in
          let bv = exec plan ~checked s b in
          Smat.Into.mul ~dst:slot.view ?da ?db av bv
      | Kfb (g, scratch, outermost) -> (
          let gv = exec plan ~checked s g in
          let denom_override =
            if outermost then Option.map (fun lam -> lam s) plan.lambda
            else None
          in
          match
            Smat.Into.feedback ~dst:slot.view ?scratch ?denom_override ~checked
              ~context:"Plan.feedback" gv
          with
          | Ok () -> ()
          | Error e -> raise (Guard e)));
      slot.view

(* Injection site: poison the realized root of one planned point (the
   plan-layer sibling of [Smat]'s smat-nan site). Static roots hold
   shared immutable values and are skipped. *)
let poison_root plan =
  if Robust.Inject.fire Robust.Inject.Grid_plan_nan then
    match plan.root with
    | Static _ -> ()
    | Dyn { slot; _ } -> (
        match slot.dense with
        | Some m ->
            let re, _ = Cmatf.raw m in
            if Array.length re > 0 then re.(0) <- Float.nan
        | None -> if Array.length slot.are > 0 then slot.are.(0) <- Float.nan)

(* Per-point guard/fallback driver, mirroring
   [Htm.structured_or_fallback]: guards off → unchecked kernels;
   guards on → checked kernels plus a root finiteness scan, degrading
   to the dense oracle (counted in [Robust.Stats]) unless strict mode
   refuses. *)
let eval_view plan s =
  if not (Robust.Config.guards_enabled ()) then begin
    let v = exec plan ~checked:false s plan.root in
    poison_root plan;
    `Structured v
  end
  else begin
    let checked =
      match exec plan ~checked:true s plan.root with
      | v ->
          poison_root plan;
          if Smat.is_finite v then Ok v
          else Error (Robust.Pllscope_error.Non_finite { where = "Plan.eval" })
      | exception Guard e -> Error e
    in
    match checked with
    | Ok v -> `Structured v
    | Error e ->
        if Robust.Config.is_strict () then Robust.Pllscope_error.raise_ e
        else begin
          Robust.Stats.record_fallback e;
          (* the one sanctioned dense-oracle call outside oracle code:
             non-strict mode degrades here and records that it did *)
          `Dense
            (Htm_expr.to_matrix_dense plan.ctx plan.expr s
            [@lint.allow "oracle-only"])
        end
  end

let eval plan s =
  match eval_view plan s with `Structured v -> v | `Dense m -> Smat.of_cmat m

let to_cmat plan s =
  match eval_view plan s with `Structured v -> Smat.to_cmat v | `Dense m -> m

let element plan ~n ~m s =
  let c = plan.ctx in
  if abs n > c.Htm_expr.n_harm || abs m > c.Htm_expr.n_harm then
    invalid_arg "Plan.element: harmonic outside truncation";
  let v = eval plan s in
  Smat.get v (Htm_expr.index_of_harmonic c n) (Htm_expr.index_of_harmonic c m)

let baseband plan s = element plan ~n:0 ~m:0 s

(* ------------------------------------------------------------------ *)
(* grid drivers (sequential on one plan; parallel sweeps distribute    *)
(* points over per-lane plans with Parallel.Sweep.grid_local)          *)

(* Boxed-output convenience drivers: one closure and one fresh output
   array per grid call (not per point) by contract; Out/run_grid_ba is
   the allocation-free path. *)
let[@lint.allow "hot-alloc"] run_grid plan ss =
  Array.map (fun s -> to_cmat plan s) ss

let[@lint.allow "hot-alloc"] run_grid_map plan f ss =
  Array.mapi (fun i s -> f i (eval plan s)) ss

module Out = struct
  type ba3 =
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array3.t

  type t = { re : ba3; im : ba3 }

  let points g = Bigarray.Array3.dim1 g.re
  let dim g = Bigarray.Array3.dim2 g.re

  let get g ~p ~i ~k =
    Cx.make (Bigarray.Array3.get g.re p i k) (Bigarray.Array3.get g.im p i k)

  let re g = g.re
  let im g = g.im
end

(* Write one realized point into slice [p] of the output block. Each
   slice is written exactly once; diagonal/banded roots write only
   their support over the zero-filled background. *)
let write_slice (re : Out.ba3) (im : Out.ba3) p plan node n =
  let open Bigarray in
  match node with
  | Static _ ->
      let m = Option.get plan.static_root in
      let mre, mim = Cmatf.raw m in
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          let q = (i * n) + k in
          Array3.unsafe_set re p i k mre.(q);
          Array3.unsafe_set im p i k mim.(q)
        done
      done
  | Dyn { slot; _ } -> (
      match slot.sh with
      | `Diag ->
          for i = 0 to n - 1 do
            Array3.unsafe_set re p i i slot.are.(i);
            Array3.unsafe_set im p i i slot.aim.(i)
          done
      | `Band kmax ->
          let w = (2 * kmax) + 1 in
          for i = 0 to n - 1 do
            for d = Stdlib.max (-kmax) (-i) to Stdlib.min kmax (n - 1 - i) do
              let q = (i * w) + d + kmax in
              Array3.unsafe_set re p i (i + d) slot.are.(q);
              Array3.unsafe_set im p i (i + d) slot.aim.(q)
            done
          done
      | `Rank1 ->
          for i = 0 to n - 1 do
            let ar = slot.are.(i) and ai = slot.aim.(i) in
            for k = 0 to n - 1 do
              let br = slot.bre.(k) and bi = slot.bim.(k) in
              Array3.unsafe_set re p i k ((ar *. br) -. (ai *. bi));
              Array3.unsafe_set im p i k ((ar *. bi) +. (ai *. br))
            done
          done
      | `Dense ->
          let mre, mim = Cmatf.raw (Option.get slot.dense) in
          for i = 0 to n - 1 do
            for k = 0 to n - 1 do
              let q = (i * n) + k in
              Array3.unsafe_set re p i k mre.(q);
              Array3.unsafe_set im p i k mim.(q)
            done
          done)

let run_grid_ba plan ss =
  let open Bigarray in
  let n = dim plan and np = Array.length ss in
  let re = Array3.create Float64 C_layout np n n in
  let im = Array3.create Float64 C_layout np n n in
  (* Rank-one, dense and plan-time-constant roots write every entry of
     their slice (and so does a dense fallback), so the zero background
     is only needed for diagonal/banded roots — skipping it saves a
     full pass over the output block. *)
  (match plan.root with
  | Dyn { slot = { sh = `Diag | `Band _; _ }; _ } ->
      Array3.fill re 0.0;
      Array3.fill im 0.0
  | Static _ | Dyn _ -> ());
  (* one closure per grid call; the boxed Cmat.get is confined to the
     dense fallback branch, which structured evaluation never takes *)
  let[@lint.allow "hot-alloc"] write_point p s =
    match eval_view plan s with
    | `Structured _ -> write_slice re im p plan plan.root n
    | `Dense m ->
        for i = 0 to n - 1 do
          for k = 0 to n - 1 do
            let z = Cmat.get m i k in
            Array3.unsafe_set re p i k (Cx.re z);
            Array3.unsafe_set im p i k (Cx.im z)
          done
        done
  in
  Array.iteri write_point ss;
  { Out.re; im }
