(** Harmonic transfer matrices (HTMs) — the paper's core formalism.

    A linear periodically time-varying (LPTV) system with period
    [T = 2π/ω₀] maps the stacked spectrum
    [Ũ(s) = [... U(s-jω₀); U(s); U(s+jω₀) ...]] to
    [Ỹ(s) = H(s) Ũ(s)] where [H_{n,m}(s) = H_{n-m}(s + j m ω₀)] and the
    [H_k] are the Laplace transforms of the harmonic impulse responses
    (eqs. 1–6). The element [H_{n,m}(jω)] is the transfer of signal
    content from the band around [m ω₀] at the input to the band around
    [n ω₀] at the output (Fig. 2).

    This module represents HTMs symbolically as a composition tree of
    structured blocks and realizes them as truncated complex matrices on
    demand. Composition follows eqs. 10–11: parallel = sum,
    series = product (left operand applied second); the three primitive
    blocks of the paper are:

    - an LTI system: diagonal HTM, [H_{m,m}(s) = H(s + j m ω₀)] (eq. 12);
    - memoryless multiplication by a T-periodic [p(t)]: Toeplitz HTM
      [H_{n,m} = P_{n-m}] (eq. 13);
    - the impulse-train sampler of the sampling PFD:
      [H(s) = (ω₀/2π) l lᵀ], rank one (eqs. 19–20).

    A truncation keeps harmonics [-n_harm .. n_harm]; matrix index [i]
    corresponds to harmonic [i - n_harm]. *)

(** The composition tree (equal to {!Htm_expr.t} so the grid-batched
    {!Plan} layer can compile the same values). Build through the smart
    constructors below — they enforce the representation invariants. *)
type t = Htm_expr.t

(** Evaluation context: truncation size and fundamental frequency. *)
type ctx = Htm_expr.ctx = { n_harm : int; omega0 : float }

val ctx : n_harm:int -> omega0:float -> ctx

(** Matrix dimension of a truncation: [2*n_harm + 1]. *)
val dim : ctx -> int

(** [harmonic_of_index ctx i] is [i - n_harm]; inverse of
    {!index_of_harmonic}. *)
val harmonic_of_index : ctx -> int -> int

val index_of_harmonic : ctx -> int -> int

(** {1 Constructors} *)

(** [lti h] — the diagonal HTM of an LTI block with transfer function
    [h]. *)
val lti : (Numeric.Cx.t -> Numeric.Cx.t) -> t

(** [lti_rat r] — the same diagonal HTM as [lti (Numeric.Rat.eval r)],
    but carrying the rational form: the plan/execute grid layer
    ({!Plan}) fills its diagonal through the allocation-free split
    Horner evaluation of {!Numeric.Rat.eval_into}. Prefer this over
    [lti] whenever the transfer function is rational (loop filters,
    VCO integrators). *)
val lti_rat : Numeric.Rat.t -> t

(** [periodic_gain coeffs] — memoryless multiplication by
    [p(t) = Σ_k P_k e^{jkω₀t}]; [coeffs] is indexed [k + K] for
    [k = -K..K] (odd length). *)
val periodic_gain : Numeric.Cx.t array -> t

(** The paper's sampling operator [(ω₀/2π)·Σ_m δ(t - mT)]:
    all matrix entries equal to [ω₀/2π = 1/T]; rank one. *)
val sampler : t

val identity : t
val zero : t
val scale : Numeric.Cx.t -> t -> t

(** [series g2 g1] applies [g1] first: the matrix is [G2·G1] (eq. 11). *)
val series : t -> t -> t

val series_list : t list -> t

(** [parallel g1 g2] is [G1 + G2] (eq. 10). *)
val parallel : t -> t -> t

val sub : t -> t -> t
val neg : t -> t

(** [feedback g] is the closed loop [(I + G)^{-1} G] — the truncated
    version of eq. 28, realized with an LU solve. *)
val feedback : t -> t

(** [custom f] — escape hatch: any explicit matrix function of [s]. *)
val custom : (ctx -> Numeric.Cx.t -> Numeric.Cmat.t) -> t

(** {1 Realization} *)

(** [to_matrix ctx t s] realizes the truncated HTM at the complex
    frequency [s]. Evaluation is structure-aware: the composition tree
    is realized as {!Smat.t} shapes (diagonal LTI blocks, banded
    Toeplitz periodic gains, the rank-one sampler, Sherman–Morrison
    feedback) and densified only here, at the API boundary.
    When the numerical guards are enabled (the default), a structured
    evaluation whose conditioning or finiteness guard fires degrades
    transparently to {!to_matrix_dense} — counted in
    {!Robust.Stats} — unless strict mode is armed, in which case
    {!Robust.Pllscope_error.Error} is raised instead. *)
val to_matrix : ctx -> t -> Numeric.Cx.t -> Numeric.Cmat.t

(** [structured_checked ctx t s] — the structured evaluation under its
    guards, with no fallback: feedback realizations use
    {!Smat.feedback_checked}, and the realized matrix is scanned for
    non-finite entries. *)
val structured_checked :
  ctx -> t -> Numeric.Cx.t -> (Smat.t, Robust.Pllscope_error.t) result

(** [structured ctx t s] — the realized HTM in its structured form,
    before densification. This is what {!to_matrix}, {!element},
    {!apply_to_tone} and {!max_singular_value} evaluate internally;
    exposed for kernel benchmarks and shape assertions. *)
val structured : ctx -> t -> Numeric.Cx.t -> Smat.t

(** [to_matrix_dense ctx t s] — the original all-dense evaluator
    (boxed [Cmat.t] products, dense LU feedback), kept as the reference
    oracle for the structured path. Use {!to_matrix} everywhere else. *)
val to_matrix_dense : ctx -> t -> Numeric.Cx.t -> Numeric.Cmat.t

(** [element ctx t ~n ~m s] is [H_{n,m}(s)] of the truncation
    ([n], [m] are harmonics, not indices). *)
val element : ctx -> t -> n:int -> m:int -> Numeric.Cx.t -> Numeric.Cx.t

(** [baseband ctx t w] is [H_{0,0}(jω)] — the band-to-band transfer
    classical LTI analysis reasons about. *)
val baseband : ctx -> t -> float -> Numeric.Cx.t

(** [conversion_map ctx t w] is the magnitude map
    [|H_{n,m}(jω)|] — the quantitative version of the paper's Fig. 2.
    Row/column order matches harmonics [-n_harm..n_harm]. *)
val conversion_map : ctx -> t -> float -> float array array

(** [apply_to_tone ctx t ~m w] — the stacked output spectrum produced by
    a unit tone in band [m] at baseband offset [ω]: the [m]-column of
    the HTM, indexed by output harmonic. *)
val apply_to_tone : ctx -> t -> m:int -> float -> Numeric.Cvec.t

(** [is_lti ctx t s ~tol] — true when the realized matrix is diagonal
    with the shifted-diagonal structure of an LTI block. *)
val is_lti : ?tol:float -> ctx -> t -> Numeric.Cx.t -> bool

(** [max_singular_value ctx t w] — the largest singular value of the
    realized HTM at [jω]: the worst-case gain over all distributions of
    input content across bands. For an LTI block this is
    [max_m |H(jω + jmω₀)|]; for a genuinely LPTV closed loop it exceeds
    the baseband [|H₀₀|] by the band-conversion leakage — a conservative
    peaking metric unavailable to LTI analysis. Computed by power
    iteration on [HᴴH] (only matrix products, no factorization),
    started from a deterministic [seed]ed pseudo-random vector and
    restarted when the iterate lands in the null space of a
    rank-deficient HTM, so rank-one matrices cannot stall it at 0. *)
val max_singular_value :
  ?iterations:int -> ?tol:float -> ?seed:int64 -> ctx -> t -> float -> float

(** Convergence certificate of the power iteration: the estimate, the
    iterations consumed, the final residual [|σ_k - σ_{k-1}|], how many
    null-space restarts were taken, and whether the tolerance was met
    within the iteration budget (σ = 0 after exhausting every restart is
    the exact answer for a zero matrix and counts as converged). *)
type sv_certificate = {
  sigma : float;
  iterations : int;
  residual : float;
  restarts : int;
  converged : bool;
}

(** [max_singular_value_cert ctx t w] — {!max_singular_value} with its
    full certificate. *)
val max_singular_value_cert :
  ?iterations:int ->
  ?tol:float ->
  ?seed:int64 ->
  ctx ->
  t ->
  float ->
  sv_certificate

(** [max_singular_value_checked ctx t w] — [Ok cert] when the iteration
    certifiably converged, [Error (Non_convergence _)] otherwise. *)
val max_singular_value_checked :
  ?iterations:int ->
  ?tol:float ->
  ?seed:int64 ->
  ctx ->
  t ->
  float ->
  (sv_certificate, Robust.Pllscope_error.t) result

(** {1 Parallel sweeps}

    Grid evaluations of one HTM at many frequencies are embarrassingly
    parallel. These helpers run through the plan/execute layer: each
    concurrently running lane owns one compiled {!Plan.t} (handed out by
    [Parallel.Sweep.grid_local]'s instance cache, never shared) and
    streams its points through it in place, instead of re-walking the
    composition tree and reallocating every intermediate per point.
    They run on [pool] (default: the shared [Parallel.Pool.default])
    with output order and values independent of the pool size. *)

val baseband_sweep :
  ?pool:Parallel.Pool.t -> ctx -> t -> float array -> Numeric.Cx.t array

(** [conversion_sweep ctx t ws] — {!conversion_map} at each [ω]. *)
val conversion_sweep :
  ?pool:Parallel.Pool.t -> ctx -> t -> float array -> float array array array

val max_singular_value_sweep :
  ?pool:Parallel.Pool.t ->
  ?iterations:int ->
  ?tol:float ->
  ?seed:int64 ->
  ctx ->
  t ->
  float array ->
  float array
