(* The HTM composition tree, split out of [Htm] so that the plan/execute
   grid layer ([Plan]) can walk the same representation without a module
   cycle: [Htm] provides the validated constructors and per-point API on
   top of this type, [Plan] compiles it into a preallocated execution
   schedule. Build values through [Htm]'s smart constructors — they
   enforce the invariants (odd periodic-gain length, copied coefficient
   arrays) that the evaluators assume. *)

open Numeric

type ctx = { n_harm : int; omega0 : float }

type t =
  | Lti of (Cx.t -> Cx.t)
  | Lti_rat of Rat.t
      (* same HTM as [Lti (Rat.eval r)], but the rational form lets the
         plan layer evaluate the diagonal without boxing *)
  | Periodic_gain of Cx.t array
  | Sampler
  | Identity
  | Zero
  | Scale of Cx.t * t
  | Series of t * t
  | Parallel of t * t
  | Sub of t * t
  | Feedback of t
  | Custom of (ctx -> Cx.t -> Cmat.t)

let dim c = (2 * c.n_harm) + 1
let harmonic_of_index c i = i - c.n_harm
let index_of_harmonic c n = n + c.n_harm

(* Structure-aware evaluator shared by the raising and the
   Result-returning paths of [Htm]: only the feedback realization
   differs, so it is a parameter. *)
let rec eval_with ~fb c t s =
  let n = dim c in
  match t with
  | Lti h ->
      Smat.diag_init n (fun i ->
          h (Cx.add s (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Lti_rat r ->
      Smat.diag_init n (fun i ->
          Rat.eval r
            (Cx.add s (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Periodic_gain coeffs -> Smat.of_toeplitz ~n coeffs
  | Sampler -> Smat.rank1_const n (c.omega0 /. (2.0 *. Float.pi))
  | Identity -> Smat.identity n
  | Zero -> Smat.zeros n
  | Scale (z, g) -> Smat.scale z (eval_with ~fb c g s)
  | Series (g2, g1) -> Smat.mul (eval_with ~fb c g2 s) (eval_with ~fb c g1 s)
  | Parallel (g1, g2) -> Smat.add (eval_with ~fb c g1 s) (eval_with ~fb c g2 s)
  | Sub (g1, g2) -> Smat.sub (eval_with ~fb c g1 s) (eval_with ~fb c g2 s)
  | Feedback g -> fb (eval_with ~fb c g s)
  | Custom f -> Smat.of_cmat (f c s)

(* Reference evaluator: the original all-dense boxed recursion, kept
   verbatim as the oracle for both the structured path and the planned
   grid path (equivalence tests, guard fallbacks, kernel benchmarks). *)
let rec to_matrix_dense c t s =
  let n = dim c in
  match t with
  | Lti h ->
      Cmat.init n n (fun i k ->
          if i <> k then Cx.zero
          else
            h (Cx.add s (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Lti_rat r ->
      Cmat.init n n (fun i k ->
          if i <> k then Cx.zero
          else
            Rat.eval r
              (Cx.add s
                 (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Periodic_gain coeffs ->
      let kmax = Array.length coeffs / 2 in
      Cmat.init n n (fun i k ->
          let diff = i - k in
          if abs diff > kmax then Cx.zero else coeffs.(diff + kmax))
  | Sampler ->
      let w = Cx.of_float (c.omega0 /. (2.0 *. Float.pi)) in
      Cmat.init n n (fun _ _ -> w)
  | Identity -> Cmat.identity n
  | Zero -> Cmat.zeros n n
  | Scale (z, g) -> Cmat.scale z (to_matrix_dense c g s)
  | Series (g2, g1) -> Cmat.mul (to_matrix_dense c g2 s) (to_matrix_dense c g1 s)
  | Parallel (g1, g2) -> Cmat.add (to_matrix_dense c g1 s) (to_matrix_dense c g2 s)
  | Sub (g1, g2) -> Cmat.sub (to_matrix_dense c g1 s) (to_matrix_dense c g2 s)
  | Feedback g ->
      let gm = to_matrix_dense c g s in
      let i_plus_g = Cmat.add (Cmat.identity n) gm in
      Lu.solve_mat (Lu.decompose i_plus_g) gm
  | Custom f -> f c s
