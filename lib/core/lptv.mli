(** LPTV helpers around the HTM formalism.

    Utilities to go between T-periodic time functions and the Fourier
    coefficient arrays that feed {!Htm.periodic_gain} (the paper's
    eq. 13), plus analytic single-tone responses used to validate HTM
    realizations against direct time-domain evaluation. *)

(** [coeffs_of_function f ~period ~max_harmonic] — Fourier coefficients
    of the real periodic function [f], indexed [k + max_harmonic]
    (ready for {!Htm.periodic_gain}). *)
val coeffs_of_function :
  (float -> float) -> period:float -> max_harmonic:int -> ?samples:int -> unit -> Numeric.Cx.t array

(** [eval_coeffs coeffs ~omega0 t] reconstructs the real periodic
    function. *)
val eval_coeffs : Numeric.Cx.t array -> omega0:float -> float -> float

(** [tone_response_multiplier coeffs ~omega0 ~m ~w] — the exact band
    amplitudes produced when the memoryless multiplier [p(t)] acts on
    the complex tone [exp(j(w + m ω₀)t)]: a list of
    [(output_harmonic, amplitude)]. Analytic reference for HTM column
    tests. *)
val tone_response_multiplier :
  Numeric.Cx.t array -> omega0:float -> m:int -> (int * Numeric.Cx.t) list

(** [conj_symmetric coeffs] — true when the coefficient array describes
    a real function ([P_{-k} = conj P_k]). *)
val conj_symmetric : ?tol:float -> Numeric.Cx.t array -> bool
