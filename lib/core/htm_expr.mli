(** The HTM composition tree — shared representation of {!Htm} (validated
    constructors, per-point evaluation) and {!Plan} (grid-batched
    plan/execute evaluation).

    The constructors are exposed so the plan compiler can pattern-match
    the tree, but values should be built through [Htm]'s smart
    constructors, which enforce the representation invariants (odd
    periodic-gain coefficient length, defensively copied arrays). *)

open Numeric

(** Evaluation context: truncation size and fundamental frequency. *)
type ctx = { n_harm : int; omega0 : float }

type t =
  | Lti of (Cx.t -> Cx.t)
  | Lti_rat of Rat.t
      (** same HTM as [Lti (Rat.eval r)]; the rational form additionally
          enables the unboxed diagonal fill of the plan layer *)
  | Periodic_gain of Cx.t array
  | Sampler
  | Identity
  | Zero
  | Scale of Cx.t * t
  | Series of t * t
  | Parallel of t * t
  | Sub of t * t
  | Feedback of t
  | Custom of (ctx -> Cx.t -> Cmat.t)

(** Matrix dimension of a truncation: [2·n_harm + 1]. *)
val dim : ctx -> int

val harmonic_of_index : ctx -> int -> int
val index_of_harmonic : ctx -> int -> int

(** Structure-aware recursion shared by [Htm]'s evaluators; [fb] is the
    feedback realization (raising or checked). *)
val eval_with : fb:(Smat.t -> Smat.t) -> ctx -> t -> Cx.t -> Smat.t

(** The all-dense boxed reference oracle (see [Htm.to_matrix_dense]). *)
val to_matrix_dense : ctx -> t -> Cx.t -> Cmat.t
