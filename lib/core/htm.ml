open Numeric

(* The composition tree itself lives in [Htm_expr] (shared with the
   plan/execute grid layer); this module provides the validated
   constructors, the per-point evaluators and the grid sweeps. *)

type ctx = Htm_expr.ctx = { n_harm : int; omega0 : float }
type t = Htm_expr.t

let ctx ~n_harm ~omega0 =
  if n_harm < 0 then invalid_arg "Htm.ctx: n_harm must be >= 0";
  if omega0 <= 0.0 then invalid_arg "Htm.ctx: omega0 must be positive";
  { n_harm; omega0 }

let dim = Htm_expr.dim
let harmonic_of_index = Htm_expr.harmonic_of_index
let index_of_harmonic = Htm_expr.index_of_harmonic

let lti h = Htm_expr.Lti h
let lti_rat r = Htm_expr.Lti_rat r

let periodic_gain coeffs =
  if Array.length coeffs mod 2 = 0 then
    invalid_arg "Htm.periodic_gain: coefficient array must have odd length";
  Htm_expr.Periodic_gain (Array.copy coeffs)

let sampler = Htm_expr.Sampler
let identity = Htm_expr.Identity
let zero = Htm_expr.Zero
let scale z t = Htm_expr.Scale (z, t)
let series g2 g1 = Htm_expr.Series (g2, g1)

let series_list = function
  | [] -> Htm_expr.Identity
  | g :: rest -> List.fold_left (fun acc h -> Htm_expr.Series (acc, h)) g rest

let parallel g1 g2 = Htm_expr.Parallel (g1, g2)
let sub g1 g2 = Htm_expr.Sub (g1, g2)
let neg g = Htm_expr.Scale (Cx.neg Cx.one, g)
let feedback g = Htm_expr.Feedback g
let custom f = Htm_expr.Custom f

(* Structure-aware evaluator: realize the composition tree as the
   cheapest {!Smat.t} shape and densify only at the API boundary. The
   primitive shapes follow the paper — LTI = diagonal (eq. 12),
   periodic gain = banded Toeplitz (eq. 13), sampler = rank one
   (eqs. 19–20) — and {!Smat}'s composition rules keep feedback around
   the rank-one sampler on the Sherman–Morrison closed form instead of
   a dense LU. *)
let structured c t s = Htm_expr.eval_with ~fb:Smat.feedback c t s

exception Checked_fail of Robust.Pllscope_error.t

let structured_checked c t s =
  let fb g =
    match Smat.feedback_checked ~context:"Htm.feedback" g with
    | Ok r -> r
    | Error e -> raise (Checked_fail e)
  in
  match Htm_expr.eval_with ~fb c t s with
  | m ->
      if Smat.is_finite m then Ok m
      else Error (Robust.Pllscope_error.Non_finite { where = "Htm.structured" })
  | exception Checked_fail e -> Error e

let to_matrix_dense = Htm_expr.to_matrix_dense

(* Graceful degradation: evaluate the structured fast path under the
   guards; if one fires, either raise (strict mode) or degrade to the
   all-dense oracle — whose boxed LU takes none of the structured
   shortcuts — and count the event. With guards disabled this is
   byte-for-byte the unguarded fast path. *)
let structured_or_fallback c t s =
  if not (Robust.Config.guards_enabled ()) then `Structured (structured c t s)
  else
    match structured_checked c t s with
    | Ok m -> `Structured m
    | Error e ->
        if Robust.Config.is_strict () then Robust.Pllscope_error.raise_ e
        else begin
          Robust.Stats.record_fallback e;
          `Dense (to_matrix_dense c t s)
        end

let to_matrix c t s =
  match structured_or_fallback c t s with
  | `Structured m -> Smat.to_cmat m
  | `Dense m -> m

let element c t ~n ~m s =
  if abs n > c.n_harm || abs m > c.n_harm then
    invalid_arg "Htm.element: harmonic outside truncation";
  let i = index_of_harmonic c n and k = index_of_harmonic c m in
  (* fast path: one entry of the structured form, no n×n densification *)
  match structured_or_fallback c t s with
  | `Structured sm -> Smat.get sm i k
  | `Dense dm -> Cmat.get dm i k

let baseband c t w = element c t ~n:0 ~m:0 (Cx.jomega w)

(* magnitude map of an already realized HTM — shared by the per-point
   and the planned sweep paths *)
let conversion_map_of n sm =
  Array.init n (fun i -> Array.init n (fun k -> Cx.abs (Smat.get sm i k)))

let conversion_map c t w =
  match structured_or_fallback c t (Cx.jomega w) with
  | `Structured sm -> conversion_map_of (dim c) sm
  | `Dense dm ->
      Array.init (dim c) (fun i ->
          Array.init (dim c) (fun k -> Cx.abs (Cmat.get dm i k)))

let apply_to_tone c t ~m w =
  if abs m > c.n_harm then invalid_arg "Htm.apply_to_tone: harmonic outside truncation";
  let k = index_of_harmonic c m in
  (* fast path: one structured column instead of the full matrix *)
  match structured_or_fallback c t (Cx.jomega w) with
  | `Structured sm -> Smat.col sm k
  | `Dense dm -> Cvec.init (dim c) (fun i -> Cmat.get dm i k)

type sv_certificate = {
  sigma : float;
  iterations : int;
  residual : float;
  restarts : int;
  converged : bool;
}

(* Power iteration on an already realized HTM: B = MᴴM with a
   unit-normalized iterate; for unit v, |Mv| converges to the largest
   singular value. The iterate starts from a seeded pseudo-random
   vector: a fixed structured start (the old all-ones-ish ramp) can sit
   exactly in the null space of a rank-deficient HTM — e.g. a rank-one
   sampler composition whose row space is orthogonal to it — and stall
   the iteration at σ = 0. A null-space start is detected (MᴴMv = 0
   before convergence) and retried with a fresh vector from the same
   deterministic stream. Both products per iteration run on the Smat
   shape (O(n) for diagonal/rank-one HTMs, O(n·k) banded) and the
   conjugate transpose is never materialized. Factored out of the
   per-point entry so the planned sweeps can run it on a plan view. *)
let power_iter ~iterations ~tol ~seed n m =
  let g = Prng.create ~seed in
  let vre = Array.make n 0.0 and vim = Array.make n 0.0 in
  let wre = Array.make n 0.0 and wim = Array.make n 0.0 in
  let ure = Array.make n 0.0 and uim = Array.make n 0.0 in
  let norm2 re im =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
    done;
    Stdlib.sqrt !acc
  in
  (* normalize (re,im) into (vre,vim); false when the vector is zero *)
  let renormalize_into re im =
    let norm = norm2 re im in
    if Float.equal norm 0.0 then false
    else begin
      let inv = 1.0 /. norm in
      for i = 0 to n - 1 do
        vre.(i) <- re.(i) *. inv;
        vim.(i) <- im.(i) *. inv
      done;
      true
    end
  in
  let random_unit () =
    let rec fresh attempts =
      for i = 0 to n - 1 do
        ure.(i) <- Prng.gaussian g;
        uim.(i) <- Prng.gaussian g
      done;
      if renormalize_into ure uim || attempts <= 0 then ()
      else fresh (attempts - 1)
    in
    fresh 8
  in
  random_unit ();
  let sigma = ref 0.0 in
  let prev = ref Float.neg_infinity in
  let max_restarts = Stdlib.min 4 n in
  let restarts = ref max_restarts in
  let used = ref 0 in
  let residual = ref infinity in
  let converged = ref false in
  (try
     for _ = 1 to iterations do
       incr used;
       Smat.mv m ~xre:vre ~xim:vim ~yre:wre ~yim:wim;
       let est = norm2 wre wim in
       let res = Float.abs (est -. !prev) in
       residual := res;
       (* an injected stall suppresses the convergence test, so the
          budget runs out and the certificate reports non-convergence *)
       let ok =
         res <= tol *. (1.0 +. est)
         && not (Robust.Inject.fire Robust.Inject.Power_stall)
       in
       prev := est;
       if est > !sigma then sigma := est;
       if ok then begin
         converged := true;
         raise Exit
       end;
       Smat.mhv m ~xre:wre ~xim:wim ~yre:ure ~yim:uim;
       if not (renormalize_into ure uim) then
         (* current iterate maps into the null space: restart rather
            than conclude σ = 0 for a nonzero matrix *)
         if !restarts > 0 then begin
           decr restarts;
           prev := Float.neg_infinity;
           random_unit ()
         end
         else begin
           (* every restart also hit the null space: the matrix maps
              the whole probed subspace to zero. For σ = 0 that is the
              exact answer (zero matrix), not a failure. *)
           if Float.equal !sigma 0.0 then begin
             converged := true;
             residual := 0.0
           end;
           raise Exit
         end
     done
   with Exit -> ());
  {
    sigma = !sigma;
    iterations = !used;
    residual = !residual;
    restarts = max_restarts - !restarts;
    converged = !converged;
  }

let max_singular_value_cert ?(iterations = 200) ?(tol = 1e-10)
    ?(seed = 0x51C0FFEEL) c t w =
  let m =
    match structured_or_fallback c t (Cx.jomega w) with
    | `Structured m -> m
    | `Dense dm -> Smat.of_cmat dm
  in
  power_iter ~iterations ~tol ~seed (dim c) m

let max_singular_value ?iterations ?tol ?seed c t w =
  (max_singular_value_cert ?iterations ?tol ?seed c t w).sigma

let max_singular_value_checked ?iterations ?tol ?seed c t w =
  let cert = max_singular_value_cert ?iterations ?tol ?seed c t w in
  if cert.converged then Ok cert
  else begin
    let e =
      Robust.Pllscope_error.Non_convergence
        { iters = cert.iterations; residual = cert.residual }
    in
    Robust.Stats.record_guard e;
    Error e
  end

(* Grid sweeps now go through the plan/execute layer: one [Plan.t] per
   concurrently running lane (never shared — a plan is a mutable
   workspace), handed out by [Sweep.grid_local]'s instance cache. Each
   point is realized in place instead of re-walking the composition
   tree and reallocating every intermediate. *)

let baseband_sweep ?pool c t ws =
  Parallel.Sweep.grid_local ?pool
    ~local:(fun () -> Plan.make c t)
    (fun p w -> Plan.baseband p (Cx.jomega w))
    ws

let conversion_sweep ?pool c t ws =
  Parallel.Sweep.grid_local ?pool
    ~local:(fun () -> Plan.make c t)
    (fun p w -> conversion_map_of (dim c) (Plan.eval p (Cx.jomega w)))
    ws

let max_singular_value_sweep ?pool ?(iterations = 200) ?(tol = 1e-10)
    ?(seed = 0x51C0FFEEL) c t ws =
  Parallel.Sweep.grid_local ?pool
    ~local:(fun () -> Plan.make c t)
    (fun p w ->
      (power_iter ~iterations ~tol ~seed (dim c) (Plan.eval p (Cx.jomega w)))
        .sigma)
    ws

let is_lti ?(tol = 1e-12) c t s =
  let m = structured c t s in
  (* a realized diagonal shape is LTI by construction; other shapes
     compare their largest off-diagonal modulus against the scale *)
  Smat.max_offdiag_abs m <= tol *. (1.0 +. Smat.norm_inf m)
