open Numeric

type ctx = { n_harm : int; omega0 : float }

type t =
  | Lti of (Cx.t -> Cx.t)
  | Periodic_gain of Cx.t array
  | Sampler
  | Identity
  | Zero
  | Scale of Cx.t * t
  | Series of t * t
  | Parallel of t * t
  | Sub of t * t
  | Feedback of t
  | Custom of (ctx -> Cx.t -> Cmat.t)

let ctx ~n_harm ~omega0 =
  if n_harm < 0 then invalid_arg "Htm.ctx: n_harm must be >= 0";
  if omega0 <= 0.0 then invalid_arg "Htm.ctx: omega0 must be positive";
  { n_harm; omega0 }

let dim c = (2 * c.n_harm) + 1
let harmonic_of_index c i = i - c.n_harm
let index_of_harmonic c n = n + c.n_harm

let lti h = Lti h

let periodic_gain coeffs =
  if Array.length coeffs mod 2 = 0 then
    invalid_arg "Htm.periodic_gain: coefficient array must have odd length";
  Periodic_gain (Array.copy coeffs)

let sampler = Sampler
let identity = Identity
let zero = Zero
let scale z t = Scale (z, t)
let series g2 g1 = Series (g2, g1)

let series_list = function
  | [] -> Identity
  | g :: rest -> List.fold_left (fun acc h -> Series (acc, h)) g rest

let parallel g1 g2 = Parallel (g1, g2)
let sub g1 g2 = Sub (g1, g2)
let neg g = Scale (Cx.neg Cx.one, g)
let feedback g = Feedback g
let custom f = Custom f

(* Structure-aware evaluator: realize the composition tree as the
   cheapest {!Smat.t} shape and densify only at the API boundary. The
   primitive shapes follow the paper — LTI = diagonal (eq. 12),
   periodic gain = banded Toeplitz (eq. 13), sampler = rank one
   (eqs. 19–20) — and {!Smat}'s composition rules keep feedback around
   the rank-one sampler on the Sherman–Morrison closed form instead of
   a dense LU. *)
(* The recursion is shared between the raising and the Result-returning
   evaluators: only the feedback realization differs, so it is a
   parameter. *)
let rec eval_with ~fb c t s =
  let n = dim c in
  match t with
  | Lti h ->
      Smat.diag_init n (fun i ->
          h (Cx.add s (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Periodic_gain coeffs -> Smat.of_toeplitz ~n coeffs
  | Sampler -> Smat.rank1_const n (c.omega0 /. (2.0 *. Float.pi))
  | Identity -> Smat.identity n
  | Zero -> Smat.zeros n
  | Scale (z, g) -> Smat.scale z (eval_with ~fb c g s)
  | Series (g2, g1) -> Smat.mul (eval_with ~fb c g2 s) (eval_with ~fb c g1 s)
  | Parallel (g1, g2) -> Smat.add (eval_with ~fb c g1 s) (eval_with ~fb c g2 s)
  | Sub (g1, g2) -> Smat.sub (eval_with ~fb c g1 s) (eval_with ~fb c g2 s)
  | Feedback g -> fb (eval_with ~fb c g s)
  | Custom f -> Smat.of_cmat (f c s)

let structured c t s = eval_with ~fb:Smat.feedback c t s

exception Checked_fail of Robust.Pllscope_error.t

let structured_checked c t s =
  let fb g =
    match Smat.feedback_checked ~context:"Htm.feedback" g with
    | Ok r -> r
    | Error e -> raise (Checked_fail e)
  in
  match eval_with ~fb c t s with
  | m ->
      if Smat.is_finite m then Ok m
      else Error (Robust.Pllscope_error.Non_finite { where = "Htm.structured" })
  | exception Checked_fail e -> Error e

(* Reference evaluator: the original all-dense boxed recursion, kept
   verbatim as the oracle for the structured path (equivalence tests,
   kernel benchmarks). *)
let rec to_matrix_dense c t s =
  let n = dim c in
  match t with
  | Lti h ->
      Cmat.init n n (fun i k ->
          if i <> k then Cx.zero
          else
            h (Cx.add s (Cx.jomega (float_of_int (harmonic_of_index c i) *. c.omega0))))
  | Periodic_gain coeffs ->
      let kmax = Array.length coeffs / 2 in
      Cmat.init n n (fun i k ->
          let diff = i - k in
          if abs diff > kmax then Cx.zero else coeffs.(diff + kmax))
  | Sampler ->
      let w = Cx.of_float (c.omega0 /. (2.0 *. Float.pi)) in
      Cmat.init n n (fun _ _ -> w)
  | Identity -> Cmat.identity n
  | Zero -> Cmat.zeros n n
  | Scale (z, g) -> Cmat.scale z (to_matrix_dense c g s)
  | Series (g2, g1) -> Cmat.mul (to_matrix_dense c g2 s) (to_matrix_dense c g1 s)
  | Parallel (g1, g2) -> Cmat.add (to_matrix_dense c g1 s) (to_matrix_dense c g2 s)
  | Sub (g1, g2) -> Cmat.sub (to_matrix_dense c g1 s) (to_matrix_dense c g2 s)
  | Feedback g ->
      let gm = to_matrix_dense c g s in
      let i_plus_g = Cmat.add (Cmat.identity n) gm in
      Lu.solve_mat (Lu.decompose i_plus_g) gm
  | Custom f -> f c s

(* Graceful degradation: evaluate the structured fast path under the
   guards; if one fires, either raise (strict mode) or degrade to the
   all-dense oracle — whose boxed LU takes none of the structured
   shortcuts — and count the event. With guards disabled this is
   byte-for-byte the unguarded fast path. *)
let structured_or_fallback c t s =
  if not (Robust.Config.guards_enabled ()) then `Structured (structured c t s)
  else
    match structured_checked c t s with
    | Ok m -> `Structured m
    | Error e ->
        if Robust.Config.is_strict () then Robust.Pllscope_error.raise_ e
        else begin
          Robust.Stats.record_fallback e;
          `Dense (to_matrix_dense c t s)
        end

let to_matrix c t s =
  match structured_or_fallback c t s with
  | `Structured m -> Smat.to_cmat m
  | `Dense m -> m

let element c t ~n ~m s =
  if abs n > c.n_harm || abs m > c.n_harm then
    invalid_arg "Htm.element: harmonic outside truncation";
  let i = index_of_harmonic c n and k = index_of_harmonic c m in
  (* fast path: one entry of the structured form, no n×n densification *)
  match structured_or_fallback c t s with
  | `Structured sm -> Smat.get sm i k
  | `Dense dm -> Cmat.get dm i k

let baseband c t w = element c t ~n:0 ~m:0 (Cx.jomega w)

let conversion_map c t w =
  let getter =
    match structured_or_fallback c t (Cx.jomega w) with
    | `Structured sm ->
        let m = Smat.densify sm in
        fun i k -> Cx.abs (Cmatf.get m i k)
    | `Dense dm -> fun i k -> Cx.abs (Cmat.get dm i k)
  in
  Array.init (dim c) (fun i -> Array.init (dim c) (fun k -> getter i k))

let apply_to_tone c t ~m w =
  if abs m > c.n_harm then invalid_arg "Htm.apply_to_tone: harmonic outside truncation";
  let k = index_of_harmonic c m in
  (* fast path: one structured column instead of the full matrix *)
  match structured_or_fallback c t (Cx.jomega w) with
  | `Structured sm -> Smat.col sm k
  | `Dense dm -> Cvec.init (dim c) (fun i -> Cmat.get dm i k)

type sv_certificate = {
  sigma : float;
  iterations : int;
  residual : float;
  restarts : int;
  converged : bool;
}

let max_singular_value_cert ?(iterations = 200) ?(tol = 1e-10)
    ?(seed = 0x51C0FFEEL) c t w =
  (* power iteration on B = MᴴM with a unit-normalized iterate: for unit
     v, |Mv| converges to the largest singular value. The iterate starts
     from a seeded pseudo-random vector: a fixed structured start (the
     old all-ones-ish ramp) can sit exactly in the null space of a
     rank-deficient HTM — e.g. a rank-one sampler composition whose row
     space is orthogonal to it — and stall the iteration at σ = 0. A
     null-space start is detected (MᴴMv = 0 before convergence) and
     retried with a fresh vector from the same deterministic stream. *)
  (* structured fast path: both products per iteration run on the
     Smat shape (O(n) for diagonal/rank-one HTMs, O(n·k) banded) and
     the conjugate transpose is never materialized *)
  let m =
    match structured_or_fallback c t (Cx.jomega w) with
    | `Structured m -> m
    | `Dense dm -> Smat.of_cmat dm
  in
  let n = dim c in
  let g = Prng.create ~seed in
  let vre = Array.make n 0.0 and vim = Array.make n 0.0 in
  let wre = Array.make n 0.0 and wim = Array.make n 0.0 in
  let ure = Array.make n 0.0 and uim = Array.make n 0.0 in
  let norm2 re im =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
    done;
    Stdlib.sqrt !acc
  in
  (* normalize (re,im) into (vre,vim); false when the vector is zero *)
  let renormalize_into re im =
    let norm = norm2 re im in
    if Float.equal norm 0.0 then false
    else begin
      let inv = 1.0 /. norm in
      for i = 0 to n - 1 do
        vre.(i) <- re.(i) *. inv;
        vim.(i) <- im.(i) *. inv
      done;
      true
    end
  in
  let random_unit () =
    let rec fresh attempts =
      for i = 0 to n - 1 do
        ure.(i) <- Prng.gaussian g;
        uim.(i) <- Prng.gaussian g
      done;
      if renormalize_into ure uim || attempts <= 0 then ()
      else fresh (attempts - 1)
    in
    fresh 8
  in
  random_unit ();
  let sigma = ref 0.0 in
  let prev = ref Float.neg_infinity in
  let max_restarts = Stdlib.min 4 n in
  let restarts = ref max_restarts in
  let used = ref 0 in
  let residual = ref infinity in
  let converged = ref false in
  (try
     for _ = 1 to iterations do
       incr used;
       Smat.mv m ~xre:vre ~xim:vim ~yre:wre ~yim:wim;
       let est = norm2 wre wim in
       let res = Float.abs (est -. !prev) in
       residual := res;
       (* an injected stall suppresses the convergence test, so the
          budget runs out and the certificate reports non-convergence *)
       let ok =
         res <= tol *. (1.0 +. est)
         && not (Robust.Inject.fire Robust.Inject.Power_stall)
       in
       prev := est;
       if est > !sigma then sigma := est;
       if ok then begin
         converged := true;
         raise Exit
       end;
       Smat.mhv m ~xre:wre ~xim:wim ~yre:ure ~yim:uim;
       if not (renormalize_into ure uim) then
         (* current iterate maps into the null space: restart rather
            than conclude σ = 0 for a nonzero matrix *)
         if !restarts > 0 then begin
           decr restarts;
           prev := Float.neg_infinity;
           random_unit ()
         end
         else begin
           (* every restart also hit the null space: the matrix maps
              the whole probed subspace to zero. For σ = 0 that is the
              exact answer (zero matrix), not a failure. *)
           if Float.equal !sigma 0.0 then begin
             converged := true;
             residual := 0.0
           end;
           raise Exit
         end
     done
   with Exit -> ());
  {
    sigma = !sigma;
    iterations = !used;
    residual = !residual;
    restarts = max_restarts - !restarts;
    converged = !converged;
  }

let max_singular_value ?iterations ?tol ?seed c t w =
  (max_singular_value_cert ?iterations ?tol ?seed c t w).sigma

let max_singular_value_checked ?iterations ?tol ?seed c t w =
  let cert = max_singular_value_cert ?iterations ?tol ?seed c t w in
  if cert.converged then Ok cert
  else begin
    let e =
      Robust.Pllscope_error.Non_convergence
        { iters = cert.iterations; residual = cert.residual }
    in
    Robust.Stats.record_guard e;
    Error e
  end

let baseband_sweep ?pool c t ws =
  Parallel.Sweep.grid ?pool (fun w -> baseband c t w) ws

let conversion_sweep ?pool c t ws =
  Parallel.Sweep.grid ?pool (conversion_map c t) ws

let max_singular_value_sweep ?pool ?iterations ?tol ?seed c t ws =
  Parallel.Sweep.grid ?pool (fun w -> max_singular_value ?iterations ?tol ?seed c t w) ws

let is_lti ?(tol = 1e-12) c t s =
  let m = structured c t s in
  (* a realized diagonal shape is LTI by construction; other shapes
     compare their largest off-diagonal modulus against the scale *)
  Smat.max_offdiag_abs m <= tol *. (1.0 +. Smat.norm_inf m)
