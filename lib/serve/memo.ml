(* Bounded memo for intermediate compute artifacts (synthesized loop
   parameters, bode grids), keyed by canonical fingerprints.

   Unlike Lru — which the daemon drives under its own state mutex —
   the memo is consulted from engine code running *outside* the daemon
   lock (holding it across a synthesis would serialise compute), so it
   carries its own mutex. Counters are atomics so the stats snapshot
   never needs the lock.

   Same O(capacity) min-stamp eviction as Lru, same rationale: at
   plan-cache scale the scan's constant factor beats list surgery. *)

type 'v entry = { value : 'v; mutable stamp : int }

type 'v t = {
  cap : int;
  m : Mutex.t;
  tbl : (string, 'v entry) Hashtbl.t;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ~cap =
  if cap < 0 then invalid_arg "Memo.create: negative capacity";
  {
    cap;
    m = Mutex.create ();
    tbl = Hashtbl.create (max 16 cap);
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | Some _ | None -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      Atomic.incr t.evictions
  | None -> ()

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.stamp <- t.tick;
          Atomic.incr t.hits;
          Some e.value
      | None ->
          Atomic.incr t.misses;
          None)

let add t key value =
  if t.cap > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some _ -> Hashtbl.remove t.tbl key
        | None -> if Hashtbl.length t.tbl >= t.cap then evict_one t);
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { value; stamp = t.tick })

(* The lock is NOT held across [compute]: a slow synthesis must not
   serialise unrelated lookups. Concurrent misses on one key may both
   compute — [compute] must be pure — and the last add wins, which is
   harmless for deterministic artifacts. *)
let find_or_add t key compute =
  match find t key with
  | Some v -> v
  | None ->
      let v = compute () in
      add t key v;
      v
