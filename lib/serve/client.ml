(* Client side of the analysis daemon protocol.

   [request] sends one framed request and decodes one reply;
   [with_retries] wraps connect-request-close in exponential backoff
   with deterministic jitter, honouring the server's [retry_after] hint
   on [Overloaded] and treating connection-level failures (refused,
   reset, EOF-before-reply) as retryable. Two failure bounds layer on
   top: a wall-clock retry *budget* (a permanently dead daemon fails in
   bounded time with a typed [Budget_exhausted]) and a circuit breaker
   (past [threshold] consecutive call failures, further calls fail fast
   with [Circuit_open] without touching the network until a cooldown
   elapses, then a half-open probe decides).

   [sweep_streamed] is the self-healing streamed-sweep loop: it keeps a
   cell buffer across reconnects, resumes by idempotency key from its
   contiguous prefix, verifies the reassembled bytes against the
   summary digest, and on a (should-be-impossible) digest mismatch
   wipes its buffer and restarts the stream from scratch.

   The jitter stream is splitmix64 seeded by the caller — wall-clock
   and OS randomness stay out of the retry schedule, so a test that
   fixes the seed replays the exact same backoff sequence. (The budget
   and breaker do consult the wall clock: they bound real elapsed
   time, which is the point.)

   This module also hosts the client-side fault-injection sites of the
   Robust.Inject harness (net-torn, net-drop, net-slow): each attacks
   the request *send* path the way a dying or misbehaving client
   would, which is precisely what the daemon's robustness tests need a
   controllable supply of. *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type addr = Unix_path of string | Tcp of string * int

type t = { fd : Unix.file_descr }

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let resolve host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith ("Client.resolve: no address for host " ^ host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found ->
          failwith ("Client.resolve: unknown host " ^ host))

let connect addr =
  let domain, sockaddr =
    match addr with
    | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve host, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> { fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, "close", _) -> ());
      raise e

let close t =
  try Unix.close t.fd with Unix.Unix_error (_, "close", _) -> ()

let fd t = t.fd

(* ------------------------------------------------------------------ *)
(* fault-injected send path                                            *)

let write_exact fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let socket_err msg =
  Robust.Pllscope_error.Parse { file = "<socket>"; line = 0; col = 0; msg }

let send_request t ~stall (req : Wire.request) =
  let payload = Wire.marshal_request req in
  if Robust.Inject.fire Robust.Inject.Net_drop then begin
    (* die between connect and send: the daemon sees an immediate EOF *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, "shutdown", _) -> ());
    Error (socket_err "Client.send_request: injected connection drop")
  end
  else if Robust.Inject.fire Robust.Inject.Net_torn then begin
    (* die mid-write: the daemon reads a half frame, then EOF *)
    let frame = Runner.Journal.Frame.encode ~tag:Wire.tag_request payload in
    write_exact t.fd (String.sub frame 0 (String.length frame / 2));
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, "shutdown", _) -> ());
    Error (socket_err "Client.send_request: injected torn frame")
  end
  else if Robust.Inject.fire Robust.Inject.Net_slow then begin
    (* slow-loris: half the header, a stall, then the rest — if the
       stall exceeds the daemon's read timeout the reply is a typed
       Io_timeout error frame *)
    let frame = Runner.Journal.Frame.encode ~tag:Wire.tag_request payload in
    write_exact t.fd (String.sub frame 0 6);
    Thread.delay stall;
    write_exact t.fd
      (String.sub frame 6 (String.length frame - 6));
    Ok ()
  end
  else Wire.send_request t.fd req

let request ?(timeout = 60.0) ?(stall = 0.75) t (req : Wire.request) =
  match send_request t ~stall req with
  | Error _ as e -> e
  | Ok () -> Wire.recv_reply ~timeout t.fd

(* ------------------------------------------------------------------ *)
(* retries                                                             *)

(* splitmix64, same generator Robust.Inject uses; local copy keeps the
   jitter stream independent of the injection stream. *)
let splitmix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

let retryable (err : Robust.Pllscope_error.t) =
  match err with
  | Overloaded _ -> true
  | Parse { file = "<socket>"; _ } -> true (* connection-level failure *)
  | Io_timeout _ -> true (* reply outran its budget; server may recover *)
  | Singular _ | Non_convergence _ | Non_finite _ | Parse _
  | Worker_failure _ | Timed_out _ | Cancelled _ | Budget_exhausted _
  | Circuit_open _ ->
      false

(* ------------------------------------------------------------------ *)
(* circuit breaker                                                     *)

type breaker = {
  bm : Mutex.t;
  threshold : int;
  cooldown : float;
  mutable consecutive : int;
  mutable opened_at : float option;
}

let breaker ?(threshold = 5) ?(cooldown = 1.0) () =
  if threshold < 1 then invalid_arg "Client.breaker: threshold must be >= 1";
  if cooldown <= 0.0 then invalid_arg "Client.breaker: cooldown must be > 0";
  {
    bm = Mutex.create ();
    threshold;
    cooldown;
    consecutive = 0;
    opened_at = None;
  }

let breaker_locked b f =
  Mutex.lock b.bm;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.bm) f

(* [`Proceed] also covers the half-open probe: once the cooldown has
   elapsed the next caller goes through, and its outcome re-opens or
   closes the circuit. *)
let breaker_gate b =
  breaker_locked b (fun () ->
      match b.opened_at with
      | None -> `Proceed
      | Some t0 ->
          let remaining = b.cooldown -. (now () -. t0) in
          if remaining > 0.0 then `Open remaining
          else begin
            b.opened_at <- None;
            `Proceed
          end)

let breaker_success b =
  breaker_locked b (fun () ->
      b.consecutive <- 0;
      b.opened_at <- None)

let breaker_failure b =
  breaker_locked b (fun () ->
      b.consecutive <- b.consecutive + 1;
      if b.consecutive >= b.threshold then b.opened_at <- Some (now ()))

let breaker_is_open b =
  breaker_locked b (fun () ->
      match b.opened_at with
      | None -> false
      | Some t0 -> b.cooldown -. (now () -. t0) > 0.0)

let with_retries ?(attempts = 5) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(seed = 1) ?budget ?breaker:br ~connect f =
  if attempts < 1 then invalid_arg "Client.with_retries: attempts must be >= 1";
  (match budget with
  | Some b when b <= 0.0 ->
      invalid_arg "Client.with_retries: budget must be > 0"
  | _ -> ());
  let state = ref (Int64.of_int (if seed = 0 then 0x5eed else seed)) in
  let jitter () =
    let state', out = splitmix64 !state in
    state := state';
    Int64.to_float (Int64.shift_right_logical out 11) /. 9007199254740992.0
  in
  let backoff k (last : Robust.Pllscope_error.t) =
    let hint =
      match last with
      | Robust.Pllscope_error.Overloaded { retry_after } -> retry_after
      | Singular _ | Non_convergence _ | Non_finite _ | Parse _
      | Worker_failure _ | Timed_out _ | Cancelled _ | Io_timeout _
      | Budget_exhausted _ | Circuit_open _ ->
          0.0
    in
    let exp_ = base_delay *. (2.0 ** float_of_int (k - 1)) in
    let d = Float.min max_delay (Float.max hint exp_) in
    (* jitter in [0.5, 1.5): desynchronises retry herds without ever
       collapsing the delay to zero *)
    d *. (0.5 +. jitter ())
  in
  let started = now () in
  let rec go k last =
    if k >= attempts then Error last
    else begin
      match
        if k > 0 then begin
          let d = backoff k last in
          (* budget check *before* sleeping: a dead daemon fails within
             [budget] seconds instead of [budget + one backoff] *)
          match budget with
          | Some b when now () -. started +. d > b ->
              Some
                (Robust.Pllscope_error.Budget_exhausted
                   { budget_s = b; attempts = k })
          | _ ->
              Thread.delay d;
              None
        end
        else None
      with
      | Some exhausted -> Error exhausted
      | None -> (
          match connect () with
          | exception
              Unix.Unix_error
                (( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT
                 | Unix.EPIPE | Unix.ETIMEDOUT ),
                  _,
                  _ ) ->
              go (k + 1) (socket_err "Client.with_retries: connect failed")
          | conn -> (
              let outcome =
                match f conn with
                | res -> res
                | exception
                    Unix.Unix_error
                      ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN), _, _) ->
                    Error
                      (socket_err
                         "Client.with_retries: connection lost mid-call")
              in
              close conn;
              match outcome with
              | Ok _ as ok -> ok
              | Error err when retryable err -> go (k + 1) err
              | Error _ as fatal -> fatal))
    end
  in
  let finish outcome =
    (match (br, outcome) with
    | Some b, Ok _ -> breaker_success b
    | Some b, Error _ -> breaker_failure b
    | None, _ -> ());
    outcome
  in
  match br with
  | Some b -> (
      match breaker_gate b with
      | `Open remaining ->
          (* fail fast without touching the network; deliberately NOT
             counted as a breaker failure — the circuit state only
             tracks real attempts *)
          Error (Robust.Pllscope_error.Circuit_open { cooldown_s = remaining })
      | `Proceed ->
          finish (go 0 (socket_err "Client.with_retries: no attempt made")))
  | None -> go 0 (socket_err "Client.with_retries: no attempt made")

(* ------------------------------------------------------------------ *)
(* streamed sweeps                                                     *)

type stream_stats = {
  resumes : int;
  chunks : int;
  computed : int;
  replayed : int;
}

let sweep_streamed ?(timeout = 60.0) ?deadline ?attempts ?base_delay
    ?max_delay ?seed ?budget ?breaker ~connect ~spec ~ratios () =
  let n = Array.length ratios in
  let body = Wire.Sweep { spec; ratios } in
  let key = Wire.stable_key body in
  (* the cell buffer outlives individual connections: that is what a
     resume resumes from *)
  let cells : string option array = Array.make n None in
  let attempts_made = ref 0 in
  let chunks_seen = ref 0 in
  let contiguous_prefix () =
    let i = ref 0 in
    while !i < n && cells.(!i) <> None do
      incr i
    done;
    !i
  in
  let attempt conn =
    incr attempts_made;
    let req =
      {
        Wire.deadline;
        key = Some key;
        resume_from = contiguous_prefix ();
        stream = true;
        body;
      }
    in
    match send_request conn ~stall:0.75 req with
    | Error _ as e -> e
    | Ok () ->
        let rec consume () =
          match Wire.recv_event ~timeout conn.fd with
          | Error _ as e -> e
          | Ok (Wire.Ev_progress _) ->
              (* heartbeat: the stream is alive, keep waiting *)
              consume ()
          | Ok (Wire.Ev_chunk c) ->
              incr chunks_seen;
              Array.iteri
                (fun k payload ->
                  let i = c.Wire.base + k in
                  if i >= 0 && i < n then cells.(i) <- Some payload)
                c.Wire.cells;
              consume ()
          | Ok (Wire.Ev_summary s) ->
              if Array.exists (fun c -> c = None) cells then
                Error
                  (socket_err
                     "Client.sweep_streamed: summary arrived with missing \
                      cells")
              else begin
                let all = Array.map Option.get cells in
                match Wire.assemble_sweep all with
                | Error _ as e -> e
                | Ok sres ->
                    let payload = Wire.marshal_response (Wire.R_sweep sres) in
                    if Digest.string payload <> s.Wire.digest then begin
                      (* self-heal: the buffer cannot be trusted — wipe
                         it and restart the stream from scratch (the
                         error is retryable, so with_retries loops) *)
                      Array.fill cells 0 n None;
                      Error
                        (socket_err
                           "Client.sweep_streamed: reassembly digest \
                            mismatch; restarting stream")
                    end
                    else Ok (sres, s)
              end
          | Ok (Wire.Ev_reply (Wire.R_sweep sres)) ->
              (* a daemon that answered one-shot anyway *)
              Ok
                ( sres,
                  {
                    Wire.total = n;
                    chunks = 0;
                    digest = "";
                    computed = n;
                    replayed = 0;
                  } )
          | Ok (Wire.Ev_reply _) ->
              Error
                (socket_err "Client.sweep_streamed: unexpected reply variant")
        in
        consume ()
  in
  match
    with_retries ?attempts ?base_delay ?max_delay ?seed ?budget ?breaker
      ~connect attempt
  with
  | Error _ as e -> e
  | Ok (sres, (s : Wire.summary)) ->
      Ok
        ( sres,
          {
            resumes = max 0 (!attempts_made - 1);
            chunks = !chunks_seen;
            computed = s.Wire.computed;
            replayed = s.Wire.replayed;
          } )
