(** Bounded, thread-safe memo of intermediate compute artifacts
    (synthesized loop parameters, bode grids) keyed by canonical
    fingerprints ({!Wire.spec_fingerprint}-style strings).

    Carries its own mutex — engine code consults it without the daemon
    state lock — and atomic hit/miss/eviction counters surfaced by
    [pllscope serve --status]. Eviction is the same O(capacity)
    min-stamp scan as {!Lru}. *)

type 'v t

(** [create ~cap] — at most [cap] entries; [cap = 0] disables the memo
    ({!add} is a no-op, every lookup misses). Raises [Invalid_argument]
    on a negative [cap]. *)
val create : cap:int -> 'v t

(** [find t key] — the memoized value, promoting it to
    most-recently-used. Counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** [add t key v] — insert (or refresh), evicting the LRU entry when
    full. *)
val add : 'v t -> string -> 'v -> unit

(** [find_or_add t key compute] — [find], or [compute ()] then {!add}.
    The lock is not held during [compute]: concurrent misses on the
    same key may both compute, so [compute] must be pure (the artifacts
    memoized here are deterministic, making last-add-wins harmless). *)
val find_or_add : 'v t -> string -> (unit -> 'v) -> 'v

val length : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
