(* Request execution for the daemon.

   Each entry point takes the request's private cancellation token and
   honours it at a fine grain — between report stages for [analyze],
   between grid points for [bode], per ratio (chunk size 1) for
   [sweep] — so an expired deadline stops burning the worker slot
   within one point's worth of work, not one request's.

   Determinism: every value is computed by the same code paths the CLI
   subcommands use ([Analysis.lti_report], [Bode.of_responses],
   [Analysis.ratio_sweep] one ratio at a time), so a served result is
   bit-identical to a local run of the matching subcommand. *)

(* Plan/grid memo: synthesized loop parameters and bode grids keyed by
   the canonical spec fingerprint. Both artifacts are deterministic
   functions of their key, so memo hits are bit-identical to cold
   computes — the sweep per-point path stays memo-free on purpose (its
   byte-identity contract is with the CLI, which has no memo). *)
type artifact = Synth of Pll_lib.Pll.t | Grid of float array

type memo = artifact Memo.t

let create_memo ~cap : memo = Memo.create ~cap
let memo_hits = Memo.hits
let memo_misses = Memo.misses
let memo_evictions = Memo.evictions

let synthesize ?memo spec =
  match memo with
  | None -> Pll_lib.Design.synthesize spec
  | Some m -> (
      match
        Memo.find_or_add m
          ("synth|" ^ Wire.spec_fingerprint spec)
          (fun () -> Synth (Pll_lib.Design.synthesize spec))
      with
      | Synth p -> p
      | Grid _ -> Pll_lib.Design.synthesize spec)

let analyze ?memo ~cancel spec : Wire.analyze_result =
  Parallel.Cancel.check cancel;
  let p = synthesize ?memo spec in
  let lti = Pll_lib.Analysis.lti_report p in
  Parallel.Cancel.check cancel;
  let eff = Pll_lib.Analysis.effective_report p in
  Parallel.Cancel.check cancel;
  let metrics = Pll_lib.Analysis.closed_loop_metrics p in
  Parallel.Cancel.check cancel;
  let stable = Pll_lib.Analysis.is_stable_tv p in
  { Wire.lti; eff; metrics; stable }

(* The CLI's log grid (bode_cmd): w_UG/50 .. 0.49 w0. Points are
   evaluated sequentially with a cancel poll between each, then phases
   are unwrapped exactly as Lti.Bode.sweep would. *)
let bode ?memo ~cancel spec ~points : Wire.bode_result =
  if points < 2 then
    Robust.Pllscope_error.raise_
      (Robust.Pllscope_error.Parse
         {
           file = "<request>";
           line = 0;
           col = 0;
           msg = "Engine.bode: points must be >= 2";
         });
  Parallel.Cancel.check cancel;
  let p = synthesize ?memo spec in
  let build_grid () =
    let w0 = Pll_lib.Pll.omega0 p in
    let w_ug = Pll_lib.Design.omega_ug spec in
    let lo = w_ug /. 50.0 and hi = w0 *. 0.49 in
    Array.init points (fun i ->
        lo *. ((hi /. lo) ** (float_of_int i /. float_of_int (points - 1))))
  in
  let ws =
    match memo with
    | None -> build_grid ()
    | Some m -> (
        match
          Memo.find_or_add m
            (Printf.sprintf "grid|%s|%d" (Wire.spec_fingerprint spec) points)
            (fun () -> Grid (build_grid ()))
        with
        | Grid ws -> ws
        | Synth _ -> build_grid ())
  in
  let a_fn = Lti.Tf.freq_response (Pll_lib.Pll.open_loop_tf p) in
  let lam_fn = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
  let eval f =
    Array.map
      (fun w ->
        Parallel.Cancel.check cancel;
        f w)
      ws
  in
  let a_resp = eval a_fn in
  let lam_resp = eval (fun w -> lam_fn (Numeric.Cx.jomega w)) in
  let strip pts =
    Array.map
      (fun (pt : Lti.Bode.point) ->
        {
          Wire.omega = pt.Lti.Bode.omega;
          mag_db = pt.Lti.Bode.mag_db;
          phase_deg = pt.Lti.Bode.phase_deg;
        })
      pts
  in
  {
    Wire.a = strip (Lti.Bode.of_responses ~ws a_resp);
    lambda = strip (Lti.Bode.of_responses ~ws lam_resp);
  }

(* One ratio per checked-sweep task (chunk 1): a cancelled deadline
   surfaces as typed per-point failures in the partial — same contract
   as an interrupted `pllscope sweep` — and every surviving row is
   bit-identical to the CLI's. *)
let ratio_point spec ratio =
  match Pll_lib.Analysis.ratio_sweep spec [ ratio ] with
  | [ row ] -> row
  | rows ->
      invalid_arg
        (Printf.sprintf "Engine.ratio_point: expected 1 row, got %d"
           (List.length rows))

let sweep ~cancel spec ratios : Wire.sweep_result =
  if Array.length ratios = 0 then
    Robust.Pllscope_error.raise_
      (Robust.Pllscope_error.Parse
         {
           file = "<request>";
           line = 0;
           col = 0;
           msg = "Engine.sweep: empty ratio grid";
         });
  (* no entry check: a token already cancelled (or a deadline expiring
     mid-grid) degrades to a partial with per-point Cancelled failures
     instead of failing the whole request — grid_checked records it *)
  let partial =
    Parallel.Sweep.grid_checked ~chunk:1 ~cancel
      (fun ratio -> ratio_point spec ratio)
      ratios
  in
  {
    Wire.rows = partial.Parallel.Sweep.values;
    failures = partial.Parallel.Sweep.failures;
    total = partial.Parallel.Sweep.total;
  }
