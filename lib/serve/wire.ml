(* Request/response protocol of the analysis daemon.

   Messages ride the same CRC-32 frame codec the checkpoint journals
   and the sweep farm use (Runner.Journal.Frame): the frame's index
   field carries a message tag, the payload is a [Marshal] of a plain
   record — floats, options, lists, no closures — so both sides
   validate integrity identically and a peer that dies mid-write reads
   as a clean EOF, never as garbage.

   Tags:
     1  request     client -> daemon   Marshal of [request]
     2  result      daemon -> client   Marshal of [response]
     3  error       daemon -> client   Marshal of [Pllscope_error.t]
     4  overloaded  daemon -> client   Marshal of [Pllscope_error.t]
                                       (always [Overloaded _])

   Shedding gets its own tag so a minimal client can recognise
   "retry later" without decoding the payload; full clients decode the
   typed error either way.

   Cache identity: [cache_key] digests the Marshal bytes of the request
   {e body} — deliberately excluding the deadline envelope — so two
   requests for the same analysis hit the same cache slot regardless of
   how patient their callers are, and a cached reply is byte-identical
   to the cold one (the daemon caches the marshalled response payload,
   not the value). *)

type request_body =
  | Analyze of Pll_lib.Design.spec
  | Bode of { spec : Pll_lib.Design.spec; points : int }
  | Sweep of { spec : Pll_lib.Design.spec; ratios : float array }
  | Stats
  | Health

type request = { deadline : float option; body : request_body }

type analyze_result = {
  lti : Pll_lib.Analysis.loop_report;
  eff : Pll_lib.Analysis.loop_report;
  metrics : Pll_lib.Analysis.closed_loop_metrics;
  stable : bool;
}

type bode_point = { omega : float; mag_db : float; phase_deg : float }

type bode_result = { a : bode_point array; lambda : bode_point array }

type sweep_result = {
  rows : Pll_lib.Analysis.ratio_point option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

type server_stats = {
  served : int;
  shed : int;
  cache_hits : int;
  cache_misses : int;
  request_errors : int;
  io_timeouts : int;
  active : int;
  uptime_s : float;
  robust : Robust.Stats.t;
}

type response =
  | R_analyze of analyze_result
  | R_bode of bode_result
  | R_sweep of sweep_result
  | R_stats of server_stats
  | R_healthy

let tag_request = 1
let tag_result = 2
let tag_error = 3
let tag_overloaded = 4

let marshal v = Marshal.to_string v []

let parse_err msg =
  Robust.Pllscope_error.Parse { file = "<socket>"; line = 0; col = 0; msg }

let closed_err what =
  parse_err (Printf.sprintf "Wire: connection closed %s" what)

let unmarshal (s : string) : ('a, Robust.Pllscope_error.t) result =
  if String.length s < Marshal.header_size then
    Error (parse_err "Wire.unmarshal: short payload")
  else Ok (Marshal.from_string s 0)

let cache_key (body : request_body) = Digest.string (marshal body)

let cacheable = function
  | Analyze _ | Bode _ | Sweep _ -> true
  | Stats | Health -> false

let body_name = function
  | Analyze _ -> "analyze"
  | Bode _ -> "bode"
  | Sweep _ -> "sweep"
  | Stats -> "stats"
  | Health -> "health"

let marshal_request (r : request) = marshal r
let marshal_response (r : response) = marshal r

(* ------------------------------------------------------------------ *)
(* framed sends/receives                                               *)

let send_request ?timeout fd (r : request) =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_request
    (marshal_request r)

let send_response_payload ?timeout fd payload =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_result payload

let send_error ?timeout fd (err : Robust.Pllscope_error.t) =
  let tag =
    match err with
    | Robust.Pllscope_error.Overloaded _ -> tag_overloaded
    | Robust.Pllscope_error.Singular _ | Non_convergence _ | Non_finite _
    | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _ | Io_timeout _ ->
        tag_error
  in
  Runner.Journal.Frame.write_result ?timeout fd ~tag (marshal err)

(* Daemon side: [Ok None] is a clean EOF (client went away between
   requests or died mid-frame); [Error _] is corruption or a stalled
   peer, both of which the caller answers with a typed error frame. *)
let recv_request ?timeout fd :
    (request option, Robust.Pllscope_error.t) result =
  match Runner.Journal.Frame.read_result ?timeout fd with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some (tag, payload)) ->
      if tag <> tag_request then
        Error
          (parse_err
             (Printf.sprintf "Wire.recv_request: unexpected tag %d" tag))
      else begin
        match unmarshal payload with
        | Ok (r : request) -> Ok (Some r)
        | Error _ as e -> e
      end

(* Client side: every failure mode is a typed error — a server-sent
   error frame, a dropped connection (EOF where a reply was due), a
   corrupt frame, or a reply that outran [timeout]. *)
let recv_reply ?timeout fd : (response, Robust.Pllscope_error.t) result =
  match Runner.Journal.Frame.read_result ?timeout fd with
  | Error _ as e -> e
  | Ok None -> Error (closed_err "before a reply arrived")
  | Ok (Some (tag, payload)) ->
      if tag = tag_result then (unmarshal payload : (response, _) result)
      else if tag = tag_error || tag = tag_overloaded then begin
        match unmarshal payload with
        | Ok (err : Robust.Pllscope_error.t) -> Error err
        | Error _ as e -> e
      end
      else
        Error
          (parse_err (Printf.sprintf "Wire.recv_reply: unexpected tag %d" tag))
