(* Request/response protocol of the analysis daemon.

   Messages ride the same CRC-32 frame codec the checkpoint journals
   and the sweep farm use (Runner.Journal.Frame): the frame's index
   field carries a message tag, the payload is a [Marshal] of a plain
   record — floats, options, lists, no closures — so both sides
   validate integrity identically and a peer that dies mid-write reads
   as a clean EOF, never as garbage.

   Tags:
     1  request     client -> daemon   Marshal of [request]
     2  result      daemon -> client   Marshal of [response]
     3  error       daemon -> client   Marshal of [Pllscope_error.t]
     4  overloaded  daemon -> client   Marshal of [Pllscope_error.t]
                                       (always [Overloaded _])
     5  chunk       daemon -> client   Marshal of [chunk] (streamed cells)
     6  summary     daemon -> client   Marshal of [summary] (stream close)
     7  progress    daemon -> client   Marshal of [progress] (heartbeat)

   Shedding gets its own tag so a minimal client can recognise
   "retry later" without decoding the payload; full clients decode the
   typed error either way.

   Marshalling is [No_sharing]: every wire value is a tree, and
   suppressing back-references makes the bytes a function of the
   *structure* alone. That is what lets a client reassemble a streamed
   sweep cell-by-cell and still produce bytes identical to the
   single-shot reply — with sharing enabled, two failures raised from
   the same site could share a physical string in the one-shot value
   and encode as a back-reference the reassembly cannot reproduce.

   Cache identity: [cache_key] digests the Marshal bytes of the request
   {e body} — deliberately excluding the envelope (deadline, stream
   flags, idempotency key) — so two requests for the same analysis hit
   the same cache slot regardless of how patient their callers are, and
   a cached reply is byte-identical to the cold one (the daemon caches
   the marshalled response payload, not the value).

   Idempotency identity: [stable_key] digests a *canonical text*
   fingerprint (hex of [Int64.bits_of_float] per field) instead of
   Marshal bytes, because request journals outlive daemon processes and
   Marshal's byte format is only guaranteed within one OCaml version.
   The fingerprint text itself is stored as the journal's header frame
   so a key collision is detected by content, not by digest. *)

type request_body =
  | Analyze of Pll_lib.Design.spec
  | Bode of { spec : Pll_lib.Design.spec; points : int }
  | Sweep of { spec : Pll_lib.Design.spec; ratios : float array }
  | Stats
  | Health

type request = {
  deadline : float option;
  key : string option;
  resume_from : int;
  stream : bool;
  body : request_body;
}

let oneshot ?deadline body =
  { deadline; key = None; resume_from = 0; stream = false; body }

type analyze_result = {
  lti : Pll_lib.Analysis.loop_report;
  eff : Pll_lib.Analysis.loop_report;
  metrics : Pll_lib.Analysis.closed_loop_metrics;
  stable : bool;
}

type bode_point = { omega : float; mag_db : float; phase_deg : float }

type bode_result = { a : bode_point array; lambda : bode_point array }

type sweep_result = {
  rows : Pll_lib.Analysis.ratio_point option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

type server_stats = {
  served : int;
  shed : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  single_flight_waits : int;
  request_errors : int;
  io_timeouts : int;
  streams_started : int;
  streams_resumed : int;
  chunks_sent : int;
  points_computed : int;
  points_replayed : int;
  stale_keys : int;
  heartbeats : int;
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;
  active : int;
  uptime_s : float;
  robust : Robust.Stats.t;
}

type response =
  | R_analyze of analyze_result
  | R_bode of bode_result
  | R_sweep of sweep_result
  | R_stats of server_stats
  | R_healthy

type chunk = { seq : int; base : int; cells : string array }

type summary = {
  total : int;
  chunks : int;
  digest : string;
  computed : int;
  replayed : int;
}

type progress = { done_points : int; total_points : int }

type stream_event =
  | Ev_chunk of chunk
  | Ev_summary of summary
  | Ev_progress of progress
  | Ev_reply of response

let tag_request = 1
let tag_result = 2
let tag_error = 3
let tag_overloaded = 4
let tag_chunk = 5
let tag_summary = 6
let tag_progress = 7

let marshal v = Marshal.to_string v [ Marshal.No_sharing ]

let parse_err msg =
  Robust.Pllscope_error.Parse { file = "<socket>"; line = 0; col = 0; msg }

let closed_err what =
  parse_err (Printf.sprintf "Wire: connection closed %s" what)

let unmarshal (s : string) : ('a, Robust.Pllscope_error.t) result =
  if String.length s < Marshal.header_size then
    Error (parse_err "Wire.unmarshal: short payload")
  else
    (* CRC framing makes corruption here unlikely but not impossible
       (journal payloads predating a wire change, hostile peers) *)
    match Marshal.from_string s 0 with
    | v -> Ok v
    | exception Failure msg -> Error (parse_err ("Wire.unmarshal: " ^ msg))

let cache_key (body : request_body) = Digest.string (marshal body)

let cacheable = function
  | Analyze _ | Bode _ | Sweep _ -> true
  | Stats | Health -> false

let body_name = function
  | Analyze _ -> "analyze"
  | Bode _ -> "bode"
  | Sweep _ -> "sweep"
  | Stats -> "stats"
  | Health -> "health"

(* ------------------------------------------------------------------ *)
(* idempotency keys                                                    *)

(* Hex of the raw IEEE-754 bits: total (distinguishes -0.0/0.0 and
   every NaN payload) and stable across OCaml versions, unlike Marshal
   bytes or printed decimals. *)
let hex_of_float x = Printf.sprintf "%Lx" (Int64.bits_of_float x)

let spec_fingerprint (s : Pll_lib.Design.spec) =
  String.concat ","
    (List.map hex_of_float
       [
         s.Pll_lib.Design.fref;
         s.Pll_lib.Design.n_div;
         s.Pll_lib.Design.icp;
         s.Pll_lib.Design.kvco;
         s.Pll_lib.Design.ratio;
         s.Pll_lib.Design.phase_margin_deg;
       ])

let body_fingerprint (body : request_body) =
  match body with
  | Analyze spec -> "analyze|" ^ spec_fingerprint spec
  | Bode { spec; points } ->
      Printf.sprintf "bode|%s|%d" (spec_fingerprint spec) points
  | Sweep { spec; ratios } ->
      let b = Buffer.create (64 + (17 * Array.length ratios)) in
      Buffer.add_string b "sweep|";
      Buffer.add_string b (spec_fingerprint spec);
      Array.iter
        (fun r ->
          Buffer.add_char b '|';
          Buffer.add_string b (hex_of_float r))
        ratios;
      Buffer.contents b
  | Stats -> "stats"
  | Health -> "health"

let stable_key body = Digest.to_hex (Digest.string (body_fingerprint body))

(* ------------------------------------------------------------------ *)
(* streamed sweep cells                                                *)

type cell = (Pll_lib.Analysis.ratio_point, Robust.Pllscope_error.t) result

let encode_cell (c : cell) = marshal c
let decode_cell (s : string) : (cell, Robust.Pllscope_error.t) result =
  unmarshal s

(* Rebuild the exact [sweep_result] a single-shot reply would carry:
   rows by index, failures ascending (Parallel.Sweep.grid_checked
   builds its list with a downto-prepend, so ascending is the
   canonical order). *)
let assemble_sweep (cells : string array) :
    (sweep_result, Robust.Pllscope_error.t) result =
  let n = Array.length cells in
  let rows = Array.make n None in
  let failures = ref [] in
  let bad = ref None in
  for i = n - 1 downto 0 do
    match decode_cell cells.(i) with
    | Ok (Ok pt) -> rows.(i) <- Some pt
    | Ok (Error e) -> failures := (i, e) :: !failures
    | Error e -> bad := Some e
  done;
  match !bad with
  | Some e -> Error e
  | None -> Ok { rows; failures = !failures; total = n }

let marshal_request (r : request) = marshal r
let marshal_response (r : response) = marshal r
let marshal_chunk (c : chunk) = marshal c

(* ------------------------------------------------------------------ *)
(* framed sends/receives                                               *)

let send_request ?timeout fd (r : request) =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_request
    (marshal_request r)

let send_response_payload ?timeout fd payload =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_result payload

let send_error ?timeout fd (err : Robust.Pllscope_error.t) =
  let tag =
    match err with
    | Robust.Pllscope_error.Overloaded _ -> tag_overloaded
    | Robust.Pllscope_error.Singular _ | Non_convergence _ | Non_finite _
    | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _ | Io_timeout _
    | Budget_exhausted _ | Circuit_open _ ->
        tag_error
  in
  Runner.Journal.Frame.write_result ?timeout fd ~tag (marshal err)

let send_chunk ?timeout fd (c : chunk) =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_chunk (marshal c)

let send_summary ?timeout fd (s : summary) =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_summary (marshal s)

let send_progress ?timeout fd (p : progress) =
  Runner.Journal.Frame.write_result ?timeout fd ~tag:tag_progress (marshal p)

(* Daemon side: [Ok None] is a clean EOF (client went away between
   requests or died mid-frame); [Error _] is corruption or a stalled
   peer, both of which the caller answers with a typed error frame. *)
let recv_request ?timeout fd :
    (request option, Robust.Pllscope_error.t) result =
  match Runner.Journal.Frame.read_result ?timeout fd with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some (tag, payload)) ->
      if tag <> tag_request then
        Error
          (parse_err
             (Printf.sprintf "Wire.recv_request: unexpected tag %d" tag))
      else begin
        match unmarshal payload with
        | Ok (r : request) -> Ok (Some r)
        | Error _ as e -> e
      end

(* Client side: every failure mode is a typed error — a server-sent
   error frame, a dropped connection (EOF where a reply was due), a
   corrupt frame, or a reply that outran [timeout]. *)
let recv_reply ?timeout fd : (response, Robust.Pllscope_error.t) result =
  match Runner.Journal.Frame.read_result ?timeout fd with
  | Error _ as e -> e
  | Ok None -> Error (closed_err "before a reply arrived")
  | Ok (Some (tag, payload)) ->
      if tag = tag_result then (unmarshal payload : (response, _) result)
      else if tag = tag_error || tag = tag_overloaded then begin
        match unmarshal payload with
        | Ok (err : Robust.Pllscope_error.t) -> Error err
        | Error _ as e -> e
      end
      else
        Error
          (parse_err (Printf.sprintf "Wire.recv_reply: unexpected tag %d" tag))

(* Client side of a streamed reply: chunk/summary/progress frames plus
   everything [recv_reply] accepts (so a daemon that answers a stream
   request with a one-shot reply — non-sweep bodies — still decodes).
   EOF mid-stream is a typed, retryable closed-connection error: the
   caller reconnects and resumes by key. *)
let recv_event ?timeout fd : (stream_event, Robust.Pllscope_error.t) result =
  match Runner.Journal.Frame.read_result ?timeout fd with
  | Error _ as e -> e
  | Ok None -> Error (closed_err "mid-stream")
  | Ok (Some (tag, payload)) ->
      if tag = tag_chunk then begin
        match unmarshal payload with
        | Ok (c : chunk) -> Ok (Ev_chunk c)
        | Error _ as e -> e
      end
      else if tag = tag_summary then begin
        match unmarshal payload with
        | Ok (s : summary) -> Ok (Ev_summary s)
        | Error _ as e -> e
      end
      else if tag = tag_progress then begin
        match unmarshal payload with
        | Ok (p : progress) -> Ok (Ev_progress p)
        | Error _ as e -> e
      end
      else if tag = tag_result then begin
        match unmarshal payload with
        | Ok (r : response) -> Ok (Ev_reply r)
        | Error _ as e -> e
      end
      else if tag = tag_error || tag = tag_overloaded then begin
        match unmarshal payload with
        | Ok (err : Robust.Pllscope_error.t) -> Error err
        | Error _ as e -> e
      end
      else
        Error
          (parse_err (Printf.sprintf "Wire.recv_event: unexpected tag %d" tag))
