(* Bounded LRU for marshalled response payloads.

   Deliberately unsynchronized: the daemon serialises every cache
   access under its own state mutex (the cache participates in
   single-flight bookkeeping that must be atomic with respect to the
   inflight table, so an internal lock would only invite lock-order
   bugs).

   Recency is a monotonic stamp per entry; eviction scans for the
   minimum stamp. That makes eviction O(capacity), which is the right
   trade at daemon scale (tens to hundreds of entries, each worth
   milliseconds-to-seconds of HTM work): the constant factor beats a
   doubly-linked list until capacities far past anything a config
   would set. *)

type entry = { value : string; mutable stamp : int }

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
}

let create ~cap =
  if cap < 0 then invalid_arg "Lru.create: negative capacity";
  { cap; tbl = Hashtbl.create (max 16 cap); tick = 0; evicted = 0 }

let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      touch t e;
      Some e.value
  | None -> None

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | Some _ | None -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evicted <- t.evicted + 1
  | None -> ()

let add t key value =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some _ -> Hashtbl.remove t.tbl key
    | None -> if Hashtbl.length t.tbl >= t.cap then evict_one t);
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl key { value; stamp = t.tick }
  end
