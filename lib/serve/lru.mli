(** Bounded least-recently-used cache of marshalled response payloads.

    {b Not thread-safe}: the daemon serialises all access under its
    state mutex, because cache lookups must be atomic with its
    single-flight bookkeeping. Eviction is an O(capacity) minimum-stamp
    scan — deliberate, see the implementation note. *)

type t

(** [create ~cap] — a cache holding at most [cap] entries. [cap = 0]
    disables caching ({!add} becomes a no-op). Raises
    [Invalid_argument] on a negative [cap]. *)
val create : cap:int -> t

(** [find t key] — the cached payload, promoting the entry to
    most-recently-used. (Hit/miss accounting lives in
    {!Metrics}, at request granularity.) *)
val find : t -> string -> string option

(** [add t key value] — insert (or refresh) an entry, evicting the
    least-recently-used one when full. *)
val add : t -> string -> string -> unit

val length : t -> int

(** Entries displaced by a full-capacity {!add} since creation
    (refreshes of an existing key do not count). *)
val evictions : t -> int
