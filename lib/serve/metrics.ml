(* Daemon counters. Atomics: connection threads bump them without
   holding the daemon state mutex (responses are written after the
   compute slot is released, so no lock is live at count time). *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type t = {
  served : int Atomic.t;
  shed : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  single_flight_waits : int Atomic.t;
  request_errors : int Atomic.t;
  io_timeouts : int Atomic.t;
  streams_started : int Atomic.t;
  streams_resumed : int Atomic.t;
  chunks_sent : int Atomic.t;
  points_computed : int Atomic.t;
  points_replayed : int Atomic.t;
  stale_keys : int Atomic.t;
  heartbeats : int Atomic.t;
  started : float;
}

let create () =
  {
    served = Atomic.make 0;
    shed = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    single_flight_waits = Atomic.make 0;
    request_errors = Atomic.make 0;
    io_timeouts = Atomic.make 0;
    streams_started = Atomic.make 0;
    streams_resumed = Atomic.make 0;
    chunks_sent = Atomic.make 0;
    points_computed = Atomic.make 0;
    points_replayed = Atomic.make 0;
    stale_keys = Atomic.make 0;
    heartbeats = Atomic.make 0;
    started = now ();
  }

let incr_served t = Atomic.incr t.served
let incr_shed t = Atomic.incr t.shed
let incr_cache_hit t = Atomic.incr t.cache_hits
let incr_cache_miss t = Atomic.incr t.cache_misses
let incr_single_flight_wait t = Atomic.incr t.single_flight_waits
let incr_request_error t = Atomic.incr t.request_errors
let incr_io_timeout t = Atomic.incr t.io_timeouts
let incr_stream_started t = Atomic.incr t.streams_started
let incr_stream_resumed t = Atomic.incr t.streams_resumed
let incr_chunk_sent t = Atomic.incr t.chunks_sent
let add_points_computed t n = ignore (Atomic.fetch_and_add t.points_computed n)
let add_points_replayed t n = ignore (Atomic.fetch_and_add t.points_replayed n)
let incr_stale_key t = Atomic.incr t.stale_keys
let incr_heartbeat t = Atomic.incr t.heartbeats
let points_computed t = Atomic.get t.points_computed
let points_replayed t = Atomic.get t.points_replayed

let snapshot t ~active ~cache_evictions ~memo_hits ~memo_misses
    ~memo_evictions : Wire.server_stats =
  {
    Wire.served = Atomic.get t.served;
    shed = Atomic.get t.shed;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    cache_evictions;
    single_flight_waits = Atomic.get t.single_flight_waits;
    request_errors = Atomic.get t.request_errors;
    io_timeouts = Atomic.get t.io_timeouts;
    streams_started = Atomic.get t.streams_started;
    streams_resumed = Atomic.get t.streams_resumed;
    chunks_sent = Atomic.get t.chunks_sent;
    points_computed = Atomic.get t.points_computed;
    points_replayed = Atomic.get t.points_replayed;
    stale_keys = Atomic.get t.stale_keys;
    heartbeats = Atomic.get t.heartbeats;
    memo_hits;
    memo_misses;
    memo_evictions;
    active;
    uptime_s = now () -. t.started;
    robust = Robust.Stats.snapshot ();
  }

(* Hand-rolled JSON: the repo has no JSON dependency and the object is
   flat integers plus one float. *)
let json_of_stats (s : Wire.server_stats) =
  let r = s.Wire.robust in
  let b = Buffer.create 512 in
  let field ?(last = false) name v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name v
                           (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "served" (string_of_int s.Wire.served);
  field "shed" (string_of_int s.Wire.shed);
  field "cache_hits" (string_of_int s.Wire.cache_hits);
  field "cache_misses" (string_of_int s.Wire.cache_misses);
  field "cache_evictions" (string_of_int s.Wire.cache_evictions);
  field "single_flight_waits" (string_of_int s.Wire.single_flight_waits);
  field "request_errors" (string_of_int s.Wire.request_errors);
  field "io_timeouts" (string_of_int s.Wire.io_timeouts);
  field "streams_started" (string_of_int s.Wire.streams_started);
  field "streams_resumed" (string_of_int s.Wire.streams_resumed);
  field "chunks_sent" (string_of_int s.Wire.chunks_sent);
  field "points_computed" (string_of_int s.Wire.points_computed);
  field "points_replayed" (string_of_int s.Wire.points_replayed);
  field "stale_keys" (string_of_int s.Wire.stale_keys);
  field "heartbeats" (string_of_int s.Wire.heartbeats);
  field "memo_hits" (string_of_int s.Wire.memo_hits);
  field "memo_misses" (string_of_int s.Wire.memo_misses);
  field "memo_evictions" (string_of_int s.Wire.memo_evictions);
  field "active" (string_of_int s.Wire.active);
  field "uptime_s" (Printf.sprintf "%.3f" s.Wire.uptime_s);
  field "dense_fallbacks" (string_of_int r.Robust.Stats.dense_fallbacks);
  field "singular_guards" (string_of_int r.Robust.Stats.singular_guards);
  field "nonfinite_guards" (string_of_int r.Robust.Stats.nonfinite_guards);
  field "non_convergences" (string_of_int r.Robust.Stats.non_convergences);
  field "pool_retries" (string_of_int r.Robust.Stats.pool_retries);
  field "worker_failures" (string_of_int r.Robust.Stats.worker_failures);
  field "task_timeouts" (string_of_int r.Robust.Stats.task_timeouts);
  field "cancelled_points" (string_of_int r.Robust.Stats.cancelled_points);
  field ~last:true "resumed_points"
    (string_of_int r.Robust.Stats.resumed_points);
  Buffer.add_string b "}";
  Buffer.contents b
