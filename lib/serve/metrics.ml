(* Daemon counters. Atomics: connection threads bump them without
   holding the daemon state mutex (responses are written after the
   compute slot is released, so no lock is live at count time). *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type t = {
  served : int Atomic.t;
  shed : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  request_errors : int Atomic.t;
  io_timeouts : int Atomic.t;
  started : float;
}

let create () =
  {
    served = Atomic.make 0;
    shed = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    request_errors = Atomic.make 0;
    io_timeouts = Atomic.make 0;
    started = now ();
  }

let incr_served t = Atomic.incr t.served
let incr_shed t = Atomic.incr t.shed
let incr_cache_hit t = Atomic.incr t.cache_hits
let incr_cache_miss t = Atomic.incr t.cache_misses
let incr_request_error t = Atomic.incr t.request_errors
let incr_io_timeout t = Atomic.incr t.io_timeouts

let snapshot t ~active : Wire.server_stats =
  {
    Wire.served = Atomic.get t.served;
    shed = Atomic.get t.shed;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    request_errors = Atomic.get t.request_errors;
    io_timeouts = Atomic.get t.io_timeouts;
    active;
    uptime_s = now () -. t.started;
    robust = Robust.Stats.snapshot ();
  }

(* Hand-rolled JSON: the repo has no JSON dependency and the object is
   flat integers plus one float. *)
let json_of_stats (s : Wire.server_stats) =
  let r = s.Wire.robust in
  let b = Buffer.create 512 in
  let field ?(last = false) name v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name v
                           (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "served" (string_of_int s.Wire.served);
  field "shed" (string_of_int s.Wire.shed);
  field "cache_hits" (string_of_int s.Wire.cache_hits);
  field "cache_misses" (string_of_int s.Wire.cache_misses);
  field "request_errors" (string_of_int s.Wire.request_errors);
  field "io_timeouts" (string_of_int s.Wire.io_timeouts);
  field "active" (string_of_int s.Wire.active);
  field "uptime_s" (Printf.sprintf "%.3f" s.Wire.uptime_s);
  field "dense_fallbacks" (string_of_int r.Robust.Stats.dense_fallbacks);
  field "singular_guards" (string_of_int r.Robust.Stats.singular_guards);
  field "nonfinite_guards" (string_of_int r.Robust.Stats.nonfinite_guards);
  field "non_convergences" (string_of_int r.Robust.Stats.non_convergences);
  field "pool_retries" (string_of_int r.Robust.Stats.pool_retries);
  field "worker_failures" (string_of_int r.Robust.Stats.worker_failures);
  field "task_timeouts" (string_of_int r.Robust.Stats.task_timeouts);
  field "cancelled_points" (string_of_int r.Robust.Stats.cancelled_points);
  field ~last:true "resumed_points"
    (string_of_int r.Robust.Stats.resumed_points);
  Buffer.add_string b "}";
  Buffer.contents b
