(** Client for the analysis daemon, with deterministic retry/backoff
    and the client-side fault-injection sites ([net-torn], [net-drop],
    [net-slow]) of {!Robust.Inject}. *)

type addr = Unix_path of string | Tcp of string * int

type t

val addr_to_string : addr -> string

(** [connect addr] — open a connection. Raises [Unix.Unix_error] when
    the daemon is unreachable (wrap in {!with_retries} for backoff). *)
val connect : addr -> t

val close : t -> unit

(** The raw descriptor — for harnesses that want to speak frames
    directly (half-written requests, raw reply-byte comparisons). *)
val fd : t -> Unix.file_descr

(** [request ?timeout ?stall t req] — send one request, decode one
    reply. [timeout] bounds the wait for the complete reply frame
    (default 60 s). Connection loss, corrupt frames, server error
    frames and shed requests all come back as typed [Error]s.

    [stall] (default 0.75 s) is the mid-frame pause used when the
    [net-slow] injection site fires; the [net-torn]/[net-drop] sites
    instead kill the send and return a retryable [<socket>] parse
    error, exactly as the harnessed fault would. *)
val request :
  ?timeout:float ->
  ?stall:float ->
  t ->
  Wire.request ->
  (Wire.response, Robust.Pllscope_error.t) result

(** [with_retries ?attempts ?base_delay ?max_delay ?seed ~connect f] —
    run [f] on a fresh connection, retrying on [Overloaded] (honouring
    its [retry_after] hint), connection-level failures (refused, reset,
    EOF before reply) and reply timeouts, with exponential backoff
    [base_delay * 2^k] capped at [max_delay] and multiplicative jitter
    in [0.5, 1.5) drawn from a splitmix64 stream seeded by [seed] — the
    schedule is deterministic per seed. The connection is closed after
    every attempt. Non-retryable typed errors and exhaustion return the
    last [Error]. *)
val with_retries :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  connect:(unit -> t) ->
  (t -> ('a, Robust.Pllscope_error.t) result) ->
  ('a, Robust.Pllscope_error.t) result
