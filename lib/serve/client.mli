(** Client for the analysis daemon, with deterministic retry/backoff,
    a wall-clock retry budget, a circuit breaker, resumable streamed
    sweeps, and the client-side fault-injection sites ([net-torn],
    [net-drop], [net-slow]) of {!Robust.Inject}. *)

type addr = Unix_path of string | Tcp of string * int

type t

val addr_to_string : addr -> string

(** [connect addr] — open a connection. Raises [Unix.Unix_error] when
    the daemon is unreachable (wrap in {!with_retries} for backoff). *)
val connect : addr -> t

val close : t -> unit

(** The raw descriptor — for harnesses that want to speak frames
    directly (half-written requests, raw reply-byte comparisons). *)
val fd : t -> Unix.file_descr

(** [request ?timeout ?stall t req] — send one request, decode one
    reply. [timeout] bounds the wait for the complete reply frame
    (default 60 s). Connection loss, corrupt frames, server error
    frames and shed requests all come back as typed [Error]s.

    [stall] (default 0.75 s) is the mid-frame pause used when the
    [net-slow] injection site fires; the [net-torn]/[net-drop] sites
    instead kill the send and return a retryable [<socket>] parse
    error, exactly as the harnessed fault would. *)
val request :
  ?timeout:float ->
  ?stall:float ->
  t ->
  Wire.request ->
  (Wire.response, Robust.Pllscope_error.t) result

(** Client-side circuit breaker: after [threshold] consecutive
    {!with_retries} call failures the circuit opens and further calls
    fail fast with [Circuit_open] — no connect, no backoff — until
    [cooldown] seconds elapse; then one half-open probe goes through
    and its outcome re-opens or closes the circuit. Thread-safe; share
    one breaker across all calls targeting the same daemon. *)
type breaker

(** [breaker ?threshold ?cooldown ()] — default threshold 5, cooldown
    1 s. Raises [Invalid_argument] on [threshold < 1] or a
    non-positive [cooldown]. *)
val breaker : ?threshold:int -> ?cooldown:float -> unit -> breaker

(** Observability for tests and callers deciding whether to probe. *)
val breaker_is_open : breaker -> bool

(** [with_retries ?attempts ?base_delay ?max_delay ?seed ?budget
    ?breaker ~connect f] — run [f] on a fresh connection, retrying on
    [Overloaded] (honouring its [retry_after] hint), connection-level
    failures (refused, reset, EOF before reply) and reply timeouts,
    with exponential backoff [base_delay * 2^k] capped at [max_delay]
    and multiplicative jitter in [0.5, 1.5) drawn from a splitmix64
    stream seeded by [seed] — the schedule is deterministic per seed.
    The connection is closed after every attempt.

    [budget] caps the total wall-clock spent across attempts: when the
    next backoff would cross it, the call stops with a typed
    [Budget_exhausted] instead of sleeping — a permanently dead daemon
    fails in bounded time. [breaker] layers the circuit breaker on
    top: an open circuit returns [Circuit_open] before any network
    traffic, and each completed call records its outcome. Non-retryable
    typed errors and exhaustion return the last [Error]. *)
val with_retries :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?budget:float ->
  ?breaker:breaker ->
  connect:(unit -> t) ->
  (t -> ('a, Robust.Pllscope_error.t) result) ->
  ('a, Robust.Pllscope_error.t) result

(** What a {!sweep_streamed} call did: [resumes] is the number of
    reconnect-and-resume cycles after the first attempt, [chunks] the
    chunk frames received across all attempts, [computed]/[replayed]
    the server-side split from the final summary frame. *)
type stream_stats = {
  resumes : int;
  chunks : int;
  computed : int;
  replayed : int;
}

(** [sweep_streamed ?timeout ?deadline ?attempts ?base_delay ?max_delay
    ?seed ?budget ?breaker ~connect ~spec ~ratios ()] — run one ratio
    sweep as a resumable stream. The cell buffer survives reconnects:
    every retry sends the same {!Wire.stable_key} with [resume_from]
    set to the buffer's contiguous prefix, so the daemon replays
    journaled cells and recomputes only what neither side has.
    [timeout] bounds the wait for {e each} frame (heartbeats reset it,
    so a slow compute stays alive while a dead peer fails within one
    timeout). The reassembled result is verified against the summary
    digest — byte-identical to a one-shot reply — and on a mismatch
    the buffer is wiped and the stream restarted from scratch.
    Retry/budget/breaker semantics are exactly {!with_retries}'s. *)
val sweep_streamed :
  ?timeout:float ->
  ?deadline:float ->
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  ?budget:float ->
  ?breaker:breaker ->
  connect:(unit -> t) ->
  spec:Pll_lib.Design.spec ->
  ratios:float array ->
  unit ->
  (Wire.sweep_result * stream_stats, Robust.Pllscope_error.t) result
