(** Request execution for the daemon.

    Every entry point polls the request's cancellation token at a fine
    grain (between stages / grid points / ratios), raising
    {!Parallel.Cancel.Cancelled} — or, for [sweep], returning typed
    per-point failures — when the deadline monitor fires. Results are
    bit-identical to the matching CLI subcommand run locally. *)

(** Bounded plan/grid memo: synthesized loop parameters keyed by spec
    fingerprint and bode grids keyed by spec fingerprint × points.
    Hits are bit-identical to cold computes (both artifacts are
    deterministic functions of their key); the sweep per-point path
    deliberately bypasses it. *)
type memo

val create_memo : cap:int -> memo

val analyze :
  ?memo:memo ->
  cancel:Parallel.Cancel.t ->
  Pll_lib.Design.spec ->
  Wire.analyze_result

(** Raises {!Robust.Pllscope_error.Error} with a [Parse] payload when
    [points < 2] (malformed request, answered as a typed error frame). *)
val bode :
  ?memo:memo ->
  cancel:Parallel.Cancel.t ->
  Pll_lib.Design.spec ->
  points:int ->
  Wire.bode_result

(** The single-ratio Fig. 7 task ({!Pll_lib.Analysis.ratio_sweep} on a
    one-element list) — the same closure the CLI and farm use. *)
val ratio_point : Pll_lib.Design.spec -> float -> Pll_lib.Analysis.ratio_point

(** Checked sweep at chunk size 1: an expired deadline cancels between
    ratios and the already-computed rows still come back, with typed
    [Cancelled] failures for the rest. Raises like {!bode} on an empty
    grid. *)
val sweep :
  cancel:Parallel.Cancel.t ->
  Pll_lib.Design.spec ->
  float array ->
  Wire.sweep_result

(** Memo counters for the stats snapshot. *)
val memo_hits : memo -> int

val memo_misses : memo -> int
val memo_evictions : memo -> int
