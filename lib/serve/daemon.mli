(** The analysis daemon: concurrent clients over Unix-domain and/or
    loopback TCP sockets, speaking the CRC-framed {!Wire} protocol.

    Robustness model (see DESIGN.md "Analysis daemon"):
    - connection-level admission control past [max_clients] and a
      bounded compute gate ([workers] running, [queue_depth] queued) —
      both shed with typed [Overloaded { retry_after }] frames;
    - per-request deadlines enforced by cancellation tokens that a
      ticker thread expires; the engine polls them between points;
    - whole-frame read/write timeouts, so slow-loris clients get typed
      [Io_timeout] frames and slow readers can never hold a compute
      slot (slots are released before the reply is written);
    - an LRU of marshalled responses keyed by request-body digest with
      single-flight dedup — a cached reply is byte-identical to the
      cold one;
    - streamed sweeps ([Wire.request.stream]): cells journaled to
      [state_dir/<key>.stream] as computed, chunk frames interleaved
      with ticker heartbeats, and resume-by-idempotency-key across
      connection loss, client death and daemon restarts — the
      reassembled reply is byte-identical to a one-shot one (proved by
      the summary frame's digest);
    - drain on the first SIGINT/SIGTERM (via the global cancel token)
      or {!stop}: listeners close, in-flight requests get
      [drain_grace] seconds to deliver, then leftovers are cancelled.
      {!serve} returns normally, so a drained daemon exits 0. *)

type config = {
  socket_path : string option;  (** Unix-domain listener (unlinked on exit) *)
  tcp_port : int option;
      (** loopback TCP listener; [Some 0] binds an ephemeral port,
          reported by {!tcp_port} *)
  workers : int;  (** concurrent compute slots (>= 1) *)
  queue_depth : int;  (** admissions queued past the slots (>= 0) *)
  max_clients : int;  (** open connections before accept-time shedding *)
  cache_entries : int;  (** LRU capacity; 0 disables caching *)
  read_timeout : float;  (** whole-frame read deadline, seconds *)
  write_timeout : float;  (** whole-frame write deadline, seconds *)
  default_deadline : float option;
      (** applied to requests that carry none *)
  drain_grace : float;  (** shutdown grace for in-flight requests *)
  retry_after : float;  (** hint carried by [Overloaded] frames *)
  strict : bool;  (** run the engine in [--strict] guard mode *)
  state_dir : string option;
      (** request-journal directory for streamed sweeps (created if
          missing); [None] streams without persistence — resume then
          saves network replay but recomputes cells *)
  chunk_points : int;  (** sweep cells per streamed chunk frame (>= 1) *)
  heartbeat : float;
      (** seconds of stream silence before the ticker writes a
          progress frame (> 0) *)
  memo_entries : int;  (** plan/grid memo capacity; 0 disables it *)
}

(** 2 workers, queue 8, 32 clients, 128 cache entries, 10 s I/O
    timeouts, no default deadline, 5 s drain grace, 0.1 s retry hint,
    non-strict, no state dir, 16-point chunks, 1 s heartbeat, 64 memo
    entries — and no listeners: set at least one of [socket_path] /
    [tcp_port]. *)
val default_config : config

type t

(** [create cfg] — validate [cfg] and bind the listeners (so the
    caller knows the ephemeral port before {!serve} blocks). Raises
    [Invalid_argument] on a listener-less or malformed config and
    [Unix.Unix_error] when binding fails. *)
val create : config -> t

(** The actual TCP port after an ephemeral bind. *)
val tcp_port : t -> int option

(** Request a drain programmatically (same path as the first signal). *)
val stop : t -> unit

(** [serve t] — run accept loop, connection threads and deadline ticker
    until {!stop} or the global cancel token fires, then drain and
    return the final counters. Call
    {!Runner.Shutdown.ignore_sigpipe}/[install_handlers] first in a
    real process. *)
val serve : t -> Wire.server_stats
