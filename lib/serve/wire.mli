(** Request/response protocol of the analysis daemon.

    Messages are {!Runner.Journal.Frame} CRC-32 frames whose index
    field carries a message tag and whose payload is a [Marshal] of a
    plain record. Grammar (tags):

    {v
    1 request     client -> daemon   Marshal of request
    2 result      daemon -> client   Marshal of response
    3 error       daemon -> client   Marshal of Pllscope_error.t
    4 overloaded  daemon -> client   Marshal of Pllscope_error.t
    v}

    The [overloaded] tag is an [error] frame whose payload is always
    [Overloaded _]; it is distinguished at the tag level so trivial
    clients can implement retry-after without decoding payloads. *)

type request_body =
  | Analyze of Pll_lib.Design.spec
      (** LTI vs time-varying loop reports for one design. *)
  | Bode of { spec : Pll_lib.Design.spec; points : int }
      (** Open-loop [A(jω)] and effective [λ(jω)] sweeps. *)
  | Sweep of { spec : Pll_lib.Design.spec; ratios : float array }
      (** Fig. 7 ratio sweep over explicit ratios. *)
  | Stats  (** Server counters; never cached, never queued. *)
  | Health  (** Liveness probe; never cached, never queued. *)

(** [deadline] is a per-request budget in seconds (from daemon receipt);
    the daemon substitutes its configured default when [None]. *)
type request = { deadline : float option; body : request_body }

type analyze_result = {
  lti : Pll_lib.Analysis.loop_report;
  eff : Pll_lib.Analysis.loop_report;
  metrics : Pll_lib.Analysis.closed_loop_metrics;
  stable : bool;
}

type bode_point = { omega : float; mag_db : float; phase_deg : float }

(** Log-grid sweeps of the classical and effective open loops on the
    same grid. *)
type bode_result = { a : bode_point array; lambda : bode_point array }

(** Mirror of {!Parallel.Sweep.partial}: [rows.(i)] is [None] exactly
    when ratio [i] failed (or was cancelled by the request deadline),
    with the typed reason in [failures]. *)
type sweep_result = {
  rows : Pll_lib.Analysis.ratio_point option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

type server_stats = {
  served : int;  (** successful replies written *)
  shed : int;  (** requests refused with [Overloaded] *)
  cache_hits : int;
  cache_misses : int;
  request_errors : int;  (** typed error replies (excluding sheds) *)
  io_timeouts : int;  (** reads/writes that hit their frame deadline *)
  active : int;  (** compute slots in use at snapshot time *)
  uptime_s : float;
  robust : Robust.Stats.t;
}

type response =
  | R_analyze of analyze_result
  | R_bode of bode_result
  | R_sweep of sweep_result
  | R_stats of server_stats
  | R_healthy

val tag_request : int
val tag_result : int
val tag_error : int
val tag_overloaded : int

(** Digest of the Marshal bytes of the request {e body} — the deadline
    envelope is deliberately excluded, so identical analyses share a
    cache slot regardless of caller patience. *)
val cache_key : request_body -> string

(** Compute requests are cacheable; [Stats]/[Health] are not. *)
val cacheable : request_body -> bool

val body_name : request_body -> string
val marshal_request : request -> string
val marshal_response : response -> string

(** All sends take an optional whole-frame [timeout] (see
    {!Runner.Journal.Frame.write_result}); a stalled peer surfaces as
    [Error (Io_timeout _)], never as a wedged daemon thread. *)

val send_request :
  ?timeout:float ->
  Unix.file_descr ->
  request ->
  (unit, Robust.Pllscope_error.t) result

(** Send a pre-marshalled [response] payload (tag [result]). The daemon
    caches and replays these bytes verbatim, which is what makes cached
    replies byte-identical to cold ones. *)
val send_response_payload :
  ?timeout:float ->
  Unix.file_descr ->
  string ->
  (unit, Robust.Pllscope_error.t) result

(** Send a typed error frame; [Overloaded _] goes out under the
    [overloaded] tag, everything else under [error]. *)
val send_error :
  ?timeout:float ->
  Unix.file_descr ->
  Robust.Pllscope_error.t ->
  (unit, Robust.Pllscope_error.t) result

(** Daemon side. [Ok None] — clean EOF (including a client that died
    mid-frame: torn frames read as EOF by construction). [Error _] —
    corruption ([Parse]) or a stalled client ([Io_timeout]). *)
val recv_request :
  ?timeout:float ->
  Unix.file_descr ->
  (request option, Robust.Pllscope_error.t) result

(** Client side. Decodes a [result] frame to [Ok]; [error]/[overloaded]
    frames, EOF-before-reply, corruption and reply timeouts all come
    back as typed [Error]s. *)
val recv_reply :
  ?timeout:float ->
  Unix.file_descr ->
  (response, Robust.Pllscope_error.t) result
