(** Request/response protocol of the analysis daemon.

    Messages are {!Runner.Journal.Frame} CRC-32 frames whose index
    field carries a message tag and whose payload is a [No_sharing]
    [Marshal] of a plain record. Grammar (tags):

    {v
    1 request     client -> daemon   Marshal of request
    2 result      daemon -> client   Marshal of response
    3 error       daemon -> client   Marshal of Pllscope_error.t
    4 overloaded  daemon -> client   Marshal of Pllscope_error.t
    5 chunk       daemon -> client   Marshal of chunk (streamed cells)
    6 summary     daemon -> client   Marshal of summary (closes a stream)
    7 progress    daemon -> client   Marshal of progress (heartbeat)
    v}

    The [overloaded] tag is an [error] frame whose payload is always
    [Overloaded _]; it is distinguished at the tag level so trivial
    clients can implement retry-after without decoding payloads.

    A streamed sweep reply is a sequence of [chunk] frames (ascending
    [seq], cells addressed by absolute point index) closed by one
    [summary] frame; [progress] frames may be interleaved anywhere and
    carry no data a client must retain — they exist so a reader can
    distinguish slow-compute from dead-peer. *)

type request_body =
  | Analyze of Pll_lib.Design.spec
      (** LTI vs time-varying loop reports for one design. *)
  | Bode of { spec : Pll_lib.Design.spec; points : int }
      (** Open-loop [A(jω)] and effective [λ(jω)] sweeps. *)
  | Sweep of { spec : Pll_lib.Design.spec; ratios : float array }
      (** Fig. 7 ratio sweep over explicit ratios. *)
  | Stats  (** Server counters; never cached, never queued. *)
  | Health  (** Liveness probe; never cached, never queued. *)

(** The request envelope. [deadline] is a per-request budget in seconds
    (from daemon receipt); the daemon substitutes its configured default
    when [None]. [key] is an idempotency key (use {!stable_key}) naming
    the server-side journal a streamed request persists to; [None]
    disables persistence. [resume_from] is the number of contiguous
    leading cells the client already holds — the daemon starts streaming
    at that index. [stream] requests a chunked reply (honoured for
    [Sweep] bodies; others answer one-shot regardless). *)
type request = {
  deadline : float option;
  key : string option;
  resume_from : int;
  stream : bool;
  body : request_body;
}

(** [oneshot ?deadline body] — the classic non-streamed envelope:
    no key, no resume, no streaming. *)
val oneshot : ?deadline:float -> request_body -> request

type analyze_result = {
  lti : Pll_lib.Analysis.loop_report;
  eff : Pll_lib.Analysis.loop_report;
  metrics : Pll_lib.Analysis.closed_loop_metrics;
  stable : bool;
}

type bode_point = { omega : float; mag_db : float; phase_deg : float }

(** Log-grid sweeps of the classical and effective open loops on the
    same grid. *)
type bode_result = { a : bode_point array; lambda : bode_point array }

(** Mirror of {!Parallel.Sweep.partial}: [rows.(i)] is [None] exactly
    when ratio [i] failed (or was cancelled by the request deadline),
    with the typed reason in [failures]. *)
type sweep_result = {
  rows : Pll_lib.Analysis.ratio_point option array;
  failures : (int * Robust.Pllscope_error.t) list;
  total : int;
}

type server_stats = {
  served : int;  (** successful replies written *)
  shed : int;  (** requests refused with [Overloaded] *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;  (** LRU entries displaced when full *)
  single_flight_waits : int;
      (** requests that deduplicated onto an in-flight identical one *)
  request_errors : int;  (** typed error replies (excluding sheds) *)
  io_timeouts : int;  (** reads/writes that hit their frame deadline *)
  streams_started : int;  (** streamed sweep requests admitted *)
  streams_resumed : int;  (** of those, ones arriving with a journal *)
  chunks_sent : int;
  points_computed : int;  (** sweep cells evaluated by the engine *)
  points_replayed : int;  (** sweep cells served from request journals *)
  stale_keys : int;  (** journals discarded on fingerprint mismatch *)
  heartbeats : int;  (** progress frames written by the ticker *)
  memo_hits : int;  (** plan/grid memo *)
  memo_misses : int;
  memo_evictions : int;
  active : int;  (** compute slots in use at snapshot time *)
  uptime_s : float;
  robust : Robust.Stats.t;
}

type response =
  | R_analyze of analyze_result
  | R_bode of bode_result
  | R_sweep of sweep_result
  | R_stats of server_stats
  | R_healthy

(** One streamed batch of sweep cells: [cells.(k)] is the encoded cell
    of absolute point index [base + k]. [seq] numbers chunks within one
    reply stream from 0. *)
type chunk = { seq : int; base : int; cells : string array }

(** Closes a stream. [digest] is [Digest.string] of the canonical
    one-shot reply payload (the marshalled [R_sweep]), letting the
    client prove its reassembly byte-identical. [computed]/[replayed]
    split the points by whether this request evaluated them or replayed
    them from its journal. *)
type summary = {
  total : int;
  chunks : int;
  digest : string;
  computed : int;
  replayed : int;
}

(** Heartbeat: the request is alive and [done_points] of
    [total_points] cells exist so far. *)
type progress = { done_points : int; total_points : int }

type stream_event =
  | Ev_chunk of chunk
  | Ev_summary of summary
  | Ev_progress of progress
  | Ev_reply of response
      (** a one-shot reply to a request that asked to stream (non-sweep
          bodies, or a daemon with streaming disabled) *)

val tag_request : int
val tag_result : int
val tag_error : int
val tag_overloaded : int
val tag_chunk : int
val tag_summary : int
val tag_progress : int

(** Digest of the Marshal bytes of the request {e body} — the envelope
    is deliberately excluded, so identical analyses share a cache slot
    regardless of caller patience. Process-local identity only. *)
val cache_key : request_body -> string

(** Compute requests are cacheable; [Stats]/[Health] are not. *)
val cacheable : request_body -> bool

val body_name : request_body -> string

(** Canonical text fingerprint of one design spec (field-ordered hex of
    the raw IEEE-754 bits); building block of {!body_fingerprint} and
    the plan-memo keys. *)
val spec_fingerprint : Pll_lib.Design.spec -> string

(** Canonical text fingerprint of a request body: field-ordered hex of
    the raw IEEE-754 bits ([Int64.bits_of_float]) of every float. Two
    bodies share a fingerprint iff they are bit-identical analyses; the
    encoding contains no Marshal bytes, so it is stable across OCaml
    versions — safe to persist in request journals that outlive the
    daemon process. *)
val body_fingerprint : request_body -> string

(** [stable_key body] — hex MD5 of {!body_fingerprint}: the idempotency
    key clients put in {!request}[.key]. Golden-pinned by the test
    suite; changing either encoder is a wire-format break. *)
val stable_key : request_body -> string

(** One streamed sweep cell: exactly what {!sweep_result} records for
    one point — the row, or the typed reason there is none. *)
type cell = (Pll_lib.Analysis.ratio_point, Robust.Pllscope_error.t) result

val encode_cell : cell -> string
val decode_cell : string -> (cell, Robust.Pllscope_error.t) result

(** [assemble_sweep cells] — rebuild the exact {!sweep_result} a
    single-shot reply would carry from one encoded cell per point
    (failures ascending by index, matching
    {!Parallel.Sweep.grid_checked}). [Error] if any cell is corrupt.
    [marshal_response (R_sweep (assemble_sweep cells))] is
    byte-identical to the uninterrupted one-shot reply. *)
val assemble_sweep :
  string array -> (sweep_result, Robust.Pllscope_error.t) result

val marshal_request : request -> string
val marshal_response : response -> string

(** The chunk's frame payload — exposed so the daemon's [chunk-torn]
    injection site can tear the encoded frame mid-write. *)
val marshal_chunk : chunk -> string

(** All sends take an optional whole-frame [timeout] (see
    {!Runner.Journal.Frame.write_result}); a stalled peer surfaces as
    [Error (Io_timeout _)], never as a wedged daemon thread. *)

val send_request :
  ?timeout:float ->
  Unix.file_descr ->
  request ->
  (unit, Robust.Pllscope_error.t) result

(** Send a pre-marshalled [response] payload (tag [result]). The daemon
    caches and replays these bytes verbatim, which is what makes cached
    replies byte-identical to cold ones. *)
val send_response_payload :
  ?timeout:float ->
  Unix.file_descr ->
  string ->
  (unit, Robust.Pllscope_error.t) result

(** Send a typed error frame; [Overloaded _] goes out under the
    [overloaded] tag, everything else under [error]. *)
val send_error :
  ?timeout:float ->
  Unix.file_descr ->
  Robust.Pllscope_error.t ->
  (unit, Robust.Pllscope_error.t) result

val send_chunk :
  ?timeout:float ->
  Unix.file_descr ->
  chunk ->
  (unit, Robust.Pllscope_error.t) result

val send_summary :
  ?timeout:float ->
  Unix.file_descr ->
  summary ->
  (unit, Robust.Pllscope_error.t) result

val send_progress :
  ?timeout:float ->
  Unix.file_descr ->
  progress ->
  (unit, Robust.Pllscope_error.t) result

(** Daemon side. [Ok None] — clean EOF (including a client that died
    mid-frame: torn frames read as EOF by construction). [Error _] —
    corruption ([Parse]) or a stalled client ([Io_timeout]). *)
val recv_request :
  ?timeout:float ->
  Unix.file_descr ->
  (request option, Robust.Pllscope_error.t) result

(** Client side. Decodes a [result] frame to [Ok]; [error]/[overloaded]
    frames, EOF-before-reply, corruption and reply timeouts all come
    back as typed [Error]s. *)
val recv_reply :
  ?timeout:float ->
  Unix.file_descr ->
  (response, Robust.Pllscope_error.t) result

(** Client side of a streamed reply. EOF mid-stream decodes as a
    retryable closed-connection error (the caller reconnects and
    resumes by key); [timeout] bounds the wait for the next frame of
    any kind, so heartbeats keep a healthy-but-slow stream alive while
    a dead peer still fails within one timeout. *)
val recv_event :
  ?timeout:float ->
  Unix.file_descr ->
  (stream_event, Robust.Pllscope_error.t) result
