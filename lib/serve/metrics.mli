(** Daemon request counters (atomics; bumped from connection threads)
    and their JSON rendering for [pllscope serve --status]. *)

type t

val create : unit -> t
val incr_served : t -> unit
val incr_shed : t -> unit
val incr_cache_hit : t -> unit
val incr_cache_miss : t -> unit
val incr_request_error : t -> unit
val incr_io_timeout : t -> unit

(** [snapshot t ~active] — current counters plus the process-wide
    {!Robust.Stats} snapshot, as the wire record the [Stats] request
    returns. *)
val snapshot : t -> active:int -> Wire.server_stats

(** Flat JSON object of every counter (server and robust-layer). *)
val json_of_stats : Wire.server_stats -> string
