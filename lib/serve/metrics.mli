(** Daemon request counters (atomics; bumped from connection threads)
    and their JSON rendering for [pllscope serve --status]. *)

type t

val create : unit -> t
val incr_served : t -> unit
val incr_shed : t -> unit
val incr_cache_hit : t -> unit
val incr_cache_miss : t -> unit

(** A request that found an identical one in flight and waited to
    replay the leader's bytes (counted once per request). *)
val incr_single_flight_wait : t -> unit

val incr_request_error : t -> unit
val incr_io_timeout : t -> unit
val incr_stream_started : t -> unit
val incr_stream_resumed : t -> unit
val incr_chunk_sent : t -> unit

(** Sweep cells this daemon evaluated / replayed from request journals.
    The pair is what lets the resume tests prove "recompute only
    un-acked chunks". *)
val add_points_computed : t -> int -> unit

val add_points_replayed : t -> int -> unit
val points_computed : t -> int
val points_replayed : t -> int
val incr_stale_key : t -> unit
val incr_heartbeat : t -> unit

(** [snapshot t ~active ~cache_evictions ~memo_hits ~memo_misses
    ~memo_evictions] — current counters plus the process-wide
    {!Robust.Stats} snapshot, as the wire record the [Stats] request
    returns. The labelled arguments carry the counters that live in
    {!Lru}/{!Memo} rather than here. *)
val snapshot :
  t ->
  active:int ->
  cache_evictions:int ->
  memo_hits:int ->
  memo_misses:int ->
  memo_evictions:int ->
  Wire.server_stats

(** Flat JSON object of every counter (server and robust-layer). *)
val json_of_stats : Wire.server_stats -> string
