(* The analysis daemon.

   Architecture: one accept loop (the calling thread), one ticker
   thread, and one sys-thread per connection. All shared state — the
   admission gate, the response cache, single-flight bookkeeping, the
   deadline watch list and the connection table — lives behind a single
   mutex [t.m] with a single condition [t.c] that every state change
   (and every ticker tick) broadcasts. Sys-threads all share domain 0,
   so the per-request compute runs on the caller's thread and the
   watchdog machinery of Parallel.Pool (whose control block is
   domain-local) is deliberately not used here; per-request deadlines
   are enforced by cancellation tokens instead.

   Robustness decisions, in the order a request meets them:

   - Admission at accept: past [max_clients] open connections the
     daemon answers a typed [Overloaded] frame and closes — before
     reading a byte, so a connection flood cannot consume read
     timeouts' worth of daemon attention.
   - Framed reads carry a whole-frame deadline ([read_timeout]): an
     idle client is closed quietly after that long, and a slow-loris
     client trickling a frame gets a typed [Io_timeout] error frame
     back. Torn frames (client died mid-write) read as clean EOF by
     frame-codec construction.
   - The compute gate admits [workers] concurrent requests and queues
     [queue_depth] more; past that the request is shed with
     [Overloaded { retry_after }]. Queued requests still honour their
     deadline (the ticker's broadcast wakes them to re-check).
   - Every compute request owns a fresh Cancel token registered with
     its absolute deadline; the ticker cancels expired tokens and the
     engine polls them between points, so an overrun burns at most one
     point's work beyond its budget.
   - Responses are cached as marshalled payload bytes keyed by the
     digest of the request body (deadline excluded), with single-flight
     dedup: concurrent identical requests compute once, waiters replay
     the leader's bytes. A cached reply is byte-identical to the cold
     one. Leader failure wakes waiters, one of which becomes the new
     leader.
   - The compute slot is released *before* the response is written, so
     a slow-reading client can never hold a worker slot; the write
     itself carries [write_timeout]. (Streamed replies are the one
     exception: compute and delivery interleave, so the slot is held
     across chunk writes — each bounded by [write_timeout] — and
     released at stream end.)
   - Drain: when the global cancel token fires (first SIGINT/SIGTERM)
     or [stop] is called, listeners close, idle connections are nudged
     out of their reads, in-flight requests get [drain_grace] seconds
     to finish and deliver, then leftover tokens are cancelled and
     sockets shut down. [serve] then returns normally — exit 0 — with
     the final stats. A second signal force-exits via
     Runner.Shutdown.

   Streamed sweeps ([request.stream], Sweep bodies only) add a
   resumable delivery layer on top:

   - Cells (one per ratio, Marshal of the point-or-typed-failure) are
     computed window by window and journaled to
     [state_dir/<key>.stream] through Runner.Journal the moment they
     exist, with frame index 0 pinning the request's canonical
     fingerprint. A client reconnecting with the same idempotency key
     — after connection loss, client kill -9, or a daemon restart —
     replays journaled cells and recomputes only the missing ones.
     A fingerprint mismatch (or the [stale-key] injection) discards
     the journal and heals by recomputing from scratch.
   - Schedule-dependent failures (Cancelled, Timed_out) are never
     journaled and never streamed: they abort the stream with a typed
     error frame, and the journal keeps every deterministic cell for
     the resume.
   - The final summary frame carries the digest of the canonical
     one-shot reply payload, which is also seeded into the response
     LRU — so the client can prove its reassembly byte-identical, and
     a later one-shot request for the same sweep is a cache hit.
   - While a stream computes, the ticker writes progress heartbeats on
     the connection (serialised with chunk writes by a per-connection
     write mutex) so the client can tell slow-compute from dead-peer. *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type config = {
  socket_path : string option;
  tcp_port : int option;
  workers : int;
  queue_depth : int;
  max_clients : int;
  cache_entries : int;
  read_timeout : float;
  write_timeout : float;
  default_deadline : float option;
  drain_grace : float;
  retry_after : float;
  strict : bool;
  state_dir : string option;
  chunk_points : int;
  heartbeat : float;
  memo_entries : int;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    workers = 2;
    queue_depth = 8;
    max_clients = 32;
    cache_entries = 128;
    read_timeout = 10.0;
    write_timeout = 10.0;
    default_deadline = None;
    drain_grace = 5.0;
    retry_after = 0.1;
    strict = false;
    state_dir = None;
    chunk_points = 16;
    heartbeat = 1.0;
    memo_entries = 64;
  }

type conn = {
  fd : Unix.file_descr;
  mutable busy : bool;
  wm : Mutex.t;
      (* serialises every frame write on [fd] once a stream is live:
         chunk/summary/error writes from the handler thread and
         progress heartbeats from the ticker *)
  mutable streaming : (int * int) option;  (* done points, total *)
  mutable last_frame : float;
  mutable closed : bool;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  cache : Lru.t;
  memo : Engine.memo;
  m : Mutex.t;
  c : Condition.t;
  mutable active : int;
  mutable waiting : int;
  inflight : (string, unit) Hashtbl.t;
  stream_inflight : (string, unit) Hashtbl.t;
  mutable watched : (Parallel.Cancel.t * float * float) list;
      (* token, absolute deadline, configured seconds *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable stopping : bool;
  mutable finished : bool;
  stop_requested : bool Atomic.t;
  listeners : Unix.file_descr list;
  bound_port : int option;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let quiet_close fd =
  try Unix.close fd with Unix.Unix_error (_, "close", _) -> ()

let quiet_shutdown fd mode =
  try Unix.shutdown fd mode with Unix.Unix_error (_, "shutdown", _) -> ()

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      quiet_close fd;
      raise e);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> ()
  | exception e ->
      quiet_close fd;
      raise e);
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" then ()
  else if Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if cfg.queue_depth < 0 then
    invalid_arg "Daemon.create: queue_depth must be >= 0";
  if cfg.max_clients < 1 then
    invalid_arg "Daemon.create: max_clients must be >= 1";
  if cfg.chunk_points < 1 then
    invalid_arg "Daemon.create: chunk_points must be >= 1";
  if cfg.heartbeat <= 0.0 then
    invalid_arg "Daemon.create: heartbeat must be > 0";
  if cfg.socket_path = None && cfg.tcp_port = None then
    invalid_arg "Daemon.create: no listener configured (socket or port)";
  Option.iter mkdir_p cfg.state_dir;
  let unix_listener = Option.map listen_unix cfg.socket_path in
  let tcp_listener = Option.map listen_tcp cfg.tcp_port in
  let listeners =
    Option.to_list unix_listener
    @ List.map fst (Option.to_list tcp_listener)
  in
  {
    cfg;
    metrics = Metrics.create ();
    cache = Lru.create ~cap:cfg.cache_entries;
    memo = Engine.create_memo ~cap:cfg.memo_entries;
    m = Mutex.create ();
    c = Condition.create ();
    active = 0;
    waiting = 0;
    inflight = Hashtbl.create 16;
    stream_inflight = Hashtbl.create 16;
    watched = [];
    conns = [];
    threads = [];
    stopping = false;
    finished = false;
    stop_requested = Atomic.make false;
    listeners;
    bound_port = Option.map snd tcp_listener;
  }

let tcp_port t = t.bound_port
let stop t = Atomic.set t.stop_requested true

let should_stop t =
  Atomic.get t.stop_requested
  || Parallel.Cancel.is_cancelled (Parallel.Cancel.global ())

(* ------------------------------------------------------------------ *)
(* deadline watch + ticker                                             *)

let error_of_reason r =
  Robust.Pllscope_error.Cancelled
    { reason = Parallel.Cancel.reason_to_string r }

let cancel_error token =
  match Parallel.Cancel.get token with
  | Some r -> error_of_reason r
  | None -> Robust.Pllscope_error.Cancelled { reason = "cancelled" }

let with_watch t token deadline f =
  match deadline with
  | None -> f ()
  | Some s when s <= 0.0 ->
      (* already expired on arrival: cancel deterministically, no
         ticker race *)
      Parallel.Cancel.cancel token (Parallel.Cancel.Deadline s);
      f ()
  | Some s ->
      let until = now () +. s in
      locked t (fun () -> t.watched <- (token, until, s) :: t.watched);
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              t.watched <-
                List.filter (fun (tok, _, _) -> tok != token) t.watched))
        f

(* Quiet streams get a heartbeat so the client can tell slow-compute
   from dead-peer. [try_lock]: if the handler is mid-chunk the stream
   is plainly alive and the ticker must not queue behind the write. *)
let heartbeat_conn t tnow conn =
  match conn.streaming with
  | Some _ when tnow -. conn.last_frame >= t.cfg.heartbeat ->
      if Mutex.try_lock conn.wm then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock conn.wm)
          (fun () ->
            match conn.streaming with
            | Some (done_points, total_points)
              when (not conn.closed)
                   && tnow -. conn.last_frame >= t.cfg.heartbeat -> (
                match
                  Wire.send_progress ~timeout:t.cfg.write_timeout conn.fd
                    { Wire.done_points; total_points }
                with
                | Ok () ->
                    conn.last_frame <- now ();
                    Metrics.incr_heartbeat t.metrics
                | Error _ -> ()
                | exception Unix.Unix_error (_, _, _) -> ())
            | _ -> ())
  | _ -> ()

let ticker t =
  let rec loop () =
    let done_ = locked t (fun () -> t.finished) in
    if not done_ then begin
      Thread.delay 0.05;
      let t_now = now () in
      locked t (fun () ->
          List.iter
            (fun (tok, until, s) ->
              if t_now > until then
                Parallel.Cancel.cancel tok (Parallel.Cancel.Deadline s))
            t.watched;
          (* wake gate and single-flight waiters so deadline expiry and
             drain are noticed without their own timed waits *)
          Condition.broadcast t.c);
      let conns = locked t (fun () -> t.conns) in
      List.iter (heartbeat_conn t t_now) conns;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* admission gate                                                      *)

let acquire t token =
  locked t (fun () ->
      if t.stopping then `Shed
      else if t.active < t.cfg.workers then begin
        t.active <- t.active + 1;
        `Go
      end
      else if t.waiting >= t.cfg.queue_depth then `Shed
      else begin
        t.waiting <- t.waiting + 1;
        let rec wait () =
          if Parallel.Cancel.is_cancelled token then begin
            t.waiting <- t.waiting - 1;
            `Cancelled
          end
          else if t.stopping then begin
            t.waiting <- t.waiting - 1;
            `Shed
          end
          else if t.active < t.cfg.workers then begin
            t.waiting <- t.waiting - 1;
            t.active <- t.active + 1;
            `Go
          end
          else begin
            Condition.wait t.c t.m;
            wait ()
          end
        in
        wait ()
      end)

let release t =
  locked t (fun () ->
      t.active <- t.active - 1;
      Condition.broadcast t.c)

(* ------------------------------------------------------------------ *)
(* compute with cache + single-flight                                  *)

let run_body t ~token (body : Wire.request_body) =
  match body with
  | Wire.Analyze spec ->
      Wire.R_analyze (Engine.analyze ~memo:t.memo ~cancel:token spec)
  | Wire.Bode { spec; points } ->
      Wire.R_bode (Engine.bode ~memo:t.memo ~cancel:token spec ~points)
  | Wire.Sweep { spec; ratios } ->
      Wire.R_sweep (Engine.sweep ~cancel:token spec ratios)
  | Wire.Stats | Wire.Health ->
      invalid_arg "Daemon.run_body: stats/health are not compute requests"

(* Returns the marshalled response payload. The leader computes and
   caches; concurrent identical requests wait on [t.c] and replay the
   cached bytes. If the leader fails, its typed error is its own
   answer; one woken waiter finds neither cache entry nor inflight
   mark and becomes the new leader. *)
let compute t ~key ~token body =
  let deduped = ref false in
  let rec obtain () =
    let verdict =
      locked t (fun () ->
          match Lru.find t.cache key with
          | Some payload -> `Cached payload
          | None ->
              if Hashtbl.mem t.inflight key then
                if Parallel.Cancel.is_cancelled token then `Cancelled
                else begin
                  if not !deduped then begin
                    deduped := true;
                    Metrics.incr_single_flight_wait t.metrics
                  end;
                  Condition.wait t.c t.m;
                  `Retry
                end
              else begin
                Hashtbl.add t.inflight key ();
                `Lead
              end)
    in
    match verdict with
    | `Cached payload ->
        Metrics.incr_cache_hit t.metrics;
        Ok payload
    | `Cancelled -> Error (cancel_error token)
    | `Retry -> obtain ()
    | `Lead ->
        Metrics.incr_cache_miss t.metrics;
        let outcome =
          match run_body t ~token body with
          | resp -> Ok (Wire.marshal_response resp)
          | exception Robust.Pllscope_error.Error err -> Error err
          | exception Parallel.Cancel.Cancelled r -> Error (error_of_reason r)
        in
        locked t (fun () ->
            Hashtbl.remove t.inflight key;
            (match outcome with
            | Ok payload -> Lru.add t.cache key payload
            | Error _ -> ());
            Condition.broadcast t.c);
        outcome
  in
  obtain ()

(* ------------------------------------------------------------------ *)
(* per-connection protocol                                             *)

(* false => the connection is no longer usable *)
let send_payload t fd payload =
  match
    Wire.send_response_payload ~timeout:t.cfg.write_timeout fd payload
  with
  | Ok () -> true
  | Error _ ->
      Metrics.incr_io_timeout t.metrics;
      false
  | exception
      Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _) ->
      false

let send_error_frame t fd err =
  match Wire.send_error ~timeout:t.cfg.write_timeout fd err with
  | Ok () -> true
  | Error _ ->
      Metrics.incr_io_timeout t.metrics;
      false
  | exception
      Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _) ->
      false

let stats_snapshot t =
  let active, cache_evictions =
    locked t (fun () -> (t.active, Lru.evictions t.cache))
  in
  Metrics.snapshot t.metrics ~active ~cache_evictions
    ~memo_hits:(Engine.memo_hits t.memo)
    ~memo_misses:(Engine.memo_misses t.memo)
    ~memo_evictions:(Engine.memo_evictions t.memo)

(* ------------------------------------------------------------------ *)
(* streamed sweeps                                                     *)

let write_exact fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let request_parse_err msg =
  Robust.Pllscope_error.Parse { file = "<request>"; line = 0; col = 0; msg }

(* Keys name files under [state_dir]; accept only flat, dot-free-prefix
   names so a hostile key cannot traverse out of the directory. *)
let valid_key k =
  let n = String.length k in
  n > 0 && n <= 64
  && k.[0] <> '.'
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || c = '-' || c = '_' || c = '.')
       k

let set_streaming conn v =
  Mutex.lock conn.wm;
  conn.streaming <- v;
  conn.last_frame <- now ();
  Mutex.unlock conn.wm

(* One frame on a streaming connection, serialised with the ticker's
   heartbeats; true iff the connection survives. *)
let stream_send t conn send =
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      match send conn.fd with
      | Ok () ->
          conn.last_frame <- now ();
          true
      | Error _ ->
          Metrics.incr_io_timeout t.metrics;
          false
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
        ->
          false)

(* Chunk delivery with the daemon-side net-fault sites armed:
   [chunk-torn] writes half the encoded frame then cuts the wire (the
   client reads it as clean EOF); [stream-disconnect] delivers the
   chunk, then cuts. Both model mid-stream connection loss the client
   must heal by resuming. *)
let send_chunk_inject t conn (c : Wire.chunk) =
  if Robust.Inject.fire Robust.Inject.Chunk_torn then begin
    let frame =
      Runner.Journal.Frame.encode ~tag:Wire.tag_chunk (Wire.marshal_chunk c)
    in
    let half = String.sub frame 0 (String.length frame / 2) in
    let (_ : bool) =
      stream_send t conn (fun fd ->
          write_exact fd half;
          Ok ())
    in
    quiet_shutdown conn.fd Unix.SHUTDOWN_ALL;
    false
  end
  else begin
    let alive =
      stream_send t conn (fun fd ->
          Wire.send_chunk ~timeout:t.cfg.write_timeout fd c)
    in
    if not alive then false
    else begin
      Metrics.incr_chunk_sent t.metrics;
      if Robust.Inject.fire Robust.Inject.Stream_disconnect then begin
        quiet_shutdown conn.fd Unix.SHUTDOWN_ALL;
        false
      end
      else true
    end
  end

(* Remap a typed error whose task field is local to a window's
   sub-grid back to the global point index, so streamed failure cells
   are byte-identical to the single-shot sweep's. *)
let globalize_cell_error ~global (err : Robust.Pllscope_error.t) =
  match err with
  | Worker_failure w -> Robust.Pllscope_error.Worker_failure { w with task = global w.task }
  | Timed_out tt -> Robust.Pllscope_error.Timed_out { tt with task = global tt.task }
  | Singular _ | Non_convergence _ | Non_finite _ | Parse _ | Cancelled _
  | Overloaded _ | Io_timeout _ | Budget_exhausted _ | Circuit_open _ ->
      err

(* The stream body, run while holding a compute slot. Returns true iff
   the connection is still usable afterwards. *)
let stream_compute t conn (req : Wire.request) ~spec ~ratios ~key ~token =
  let n = Array.length ratios in
  let fp = Wire.body_fingerprint req.Wire.body in
  let journal_path =
    match (t.cfg.state_dir, key) with
    | Some dir, Some k -> Some (Filename.concat dir (k ^ ".stream"))
    | _ -> None
  in
  (* replay the request journal, validating its identity header *)
  let replayed_cells = Hashtbl.create 64 in
  let have_header = ref false in
  (match journal_path with
  | None -> ()
  | Some path -> (
      let frames, corrupt =
        match Runner.Journal.replay path with
        | frames -> (frames, false)
        | exception Robust.Pllscope_error.Error _ -> ([], true)
      in
      match frames with
      | [] -> if corrupt then (try Sys.remove path with Sys_error _ -> ())
      | _ -> (
          match List.assoc_opt 0 frames with
          | Some h
            when h = fp && not (Robust.Inject.fire Robust.Inject.Stale_key) ->
              have_header := true;
              List.iter
                (fun (idx, payload) ->
                  if
                    idx >= 1 && idx <= n
                    && not (Hashtbl.mem replayed_cells (idx - 1))
                  then Hashtbl.add replayed_cells (idx - 1) payload)
                frames
          | Some _ | None ->
              (* wrong body behind this key (or the stale-key fault):
                 self-heal by discarding and recomputing *)
              Metrics.incr_stale_key t.metrics;
              (try Sys.remove path with Sys_error _ -> ()))));
  let replayed = Hashtbl.length replayed_cells in
  if replayed > 0 then Metrics.incr_stream_resumed t.metrics;
  let journal = Option.map Runner.Journal.open_append journal_path in
  (match journal with
  | Some jr when not !have_header -> Runner.Journal.append jr ~index:0 fp
  | _ -> ());
  let close_journal () =
    match journal with Some jr -> Runner.Journal.close jr | None -> ()
  in
  let cells = Array.make n None in
  Hashtbl.iter
    (fun i payload -> if i < n then cells.(i) <- Some payload)
    replayed_cells;
  let done_count () =
    Array.fold_left (fun acc c -> if c = None then acc else acc + 1) 0 cells
  in
  set_streaming conn (Some (done_count (), n));
  let resume_from = max 0 (min req.Wire.resume_from n) in
  let computed = ref 0 in
  let chunks = ref 0 in
  let seq = ref 0 in
  let abort = ref None in
  let alive = ref true in
  let cp = t.cfg.chunk_points in
  let base = ref 0 in
  while !alive && Option.is_none !abort && !base < n do
    let stop = min n (!base + cp) in
    let missing = ref [] in
    for i = stop - 1 downto !base do
      if cells.(i) = None then missing := i :: !missing
    done;
    let idxs = Array.of_list !missing in
    if Array.length idxs > 0 then begin
      let sub = Array.map (fun i -> ratios.(i)) idxs in
      (* same call shape as Engine.sweep (chunk 1, default retries), so
         every cell is bit-identical to the one-shot compute *)
      let partial =
        Parallel.Sweep.grid_checked ~chunk:1 ~cancel:token
          (fun r -> Engine.ratio_point spec r)
          sub
      in
      Array.iteri
        (fun j i ->
          let cell : Wire.cell =
            match partial.Parallel.Sweep.values.(j) with
            | Some v -> Ok v
            | None -> (
                match
                  List.assoc_opt j partial.Parallel.Sweep.failures
                with
                | Some e -> Error (globalize_cell_error ~global:(fun _ -> i) e)
                | None ->
                    Error
                      (Robust.Pllscope_error.Worker_failure
                         {
                           task = i;
                           attempts = 0;
                           last = "Daemon.stream: point vanished";
                         }))
          in
          match cell with
          | Error
              ((Robust.Pllscope_error.Cancelled _ | Robust.Pllscope_error.Timed_out _)
               as e) ->
              (* schedule-dependent: never journaled, never streamed —
                 the stream aborts and the client resumes later *)
              if Option.is_none !abort then abort := Some e
          | _ ->
              let enc = Wire.encode_cell cell in
              cells.(i) <- Some enc;
              (match journal with
              | Some jr -> Runner.Journal.append jr ~index:(i + 1) enc
              | None -> ());
              incr computed)
        idxs
    end;
    if Option.is_none !abort then begin
      if stop > resume_from then begin
        let window =
          Array.init (stop - !base) (fun k -> Option.get cells.(!base + k))
        in
        let c = { Wire.seq = !seq; base = !base; cells = window } in
        incr seq;
        if send_chunk_inject t conn c then incr chunks else alive := false
      end;
      set_streaming conn (Some (done_count (), n));
      base := stop
    end
  done;
  set_streaming conn None;
  close_journal ();
  Metrics.add_points_computed t.metrics !computed;
  match !abort with
  | Some err ->
      Metrics.incr_request_error t.metrics;
      stream_send t conn (fun fd ->
          Wire.send_error ~timeout:t.cfg.write_timeout fd err)
  | None when not !alive -> false
  | None -> (
      let all = Array.map Option.get cells in
      match Wire.assemble_sweep all with
      | Error err ->
          (* a journaled cell failed to decode: the journal is poison —
             drop it so the next attempt recomputes *)
          (match journal_path with
          | Some path -> ( try Sys.remove path with Sys_error _ -> ())
          | None -> ());
          Metrics.incr_request_error t.metrics;
          stream_send t conn (fun fd ->
              Wire.send_error ~timeout:t.cfg.write_timeout fd err)
      | Ok sres ->
          let payload = Wire.marshal_response (Wire.R_sweep sres) in
          let digest = Digest.string payload in
          locked t (fun () ->
              Lru.add t.cache (Wire.cache_key req.Wire.body) payload);
          Metrics.add_points_replayed t.metrics (n - !computed);
          let summary =
            {
              Wire.total = n;
              chunks = !chunks;
              digest;
              computed = !computed;
              replayed = n - !computed;
            }
          in
          let ok =
            stream_send t conn (fun fd ->
                Wire.send_summary ~timeout:t.cfg.write_timeout fd summary)
          in
          if ok then Metrics.incr_served t.metrics;
          ok)

(* Streamed request entry: single-flight per idempotency key (a
   concurrent stream on the same key would race the journal), then the
   same deadline-token + compute-gate path as one-shot requests. *)
let handle_stream t conn (req : Wire.request) ~spec ~ratios =
  let fd = conn.fd in
  if Array.length ratios = 0 then begin
    Metrics.incr_request_error t.metrics;
    send_error_frame t fd (request_parse_err "Engine.sweep: empty ratio grid")
  end
  else
    let key =
      match req.Wire.key with Some k when valid_key k -> Some k | _ -> None
    in
    match (req.Wire.key, key) with
    | Some _, None ->
        Metrics.incr_request_error t.metrics;
        send_error_frame t fd
          (request_parse_err "Daemon.stream: malformed idempotency key")
    | _, _ -> (
        let claim =
          match key with
          | None -> `Go
          | Some k ->
              locked t (fun () ->
                  if Hashtbl.mem t.stream_inflight k then `Busy
                  else begin
                    Hashtbl.add t.stream_inflight k ();
                    `Go
                  end)
        in
        match claim with
        | `Busy ->
            Metrics.incr_shed t.metrics;
            send_error_frame t fd
              (Robust.Pllscope_error.Overloaded
                 { retry_after = t.cfg.retry_after })
        | `Go ->
            Fun.protect
              ~finally:(fun () ->
                match key with
                | Some k ->
                    locked t (fun () -> Hashtbl.remove t.stream_inflight k)
                | None -> ())
              (fun () ->
                let deadline =
                  match req.Wire.deadline with
                  | Some _ as d -> d
                  | None -> t.cfg.default_deadline
                in
                let token = Parallel.Cancel.create () in
                with_watch t token deadline @@ fun () ->
                match acquire t token with
                | `Shed ->
                    Metrics.incr_shed t.metrics;
                    send_error_frame t fd
                      (Robust.Pllscope_error.Overloaded
                         { retry_after = t.cfg.retry_after })
                | `Cancelled ->
                    Metrics.incr_request_error t.metrics;
                    send_error_frame t fd (cancel_error token)
                | `Go ->
                    Metrics.incr_stream_started t.metrics;
                    Fun.protect
                      ~finally:(fun () -> release t)
                      (fun () ->
                        stream_compute t conn req ~spec ~ratios ~key ~token)))

(* Handle one decoded request; true iff the connection survives. *)
let handle_request t conn (req : Wire.request) =
  let fd = conn.fd in
  match req.Wire.body with
  | Wire.Health ->
      let ok = send_payload t fd (Wire.marshal_response Wire.R_healthy) in
      if ok then Metrics.incr_served t.metrics;
      ok
  | Wire.Stats ->
      let ok =
        send_payload t fd
          (Wire.marshal_response (Wire.R_stats (stats_snapshot t)))
      in
      if ok then Metrics.incr_served t.metrics;
      ok
  | Wire.Sweep { spec; ratios } when req.Wire.stream ->
      handle_stream t conn req ~spec ~ratios
  | Wire.Analyze _ | Wire.Bode _ | Wire.Sweep _ -> (
      let key = Wire.cache_key req.Wire.body in
      let cached = locked t (fun () -> Lru.find t.cache key) in
      match cached with
      | Some payload ->
          Metrics.incr_cache_hit t.metrics;
          let ok = send_payload t fd payload in
          if ok then Metrics.incr_served t.metrics;
          ok
      | None -> (
          let deadline =
            match req.Wire.deadline with
            | Some _ as d -> d
            | None -> t.cfg.default_deadline
          in
          let token = Parallel.Cancel.create () in
          with_watch t token deadline @@ fun () ->
          match acquire t token with
          | `Shed ->
              Metrics.incr_shed t.metrics;
              send_error_frame t fd
                (Robust.Pllscope_error.Overloaded
                   { retry_after = t.cfg.retry_after })
          | `Cancelled ->
              Metrics.incr_request_error t.metrics;
              send_error_frame t fd (cancel_error token)
          | `Go -> (
              let outcome =
                Fun.protect
                  ~finally:(fun () -> release t)
                  (fun () -> compute t ~key ~token req.Wire.body)
              in
              match outcome with
              | Ok payload ->
                  let ok = send_payload t fd payload in
                  if ok then Metrics.incr_served t.metrics;
                  ok
              | Error err ->
                  Metrics.incr_request_error t.metrics;
                  send_error_frame t fd err)))

let draining t = locked t (fun () -> t.stopping)

let handle_conn t conn =
  let fd = conn.fd in
  let rec loop () =
    match Wire.recv_request ~timeout:t.cfg.read_timeout fd with
    | Ok None -> () (* clean EOF: client done (or died mid-frame) *)
    | Error err ->
        (* corrupt or stalled stream: answer if the pipe still works,
           then drop the connection — the framing can't be trusted *)
        (match err with
        | Robust.Pllscope_error.Io_timeout _ ->
            Metrics.incr_io_timeout t.metrics
        | Robust.Pllscope_error.Singular _ | Non_convergence _ | Non_finite _
        | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _
        | Overloaded _ | Budget_exhausted _ | Circuit_open _ ->
            Metrics.incr_request_error t.metrics);
        let (_ : bool) = send_error_frame t fd err in
        ()
    | Ok (Some req) ->
        conn.busy <- true;
        let keep = handle_request t conn req in
        conn.busy <- false;
        if keep && not (draining t) then loop ()
  in
  loop ()

let conn_main t conn =
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns;
          Condition.broadcast t.c);
      (* close under the write mutex so the ticker can never race a
         heartbeat onto a recycled descriptor number *)
      Mutex.lock conn.wm;
      conn.closed <- true;
      conn.streaming <- None;
      quiet_close conn.fd;
      Mutex.unlock conn.wm)
    (fun () ->
      match handle_conn t conn with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
        ->
          (* peer vanished mid-conversation; nothing left to say *)
          ())

(* ------------------------------------------------------------------ *)
(* accept loop + drain                                                 *)

let accept_one t lfd =
  match Unix.accept lfd with
  | exception
      Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED
          | Unix.EBADF ),
          _,
          _ ) ->
      ()
  | fd, _addr ->
      let n = locked t (fun () -> List.length t.conns) in
      if n >= t.cfg.max_clients then begin
        (* connection-level load shedding: refuse before reading *)
        Metrics.incr_shed t.metrics;
        let (_ : bool) =
          send_error_frame t fd
            (Robust.Pllscope_error.Overloaded
               { retry_after = t.cfg.retry_after })
        in
        quiet_close fd
      end
      else begin
        let conn =
          {
            fd;
            busy = false;
            wm = Mutex.create ();
            streaming = None;
            last_frame = now ();
            closed = false;
          }
        in
        locked t (fun () ->
            t.conns <- conn :: t.conns;
            t.threads <- Thread.create (conn_main t) conn :: t.threads)
      end

let rec accept_loop t =
  if not (should_stop t) then begin
    (match Unix.select t.listeners [] [] 0.1 with
    | ready, _, _ -> List.iter (accept_one t) ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

let drain t =
  locked t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.c);
  (* nudge idle connections out of their blocking reads *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun conn ->
      if not conn.busy then quiet_shutdown conn.fd Unix.SHUTDOWN_RECEIVE)
    conns;
  (* let in-flight requests finish and deliver *)
  let grace_until = now () +. t.cfg.drain_grace in
  let rec wait_empty () =
    let empty =
      locked t (fun () -> match t.conns with [] -> true | _ :: _ -> false)
    in
    if (not empty) && now () < grace_until then begin
      Thread.delay 0.02;
      wait_empty ()
    end
  in
  wait_empty ();
  (* grace over: cancel whatever is still computing and cut the wires *)
  let leftover =
    locked t (fun () ->
        List.iter
          (fun (tok, _, _) ->
            Parallel.Cancel.cancel tok (Parallel.Cancel.User "daemon shutdown"))
          t.watched;
        Condition.broadcast t.c;
        t.conns)
  in
  List.iter (fun conn -> quiet_shutdown conn.fd Unix.SHUTDOWN_ALL) leftover;
  let threads = locked t (fun () -> t.threads) in
  List.iter Thread.join threads

let serve t =
  Robust.Config.set_strict t.cfg.strict;
  let tick = Thread.create ticker t in
  accept_loop t;
  List.iter quiet_close t.listeners;
  (match t.cfg.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error (_, "unlink", _) -> ())
  | None -> ());
  drain t;
  locked t (fun () -> t.finished <- true);
  Thread.join tick;
  stats_snapshot t
