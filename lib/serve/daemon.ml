(* The analysis daemon.

   Architecture: one accept loop (the calling thread), one ticker
   thread, and one sys-thread per connection. All shared state — the
   admission gate, the response cache, single-flight bookkeeping, the
   deadline watch list and the connection table — lives behind a single
   mutex [t.m] with a single condition [t.c] that every state change
   (and every ticker tick) broadcasts. Sys-threads all share domain 0,
   so the per-request compute runs on the caller's thread and the
   watchdog machinery of Parallel.Pool (whose control block is
   domain-local) is deliberately not used here; per-request deadlines
   are enforced by cancellation tokens instead.

   Robustness decisions, in the order a request meets them:

   - Admission at accept: past [max_clients] open connections the
     daemon answers a typed [Overloaded] frame and closes — before
     reading a byte, so a connection flood cannot consume read
     timeouts' worth of daemon attention.
   - Framed reads carry a whole-frame deadline ([read_timeout]): an
     idle client is closed quietly after that long, and a slow-loris
     client trickling a frame gets a typed [Io_timeout] error frame
     back. Torn frames (client died mid-write) read as clean EOF by
     frame-codec construction.
   - The compute gate admits [workers] concurrent requests and queues
     [queue_depth] more; past that the request is shed with
     [Overloaded { retry_after }]. Queued requests still honour their
     deadline (the ticker's broadcast wakes them to re-check).
   - Every compute request owns a fresh Cancel token registered with
     its absolute deadline; the ticker cancels expired tokens and the
     engine polls them between points, so an overrun burns at most one
     point's work beyond its budget.
   - Responses are cached as marshalled payload bytes keyed by the
     digest of the request body (deadline excluded), with single-flight
     dedup: concurrent identical requests compute once, waiters replay
     the leader's bytes. A cached reply is byte-identical to the cold
     one. Leader failure wakes waiters, one of which becomes the new
     leader.
   - The compute slot is released *before* the response is written, so
     a slow-reading client can never hold a worker slot; the write
     itself carries [write_timeout].
   - Drain: when the global cancel token fires (first SIGINT/SIGTERM)
     or [stop] is called, listeners close, idle connections are nudged
     out of their reads, in-flight requests get [drain_grace] seconds
     to finish and deliver, then leftover tokens are cancelled and
     sockets shut down. [serve] then returns normally — exit 0 — with
     the final stats. A second signal force-exits via
     Runner.Shutdown. *)

let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

type config = {
  socket_path : string option;
  tcp_port : int option;
  workers : int;
  queue_depth : int;
  max_clients : int;
  cache_entries : int;
  read_timeout : float;
  write_timeout : float;
  default_deadline : float option;
  drain_grace : float;
  retry_after : float;
  strict : bool;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    workers = 2;
    queue_depth = 8;
    max_clients = 32;
    cache_entries = 128;
    read_timeout = 10.0;
    write_timeout = 10.0;
    default_deadline = None;
    drain_grace = 5.0;
    retry_after = 0.1;
    strict = false;
  }

type conn = { fd : Unix.file_descr; mutable busy : bool }

type t = {
  cfg : config;
  metrics : Metrics.t;
  cache : Lru.t;
  m : Mutex.t;
  c : Condition.t;
  mutable active : int;
  mutable waiting : int;
  inflight : (string, unit) Hashtbl.t;
  mutable watched : (Parallel.Cancel.t * float * float) list;
      (* token, absolute deadline, configured seconds *)
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable stopping : bool;
  mutable finished : bool;
  stop_requested : bool Atomic.t;
  listeners : Unix.file_descr list;
  bound_port : int option;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let quiet_close fd =
  try Unix.close fd with Unix.Unix_error (_, "close", _) -> ()

let quiet_shutdown fd mode =
  try Unix.shutdown fd mode with Unix.Unix_error (_, "shutdown", _) -> ()

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      quiet_close fd;
      raise e);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> ()
  | exception e ->
      quiet_close fd;
      raise e);
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let create cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if cfg.queue_depth < 0 then
    invalid_arg "Daemon.create: queue_depth must be >= 0";
  if cfg.max_clients < 1 then
    invalid_arg "Daemon.create: max_clients must be >= 1";
  if cfg.socket_path = None && cfg.tcp_port = None then
    invalid_arg "Daemon.create: no listener configured (socket or port)";
  let unix_listener = Option.map listen_unix cfg.socket_path in
  let tcp_listener = Option.map listen_tcp cfg.tcp_port in
  let listeners =
    Option.to_list unix_listener
    @ List.map fst (Option.to_list tcp_listener)
  in
  {
    cfg;
    metrics = Metrics.create ();
    cache = Lru.create ~cap:cfg.cache_entries;
    m = Mutex.create ();
    c = Condition.create ();
    active = 0;
    waiting = 0;
    inflight = Hashtbl.create 16;
    watched = [];
    conns = [];
    threads = [];
    stopping = false;
    finished = false;
    stop_requested = Atomic.make false;
    listeners;
    bound_port = Option.map snd tcp_listener;
  }

let tcp_port t = t.bound_port
let stop t = Atomic.set t.stop_requested true

let should_stop t =
  Atomic.get t.stop_requested
  || Parallel.Cancel.is_cancelled (Parallel.Cancel.global ())

(* ------------------------------------------------------------------ *)
(* deadline watch + ticker                                             *)

let error_of_reason r =
  Robust.Pllscope_error.Cancelled
    { reason = Parallel.Cancel.reason_to_string r }

let cancel_error token =
  match Parallel.Cancel.get token with
  | Some r -> error_of_reason r
  | None -> Robust.Pllscope_error.Cancelled { reason = "cancelled" }

let with_watch t token deadline f =
  match deadline with
  | None -> f ()
  | Some s when s <= 0.0 ->
      (* already expired on arrival: cancel deterministically, no
         ticker race *)
      Parallel.Cancel.cancel token (Parallel.Cancel.Deadline s);
      f ()
  | Some s ->
      let until = now () +. s in
      locked t (fun () -> t.watched <- (token, until, s) :: t.watched);
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () ->
              t.watched <-
                List.filter (fun (tok, _, _) -> tok != token) t.watched))
        f

let ticker t =
  let rec loop () =
    let done_ = locked t (fun () -> t.finished) in
    if not done_ then begin
      Thread.delay 0.05;
      let t_now = now () in
      locked t (fun () ->
          List.iter
            (fun (tok, until, s) ->
              if t_now > until then
                Parallel.Cancel.cancel tok (Parallel.Cancel.Deadline s))
            t.watched;
          (* wake gate and single-flight waiters so deadline expiry and
             drain are noticed without their own timed waits *)
          Condition.broadcast t.c);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* admission gate                                                      *)

let acquire t token =
  locked t (fun () ->
      if t.stopping then `Shed
      else if t.active < t.cfg.workers then begin
        t.active <- t.active + 1;
        `Go
      end
      else if t.waiting >= t.cfg.queue_depth then `Shed
      else begin
        t.waiting <- t.waiting + 1;
        let rec wait () =
          if Parallel.Cancel.is_cancelled token then begin
            t.waiting <- t.waiting - 1;
            `Cancelled
          end
          else if t.stopping then begin
            t.waiting <- t.waiting - 1;
            `Shed
          end
          else if t.active < t.cfg.workers then begin
            t.waiting <- t.waiting - 1;
            t.active <- t.active + 1;
            `Go
          end
          else begin
            Condition.wait t.c t.m;
            wait ()
          end
        in
        wait ()
      end)

let release t =
  locked t (fun () ->
      t.active <- t.active - 1;
      Condition.broadcast t.c)

(* ------------------------------------------------------------------ *)
(* compute with cache + single-flight                                  *)

let run_body ~token (body : Wire.request_body) =
  match body with
  | Wire.Analyze spec -> Wire.R_analyze (Engine.analyze ~cancel:token spec)
  | Wire.Bode { spec; points } ->
      Wire.R_bode (Engine.bode ~cancel:token spec ~points)
  | Wire.Sweep { spec; ratios } ->
      Wire.R_sweep (Engine.sweep ~cancel:token spec ratios)
  | Wire.Stats | Wire.Health ->
      invalid_arg "Daemon.run_body: stats/health are not compute requests"

(* Returns the marshalled response payload. The leader computes and
   caches; concurrent identical requests wait on [t.c] and replay the
   cached bytes. If the leader fails, its typed error is its own
   answer; one woken waiter finds neither cache entry nor inflight
   mark and becomes the new leader. *)
let compute t ~key ~token body =
  let rec obtain () =
    let verdict =
      locked t (fun () ->
          match Lru.find t.cache key with
          | Some payload -> `Cached payload
          | None ->
              if Hashtbl.mem t.inflight key then
                if Parallel.Cancel.is_cancelled token then `Cancelled
                else begin
                  Condition.wait t.c t.m;
                  `Retry
                end
              else begin
                Hashtbl.add t.inflight key ();
                `Lead
              end)
    in
    match verdict with
    | `Cached payload ->
        Metrics.incr_cache_hit t.metrics;
        Ok payload
    | `Cancelled -> Error (cancel_error token)
    | `Retry -> obtain ()
    | `Lead ->
        Metrics.incr_cache_miss t.metrics;
        let outcome =
          match run_body ~token body with
          | resp -> Ok (Wire.marshal_response resp)
          | exception Robust.Pllscope_error.Error err -> Error err
          | exception Parallel.Cancel.Cancelled r -> Error (error_of_reason r)
        in
        locked t (fun () ->
            Hashtbl.remove t.inflight key;
            (match outcome with
            | Ok payload -> Lru.add t.cache key payload
            | Error _ -> ());
            Condition.broadcast t.c);
        outcome
  in
  obtain ()

(* ------------------------------------------------------------------ *)
(* per-connection protocol                                             *)

(* false => the connection is no longer usable *)
let send_payload t fd payload =
  match
    Wire.send_response_payload ~timeout:t.cfg.write_timeout fd payload
  with
  | Ok () -> true
  | Error _ ->
      Metrics.incr_io_timeout t.metrics;
      false
  | exception
      Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _) ->
      false

let send_error_frame t fd err =
  match Wire.send_error ~timeout:t.cfg.write_timeout fd err with
  | Ok () -> true
  | Error _ ->
      Metrics.incr_io_timeout t.metrics;
      false
  | exception
      Unix.Unix_error
        ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _) ->
      false

let stats_snapshot t =
  let active = locked t (fun () -> t.active) in
  Metrics.snapshot t.metrics ~active

(* Handle one decoded request; true iff the connection survives. *)
let handle_request t fd (req : Wire.request) =
  match req.Wire.body with
  | Wire.Health ->
      let ok = send_payload t fd (Wire.marshal_response Wire.R_healthy) in
      if ok then Metrics.incr_served t.metrics;
      ok
  | Wire.Stats ->
      let ok =
        send_payload t fd
          (Wire.marshal_response (Wire.R_stats (stats_snapshot t)))
      in
      if ok then Metrics.incr_served t.metrics;
      ok
  | Wire.Analyze _ | Wire.Bode _ | Wire.Sweep _ -> (
      let key = Wire.cache_key req.Wire.body in
      let cached = locked t (fun () -> Lru.find t.cache key) in
      match cached with
      | Some payload ->
          Metrics.incr_cache_hit t.metrics;
          let ok = send_payload t fd payload in
          if ok then Metrics.incr_served t.metrics;
          ok
      | None -> (
          let deadline =
            match req.Wire.deadline with
            | Some _ as d -> d
            | None -> t.cfg.default_deadline
          in
          let token = Parallel.Cancel.create () in
          with_watch t token deadline @@ fun () ->
          match acquire t token with
          | `Shed ->
              Metrics.incr_shed t.metrics;
              send_error_frame t fd
                (Robust.Pllscope_error.Overloaded
                   { retry_after = t.cfg.retry_after })
          | `Cancelled ->
              Metrics.incr_request_error t.metrics;
              send_error_frame t fd (cancel_error token)
          | `Go -> (
              let outcome =
                Fun.protect
                  ~finally:(fun () -> release t)
                  (fun () -> compute t ~key ~token req.Wire.body)
              in
              match outcome with
              | Ok payload ->
                  let ok = send_payload t fd payload in
                  if ok then Metrics.incr_served t.metrics;
                  ok
              | Error err ->
                  Metrics.incr_request_error t.metrics;
                  send_error_frame t fd err)))

let draining t = locked t (fun () -> t.stopping)

let handle_conn t conn =
  let fd = conn.fd in
  let rec loop () =
    match Wire.recv_request ~timeout:t.cfg.read_timeout fd with
    | Ok None -> () (* clean EOF: client done (or died mid-frame) *)
    | Error err ->
        (* corrupt or stalled stream: answer if the pipe still works,
           then drop the connection — the framing can't be trusted *)
        (match err with
        | Robust.Pllscope_error.Io_timeout _ ->
            Metrics.incr_io_timeout t.metrics
        | Robust.Pllscope_error.Singular _ | Non_convergence _ | Non_finite _
        | Parse _ | Worker_failure _ | Timed_out _ | Cancelled _
        | Overloaded _ ->
            Metrics.incr_request_error t.metrics);
        let (_ : bool) = send_error_frame t fd err in
        ()
    | Ok (Some req) ->
        conn.busy <- true;
        let keep = handle_request t fd req in
        conn.busy <- false;
        if keep && not (draining t) then loop ()
  in
  loop ()

let conn_main t conn =
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns;
          Condition.broadcast t.c);
      quiet_close conn.fd)
    (fun () ->
      match handle_conn t conn with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
        ->
          (* peer vanished mid-conversation; nothing left to say *)
          ())

(* ------------------------------------------------------------------ *)
(* accept loop + drain                                                 *)

let accept_one t lfd =
  match Unix.accept lfd with
  | exception
      Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED
          | Unix.EBADF ),
          _,
          _ ) ->
      ()
  | fd, _addr ->
      let n = locked t (fun () -> List.length t.conns) in
      if n >= t.cfg.max_clients then begin
        (* connection-level load shedding: refuse before reading *)
        Metrics.incr_shed t.metrics;
        let (_ : bool) =
          send_error_frame t fd
            (Robust.Pllscope_error.Overloaded
               { retry_after = t.cfg.retry_after })
        in
        quiet_close fd
      end
      else begin
        let conn = { fd; busy = false } in
        locked t (fun () ->
            t.conns <- conn :: t.conns;
            t.threads <- Thread.create (conn_main t) conn :: t.threads)
      end

let rec accept_loop t =
  if not (should_stop t) then begin
    (match Unix.select t.listeners [] [] 0.1 with
    | ready, _, _ -> List.iter (accept_one t) ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

let drain t =
  locked t (fun () ->
      t.stopping <- true;
      Condition.broadcast t.c);
  (* nudge idle connections out of their blocking reads *)
  let conns = locked t (fun () -> t.conns) in
  List.iter
    (fun conn ->
      if not conn.busy then quiet_shutdown conn.fd Unix.SHUTDOWN_RECEIVE)
    conns;
  (* let in-flight requests finish and deliver *)
  let grace_until = now () +. t.cfg.drain_grace in
  let rec wait_empty () =
    let empty = locked t (fun () -> t.conns = []) in
    if (not empty) && now () < grace_until then begin
      Thread.delay 0.02;
      wait_empty ()
    end
  in
  wait_empty ();
  (* grace over: cancel whatever is still computing and cut the wires *)
  let leftover =
    locked t (fun () ->
        List.iter
          (fun (tok, _, _) ->
            Parallel.Cancel.cancel tok (Parallel.Cancel.User "daemon shutdown"))
          t.watched;
        Condition.broadcast t.c;
        t.conns)
  in
  List.iter (fun conn -> quiet_shutdown conn.fd Unix.SHUTDOWN_ALL) leftover;
  let threads = locked t (fun () -> t.threads) in
  List.iter Thread.join threads

let serve t =
  Robust.Config.set_strict t.cfg.strict;
  let tick = Thread.create ticker t in
  accept_loop t;
  List.iter quiet_close t.listeners;
  (match t.cfg.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error (_, "unlink", _) -> ())
  | None -> ());
  drain t;
  locked t (fun () -> t.finished <- true);
  Thread.join tick;
  stats_snapshot t
