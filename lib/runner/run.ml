(* Crash-safe sweep execution: Sweep.grid_checked plus a checkpoint
   journal and resume.

   The task wrapper journals each computed point (index + encoded
   value) before returning it, so at any instant the journal holds a
   durable prefix-closed record of finished work. On resume we replay
   the journal into a [completed] table and run the *same* checked
   sweep over the full index range, with already-completed points
   short-circuiting to their replayed value. Running over the full
   range (rather than packing the remainder) keeps task indices, chunk
   boundaries and error payloads identical to an uninterrupted run —
   which, together with Marshal's bit-exact float round-trip and the
   pool's own schedule-independence, is why a resumed run is
   bit-identical to an uninterrupted one at any pool size. *)

type 'b codec = { encode : 'b -> string; decode : string -> 'b }

let marshal_codec () =
  {
    encode = (fun v -> Marshal.to_string v []);
    decode = (fun s -> (Marshal.from_string s 0 : 'b));
  }

let crash_if_injected () =
  if Robust.Inject.fire Robust.Inject.Crash_at_point then
    raise Robust.Inject.Simulated_crash

let grid ?pool ?chunk ?retries ?cancel ?task_timeout ?checkpoint
    ?(resume = false) ~codec f a =
  if resume && checkpoint = None then
    invalid_arg "Run.grid: resume requires a checkpoint path";
  let n = Array.length a in
  let completed = Array.make n None in
  (match checkpoint with
  | Some path when resume ->
      let count = ref 0 in
      List.iter
        (fun (i, payload) ->
          if i >= 0 && i < n && completed.(i) = None then begin
            completed.(i) <- Some (codec.decode payload);
            incr count
          end)
        (Journal.replay path);
      Robust.Stats.record_resumed !count
  | Some path ->
      (* fresh run: a stale journal must not leak old points *)
      if Sys.file_exists path then Sys.remove path
  | None -> ());
  let journal = Option.map Journal.open_append checkpoint in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close journal)
    (fun () ->
      let task i =
        match completed.(i) with
        | Some v -> v
        | None ->
            let v = f a.(i) in
            Option.iter
              (fun j -> Journal.append j ~index:i (codec.encode v))
              journal;
            (* fires only for freshly computed points, after their
               frame is on disk — the resume tests rely on that *)
            crash_if_injected ();
            v
      in
      Parallel.Sweep.grid_checked ?pool ?chunk ?retries ?cancel ?task_timeout
        task
        (Array.init n (fun i -> i)))
