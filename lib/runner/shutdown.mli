(** Graceful shutdown for the CLI: signal handling, distinct exit
    codes, and broken-pipe hygiene. *)

(** Exit code after a signal-cancelled run: 130 (128 + SIGINT, the
    shell convention). *)
val exit_interrupted : int

(** Exit code after a forced (second-signal) SIGTERM exit: 143
    (128 + SIGTERM). *)
val exit_terminated : int

(** Exit code after a [--deadline] expiry: 124, matching [timeout(1)]. *)
val exit_deadline : int

(** Install SIGINT/SIGTERM handlers. The {e first} signal cancels
    {!Parallel.Cancel.global} instead of killing the process, so
    in-flight chunks drain, journals stay consistent and the CLI can
    report a typed partial summary. A {e second} signal (either kind)
    forces an immediate [_exit] — {!exit_interrupted} for SIGINT,
    {!exit_terminated} for SIGTERM — so a stuck drain never needs
    [kill -9]. Platforms without these signals are tolerated silently. *)
val install_handlers : unit -> unit

(** Ignore SIGPIPE so writes to a closed pipe raise [EPIPE] (which
    {!run_quiet_epipe} turns into a quiet exit) instead of killing the
    process. *)
val ignore_sigpipe : unit -> unit

(** Map a cancellation reason to the process exit code:
    {!exit_interrupted} for signals, {!exit_deadline} for deadlines. *)
val exit_code_of_reason : Parallel.Cancel.reason -> int

(** Recognise a broken-pipe failure, whether it surfaces as
    [Unix_error (EPIPE, _, _)] or as the stdlib's
    [Sys_error "...: Broken pipe"]. *)
val is_epipe : exn -> bool

(** Redirect the std/err formatters to a sink. Called after an EPIPE so
    the at-exit flush of pending formatter output cannot raise during
    [exit]. *)
val silence_std_formatters : unit -> unit

(** [run_quiet_epipe f] — run [f ()]; on a broken pipe, silence the
    formatters and return [Some 0] (the exit code for a downstream
    consumer like [head] closing the pipe early — conventionally not an
    error). [None] means [f] completed normally. Other exceptions
    propagate. *)
val run_quiet_epipe : (unit -> unit) -> int option
