(* Crash-safe whole-file writes.

   The classic temp-write + fsync + rename dance: the temp file lives
   in the *target's* directory (rename(2) is only atomic within one
   filesystem), is fsynced before the rename so the data is durable
   before the name flips, and the rename itself is atomic, so any
   reader — including a resumed run after a crash — sees either the
   old complete file or the new complete file, never a torn mix. *)

let fsync_dir dir =
  (* Persist the rename itself. Some filesystems refuse O_RDONLY fsync
     on directories; failing to sync the directory entry only risks
     losing the *rename* on power loss, never producing a torn file,
     so ignore errors. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write ?(fsync = true) path f =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match
    f oc;
    flush oc;
    if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc
  with
  | () ->
      Unix.rename tmp path;
      if fsync then fsync_dir dir
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt

let write_string ?fsync path s =
  write ?fsync path (fun oc -> output_string oc s)
