(** Append-only, checksummed checkpoint journal for sweep runs.

    An 8-byte magic header followed by self-delimiting frames

    {v [4B LE payload_len][4B LE point index][4B LE crc32][payload] v}

    where the CRC-32 covers the index bytes and the payload. Each
    {!append} writes its frame with a single [write(2)] flushed straight
    to the OS, so a crash (or [kill -9]) can only tear the frame being
    written — never a frame already appended. {!replay} accepts every
    complete, checksummed frame up to the first torn or corrupt one;
    {!open_append} additionally truncates that torn tail so new frames
    land on a clean boundary. A resumed run therefore sees exactly the
    set of points whose frames were durably appended, in any order, and
    recomputes the rest.

    Appends are serialised by a per-journal mutex and may come from
    concurrent {!Parallel.Pool} lanes. *)

type t

(** [open_append path] — create [path] (with header) if absent;
    otherwise validate the header, truncate any torn tail and position
    at the end. Raises {!Robust.Pllscope_error.Error} with a [Parse]
    payload if [path] exists but is not a journal (bad magic). *)
val open_append : string -> t

(** [append t ~index payload] — durably order one frame after all
    previous ones. Thread-safe. Raises [Invalid_argument] on a negative
    [index] or a closed journal. *)
val append : t -> index:int -> string -> unit

(** [replay path] — the complete frames of [path] in file order, as
    [(index, payload)] pairs. A missing file is an empty journal; a
    torn or corrupt tail is silently dropped. Raises like
    {!open_append} on a bad magic. *)
val replay : string -> (int * string) list

(** [sync t] — [fsync(2)] the journal. *)
val sync : t -> unit

(** [close t] — fsync and close. Idempotent; later appends raise. *)
val close : t -> unit

(** What {!inspect} reports about a journal file on disk. *)
type info = {
  frames : int;  (** complete, checksummed frames *)
  distinct : int;  (** distinct point indices among them *)
  duplicates : int;  (** frames superseded by an earlier frame *)
  bytes : int;  (** file size *)
  valid_bytes : int;  (** header + complete frames *)
  torn_bytes : int;  (** trailing bytes past the last valid frame *)
  max_index : int option;  (** highest point index seen, if any *)
}

(** [inspect path] — frame counts, CRC/torn-tail status and index range
    of [path] without modifying it. A missing file reports all zeros.
    Raises like {!open_append} on a bad magic. *)
val inspect : string -> info

(** [compact path] — atomically rewrite [path] keeping only the first
    frame of each index (the one {!replay}-driven resume would use),
    dropping duplicate frames and any torn tail. Returns
    [(kept, dropped)] frame counts. Bounds the replay cost of
    long-lived, repeatedly resumed journals. *)
val compact : string -> int * int

(** [merge ~into sources] — combine the frames of [sources] (missing
    files are empty journals) into a single journal at [into], written
    atomically via {!Atomic_file}. For each index the first frame in
    source-list order wins; the output is sorted by index, so the merged
    bytes depend only on the decoded content of the sources — never on
    append interleaving — making sharded-and-merged runs canonical.
    Returns the number of distinct frames written. [into] may itself
    appear in [sources]; it is fully read before being replaced. *)
val merge : into:string -> string list -> int

(** The journal's CRC-32 frame layout reused as a message codec over
    pipes: the frame's index field carries a small message [tag] and the
    CRC covers tag + payload. Used by the sweep farm's
    coordinator/worker protocol. *)
module Frame : sig
  (** [encode ~tag payload] — the exact bytes {!write} would put on the
      wire. Exposed so fault harnesses can write deliberately torn or
      stalled partial frames. Raises [Invalid_argument] on a negative
      tag. *)
  val encode : tag:int -> string -> string

  (** [write fd ~tag payload] — write one framed message with a single
      [write(2)] (retrying on short writes). Raises [Invalid_argument]
      on a negative [tag]; [Unix.Unix_error EPIPE] if the peer is gone
      (callers treat that as peer death). *)
  val write : Unix.file_descr -> tag:int -> string -> unit

  (** [write_result ?timeout fd ~tag payload] — like {!write}, but with
      [~timeout] the whole frame must drain within that many seconds or
      the call returns [Error (Io_timeout _)] (the descriptor's
      [O_NONBLOCK] flag is toggled for the duration, so a slow or
      stalled reader cannot wedge the writer). Without [~timeout] it is
      {!write} returning [Ok ()]. Raises like {!write} on a negative
      tag or a dead peer ([EPIPE]). *)
  val write_result :
    ?timeout:float ->
    Unix.file_descr ->
    tag:int ->
    string ->
    (unit, Robust.Pllscope_error.t) result

  (** [read fd] — block for the next complete frame. [None] on EOF,
      including EOF mid-frame (a peer that died while writing). Raises
      {!Robust.Pllscope_error.Error} with a [Parse] payload if a
      complete frame fails its CRC — that is corruption, not a clean
      shutdown. Retries [EINTR] internally. *)
  val read : Unix.file_descr -> (int * string) option

  (** [read_result ?timeout fd] — non-raising {!read}: [Ok None] on EOF
      (including mid-frame), [Error] with a [Parse] payload on a CRC
      mismatch or implausible length prefix. With [~timeout] the whole
      frame — header and body — must arrive within that many seconds of
      the call, else [Error (Io_timeout _)]: a peer trickling bytes
      (slow-loris) cannot hold the reader hostage. The wait is
      [select]-based and EINTR-safe, and tolerates nonblocking
      descriptors. *)
  val read_result :
    ?timeout:float ->
    Unix.file_descr ->
    ((int * string) option, Robust.Pllscope_error.t) result
end
