(** Append-only, checksummed checkpoint journal for sweep runs.

    An 8-byte magic header followed by self-delimiting frames

    {v [4B LE payload_len][4B LE point index][4B LE crc32][payload] v}

    where the CRC-32 covers the index bytes and the payload. Each
    {!append} writes its frame with a single [write(2)] flushed straight
    to the OS, so a crash (or [kill -9]) can only tear the frame being
    written — never a frame already appended. {!replay} accepts every
    complete, checksummed frame up to the first torn or corrupt one;
    {!open_append} additionally truncates that torn tail so new frames
    land on a clean boundary. A resumed run therefore sees exactly the
    set of points whose frames were durably appended, in any order, and
    recomputes the rest.

    Appends are serialised by a per-journal mutex and may come from
    concurrent {!Parallel.Pool} lanes. *)

type t

(** [open_append path] — create [path] (with header) if absent;
    otherwise validate the header, truncate any torn tail and position
    at the end. Raises {!Robust.Pllscope_error.Error} with a [Parse]
    payload if [path] exists but is not a journal (bad magic). *)
val open_append : string -> t

(** [append t ~index payload] — durably order one frame after all
    previous ones. Thread-safe. Raises [Invalid_argument] on a negative
    [index] or a closed journal. *)
val append : t -> index:int -> string -> unit

(** [replay path] — the complete frames of [path] in file order, as
    [(index, payload)] pairs. A missing file is an empty journal; a
    torn or corrupt tail is silently dropped. Raises like
    {!open_append} on a bad magic. *)
val replay : string -> (int * string) list

(** [sync t] — [fsync(2)] the journal. *)
val sync : t -> unit

(** [close t] — fsync and close. Idempotent; later appends raise. *)
val close : t -> unit
