(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over bytes.

   Used to checksum journal frames; a table-driven byte-at-a-time
   implementation is plenty — journal payloads are a few hundred bytes
   per sweep point and appends are already serialised by a mutex. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           let lsb = Int32.logand !c 1l in
           c := Int32.shift_right_logical !c 1;
           if lsb <> 0l then c := Int32.logxor !c 0xEDB88320l
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor (Int32.shift_right_logical !c 8) table.(idx)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s = update 0l s 0 (String.length s)
