(* Append-only checkpoint journal for sweep runs.

   File layout:

     +--------------------+
     | magic "PLLSCJ1\n"  |  8 bytes
     +--------------------+
     | frame 0            |
     | frame 1            |
     | ...                |
     +--------------------+

   each frame being

     [4B LE payload_len] [4B LE point index] [4B LE crc32] [payload]

   where the CRC covers the 4 index bytes followed by the payload, so
   a frame whose length field survived but whose body was torn — or
   whose index was bit-flipped — fails the check. Frames are
   self-delimiting and appended with a single [write]; [replay] accepts
   every complete, checksummed frame up to the first torn or corrupt
   one and ignores the rest. That makes the journal crash-tolerant by
   construction: a process killed mid-append leaves a torn tail that
   replay treats exactly as if the append never happened.

   [open_append] re-scans an existing journal, truncates the torn tail
   (so the next append starts on a clean frame boundary) and positions
   at the end. Appends from concurrent pool lanes are serialised by a
   per-journal mutex; each append is flushed to the OS immediately so
   only the process's own buffered data — never a previously appended
   frame — can be lost to a crash. *)

let magic = "PLLSCJ1\n"
let header_len = String.length magic
let frame_header_len = 12

let bad_header path =
  Robust.Pllscope_error.raise_
    (Robust.Pllscope_error.Parse
       {
         file = path;
         line = 0;
         col = 0;
         msg = "not a pllscope checkpoint journal (bad magic)";
       })

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame_crc index payload =
  let b = Buffer.create 4 in
  put_u32 b index;
  let crc = Crc32.string (Buffer.contents b) in
  Crc32.update crc payload 0 (String.length payload)

let add_frame b ~index payload =
  put_u32 b (String.length payload);
  put_u32 b index;
  put_u32 b (Int32.to_int (frame_crc index payload) land 0xffffffff);
  Buffer.add_string b payload

let encode_frame ~index payload =
  let b = Buffer.create (frame_header_len + String.length payload) in
  add_frame b ~index payload;
  Buffer.contents b

(* Scan raw journal bytes; return the complete frames and the byte
   length of the valid prefix (header + whole frames). Anything past
   [valid_len] is a torn tail. *)
let scan path raw =
  let n = String.length raw in
  if n < header_len || String.sub raw 0 header_len <> magic then
    if n = 0 then ([], 0) else bad_header path
  else begin
    let frames = ref [] in
    let pos = ref header_len in
    let stop = ref false in
    while not !stop do
      if !pos + frame_header_len > n then stop := true
      else begin
        let len = get_u32 raw !pos in
        let index = get_u32 raw (!pos + 4) in
        let crc = Int32.of_int (get_u32 raw (!pos + 8)) in
        let body = !pos + frame_header_len in
        if len < 0 || body + len > n then stop := true
        else begin
          let payload = String.sub raw body len in
          if frame_crc index payload <> crc then stop := true
          else begin
            frames := (index, payload) :: !frames;
            pos := body + len
          end
        end
      end
    done;
    (List.rev !frames, !pos)
  end

let read_raw path =
  if Sys.file_exists path then
    Some (In_channel.with_open_bin path In_channel.input_all)
  else None

let replay path =
  match read_raw path with None -> [] | Some raw -> fst (scan path raw)

type t = {
  fd : Unix.file_descr;
  path : string;
  m : Mutex.t;
  mutable closed : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let open_append path =
  match read_raw path with
  | None ->
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_all fd magic;
      { fd; path; m = Mutex.create (); closed = false }
  | Some raw ->
      let _, valid_len = scan path raw in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      (* drop the torn tail so the next frame starts on a boundary *)
      if valid_len < String.length raw then Unix.ftruncate fd valid_len;
      if valid_len = 0 then write_all fd magic
      else ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
      { fd; path; m = Mutex.create (); closed = false }

let check_open t fn =
  if t.closed then
    invalid_arg (fn ^ ": journal " ^ t.path ^ " is closed")

let append t ~index payload =
  if index < 0 then invalid_arg "Journal.append: negative index";
  let frame = encode_frame ~index payload in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      check_open t "Journal.append";
      if Robust.Inject.fire Robust.Inject.Journal_torn then begin
        (* model a crash mid-append: half a frame reaches the disk,
           then the process "dies" *)
        let torn = String.length frame / 2 in
        write_all t.fd (String.sub frame 0 torn);
        raise Robust.Inject.Simulated_crash
      end;
      write_all t.fd frame)

let sync t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      check_open t "Journal.sync";
      Unix.fsync t.fd)

let close t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        Unix.close t.fd
      end)

(* ------------------------------------------------------------------ *)
(* inspection, compaction and merge                                    *)

type info = {
  frames : int;
  distinct : int;
  duplicates : int;
  bytes : int;
  valid_bytes : int;
  torn_bytes : int;
  max_index : int option;
}

let distinct_count frames =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (i, _) -> if not (Hashtbl.mem seen i) then Hashtbl.add seen i ())
    frames;
  Hashtbl.length seen

let inspect path =
  match read_raw path with
  | None ->
      {
        frames = 0;
        distinct = 0;
        duplicates = 0;
        bytes = 0;
        valid_bytes = 0;
        torn_bytes = 0;
        max_index = None;
      }
  | Some raw ->
      let frames, valid_len = scan path raw in
      let n_frames = List.length frames in
      let distinct = distinct_count frames in
      {
        frames = n_frames;
        distinct;
        duplicates = n_frames - distinct;
        bytes = String.length raw;
        valid_bytes = valid_len;
        torn_bytes = String.length raw - valid_len;
        max_index =
          List.fold_left
            (fun acc (i, _) ->
              match acc with Some m when m >= i -> acc | _ -> Some i)
            None frames;
      }

(* Keep the first frame of each index — exactly the one a resumed
   [Run.grid] would use — drop later duplicates and any torn tail, and
   rewrite the journal atomically. *)
let dedup_first frames =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun (i, _) ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.add seen i ();
        true
      end)
    frames

let write_frames path frames =
  Atomic_file.write path (fun oc ->
      output_string oc magic;
      let b = Buffer.create 4096 in
      List.iter
        (fun (index, payload) ->
          Buffer.clear b;
          add_frame b ~index payload;
          Buffer.output_buffer oc b)
        frames)

let compact path =
  let frames = replay path in
  let kept = dedup_first frames in
  write_frames path kept;
  (List.length kept, List.length frames - List.length kept)

let merge ~into sources =
  (* Replay every source (missing files are empty journals), keep the
     first frame seen for each index in source-list order, then write
     the frames sorted by index: the merged journal depends only on the
     decoded content of the sources, never on interleaving or append
     order, which is what makes sharded-and-merged runs canonical. *)
  let frames = List.concat_map replay sources in
  let kept = dedup_first frames in
  let sorted =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare (a : int) b) kept
  in
  write_frames into sorted;
  List.length sorted

(* ------------------------------------------------------------------ *)
(* pipe framing                                                        *)

module Frame = struct
  (* The journal's frame layout reused as a message codec over
     pipes/sockets: [tag] rides in the index field, the CRC covers tag
     and payload. A torn frame (peer died mid-write) reads as a clean
     EOF; a CRC mismatch on a complete frame is real corruption and
     raises. *)

  let rec retry_read fd buf off len =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        retry_read fd buf off len

  (* false iff EOF struck before [len] bytes arrived *)
  let read_exact fd buf off len =
    let off = ref off and left = ref len in
    let eof = ref false in
    while !left > 0 && not !eof do
      let n = retry_read fd buf !off !left in
      if n = 0 then eof := true
      else begin
        off := !off + n;
        left := !left - n
      end
    done;
    not !eof

  let now () = (Unix.gettimeofday () [@lint.allow "nondeterminism"])

  (* Deadline waits: select with the remaining budget, retrying EINTR
     and spurious early wakeups. false iff the deadline passed first. *)
  let rec wait_io fd ~until ~dir =
    let remaining = until -. now () in
    if remaining <= 0. then false
    else
      let rs, ws = match dir with `R -> ([ fd ], []) | `W -> ([], [ fd ]) in
      match Unix.select rs ws [] remaining with
      | [], [], _ -> wait_io fd ~until ~dir
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          wait_io fd ~until ~dir

  (* Fill [len] bytes by the absolute deadline [until]. The select-first
     loop also tolerates EAGAIN so it works on nonblocking descriptors. *)
  let read_exact_deadline fd buf off len ~until =
    let off = ref off and left = ref len in
    let verdict = ref `Ok in
    while !left > 0 && !verdict = `Ok do
      if not (wait_io fd ~until ~dir:`R) then verdict := `Timeout
      else
        match retry_read fd buf !off !left with
        | 0 -> verdict := `Eof
        | n ->
            off := !off + n;
            left := !left - n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
    done;
    !verdict

  let parse_error msg =
    Robust.Pllscope_error.Parse { file = "<pipe>"; line = 0; col = 0; msg }

  let encode ~tag payload =
    if tag < 0 then invalid_arg "Journal.Frame.encode: negative tag";
    encode_frame ~index:tag payload

  let write fd ~tag payload =
    if tag < 0 then invalid_arg "Journal.Frame.write: negative tag";
    let frame = encode_frame ~index:tag payload in
    write_all fd frame

  let write_result ?timeout fd ~tag payload =
    if tag < 0 then invalid_arg "Journal.Frame.write_result: negative tag";
    let frame = encode_frame ~index:tag payload in
    match timeout with
    | None ->
        write_all fd frame;
        Ok ()
    | Some seconds ->
        (* A blocking write(2) larger than the kernel buffer can stall
           past any select verdict, so toggle O_NONBLOCK for the loop:
           select bounds the wait, the nonblocking write never sticks. *)
        let until = now () +. seconds in
        let b = Bytes.of_string frame in
        let n = Bytes.length b in
        Unix.set_nonblock fd;
        Fun.protect
          ~finally:(fun () -> Unix.clear_nonblock fd)
          (fun () ->
            let off = ref 0 in
            let timed_out = ref false in
            while !off < n && not !timed_out do
              if not (wait_io fd ~until ~dir:`W) then timed_out := true
              else
                match Unix.write fd b !off (n - !off) with
                | k -> off := !off + k
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                  ->
                    ()
            done;
            if !timed_out then
              Error
                (Robust.Pllscope_error.Io_timeout
                   { seconds; what = "frame write" })
            else Ok ())

  let read_result ?timeout fd =
    let fill =
      match timeout with
      | None ->
          fun buf len -> if read_exact fd buf 0 len then `Ok else `Eof
      | Some seconds ->
          let until = now () +. seconds in
          fun buf len -> read_exact_deadline fd buf 0 len ~until
    in
    let timed_out () =
      let seconds = Option.value timeout ~default:0. in
      Error
        (Robust.Pllscope_error.Io_timeout { seconds; what = "frame read" })
    in
    let header = Bytes.create frame_header_len in
    match fill header frame_header_len with
    | `Timeout -> timed_out ()
    | `Eof -> Ok None
    | `Ok -> (
        let header = Bytes.to_string header in
        let len = get_u32 header 0 in
        let tag = get_u32 header 4 in
        let crc = Int32.of_int (get_u32 header 8) in
        if len < 0 || len > 1 lsl 30 then
          Error (parse_error "Journal.Frame.read: implausible frame length")
        else
          let body = Bytes.create len in
          match fill body len with
          | `Timeout -> timed_out ()
          | `Eof -> Ok None
          | `Ok ->
              let payload = Bytes.to_string body in
              if frame_crc tag payload <> crc then
                Error
                  (parse_error
                     "Journal.Frame.read: CRC mismatch on pipe frame")
              else Ok (Some (tag, payload)))

  let read fd =
    match read_result fd with
    | Ok v -> v
    | Error err -> Robust.Pllscope_error.raise_ err
end
