(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) checksums for journal
    frames. *)

(** [string s] — checksum of the whole string. [Crc32.string ""] is
    [0l]. *)
val string : string -> int32

(** [update crc s pos len] — extend [crc] with [s.[pos .. pos+len-1]],
    so [update (string a) b 0 (String.length b) = string (a ^ b)].
    Raises [Invalid_argument] if the range is out of bounds. *)
val update : int32 -> string -> int -> int -> int32
