(** Atomic whole-file writes: temp file in the target directory, fsync,
    then [rename(2)] over the target. Readers never observe a torn or
    partially written file — they see the old content or the new
    content, nothing in between. Benchmark JSON, golden files and
    experiment reports are routed through this so a crash mid-report
    cannot corrupt an artifact a later run (or CI diff) depends on. *)

(** [write ?fsync path f] — open a fresh temp file in [path]'s
    directory, run [f] on its (binary-mode) channel, flush, fsync
    (unless [~fsync:false]), close, and atomically rename it to
    [path]. On any exception from [f] the temp file is removed and
    [path] is untouched. *)
val write : ?fsync:bool -> string -> (out_channel -> unit) -> unit

(** [write_string ?fsync path s] — {!write} of one string. *)
val write_string : ?fsync:bool -> string -> string -> unit
