(** Crash-safe checked sweeps: {!Parallel.Sweep.grid_checked} with a
    checkpoint {!Journal} and resume.

    With [~checkpoint:path], every computed point is appended to the
    journal (index + encoded value) before the sweep moves past it.
    With [~resume:true] the journal is replayed first and the points it
    holds are {b not} recomputed — their replayed values fill the
    result directly. Because the resumed sweep still runs over the full
    index range (completed points short-circuit), task indices, chunking
    and error payloads match an uninterrupted run exactly; combined with
    the codec's bit-exact round-trip this makes

    {v  interrupted-and-resumed  ==  uninterrupted  v}

    bit-for-bit, at any pool size. Replayed points are counted in
    {!Robust.Stats} as resumed. *)

type 'b codec = { encode : 'b -> string; decode : string -> 'b }

(** A {!codec} backed by [Marshal], which round-trips OCaml floats
    bit-exactly. The journal is trusted local state: [Marshal] decoding
    is not type-safe against a journal written for a different result
    type (use distinct checkpoint paths per sweep kind). *)
val marshal_codec : unit -> 'b codec

(** [grid ?checkpoint ?resume ~codec f a] — checked sweep of [f] over
    [a]; see {!Parallel.Sweep.grid_checked} for [pool]/[chunk]/
    [retries]/[cancel]/[task_timeout]. Without [~resume:true] an
    existing journal at [checkpoint] is discarded (fresh run); with it,
    journaled points are replayed instead of recomputed. The journal is
    synced and closed on exit, including on exceptions and simulated
    crashes. Raises [Invalid_argument] if [resume] is set without
    [checkpoint]. *)
val grid :
  ?pool:Parallel.Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?cancel:Parallel.Cancel.t ->
  ?task_timeout:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  codec:'b codec ->
  ('a -> 'b) ->
  'a array ->
  'b Parallel.Sweep.partial
