(* Graceful-shutdown plumbing for the CLI.

   SIGINT/SIGTERM handlers cancel the global Cancel token instead of
   killing the process: pool lanes notice at the next chunk boundary,
   checked sweeps return a typed partial (with the journal already
   flushed per point), and the CLI exits with a distinct code.

   SIGPIPE is ignored so that `pllscope ... | head` surfaces EPIPE as
   an exception we convert to a quiet status-0 exit, instead of dying
   mid-write with a signal. *)

let exit_interrupted = 130 (* 128 + SIGINT, the shell convention *)
let exit_terminated = 143 (* 128 + SIGTERM *)
let exit_deadline = 124 (* timeout(1)'s exit code *)

let set_signal n behaviour =
  (* Signal installation can fail on exotic platforms; shutdown
     niceties must never take the tool down. *)
  try Sys.set_signal n behaviour with Invalid_argument _ | Sys_error _ -> ()

let install_handlers () =
  let strikes = Atomic.make 0 in
  let handle n =
    if Atomic.fetch_and_add strikes 1 = 0 then
      Parallel.Cancel.cancel (Parallel.Cancel.global ())
        (Parallel.Cancel.Signal n)
    else
      (* Second signal: the first one asked for a cooperative drain; if
         the operator is hitting ^C again the drain is stuck (or too
         slow) and the process must die *now*, without needing kill -9.
         [_exit] skips at_exit/flushes on purpose — every durable write
         path (journals, Atomic_file) already tolerates exactly this
         kind of death. OCaml's [Sys.sig*] values are internal negative
         codes, so map to the shell-convention exit explicitly. *)
      Unix._exit (if n = Sys.sigterm then exit_terminated else exit_interrupted)
  in
  set_signal Sys.sigint (Sys.Signal_handle handle);
  set_signal Sys.sigterm (Sys.Signal_handle handle)

let ignore_sigpipe () = set_signal Sys.sigpipe Sys.Signal_ignore

let exit_code_of_reason = function
  | Parallel.Cancel.Signal _ -> exit_interrupted
  | Parallel.Cancel.Deadline _ -> exit_deadline
  | Parallel.Cancel.User _ -> exit_interrupted

let is_epipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
      (* stdlib channels report EPIPE as Sys_error "...: Broken pipe" *)
      let needle = "Broken pipe" in
      let nl = String.length needle and ml = String.length msg in
      let rec scan i =
        i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
      in
      scan 0
  | _ -> false

let silence_std_formatters () =
  (* After EPIPE, Format's at_exit flush of std_formatter would raise
     again (uncatchably, during exit). Point both std formatters at a
     sink so the pending output is dropped instead. *)
  let sink =
    {
      Format.out_string = (fun _ _ _ -> ());
      out_flush = (fun () -> ());
      out_newline = (fun () -> ());
      out_spaces = (fun _ -> ());
      out_indent = (fun _ -> ());
    }
  in
  Format.pp_set_formatter_out_functions Format.std_formatter sink;
  Format.pp_set_formatter_out_functions Format.err_formatter sink

let run_quiet_epipe f =
  try
    f ();
    None
  with e when is_epipe e ->
    silence_std_formatters ();
    Some 0
