(** Flat, unboxed complex matrices with in-place kernels.

    Storage is two row-major [float array]s (split real/imaginary
    parts), which the OCaml runtime keeps unboxed — unlike {!Cmat.t},
    whose every entry is a heap-allocated [Complex.t]. All kernels write
    into caller-provided storage; the only allocating operations are
    the constructors and converters. This is the bottom layer of the
    structure-aware HTM evaluator: structured representations compose
    symbolically and densify into a [Cmatf.t] only at the API boundary.

    Conversion to/from [Cmat.t] is lossless (every entry is copied
    bit-for-bit), so existing dense consumers keep working. *)

type t

(** [create rows cols] is a zero-filled matrix. *)
val create : int -> int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t

(** [blit ~src ~dst] copies [src] over [dst] (same shape). *)
val blit : src:t -> dst:t -> unit

val fill_zero : t -> unit
val identity : int -> t

(** [add_ident ?alpha a] — [a += alpha·I] in place (default [alpha] 1). *)
val add_ident : ?alpha:Cx.t -> t -> unit

(** [scale_inplace z a] — [a *= z] in place. *)
val scale_inplace : Cx.t -> t -> unit

(** [axpy z x y] — [y += z·x] in place. *)
val axpy : Cx.t -> t -> t -> unit

(** [gemm ~dst a b] — [dst = a·b]; [dst] is cleared first and must not
    alias an operand. Entries of [a] that are exactly zero skip their
    inner loop, so block-sparse operands cost what their support
    costs. *)
val gemm : dst:t -> t -> t -> unit

(** [gemv a ~xre ~xim ~yre ~yim] — [y = a·x] on split-array vectors. *)
val gemv :
  t ->
  xre:float array -> xim:float array -> yre:float array -> yim:float array ->
  unit

(** [gemv_herm a ~xre ~xim ~yre ~yim] — [y = aᴴ·x] without
    materializing the conjugate transpose. *)
val gemv_herm :
  t ->
  xre:float array -> xim:float array -> yre:float array -> yim:float array ->
  unit

(** {1 LU factorization with reusable workspace}

    The workspace holds the pivot permutation and a scratch buffer that
    grows monotonically; threading one workspace through a frequency
    sweep makes every factorization after the first allocation-free. *)

type lu_ws

(** [lu_ws n] — workspace for [n×n] factorizations. *)
val lu_ws : int -> lu_ws

(** [lu_decompose_inplace a ws] overwrites [a] with its LU factors
    (partial pivoting on modulus; permutation recorded in [ws]).
    @raise Lu.Singular when a pivot column is exactly zero. *)
val lu_decompose_inplace : t -> lu_ws -> unit

(** [lu_solve_inplace a ws b] — [b := a⁻¹·b] for [a] previously
    factored with [ws]; all columns of [b] advance together. *)
val lu_solve_inplace : t -> lu_ws -> t -> unit

(** {1 Norms, finiteness and condition estimation} *)

(** 1-norm (max column sum of moduli). *)
val norm1 : t -> float

(** True iff every entry is finite (no NaN or infinity). *)
val is_finite : t -> bool

(** [lu_cond_est_1 a ws ~norm1_a] — Hager-style 1-norm condition
    estimate for a matrix already factored by [lu_decompose_inplace];
    [norm1_a] is {!norm1} of the original matrix (captured before the
    factorization overwrote it). A few O(n²) solve/adjoint-solve rounds
    give a lower bound on κ₁ that is reliably within a small factor. *)
val lu_cond_est_1 : t -> lu_ws -> norm1_a:float -> float

(** {1 Checked factorization}

    [Result]-returning variants of the LU entry points; these guard the
    structured evaluator's fast path and never raise on numerical
    failure. *)

(** [lu_decompose_checked ?max_cond ~context a ws] factors [a] in place
    and returns its condition estimate, or
    [Error (Singular _)] when a pivot is exactly zero, the pivot
    diagonal is degenerate, or the estimate exceeds [max_cond]
    (default {!Robust.Config.get_max_cond}), or
    [Error (Non_finite _)] when a NaN/infinity reached the factors.
    On [Error] the contents of [a] are unspecified. *)
val lu_decompose_checked :
  ?max_cond:float ->
  context:string ->
  t ->
  lu_ws ->
  (float, Robust.Pllscope_error.t) result

(** [lu_solve_checked a ws b ~context] — [b := a⁻¹·b] plus a finiteness
    scan of the result. *)
val lu_solve_checked :
  t -> lu_ws -> t -> context:string -> (unit, Robust.Pllscope_error.t) result

(** {1 Raw storage access}

    [raw m] exposes the two row-major split halves backing [m]
    (entry [(i,k)] lives at index [i·cols + k]). The arrays are the
    live storage, not a copy: mutating them mutates [m]. Reserved for
    the plan/execute grid layer and benchmarks, which need unboxed
    bulk copies in and out of preallocated workspaces. *)
val raw : t -> float array * float array

(** {1 Lossless converters} *)

val of_cmat : Cmat.t -> t
val to_cmat : t -> Cmat.t
