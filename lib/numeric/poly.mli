(** Dense univariate polynomials over the complex field.

    Coefficients are stored in ascending-degree order; the zero polynomial
    is the empty coefficient list. Transfer functions ([Lti.Tf]) and the
    partial-fraction machinery behind the exact effective open-loop gain
    λ(s) are built on this module. *)

type t

(** [of_coeffs [a0; a1; ...]] is [a0 + a1 s + ...]. Trailing (numerically
    exact) zeros are trimmed. *)
val of_coeffs : Cx.t list -> t

val of_real_coeffs : float list -> t
val of_array : Cx.t array -> t
val coeffs : t -> Cx.t array

(** [coeff p k] is the coefficient of [s^k] (zero beyond the degree). *)
val coeff : t -> int -> Cx.t

val zero : t
val one : t

(** The monomial [s]. *)
val s : t

(** [constant z] is the degree-0 polynomial [z]. *)
val constant : Cx.t -> t

(** [monomial z k] is [z s^k]. *)
val monomial : Cx.t -> int -> t

(** [degree p] is -1 for the zero polynomial. *)
val degree : t -> int

val is_zero : t -> bool
val eval : t -> Cx.t -> Cx.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val scale : Cx.t -> t -> t

(** [pow p n] for [n >= 0]. *)
val pow : t -> int -> t

val derivative : t -> t

(** [divmod n d] is [(q, r)] with [n = q d + r], [degree r < degree d].
    @raise Division_by_zero if [d] is the zero polynomial. *)
val divmod : t -> t -> t * t

(** [from_roots rs] is the monic polynomial with the given roots. *)
val from_roots : Cx.t list -> t

(** [monic p] divides by the leading coefficient.
    @raise Division_by_zero on the zero polynomial. *)
val monic : t -> t

(** [shift p a] is the polynomial [q] with [q(s) = p(s + a)] — the Taylor
    recentering used by the partial-fraction residue computation. *)
val shift : t -> Cx.t -> t

(** [deflate p r] divides out the root [r] once (synthetic division),
    discarding the remainder. *)
val deflate : t -> Cx.t -> t

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
