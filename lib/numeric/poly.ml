(* Invariant: the coefficient array has no trailing zero, so [degree] is
   [Array.length - 1] and the zero polynomial is the empty array. *)
type t = Cx.t array

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && Cx.is_zero a.(!n - 1) do
    decr n
  done;
  Array.sub a 0 !n

let of_array a = trim (Array.copy a)
let of_coeffs l = trim (Array.of_list l)
let of_real_coeffs l = of_coeffs (List.map Cx.of_float l)
let coeffs p = Array.copy p
let coeff (p : t) k = if k < Array.length p then p.(k) else Cx.zero
let zero : t = [||]
let one : t = [| Cx.one |]
let s : t = [| Cx.zero; Cx.one |]
let constant z = trim [| z |]

let monomial z k =
  if Cx.is_zero z then zero
  else Array.init (k + 1) (fun i -> if i = k then z else Cx.zero)

let degree (p : t) = Array.length p - 1
let is_zero (p : t) = Array.length p = 0

let eval (p : t) x =
  let acc = ref Cx.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Cx.add (Cx.mul !acc x) p.(i)
  done;
  !acc

let add a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  trim (Array.init n (fun i -> Cx.add (coeff a i) (coeff b i)))

let neg (p : t) : t = Array.map Cx.neg p
let sub a b = add a (neg b)

let mul (a : t) (b : t) =
  if is_zero a || is_zero b then zero
  else begin
    let out = Array.make (Array.length a + Array.length b - 1) Cx.zero in
    Array.iteri
      (fun i ai ->
        if not (Cx.is_zero ai) then
          Array.iteri
            (fun k bk -> out.(i + k) <- Cx.add out.(i + k) (Cx.mul ai bk))
            b)
      a;
    trim out
  end

let scale z p = trim (Array.map (Cx.mul z) p)

let pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  go one p n

let derivative (p : t) =
  if Array.length p <= 1 then zero
  else
    trim
      (Array.init
         (Array.length p - 1)
         (fun i -> Cx.scale (float_of_int (i + 1)) p.(i + 1)))

let divmod n d =
  if is_zero d then raise Division_by_zero;
  let dd = degree d and lead = d.(Array.length d - 1) in
  let r = Array.copy (n : t) in
  let qn = degree n - dd in
  if qn < 0 then (zero, of_array r)
  else begin
    let q = Array.make (qn + 1) Cx.zero in
    for k = qn downto 0 do
      let c = Cx.div r.(k + dd) lead in
      q.(k) <- c;
      if not (Cx.is_zero c) then
        for i = 0 to dd do
          r.(k + i) <- Cx.sub r.(k + i) (Cx.mul c d.(i))
        done
    done;
    (trim q, trim (Array.sub r 0 dd))
  end

let from_roots rs =
  List.fold_left (fun acc r -> mul acc (of_coeffs [ Cx.neg r; Cx.one ])) one rs

let monic p =
  if is_zero p then raise Division_by_zero;
  scale (Cx.inv p.(Array.length p - 1)) p

(* Taylor shift by repeated synthetic division: the remainders of dividing
   by (s - a) successively are the coefficients of p(s + a). *)
let shift (p : t) a =
  let n = Array.length p in
  if n = 0 then zero
  else begin
    let work = Array.copy p in
    let out = Array.make n Cx.zero in
    for k = 0 to n - 1 do
      (* synthetic division of work.(k..n-1) by (s - a) *)
      for i = n - 2 downto k do
        work.(i) <- Cx.add work.(i) (Cx.mul work.(i + 1) a)
      done;
      out.(k) <- work.(k)
    done;
    trim out
  end

let deflate (p : t) r =
  let n = Array.length p in
  if n <= 1 then zero
  else begin
    let q = Array.make (n - 1) Cx.zero in
    let acc = ref p.(n - 1) in
    for i = n - 2 downto 0 do
      q.(i) <- !acc;
      acc := Cx.add p.(i) (Cx.mul !acc r)
    done;
    trim q
  end

let equal ?(tol = 1e-9) a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  let scale_mag =
    let m = ref 0.0 in
    for i = 0 to n - 1 do
      m := Stdlib.max !m (Stdlib.max (Cx.abs (coeff a i)) (Cx.abs (coeff b i)))
    done;
    !m
  in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Cx.abs (Cx.sub (coeff a i) (coeff b i)) > tol *. (1.0 +. scale_mag)
    then ok := false
  done;
  !ok

let pp ppf (p : t) =
  if is_zero p then Format.pp_print_string ppf "0"
  else begin
    let first = ref true in
    Array.iteri
      (fun i c ->
        if not (Cx.is_zero c) then begin
          if not !first then Format.fprintf ppf " + ";
          first := false;
          if i = 0 then Cx.pp ppf c
          else Format.fprintf ppf "(%a)s^%d" Cx.pp c i
        end)
      p
  end
