let linear xs ys x =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Interp.linear: empty data";
  if Array.length ys <> n then invalid_arg "Interp.linear: length mismatch";
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the bracketing interval *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = xs.(!lo) and x1 = xs.(!hi) in
    let w = (x -. x0) /. (x1 -. x0) in
    ((1.0 -. w) *. ys.(!lo)) +. (w *. ys.(!hi))
  end

let uniform ~t0 ~dt ys t =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Interp.uniform: empty data";
  let pos = (t -. t0) /. dt in
  if pos <= 0.0 then ys.(0)
  else if pos >= float_of_int (n - 1) then ys.(n - 1)
  else begin
    let i = int_of_float pos in
    let w = pos -. float_of_int i in
    ((1.0 -. w) *. ys.(i)) +. (w *. ys.(i + 1))
  end

let resample_uniform xs ys ~n =
  if n < 2 then invalid_arg "Interp.resample_uniform: need at least 2 points";
  let t0 = xs.(0) and t1 = xs.(Array.length xs - 1) in
  let dt = (t1 -. t0) /. float_of_int (n - 1) in
  let samples =
    Array.init n (fun i -> linear xs ys (t0 +. (float_of_int i *. dt)))
  in
  (t0, dt, samples)
