type t = Cx.t array array

let make r c z = Array.init r (fun _ -> Array.make c z)
let init r c f = Array.init r (fun i -> Array.init c (fun k -> f i k))
let rows (m : t) = Array.length m
let cols (m : t) = if rows m = 0 then 0 else Array.length m.(0)
let get (m : t) i k = m.(i).(k)
let set (m : t) i k z = m.(i).(k) <- z
let copy (m : t) = Array.map Array.copy m
let zeros r c = make r c Cx.zero
let identity n = init n n (fun i k -> if i = k then Cx.one else Cx.zero)

let diagonal v =
  let n = Cvec.dim v in
  init n n (fun i k -> if i = k then Cvec.get v i else Cx.zero)

let of_rows a = Array.map Array.copy a
let row (m : t) i = Cvec.of_array m.(i)
let col (m : t) k = Cvec.init (rows m) (fun i -> m.(i).(k))

let lift2 op a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Cmat.lift2: dimension mismatch";
  init (rows a) (cols a) (fun i k -> op a.(i).(k) b.(i).(k))

let add = lift2 Cx.add
let sub = lift2 Cx.sub
let scale z m = Array.map (Array.map (Cx.mul z)) m
let neg m = Array.map (Array.map Cx.neg) m

let mul a b =
  if cols a <> rows b then invalid_arg "Cmat.mul: dimension mismatch";
  let n = rows a and p = cols b and q = cols a in
  let out = zeros n p in
  for i = 0 to n - 1 do
    let ai = a.(i) and oi = out.(i) in
    for l = 0 to q - 1 do
      let ail = ai.(l) in
      if not (Cx.is_zero ail) then begin
        let bl = b.(l) in
        for k = 0 to p - 1 do
          oi.(k) <- Cx.add oi.(k) (Cx.mul ail bl.(k))
        done
      end
    done
  done;
  out

let mv m v =
  if cols m <> Cvec.dim v then invalid_arg "Cmat.mv: dimension mismatch";
  Cvec.init (rows m) (fun i ->
      let acc = ref Cx.zero in
      for k = 0 to cols m - 1 do
        acc := Cx.add !acc (Cx.mul m.(i).(k) (Cvec.get v k))
      done;
      !acc)

let vm v m =
  if rows m <> Cvec.dim v then invalid_arg "Cmat.vm: dimension mismatch";
  Cvec.init (cols m) (fun k ->
      let acc = ref Cx.zero in
      for i = 0 to rows m - 1 do
        acc := Cx.add !acc (Cx.mul (Cvec.get v i) m.(i).(k))
      done;
      !acc)

let outer u v =
  init (Cvec.dim u) (Cvec.dim v) (fun i k ->
      Cx.mul (Cvec.get u i) (Cvec.get v k))

let transpose m = init (cols m) (rows m) (fun i k -> m.(k).(i))
let conj_transpose m = init (cols m) (rows m) (fun i k -> Cx.conj m.(k).(i))
let map f m = Array.map (Array.map f) m
let mapi f m = Array.mapi (fun i r -> Array.mapi (fun k z -> f i k z) r) m

let fold f acc m =
  Array.fold_left (fun acc r -> Array.fold_left f acc r) acc m

let sum_entries m = fold Cx.add Cx.zero m

let trace m =
  let n = Stdlib.min (rows m) (cols m) in
  let acc = ref Cx.zero in
  for i = 0 to n - 1 do
    acc := Cx.add !acc m.(i).(i)
  done;
  !acc

let norm_frobenius m = Stdlib.sqrt (fold (fun a z -> a +. Cx.norm2 z) 0.0 m)

let norm_inf m =
  Array.fold_left
    (fun acc r ->
      Stdlib.max acc (Array.fold_left (fun a z -> a +. Cx.abs z) 0.0 r))
    0.0 m

let equal ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for i = 0 to rows a - 1 do
         for k = 0 to cols a - 1 do
           if not (Cx.approx ~tol a.(i).(k) b.(i).(k)) then ok := false
         done
       done;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r ->
      Format.fprintf ppf "[@[<hov>%a@]]@,"
        (Format.pp_print_array
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           Cx.pp)
        r)
    m;
  Format.fprintf ppf "@]"
