(** Numerical integration.

    Adaptive Simpson for general integrands (jitter integrals of the
    noise extension) and uniform trapezoid for periodic integrands —
    the latter converges spectrally and is how the Fourier coefficients
    of VCO impulse-sensitivity functions are computed. *)

(** [simpson ?tol ?max_depth f a b] integrates [f] over [[a, b]]
    adaptively. *)
val simpson : ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float

(** [periodic_trapezoid f ~period ~n] integrates one period of the
    periodic function [f] with [n] uniform samples. *)
val periodic_trapezoid : (float -> float) -> period:float -> n:int -> float

(** [fourier_coeff f ~period ~k ?n] is
    [(1/T) ∫₀ᵀ f(t) exp(-j k ω₀ t) dt] — the k-th Fourier coefficient
    with the paper's convention [f(t) = Σ_k f_k exp(j k ω₀ t)]. *)
val fourier_coeff : (float -> float) -> period:float -> k:int -> ?n:int -> unit -> Cx.t

(** [fourier_coeffs f ~period ~max_harmonic ?n ()] returns coefficients
    for k = -max_harmonic .. max_harmonic as an array indexed by
    [k + max_harmonic]. *)
val fourier_coeffs :
  (float -> float) -> period:float -> max_harmonic:int -> ?n:int -> unit -> Cx.t array

(** [fourier_eval coeffs ~omega0 t] reconstructs
    [Σ_k c_k exp(j k ω₀ t)] from an array indexed as produced by
    {!fourier_coeffs} (odd length, center = DC); the result's imaginary
    part is discarded (real synthesis). *)
val fourier_eval : Cx.t array -> omega0:float -> float -> float
