type estimate = { omega : float array; s : float array; segments : int }

let hann n =
  Array.init n (fun i ->
      let x = Float.pi *. float_of_int i /. float_of_int n in
      let sx = Float.sin x in
      sx *. sx)

let welch xs ~dt ~segment =
  if segment land (segment - 1) <> 0 || segment < 4 then
    invalid_arg "Psd.welch: segment must be a power of two >= 4";
  if Array.length xs < segment then
    invalid_arg "Psd.welch: record shorter than one segment";
  let window = hann segment in
  let u = Array.fold_left (fun acc w -> acc +. (w *. w)) 0.0 window in
  let hop = segment / 2 in
  let n_seg = ((Array.length xs - segment) / hop) + 1 in
  let half = segment / 2 in
  let acc = Array.make (half + 1) 0.0 in
  for seg = 0 to n_seg - 1 do
    let offset = seg * hop in
    let buf =
      Array.init segment (fun i -> Cx.of_float (window.(i) *. xs.(offset + i)))
    in
    Fft.fft buf;
    for k = 0 to half do
      acc.(k) <- acc.(k) +. Cx.norm2 buf.(k)
    done
  done;
  let scale = dt /. (u *. float_of_int n_seg) in
  let domega = 2.0 *. Float.pi /. (float_of_int segment *. dt) in
  {
    omega = Array.init (half + 1) (fun k -> float_of_int k *. domega);
    s = Array.map (fun p -> p *. scale) acc;
    segments = n_seg;
  }

let band_average est ~lo ~hi =
  let total = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun k w ->
      if w >= lo && w < hi then begin
        total := !total +. est.s.(k);
        incr count
      end)
    est.omega;
  if !count = 0 then invalid_arg "Psd.band_average: empty band";
  !total /. float_of_int !count

let variance_of est =
  let domega = est.omega.(1) -. est.omega.(0) in
  Array.fold_left ( +. ) 0.0 est.s *. domega /. Float.pi
