let simpson ?(tol = 1e-10) ?(max_depth = 50) f a b =
  let simpson_rule fa fm fb h = h /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  (* a global budget keeps non-integrable inputs (NaN/inf values defeat
     the error estimate) from expanding an exponential call tree *)
  let budget = ref 2_000_000 in
  let rec adapt a b fa fm fb whole depth =
    decr budget;
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_rule fa flm fm (m -. a) in
    let right = simpson_rule fm frm fb (b -. m) in
    let delta = left +. right -. whole in
    if depth >= max_depth || !budget <= 0
       || (Float.is_finite delta && Float.abs delta <= 15.0 *. tol)
    then left +. right +. (if Float.is_finite delta then delta /. 15.0 else 0.0)
    else
      adapt a m fa flm fm left (depth + 1)
      +. adapt m b fm frm fb right (depth + 1)
  in
  if Float.equal a b then 0.0
  else begin
    let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
    adapt a b fa fm fb (simpson_rule fa fm fb (b -. a)) 0
  end

let periodic_trapezoid f ~period ~n =
  (* On a full period, trapezoid = midpoint = rectangle rule; endpoints
     coincide so a plain Riemann sum over n points is exact trapezoid. *)
  let h = period /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. f (float_of_int i *. h)
  done;
  !acc *. h

let fourier_coeff f ~period ~k ?(n = 1024) () =
  let omega0 = 2.0 *. Float.pi /. period in
  let h = period /. float_of_int n in
  let acc = ref Cx.zero in
  for i = 0 to n - 1 do
    let t = float_of_int i *. h in
    acc :=
      Cx.add !acc
        (Cx.scale (f t) (Cx.cis (-.(float_of_int k) *. omega0 *. t)))
  done;
  Cx.scale (1.0 /. float_of_int n) !acc

let fourier_coeffs f ~period ~max_harmonic ?(n = 1024) () =
  Array.init
    ((2 * max_harmonic) + 1)
    (fun i -> fourier_coeff f ~period ~k:(i - max_harmonic) ~n ())

let fourier_eval coeffs ~omega0 t =
  let len = Array.length coeffs in
  if len mod 2 = 0 then invalid_arg "Quad.fourier_eval: even-length array";
  let max_harmonic = len / 2 in
  let acc = ref Cx.zero in
  Array.iteri
    (fun i c ->
      let k = i - max_harmonic in
      acc := Cx.add !acc (Cx.mul c (Cx.cis (float_of_int k *. omega0 *. t))))
    coeffs;
  Cx.re !acc
