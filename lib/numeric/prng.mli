(** Deterministic pseudo-random numbers (xoshiro256++).

    Monte-Carlo noise runs must be reproducible across OCaml versions,
    so the generator is implemented here rather than taken from
    [Stdlib.Random] (whose algorithm is not stable across releases).
    Seeding goes through SplitMix64 as recommended by the xoshiro
    authors. *)

type t

(** [create ~seed] — deterministic stream for a given seed. *)
val create : seed:int64 -> t

(** [copy g] — independent continuation of the current state. *)
val copy : t -> t

(** [bits64 g] — next raw 64-bit word. *)
val bits64 : t -> int64

(** [float g] — uniform in [0, 1) with 53-bit resolution. *)
val float : t -> float

(** [uniform g ~lo ~hi] — uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [gaussian g] — standard normal (Marsaglia polar, cached spare). *)
val gaussian : t -> float

(** [gaussian_array g n ~sigma] — [n] independent N(0, σ²) samples. *)
val gaussian_array : t -> int -> sigma:float -> float array
