let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let bit_reverse_permute a =
  let n = Array.length a in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let fft_dir sign a =
  let n = Array.length a in
  if n land (n - 1) <> 0 then
    invalid_arg "Fft.fft_dir: length must be a power of 2";
  if n > 1 then begin
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let angle = sign *. 2.0 *. Float.pi /. float_of_int !len in
      let wstep = Cx.cis angle in
      let i = ref 0 in
      while !i < n do
        let w = ref Cx.one in
        for k = 0 to half - 1 do
          let u = a.(!i + k) and v = Cx.mul a.(!i + k + half) !w in
          a.(!i + k) <- Cx.add u v;
          a.(!i + k + half) <- Cx.sub u v;
          w := Cx.mul !w wstep
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end

let fft a = fft_dir (-1.0) a

let ifft a =
  fft_dir 1.0 a;
  let inv_n = 1.0 /. float_of_int (Array.length a) in
  Array.iteri (fun i z -> a.(i) <- Cx.scale inv_n z) a

let transform a =
  let b = Array.copy a in
  fft b;
  b

let goertzel xs ~dt ~omega =
  let n = Array.length xs in
  let acc = ref Cx.zero in
  for i = 0 to n - 1 do
    let t = float_of_int i *. dt in
    acc := Cx.add !acc (Cx.scale xs.(i) (Cx.cis (-.omega *. t)))
  done;
  let total_time = float_of_int n *. dt in
  Cx.scale (2.0 *. dt /. total_time) !acc

let dft_bin a k =
  let n = Array.length a in
  let acc = ref Cx.zero in
  for i = 0 to n - 1 do
    let phase = -2.0 *. Float.pi *. float_of_int (i * k) /. float_of_int n in
    acc := Cx.add !acc (Cx.mul a.(i) (Cx.cis phase))
  done;
  !acc
