(** Polynomial root finding.

    Degrees 1 and 2 use closed forms; higher degrees use the
    Durand–Kerner (Weierstrass) simultaneous iteration followed by a
    Newton polish of each root on the original polynomial. Poles and
    zeros of transfer functions and the partial-fraction expansion of
    [A(s)] (hence the exact λ(s)) come through here. *)

(** [all p] returns the [degree p] roots of [p] (with multiplicity,
    approximated as clusters of nearby simple roots).
    @raise Invalid_argument on the zero polynomial. *)
val all : ?max_iter:int -> ?tol:float -> Poly.t -> Cx.t list

(** [newton_polish p z] runs a few Newton steps on [p] from [z]. *)
val newton_polish : ?steps:int -> Poly.t -> Cx.t -> Cx.t

(** [cluster ?tol roots] groups roots closer than [tol] (relative to the
    root magnitude scale) into (representative, multiplicity) pairs; the
    representative is the cluster mean. *)
val cluster : ?tol:float -> Cx.t list -> (Cx.t * int) list
