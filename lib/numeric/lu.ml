exception Singular

type factorization = { lu : Cx.t array array; perm : int array }

(* Crout-style in-place LU with partial pivoting on modulus. *)
let decompose m =
  let n = Cmat.rows m in
  if Cmat.cols m <> n then invalid_arg "Lu.decompose: matrix not square";
  let a = Array.init n (fun i -> Array.init n (fun k -> Cmat.get m i k)) in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* pivot search *)
    let best = ref k and best_mag = ref (Cx.abs a.(k).(k)) in
    for i = k + 1 to n - 1 do
      let mag = Cx.abs a.(i).(k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if Float.equal !best_mag 0.0 then raise Singular;
    if !best <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!best);
      a.(!best) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tp
    end;
    let pivot = a.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = Cx.div a.(i).(k) pivot in
      a.(i).(k) <- factor;
      if not (Cx.is_zero factor) then
        for l = k + 1 to n - 1 do
          a.(i).(l) <- Cx.sub a.(i).(l) (Cx.mul factor a.(k).(l))
        done
    done
  done;
  { lu = a; perm }

let solve { lu; perm } b =
  let n = Array.length lu in
  if Cvec.dim b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let y = Array.init n (fun i -> Cvec.get b perm.(i)) in
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    for k = 0 to i - 1 do
      y.(i) <- Cx.sub y.(i) (Cx.mul lu.(i).(k) y.(k))
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    for k = i + 1 to n - 1 do
      y.(i) <- Cx.sub y.(i) (Cx.mul lu.(i).(k) y.(k))
    done;
    y.(i) <- Cx.div y.(i) lu.(i).(i)
  done;
  Cvec.of_array y

let solve_mat f b =
  let n = Cmat.rows b and p = Cmat.cols b in
  let out = Cmat.zeros n p in
  for k = 0 to p - 1 do
    let x = solve f (Cmat.col b k) in
    for i = 0 to n - 1 do
      Cmat.set out i k (Cvec.get x i)
    done
  done;
  out

let inverse m = solve_mat (decompose m) (Cmat.identity (Cmat.rows m))

let det m =
  match decompose m with
  | exception Singular -> Cx.zero
  | { lu; perm } ->
      let n = Array.length lu in
      (* permutation sign by cycle counting *)
      let seen = Array.make n false in
      let sign = ref 1 in
      for i = 0 to n - 1 do
        if not seen.(i) then begin
          let len = ref 0 and k = ref i in
          while not seen.(!k) do
            seen.(!k) <- true;
            k := perm.(!k);
            incr len
          done;
          if !len mod 2 = 0 then sign := - !sign
        end
      done;
      let d = ref (Cx.of_float (float_of_int !sign)) in
      for i = 0 to n - 1 do
        d := Cx.mul !d lu.(i).(i)
      done;
      !d

let solve_system a b = solve (decompose a) b
