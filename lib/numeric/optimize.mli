(** Scalar root finding and 1-D search.

    Unity-gain crossover search (the phase-margin computations of both
    the LTI baseline and the time-varying λ(s) analysis) is a
    scan-then-Brent bracketing problem solved here. *)

exception No_bracket

(** [bisect f a b] finds a root of [f] in [[a, b]]; [f a] and [f b] must
    have opposite signs. @raise No_bracket otherwise. *)
val bisect : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [brent f a b] — Brent's method; same bracketing contract as
    {!bisect} but superlinear. *)
val brent : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [find_first_crossing f ~lo ~hi ~steps] scans [f] on a log-spaced grid
    over [[lo, hi]] (both positive) and returns the abscissa of the first
    sign change, refined with {!brent}. Returns [None] when no sign
    change is seen. *)
val find_first_crossing :
  ?steps:int -> (float -> float) -> lo:float -> hi:float -> float option

(** [find_all_crossings] — like {!find_first_crossing} but returns every
    bracketed crossing on the grid. *)
val find_all_crossings :
  ?steps:int -> (float -> float) -> lo:float -> hi:float -> float list

(** [golden_min f a b] minimizes the unimodal [f] on [[a, b]]. *)
val golden_min : ?tol:float -> (float -> float) -> float -> float -> float

(** [logspace lo hi n] is [n] log-spaced points from [lo] to [hi]
    inclusive (both positive). *)
val logspace : float -> float -> int -> float array

(** [linspace lo hi n] is [n] evenly spaced points, endpoints included. *)
val linspace : float -> float -> int -> float array
