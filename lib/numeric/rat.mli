(** Rational functions [num/den] over the complex field.

    The representation is not automatically reduced; [reduce] cancels
    numerically-coincident pole/zero pairs on demand. Transfer functions
    in both the s- and z-domain are rationals of this kind. *)

type t = { num : Poly.t; den : Poly.t }

(** @raise Division_by_zero if [den] is the zero polynomial. *)
val make : Poly.t -> Poly.t -> t

val of_poly : Poly.t -> t
val constant : Cx.t -> t
val zero : t
val one : t

(** The rational [s] (identity map). *)
val s : t

val eval : t -> Cx.t -> Cx.t

(** {1 Allocation-free evaluation}

    [split r] precompiles the coefficients into flat unboxed arrays;
    {!eval_into} then evaluates the rational without allocating a single
    heap block — the hot path of grid-batched HTM plans, where one
    rational is evaluated at thousands of shifted frequencies.
    [eval_into] is bit-identical to {!eval}: the Horner recurrences and
    the complex division mirror [Poly.eval] and [Complex.div] (Smith's
    algorithm) operation for operation.

    A [split] carries a small private evaluation scratch (that is how it
    stays allocation-free), so one [split] value supports one evaluation
    at a time: give each concurrent lane its own [split] — grid plans do
    this by construction, one compiled plan per lane. *)

type split

val split : t -> split

(** [eval_into sp ~re ~im ~out_re ~out_im ~idx] — evaluate at
    [re + i·im] and store the result at [out_re.(idx)], [out_im.(idx)]. *)
val eval_into :
  split ->
  re:float ->
  im:float ->
  out_re:float array ->
  out_im:float array ->
  idx:int ->
  unit

(** [eval_split sp x] — boxed convenience wrapper over {!eval_into}
    (equality-with-{!eval} tests). *)
val eval_split : split -> Cx.t -> Cx.t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val scale : Cx.t -> t -> t
val pow : t -> int -> t

(** [feedback g h] is the negative-feedback closed loop
    [g / (1 + g h)]. *)
val feedback : t -> t -> t

(** [feedback_unity g] is [g / (1 + g)]. *)
val feedback_unity : t -> t

val derivative : t -> t
val poles : t -> Cx.t list
val zeros : t -> Cx.t list

(** [relative_degree r] is [degree den - degree num]; positive for a
    strictly proper rational. *)
val relative_degree : t -> int

val is_proper : t -> bool
val is_strictly_proper : t -> bool

(** [reduce ?tol r] cancels pole/zero pairs that coincide within [tol]
    (relative) and normalizes the denominator to monic form. *)
val reduce : ?tol:float -> t -> t

(** [normalize r] makes the denominator monic without cancelling. *)
val normalize : t -> t

val equal_response : ?tol:float -> ?points:int -> t -> t -> bool
val pp : Format.formatter -> t -> unit
