(** Interpolation and resampling of sampled data. *)

(** [linear xs ys x] — piecewise-linear interpolation; [xs] must be
    strictly increasing. Outside the range the boundary value is
    returned (clamped). *)
val linear : float array -> float array -> float -> float

(** [uniform ~t0 ~dt ys t] — linear interpolation on a uniform grid. *)
val uniform : t0:float -> dt:float -> float array -> float -> float

(** [resample_uniform xs ys ~n] resamples onto [n] uniform points
    spanning [xs.(0) .. xs.(last)]; returns [(t0, dt, samples)]. *)
val resample_uniform : float array -> float array -> n:int -> float * float * float array
