type system = float -> float array -> float array

let axpy out a x y =
  (* out_i = y_i + a * x_i *)
  Array.iteri (fun i yi -> out.(i) <- yi +. (a *. x.(i))) y;
  out

let rk4_step f t y h =
  let n = Array.length y in
  let k1 = f t y in
  let k2 = f (t +. (0.5 *. h)) (axpy (Array.make n 0.0) (0.5 *. h) k1 y) in
  let k3 = f (t +. (0.5 *. h)) (axpy (Array.make n 0.0) (0.5 *. h) k2 y) in
  let k4 = f (t +. h) (axpy (Array.make n 0.0) h k3 y) in
  Array.init n (fun i ->
      y.(i) +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))

let rk4 f ~t0 ~y0 ~t1 ~steps =
  let h = (t1 -. t0) /. float_of_int steps in
  let y = ref (Array.copy y0) in
  for i = 0 to steps - 1 do
    y := rk4_step f (t0 +. (float_of_int i *. h)) !y h
  done;
  !y

let rk4_trace f ~t0 ~y0 ~t1 ~steps =
  let h = (t1 -. t0) /. float_of_int steps in
  let out = Array.make (steps + 1) (t0, Array.copy y0) in
  let y = ref (Array.copy y0) in
  for i = 1 to steps do
    y := rk4_step f (t0 +. (float_of_int (i - 1) *. h)) !y h;
    out.(i) <- (t0 +. (float_of_int i *. h), Array.copy !y)
  done;
  out

(* Dormand–Prince 5(4) Butcher tableau *)
let dp_c = [| 0.0; 0.2; 0.3; 0.8; 8.0 /. 9.0; 1.0; 1.0 |]

let dp_a =
  [|
    [||];
    [| 0.2 |];
    [| 3.0 /. 40.0; 9.0 /. 40.0 |];
    [| 44.0 /. 45.0; -56.0 /. 15.0; 32.0 /. 9.0 |];
    [| 19372.0 /. 6561.0; -25360.0 /. 2187.0; 64448.0 /. 6561.0; -212.0 /. 729.0 |];
    [| 9017.0 /. 3168.0; -355.0 /. 33.0; 46732.0 /. 5247.0; 49.0 /. 176.0; -5103.0 /. 18656.0 |];
    [| 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0; -2187.0 /. 6784.0; 11.0 /. 84.0 |];
  |]

let dp_b5 = [| 35.0 /. 384.0; 0.0; 500.0 /. 1113.0; 125.0 /. 192.0; -2187.0 /. 6784.0; 11.0 /. 84.0; 0.0 |]

let dp_b4 =
  [| 5179.0 /. 57600.0; 0.0; 7571.0 /. 16695.0; 393.0 /. 640.0; -92097.0 /. 339200.0; 187.0 /. 2100.0; 1.0 /. 40.0 |]

let dopri5 f ~t0 ~y0 ~t1 ?(rtol = 1e-9) ?(atol = 1e-12) ?h0 () =
  let n = Array.length y0 in
  let t = ref t0 and y = ref (Array.copy y0) in
  let h = ref (match h0 with Some h -> h | None -> (t1 -. t0) /. 100.0) in
  let stage_values = Array.make 7 [||] in
  while !t < t1 -. 1e-15 *. (1.0 +. Float.abs t1) do
    if !t +. !h > t1 then h := t1 -. !t;
    (* stages *)
    for s = 0 to 6 do
      let ys = Array.copy !y in
      for l = 0 to s - 1 do
        let a = dp_a.(s).(l) in
        if not (Float.equal a 0.0) then
          Array.iteri (fun i v -> ys.(i) <- v +. (!h *. a *. stage_values.(l).(i))) ys
      done;
      stage_values.(s) <- f (!t +. (dp_c.(s) *. !h)) ys
    done;
    let y5 = Array.copy !y and y4 = Array.copy !y in
    for s = 0 to 6 do
      for i = 0 to n - 1 do
        y5.(i) <- y5.(i) +. (!h *. dp_b5.(s) *. stage_values.(s).(i));
        y4.(i) <- y4.(i) +. (!h *. dp_b4.(s) *. stage_values.(s).(i))
      done
    done;
    (* error estimate *)
    let err = ref 0.0 in
    for i = 0 to n - 1 do
      let sc = atol +. (rtol *. Stdlib.max (Float.abs !y.(i)) (Float.abs y5.(i))) in
      let e = (y5.(i) -. y4.(i)) /. sc in
      err := !err +. (e *. e)
    done;
    let err = sqrt (!err /. float_of_int n) in
    if err <= 1.0 then begin
      t := !t +. !h;
      y := y5
    end;
    let factor =
      if Float.equal err 0.0 then 5.0 else 0.9 *. (err ** -0.2)
    in
    let factor = Stdlib.min 5.0 (Stdlib.max 0.2 factor) in
    h := !h *. factor;
    if !h < 1e-16 *. (1.0 +. Float.abs !t) then
      failwith "Ode.dopri5: step size underflow"
  done;
  !y

let linear_stepper ~a ~b ~h =
  let n = Rmat.rows a in
  (* augmented [[A b]; [0 0]]: e^{Mh} = [[e^{Ah}, ∫e^{A s}ds b]; [0, 1]] *)
  let m =
    Rmat.init (n + 1) (n + 1) (fun i k ->
        if i < n && k < n then Rmat.get a i k
        else if i < n && k = n then b.(i)
        else 0.0)
  in
  let em = Rmat.expm (Rmat.scale h m) in
  let phi = Rmat.init n n (fun i k -> Rmat.get em i k) in
  let gamma = Array.init n (fun i -> Rmat.get em i n) in
  fun x ->
    let px = Rmat.mv phi x in
    Array.init n (fun i -> px.(i) +. gamma.(i))
