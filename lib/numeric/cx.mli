(** Complex scalar helpers on top of [Stdlib.Complex].

    All the numerics in this project (HTMs, transfer functions, harmonic
    sums) live over the complex field; this module centralizes the small
    conveniences that [Stdlib.Complex] lacks: literals, [j], comparison
    with tolerance, finiteness checks and a printer. *)

type t = Complex.t

val zero : t
val one : t

(** The imaginary unit. *)
val j : t

(** [of_float x] is the complex number [x + 0j]. *)
val of_float : float -> t

(** [make re im] is [re + im*j]. *)
val make : float -> float -> t

(** [jomega w] is [0 + w*j] — the evaluation point of a frequency
    response at angular frequency [w]. *)
val jomega : float -> t

val re : t -> float
val im : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val conj : t -> t

(** [scale a z] multiplies [z] by the real scalar [a]. *)
val scale : float -> t -> t

val abs : t -> float
val arg : t -> float
val norm2 : t -> float
val sqrt : t -> t
val exp : t -> t
val log : t -> t

(** [pow_int z n] is [z] raised to the (possibly negative) integer [n].
    [pow_int zero 0] is [one]. *)
val pow_int : t -> int -> t

(** [cis theta] is [exp (j * theta)]. *)
val cis : float -> t

val is_finite : t -> bool

(** [is_zero z] — exact comparison of both parts against [0.0] with
    [Float.equal] (NaN-safe, unlike polymorphic [=] on [Complex.t];
    note [Float.equal] distinguishes no signed zeros, so [-0.0] counts
    as zero). Used by sparsity skips in matrix kernels. *)
val is_zero : t -> bool

(** [approx ?tol a b] holds when [abs (a - b) <= tol * (1 + abs a + abs b)].
    Default [tol] is [1e-9]. *)
val approx : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Local-open friendly operators: [Cx.Infix.(a + b * c)]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end
