(** LU decomposition with partial pivoting for complex matrices.

    This is the linear-solve kernel behind the generic truncated-HTM
    closed loop [(I + G(s))^{-1} G(s)] that cross-validates the paper's
    rank-one closed form. *)

exception Singular

type factorization

(** [decompose m] factors the square matrix [m] as [P A = L U].
    @raise Singular if a pivot is (numerically) zero. *)
val decompose : Cmat.t -> factorization

(** [solve f b] solves [A x = b] given [f = decompose a]. *)
val solve : factorization -> Cvec.t -> Cvec.t

(** [solve_mat f b] solves [A X = B] column-wise. *)
val solve_mat : factorization -> Cmat.t -> Cmat.t

(** [inverse m] is [m^{-1}]. @raise Singular if [m] is singular. *)
val inverse : Cmat.t -> Cmat.t

(** [det m] is the determinant (0 is returned, not raised, when LU
    pivoting hits an exact zero pivot). *)
val det : Cmat.t -> Cx.t

(** [solve_system a b] is [solve (decompose a) b]. *)
val solve_system : Cmat.t -> Cvec.t -> Cvec.t
