(** Dense complex vectors.

    Thin, explicit wrapper around [Complex.t array]; indices are 0-based.
    Used for HTM column vectors (e.g. the all-ones vector [l] of the
    sampling-PFD rank-one structure) and linear-solve right-hand sides. *)

type t

val make : int -> Cx.t -> t
val init : int -> (int -> Cx.t) -> t
val of_array : Cx.t array -> t
val to_array : t -> Cx.t array
val of_real_array : float array -> t
val dim : t -> int
val get : t -> int -> Cx.t
val set : t -> int -> Cx.t -> unit
val copy : t -> t

val zeros : int -> t
val ones : int -> t

(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)
val basis : int -> int -> t

val add : t -> t -> t
val sub : t -> t -> t

(** [scale a v] multiplies every entry by the complex scalar [a]. *)
val scale : Cx.t -> t -> t

val neg : t -> t
val map : (Cx.t -> Cx.t) -> t -> t
val mapi : (int -> Cx.t -> Cx.t) -> t -> t

(** [dot u v] is the bilinear product [sum u_i * v_i] (no conjugation);
    this is the product that appears in the HTM rank-one algebra
    [l^T V]. *)
val dot : t -> t -> Cx.t

(** [dot_herm u v] is the sesquilinear product [sum (conj u_i) * v_i]. *)
val dot_herm : t -> t -> Cx.t

(** [sum v] is the sum of all entries ([l^T v]). *)
val sum : t -> Cx.t

val norm2 : t -> float
val norm_inf : t -> float
val pp : Format.formatter -> t -> unit
