let cosh_c (z : Cx.t) =
  { Complex.re = cosh z.re *. cos z.im; im = sinh z.re *. sin z.im }

let sinh_c (z : Cx.t) =
  { Complex.re = sinh z.re *. cos z.im; im = cosh z.re *. sin z.im }

let coth z =
  (* For large |Re z| the ratio overflows: clamp to ±1 which is the
     correct limit (double overflows near Re z ~ 710). *)
  if Float.abs (Cx.re z) > 350.0 then
    Cx.of_float (if Cx.re z > 0.0 then 1.0 else -1.0)
  else Cx.div (cosh_c z) (sinh_c z)

let csch2 z =
  if Float.abs (Cx.re z) > 350.0 then Cx.zero
  else
    let sh = sinh_c z in
    Cx.inv (Cx.mul sh sh)

(* Q_k as float-coefficient polynomials in c = coth(w):
   Q_1 = c, Q_{k+1} = -(1/k) * Q_k' * (1 - c^2). Memoized. *)
let q_table : float array list ref = ref [ [| 0.0; 1.0 |] ]

let poly_deriv p =
  if Array.length p <= 1 then [| 0.0 |]
  else Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1))

let poly_mul a b =
  let out = Array.make (Array.length a + Array.length b - 1) 0.0 in
  Array.iteri
    (fun i ai ->
      Array.iteri (fun k bk -> out.(i + k) <- out.(i + k) +. (ai *. bk)) b)
    a;
  out

let poly_scale s p = Array.map (fun x -> s *. x) p

let rec q_poly k =
  let table = !q_table in
  let have = List.length table in
  if k <= have then List.nth table (k - 1)
  else begin
    let prev = q_poly (k - 1) in
    let next =
      poly_scale
        (-1.0 /. float_of_int (k - 1))
        (poly_mul (poly_deriv prev) [| 1.0; 0.0; -1.0 |])
    in
    q_table := !q_table @ [ next ];
    next
  end

let poly_eval_c p c =
  let acc = ref Cx.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Cx.add (Cx.mul !acc c) (Cx.of_float p.(i))
  done;
  !acc

let harmonic_sum ~k ~omega0 z =
  if k < 1 then invalid_arg "Special.harmonic_sum: k must be >= 1";
  let ratio = Float.pi /. omega0 in
  let w = Cx.scale ratio z in
  let c = coth w in
  Cx.mul (Cx.of_float (ratio ** float_of_int k)) (poly_eval_c (q_poly k) c)

let harmonic_sum_truncated ~k ~omega0 ~terms z =
  (* Sum symmetric pairs together for cancellation-friendly accumulation. *)
  let term m =
    Cx.pow_int (Cx.add z (Cx.jomega (float_of_int m *. omega0))) (-k)
  in
  let acc = ref (term 0) in
  for m = 1 to terms do
    acc := Cx.add !acc (Cx.add (term m) (term (-m)))
  done;
  !acc

let sinc x = if Float.abs x < 1e-8 then 1.0 -. (x *. x /. 6.0) else sin x /. x
