type t = Cx.t array

let make n z = Array.make n z
let init n f = Array.init n f
let of_array a = Array.copy a
let to_array v = Array.copy v
let of_real_array a = Array.map Cx.of_float a
let dim = Array.length
let get (v : t) i = v.(i)
let set (v : t) i z = v.(i) <- z
let copy = Array.copy
let zeros n = Array.make n Cx.zero
let ones n = Array.make n Cx.one
let basis n i = init n (fun k -> if k = i then Cx.one else Cx.zero)

let lift2 op a b =
  if dim a <> dim b then invalid_arg "Cvec.lift2: dimension mismatch";
  Array.init (dim a) (fun i -> op a.(i) b.(i))

let add = lift2 Cx.add
let sub = lift2 Cx.sub
let scale a v = Array.map (Cx.mul a) v
let neg v = Array.map Cx.neg v
let map = Array.map
let mapi = Array.mapi

let dot a b =
  if dim a <> dim b then invalid_arg "Cvec.dot: dimension mismatch";
  let acc = ref Cx.zero in
  for i = 0 to dim a - 1 do
    acc := Cx.add !acc (Cx.mul a.(i) b.(i))
  done;
  !acc

let dot_herm a b =
  if dim a <> dim b then invalid_arg "Cvec.dot_herm: dimension mismatch";
  let acc = ref Cx.zero in
  for i = 0 to dim a - 1 do
    acc := Cx.add !acc (Cx.mul (Cx.conj a.(i)) b.(i))
  done;
  !acc

let sum v = Array.fold_left Cx.add Cx.zero v

let norm2 v = Stdlib.sqrt (Cx.re (dot_herm v v))

let norm_inf v =
  Array.fold_left (fun acc z -> Stdlib.max acc (Cx.abs z)) 0.0 v

let pp ppf v =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Cx.pp)
    v
