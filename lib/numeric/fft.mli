(** Radix-2 FFT and single-bin correlation.

    The simulator post-processing (extracting the measured closed-loop
    phase transfer from a time-marching run, as the paper does from its
    Simulink runs) needs a spectrum estimator and a precise single-bin
    correlator; both live here. *)

(** [fft a] transforms in place; [Array.length a] must be a power of 2.
    Convention: [X_k = Σ_n x_n exp(-2πi nk/N)]. *)
val fft : Cx.t array -> unit

(** [ifft a] is the inverse transform (including the [1/N] factor). *)
val ifft : Cx.t array -> unit

(** [transform a] is a non-destructive [fft]. *)
val transform : Cx.t array -> Cx.t array

val next_pow2 : int -> int

(** [goertzel xs ~dt ~omega] is the single-frequency Fourier integral
    [(2/T) Σ x_n exp(-j ω t_n) dt] over the samples: the complex
    amplitude [Y] such that the signal's component at [omega] is
    [Re(Y exp(jωt))]. For [a cos(ωt) + b sin(ωt)] over an integer
    number of periods it returns [a - j b]. *)
val goertzel : float array -> dt:float -> omega:float -> Cx.t

(** [dft_bin xs k] is the k-th DFT bin computed directly (O(N)) —
    reference implementation for tests. *)
val dft_bin : Cx.t array -> int -> Cx.t
