let newton_polish ?(steps = 8) p z0 =
  let dp = Poly.derivative p in
  let rec go z n =
    if n = 0 then z
    else
      let d = Poly.eval dp z in
      if Float.equal (Cx.abs d) 0.0 then z
      else begin
        let step = Cx.div (Poly.eval p z) d in
        let z' = Cx.sub z step in
        if (not (Cx.is_finite z')) || Cx.abs step <= 1e-16 *. (1.0 +. Cx.abs z)
        then z
        else go z' (n - 1)
      end
  in
  go z0 steps

let quadratic a b c =
  (* a s^2 + b s + c, complex-stable form using the sign trick *)
  let open Cx.Infix in
  let disc = Cx.sqrt ((b * b) - Cx.scale 4.0 (a * c)) in
  let q =
    if Cx.re (Cx.mul (Cx.conj b) disc) >= 0.0 then
      Cx.scale (-0.5) (b + disc)
    else Cx.scale (-0.5) (b - disc)
  in
  if Float.equal (Cx.abs q) 0.0 then
    let r = Cx.div (Cx.neg b) (Cx.scale 2.0 a) in
    [ r; r ]
  else [ Cx.div q a; Cx.div c q ]

let durand_kerner ?(max_iter = 400) ?(tol = 1e-13) p =
  let pm = Poly.monic p in
  let n = Poly.degree pm in
  (* initial guesses on a circle whose radius tracks the coefficient
     magnitudes (Cauchy-style bound), with an irrational angle offset to
     avoid symmetry traps *)
  let radius =
    let m = ref 0.0 in
    for i = 0 to n - 1 do
      m := Stdlib.max !m (Cx.abs (Poly.coeff pm i))
    done;
    1.0 +. !m
  in
  let zs =
    Array.init n (fun i ->
        Cx.scale radius (Cx.cis ((float_of_int i +. 0.3) *. 2.0 *. Float.pi /. float_of_int n +. 0.42)))
  in
  let iter () =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      let zi = zs.(i) in
      let denom = ref Cx.one in
      for k = 0 to n - 1 do
        if k <> i then denom := Cx.mul !denom (Cx.sub zi zs.(k))
      done;
      if Cx.abs !denom > 0.0 then begin
        let step = Cx.div (Poly.eval pm zi) !denom in
        zs.(i) <- Cx.sub zi step;
        delta := Stdlib.max !delta (Cx.abs step /. (1.0 +. Cx.abs zi))
      end
    done;
    !delta
  in
  let rec loop k =
    if k >= max_iter then ()
    else begin
      let d = iter () in
      if d > tol then loop (k + 1)
    end
  in
  loop 0;
  Array.to_list (Array.map (newton_polish p) zs)

let all ?max_iter ?tol p =
  if Poly.is_zero p then invalid_arg "Roots.all: zero polynomial";
  match Poly.degree p with
  | 0 -> []
  | 1 -> [ Cx.div (Cx.neg (Poly.coeff p 0)) (Poly.coeff p 1) ]
  | 2 -> quadratic (Poly.coeff p 2) (Poly.coeff p 1) (Poly.coeff p 0)
  | _ -> durand_kerner ?max_iter ?tol p

let cluster ?(tol = 1e-6) roots =
  let scale_mag =
    List.fold_left (fun acc z -> Stdlib.max acc (Cx.abs z)) 1.0 roots
  in
  let eps = tol *. scale_mag in
  let groups : (Cx.t * Cx.t list) list ref = ref [] in
  List.iter
    (fun z ->
      let rec place acc = function
        | [] -> List.rev ((z, [ z ]) :: acc)
        | (rep, members) :: rest ->
            if Cx.abs (Cx.sub rep z) <= eps then
              let members = z :: members in
              let n = float_of_int (List.length members) in
              let mean =
                Cx.scale (1.0 /. n)
                  (List.fold_left Cx.add Cx.zero members)
              in
              List.rev_append acc ((mean, members) :: rest)
            else place ((rep, members) :: acc) rest
      in
      groups := place [] !groups)
    roots;
  List.map (fun (rep, members) -> (rep, List.length members)) !groups
