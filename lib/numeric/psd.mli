(** Power spectral density estimation (Welch's method).

    Convention: two-sided PSD [S(ω)] as a function of angular frequency,
    so that the signal variance is [(1/2π) ∫_{-∞}^{∞} S(ω) dω] — the
    same convention as {!Pll_lib.Noise}, making simulated and analytic
    spectra directly comparable. For real signals only the nonnegative
    frequencies are returned; the variance then equals
    [(1/π) Σ S(ω_k) Δω] (excluding dc and Nyquist double-counting
    subtleties, negligible for broadband signals). *)

type estimate = {
  omega : float array;  (** bin centers, rad/s, ascending, ω ≥ 0 *)
  s : float array;  (** two-sided PSD at each bin *)
  segments : int;  (** number of averaged segments *)
}

(** [welch xs ~dt ~segment] — Hann-windowed, 50 %-overlapped Welch
    estimate with power-of-two [segment] length.
    @raise Invalid_argument if [segment] is not a power of two or the
    record is shorter than one segment. *)
val welch : float array -> dt:float -> segment:int -> estimate

(** [band_average est ~lo ~hi] — mean PSD over bins with
    [lo <= ω < hi]. @raise Invalid_argument when the band is empty. *)
val band_average : estimate -> lo:float -> hi:float -> float

(** [variance_of est] — [(1/π) Σ S Δω]: sanity check against the time-
    domain variance. *)
val variance_of : estimate -> float
