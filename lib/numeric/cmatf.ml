(* Flat, unboxed complex matrices: split re/im float arrays, row-major.

   [Cmat.t] boxes every entry as a [Complex.t] record behind a pointer
   array-of-arrays, so a dense n×n product chases 3 pointers per flop
   and allocates one heap block per scalar. This module stores the same
   data as two flat [float array]s (unboxed by the OCaml runtime), and
   every kernel below writes into caller-provided storage — the hot
   paths of the structured HTM evaluator allocate nothing but their
   final result. *)

type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmatf.create: negative dimension";
  { rows; cols; re = Array.make (rows * cols) 0.0; im = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let get m i k =
  if i < 0 || i >= m.rows || k < 0 || k >= m.cols then
    invalid_arg "Cmatf.get: index out of bounds";
  let p = (i * m.cols) + k in
  Cx.make m.re.(p) m.im.(p)

let set m i k z =
  if i < 0 || i >= m.rows || k < 0 || k >= m.cols then
    invalid_arg "Cmatf.set: index out of bounds";
  let p = (i * m.cols) + k in
  m.re.(p) <- Cx.re z;
  m.im.(p) <- Cx.im z

let copy m =
  { rows = m.rows; cols = m.cols; re = Array.copy m.re; im = Array.copy m.im }

let raw m = (m.re, m.im)

let blit ~src ~dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then
    invalid_arg "Cmatf.blit: dimension mismatch";
  Array.blit src.re 0 dst.re 0 (src.rows * src.cols);
  Array.blit src.im 0 dst.im 0 (src.rows * src.cols)

let fill_zero m =
  Array.fill m.re 0 (m.rows * m.cols) 0.0;
  Array.fill m.im 0 (m.rows * m.cols) 0.0

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.0
  done;
  m

(* A += alpha·I, in place. *)
let add_ident ?(alpha = Cx.one) m =
  if m.rows <> m.cols then invalid_arg "Cmatf.add_ident: matrix not square";
  let ar = Cx.re alpha and ai = Cx.im alpha in
  for i = 0 to m.rows - 1 do
    let p = (i * m.cols) + i in
    m.re.(p) <- m.re.(p) +. ar;
    m.im.(p) <- m.im.(p) +. ai
  done

(* A *= z, in place. *)
let scale_inplace z m =
  let zr = Cx.re z and zi = Cx.im z in
  for p = 0 to (m.rows * m.cols) - 1 do
    let ar = m.re.(p) and ai = m.im.(p) in
    m.re.(p) <- (zr *. ar) -. (zi *. ai);
    m.im.(p) <- (zr *. ai) +. (zi *. ar)
  done

(* Y += z·X, in place. *)
let axpy z x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg "Cmatf.axpy: dimension mismatch";
  let zr = Cx.re z and zi = Cx.im z in
  for p = 0 to (x.rows * x.cols) - 1 do
    let ar = x.re.(p) and ai = x.im.(p) in
    y.re.(p) <- y.re.(p) +. ((zr *. ar) -. (zi *. ai));
    y.im.(p) <- y.im.(p) +. ((zr *. ai) +. (zi *. ar))
  done

(* dst = A·B (dst cleared first); i-l-k loop order so the inner loop
   walks both B and dst contiguously. dst must not alias A or B. *)
let gemm ~dst a b =
  if a.cols <> b.rows then invalid_arg "Cmatf.gemm: dimension mismatch";
  if dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Cmatf.gemm: destination shape mismatch";
  if dst == a || dst == b then invalid_arg "Cmatf.gemm: dst aliases an operand";
  fill_zero dst;
  let n = a.rows and q = a.cols and p = b.cols in
  for i = 0 to n - 1 do
    let arow = i * q and orow = i * p in
    for l = 0 to q - 1 do
      let ar = a.re.(arow + l) and ai = a.im.(arow + l) in
      if not (Float.equal ar 0.0 && Float.equal ai 0.0) then begin
        let brow = l * p in
        for k = 0 to p - 1 do
          let br = b.re.(brow + k) and bi = b.im.(brow + k) in
          dst.re.(orow + k) <- dst.re.(orow + k) +. ((ar *. br) -. (ai *. bi));
          dst.im.(orow + k) <- dst.im.(orow + k) +. ((ar *. bi) +. (ai *. br))
        done
      end
    done
  done

(* y = A·x on split-array vectors. *)
let gemv a ~xre ~xim ~yre ~yim =
  if Array.length xre <> a.cols || Array.length xim <> a.cols then
    invalid_arg "Cmatf.gemv: vector dimension mismatch";
  if Array.length yre <> a.rows || Array.length yim <> a.rows then
    invalid_arg "Cmatf.gemv: result dimension mismatch";
  for i = 0 to a.rows - 1 do
    let row = i * a.cols in
    let sr = ref 0.0 and si = ref 0.0 in
    for k = 0 to a.cols - 1 do
      let ar = a.re.(row + k) and ai = a.im.(row + k) in
      let br = xre.(k) and bi = xim.(k) in
      sr := !sr +. ((ar *. br) -. (ai *. bi));
      si := !si +. ((ar *. bi) +. (ai *. br))
    done;
    yre.(i) <- !sr;
    yim.(i) <- !si
  done

(* y = Aᴴ·x (no transposed copy is materialized). *)
let gemv_herm a ~xre ~xim ~yre ~yim =
  if Array.length xre <> a.rows || Array.length xim <> a.rows then
    invalid_arg "Cmatf.gemv_herm: vector dimension mismatch";
  if Array.length yre <> a.cols || Array.length yim <> a.cols then
    invalid_arg "Cmatf.gemv_herm: result dimension mismatch";
  Array.fill yre 0 a.cols 0.0;
  Array.fill yim 0 a.cols 0.0;
  for i = 0 to a.rows - 1 do
    let row = i * a.cols in
    let br = xre.(i) and bi = xim.(i) in
    for k = 0 to a.cols - 1 do
      (* conj(a) * b accumulated column-wise *)
      let ar = a.re.(row + k) and ai = -.a.im.(row + k) in
      yre.(k) <- yre.(k) +. ((ar *. br) -. (ai *. bi));
      yim.(k) <- yim.(k) +. ((ar *. bi) +. (ai *. br))
    done
  done

(* ------------------------------------------------------------------ *)
(* LU with caller-provided workspace                                   *)

type lu_ws = {
  perm : int array;
  mutable scratch_re : float array;
  mutable scratch_im : float array;
}

let lu_ws n =
  if n < 0 then invalid_arg "Cmatf.lu_ws: negative dimension";
  { perm = Array.make n 0; scratch_re = Array.make n 0.0; scratch_im = Array.make n 0.0 }

(* Scratch grows monotonically and is reused across solves, so a
   workspace threaded through a sweep settles into zero allocation. *)
let ensure_scratch ws len =
  if Array.length ws.scratch_re < len then begin
    ws.scratch_re <- Array.make len 0.0;
    ws.scratch_im <- Array.make len 0.0
  end

(* Robust complex division (Smith's algorithm), returned through two
   refs the caller reuses — no tuple allocation in the solver loop. *)
let div_into ~nr ~ni ar ai br bi =
  if Float.abs br >= Float.abs bi then begin
    let r = bi /. br in
    let d = br +. (bi *. r) in
    nr := (ar +. (ai *. r)) /. d;
    ni := (ai -. (ar *. r)) /. d
  end
  else begin
    let r = br /. bi in
    let d = (br *. r) +. bi in
    nr := ((ar *. r) +. ai) /. d;
    ni := ((ai *. r) -. ar) /. d
  end

(* In-place Crout LU with partial pivoting on modulus; the factored
   matrix overwrites [a], the permutation lands in [ws.perm]. Raises
   [Lu.Singular] exactly when the dense boxed factorization would. *)
let lu_decompose_inplace a ws =
  let n = a.rows in
  if a.cols <> n then invalid_arg "Cmatf.lu_decompose_inplace: matrix not square";
  if Array.length ws.perm <> n then
    invalid_arg "Cmatf.lu_decompose_inplace: workspace size mismatch";
  let perm = ws.perm in
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  (* out-param cells for div_into, hoisted above the loops: two heap
     cells per factorization, so no complex quotient is boxed per
     element *)
  let[@lint.allow "hot-alloc"] fr = ref 0.0
  and[@lint.allow "hot-alloc"] fi = ref 0.0 in
  for k = 0 to n - 1 do
    (* pivot search down column k *)
    let best = ref k in
    let best_mag = ref (Float.hypot a.re.((k * n) + k) a.im.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.hypot a.re.((i * n) + k) a.im.((i * n) + k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if Float.equal !best_mag 0.0 || Robust.Inject.fire Robust.Inject.Lu_pivot
    then raise Lu.Singular;
    if !best <> k then begin
      ensure_scratch ws n;
      let bk = !best * n and kk = k * n in
      Array.blit a.re kk ws.scratch_re 0 n;
      Array.blit a.re bk a.re kk n;
      Array.blit ws.scratch_re 0 a.re bk n;
      Array.blit a.im kk ws.scratch_im 0 n;
      Array.blit a.im bk a.im kk n;
      Array.blit ws.scratch_im 0 a.im bk n;
      let tp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tp
    end;
    let kk = k * n in
    let pr = a.re.(kk + k) and pi = a.im.(kk + k) in
    for i = k + 1 to n - 1 do
      let ik = i * n in
      div_into ~nr:fr ~ni:fi a.re.(ik + k) a.im.(ik + k) pr pi;
      let cr = !fr and ci = !fi in
      a.re.(ik + k) <- cr;
      a.im.(ik + k) <- ci;
      if not (Float.equal cr 0.0 && Float.equal ci 0.0) then
        for l = k + 1 to n - 1 do
          let ur = a.re.(kk + l) and ui = a.im.(kk + l) in
          a.re.(ik + l) <- a.re.(ik + l) -. ((cr *. ur) -. (ci *. ui));
          a.im.(ik + l) <- a.im.(ik + l) -. ((cr *. ui) +. (ci *. ur))
        done
    done
  done

(* B := A⁻¹·B for a matrix factored by [lu_decompose_inplace]; all
   right-hand-side columns advance together so the factored matrix is
   swept once per substitution phase. *)
let lu_solve_inplace a ws b =
  let n = a.rows in
  if a.cols <> n then invalid_arg "Cmatf.lu_solve_inplace: matrix not square";
  if b.rows <> n then invalid_arg "Cmatf.lu_solve_inplace: dimension mismatch";
  let p = b.cols in
  let perm = ws.perm in
  (* apply the row permutation: b := P·b *)
  ensure_scratch ws (n * p);
  for i = 0 to n - 1 do
    Array.blit b.re (perm.(i) * p) ws.scratch_re (i * p) p;
    Array.blit b.im (perm.(i) * p) ws.scratch_im (i * p) p
  done;
  Array.blit ws.scratch_re 0 b.re 0 (n * p);
  Array.blit ws.scratch_im 0 b.im 0 (n * p);
  (* forward substitution against the unit lower triangle *)
  for i = 1 to n - 1 do
    let irow = i * p and arow = i * n in
    for k = 0 to i - 1 do
      let lr = a.re.(arow + k) and li = a.im.(arow + k) in
      if not (Float.equal lr 0.0 && Float.equal li 0.0) then begin
        let krow = k * p in
        for c = 0 to p - 1 do
          let br = b.re.(krow + c) and bi = b.im.(krow + c) in
          b.re.(irow + c) <- b.re.(irow + c) -. ((lr *. br) -. (li *. bi));
          b.im.(irow + c) <- b.im.(irow + c) -. ((lr *. bi) +. (li *. br))
        done
      end
    done
  done;
  (* back substitution; nr/ni are div_into out-param cells, two heap
     cells per solve rather than a boxed quotient per element *)
  let[@lint.allow "hot-alloc"] nr = ref 0.0
  and[@lint.allow "hot-alloc"] ni = ref 0.0 in
  for i = n - 1 downto 0 do
    let irow = i * p and arow = i * n in
    for k = i + 1 to n - 1 do
      let ur = a.re.(arow + k) and ui = a.im.(arow + k) in
      if not (Float.equal ur 0.0 && Float.equal ui 0.0) then begin
        let krow = k * p in
        for c = 0 to p - 1 do
          let br = b.re.(krow + c) and bi = b.im.(krow + c) in
          b.re.(irow + c) <- b.re.(irow + c) -. ((ur *. br) -. (ui *. bi));
          b.im.(irow + c) <- b.im.(irow + c) -. ((ur *. bi) +. (ui *. br))
        done
      end
    done;
    let dr = a.re.(arow + i) and di = a.im.(arow + i) in
    for c = 0 to p - 1 do
      div_into ~nr ~ni b.re.(irow + c) b.im.(irow + c) dr di;
      b.re.(irow + c) <- !nr;
      b.im.(irow + c) <- !ni
    done
  done

(* ------------------------------------------------------------------ *)
(* norms, finiteness, condition estimation                             *)

(* 1-norm: max column sum of moduli. *)
let norm1 m =
  let best = ref 0.0 in
  for k = 0 to m.cols - 1 do
    let s = ref 0.0 in
    for i = 0 to m.rows - 1 do
      let p = (i * m.cols) + k in
      s := !s +. Float.hypot m.re.(p) m.im.(p)
    done;
    if !s > !best then best := !s
  done;
  !best

let is_finite m =
  let len = m.rows * m.cols in
  let rec go p =
    p >= len
    || (Float.is_finite m.re.(p) && Float.is_finite m.im.(p) && go (p + 1))
  in
  go 0

(* z := A⁻ᴴ·z for [a] factored by [lu_decompose_inplace]. With
   P·A = L·U we have Aᴴ = Uᴴ·Lᴴ·P, so: solve Uᴴw = z by forward
   substitution (Uᴴ is lower triangular with diagonal conj(u_ii)),
   solve Lᴴy = w by back substitution (unit diagonal), then undo the
   permutation with z[perm[i]] = y[i]. Needed by the Hager estimator,
   which alternates A- and Aᴴ-solves on the same packed factors. *)
let lu_solve_herm_vec a ws ~zre ~zim =
  let n = a.rows in
  let nr = ref 0.0 and ni = ref 0.0 in
  for i = 0 to n - 1 do
    let sr = ref zre.(i) and si = ref zim.(i) in
    for k = 0 to i - 1 do
      let ur = a.re.((k * n) + i) and ui = -.a.im.((k * n) + i) in
      let wr = zre.(k) and wi = zim.(k) in
      sr := !sr -. ((ur *. wr) -. (ui *. wi));
      si := !si -. ((ur *. wi) +. (ui *. wr))
    done;
    let dr = a.re.((i * n) + i) and di = -.a.im.((i * n) + i) in
    div_into ~nr ~ni !sr !si dr di;
    zre.(i) <- !nr;
    zim.(i) <- !ni
  done;
  for i = n - 1 downto 0 do
    let sr = ref zre.(i) and si = ref zim.(i) in
    for k = i + 1 to n - 1 do
      let lr = a.re.((k * n) + i) and li = -.a.im.((k * n) + i) in
      let yr = zre.(k) and yi = zim.(k) in
      sr := !sr -. ((lr *. yr) -. (li *. yi));
      si := !si -. ((lr *. yi) +. (li *. yr))
    done;
    zre.(i) <- !sr;
    zim.(i) <- !si
  done;
  ensure_scratch ws n;
  Array.blit zre 0 ws.scratch_re 0 n;
  Array.blit zim 0 ws.scratch_im 0 n;
  for i = 0 to n - 1 do
    zre.(ws.perm.(i)) <- ws.scratch_re.(i);
    zim.(ws.perm.(i)) <- ws.scratch_im.(i)
  done

(* Hager/Higham 1-norm condition estimate on packed LU factors: a few
   rounds of y = A⁻¹x / z = A⁻ᴴ·sign(y) locate a near-maximizing column
   of A⁻¹, giving a lower bound on ‖A⁻¹‖₁ that is almost always within
   a small factor of the truth. O(n²) per round vs O(n³) to factor. *)
let lu_cond_est_1 a ws ~norm1_a =
  let n = a.rows in
  if n = 0 then 1.0
  else begin
    let x = create n 1 in
    let inv_n = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      x.re.(i) <- inv_n
    done;
    let est = ref 0.0 in
    (try
       let last_j = ref (-1) in
       for _round = 1 to 5 do
         lu_solve_inplace a ws x;
         let e = ref 0.0 in
         for i = 0 to n - 1 do
           e := !e +. Float.hypot x.re.(i) x.im.(i)
         done;
         if not (!e > !est) then raise Exit;
         est := !e;
         for i = 0 to n - 1 do
           let m = Float.hypot x.re.(i) x.im.(i) in
           if m > 0.0 then begin
             x.re.(i) <- x.re.(i) /. m;
             x.im.(i) <- x.im.(i) /. m
           end
           else begin
             x.re.(i) <- 1.0;
             x.im.(i) <- 0.0
           end
         done;
         lu_solve_herm_vec a ws ~zre:x.re ~zim:x.im;
         let j = ref 0 and zmax = ref (-1.0) in
         for i = 0 to n - 1 do
           let m = Float.hypot x.re.(i) x.im.(i) in
           if m > !zmax then begin
             zmax := m;
             j := i
           end
         done;
         if !j = !last_j then raise Exit;
         last_j := !j;
         Array.fill x.re 0 n 0.0;
         Array.fill x.im 0 n 0.0;
         x.re.(!j) <- 1.0
       done
     with Exit -> ());
    norm1_a *. !est
  end

(* min/max modulus over the factored U diagonal — a cheap pivot
   degeneracy proxy that catches rank deficiency partial pivoting
   smeared into a tiny (but nonzero) trailing pivot. *)
let lu_pivot_ratio a =
  let n = a.rows in
  if n = 0 then 1.0
  else begin
    let mn = ref infinity and mx = ref 0.0 in
    for i = 0 to n - 1 do
      let m = Float.hypot a.re.((i * n) + i) a.im.((i * n) + i) in
      if m < !mn then mn := m;
      if m > !mx then mx := m
    done;
    if Float.equal !mx 0.0 then 0.0 else !mn /. !mx
  end

let lu_decompose_checked ?max_cond ~context a ws =
  let max_cond =
    match max_cond with Some c -> c | None -> Robust.Config.get_max_cond ()
  in
  let nrm = norm1 a in
  match lu_decompose_inplace a ws with
  | exception Lu.Singular ->
      Error (Robust.Pllscope_error.Singular { cond_est = infinity; context })
  | () ->
      if not (is_finite a) then
        Error (Robust.Pllscope_error.Non_finite { where = context ^ ": LU factors" })
      else begin
        let cond = lu_cond_est_1 a ws ~norm1_a:nrm in
        let degen =
          let r = lu_pivot_ratio a in
          if r > 0.0 then 1.0 /. r else infinity
        in
        let est = Float.max cond degen in
        if (not (Float.is_finite est)) || est > max_cond then
          Error (Robust.Pllscope_error.Singular { cond_est = est; context })
        else Ok est
      end

let lu_solve_checked a ws b ~context =
  lu_solve_inplace a ws b;
  if is_finite b then Ok ()
  else
    Error (Robust.Pllscope_error.Non_finite { where = context ^ ": solve result" })

(* ------------------------------------------------------------------ *)
(* lossless converters                                                 *)

let of_cmat m =
  let r = Cmat.rows m and c = Cmat.cols m in
  let out = create r c in
  for i = 0 to r - 1 do
    for k = 0 to c - 1 do
      let z = Cmat.get m i k in
      out.re.((i * c) + k) <- Cx.re z;
      out.im.((i * c) + k) <- Cx.im z
    done
  done;
  out

let to_cmat m =
  Cmat.init m.rows m.cols (fun i k ->
      let p = (i * m.cols) + k in
      Cx.make m.re.(p) m.im.(p))
