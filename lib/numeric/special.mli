(** Closed-form harmonic sums.

    The paper's effective open-loop gain is
    [λ(s) = Σ_{m=-∞}^{∞} A(s + j m ω₀)] (eq. 37). With [A] in partial
    fractions, each term reduces to the lattice sums

    [S_k(z, ω₀) = Σ_{m=-∞}^{∞} 1 / (z + j m ω₀)^k],

    which have closed forms built from [coth]:
    [S₁ = (π/ω₀) coth(π z/ω₀)] and
    [S_{k+1} = -(1/k) dS_k/dz], i.e. [S_k = (π/ω₀)^k Q_k(coth(π z/ω₀))]
    where [Q₁(c) = c] and [Q_{k+1}(c) = -(1/k) Q'_k(c)(1 - c²)].

    These make λ(s) exact — no truncation — which is what lets the HTM
    method run "in seconds" where time-marching takes minutes. *)

(** [coth z], numerically stable away from the poles [z = j k π]. *)
val coth : Cx.t -> Cx.t

(** [csch2 z] is [1/sinh² z]. *)
val csch2 : Cx.t -> Cx.t

(** [harmonic_sum ~k ~omega0 z] is [S_k(z, ω₀)] in closed form.
    @raise Invalid_argument if [k < 1]. Supported for any [k >= 1]
    (the coth-derivative polynomials are computed on demand and
    memoized). *)
val harmonic_sum : k:int -> omega0:float -> Cx.t -> Cx.t

(** [harmonic_sum_truncated ~k ~omega0 ~terms z] is the symmetric
    truncation [Σ_{m=-terms}^{terms} 1/(z + j m ω₀)^k] — the reference
    the closed form is property-tested against. *)
val harmonic_sum_truncated : k:int -> omega0:float -> terms:int -> Cx.t -> Cx.t

(** [sinc x] is [sin x / x] with the removable singularity filled. *)
val sinc : float -> float
