exception No_bracket

let bisect ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let count = ref 0 in
    while !b -. !a > tol *. (1.0 +. Float.abs !a) && !count < max_iter do
      incr count;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if Float.equal fm 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end
    done;
    0.5 *. (!a +. !b)
  end

let brent ?(tol = 1e-13) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if Float.equal fa 0.0 then a
  else if Float.equal fb 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    while Float.abs !fb > 0.0
          && Float.abs (!b -. !a) > tol *. (1.0 +. Float.abs !b)
          && !iter < max_iter do
      incr iter;
      let s =
        if not (Float.equal !fa !fc) && not (Float.equal !fb !fc) then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = (3.0 *. !a +. !b) /. 4.0 and hi = !b in
      let lo, hi = if lo < hi then (lo, hi) else (hi, lo) in
      let use_bisect =
        s < lo || s > hi
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.0)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs !d /. 2.0)
      in
      let s = if use_bisect then 0.5 *. (!a +. !b) else s in
      mflag := use_bisect;
      let fs = f s in
      d := !c -. !b;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let logspace lo hi n =
  if lo <= 0.0 || hi <= 0.0 then invalid_arg "Optimize.logspace: bounds must be positive";
  if n < 2 then invalid_arg "Optimize.logspace: need at least 2 points";
  let llo = log lo and lhi = log hi in
  Array.init n (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

let linspace lo hi n =
  if n < 2 then invalid_arg "Optimize.linspace: need at least 2 points";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let scan_crossings ?(steps = 400) f ~lo ~hi =
  let xs = logspace lo hi steps in
  let out = ref [] in
  let prev_x = ref xs.(0) and prev_f = ref (f xs.(0)) in
  for i = 1 to steps - 1 do
    let x = xs.(i) in
    let fx = f x in
    if Float.is_finite !prev_f && Float.is_finite fx && !prev_f *. fx <= 0.0
       && not (Float.equal !prev_f 0.0 && Float.equal fx 0.0)
    then out := (!prev_x, x) :: !out;
    prev_x := x;
    prev_f := fx
  done;
  List.rev !out

let find_first_crossing ?steps f ~lo ~hi =
  match scan_crossings ?steps f ~lo ~hi with
  | [] -> None
  | (a, b) :: _ -> Some (brent f a b)

let find_all_crossings ?steps f ~lo ~hi =
  List.map (fun (a, b) -> brent f a b) (scan_crossings ?steps f ~lo ~hi)

let golden_min ?(tol = 1e-10) f a b =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let a = ref a and b = ref b in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  while !b -. !a > tol *. (1.0 +. Float.abs !a) do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  0.5 *. (!a +. !b)
