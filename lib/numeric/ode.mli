(** ODE integrators.

    The time-marching reference simulator (the stand-in for the paper's
    Matlab/Simulink runs) integrates the loop-filter/VCO continuous
    dynamics between PFD switching events; both a fixed-step RK4 and an
    adaptive Dormand–Prince 5(4) are provided, plus an exact step for
    linear time-invariant segments via {!Rmat.expm}. *)

type system = float -> float array -> float array
(** [f t y] returns dy/dt. *)

(** [rk4_step f t y h] advances one classical Runge–Kutta step. *)
val rk4_step : system -> float -> float array -> float -> float array

(** [rk4 f ~t0 ~y0 ~t1 ~steps] integrates with [steps] fixed steps and
    returns the final state. *)
val rk4 : system -> t0:float -> y0:float array -> t1:float -> steps:int -> float array

(** [rk4_trace] — like {!rk4} but returns all the intermediate
    [(t, y)] samples including the endpoints. *)
val rk4_trace :
  system -> t0:float -> y0:float array -> t1:float -> steps:int -> (float * float array) array

(** [dopri5 f ~t0 ~y0 ~t1 ?rtol ?atol ?h0 ()] — adaptive
    Dormand–Prince 5(4); returns the final state. *)
val dopri5 :
  system -> t0:float -> y0:float array -> t1:float -> ?rtol:float -> ?atol:float -> ?h0:float -> unit -> float array

(** Exact advance of the affine system [x' = A x + b] (constant [b]) over
    [h], using the augmented-matrix exponential; returns a closure usable
    for many steps with the same [A], [b], [h]. *)
val linear_stepper : a:Rmat.t -> b:float array -> h:float -> float array -> float array
