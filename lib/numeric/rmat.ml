type t = float array array

let make r c x = Array.init r (fun _ -> Array.make c x)
let init r c f = Array.init r (fun i -> Array.init c (fun k -> f i k))
let of_rows a = Array.map Array.copy a
let rows (m : t) = Array.length m
let cols (m : t) = if rows m = 0 then 0 else Array.length m.(0)
let get (m : t) i k = m.(i).(k)
let set (m : t) i k x = m.(i).(k) <- x
let copy (m : t) = Array.map Array.copy m
let zeros r c = make r c 0.0
let identity n = init n n (fun i k -> if i = k then 1.0 else 0.0)

let lift2 op a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Rmat.lift2: dimension mismatch";
  init (rows a) (cols a) (fun i k -> op a.(i).(k) b.(i).(k))

let add = lift2 ( +. )
let sub = lift2 ( -. )
let scale s m = Array.map (Array.map (fun x -> s *. x)) m

let mul a b =
  if cols a <> rows b then invalid_arg "Rmat.mul: dimension mismatch";
  let n = rows a and p = cols b and q = cols a in
  let out = zeros n p in
  for i = 0 to n - 1 do
    for l = 0 to q - 1 do
      let ail = a.(i).(l) in
      if not (Float.equal ail 0.0) then
        for k = 0 to p - 1 do
          out.(i).(k) <- out.(i).(k) +. (ail *. b.(l).(k))
        done
    done
  done;
  out

let mv m v =
  if cols m <> Array.length v then invalid_arg "Rmat.mv: dimension mismatch";
  Array.init (rows m) (fun i ->
      let acc = ref 0.0 in
      for k = 0 to cols m - 1 do
        acc := !acc +. (m.(i).(k) *. v.(k))
      done;
      !acc)

let transpose m = init (cols m) (rows m) (fun i k -> m.(k).(i))

let norm_inf m =
  Array.fold_left
    (fun acc r ->
      Stdlib.max acc (Array.fold_left (fun a x -> a +. Float.abs x) 0.0 r))
    0.0 m

let to_cmat m = Cmat.init (rows m) (cols m) (fun i k -> Cx.of_float m.(i).(k))

let solve a b =
  let x = Lu.solve_system (to_cmat a) (Cvec.of_real_array b) in
  Array.init (Array.length b) (fun i -> Cx.re (Cvec.get x i))

let inverse a =
  let inv = Lu.inverse (to_cmat a) in
  init (rows a) (cols a) (fun i k -> Cx.re (Cmat.get inv i k))

let expm a =
  let n = rows a in
  if cols a <> n then invalid_arg "Rmat.expm: matrix not square";
  (* scaling *)
  let nrm = norm_inf a in
  let squarings =
    if nrm <= 0.5 then 0
    else
      let s = int_of_float (ceil (log (nrm /. 0.5) /. log 2.0)) in
      Stdlib.max 0 s
  in
  let a_scaled = scale (1.0 /. Float.of_int (1 lsl squarings)) a in
  (* degree-6 Padé: N = sum c_k A^k, D = sum (-1)^k c_k A^k *)
  let c = [| 1.0; 0.5; 5.0 /. 44.0; 1.0 /. 66.0; 1.0 /. 792.0; 1.0 /. 15840.0; 1.0 /. 665280.0 |] in
  let num = ref (zeros n n) and den = ref (zeros n n) in
  let pk = ref (identity n) in
  for k = 0 to 6 do
    num := add !num (scale c.(k) !pk);
    den := add !den (scale (if k mod 2 = 0 then c.(k) else -.c.(k)) !pk);
    if k < 6 then pk := mul !pk a_scaled
  done;
  (* solve D X = N column-wise *)
  let f = Lu.decompose (to_cmat !den) in
  let x_c = Lu.solve_mat f (to_cmat !num) in
  let result = ref (init n n (fun i k -> Cx.re (Cmat.get x_c i k))) in
  for _ = 1 to squarings do
    result := mul !result !result
  done;
  !result

let trace m =
  let n = Stdlib.min (rows m) (cols m) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. m.(i).(i)
  done;
  !acc

let char_poly a =
  let n = rows a in
  if cols a <> n then invalid_arg "Rmat.char_poly: matrix not square";
  (* Faddeev–LeVerrier: M_1 = A, c_{n-1} = -tr M_1;
     M_{k+1} = A (M_k + c_{n-k} I), c_{n-k-1} = -tr(M_{k+1})/(k+1). *)
  let coeffs = Array.make (n + 1) 0.0 in
  coeffs.(n) <- 1.0;
  let m = ref (copy a) in
  for k = 1 to n do
    let c = -.trace !m /. float_of_int k in
    coeffs.(n - k) <- c;
    if k < n then m := mul a (add !m (scale c (identity n)))
  done;
  Poly.of_coeffs (Array.to_list (Array.map Cx.of_float coeffs))

let eigenvalues a = Roots.all (char_poly a)

let equal ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for i = 0 to rows a - 1 do
         for k = 0 to cols a - 1 do
           if Float.abs (a.(i).(k) -. b.(i).(k))
              > tol *. (1.0 +. Float.abs a.(i).(k) +. Float.abs b.(i).(k))
           then ok := false
         done
       done;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r ->
      Format.fprintf ppf "[@[<hov>%a@]]@,"
        (Format.pp_print_array
           ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
           (fun f x -> Format.fprintf f "%.6g" x))
        r)
    m;
  Format.fprintf ppf "@]"
