(** Partial-fraction expansion of rational functions.

    A strictly proper rational expands as
    [sum_i sum_{l=1..k_i} r_{i,l} / (s - p_i)^l]. The residues are
    computed exactly (up to root-finding accuracy) with Taylor
    recentering and power-series division — no numerical differentiation.

    This is the bridge to the paper's exact effective open-loop gain:
    [λ(s) = sum_m A(s + j m ω₀)] reduces term-by-term to the closed
    harmonic sums of {!Special} once [A] is in partial fractions. *)

type term = {
  pole : Cx.t;
  order : int;  (** [l >= 1]: the term is [residue / (s - pole)^order] *)
  residue : Cx.t;
}

type t = {
  terms : term list;
  direct : Poly.t;  (** polynomial part, nonzero only for improper input *)
}

(** [expand ?tol r] expands [r]. [tol] controls the root clustering that
    decides pole multiplicities. *)
val expand : ?tol:float -> Rat.t -> t

(** [eval e x] re-evaluates the expansion — used to validate residues
    against the original rational. *)
val eval : t -> Cx.t -> Cx.t

(** [to_rat e] recombines the expansion over a common denominator. *)
val to_rat : t -> Rat.t
