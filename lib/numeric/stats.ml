let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs)

let std_dev xs = sqrt (variance xs)

let rms xs =
  sqrt
    (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs
    /. float_of_int (Array.length xs))

let max_abs xs = Array.fold_left (fun acc x -> Stdlib.max acc (Float.abs x)) 0.0 xs

let rel_err a b =
  Float.abs (a -. b) /. Stdlib.max (Stdlib.max (Float.abs a) (Float.abs b)) 1e-300

let max_rel_err xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.max_rel_err: length mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Stdlib.max !worst (rel_err x ys.(i))) xs;
  !worst

let db x = 20.0 *. log10 x
let of_db d = 10.0 ** (d /. 20.0)
let deg r = r *. 180.0 /. Float.pi
let rad d = d *. Float.pi /. 180.0
