(** Descriptive statistics and error metrics used by the experiment
    harness when comparing HTM predictions against simulator
    measurements. *)

val mean : float array -> float
val variance : float array -> float
val std_dev : float array -> float
val rms : float array -> float
val max_abs : float array -> float

(** [rel_err a b] is [|a - b| / max(|a|, |b|, eps)]. *)
val rel_err : float -> float -> float

(** [max_rel_err xs ys] — the worst pointwise relative error. *)
val max_rel_err : float array -> float array -> float

(** [db x] is [20 log10 x]. *)
val db : float -> float

(** [of_db d] inverts {!db}. *)
val of_db : float -> float

(** [deg r] / [rad d] — angle conversions. *)
val deg : float -> float

val rad : float -> float
