(** Small dense real matrices, matrix exponential and characteristic
    polynomial.

    State-space loop-filter/VCO models are real; the exact discrete-time
    PLL model (the Hein–Scott-style baseline) needs [e^{AT}] and the
    closed-loop characteristic polynomial, both provided here. *)

type t

val make : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val zeros : int -> int -> t
val identity : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mv : t -> float array -> float array
val transpose : t -> t
val norm_inf : t -> float

(** [to_cmat m] embeds into the complex matrices. *)
val to_cmat : t -> Cmat.t

(** [solve a b] solves [A x = b] (via complex LU on the embedding).
    @raise Lu.Singular when [a] is singular. *)
val solve : t -> float array -> float array

val inverse : t -> t

(** [expm a] — matrix exponential by scaling-and-squaring with a
    degree-6 Padé approximant. *)
val expm : t -> t

(** [char_poly a] is the characteristic polynomial [det(sI - A)]
    (monic, real coefficients returned as a {!Poly.t}), computed with
    the Faddeev–LeVerrier recursion. *)
val char_poly : t -> Poly.t

(** [eigenvalues a] — roots of the characteristic polynomial. *)
val eigenvalues : t -> Cx.t list

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
