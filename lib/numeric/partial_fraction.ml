type term = { pole : Cx.t; order : int; residue : Cx.t }
type t = { terms : term list; direct : Poly.t }

(* Power-series division: first [n] Taylor coefficients of num/den given
   their Taylor coefficients at the same expansion point (den.(0) <> 0). *)
let series_div num den n =
  let out = Array.make n Cx.zero in
  let d0 = den.(0) in
  for k = 0 to n - 1 do
    let acc = ref (if k < Array.length num then num.(k) else Cx.zero) in
    for i = 0 to k - 1 do
      let dk = k - i in
      let d = if dk < Array.length den then den.(dk) else Cx.zero in
      acc := Cx.sub !acc (Cx.mul out.(i) d)
    done;
    out.(k) <- Cx.div !acc d0
  done;
  out

let expand ?(tol = 1e-6) r =
  let direct, num =
    if Rat.is_strictly_proper r then (Poly.zero, r.Rat.num)
    else Poly.divmod r.Rat.num r.Rat.den
  in
  if Poly.is_zero num then { terms = []; direct }
  else begin
    let den = r.Rat.den in
    let groups = Roots.cluster ~tol (Roots.all den) in
    let terms =
      List.concat_map
        (fun (p, mult) ->
          (* q(s) = den(s) / (s - p)^mult, exactly via repeated deflation
             at the cluster representative *)
          let q = ref den in
          for _ = 1 to mult do
            q := Poly.deflate !q p
          done;
          (* Taylor coefficients of num and q at p *)
          let num_taylor = Poly.coeffs (Poly.shift num p) in
          let q_taylor = Poly.coeffs (Poly.shift !q p) in
          (* g(s) = num/q expanded at p: residue of order l is the
             (mult - l)-th Taylor coefficient of g *)
          let g = series_div num_taylor q_taylor mult in
          List.init mult (fun i ->
              let order = mult - i in
              { pole = p; order; residue = g.(i) })
          |> List.filter (fun t -> Cx.abs t.residue > 0.0))
        groups
    in
    { terms; direct }
  end

let eval e x =
  let acc = ref (Poly.eval e.direct x) in
  List.iter
    (fun { pole; order; residue } ->
      acc :=
        Cx.add !acc (Cx.div residue (Cx.pow_int (Cx.sub x pole) order)))
    e.terms;
  !acc

let to_rat e =
  List.fold_left
    (fun acc { pole; order; residue } ->
      let den = Poly.pow (Poly.of_coeffs [ Cx.neg pole; Cx.one ]) order in
      Rat.add acc (Rat.make (Poly.constant residue) den))
    (Rat.of_poly e.direct) e.terms
