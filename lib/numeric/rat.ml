type t = { num : Poly.t; den : Poly.t }

let make num den =
  if Poly.is_zero den then raise Division_by_zero;
  { num; den }

let of_poly p = { num = p; den = Poly.one }
let constant z = of_poly (Poly.constant z)
let zero = of_poly Poly.zero
let one = of_poly Poly.one
let s = of_poly Poly.s
let eval r x = Cx.div (Poly.eval r.num x) (Poly.eval r.den x)

(* Precompiled split-coefficient form. [eval_into] must stay
   bit-identical to [eval]: the Horner loop mirrors [Poly.eval]
   (descending index, acc·x + c at each step) and the final division
   mirrors the stdlib [Complex.div] (Smith's algorithm) literally —
   same operations, same order, so the roundings coincide. *)
type split = {
  num_re : float array;
  num_im : float array;
  den_re : float array;
  den_im : float array;
  acc : float array;
      (* 4-slot Horner scratch — float-array slots keep the accumulators
         unboxed (refs or tuple returns would allocate per evaluation),
         at the price of making a [split] a single-thread workspace *)
}

let split r =
  let unzip p =
    let cs = Poly.coeffs p in
    ( Array.map Cx.re cs,
      Array.map Cx.im cs )
  in
  let num_re, num_im = unzip r.num and den_re, den_im = unzip r.den in
  { num_re; num_im; den_re; den_im; acc = Array.make 4 0.0 }

(* Horner on split arrays into (acc.(j), acc.(j+1)) = p(x). *)
let horner_into acc j re im xr xi =
  acc.(j) <- 0.0;
  acc.(j + 1) <- 0.0;
  for i = Array.length re - 1 downto 0 do
    let ar = acc.(j) and ai = acc.(j + 1) in
    let mr = (ar *. xr) -. (ai *. xi) in
    let mi = (ar *. xi) +. (ai *. xr) in
    acc.(j) <- mr +. re.(i);
    acc.(j + 1) <- mi +. im.(i)
  done

let eval_into sp ~re ~im ~out_re ~out_im ~idx =
  let acc = sp.acc in
  horner_into acc 0 sp.num_re sp.num_im re im;
  horner_into acc 2 sp.den_re sp.den_im re im;
  let nr = acc.(0) and ni = acc.(1) in
  let dr = acc.(2) and di = acc.(3) in
  (* Smith's algorithm, exactly as [Complex.div] *)
  if Float.abs dr >= Float.abs di then begin
    let r = di /. dr in
    let d = dr +. (r *. di) in
    out_re.(idx) <- (nr +. (r *. ni)) /. d;
    out_im.(idx) <- (ni -. (r *. nr)) /. d
  end
  else begin
    let r = dr /. di in
    let d = di +. (r *. dr) in
    out_re.(idx) <- ((r *. nr) +. ni) /. d;
    out_im.(idx) <- ((r *. ni) -. nr) /. d
  end

let eval_split sp x =
  let out_re = [| 0.0 |] and out_im = [| 0.0 |] in
  eval_into sp ~re:(Cx.re x) ~im:(Cx.im x) ~out_re ~out_im ~idx:0;
  Cx.make out_re.(0) out_im.(0)

let add a b =
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

let neg a = { a with num = Poly.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Poly.mul a.num b.num) (Poly.mul a.den b.den)

let inv a =
  if Poly.is_zero a.num then raise Division_by_zero;
  { num = a.den; den = a.num }

let div a b = mul a (inv b)
let scale z a = { a with num = Poly.scale z a.num }

let pow a n =
  if n >= 0 then { num = Poly.pow a.num n; den = Poly.pow a.den n }
  else inv { num = Poly.pow a.num (-n); den = Poly.pow a.den (-n) }

let feedback g h =
  (* g / (1 + g h) = g.num h.den / (g.den h.den + g.num h.num) *)
  make
    (Poly.mul g.num h.den)
    (Poly.add (Poly.mul g.den h.den) (Poly.mul g.num h.num))

let feedback_unity g = make g.num (Poly.add g.den g.num)

let derivative r =
  make
    (Poly.sub
       (Poly.mul (Poly.derivative r.num) r.den)
       (Poly.mul r.num (Poly.derivative r.den)))
    (Poly.mul r.den r.den)

let poles r = Roots.all r.den
let zeros r = if Poly.is_zero r.num then [] else Roots.all r.num
let relative_degree r = Poly.degree r.den - Poly.degree r.num
let is_proper r = Poly.is_zero r.num || relative_degree r >= 0
let is_strictly_proper r = Poly.is_zero r.num || relative_degree r >= 1

let normalize r =
  let lead = Poly.coeff r.den (Poly.degree r.den) in
  { num = Poly.scale (Cx.inv lead) r.num; den = Poly.monic r.den }

let reduce ?(tol = 1e-8) r =
  if Poly.is_zero r.num then { num = Poly.zero; den = Poly.one }
  else begin
    let gain =
      Cx.div
        (Poly.coeff r.num (Poly.degree r.num))
        (Poly.coeff r.den (Poly.degree r.den))
    in
    let zs = ref (Roots.all r.num) and ps = ref (Roots.all r.den) in
    let scale_mag =
      List.fold_left (fun m z -> Stdlib.max m (Cx.abs z)) 1.0 (!zs @ !ps)
    in
    let eps = tol *. scale_mag in
    let surviving_zeros = ref [] in
    List.iter
      (fun z ->
        let rec remove acc = function
          | [] -> None
          | p :: rest ->
              if Cx.abs (Cx.sub p z) <= eps then
                Some (List.rev_append acc rest)
              else remove (p :: acc) rest
        in
        match remove [] !ps with
        | Some ps' -> ps := ps'
        | None -> surviving_zeros := z :: !surviving_zeros)
      !zs;
    make
      (Poly.scale gain (Poly.from_roots (List.rev !surviving_zeros)))
      (Poly.from_roots !ps)
  end

let equal_response ?(tol = 1e-6) ?(points = 17) a b =
  (* Compare on a ring of sample points that avoids poles of either side. *)
  let ok = ref true in
  for k = 0 to points - 1 do
    let x =
      Cx.mul
        (Cx.of_float (0.7 +. (0.6 *. float_of_int k /. float_of_int points)))
        (Cx.cis ((float_of_int k +. 0.37) *. 2.0 *. Float.pi /. float_of_int points))
    in
    let va = eval a x and vb = eval b x in
    if Cx.is_finite va && Cx.is_finite vb && not (Cx.approx ~tol va vb) then
      ok := false
  done;
  !ok

let pp ppf r = Format.fprintf ppf "(%a) / (%a)" Poly.pp r.num Poly.pp r.den
