type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let j = { Complex.re = 0.0; im = 1.0 }
let of_float x = { Complex.re = x; im = 0.0 }
let make re im = { Complex.re; im }
let jomega w = { Complex.re = 0.0; im = w }
let re (z : t) = z.re
let im (z : t) = z.im
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let inv = Complex.inv
let conj = Complex.conj
let scale a (z : t) = { Complex.re = a *. z.re; im = a *. z.im }
let abs = Complex.norm
let arg = Complex.arg
let norm2 = Complex.norm2
let sqrt = Complex.sqrt
let exp = Complex.exp
let log = Complex.log

let pow_int z n =
  (* Binary exponentiation; negative exponents go through [inv] once. *)
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc base) (mul base base) (n asr 1)
    else go acc (mul base base) (n asr 1)
  in
  if n >= 0 then go one z n else inv (go one z (-n))

let cis theta = { Complex.re = cos theta; im = sin theta }
let is_finite z = Float.is_finite (re z) && Float.is_finite (im z)

let is_zero (z : t) = Float.equal z.re 0.0 && Float.equal z.im 0.0

let approx ?(tol = 1e-9) a b =
  abs (sub a b) <= tol *. (1.0 +. abs a +. abs b)

let pp ppf (z : t) =
  if z.im >= 0.0 then Format.fprintf ppf "%.6g+%.6gi" z.re z.im
  else Format.fprintf ppf "%.6g-%.6gi" z.re (Stdlib.abs_float z.im)

let to_string z = Format.asprintf "%a" pp z

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end
