type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64;
           mutable s3 : int64; mutable spare : float option }

(* SplitMix64 for seeding *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3; spare = None }

let copy g = { g with spare = g.spare }

let rotl x k =
  let open Int64 in
  logor (shift_left x k) (shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let float g =
  (* top 53 bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform g ~lo ~hi = lo +. ((hi -. lo) *. float g)

let rec gaussian g =
  match g.spare with
  | Some x ->
      g.spare <- None;
      x
  | None ->
      let u = uniform g ~lo:(-1.0) ~hi:1.0 in
      let v = uniform g ~lo:(-1.0) ~hi:1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || Float.equal s 0.0 then gaussian g
      else begin
        let factor = sqrt (-2.0 *. log s /. s) in
        g.spare <- Some (v *. factor);
        u *. factor
      end

let gaussian_array g n ~sigma = Array.init n (fun _ -> sigma *. gaussian g)
