(** Dense complex matrices (row-major).

    Truncated harmonic transfer matrices are realized as values of this
    type; the composition rules of the HTM calculus (series = product,
    parallel = sum, rank-one sampler = outer product) map directly onto
    the operations below. *)

type t

val make : int -> int -> Cx.t -> t
val init : int -> int -> (int -> int -> Cx.t) -> t

(** [rows m], [cols m]: dimensions. *)
val rows : t -> int

val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val zeros : int -> int -> t
val identity : int -> t

(** [diagonal v] is the square matrix with [v] on the diagonal. *)
val diagonal : Cvec.t -> t

val of_rows : Cx.t array array -> t
val row : t -> int -> Cvec.t
val col : t -> int -> Cvec.t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [mv m v] is the matrix-vector product. *)
val mv : t -> Cvec.t -> Cvec.t

(** [vm v m] is the row-vector product [v^T m]. *)
val vm : Cvec.t -> t -> Cvec.t

(** [outer u v] is the rank-one matrix [u v^T] (no conjugation) — the
    shape of the sampling-PFD HTM. *)
val outer : Cvec.t -> Cvec.t -> t

val transpose : t -> t
val conj_transpose : t -> t
val map : (Cx.t -> Cx.t) -> t -> t
val mapi : (int -> int -> Cx.t -> Cx.t) -> t -> t

(** [sum_entries m] is [l^T m l]: the sum of all entries, which for an
    HTM product equals the paper's effective open-loop gain λ(s). *)
val sum_entries : t -> Cx.t

val trace : t -> Cx.t
val norm_frobenius : t -> float

(** Max row sum of moduli (induced infinity norm). *)
val norm_inf : t -> float

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
