type element =
  | Resistor of { a : int; b : int; ohms : float }
  | Capacitor of { a : int; b : int; farads : float }
  | Inductor of { a : int; b : int; henries : float }
  | Vcvs of { out_pos : int; out_neg : int; in_pos : int; in_neg : int; gain : float }

type t = element list

let validate = function
  | Resistor { a; b; ohms } ->
      if a < 0 || b < 0 then invalid_arg "Netlist.validate: negative node";
      if ohms <= 0.0 then
        invalid_arg "Netlist.validate: resistance must be positive"
  | Capacitor { a; b; farads } ->
      if a < 0 || b < 0 then invalid_arg "Netlist.validate: negative node";
      if farads <= 0.0 then
        invalid_arg "Netlist.validate: capacitance must be positive"
  | Inductor { a; b; henries } ->
      if a < 0 || b < 0 then invalid_arg "Netlist.validate: negative node";
      if henries <= 0.0 then
        invalid_arg "Netlist.validate: inductance must be positive"
  | Vcvs { out_pos; out_neg; in_pos; in_neg; gain = _ } ->
      if out_pos < 0 || out_neg < 0 || in_pos < 0 || in_neg < 0 then
        invalid_arg "Netlist.validate: negative node"

let create elements =
  List.iter validate elements;
  elements

let elements t = t

let max_node t =
  List.fold_left
    (fun acc el ->
      match el with
      | Resistor { a; b; _ } | Capacitor { a; b; _ } | Inductor { a; b; _ } ->
          Stdlib.max acc (Stdlib.max a b)
      | Vcvs { out_pos; out_neg; in_pos; in_neg; _ } ->
          List.fold_left Stdlib.max acc [ out_pos; out_neg; in_pos; in_neg ])
    0 t

let extra_unknowns t =
  List.fold_left
    (fun acc el ->
      match el with
      | Inductor _ | Vcvs _ -> acc + 1
      | Resistor _ | Capacitor _ -> acc)
    0 t

let r a b ohms = Resistor { a; b; ohms }
let c a b farads = Capacitor { a; b; farads }
let l a b henries = Inductor { a; b; henries }

let second_order_cp_filter ~r:rv ~c1 ~c2 =
  create [ r 1 2 rv; c 2 0 c1; c 1 0 c2 ]

let third_order_cp_filter ~r:rv ~c1 ~c2 ~r3 ~c3 =
  create [ r 1 2 rv; c 2 0 c1; c 1 0 c2; r 1 3 r3; c 3 0 c3 ]

let pp_element ppf = function
  | Resistor { a; b; ohms } -> Format.fprintf ppf "R %d-%d %g" a b ohms
  | Capacitor { a; b; farads } -> Format.fprintf ppf "C %d-%d %g" a b farads
  | Inductor { a; b; henries } -> Format.fprintf ppf "L %d-%d %g" a b henries
  | Vcvs { out_pos; out_neg; in_pos; in_neg; gain } ->
      Format.fprintf ppf "E %d-%d <- %d-%d x%g" out_pos out_neg in_pos in_neg gain

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_element)
    t
