(** Modified nodal analysis with exact rational extraction.

    The MNA system of a linear R/L/C/VCVS network is a matrix pencil
    [M(s) = G + sC] whose entries are degree-≤1 polynomials in the
    Laplace variable. Transfer functions are ratios of determinants
    (Cramer), and each determinant is a polynomial of degree at most the
    pencil dimension — so it is recovered *exactly* by evaluating the
    pencil at roots of unity (after frequency scaling for conditioning)
    and inverse-DFT interpolation. The result is a true rational
    transfer function ({!Lti.Tf.t}), not a frequency-response table:
    poles, zeros and state-space realizations all come for free
    downstream.

    This is how loop-filter impedances reach the PLL model without any
    hand-derived formula ({!Pll_lib.Loop_filter} accepts the resulting
    [Tf.t] as a [Custom] topology). *)

exception Singular_network of string

(** [impedance netlist ~port] — [V_port(s) / I_in(s)] for a unit current
    injected into [port] (the charge pump's view of the filter).
    @raise Singular_network when the network has no finite solution
    (floating port, shorted source loop, ...). *)
val impedance : Netlist.t -> port:int -> Lti.Tf.t

(** [transimpedance netlist ~inject ~sense] — [V_sense(s) / I_inject(s)]:
    current into [inject], voltage read at [sense] (e.g. a third-order
    filter driven at the pump node and sensed after the ripple
    section). *)
val transimpedance : Netlist.t -> inject:int -> sense:int -> Lti.Tf.t

(** [voltage_transfer netlist ~from_node ~to_node] —
    [V_to(s) / V_from(s)] with an ideal voltage source driving
    [from_node]. *)
val voltage_transfer : Netlist.t -> from_node:int -> to_node:int -> Lti.Tf.t

(** [solve_at netlist ~inject s] — node voltages (index 0 = node 1) for
    a unit current injection, at a single complex frequency; the direct
    LU reference the rational extraction is tested against. *)
val solve_at : Netlist.t -> inject:int -> Numeric.Cx.t -> Numeric.Cvec.t

(** [characteristic_freq netlist] — the geometric frequency scale used
    internally for conditioning (exposed for tests). *)
val characteristic_freq : Netlist.t -> float
