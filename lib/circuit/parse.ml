exception Parse_error of { line : int; message : string }

let suffix_scale = function
  | "" -> Some 1.0
  | "f" -> Some 1e-15
  | "p" -> Some 1e-12
  | "n" -> Some 1e-9
  | "u" -> Some 1e-6
  | "m" -> Some 1e-3
  | "k" -> Some 1e3
  | "meg" -> Some 1e6
  | "g" -> Some 1e9
  | "t" -> Some 1e12
  | _ -> None

(* The [failwith] messages below are deliberately unprefixed: [value_at]
   rewraps them into [Parse_error], where they surface verbatim in user
   netlist diagnostics ("line 3: malformed value: 1x") — a
   "Parse.value:" prefix would be noise there. *)
let value str =
  let str = String.lowercase_ascii (String.trim str) in
  if str = "" then (failwith "empty value" [@lint.allow "error-message-prefix"]);
  (* split the longest numeric prefix from the suffix *)
  let n = String.length str in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-'
  in
  (* scientific notation 'e' is numeric only when followed by a digit or
     sign (otherwise it could start "meg" after a digit? no — 'm' ends
     the numeric prefix; only 'e' is ambiguous, as in "1e3" vs "1meg"
     where the prefix stops at 'm') *)
  let rec prefix_end i =
    if i >= n then i
    else if is_num_char str.[i] then prefix_end (i + 1)
    else if
      str.[i] = 'e' && i + 1 < n
      && (is_num_char str.[i + 1])
      && str.[i + 1] <> '.'
    then prefix_end (i + 2)
    else i
  in
  let cut = prefix_end 0 in
  if cut = 0 then
    (failwith ("malformed value: " ^ str) [@lint.allow "error-message-prefix"]);
  let num = String.sub str 0 cut in
  let suffix = String.sub str cut (n - cut) in
  match (float_of_string_opt num, suffix_scale suffix) with
  | Some x, Some scale -> x *. scale
  | None, _ ->
      (failwith ("malformed number: " ^ num)
      [@lint.allow "error-message-prefix"])
  | _, None ->
      (failwith ("unknown suffix: " ^ suffix)
      [@lint.allow "error-message-prefix"])

let node_of_string line str =
  match int_of_string_opt str with
  | Some n when n >= 0 -> n
  | _ -> raise (Parse_error { line; message = "bad node: " ^ str })

let value_at line str =
  match value str with
  | v -> v
  | exception Failure message -> raise (Parse_error { line; message })

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let tokens_of_line s =
  String.split_on_char ' ' (String.trim (strip_comment s))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_line lineno line =
  match tokens_of_line line with
  | [] -> None
  | name :: rest when String.length name > 0 && name.[0] <> '*' -> (
      let designator = Char.lowercase_ascii name.[0] in
      match (designator, rest) with
      | 'r', [ a; b; v ] ->
          Some
            (Netlist.r (node_of_string lineno a) (node_of_string lineno b)
               (value_at lineno v))
      | 'c', [ a; b; v ] ->
          Some
            (Netlist.c (node_of_string lineno a) (node_of_string lineno b)
               (value_at lineno v))
      | 'l', [ a; b; v ] ->
          Some
            (Netlist.l (node_of_string lineno a) (node_of_string lineno b)
               (value_at lineno v))
      | 'e', [ op; on; ip; in_; g ] ->
          Some
            (Netlist.Vcvs
               {
                 out_pos = node_of_string lineno op;
                 out_neg = node_of_string lineno on;
                 in_pos = node_of_string lineno ip;
                 in_neg = node_of_string lineno in_;
                 gain = value_at lineno g;
               })
      | ('r' | 'c' | 'l' | 'e'), _ ->
          raise
            (Parse_error
               { line = lineno; message = "wrong number of fields for " ^ name })
      | _ ->
          raise
            (Parse_error { line = lineno; message = "unknown element: " ^ name }))
  | _ -> None

let netlist src =
  let lines = String.split_on_char '\n' src in
  let elements =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_line (i + 1) line with Some el -> [ el ] | None -> [])
         lines)
  in
  match Netlist.create elements with
  | n -> n
  | exception Invalid_argument message ->
      raise (Parse_error { line = 0; message })
