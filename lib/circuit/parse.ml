let suffix_scale = function
  | "" -> Some 1.0
  | "f" -> Some 1e-15
  | "p" -> Some 1e-12
  | "n" -> Some 1e-9
  | "u" -> Some 1e-6
  | "m" -> Some 1e-3
  | "k" -> Some 1e3
  | "meg" -> Some 1e6
  | "g" -> Some 1e9
  | "t" -> Some 1e12
  | _ -> None

(* The [failwith] messages below are deliberately unprefixed: [value_at]
   rewraps them into the typed [Parse] error, where they surface
   verbatim in user netlist diagnostics ("net.cir:3:9: malformed value:
   1x") — a "Parse.value:" prefix would be noise there. *)
let value str =
  let str = String.lowercase_ascii (String.trim str) in
  if str = "" then (failwith "empty value" [@lint.allow "error-message-prefix"]);
  (* split the longest numeric prefix from the suffix *)
  let n = String.length str in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '.' || c = '+' || c = '-'
  in
  (* scientific notation 'e' is numeric only when followed by a digit or
     sign (otherwise it could start "meg" after a digit? no — 'm' ends
     the numeric prefix; only 'e' is ambiguous, as in "1e3" vs "1meg"
     where the prefix stops at 'm') *)
  let rec prefix_end i =
    if i >= n then i
    else if is_num_char str.[i] then prefix_end (i + 1)
    else if
      str.[i] = 'e' && i + 1 < n
      && (is_num_char str.[i + 1])
      && str.[i + 1] <> '.'
    then prefix_end (i + 2)
    else i
  in
  let cut = prefix_end 0 in
  if cut = 0 then
    (failwith ("malformed value: " ^ str) [@lint.allow "error-message-prefix"]);
  let num = String.sub str 0 cut in
  let suffix = String.sub str cut (n - cut) in
  match (float_of_string_opt num, suffix_scale suffix) with
  | Some x, Some scale -> x *. scale
  | None, _ ->
      (failwith ("malformed number: " ^ num)
      [@lint.allow "error-message-prefix"])
  | _, None ->
      (failwith ("unknown suffix: " ^ suffix)
      [@lint.allow "error-message-prefix"])

let parse_fail ~file ~line ~col msg =
  Robust.Pllscope_error.raise_ (Parse { file; line; col; msg })

let node_of_string ~file ~line (col, str) =
  match int_of_string_opt str with
  | Some n when n >= 0 -> n
  | _ -> parse_fail ~file ~line ~col ("bad node: " ^ str)

let value_at ~file ~line (col, str) =
  match value str with
  | v -> v
  | exception Failure msg -> parse_fail ~file ~line ~col msg

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let is_space = function ' ' | '\t' | '\r' -> true | _ -> false

(* Tokens paired with their 0-based column so every diagnostic can point
   a caret at the offending field of the original line. *)
let tokens_of_line s =
  let s = strip_comment s in
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_space s.[!i] then incr i
    else begin
      let start = !i in
      while !i < n && not (is_space s.[!i]) do
        incr i
      done;
      toks := (start, String.sub s start (!i - start)) :: !toks
    end
  done;
  List.rev !toks

let parse_line ~file lineno line =
  let node = node_of_string ~file ~line:lineno in
  let value_at = value_at ~file ~line:lineno in
  match tokens_of_line line with
  | [] -> None
  | (name_col, name) :: rest when String.length name > 0 && name.[0] <> '*' -> (
      let designator = Char.lowercase_ascii name.[0] in
      match (designator, rest) with
      | 'r', [ a; b; v ] -> Some (Netlist.r (node a) (node b) (value_at v))
      | 'c', [ a; b; v ] -> Some (Netlist.c (node a) (node b) (value_at v))
      | 'l', [ a; b; v ] -> Some (Netlist.l (node a) (node b) (value_at v))
      | 'e', [ op; on; ip; in_; g ] ->
          Some
            (Netlist.Vcvs
               {
                 out_pos = node op;
                 out_neg = node on;
                 in_pos = node ip;
                 in_neg = node in_;
                 gain = value_at g;
               })
      | ('r' | 'c' | 'l' | 'e'), _ ->
          parse_fail ~file ~line:lineno ~col:name_col
            ("wrong number of fields for " ^ name)
      | _ ->
          parse_fail ~file ~line:lineno ~col:name_col
            ("unknown element: " ^ name))
  | _ -> None

let netlist ?(file = "<netlist>") src =
  let lines = String.split_on_char '\n' src in
  let elements =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_line ~file (i + 1) line with
           | Some el -> [ el ]
           | None -> [])
         lines)
  in
  match Netlist.create elements with
  | n -> n
  | exception Invalid_argument msg ->
      (* semantic error over the whole netlist — no single offending
         line, reported as line 0 by convention *)
      parse_fail ~file ~line:0 ~col:0 msg
