(** SPICE-flavored netlist parsing.

    One element per line; [*] or [;] starts a comment; blank lines are
    ignored. Element cards (case-insensitive designators):

    {v
    R<name> <node+> <node-> <value>
    C<name> <node+> <node-> <value>
    L<name> <node+> <node-> <value>
    E<name> <out+> <out-> <in+> <in-> <gain>
    v}

    Values accept engineering suffixes [f p n u m k meg g t] (SPICE
    convention: [m] = milli, [meg] = mega) and plain scientific
    notation. Nodes are nonnegative integers with [0] = ground. *)

(** [netlist ?file src] parses a full netlist source. [file] (default
    ["<netlist>"]) only labels diagnostics.
    @raise Robust.Pllscope_error.Error with a
    [Robust.Pllscope_error.Parse] payload carrying the 1-based line,
    0-based column and message on malformed input; semantic errors over
    the whole netlist (from [Netlist.create]) report line 0. Pair the
    payload with {!Robust.Pllscope_error.parse_snippet} to render a
    caret under the offending token. *)
val netlist : ?file:string -> string -> Netlist.t

(** [value str] parses a single engineering-notation value
    (e.g. ["4.7k"], ["100n"], ["2meg"], ["1e-9"]).
    @raise Failure on malformed input. *)
val value : string -> float
