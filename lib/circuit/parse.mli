(** SPICE-flavored netlist parsing.

    One element per line; [*] or [;] starts a comment; blank lines are
    ignored. Element cards (case-insensitive designators):

    {v
    R<name> <node+> <node-> <value>
    C<name> <node+> <node-> <value>
    L<name> <node+> <node-> <value>
    E<name> <out+> <out-> <in+> <in-> <gain>
    v}

    Values accept engineering suffixes [f p n u m k meg g t] (SPICE
    convention: [m] = milli, [meg] = mega) and plain scientific
    notation. Nodes are nonnegative integers with [0] = ground. *)

exception Parse_error of { line : int; message : string }

(** [netlist src] parses a full netlist source.
    @raise Parse_error with a 1-based line number on malformed input. *)
val netlist : string -> Netlist.t

(** [value str] parses a single engineering-notation value
    (e.g. ["4.7k"], ["100n"], ["2meg"], ["1e-9"]).
    @raise Failure on malformed input. *)
val value : string -> float
