(** Linear circuit netlists.

    Charge-pump loop filters are small passive networks; instead of
    hand-deriving each topology's impedance, this module describes the
    network and {!Mna} extracts exact rational transfer functions from
    it by modified nodal analysis. Node [0] is ground; other nodes are
    nonnegative integers. *)

type element =
  | Resistor of { a : int; b : int; ohms : float }
  | Capacitor of { a : int; b : int; farads : float }
  | Inductor of { a : int; b : int; henries : float }
  | Vcvs of { out_pos : int; out_neg : int; in_pos : int; in_neg : int; gain : float }
      (** ideal voltage-controlled voltage source (E element) — lets the
          netlist describe buffered/active filter stages *)

type t

(** [create elements] — validates node indices.
    @raise Invalid_argument on negative nodes or nonpositive values. *)
val create : element list -> t

val elements : t -> element list

(** Highest node index used. *)
val max_node : t -> int

(** Number of extra MNA unknowns (inductor and controlled-source branch
    currents). *)
val extra_unknowns : t -> int

(** Convenience constructors. *)
val r : int -> int -> float -> element

val c : int -> int -> float -> element
val l : int -> int -> float -> element

(** [second_order_cp_filter ~r ~c1 ~c2] — the paper's loop filter seen
    from the charge-pump node (node 1): series R-C₁ branch and shunt C₂,
    both to ground. *)
val second_order_cp_filter : r:float -> c1:float -> c2:float -> t

(** [third_order_cp_filter ~r ~c1 ~c2 ~r3 ~c3] — same plus an R₃-C₃
    ripple section; the control voltage is taken at node 3 (after R₃). *)
val third_order_cp_filter :
  r:float -> c1:float -> c2:float -> r3:float -> c3:float -> t

val pp : Format.formatter -> t -> unit
