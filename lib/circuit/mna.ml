open Numeric

exception Singular_network of string

(* The pencil M(s) = G + s*C over node voltages (node k -> row k-1) and
   branch-current unknowns for inductors and controlled sources. *)
type pencil = { g : Rmat.t; c : Rmat.t; nodes : int; dim : int }

let assemble netlist =
  let nodes = Netlist.max_node netlist in
  let dim = nodes + Netlist.extra_unknowns netlist in
  let g = Rmat.zeros dim dim and c = Rmat.zeros dim dim in
  let add m i k v = if i >= 0 && k >= 0 then Rmat.set m i k (Rmat.get m i k +. v) in
  let branch = ref nodes in
  List.iter
    (fun el ->
      match el with
      | Netlist.Resistor { a; b; ohms } ->
          let y = 1.0 /. ohms in
          let ia = a - 1 and ib = b - 1 in
          add g ia ia y;
          add g ib ib y;
          add g ia ib (-.y);
          add g ib ia (-.y)
      | Netlist.Capacitor { a; b; farads } ->
          let ia = a - 1 and ib = b - 1 in
          add c ia ia farads;
          add c ib ib farads;
          add c ia ib (-.farads);
          add c ib ia (-.farads)
      | Netlist.Inductor { a; b; henries } ->
          let ia = a - 1 and ib = b - 1 and k = !branch in
          incr branch;
          (* KCL: branch current leaves a, enters b *)
          add g ia k 1.0;
          add g ib k (-1.0);
          (* branch: V_a - V_b - sL i = 0 *)
          add g k ia 1.0;
          add g k ib (-1.0);
          add c k k (-.henries)
      | Netlist.Vcvs { out_pos; out_neg; in_pos; in_neg; gain } ->
          let op = out_pos - 1
          and on = out_neg - 1
          and ip = in_pos - 1
          and in_ = in_neg - 1
          and k = !branch in
          incr branch;
          add g op k 1.0;
          add g on k (-1.0);
          (* branch: V_op - V_on - gain (V_ip - V_in) = 0 *)
          add g k op 1.0;
          add g k on (-1.0);
          add g k ip (-.gain);
          add g k in_ gain)
    (Netlist.elements netlist);
  { g; c; nodes; dim }

let characteristic_freq netlist =
  (* geometric mean of conductance / capacitance scales: keeps the
     scaled pencil O(1) so root-of-unity interpolation is conditioned *)
  let logs_g = ref [] and logs_c = ref [] in
  List.iter
    (fun el ->
      match el with
      | Netlist.Resistor { ohms; _ } -> logs_g := log (1.0 /. ohms) :: !logs_g
      | Netlist.Capacitor { farads; _ } -> logs_c := log farads :: !logs_c
      | Netlist.Inductor { henries; _ } ->
          (* an inductor contributes the scale 1/L on the C side of its
             branch row *)
          logs_c := log henries :: !logs_c
      | Netlist.Vcvs _ -> ())
    (Netlist.elements netlist);
  match (!logs_g, !logs_c) with
  | [], _ | _, [] -> 1.0
  | gs, cs ->
      let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      exp (mean gs -. mean cs)

let eval_pencil p ~omega_c sigma =
  (* M(omega_c * sigma) with the C side pre-scaled *)
  Cmat.init p.dim p.dim (fun i k ->
      Cx.add
        (Cx.of_float (Rmat.get p.g i k))
        (Cx.scale (omega_c *. Rmat.get p.c i k) sigma))

(* interpolate a polynomial of degree <= dim from samples at the
   (dim+1)-th roots of unity: inverse DFT *)
let interpolate_from_roots samples =
  let m = Array.length samples in
  Array.init m (fun j ->
      let acc = ref Cx.zero in
      for k = 0 to m - 1 do
        let phase = -2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int m in
        acc := Cx.add !acc (Cx.mul samples.(k) (Cx.cis phase))
      done;
      Cx.scale (1.0 /. float_of_int m) !acc)

(* Drop interpolation roundoff. This runs on the *frequency-scaled*
   coefficients, which are mutually comparable by construction, so a
   relative threshold near machine precision removes only noise: genuine
   circuit coefficients sit many orders above it. *)
let clean_poly coeffs =
  let scale_mag =
    Array.fold_left (fun acc z -> Stdlib.max acc (Cx.abs z)) 0.0 coeffs
  in
  if Float.equal scale_mag 0.0 then Poly.zero
  else
    Poly.of_array
      (Array.map
         (fun z ->
           let re = if Float.abs (Cx.re z) < 1e-12 *. scale_mag then 0.0 else Cx.re z in
           Cx.of_float re)
         coeffs)

let det_poly p ~omega_c ~replace_col =
  let m = p.dim + 1 in
  let samples =
    Array.init m (fun k ->
        let sigma = Cx.cis (2.0 *. Float.pi *. float_of_int k /. float_of_int m) in
        let mat = eval_pencil p ~omega_c sigma in
        (match replace_col with
        | None -> ()
        | Some (col, rhs) ->
            for i = 0 to p.dim - 1 do
              Cmat.set mat i col (Cvec.get rhs i)
            done);
        Lu.det mat)
  in
  (* clean in the scaled domain, then un-scale: the coefficient of
     sigma^j corresponds to s^j / omega_c^j *)
  let sigma_poly = clean_poly (interpolate_from_roots samples) in
  Poly.of_array
    (Array.mapi
       (fun j z -> Cx.scale (omega_c ** -.float_of_int j) z)
       (Poly.coeffs sigma_poly))

let cramer netlist ~rhs ~out_row =
  let p = assemble netlist in
  if out_row < 0 || out_row >= p.dim then
    invalid_arg "Mna.cramer: node index out of range";
  let omega_c = characteristic_freq netlist in
  let den = det_poly p ~omega_c ~replace_col:None in
  if Poly.is_zero den then
    raise (Singular_network "singular MNA pencil (floating node or source loop?)");
  let num = det_poly p ~omega_c ~replace_col:(Some (out_row, rhs p.dim)) in
  Lti.Tf.of_rat (Rat.make num den)

let unit_current ~node dim =
  Cvec.init dim (fun i -> if i = node then Cx.one else Cx.zero)

let transimpedance netlist ~inject ~sense =
  if inject < 1 || sense < 1 then
    invalid_arg "Mna.transimpedance: ports are nodes >= 1";
  cramer netlist ~rhs:(unit_current ~node:(inject - 1)) ~out_row:(sense - 1)

let impedance netlist ~port = transimpedance netlist ~inject:port ~sense:port

let voltage_transfer netlist ~from_node ~to_node =
  if from_node < 1 || to_node < 1 then
    invalid_arg "Mna.voltage_transfer: ports are nodes >= 1";
  (* drive from_node with a 1 V ideal source: add a source branch *)
  let driven =
    Netlist.create
      (Netlist.elements netlist
      @ [ Netlist.Vcvs
            { out_pos = from_node; out_neg = 0; in_pos = 0; in_neg = 0; gain = 0.0 } ])
  in
  (* the zero-gain VCVS from ground pins V_from to 0; to make it 1 V we
     instead put the unit excitation on that branch equation's RHS *)
  let p = assemble driven in
  let branch_row = p.dim - 1 in
  let rhs dim = Cvec.init dim (fun i -> if i = branch_row then Cx.one else Cx.zero) in
  let omega_c = characteristic_freq driven in
  let den = det_poly p ~omega_c ~replace_col:None in
  if Poly.is_zero den then
    raise (Singular_network "singular MNA pencil (floating node or source loop?)");
  let num = det_poly p ~omega_c ~replace_col:(Some (to_node - 1, rhs p.dim)) in
  Lti.Tf.of_rat (Rat.make num den)

let solve_at netlist ~inject s =
  let p = assemble netlist in
  let mat =
    Cmat.init p.dim p.dim (fun i k ->
        Cx.add
          (Cx.of_float (Rmat.get p.g i k))
          (Cx.mul (Cx.of_float (Rmat.get p.c i k)) s))
  in
  let b = unit_current ~node:(inject - 1) p.dim in
  match Lu.solve_system mat b with
  | x -> Cvec.init p.nodes (fun i -> Cvec.get x i)
  | exception Lu.Singular ->
      raise (Singular_network "singular at the requested frequency")
