let locked_run pll ?(steps_per_period = 64) ?(stimulus = Behavioral.quiet)
    ?(nonideal = Behavioral.ideal) ~periods () =
  let config =
    { (Behavioral.default_config pll) with
      Behavioral.steps_per_period; nonideal }
  in
  let t_end = float_of_int periods *. Pll_lib.Pll.period pll in
  Behavioral.run config stimulus ~t_end

let acquisition pll ?(steps_per_period = 64) ?(nonideal = Behavioral.ideal)
    ~freq_offset ~periods () =
  let config =
    { (Behavioral.default_config pll) with
      Behavioral.vco_freq_offset = freq_offset; steps_per_period; nonideal }
  in
  let t_end = float_of_int periods *. Pll_lib.Pll.period pll in
  Behavioral.run config Behavioral.quiet ~t_end

let lock_time record ~tol =
  let theta = record.Behavioral.theta in
  let n = Waveform.length theta in
  (* scan backwards for the last sample exceeding tol *)
  let rec last_bad i =
    if i < 0 then None
    else if Float.abs (Waveform.value theta i) > tol then Some i
    else last_bad (i - 1)
  in
  match last_bad (n - 1) with
  | None -> Some (Waveform.time_of_index theta 0)
  | Some i when i = n - 1 -> None
  | Some i -> Some (Waveform.time_of_index theta (i + 1))

let periodic_component wf ~period ~periods ~harmonic =
  let n = Waveform.length wf in
  let dt = wf.Waveform.dt in
  let samples_per_period = int_of_float (Float.round (period /. dt)) in
  let window = periods * samples_per_period in
  if window > n then invalid_arg "Transient.periodic_component: record too short";
  let start = n - window in
  let xs = Array.init window (fun i -> Waveform.value wf (start + i)) in
  let omega = 2.0 *. Float.pi *. float_of_int harmonic /. period in
  let corr = Numeric.Fft.goertzel xs ~dt ~omega in
  (* reference the phase to absolute time *)
  Numeric.Cx.mul corr
    (Numeric.Cx.cis (-.omega *. Waveform.time_of_index wf start))

let reference_spur_dbc record ~pll ~periods =
  let period = Pll_lib.Pll.period pll in
  let theta1 =
    periodic_component record.Behavioral.theta ~period ~periods ~harmonic:1
  in
  let w_vco = 2.0 *. Float.pi *. pll.Pll_lib.Pll.n_div *. pll.Pll_lib.Pll.fref in
  let beta = w_vco *. Numeric.Cx.abs theta1 in
  20.0 *. log10 (beta /. 2.0)

let steady_state_ripple record ~period ~periods =
  let u = record.Behavioral.control in
  let t1 = Waveform.time_of_index u (Waveform.length u - 1) in
  let t0 = t1 -. (float_of_int periods *. period) in
  let s = Waveform.slice u ~from_time:(Stdlib.max 0.0 t0) ~to_time:t1 in
  let data = Waveform.to_array s in
  let mx = Array.fold_left Stdlib.max neg_infinity data in
  let mn = Array.fold_left Stdlib.min infinity data in
  mx -. mn
