(** Measuring the closed-loop phase transfer from time-marching
    simulation — the paper's verification methodology (§5, the marks on
    Fig. 6), rebuilt on our own simulator.

    A small sinusoidal time-shift modulation is applied to the
    reference, the loop is simulated past its transient, and the complex
    gain at the modulation frequency is recovered by synchronous
    correlation. Choosing [ω_m = j·ω₀/n_window] (an exact rational of
    the reference) makes the measurement window an integer number of
    periods of *every* spectral component the LPTV loop produces
    ([ω_m + k ω₀]), so the correlation has zero leakage and isolates the
    baseband-to-baseband element [H₀₀(jω_m)] exactly. *)

type measurement = {
  omega : float;  (** modulation frequency, rad/s *)
  measured : Numeric.Cx.t;  (** simulator estimate of H₀₀(jω_m) *)
  predicted : Numeric.Cx.t;  (** closed form, eq. 38 *)
  predicted_lti : Numeric.Cx.t;  (** classical A/(1+A) *)
  rel_err : float;  (** |measured − predicted| / |predicted| *)
}

(** [measure_h00 pll ~harmonic ~window_periods ()] measures at
    [ω_m = harmonic·ω₀/window_periods].

    @param harmonic number of modulation cycles inside the window
           (1 ≤ harmonic, and [harmonic/window_periods] sets ω_m/ω₀)
    @param window_periods measurement window, reference periods
    @param warmup_periods settling time before the window opens
           (default: 6 loop time constants, at least 2 windows)
    @param eps modulation depth in seconds (default [T/2000])
    @param steps_per_period integration resolution (default 96) *)
val measure_h00 :
  Pll_lib.Pll.t ->
  harmonic:int ->
  window_periods:int ->
  ?warmup_periods:int ->
  ?eps:float ->
  ?steps_per_period:int ->
  unit ->
  measurement

(** [measure_error_transfer pll ~harmonic ~window_periods ()] — same
    protocol, but the sinusoidal time-shift disturbance is injected
    *inside the VCO*: the measured quantity is the baseband element of
    the error transfer [(I+G)^{-1}], whose closed form is
    [E₀₀(jω) = 1 − A(jω)/(1 + λ(jω))] — the shaping function the
    phase-noise extension ({!Pll_lib.Noise}) applies to open-loop VCO
    noise. [predicted_lti] is the classical [1/(1+A)]. *)
val measure_error_transfer :
  Pll_lib.Pll.t ->
  harmonic:int ->
  window_periods:int ->
  ?warmup_periods:int ->
  ?eps:float ->
  ?steps_per_period:int ->
  unit ->
  measurement

(** [sweep pll points] — measure at each [(harmonic, window)] pair. *)
val sweep : Pll_lib.Pll.t -> (int * int) list -> measurement list

(** [worst_rel_err ms] — the largest relative error in a sweep. *)
val worst_rel_err : measurement list -> float
