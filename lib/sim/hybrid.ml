type ('d, 'tag) event =
  | Scheduled of { tag : 'tag; next_time : 'd -> float option }
  | Guarded of { tag : 'tag; guard : 'd -> float -> float array -> float }

type ('d, 'tag) model = {
  dynamics : 'd -> float -> float array -> float array;
  events : ('d, 'tag) event list;
  transition : 'd -> 'tag -> float -> float array -> 'd * float array;
}

type ('d, 'tag) run_config = {
  t0 : float;
  t1 : float;
  dt_max : float;
  observer : 'd -> float -> float array -> unit;
}

(* Localize the first upward zero crossing of [guard] along the RK4
   trajectory started at (t, y): returns the step offset h* in (0, h]. *)
let locate_crossing dynamics mode guard t y h g0 =
  let value h' =
    if Float.equal h' 0.0 then g0
    else
      let y' = Numeric.Ode.rk4_step (dynamics mode) t y h' in
      guard mode (t +. h') y'
  in
  let lo = ref 0.0 and hi = ref h in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if value mid < 0.0 then lo := mid else hi := mid
  done;
  !hi

let run model cfg ~mode ~state =
  if cfg.dt_max <= 0.0 then invalid_arg "Hybrid.run: dt_max must be positive";
  let t = ref cfg.t0 in
  let y = ref (Array.copy state) in
  let mode = ref mode in
  let grid = ref 0 in
  let tiny = 1e-12 *. cfg.dt_max in
  let same_instant_fires = ref 0 in
  cfg.observer !mode !t !y;
  while !t < cfg.t1 -. tiny do
    (* target the next base-grid boundary so samples stay uniform even
       when events shorten steps *)
    let next_grid_time =
      cfg.t0 +. (float_of_int (!grid + 1) *. cfg.dt_max)
    in
    let target = Stdlib.min cfg.t1 next_grid_time in
    if target <= !t +. tiny then incr grid
    else begin
      (* earliest scheduled event in (t, target] *)
      let sched =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Guarded _ -> acc
            | Scheduled { tag; next_time } -> (
                match next_time !mode with
                | Some te when te > !t +. tiny && te <= target +. tiny -> (
                    match acc with
                    | Some (_, best) when best <= te -> acc
                    | _ -> Some (tag, te))
                | Some te when te <= !t +. tiny ->
                    (* due now: fire at current time *)
                    Some (tag, !t)
                | _ -> acc))
          None model.events
      in
      match sched with
      | Some (tag, te) when te <= !t +. tiny ->
          (* immediate scheduled event *)
          incr same_instant_fires;
          if !same_instant_fires > 1000 then
            failwith "Hybrid.run: event storm at a single instant";
          let mode', y' = model.transition !mode tag !t !y in
          mode := mode';
          y := y';
          cfg.observer !mode !t !y
      | _ ->
          same_instant_fires := 0;
          let step_end = match sched with Some (_, te) -> te | None -> target in
          let h = step_end -. !t in
          let y_trial = Numeric.Ode.rk4_step (model.dynamics !mode) !t !y h in
          (* earliest guarded crossing within the step *)
          let crossing =
            List.fold_left
              (fun acc ev ->
                match ev with
                | Scheduled _ -> acc
                | Guarded { tag; guard } ->
                    let g0 = guard !mode !t !y in
                    let g1 = guard !mode (!t +. h) y_trial in
                    if g0 < 0.0 && g1 >= 0.0 then begin
                      let hc =
                        locate_crossing model.dynamics !mode guard !t !y h g0
                      in
                      match acc with
                      | Some (_, best) when best <= hc -> acc
                      | _ -> Some (tag, hc)
                    end
                    else acc)
              None model.events
          in
          (match crossing with
          | Some (tag, hc) ->
              let y_event = Numeric.Ode.rk4_step (model.dynamics !mode) !t !y hc in
              t := !t +. hc;
              let mode', y' = model.transition !mode tag !t y_event in
              mode := mode';
              y := y'
          | None -> (
              t := step_end;
              y := y_trial;
              (match sched with
              | Some (tag, _) ->
                  let mode', y' = model.transition !mode tag !t !y in
                  mode := mode';
                  y := y'
              | None -> ());
              if step_end >= next_grid_time -. tiny then incr grid));
          cfg.observer !mode !t !y
    end
  done;
  (!mode, !y)
