(** Behavioral time-marching PLL model — the reference simulation.

    This is the counterpart of the paper's Matlab/Simulink model: the
    PFD is implemented "using flip-flops", i.e. as the tri-state
    sequential machine of a real charge-pump PFD, so the phase error is
    encoded in the *width* of the UP/DOWN pulses, not idealized into
    impulses. The charge pump switches ±I_cp into the loop-filter
    network whose ODE (plus the integrating VCO) is integrated between
    events by the {!Hybrid} engine.

    Conventions follow the paper: phases are *time shifts* in seconds
    ([V(t) = x(t + θ(t))]); the reference edge [k] fires when
    [t + θ_ref(t) = kT]; the divided VCO edge fires when the VCO phase
    accumulates [2πN]; the recovered output is
    [θ(t) = φ(t)/ω_vco − t]. *)

type stimulus = {
  theta_ref : float -> float;  (** reference time-shift modulation, s *)
  vco_freq_mod : float -> float;
      (** open-loop VCO frequency disturbance, rad/s at the VCO output —
          the behavioral injection point for oscillator phase noise:
          a time-shift disturbance [θ_n(t)] corresponds to
          [ω_vco·dθ_n/dt] here *)
}

(** No modulation. *)
val quiet : stimulus

(** [sine_modulation ~eps ~omega] — [θ_ref(t) = eps·sin(ω t)]. *)
val sine_modulation : eps:float -> omega:float -> stimulus

(** [step_modulation ~eps ~at] — [θ_ref(t) = eps·1(t ≥ at)]. *)
val step_modulation : eps:float -> at:float -> stimulus

(** [vco_sine_disturbance ~eps ~omega ~pll] — an oscillator time-shift
    disturbance [θ_n(t) = eps·sin(ω t)] injected inside the VCO (its
    frequency-domain image is the error transfer [(I+G)^{-1}]). *)
val vco_sine_disturbance : eps:float -> omega:float -> pll:Pll_lib.Pll.t -> stimulus

(** Charge-pump/PFD non-idealities of a real implementation; all default
    to the ideal values used by the small-signal model. *)
type nonideal = {
  reset_delay : float;
      (** tri-state reset path delay, s: after both flip-flops are high,
          both pulses persist for this long (the standard dead-zone
          cure; it converts the error pulse into a pulse *pair* whose
          net charge is still proportional to the error) *)
  up_current_gain : float;
      (** UP current is [up_current_gain · I_cp]; a mismatch with the
          (unit-gain) DOWN source leaves a static phase offset and a
          periodic ripple spur in lock *)
  leakage : float;
      (** constant parasitic current off the control node, A *)
}

val ideal : nonideal

type config = {
  pll : Pll_lib.Pll.t;
  vco_freq_offset : float;
      (** initial VCO free-running frequency error at the VCO output, Hz
          (0 = start in lock) *)
  steps_per_period : int;  (** integration/sampling resolution *)
  nonideal : nonideal;
  div_sequence : (int -> float) option;
      (** per-cycle divider modulus (cycle index → count). [None] uses
          the constant [pll.n_div]. A ΔΣ-modulated sequence whose
          *average* equals [pll.n_div] makes this a fractional-N
          synthesizer (see {!Fractional}); the analysis side (A(s), v₀)
          keeps using the average modulus. *)
}

val default_config : Pll_lib.Pll.t -> config

type record = {
  theta : Waveform.t;  (** VCO time shift θ(t), s *)
  control : Waveform.t;  (** loop-filter output voltage, V *)
  current : Waveform.t;  (** instantaneous charge-pump current, A *)
  pulses : (float * float) list;
      (** (start time, signed width) of each completed charge-pump
          pulse, oldest first *)
}

(** [run config stimulus ~t_end] — simulate from a phase-aligned start
    at [t = 0] to [t_end]. *)
val run : config -> stimulus -> t_end:float -> record
