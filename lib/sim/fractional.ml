open Numeric

type modulator = First_order | Mash2 | Mash3

type config = { modulator : modulator; n_int : int; frac : float }

(* Carry sequences of cascaded first-order accumulators. Stage i
   integrates the quantization residue of stage i-1; the MASH output
   combines carries through (1 - z^-1) differentiators. *)
let carries config k_max =
  let c1 = Array.make k_max 0 and c2 = Array.make k_max 0 and c3 = Array.make k_max 0 in
  let a1 = ref 0.0 and a2 = ref 0.0 and a3 = ref 0.0 in
  for k = 0 to k_max - 1 do
    a1 := !a1 +. config.frac;
    if !a1 >= 1.0 then begin
      a1 := !a1 -. 1.0;
      c1.(k) <- 1
    end;
    a2 := !a2 +. !a1;
    if !a2 >= 1.0 then begin
      a2 := !a2 -. 1.0;
      c2.(k) <- 1
    end;
    a3 := !a3 +. !a2;
    if !a3 >= 1.0 then begin
      a3 := !a3 -. 1.0;
      c3.(k) <- 1
    end
  done;
  (c1, c2, c3)

let outputs config k_max =
  let c1, c2, c3 = carries config k_max in
  let at a k = if k < 0 then 0 else a.(k) in
  Array.init k_max (fun k ->
      match config.modulator with
      | First_order -> c1.(k)
      | Mash2 -> c1.(k) + (c2.(k) - at c2 (k - 1))
      | Mash3 ->
          c1.(k)
          + (c2.(k) - at c2 (k - 1))
          + (c3.(k) - (2 * at c3 (k - 1)) + at c3 (k - 2)))

let divider_sequence config =
  if config.frac < 0.0 || config.frac >= 1.0 then
    invalid_arg "Fractional.divider_sequence: frac must be in [0, 1)";
  if config.n_int < 2 then
    invalid_arg "Fractional.divider_sequence: n_int must be >= 2";
  let memo = ref [||] in
  fun k ->
    if k < 0 then invalid_arg "Fractional.divider_sequence: negative index";
    if k >= Array.length !memo then
      memo := outputs config (Stdlib.max 1024 (2 * (k + 1)));
    float_of_int (config.n_int + !memo.(k))

let run pll config ?(steps_per_period = 96) ~periods () =
  let expected = float_of_int config.n_int +. config.frac in
  if Float.abs (pll.Pll_lib.Pll.n_div -. expected) > 1e-9 *. expected then
    invalid_arg "Fractional.run: pll.n_div must equal n_int + frac";
  let cfg =
    {
      (Behavioral.default_config pll) with
      Behavioral.steps_per_period;
      div_sequence = Some (divider_sequence config);
    }
  in
  Behavioral.run cfg Behavioral.quiet
    ~t_end:(float_of_int periods *. Pll_lib.Pll.period pll)

let spur_dbc record ~pll ~frac_denominator ~harmonic ~periods =
  if periods mod frac_denominator <> 0 then
    invalid_arg "Fractional.spur_dbc: periods must be a multiple of the denominator";
  let period = Pll_lib.Pll.period pll in
  (* the quantization pattern repeats every b reference periods: measure
     the line at harmonic * w0 / b as harmonic of the long period b*T *)
  let theta1 =
    Transient.periodic_component record.Behavioral.theta
      ~period:(float_of_int frac_denominator *. period)
      ~periods:(periods / frac_denominator)
      ~harmonic
  in
  let w_vco = 2.0 *. Float.pi *. pll.Pll_lib.Pll.n_div *. pll.Pll_lib.Pll.fref in
  let beta = w_vco *. Cx.abs theta1 in
  20.0 *. log10 (beta /. 2.0)

let predicted_first_order_spur_dbc pll ~frac_denominator =
  let b = float_of_int frac_denominator in
  let w0 = Pll_lib.Pll.omega0 pll in
  let w_vco = 2.0 *. Float.pi *. pll.Pll_lib.Pll.n_div *. pll.Pll_lib.Pll.fref in
  let t_vco = 2.0 *. Float.pi /. w_vco in
  (* b-step sawtooth of one VCO period: fundamental amplitude
     2/(2 b sin(pi/b)) in units of t_vco *)
  let line_amp = t_vco /. (b *. Float.sin (Float.pi /. b)) in
  let shaped = line_amp *. Cx.abs (Pll_lib.Pll.h00 pll (Cx.jomega (w0 /. b))) in
  let beta = w_vco *. shaped in
  20.0 *. log10 (beta /. 2.0)
