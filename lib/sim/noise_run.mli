(** Monte-Carlo noise simulation — the stochastic end-to-end check of
    the {!Pll_lib.Noise} spectral predictions.

    White VCO *frequency* noise (the diffusive noise of
    [Demir et al.], giving the classic 1/ω² open-loop phase-noise
    skirt) is injected into the behavioral model as a piecewise-constant
    Gaussian disturbance on the instantaneous VCO frequency; the closed
    loop shapes it by the time-varying error transfer. The output
    time-shift record is Welch-analyzed and compared band-by-band with
    [Noise.vco_noise_out].

    Reference time-shift noise is injected analogously on [θ_ref] and
    compared with [Noise.reference_noise_out] — including the folding
    factor LTI analysis misses. *)

type result = {
  estimate : Numeric.Psd.estimate;  (** measured output PSD (two-sided) *)
  predicted : float -> float;  (** analytic time-varying prediction *)
  predicted_lti : float -> float;  (** classical LTI prediction *)
}

(** [vco_white_fm pll ~sigma_freq ~periods ?seed ?steps_per_period ()] —
    inject white FM noise of per-step standard deviation [sigma_freq]
    (rad/s at the VCO output, held over each integration step). *)
val vco_white_fm :
  Pll_lib.Pll.t ->
  sigma_freq:float ->
  periods:int ->
  ?seed:int64 ->
  ?steps_per_period:int ->
  unit ->
  result

(** [reference_white pll ~sigma_theta ~periods ?seed ?steps_per_period ()]
    — white reference time-shift noise of per-step std [sigma_theta]
    seconds (held over each integration step). *)
val reference_white :
  Pll_lib.Pll.t ->
  sigma_theta:float ->
  periods:int ->
  ?seed:int64 ->
  ?steps_per_period:int ->
  unit ->
  result

(** [band_ratio r ~lo ~hi] — (measured band average) / (predicted band
    average): ≈1 when theory and simulation agree. *)
val band_ratio : result -> lo:float -> hi:float -> float

(** [band_ratio_lti r ~lo ~hi] — same against the LTI prediction. *)
val band_ratio_lti : result -> lo:float -> hi:float -> float
