(** Generic hybrid (event + ODE) simulation engine.

    This is the substrate under the behavioral PLL model: continuous
    states integrate with RK4 between discrete events; events are either
    *scheduled* (known firing times, e.g. reference edges) or *guarded*
    (zero-crossings of a function of the continuous state, e.g. the VCO
    phase passing a divider threshold), localized by bisection and
    applied in time order. Discrete actions may change both the discrete
    mode and the continuous state. *)

type ('d, 'tag) event =
  | Scheduled of {
      tag : 'tag;
      next_time : 'd -> float option;
          (** absolute firing time; [None] disables *)
    }
  | Guarded of {
      tag : 'tag;
      guard : 'd -> float -> float array -> float;
          (** fires when the guard crosses zero from below *)
    }

type ('d, 'tag) model = {
  dynamics : 'd -> float -> float array -> float array;
      (** mode-dependent vector field *)
  events : ('d, 'tag) event list;
  transition : 'd -> 'tag -> float -> float array -> 'd * float array;
      (** applied at the event instant *)
}

type ('d, 'tag) run_config = {
  t0 : float;
  t1 : float;
  dt_max : float;  (** base integration step *)
  observer : 'd -> float -> float array -> unit;
      (** called at every accepted step boundary (including event
          instants) *)
}

(** [run model config ~mode ~state] — integrates from [t0] to [t1];
    returns the final mode and state. Events closer than
    [1e-12 * dt_max] apart are processed in arbitrary order.
    @raise Failure if event localization fails to converge. *)
val run :
  ('d, 'tag) model -> ('d, 'tag) run_config -> mode:'d -> state:float array -> 'd * float array
