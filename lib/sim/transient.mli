(** Transient experiments on the behavioral model: locked runs, lock
    acquisition, settling measurement. *)

(** [locked_run pll ?steps_per_period ?stimulus ?nonideal ~periods ()] —
    start in lock and run for [periods] reference periods. *)
val locked_run :
  Pll_lib.Pll.t ->
  ?steps_per_period:int ->
  ?stimulus:Behavioral.stimulus ->
  ?nonideal:Behavioral.nonideal ->
  periods:int ->
  unit ->
  Behavioral.record

(** [acquisition pll ?steps_per_period ?nonideal ~freq_offset ~periods ()]
    — start with a VCO frequency error (Hz at the VCO output) and let
    the loop pull in. *)
val acquisition :
  Pll_lib.Pll.t ->
  ?steps_per_period:int ->
  ?nonideal:Behavioral.nonideal ->
  freq_offset:float ->
  periods:int ->
  unit ->
  Behavioral.record

(** [lock_time record ~tol] — the earliest time after which |θ(t)| stays
    below [tol] (seconds of time shift) until the end of the record. *)
val lock_time : Behavioral.record -> tol:float -> float option

(** [steady_state_ripple record ~period ~periods] — peak-to-peak ripple
    of the control voltage over the final [periods] reference periods. *)
val steady_state_ripple : Behavioral.record -> period:float -> periods:int -> float

(** [periodic_component wf ~period ~periods ~harmonic] — complex
    amplitude [Y] (in the [Re(Y e^{jkω₀t})] convention) of the [k]-th
    reference harmonic of a waveform, correlated over the final
    [periods] reference periods. The in-lock ripple lines that become
    reference spurs are read off with this. *)
val periodic_component :
  Waveform.t -> period:float -> periods:int -> harmonic:int -> Numeric.Cx.t

(** [reference_spur_dbc record ~pll ~periods] — single-sideband level of
    the first reference spur on the VCO output, in dBc, from the
    periodic component of the simulated time shift: a time-shift line of
    amplitude [|θ₁|] seconds is a phase line of [β = ω_vco·|θ₁|] rad and
    a spur at [20·log₁₀(β/2)] (narrowband FM). *)
val reference_spur_dbc : Behavioral.record -> pll:Pll_lib.Pll.t -> periods:int -> float
