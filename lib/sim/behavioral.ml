type stimulus = {
  theta_ref : float -> float;
  vco_freq_mod : float -> float;
}

let no_mod _ = 0.0
let quiet = { theta_ref = no_mod; vco_freq_mod = no_mod }

let sine_modulation ~eps ~omega =
  { quiet with theta_ref = (fun t -> eps *. sin (omega *. t)) }

let step_modulation ~eps ~at =
  if at <= 0.0 then invalid_arg "Behavioral.step_modulation: at must be > 0";
  { quiet with theta_ref = (fun t -> if t >= at then eps else 0.0) }

let vco_sine_disturbance ~eps ~omega ~pll =
  (* theta_n = eps sin(w t) in seconds of VCO time shift: the phase
     accumulator gets w_vco * d theta_n / dt *)
  let w_vco =
    2.0 *. Float.pi *. pll.Pll_lib.Pll.n_div *. pll.Pll_lib.Pll.fref
  in
  {
    quiet with
    vco_freq_mod = (fun t -> w_vco *. eps *. omega *. cos (omega *. t));
  }

type nonideal = {
  reset_delay : float;
  up_current_gain : float;
  leakage : float;
}

let ideal = { reset_delay = 0.0; up_current_gain = 1.0; leakage = 0.0 }

type config = {
  pll : Pll_lib.Pll.t;
  vco_freq_offset : float;
  steps_per_period : int;
  nonideal : nonideal;
  div_sequence : (int -> float) option;
}

let default_config pll =
  { pll; vco_freq_offset = 0.0; steps_per_period = 64; nonideal = ideal;
    div_sequence = None }

type record = {
  theta : Waveform.t;
  control : Waveform.t;
  current : Waveform.t;
  pulses : (float * float) list;
}

type mode = {
  up : bool;
  down : bool;
  ref_index : int;  (** next reference edge number *)
  div_target : float;  (** next divider threshold on the VCO phase, rad *)
  div_cycle : int;  (** divider cycles completed *)
  reset_at : float option;
      (** pending tri-state reset instant (reset-delay model) *)
}

type tag = Ref_edge | Div_edge | Reset

let run config stimulus ~t_end =
  let p = config.pll in
  let period = Pll_lib.Pll.period p in
  let n_div = p.Pll_lib.Pll.n_div in
  let fref = p.Pll_lib.Pll.fref in
  let icp = p.Pll_lib.Pll.filter.Pll_lib.Loop_filter.icp in
  let modulus =
    match config.div_sequence with Some f -> f | None -> fun _ -> n_div
  in
  let omega_vco_nom = 2.0 *. Float.pi *. n_div *. fref in
  let omega_free =
    2.0 *. Float.pi *. ((n_div *. fref) +. config.vco_freq_offset)
  in
  let kvco_rad = 2.0 *. Float.pi *. p.Pll_lib.Pll.vco.Pll_lib.Vco.v0 *. n_div *. fref in
  (* loop filter as a state-space block driven by the pump current *)
  let fss = Lti.Ss.of_tf (Pll_lib.Loop_filter.impedance p.Pll_lib.Pll.filter) in
  let nf = Lti.Ss.order fss in
  let { reset_delay; up_current_gain; leakage } = config.nonideal in
  (* the switched pump current alone drives the pulse bookkeeping;
     leakage is a constant bias on top of it *)
  let switched_current m =
    icp
    *. ((if m.up then up_current_gain else 0.0)
       -. if m.down then 1.0 else 0.0)
  in
  let cp_current m = switched_current m -. leakage in
  let control_of m y =
    let i = cp_current m in
    let x = Array.sub y 0 nf in
    Lti.Ss.output fss x i
  in
  let dynamics m t y =
    let i = cp_current m in
    let x = Array.sub y 0 nf in
    let dx = Lti.Ss.derivative fss x i in
    let u = Lti.Ss.output fss x i in
    let dphi = omega_free +. (kvco_rad *. u) +. stimulus.vco_freq_mod t in
    Array.init (nf + 1) (fun k -> if k < nf then dx.(k) else dphi)
  in
  (* reference edge k fires when t + theta_ref(t) = k*period *)
  let ref_edge_time k =
    let target = float_of_int k *. period in
    let t = ref target in
    for _ = 1 to 4 do
      t := target -. stimulus.theta_ref !t
    done;
    !t
  in
  let events =
    [
      Hybrid.Scheduled
        { tag = Ref_edge; next_time = (fun m -> Some (ref_edge_time m.ref_index)) };
      Hybrid.Guarded
        { tag = Div_edge; guard = (fun m _t y -> y.(nf) -. m.div_target) };
      Hybrid.Scheduled { tag = Reset; next_time = (fun m -> m.reset_at) };
    ]
  in
  (* pulse bookkeeping across transitions *)
  let pulse_start = ref None in
  let pulses = ref [] in
  let note_current_change t i_before i_after =
    let on x = not (Float.equal x 0.0) in
    if (not (on i_before)) && on i_after then pulse_start := Some t
    else if on i_before && not (on i_after) then begin
      match !pulse_start with
      | Some t0 ->
          pulses := (t0, Float.copy_sign (t -. t0) i_before) :: !pulses;
          pulse_start := None
      | None -> ()
    end
  in
  (* tri-state PFD: with zero reset delay an arriving edge that finds the
     opposite flip-flop high clears both immediately; with a finite delay
     both stay high and a reset fires [reset_delay] later *)
  let after_both_high t m =
    if reset_delay <= 0.0 then { m with up = false; down = false }
    else
      { m with
        up = true;
        down = true;
        reset_at =
          (match m.reset_at with
          | Some _ as pending -> pending
          | None -> Some (t +. reset_delay)) }
  in
  let transition m tag t y =
    let i_before = switched_current m in
    let m' =
      match tag with
      | Ref_edge ->
          let m =
            if m.down then after_both_high t m else { m with up = true }
          in
          { m with ref_index = m.ref_index + 1 }
      | Div_edge ->
          let m =
            if m.up then after_both_high t m else { m with down = true }
          in
          { m with
            div_target =
              m.div_target +. (2.0 *. Float.pi *. modulus (m.div_cycle + 1));
            div_cycle = m.div_cycle + 1 }
      | Reset -> { m with up = false; down = false; reset_at = None }
    in
    note_current_change t i_before (switched_current m');
    (m', y)
  in
  let model = { Hybrid.dynamics; events; transition } in
  let dt = period /. float_of_int config.steps_per_period in
  let n_samples = int_of_float (Float.round (t_end /. dt)) + 1 in
  let theta_s = Array.make n_samples 0.0 in
  let control_s = Array.make n_samples 0.0 in
  let current_s = Array.make n_samples 0.0 in
  let next_sample = ref 0 in
  let observer m t y =
    let tiny = 1e-9 *. dt in
    if !next_sample < n_samples then begin
      let ts = float_of_int !next_sample *. dt in
      if t >= ts -. tiny then begin
        theta_s.(!next_sample) <- (y.(nf) /. omega_vco_nom) -. t;
        control_s.(!next_sample) <- control_of m y;
        current_s.(!next_sample) <- cp_current m;
        incr next_sample
      end
    end
  in
  (* start phase-aligned: the t=0 ref/divider edge pair cancels exactly,
     so both schedules begin one period in *)
  let mode0 =
    {
      up = false;
      down = false;
      ref_index = 1;
      div_target = 2.0 *. Float.pi *. modulus 0;
      div_cycle = 0;
      reset_at = None;
    }
  in
  let state0 = Array.make (nf + 1) 0.0 in
  let cfg =
    { Hybrid.t0 = 0.0; t1 = t_end; dt_max = dt; observer }
  in
  let _final = Hybrid.run model cfg ~mode:mode0 ~state:state0 in
  let wf data = Waveform.create ~t0:0.0 ~dt (Array.sub data 0 !next_sample) in
  {
    theta = wf theta_s;
    control = wf control_s;
    current = wf current_s;
    pulses = List.rev !pulses;
  }
