open Numeric

type result = {
  estimate : Psd.estimate;
  predicted : float -> float;
  predicted_lti : float -> float;
}

let held_process values ~dt t =
  let i = int_of_float (t /. dt) in
  let i = Stdlib.max 0 (Stdlib.min (Array.length values - 1) i) in
  values.(i)

(* held white noise of per-step std sigma: two-sided PSD
   sigma^2 * dt * sinc^2(w dt / 2) *)
let held_psd ~sigma ~dt w =
  let shape = Special.sinc (w *. dt /. 2.0) in
  sigma *. sigma *. dt *. shape *. shape

let run_and_estimate pll ~stimulus ~periods ~steps_per_period =
  let period = Pll_lib.Pll.period pll in
  let record =
    Behavioral.run
      { (Behavioral.default_config pll) with Behavioral.steps_per_period }
      stimulus
      ~t_end:(float_of_int periods *. period)
  in
  let theta = record.Behavioral.theta in
  (* discard the lock-in transient *)
  let warmup = Stdlib.max 64 (periods / 8) * steps_per_period in
  let n = Waveform.length theta - warmup in
  let samples = Array.init n (fun i -> Waveform.value theta (warmup + i)) in
  let dt = period /. float_of_int steps_per_period in
  let segment =
    let target = Fft.next_pow2 (n / 16) in
    Stdlib.max 256 (Stdlib.min 4096 target)
  in
  Psd.welch samples ~dt ~segment

let vco_white_fm pll ~sigma_freq ~periods ?(seed = 0x5EEDL)
    ?(steps_per_period = 128) () =
  let period = Pll_lib.Pll.period pll in
  let dt = period /. float_of_int steps_per_period in
  let g = Prng.create ~seed in
  let values =
    Prng.gaussian_array g ((periods * steps_per_period) + 2) ~sigma:sigma_freq
  in
  let stimulus =
    { Behavioral.quiet with Behavioral.vco_freq_mod = held_process values ~dt }
  in
  let estimate = run_and_estimate pll ~stimulus ~periods ~steps_per_period in
  (* open-loop VCO time-shift noise: theta' = freq_mod / w_vco *)
  let w_vco = 2.0 *. Float.pi *. pll.Pll_lib.Pll.n_div *. pll.Pll_lib.Pll.fref in
  let s_vco w =
    if Float.equal w 0.0 then 0.0
    else held_psd ~sigma:sigma_freq ~dt w /. (w_vco *. w_vco *. w *. w)
  in
  (* fold far enough to cover the held process's sinc lobes *)
  let folds = 4 * steps_per_period in
  let predicted w = Pll_lib.Noise.vco_noise_out pll ~folds s_vco w in
  let predicted_lti w =
    let e = Cx.inv (Cx.add Cx.one (Pll_lib.Pll.a_of_s pll (Cx.jomega w))) in
    Cx.norm2 e *. s_vco w
  in
  { estimate; predicted; predicted_lti }

let reference_white pll ~sigma_theta ~periods ?(seed = 0xFEEDL)
    ?(steps_per_period = 128) () =
  let period = Pll_lib.Pll.period pll in
  let dt = period /. float_of_int steps_per_period in
  let g = Prng.create ~seed in
  let values =
    Prng.gaussian_array g ((periods * steps_per_period) + 2) ~sigma:sigma_theta
  in
  let stimulus =
    { Behavioral.quiet with Behavioral.theta_ref = held_process values ~dt }
  in
  let estimate = run_and_estimate pll ~stimulus ~periods ~steps_per_period in
  let s_ref w = held_psd ~sigma:sigma_theta ~dt w in
  (* the sampler sees every alias of the held noise: fold across the
     full sinc envelope *)
  let folds = 4 * steps_per_period in
  let predicted w = Pll_lib.Noise.reference_noise_out pll ~folds s_ref w in
  let predicted_lti w = Pll_lib.Noise.lti_reference_noise_out pll s_ref w in
  { estimate; predicted; predicted_lti }

let band_ratio_generic r pred ~lo ~hi =
  let measured = Psd.band_average r.estimate ~lo ~hi in
  (* average the prediction on the same bins *)
  let total = ref 0.0 and count = ref 0 in
  Array.iter
    (fun w ->
      if w >= lo && w < hi then begin
        total := !total +. pred w;
        incr count
      end)
    r.estimate.Psd.omega;
  measured /. (!total /. float_of_int !count)

let band_ratio r = band_ratio_generic r r.predicted
let band_ratio_lti r = band_ratio_generic r r.predicted_lti
