(** Fractional-N synthesis on the behavioral model.

    A ΔΣ modulator dithers the divider modulus between integers so its
    *average* is [N + frac]; the instantaneous divider error is a
    deterministic quantization waveform that the loop low-passes onto
    the output — the classic fractional spurs. This is exactly the kind
    of periodically-time-varying disturbance the paper's framework is
    about: for rational [frac = a/b] the quantization pattern repeats
    every [b] reference cycles, producing lines at multiples of [ω₀/b].

    Supported modulators: a first-order accumulator (worst spurs), and
    MASH 1-1 / MASH 1-1-1 cascades whose noise is shaped by
    [(1−z⁻¹)^{order−1}] — pushing the quantization energy out of band
    where the loop filters it. *)

type modulator = First_order | Mash2 | Mash3

type config = {
  modulator : modulator;
  n_int : int;  (** integer part of the modulus *)
  frac : float;  (** fractional part, in [0, 1) *)
}

(** [divider_sequence config] — the per-cycle modulus [N + b_k]
    (memoized; call with ascending or repeated indices freely). The
    long-run average of [b_k] is [frac] for every modulator. *)
val divider_sequence : config -> int -> float

(** [run pll config ~periods ()] — locked behavioral run with the
    dithered divider. [pll.n_div] must equal [n_int + frac] (that
    average is what the VCO lock frequency and the small-signal model
    use). @raise Invalid_argument on mismatch. *)
val run :
  Pll_lib.Pll.t -> config -> ?steps_per_period:int -> periods:int -> unit -> Behavioral.record

(** [spur_dbc record ~pll ~frac_denominator ~harmonic ~periods] — level
    (dBc, single sideband on the VCO output) of the fractional spur at
    [harmonic·ω₀/frac_denominator], correlated over the final [periods]
    reference periods ([periods] must be a multiple of
    [frac_denominator] for a leakage-free measurement). *)
val spur_dbc :
  Behavioral.record ->
  pll:Pll_lib.Pll.t ->
  frac_denominator:int ->
  harmonic:int ->
  periods:int ->
  float

(** [predicted_first_order_spur_dbc pll ~frac_denominator] — analytic
    estimate for the first-order modulator with [frac = 1/b]: the
    residual accumulator is a [b]-step sawtooth of one VCO period; its
    fundamental, shaped by [|H₀₀(jω₀/b)|], FM-modulates the carrier. *)
val predicted_first_order_spur_dbc : Pll_lib.Pll.t -> frac_denominator:int -> float
