open Numeric

type measurement = {
  omega : float;
  measured : Cx.t;
  predicted : Cx.t;
  predicted_lti : Cx.t;
  rel_err : float;
}

let default_warmup pll ~window_periods =
  (* ~6 closed-loop time constants, and at least two full windows so the
     periodic steady state is established *)
  let omega0 = Pll_lib.Pll.omega0 pll in
  let period = Pll_lib.Pll.period pll in
  let lti = Pll_lib.Pll.open_loop_tf pll in
  let wug =
    match
      Lti.Margins.unity_gain_crossover (Lti.Tf.freq_response lti)
        ~lo:(omega0 *. 1e-5) ~hi:(omega0 *. 10.0)
    with
    | Some w -> w
    | None -> omega0 /. 10.0
  in
  let settle = 6.0 *. 2.0 *. Float.pi /. wug in
  Stdlib.max (2 * window_periods) (int_of_float (ceil (settle /. period)))

(* Simulate with [stimulus], then correlate the recorded theta against
   the absolute-time carrier at [omega_m] over exactly [window_periods]
   reference periods. Because omega_m = harmonic * w0 / window_periods,
   every spectral component the LPTV loop produces (omega_m + k w0)
   completes an integer number of cycles inside the window: the
   correlation is leakage-free and isolates the baseband element. *)
let correlate pll ~stimulus ~omega_m ~eps ~warmup_periods ~window_periods
    ~steps_per_period =
  let period = Pll_lib.Pll.period pll in
  let warmup =
    match warmup_periods with
    | Some w -> w
    | None -> default_warmup pll ~window_periods
  in
  let total = warmup + window_periods in
  let record =
    Behavioral.run
      { (Behavioral.default_config pll) with Behavioral.steps_per_period }
      stimulus
      ~t_end:(float_of_int total *. period)
  in
  let theta = record.Behavioral.theta in
  let dt = period /. float_of_int steps_per_period in
  let start_index = warmup * steps_per_period in
  let n_window = window_periods * steps_per_period in
  if Waveform.length theta < start_index + n_window then
    failwith "Extract.correlate: simulation record too short";
  let samples =
    Array.init n_window (fun i -> Waveform.value theta (start_index + i))
  in
  let t_start = float_of_int warmup *. period in
  let corr = Fft.goertzel samples ~dt ~omega:omega_m in
  let corr = Cx.mul corr (Cx.cis (-.omega_m *. t_start)) in
  (* the stimulus is eps sin(w t) = Re(-j eps e^{jwt}); goertzel returns
     the complex amplitude Y of Re(Y e^{jwt}), so gain = j Y / eps *)
  let gain = Cx.scale (1.0 /. eps) (Cx.mul Cx.j corr) in
  (* a diverging time march (unstable loop, bad step size) feeds the
     correlator NaN/inf samples; report that as a typed error rather
     than letting the bogus gain flow into a comparison table *)
  if
    Robust.Config.guards_enabled ()
    && not (Float.is_finite (Cx.re gain) && Float.is_finite (Cx.im gain))
  then
    Robust.Pllscope_error.raise_
      (Non_finite { where = "Sim.Extract.correlate: measured gain" });
  gain

let check_args ~harmonic ~window_periods =
  if harmonic < 1 then invalid_arg "Extract.measure_h00: harmonic >= 1";
  if window_periods < 2 * harmonic then
    invalid_arg "Extract.measure_h00: window too short for the harmonic"

let measure_h00 pll ~harmonic ~window_periods ?warmup_periods ?eps
    ?(steps_per_period = 96) () =
  check_args ~harmonic ~window_periods;
  let period = Pll_lib.Pll.period pll in
  let omega0 = Pll_lib.Pll.omega0 pll in
  let omega_m = float_of_int harmonic *. omega0 /. float_of_int window_periods in
  let eps = match eps with Some e -> e | None -> period /. 2000.0 in
  let stimulus = Behavioral.sine_modulation ~eps ~omega:omega_m in
  let measured =
    correlate pll ~stimulus ~omega_m ~eps ~warmup_periods ~window_periods
      ~steps_per_period
  in
  let predicted = Pll_lib.Pll.h00 pll (Cx.jomega omega_m) in
  let predicted_lti = Pll_lib.Pll.h00_lti pll (Cx.jomega omega_m) in
  {
    omega = omega_m;
    measured;
    predicted;
    predicted_lti;
    rel_err = Cx.abs (Cx.sub measured predicted) /. Cx.abs predicted;
  }

let measure_error_transfer pll ~harmonic ~window_periods ?warmup_periods ?eps
    ?(steps_per_period = 96) () =
  check_args ~harmonic ~window_periods;
  let period = Pll_lib.Pll.period pll in
  let omega0 = Pll_lib.Pll.omega0 pll in
  let omega_m = float_of_int harmonic *. omega0 /. float_of_int window_periods in
  let eps = match eps with Some e -> e | None -> period /. 2000.0 in
  let stimulus = Behavioral.vco_sine_disturbance ~eps ~omega:omega_m ~pll in
  let measured =
    correlate pll ~stimulus ~omega_m ~eps ~warmup_periods ~window_periods
      ~steps_per_period
  in
  let s = Cx.jomega omega_m in
  let predicted = Cx.sub Cx.one (Pll_lib.Pll.h00 pll s) in
  let predicted_lti = Cx.inv (Cx.add Cx.one (Pll_lib.Pll.a_of_s pll s)) in
  {
    omega = omega_m;
    measured;
    predicted;
    predicted_lti;
    rel_err = Cx.abs (Cx.sub measured predicted) /. Cx.abs predicted;
  }

let sweep pll points =
  List.map
    (fun (harmonic, window_periods) ->
      measure_h00 pll ~harmonic ~window_periods ())
    points

let worst_rel_err ms =
  List.fold_left (fun acc m -> Stdlib.max acc m.rel_err) 0.0 ms
