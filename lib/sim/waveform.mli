(** Uniformly sampled waveforms recorded by the simulator. *)

type t = {
  t0 : float;
  dt : float;
  data : float array;
}

val create : t0:float -> dt:float -> float array -> t
val length : t -> int
val time_of_index : t -> int -> float
val value : t -> int -> float

(** [at w t] — linear interpolation, clamped at the ends. *)
val at : t -> float -> float

val duration : t -> float
val map : (float -> float) -> t -> t

(** [slice w ~from_time ~to_time] — the sub-waveform covering the given
    interval (snapped outward to sample boundaries). *)
val slice : t -> from_time:float -> to_time:float -> t

val max_abs : t -> float
val rms : t -> float
val to_array : t -> float array
