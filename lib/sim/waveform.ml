type t = { t0 : float; dt : float; data : float array }

let create ~t0 ~dt data =
  if dt <= 0.0 then invalid_arg "Waveform.create: dt must be positive";
  { t0; dt; data }

let length w = Array.length w.data
let time_of_index w i = w.t0 +. (float_of_int i *. w.dt)
let value w i = w.data.(i)
let at w t = Numeric.Interp.uniform ~t0:w.t0 ~dt:w.dt w.data t
let duration w = float_of_int (length w - 1) *. w.dt
let map f w = { w with data = Array.map f w.data }

let slice w ~from_time ~to_time =
  let i0 = Stdlib.max 0 (int_of_float (floor ((from_time -. w.t0) /. w.dt))) in
  let i1 =
    Stdlib.min (length w - 1)
      (int_of_float (ceil ((to_time -. w.t0) /. w.dt)))
  in
  if i1 < i0 then invalid_arg "Waveform.slice: empty interval";
  {
    t0 = time_of_index w i0;
    dt = w.dt;
    data = Array.sub w.data i0 (i1 - i0 + 1);
  }

let max_abs w = Numeric.Stats.max_abs w.data
let rms w = Numeric.Stats.rms w.data
let to_array w = Array.copy w.data
