open Numeric

type row = {
  ratio : float;
  pm_impulse : float;
  pm_sh : float;
  stable_impulse : bool;
  stable_sh : bool;
  identity_dev : float;
}

let margin_of f ~w0 =
  let r =
    Lti.Margins.analyze f ~lo:(w0 *. 1e-5) ~hi:(w0 *. 0.4999)
  in
  Option.value ~default:Float.nan r.Lti.Margins.phase_margin_deg

let compute ?(spec = Pll_lib.Design.default_spec)
    ?(ratios = [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4 ]) () =
  List.map
    (fun ratio ->
      let p = Pll_lib.Design.synthesize (Pll_lib.Design.with_ratio spec ratio) in
      let w0 = Pll_lib.Pll.omega0 p in
      let lam = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
      let lam_sh = Pll_lib.Sample_hold.lambda_fn p Pll_lib.Pll.Exact in
      let dm = Pll_lib.Sample_hold.discretize p in
      let probe = 0.23 *. w0 in
      let exact = lam_sh (Cx.jomega probe) in
      let z = Pll_lib.Sample_hold.open_loop_response dm probe in
      {
        ratio;
        pm_impulse = margin_of (fun w -> lam (Cx.jomega w)) ~w0;
        pm_sh = margin_of (fun w -> lam_sh (Cx.jomega w)) ~w0;
        stable_impulse = Pll_lib.Analysis.is_stable_tv p;
        stable_sh = Pll_lib.Sample_hold.is_stable p;
        identity_dev = Cx.abs (Cx.sub exact z) /. Cx.abs exact;
      })
    ratios

let print ppf rows =
  Report.section ppf "PFD: impulse charge pump vs sample-and-hold detector";
  Report.table ppf
    ~title:"phase margin of the effective open loop, per detector type"
    ~header:
      [ "w_UG/w0"; "PM impulse"; "PM S&H"; "stable imp"; "stable S&H"; "zoh identity dev" ]
    (List.map
       (fun r ->
         [
           Report.g r.ratio;
           Report.f3 r.pm_impulse;
           Report.f3 r.pm_sh;
           Report.yn r.stable_impulse;
           Report.yn r.stable_sh;
           Printf.sprintf "%.1e" r.identity_dev;
         ])
       rows)

let run () = print Format.std_formatter (compute ())
