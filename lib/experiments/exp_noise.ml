type row = {
  injection : string;
  band_lo : float;
  band_hi : float;
  measured : float;
  ratio_tv : float;
  ratio_lti : float;
}

let rows_of r ~injection ~w0 bands =
  List.map
    (fun (band_lo, band_hi) ->
      let lo = band_lo *. w0 and hi = band_hi *. w0 in
      {
        injection;
        band_lo;
        band_hi;
        measured = Numeric.Psd.band_average r.Sim.Noise_run.estimate ~lo ~hi;
        ratio_tv = Sim.Noise_run.band_ratio r ~lo ~hi;
        ratio_lti = Sim.Noise_run.band_ratio_lti r ~lo ~hi;
      })
    bands

let compute ?(spec = Pll_lib.Design.default_spec) ?(periods = 2048) () =
  let pll = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 pll in
  let period = Pll_lib.Pll.period pll in
  let vco = Sim.Noise_run.vco_white_fm pll ~sigma_freq:(w0 *. 1e-4) ~periods () in
  let reference =
    Sim.Noise_run.reference_white pll ~sigma_theta:(period /. 1e5) ~periods ()
  in
  rows_of vco ~injection:"VCO white FM" ~w0
    [ (0.02, 0.1); (0.1, 0.3); (0.3, 0.49) ]
  @ rows_of reference ~injection:"reference white" ~w0
      [ (0.01, 0.05); (0.05, 0.2); (0.2, 0.45) ]

let print ppf rows =
  Report.section ppf "NOISE: Monte-Carlo PSD vs spectral predictions";
  Report.table ppf
    ~title:"band-averaged output PSD: measured / predicted"
    ~header:[ "injection"; "band (w/w0)"; "measured PSD"; "vs TV"; "vs LTI" ]
    (List.map
       (fun r ->
         [
           r.injection;
           Printf.sprintf "%.2f..%.2f" r.band_lo r.band_hi;
           Printf.sprintf "%.3e" r.measured;
           Printf.sprintf "%.3f" r.ratio_tv;
           Printf.sprintf "%.1f" r.ratio_lti;
         ])
       rows);
  Format.fprintf ppf
    "(vs TV ~ 1: the time-varying model predicts the measured spectrum;@.";
  Format.fprintf ppf
    " vs LTI >> 1 for reference noise: folding dominates and LTI misses it.)@."

let run () = print Format.std_formatter (compute ())
