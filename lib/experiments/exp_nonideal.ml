type row = {
  label : string;
  measured_offset : float;
  predicted_offset : float;
  ripple : float;
  spur_dbc : float;
  spur_pred_dbc : float;
}

let steady_offset record ~period ~periods =
  let theta = record.Sim.Behavioral.theta in
  let t1 =
    Sim.Waveform.time_of_index theta (Sim.Waveform.length theta - 1)
  in
  let s =
    Sim.Waveform.slice theta
      ~from_time:(t1 -. (float_of_int periods *. period))
      ~to_time:t1
  in
  Numeric.Stats.mean (Sim.Waveform.to_array s)

let predicted ~icp ~period nonideal =
  let g = nonideal.Sim.Behavioral.up_current_gain in
  let mismatch_term =
    if g >= 1.0 then (g -. 1.0) *. nonideal.Sim.Behavioral.reset_delay
    else (g -. 1.0) *. nonideal.Sim.Behavioral.reset_delay /. g
  in
  let leakage_term =
    -.nonideal.Sim.Behavioral.leakage *. period /. (g *. icp)
  in
  mismatch_term +. leakage_term

let compute ?(spec = Pll_lib.Design.default_spec) () =
  let pll = Pll_lib.Design.synthesize spec in
  let period = Pll_lib.Pll.period pll in
  let icp = spec.Pll_lib.Design.icp in
  let kvco = spec.Pll_lib.Design.kvco in
  let run label nonideal =
    let record =
      Sim.Transient.locked_run pll ~nonideal ~steps_per_period:96 ~periods:300 ()
    in
    let v1 =
      Sim.Transient.periodic_component record.Sim.Behavioral.control ~period
        ~periods:40 ~harmonic:1
    in
    let beta_pred =
      2.0 *. Float.pi *. kvco *. Numeric.Cx.abs v1 /. Pll_lib.Pll.omega0 pll
    in
    {
      label;
      measured_offset = steady_offset record ~period ~periods:40;
      predicted_offset = predicted ~icp ~period nonideal;
      ripple = Sim.Transient.steady_state_ripple record ~period ~periods:40;
      spur_dbc = Sim.Transient.reference_spur_dbc record ~pll ~periods:40;
      spur_pred_dbc = 20.0 *. log10 (beta_pred /. 2.0);
    }
  in
  let ideal = Sim.Behavioral.ideal in
  [
    run "ideal" ideal;
    run "reset delay T/50, matched"
      { ideal with Sim.Behavioral.reset_delay = period /. 50.0 };
    run "leakage 1% of Icp"
      { ideal with Sim.Behavioral.leakage = 0.01 *. icp };
    run "mismatch +10%, delay T/50"
      {
        ideal with
        Sim.Behavioral.up_current_gain = 1.1;
        reset_delay = period /. 50.0;
      };
    run "mismatch -10%, delay T/50"
      {
        ideal with
        Sim.Behavioral.up_current_gain = 0.9;
        reset_delay = period /. 50.0;
      };
    run "all combined"
      {
        Sim.Behavioral.up_current_gain = 1.1;
        reset_delay = period /. 50.0;
        leakage = 0.01 *. icp;
      };
  ]

let print ppf rows =
  Report.section ppf "NONIDEAL: charge-pump non-idealities vs first-order theory";
  let dbc x = if x < -200.0 then "< -200" else Printf.sprintf "%.1f" x in
  Report.table ppf
    ~title:"static phase offset, control ripple and reference spur"
    ~header:
      [ "case"; "measured offset"; "predicted"; "ripple p-p (V)";
        "spur dBc (theta)"; "spur dBc (ripple)" ]
    (List.map
       (fun r ->
         [
           r.label;
           Printf.sprintf "%+.3e" r.measured_offset;
           Printf.sprintf "%+.3e" r.predicted_offset;
           Printf.sprintf "%.3e" r.ripple;
           dbc r.spur_dbc;
           dbc r.spur_pred_dbc;
         ])
       rows)

let run () = print Format.std_formatter (compute ())

(* ------------------------------------------------------------------ *)
(* Monte Carlo component-tolerance study                               *)

(* The deterministic cases above validate the first-order theory point
   by point against the behavioral simulator; the Monte Carlo study
   turns that theory around and sweeps it over component tolerances at
   farm scale. Each point perturbs the charge pump (current, UP/DOWN
   mismatch, leakage, reset delay), the VCO gain and the loop-filter
   impedance, then evaluates the *analytic* first-order signatures —
   static offset, reference spur via narrowband FM, loop-gain error.
   Every draw comes from a Prng seeded purely by (config seed, point
   index), so point i's value is independent of evaluation order,
   sharding and process boundaries — the property the farm's
   bit-identity guarantee rests on. *)

type mc_config = {
  mc_seed : int;
  tol_icp : float;
  tol_kvco : float;
  tol_mismatch : float;
  tol_filter : float;
  max_reset_delay : float;
  max_leakage : float;
}

let default_mc =
  {
    mc_seed = 1;
    tol_icp = 0.05;
    tol_kvco = 0.10;
    tol_mismatch = 0.05;
    tol_filter = 0.05;
    max_reset_delay = 0.02;
    max_leakage = 0.01;
  }

type mc_env = {
  mc_period : float;
  mc_omega0 : float;
  mc_icp : float;
  mc_kvco : float;
  mc_zmag0 : float;
  mc_cfg : mc_config;
}

let mc_env ?(spec = Pll_lib.Design.default_spec) cfg =
  let pll = Pll_lib.Design.synthesize spec in
  let omega0 = Pll_lib.Pll.omega0 pll in
  let z = Pll_lib.Loop_filter.impedance pll.Pll_lib.Pll.filter in
  {
    mc_period = Pll_lib.Pll.period pll;
    mc_omega0 = omega0;
    mc_icp = spec.Pll_lib.Design.icp;
    mc_kvco = spec.Pll_lib.Design.kvco;
    mc_zmag0 = Numeric.Cx.abs (Lti.Tf.freq_response z omega0);
    mc_cfg = cfg;
  }

type mc_row = { mc_offset : float; mc_spur_dbc : float; mc_gain_err_pct : float }

(* Fixed-point-free 64-bit mix of (index, seed): the golden-ratio
   SplitMix64 increment keeps neighbouring indices' streams decorrelated
   even though the Prng itself is seeded sequentially. *)
let mc_point_seed cfg i =
  Int64.add
    (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
    (Int64.of_int cfg.mc_seed)

let mc_point env i =
  if i < 0 then invalid_arg "Exp_nonideal.mc_point: negative index";
  let cfg = env.mc_cfg in
  let g = Numeric.Prng.create ~seed:(mc_point_seed cfg i) in
  let icp_f = 1.0 +. (cfg.tol_icp *. Numeric.Prng.gaussian g) in
  let kvco_f = 1.0 +. (cfg.tol_kvco *. Numeric.Prng.gaussian g) in
  (* floor the multiplicative factors: a >5-sigma draw must not flip a
     sign or divide by ~0 in the first-order formulas *)
  let icp_f = Float.max 0.1 icp_f in
  let kvco_f = Float.max 0.1 kvco_f in
  let gain =
    Float.max 0.1 (1.0 +. (cfg.tol_mismatch *. Numeric.Prng.gaussian g))
  in
  let tau =
    env.mc_period *. Numeric.Prng.uniform g ~lo:0.0 ~hi:cfg.max_reset_delay
  in
  let icp = env.mc_icp *. icp_f in
  let leak = icp *. Numeric.Prng.uniform g ~lo:0.0 ~hi:cfg.max_leakage in
  let z_f =
    Float.max 0.1 (1.0 +. (cfg.tol_filter *. Numeric.Prng.gaussian g))
  in
  let nonideal =
    { Sim.Behavioral.up_current_gain = gain; reset_delay = tau; leakage = leak }
  in
  let mc_offset = predicted ~icp ~period:env.mc_period nonideal in
  (* reference spur by narrowband FM from the first ripple harmonic:
     the net per-cycle charge error (mismatch during reset + leakage
     over the period) drives the filter impedance at f_ref *)
  let dq_mismatch = Float.abs (gain -. 1.0) *. icp *. tau in
  let dq_leak = leak *. env.mc_period in
  let i1 = (dq_mismatch +. dq_leak) /. env.mc_period in
  let v1 = env.mc_zmag0 *. z_f *. i1 in
  let beta = 2.0 *. Float.pi *. env.mc_kvco *. kvco_f *. v1 /. env.mc_omega0 in
  let mc_spur_dbc =
    if beta <= 0.0 then -200.0
    else Float.max (-200.0) (20.0 *. log10 (beta /. 2.0))
  in
  let mc_gain_err_pct = ((icp_f *. kvco_f *. z_f) -. 1.0) *. 100.0 in
  { mc_offset; mc_spur_dbc; mc_gain_err_pct }

type mc_summary = {
  mc_points : int;
  mc_failed : int;
  offset_mean : float;
  offset_std : float;
  offset_worst : float;
  spur_mean_dbc : float;
  spur_worst_dbc : float;
  gain_err_std_pct : float;
  yield_pct : float;
}

(* Yield criterion: static offset under 1% of a reference period and
   reference spur under -40 dBc — arbitrary but fixed, so the number is
   comparable across runs and configs. *)
let mc_pass env r =
  Float.abs r.mc_offset < 0.01 *. env.mc_period && r.mc_spur_dbc < -40.0

let mc_summarize env rows =
  let ok = ref [] in
  let failed = ref 0 in
  Array.iter
    (fun r -> match r with Some r -> ok := r :: !ok | None -> incr failed)
    rows;
  let ok = Array.of_list (List.rev !ok) in
  let n = Array.length ok in
  if n = 0 then
    {
      mc_points = Array.length rows;
      mc_failed = !failed;
      offset_mean = 0.0;
      offset_std = 0.0;
      offset_worst = 0.0;
      spur_mean_dbc = -200.0;
      spur_worst_dbc = -200.0;
      gain_err_std_pct = 0.0;
      yield_pct = 0.0;
    }
  else begin
    let offsets = Array.map (fun r -> r.mc_offset) ok in
    let spurs = Array.map (fun r -> r.mc_spur_dbc) ok in
    let gains = Array.map (fun r -> r.mc_gain_err_pct) ok in
    let passes =
      Array.fold_left (fun a r -> if mc_pass env r then a + 1 else a) 0 ok
    in
    {
      mc_points = Array.length rows;
      mc_failed = !failed;
      offset_mean = Numeric.Stats.mean offsets;
      offset_std = Numeric.Stats.std_dev offsets;
      offset_worst = Numeric.Stats.max_abs offsets;
      spur_mean_dbc = Numeric.Stats.mean spurs;
      spur_worst_dbc = Array.fold_left Float.max neg_infinity spurs;
      gain_err_std_pct = Numeric.Stats.std_dev gains;
      yield_pct = 100.0 *. float_of_int passes /. float_of_int n;
    }
  end

let mc_print ppf s =
  Report.section ppf "NONIDEAL-MC: component-tolerance Monte Carlo";
  let dbc x = if x < -200.0 +. 0.5 then "< -200" else Printf.sprintf "%.1f" x in
  Report.table ppf ~title:"first-order signatures over process spread"
    ~header:[ "metric"; "value" ]
    [
      [ "points"; string_of_int s.mc_points ];
      [ "failed points"; string_of_int s.mc_failed ];
      [ "offset mean (s)"; Printf.sprintf "%+.3e" s.offset_mean ];
      [ "offset sigma (s)"; Printf.sprintf "%.3e" s.offset_std ];
      [ "offset worst |.| (s)"; Printf.sprintf "%.3e" s.offset_worst ];
      [ "spur mean (dBc)"; dbc s.spur_mean_dbc ];
      [ "spur worst (dBc)"; dbc s.spur_worst_dbc ];
      [ "loop-gain sigma (%)"; Printf.sprintf "%.2f" s.gain_err_std_pct ];
      [ "yield (%)"; Printf.sprintf "%.2f" s.yield_pct ];
    ]
