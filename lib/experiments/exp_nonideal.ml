type row = {
  label : string;
  measured_offset : float;
  predicted_offset : float;
  ripple : float;
  spur_dbc : float;
  spur_pred_dbc : float;
}

let steady_offset record ~period ~periods =
  let theta = record.Sim.Behavioral.theta in
  let t1 =
    Sim.Waveform.time_of_index theta (Sim.Waveform.length theta - 1)
  in
  let s =
    Sim.Waveform.slice theta
      ~from_time:(t1 -. (float_of_int periods *. period))
      ~to_time:t1
  in
  Numeric.Stats.mean (Sim.Waveform.to_array s)

let predicted ~icp ~period nonideal =
  let g = nonideal.Sim.Behavioral.up_current_gain in
  let mismatch_term =
    if g >= 1.0 then (g -. 1.0) *. nonideal.Sim.Behavioral.reset_delay
    else (g -. 1.0) *. nonideal.Sim.Behavioral.reset_delay /. g
  in
  let leakage_term =
    -.nonideal.Sim.Behavioral.leakage *. period /. (g *. icp)
  in
  mismatch_term +. leakage_term

let compute ?(spec = Pll_lib.Design.default_spec) () =
  let pll = Pll_lib.Design.synthesize spec in
  let period = Pll_lib.Pll.period pll in
  let icp = spec.Pll_lib.Design.icp in
  let kvco = spec.Pll_lib.Design.kvco in
  let run label nonideal =
    let record =
      Sim.Transient.locked_run pll ~nonideal ~steps_per_period:96 ~periods:300 ()
    in
    let v1 =
      Sim.Transient.periodic_component record.Sim.Behavioral.control ~period
        ~periods:40 ~harmonic:1
    in
    let beta_pred =
      2.0 *. Float.pi *. kvco *. Numeric.Cx.abs v1 /. Pll_lib.Pll.omega0 pll
    in
    {
      label;
      measured_offset = steady_offset record ~period ~periods:40;
      predicted_offset = predicted ~icp ~period nonideal;
      ripple = Sim.Transient.steady_state_ripple record ~period ~periods:40;
      spur_dbc = Sim.Transient.reference_spur_dbc record ~pll ~periods:40;
      spur_pred_dbc = 20.0 *. log10 (beta_pred /. 2.0);
    }
  in
  let ideal = Sim.Behavioral.ideal in
  [
    run "ideal" ideal;
    run "reset delay T/50, matched"
      { ideal with Sim.Behavioral.reset_delay = period /. 50.0 };
    run "leakage 1% of Icp"
      { ideal with Sim.Behavioral.leakage = 0.01 *. icp };
    run "mismatch +10%, delay T/50"
      {
        ideal with
        Sim.Behavioral.up_current_gain = 1.1;
        reset_delay = period /. 50.0;
      };
    run "mismatch -10%, delay T/50"
      {
        ideal with
        Sim.Behavioral.up_current_gain = 0.9;
        reset_delay = period /. 50.0;
      };
    run "all combined"
      {
        Sim.Behavioral.up_current_gain = 1.1;
        reset_delay = period /. 50.0;
        leakage = 0.01 *. icp;
      };
  ]

let print ppf rows =
  Report.section ppf "NONIDEAL: charge-pump non-idealities vs first-order theory";
  let dbc x = if x < -200.0 then "< -200" else Printf.sprintf "%.1f" x in
  Report.table ppf
    ~title:"static phase offset, control ripple and reference spur"
    ~header:
      [ "case"; "measured offset"; "predicted"; "ripple p-p (V)";
        "spur dBc (theta)"; "spur dBc (ripple)" ]
    (List.map
       (fun r ->
         [
           r.label;
           Printf.sprintf "%+.3e" r.measured_offset;
           Printf.sprintf "%+.3e" r.predicted_offset;
           Printf.sprintf "%.3e" r.ripple;
           dbc r.spur_dbc;
           dbc r.spur_pred_dbc;
         ])
       rows)

let run () = print Format.std_formatter (compute ())
