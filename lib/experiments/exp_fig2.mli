(** FIG2 — signal transfer between frequency bands (paper Fig. 2).

    The paper's Fig. 2 is a sketch of how [H_{n,m}(jω)] moves signal
    content between the bands around the harmonics of ω₀. Here it is
    made quantitative: the magnitude map of the closed-loop HTM of the
    reference design at a baseband offset, computed twice —

    - from the rank-one closed form (eq. 36), and
    - from the generic truncated matrix closed loop
      [(I+G)^{-1}G] (eq. 28, LU solve)

    — with the agreement between the two reported, plus the rank of the
    sampling-PFD HTM (exactly 1: sampling aliases everything
    everywhere). *)

type t = {
  harmonics : int;  (** map covers n, m in [-harmonics, harmonics] *)
  omega_frac : float;  (** evaluation offset, fraction of ω₀ *)
  closed_form : float array array;  (** |H_{n,m}| from eq. 36 *)
  generic : float array array;  (** |H_{n,m}| from the LU closed loop *)
  max_rel_dev : float;  (** worst elementwise deviation *)
  sampler_rank : int;
}

val compute :
  ?spec:Pll_lib.Design.spec -> ?harmonics:int -> ?n_harm:int -> ?omega_frac:float -> unit -> t

val print : Format.formatter -> t -> unit
val run : unit -> unit
