(** PFD — detector-type comparison (the paper's "extension to arbitrary
    PFDs is possible", made quantitative).

    The impulse-train charge-pump PFD (the paper's §3.1) and a
    sample-and-hold detector are both rank-one samplers, so the same
    closed-form machinery analyzes both. The comparison shows two
    distinct failure modes of fast sampled loops:

    - the charge pump keeps its margin longer but hits the Gardner
      bound abruptly (collapse near ω_UG/ω₀ ≈ 0.28 for the 55° design);
    - the hold's T/2 latency costs ≈18° of margin already at ratio 0.1,
      but its sinc rolloff attenuates the aliased gain, so degradation
      is gradual.

    Each row also re-verifies the impulse-invariance identity
    [L_sh(e^{jωT}) = λ_sh(jω)] on the sample-and-hold loop. *)

type row = {
  ratio : float;
  pm_impulse : float;  (** PM of λ (charge pump), deg; NaN if gone *)
  pm_sh : float;  (** PM of λ_sh (sample-and-hold), deg *)
  stable_impulse : bool;
  stable_sh : bool;
  identity_dev : float;  (** |λ_sh − L_sh(e^{jωT})| / |λ_sh| at a probe *)
}

val compute : ?spec:Pll_lib.Design.spec -> ?ratios:float list -> unit -> row list
val print : Format.formatter -> row list -> unit
val run : unit -> unit
