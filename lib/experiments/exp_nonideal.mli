(** NONIDEAL — charge-pump/PFD non-idealities in the behavioral model.

    The small-signal HTM theory assumes an ideal sampler; a real
    charge-pump PFD has a tri-state reset delay, UP/DOWN current
    mismatch and control-node leakage. This experiment measures their
    classic signatures on the time-marching model and checks each
    against its first-order analytic prediction:

    - {b leakage}: the loop must replace the leaked charge every cycle,
      so in lock a static error pulse of width
      [w = leakage·T / I_cp] remains — a static phase offset of the
      same [w] seconds (plus a reference spur from the periodic pulse).
    - {b mismatch + reset delay}: during the reset window both sources
      fight; the net charge [(g−1)·I_cp·t_delay] must be cancelled by a
      static error pulse — offset [≈ (g−1)·t_delay] to first order.
    - {b reset delay alone} (matched currents): no offset — the
      anti-dead-zone pulse pair is charge-neutral. *)

type row = {
  label : string;
  measured_offset : float;  (** steady-state θ, seconds *)
  predicted_offset : float;  (** first-order analytic value *)
  ripple : float;  (** peak-to-peak control ripple in lock, V *)
  spur_dbc : float;
      (** first reference spur on the VCO output, dBc, measured from the
          periodic component of the simulated time shift (−∞ when no
          periodic disturbance remains) *)
  spur_pred_dbc : float;
      (** the same spur predicted independently from the control-voltage
          ripple line by narrowband FM: [β = 2π·K_vco·|v₁|/ω₀] *)
}

val compute : ?spec:Pll_lib.Design.spec -> unit -> row list
val print : Format.formatter -> row list -> unit
val run : unit -> unit

(** {1 Monte Carlo component-tolerance study}

    The farm-scale showcase workload: per-point, perturb the charge
    pump (current, mismatch, leakage, reset delay), VCO gain and
    loop-filter impedance, and evaluate the {b analytic} first-order
    signatures validated by {!compute} — no time-marching simulation,
    so a point costs microseconds and 10⁶-point studies are practical.

    Determinism: {!mc_point}'s value depends only on the environment
    and the point index — its Prng is seeded from
    [(config seed, index)] alone — so any execution order, sharding or
    process split produces bit-identical rows. *)

type mc_config = {
  mc_seed : int;  (** base seed mixed into every point's stream *)
  tol_icp : float;  (** relative 1σ of the pump current *)
  tol_kvco : float;  (** relative 1σ of the VCO gain *)
  tol_mismatch : float;  (** 1σ of the UP/DOWN current gain around 1 *)
  tol_filter : float;  (** relative 1σ of the filter impedance *)
  max_reset_delay : float;  (** reset delay uniform in [0, max]·T *)
  max_leakage : float;  (** leakage uniform in [0, max]·I_cp *)
}

val default_mc : mc_config

(** Precomputed nominal operating point (period, ω₀, |Z_LF(jω₀)|, …);
    build once, share across points. *)
type mc_env

(** [mc_env ?spec cfg] — synthesize the nominal loop for [spec] and
    freeze the quantities every Monte Carlo point needs. *)
val mc_env : ?spec:Pll_lib.Design.spec -> mc_config -> mc_env

(** One sampled outcome. Plain floats — Marshal-safe, so rows can ride
    checkpoint journals and farm pipes. *)
type mc_row = {
  mc_offset : float;  (** first-order static phase offset, s *)
  mc_spur_dbc : float;  (** narrowband-FM reference spur, clamped ≥ −200 *)
  mc_gain_err_pct : float;  (** loop-gain error vs nominal, percent *)
}

(** [mc_point_seed cfg i] — the 64-bit Prng seed of point [i]
    (SplitMix64 golden-ratio mix), exposed for tests. *)
val mc_point_seed : mc_config -> int -> int64

(** [mc_point env i] — the deterministic outcome of point [i]. Raises
    [Invalid_argument] on a negative index. *)
val mc_point : mc_env -> int -> mc_row

type mc_summary = {
  mc_points : int;
  mc_failed : int;  (** points lost to worker failure / cancellation *)
  offset_mean : float;
  offset_std : float;
  offset_worst : float;  (** max |offset| *)
  spur_mean_dbc : float;
  spur_worst_dbc : float;
  gain_err_std_pct : float;
  yield_pct : float;
      (** share with |offset| < T/100 and spur < −40 dBc *)
}

(** [mc_summarize env rows] — reduce per-point rows ([None] = failed
    point) to the summary statistics. *)
val mc_summarize : mc_env -> mc_row option array -> mc_summary

val mc_print : Format.formatter -> mc_summary -> unit
