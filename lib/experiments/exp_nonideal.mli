(** NONIDEAL — charge-pump/PFD non-idealities in the behavioral model.

    The small-signal HTM theory assumes an ideal sampler; a real
    charge-pump PFD has a tri-state reset delay, UP/DOWN current
    mismatch and control-node leakage. This experiment measures their
    classic signatures on the time-marching model and checks each
    against its first-order analytic prediction:

    - {b leakage}: the loop must replace the leaked charge every cycle,
      so in lock a static error pulse of width
      [w = leakage·T / I_cp] remains — a static phase offset of the
      same [w] seconds (plus a reference spur from the periodic pulse).
    - {b mismatch + reset delay}: during the reset window both sources
      fight; the net charge [(g−1)·I_cp·t_delay] must be cancelled by a
      static error pulse — offset [≈ (g−1)·t_delay] to first order.
    - {b reset delay alone} (matched currents): no offset — the
      anti-dead-zone pulse pair is charge-neutral. *)

type row = {
  label : string;
  measured_offset : float;  (** steady-state θ, seconds *)
  predicted_offset : float;  (** first-order analytic value *)
  ripple : float;  (** peak-to-peak control ripple in lock, V *)
  spur_dbc : float;
      (** first reference spur on the VCO output, dBc, measured from the
          periodic component of the simulated time shift (−∞ when no
          periodic disturbance remains) *)
  spur_pred_dbc : float;
      (** the same spur predicted independently from the control-voltage
          ripple line by narrowband FM: [β = 2π·K_vco·|v₁|/ω₀] *)
}

val compute : ?spec:Pll_lib.Design.spec -> unit -> row list
val print : Format.formatter -> row list -> unit
val run : unit -> unit
