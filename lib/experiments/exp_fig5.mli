(** FIG5 — typical open-loop characteristic [A(jω)] (paper Fig. 5).

    Three poles (two at DC) and one zero; frequency axis normalized to
    the unity-gain frequency. The shape depends only on the designed
    phase margin (through γ), not on the absolute loop speed — which is
    why the paper can reuse one characteristic for all experiments. *)

type row = {
  omega_norm : float;  (** ω/ω_UG *)
  mag_db : float;
  phase_deg : float;
}

val compute :
  ?spec:Pll_lib.Design.spec ->
  ?points:int ->
  ?pool:Parallel.Pool.t ->
  unit ->
  row list

(** Invariant checks usable by the test suite: magnitude slope is
    −40 dB/dec at both ends, −20 dB/dec near crossover; phase peaks at
    crossover. *)
val print : Format.formatter -> row list -> unit

val run : unit -> unit
