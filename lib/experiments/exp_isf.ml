open Numeric

type row = {
  isf_ratio : float;
  h00_mag : float;
  h00_ti_mag : float;
  deviation : float;
  sideband_up : float;
  lu_agreement : float;
}

let compute ?(spec = Pll_lib.Design.default_spec) ?(omega_frac = 0.15)
    ?(n_harm = 30) () =
  let base = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 base in
  let s = Cx.jomega (omega_frac *. w0) in
  let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
  let c0 = Htm_core.Htm.index_of_harmonic ctx 0 in
  let h00_ti = Cmat.get (Pll_lib.Pll.closed_loop_rank_one ctx base s) c0 c0 in
  List.map
    (fun isf_ratio ->
      let vco =
        if Float.equal isf_ratio 0.0 then base.Pll_lib.Pll.vco
        else
          Pll_lib.Vco.with_isf ~kvco:spec.Pll_lib.Design.kvco
            ~n_div:spec.Pll_lib.Design.n_div ~fref:spec.Pll_lib.Design.fref
            ~harmonics:[ Cx.of_float isf_ratio ]
      in
      let p =
        Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
          ~n_div:spec.Pll_lib.Design.n_div ~filter:base.Pll_lib.Pll.filter
          ~vco ()
      in
      let m = Pll_lib.Pll.closed_loop_rank_one ctx p s in
      let h00 = Cmat.get m c0 c0 in
      let sideband = Cmat.get m (c0 + 1) c0 in
      (* consistency: LU closed loop on a smaller truncation *)
      let ctx_s = Htm_core.Htm.ctx ~n_harm:15 ~omega0:w0 in
      let cs = Htm_core.Htm.index_of_harmonic ctx_s 0 in
      let lu =
        Cmat.get
          (Htm_core.Htm.to_matrix ctx_s (Pll_lib.Pll.closed_loop_htm p) s)
          cs cs
      in
      let rank_one_small =
        Cmat.get (Pll_lib.Pll.closed_loop_rank_one ctx_s p s) cs cs
      in
      {
        isf_ratio;
        h00_mag = Cx.abs h00;
        h00_ti_mag = Cx.abs h00_ti;
        deviation = Cx.abs (Cx.sub h00 h00_ti) /. Cx.abs h00_ti;
        sideband_up = Cx.abs sideband;
        lu_agreement =
          Cx.abs (Cx.sub lu rank_one_small) /. Cx.abs rank_one_small;
      })
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ]

let print ppf rows =
  Report.section ppf "ISF: time-varying VCO (first-harmonic sweep)";
  Report.table ppf
    ~title:"closed loop with VCO ISF harmonics (rank-one closure, eq. 29-34)"
    ~header:
      [ "|v1|/v0"; "|H00| tv"; "|H00| ti"; "deviation"; "|H_{1,0}| sideband"; "LU dev" ]
    (List.map
       (fun r ->
         [
           Report.g r.isf_ratio;
           Report.f4 r.h00_mag;
           Report.f4 r.h00_ti_mag;
           Printf.sprintf "%.3e" r.deviation;
           Printf.sprintf "%.4f" r.sideband_up;
           Printf.sprintf "%.1e" r.lu_agreement;
         ])
       rows)

let run () = print Format.std_formatter (compute ())
