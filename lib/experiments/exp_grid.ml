open Numeric

type row = {
  s_frac : float;  (** ω / ω₀ *)
  h00_planned : Cx.t;
  closed_form_dev : float;  (** vs the exact H₀₀ of eq. 38 *)
  per_point_dev : float;  (** vs the per-point structured evaluation *)
  oracle_dev : float;  (** full matrix vs the dense oracle, max entry *)
}

type t = {
  n_harm : int;
  root_shape : string;
  rows : row list;
  grid_points : int;
  grid_oracle_max_dev : float;  (** max over the whole grid, all entries *)
  metrics_closed : Pll_lib.Analysis.closed_loop_metrics;
  metrics_htm : Pll_lib.Analysis.closed_loop_metrics;
}

let shape_name : Htm_core.Smat.shape_t -> string = function
  | `Diag -> "diag"
  | `Band k -> Printf.sprintf "band(%d)" k
  | `Rank1 -> "rank1"
  | `Dense -> "dense"

let max_entry_dev a b =
  let n = Cmat.rows a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let d = Cx.abs (Cx.sub (Cmat.get a i k) (Cmat.get b i k)) in
      if d > !acc then acc := d
    done
  done;
  !acc

let compute ?(spec = Pll_lib.Design.default_spec) ?(n_harm = 12) () =
  let p = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 p in
  let c = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
  let cl = Pll_lib.Pll.closed_loop_htm p in
  let plan = Pll_lib.Pll.closed_loop_plan c p in
  let h00 = Pll_lib.Pll.h00_fn p Pll_lib.Pll.Exact in
  let fracs = [ 0.03; 0.11; 0.23; 0.37; 0.47 ] in
  let rows =
    List.map
      (fun s_frac ->
        let s = Cx.jomega (s_frac *. w0) in
        let planned = Htm_core.Plan.baseband plan s in
        let per_point = Htm_core.Htm.element c cl ~n:0 ~m:0 s in
        let planned_mat = Htm_core.Plan.to_cmat plan s in
        let oracle = Htm_core.Htm.to_matrix_dense c cl s in
        {
          s_frac;
          h00_planned = planned;
          closed_form_dev = Cx.abs (Cx.sub planned (h00 s));
          per_point_dev = Cx.abs (Cx.sub planned per_point);
          oracle_dev = max_entry_dev planned_mat oracle;
        })
      fracs
  in
  (* whole-grid equivalence sweep: planned evaluation of a log grid
     against the dense oracle at every point *)
  let grid_points = 64 in
  let ss =
    Array.map Cx.jomega (Optimize.logspace (w0 *. 1e-4) (w0 *. 0.49) grid_points)
  in
  let planned_grid = Htm_core.Plan.run_grid plan ss in
  let grid_oracle_max_dev =
    Array.to_list planned_grid
    |> List.mapi (fun i m ->
           max_entry_dev m (Htm_core.Htm.to_matrix_dense c cl ss.(i)))
    |> List.fold_left Stdlib.max 0.0
  in
  {
    n_harm;
    root_shape = shape_name (Htm_core.Plan.root_shape plan);
    rows;
    grid_points;
    grid_oracle_max_dev;
    metrics_closed = Pll_lib.Analysis.closed_loop_metrics p;
    metrics_htm = Pll_lib.Analysis.closed_loop_metrics_htm ~n_harm p;
  }

let print ppf r =
  Report.section ppf "GRID: plan/execute HTM evaluation vs per-point paths";
  Report.kv ppf "truncation" "n_harm = %d (dim %d)" r.n_harm ((2 * r.n_harm) + 1);
  Report.kv ppf "planned root shape" "%s" r.root_shape;
  Report.table ppf ~title:"closed-loop H00: planned vs closed form vs oracle"
    ~header:[ "w/w0"; "|H00|"; "dev eq.38"; "dev per-point"; "dev oracle" ]
    (List.map
       (fun row ->
         [
           Report.f3 row.s_frac;
           Report.g (Cx.abs row.h00_planned);
           Report.g row.closed_form_dev;
           Report.g row.per_point_dev;
           Report.g row.oracle_dev;
         ])
       r.rows);
  Report.kv ppf "grid sweep" "%d points, max |planned - dense oracle| = %s"
    r.grid_points
    (Report.g r.grid_oracle_max_dev);
  let m_row label (m : Pll_lib.Analysis.closed_loop_metrics) =
    [
      label;
      Report.g m.dc_mag;
      Printf.sprintf "%.3f" m.peak_db;
      (match m.bandwidth_3db with Some b -> Report.g b | None -> "n/a");
    ]
  in
  Report.table ppf ~title:"closed-loop metrics: closed form vs planned HTM grid"
    ~header:[ "path"; "dc |H00|"; "peak dB"; "bw3dB rad/s" ]
    [
      m_row "closed form (eq. 38)" r.metrics_closed;
      m_row "planned HTM grid" r.metrics_htm;
    ]

let run () = print Format.std_formatter (compute ())
