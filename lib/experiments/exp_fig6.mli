(** FIG6 — closed-loop baseband transfer [|H₀₀(jω)|] at several
    [ω_UG/ω₀] ratios (paper Fig. 6; default {0.05, 0.1, 0.2}).

    Solid lines in the paper = eq. 38; marks = time-marching simulation;
    agreement within 2 %. The LTI approximation [A/(1+A)] is also
    tabulated to expose the bandwidth shift and the extra passband-edge
    peaking that grow with [ω_UG/ω₀]. Ratios beyond ≈0.28 are excluded:
    the sampled second-order charge-pump loop is unstable there (the
    Gardner bound — see {!Exp_fig7}), whatever the designed LTI
    margin. *)

type point = {
  omega_norm : float;  (** ω/ω_UG *)
  htm_mag : float;
  lti_mag : float;
  sim_mag : float option;  (** present at simulator spot frequencies *)
  sim_rel_err : float option;  (** |sim − htm|/|htm| *)
}

type curve = {
  ratio : float;
  points : point list;
  worst_sim_err : float;  (** max over the spot checks *)
}

(** [compute ()] — all three curves. [sim_points] spot frequencies per
    curve are simulated (default 6; 0 disables the simulator — handy for
    quick sweeps). Curves, grid points and simulator spot checks are all
    evaluated in parallel on [pool] (default [Parallel.Pool.default]);
    output is bit-identical for any pool size. *)
val compute :
  ?spec:Pll_lib.Design.spec ->
  ?ratios:float list ->
  ?points:int ->
  ?sim_points:int ->
  ?pool:Parallel.Pool.t ->
  unit ->
  curve list

val print : Format.formatter -> curve list -> unit
val run : unit -> unit
