(** FRACTIONAL — fractional-N synthesis and ΔΣ spur shaping.

    A fractional-N divider is a deliberate periodic time variation on
    top of the PFD's sampling — squarely inside the paper's framework.
    With [frac = 1/16] the first-order accumulator's residual is a
    16-step sawtooth of exactly one VCO period; the loop low-passes it
    onto the output as spurs at multiples of [ω₀/16]. The experiment
    uses a slow loop (ratio 0.01) so the spur frequency sits well above
    the loop bandwidth — the regime in which fractional-N is usable —
    and compares:

    - the measured first-order fundamental spur against the analytic
      sawtooth + |H₀₀| estimate (they agree to fractions of a dB);
    - first-order vs MASH 1-1 and MASH 1-1-1 noise shaping at the first
      two spur harmonics. *)

type row = {
  modulator : string;
  spur1_dbc : float;  (** measured, at ω₀/16 *)
  spur2_dbc : float;  (** measured, at 2ω₀/16 *)
}

type t = {
  rows : row list;
  predicted_first_order : float;
  ratio : float;  (** loop speed used *)
}

val compute : ?periods:int -> unit -> t
val print : Format.formatter -> t -> unit
val run : unit -> unit
