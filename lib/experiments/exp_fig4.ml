open Numeric

type row = {
  width_frac : float;
  theta_pulse : float;
  theta_impulse : float;
  rel_err : float;
}

let default_widths = [ 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 1e-1; 3e-1 ]

let compute ?(spec = Pll_lib.Design.default_spec) ?(widths = default_widths)
    ?pool () =
  let p = Pll_lib.Design.synthesize spec in
  let period = Pll_lib.Pll.period p in
  let icp = p.Pll_lib.Pll.filter.Pll_lib.Loop_filter.icp in
  (* current -> time-shift chain: Z_LF(s) * v0 / s *)
  let chain =
    Lti.Tf.mul
      (Pll_lib.Loop_filter.impedance p.Pll_lib.Pll.filter)
      (Pll_lib.Vco.tf p.Pll_lib.Pll.vco)
  in
  let ss = Lti.Ss.of_tf chain in
  Parallel.Sweep.map_list ?pool
    (fun width_frac ->
      let w = width_frac *. period in
      (* pulse: constant current over [0, w], then free evolution *)
      let _, gamma_w = Lti.Ss.discretize ss ~dt:w in
      let x_pulse_end = Array.map (fun g -> g *. icp) gamma_w in
      let phi_rest, _ = Lti.Ss.discretize ss ~dt:(period -. w) in
      let x_pulse = Rmat.mv phi_rest x_pulse_end in
      (* impulse of matching charge at t = 0 *)
      let phi_full, _ = Lti.Ss.discretize ss ~dt:period in
      let x_imp = Rmat.mv phi_full (Lti.Ss.impulse_state ss (icp *. w)) in
      let theta_pulse = Lti.Ss.output ss x_pulse 0.0 in
      let theta_impulse = Lti.Ss.output ss x_imp 0.0 in
      {
        width_frac;
        theta_pulse;
        theta_impulse;
        rel_err = Stats.rel_err theta_pulse theta_impulse;
      })
    widths

let typical_lock_width ?(spec = Pll_lib.Design.default_spec) () =
  let p = Pll_lib.Design.synthesize spec in
  let period = Pll_lib.Pll.period p in
  let w0 = Pll_lib.Pll.omega0 p in
  let stimulus =
    Sim.Behavioral.sine_modulation ~eps:(period /. 500.0) ~omega:(w0 /. 16.0)
  in
  let record = Sim.Transient.locked_run p ~stimulus ~periods:64 () in
  List.fold_left
    (fun acc (_, width) -> Stdlib.max acc (Float.abs width /. period))
    0.0 record.Sim.Behavioral.pulses

let print ppf rows =
  Report.section ppf "FIG4: finite charge-pump pulses vs Dirac impulses";
  Report.table ppf
    ~title:"end-of-period time-shift response, pulse vs matching impulse"
    ~header:[ "width/T"; "theta(T) pulse"; "theta(T) impulse"; "rel err" ]
    (List.map
       (fun r ->
         [
           Report.g r.width_frac;
           Printf.sprintf "%.6e" r.theta_pulse;
           Printf.sprintf "%.6e" r.theta_impulse;
           Printf.sprintf "%.3e" r.rel_err;
         ])
       rows)

let run () =
  let rows = compute () in
  print Format.std_formatter rows;
  Report.kv Format.std_formatter "typical in-lock pulse width (modulated run)"
    "%.2e of the period" (typical_lock_width ())
