type row = { omega_norm : float; mag_db : float; phase_deg : float }

let compute ?(spec = Pll_lib.Design.default_spec) ?(points = 33) ?pool () =
  let p = Pll_lib.Design.synthesize spec in
  let w_ug = Pll_lib.Design.omega_ug spec in
  let a = Pll_lib.Pll.open_loop_tf p in
  let sweep =
    Lti.Bode.sweep_tf ?pool a ~lo:(w_ug /. 100.0) ~hi:(w_ug *. 100.0) ~points
  in
  Array.to_list
    (Array.map
       (fun pt ->
         {
           omega_norm = pt.Lti.Bode.omega /. w_ug;
           mag_db = pt.Lti.Bode.mag_db;
           phase_deg = pt.Lti.Bode.phase_deg;
         })
       sweep)

let print ppf rows =
  Report.section ppf "FIG5: open-loop characteristic A(jw)";
  Report.table ppf ~title:"Bode data (frequency normalized to w_UG)"
    ~header:[ "w/w_UG"; "|A| dB"; "arg A deg" ]
    (List.map
       (fun r ->
         [ Report.g r.omega_norm; Report.f3 r.mag_db; Report.f3 r.phase_deg ])
       rows)

let run () = print Format.std_formatter (compute ())
