(** ISF — time-varying VCO study (the paper's §3.3 machinery, which its
    own experiments leave at the time-invariant special case).

    A real oscillator's impulse sensitivity function [v(t)] has
    harmonics: the control input couples differently at different
    points of the VCO cycle. Then the VCO HTM (eq. 25) is no longer
    diagonal, the scalar λ(s) of eq. 37 no longer tells the whole
    story — but the PFD is still a sampler, so the rank-one
    Sherman–Morrison closure (eqs. 29–34) still applies with
    [Ṽ(s) = (ω₀/2π)·H_VCO·H_LF·l] computed from truncated matrices.

    This experiment sweeps the relative first-harmonic ISF content
    [|v₁/v₀|] and reports how far the true baseband closed loop moves
    from the time-invariant prediction, plus the aliasing sidebands the
    ISF creates. *)

type row = {
  isf_ratio : float;  (** |v₁|/v₀ *)
  h00_mag : float;  (** |H00| with the full time-varying VCO, at the probe frequency *)
  h00_ti_mag : float;  (** same with the ISF harmonics zeroed *)
  deviation : float;  (** relative difference *)
  sideband_up : float;
      (** |H10|: baseband input converted to the band around ω₀ *)
  lu_agreement : float;
      (** rank-one closure vs generic LU — consistency check *)
}

val compute :
  ?spec:Pll_lib.Design.spec -> ?omega_frac:float -> ?n_harm:int -> unit -> row list

val print : Format.formatter -> row list -> unit
val run : unit -> unit
