(** ABLATION — quantifying the design choices called out in DESIGN.md.

    Three studies, none in the paper but each justifying one of its
    (or our) modeling decisions:

    - {b λ truncation}: error of the symmetric truncation
      [Σ over m from -M to M of A(s + jmω₀)] against the exact coth
      closed form, as a function of M — why the exact evaluation is the
      default (the sum converges only like 1/M because [A] decays as
      1/ω²).
    - {b HTM truncation}: error of the generic LU closed loop
      (eq. 28) against the rank-one closed form (eq. 34) as the number
      of retained harmonics grows — what "truncated" costs when the
      rank-one shortcut is not available (e.g. arbitrary PFDs).
    - {b loop-filter topology}: the effect of a third-order ripple pole
      on the *time-varying* phase margin and on the stability boundary —
      a designer ablation the LTI story gets doubly wrong. *)

type lambda_row = { terms : int; rel_err : float }

type htm_row = { n_harm : int; rel_err : float }

type filter_row = {
  ripple_pole_factor : float;
      (** ripple pole at [factor · ω_UG]; infinity = pure 2nd order *)
  pm_lti_deg : float;
  pm_eff_deg : float;  (** NaN when the sampled loop is unstable *)
  stable : bool;
}

type t = {
  lambda_rows : lambda_row list;
  htm_rows : htm_row list;
  filter_rows : filter_row list;
}

val compute : ?spec:Pll_lib.Design.spec -> unit -> t
val print : Format.formatter -> t -> unit
val run : unit -> unit
