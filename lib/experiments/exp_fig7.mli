(** FIG7 — effective unity-gain frequency and phase margin of λ(jω)
    versus ω_UG/ω₀ (paper Fig. 7).

    The upper plot of the figure is [ω_UG,eff/ω_UG]; the lower plot is
    the phase margin of λ with the LTI-predicted margin as a horizontal
    line. The paper's headline numbers: at [ω_UG/ω₀ = 0.1] the margin is
    already ≈9 % below the LTI prediction, degrading rapidly beyond. *)

val default_ratios : float list

val compute :
  ?spec:Pll_lib.Design.spec ->
  ?ratios:float list ->
  ?pool:Parallel.Pool.t ->
  unit ->
  Pll_lib.Analysis.ratio_point list

val print : Format.formatter -> Pll_lib.Analysis.ratio_point list -> unit
val run : unit -> unit
