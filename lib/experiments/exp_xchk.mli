(** XCHK — cross-validation of the independent formalisms.

    Not a paper figure: our own consistency experiment tying together
    four independently implemented routes to the same physics.

    - λ(s): exact coth closed form vs symmetric truncation vs sum of
      the truncated [H_VCO·H_LF] matrix entries vs the exact
      discrete-time model's [L(e^{sT})] (they agree to near machine
      precision — the last identity is impulse invariance).
    - closed-loop poles: eigenvalues of the discrete model map through
      [s = ln(z)/T] onto roots of [1 + λ(s) = 0].
    - closed-loop step response of the discrete model settles to 1
      (type-2 loop tracks phase steps exactly). *)

type lambda_row = {
  s_frac : float;  (** evaluation point, ω/ω₀ on the jω axis *)
  exact : Numeric.Cx.t;
  truncated_dev : float;
  matrix_dev : float;
  zmodel_dev : float;
}

type pole_row = {
  z_pole : Numeric.Cx.t;
  s_pole : Numeric.Cx.t;
  residual : float;  (** |1 + λ(s_pole)| *)
}

type t = {
  lambda_rows : lambda_row list;
  pole_rows : pole_row list;
  step_final_dev : float;  (** |θ_∞ − 1| of the discrete step response *)
}

val compute : ?spec:Pll_lib.Design.spec -> unit -> t
val print : Format.formatter -> t -> unit
val run : unit -> unit
