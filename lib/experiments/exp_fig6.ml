open Numeric

type point = {
  omega_norm : float;
  htm_mag : float;
  lti_mag : float;
  sim_mag : float option;
  sim_rel_err : float option;
}

type curve = { ratio : float; points : point list; worst_sim_err : float }

(* log-spaced integers in [1, top], deduplicated *)
let log_spaced_ints ~count ~top =
  if count <= 0 then []
  else begin
    let picks =
      List.init count (fun i ->
          let f = float_of_int i /. float_of_int (Stdlib.max 1 (count - 1)) in
          let x = exp (log 1.0 +. (f *. (log (float_of_int top) -. log 1.0))) in
          Stdlib.max 1 (Stdlib.min top (int_of_float (Float.round x))))
    in
    List.sort_uniq compare picks
  end

(* The paper's caption lists three ratios (partly garbled in the source
   text). A second-order charge-pump loop is hard-limited by the Gardner
   sampling bound near w_UG/w0 ~ 0.28 regardless of the designed LTI
   margin — see Exp_fig7 — so the reproduction uses three ratios inside
   the stable region, which show the same bandwidth shift and growing
   passband-edge peaking the paper describes. *)
let compute ?(spec = Pll_lib.Design.default_spec)
    ?(ratios = [ 0.05; 0.1; 0.2 ]) ?(points = 25) ?(sim_points = 6) ?pool () =
  Parallel.Sweep.map_list ?pool
    (fun ratio ->
      let sub_spec = Pll_lib.Design.with_ratio spec ratio in
      let p = Pll_lib.Design.synthesize sub_spec in
      let w0 = Pll_lib.Pll.omega0 p in
      let w_ug = Pll_lib.Design.omega_ug sub_spec in
      let h00 = Pll_lib.Pll.h00_fn p Pll_lib.Pll.Exact in
      let htm w = Cx.abs (h00 (Cx.jomega w)) in
      let lti w = Cx.abs (Pll_lib.Pll.h00_lti p (Cx.jomega w)) in
      (* analytic grid: up to just below the ω₀/2 alias edge *)
      let hi = Stdlib.min (10.0 *. w_ug) (0.49 *. w0) in
      let grid = Optimize.logspace (0.05 *. w_ug) hi points in
      let analytic =
        Array.to_list
          (Parallel.Sweep.grid ?pool
             (fun w ->
               {
                 omega_norm = w /. w_ug;
                 htm_mag = htm w;
                 lti_mag = lti w;
                 sim_mag = None;
                 sim_rel_err = None;
               })
             grid)
      in
      (* simulator spot checks at exact rationals j·ω₀/window *)
      let window = 48 in
      let top = int_of_float (0.47 *. float_of_int window) in
      let sim_rows =
        Parallel.Sweep.map_list ?pool
          (fun j ->
            let m = Sim.Extract.measure_h00 p ~harmonic:j ~window_periods:window () in
            let w = m.Sim.Extract.omega in
            {
              omega_norm = w /. w_ug;
              htm_mag = htm w;
              lti_mag = lti w;
              sim_mag = Some (Cx.abs m.Sim.Extract.measured);
              sim_rel_err = Some m.Sim.Extract.rel_err;
            })
          (log_spaced_ints ~count:sim_points ~top)
      in
      let all =
        List.sort
          (fun a b -> Float.compare a.omega_norm b.omega_norm)
          (analytic @ sim_rows)
      in
      let worst =
        List.fold_left
          (fun acc pt ->
            match pt.sim_rel_err with Some e -> Stdlib.max acc e | None -> acc)
          0.0 sim_rows
      in
      { ratio; points = all; worst_sim_err = worst })
    ratios

let print ppf curves =
  Report.section ppf "FIG6: closed-loop |H00(jw)| - HTM vs LTI vs time-marching";
  List.iter
    (fun c ->
      Report.kv ppf "curve" "w_UG/w0 = %g" c.ratio;
      Report.kv ppf "worst simulator-vs-HTM relative error" "%.4f (paper: within 0.02)"
        c.worst_sim_err;
      Report.table ppf
        ~title:(Printf.sprintf "|H00| at w_UG/w0 = %g" c.ratio)
        ~header:[ "w/w_UG"; "HTM |H00|"; "LTI |H00|"; "sim |H00|"; "sim relerr" ]
        (List.map
           (fun pt ->
             [
               Report.f4 pt.omega_norm;
               Report.f4 pt.htm_mag;
               Report.f4 pt.lti_mag;
               (match pt.sim_mag with Some m -> Report.f4 m | None -> "-");
               (match pt.sim_rel_err with Some e -> Report.f4 e | None -> "-");
             ])
           c.points))
    curves

let run () = print Format.std_formatter (compute ())
