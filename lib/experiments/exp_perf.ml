open Numeric

type row = { label : string; points : int; seconds : float; per_point : float }
type t = { rows : row list; speedup : float }

(* CPU-time measurement is this experiment's whole point: the timings
   feed only the perf report table, never a golden-snapshotted result,
   so the clock reads are exempt from the determinism rule. *)
let time_it f =
  let t0 = (Sys.time () [@lint.allow "nondeterminism"]) in
  f ();
  (Sys.time () [@lint.allow "nondeterminism"]) -. t0

let compute ?(spec = Pll_lib.Design.default_spec) () =
  let p = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 p in
  let grid = Optimize.logspace (w0 *. 1e-3) (w0 *. 0.49) 200 in
  let sink = ref Cx.zero in
  let closed_form_t =
    let h = Pll_lib.Pll.h00_fn p Pll_lib.Pll.Exact in
    time_it (fun () ->
        Array.iter (fun w -> sink := h (Cx.jomega w)) grid)
  in
  let truncated_t =
    let h = Pll_lib.Pll.h00_fn p (Pll_lib.Pll.Truncated 500) in
    time_it (fun () ->
        Array.iter (fun w -> sink := h (Cx.jomega w)) grid)
  in
  let generic_points = 20 in
  let generic_t =
    let ctx = Htm_core.Htm.ctx ~n_harm:30 ~omega0:w0 in
    let cl = Pll_lib.Pll.closed_loop_htm p in
    time_it (fun () ->
        Array.iter
          (fun w ->
            sink :=
              Cmat.get
                (Htm_core.Htm.to_matrix ctx cl (Cx.jomega w))
                (Htm_core.Htm.index_of_harmonic ctx 0)
                (Htm_core.Htm.index_of_harmonic ctx 0))
          (Array.sub grid 0 generic_points))
  in
  let sim_points = 4 in
  let sim_t =
    time_it (fun () ->
        List.iter
          (fun j ->
            sink :=
              (Sim.Extract.measure_h00 p ~harmonic:j ~window_periods:32 ()).Sim.Extract.measured)
          (List.init sim_points (fun i -> (4 * i) + 1)))
  in
  ignore !sink;
  let mk label points seconds =
    { label; points; seconds; per_point = seconds /. float_of_int points }
  in
  let rows =
    [
      mk "closed form (exact lambda, eq. 38)" 200 closed_form_t;
      mk "truncated lambda (500 terms)" 200 truncated_t;
      mk "generic truncated HTM (LU, N=30)" generic_points generic_t;
      mk "time-marching extraction" sim_points sim_t;
    ]
  in
  let speedup =
    (sim_t /. float_of_int sim_points)
    /. Stdlib.max 1e-9 (closed_form_t /. 200.0)
  in
  { rows; speedup }

let print ppf r =
  Report.section ppf "PERF: closed form vs time-marching (paper: seconds vs minutes)";
  Report.table ppf ~title:"CPU time per frequency-response point"
    ~header:[ "method"; "points"; "total s"; "s/point" ]
    (List.map
       (fun row ->
         [
           row.label;
           string_of_int row.points;
           Printf.sprintf "%.4f" row.seconds;
           Printf.sprintf "%.3e" row.per_point;
         ])
       r.rows);
  Report.kv ppf "speedup of closed form over time-marching (per point)" "%.0fx"
    r.speedup

let run () = print Format.std_formatter (compute ())
