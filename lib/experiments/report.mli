(** Plain-text table rendering for the experiment harness. *)

(** [table ppf ~title ~header rows] — fixed-width aligned table. *)
val table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit

(** Cell formatters. *)
val f3 : float -> string
(** 3 decimals *)

val f4 : float -> string
val g : float -> string
(** compact %g *)

val db : float -> string
(** value rendered as dB with 2 decimals *)

val yn : bool -> string

(** [section ppf name] — experiment banner. *)
val section : Format.formatter -> string -> unit

(** [kv ppf key fmt ...] — one "key: value" line. *)
val kv : Format.formatter -> string -> ('a, Format.formatter, unit) format -> 'a
