open Numeric

type lambda_row = {
  s_frac : float;
  exact : Cx.t;
  truncated_dev : float;
  matrix_dev : float;
  zmodel_dev : float;
}

type pole_row = { z_pole : Cx.t; s_pole : Cx.t; residual : float }

type t = {
  lambda_rows : lambda_row list;
  pole_rows : pole_row list;
  step_final_dev : float;
}

let compute ?(spec = Pll_lib.Design.default_spec) () =
  let p = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 p in
  let lam_exact = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
  let lam_tr = Pll_lib.Pll.lambda_fn p (Pll_lib.Pll.Truncated 3000) in
  let ctx = Htm_core.Htm.ctx ~n_harm:400 ~omega0:w0 in
  let zm = Pll_lib.Zmodel.of_pll p in
  let rel a b = Cx.abs (Cx.sub a b) /. Stdlib.max 1e-300 (Cx.abs a) in
  let lambda_rows =
    List.map
      (fun s_frac ->
        let s = Cx.jomega (s_frac *. w0) in
        let exact = lam_exact s in
        {
          s_frac;
          exact;
          truncated_dev = rel exact (lam_tr s);
          matrix_dev = rel exact (Pll_lib.Pll.lambda_matrix ctx p s);
          zmodel_dev =
            rel exact (Pll_lib.Zmodel.open_loop_response zm (s_frac *. w0));
        })
      [ 0.05; 0.13; 0.27; 0.41; 0.49 ]
  in
  let pole_rows =
    List.filter_map
      (fun z ->
        (* only poles inside a sensible band; skip near-zero z whose log
           is meaningless for this check *)
        if Cx.abs z < 1e-6 then None
        else begin
          let s = Cx.scale (1.0 /. Pll_lib.Pll.period p) (Cx.log z) in
          let residual = Cx.abs (Cx.add Cx.one (lam_exact s)) in
          Some { z_pole = z; s_pole = s; residual }
        end)
      (Pll_lib.Zmodel.closed_loop_poles zm)
  in
  let step = Pll_lib.Zmodel.step_response zm ~n:400 in
  let step_final_dev = Float.abs (step.(399) -. 1.0) in
  { lambda_rows; pole_rows; step_final_dev }

let print ppf r =
  Report.section ppf "XCHK: cross-validation of independent formalisms";
  Report.table ppf
    ~title:"lambda(jw): closed form vs three independent routes (rel dev)"
    ~header:[ "w/w0"; "lambda (exact)"; "trunc dev"; "matrix dev"; "zmodel dev" ]
    (List.map
       (fun row ->
         [
           Report.g row.s_frac;
           Cx.to_string row.exact;
           Printf.sprintf "%.2e" row.truncated_dev;
           Printf.sprintf "%.2e" row.matrix_dev;
           Printf.sprintf "%.2e" row.zmodel_dev;
         ])
       r.lambda_rows);
  Report.table ppf
    ~title:"discrete closed-loop poles vs roots of 1 + lambda(s)"
    ~header:[ "z pole"; "s = ln(z)/T"; "|1+lambda(s)|" ]
    (List.map
       (fun row ->
         [
           Cx.to_string row.z_pole;
           Cx.to_string row.s_pole;
           Printf.sprintf "%.2e" row.residual;
         ])
       r.pole_rows);
  Report.kv ppf "discrete step response |final - 1|" "%.2e" r.step_final_dev

let run () = print Format.std_formatter (compute ())
