(** GRID — the plan/execute evaluation demonstrated end to end.

    Compiles the closed-loop HTM of the default design into a grid plan
    ({!Pll_lib.Pll.closed_loop_plan}, exact-λ rank-one fast path),
    streams a log grid through it, and reports the deviations against
    the three independent references: the paper's closed form H₀₀
    (eq. 38), the per-point structured evaluation, and the all-dense
    boxed oracle. Also compares the closed-loop peaking/bandwidth
    metrics computed from the closed form against the planned-HTM grid
    path ({!Pll_lib.Analysis.closed_loop_metrics_htm}). All deviations
    are expected at rounding level — the machine-checked version of this
    table is the differential suite in [test/test_grid.ml]. *)

type row = {
  s_frac : float;  (** ω / ω₀ *)
  h00_planned : Numeric.Cx.t;
  closed_form_dev : float;
  per_point_dev : float;
  oracle_dev : float;
}

type t = {
  n_harm : int;
  root_shape : string;
  rows : row list;
  grid_points : int;
  grid_oracle_max_dev : float;
  metrics_closed : Pll_lib.Analysis.closed_loop_metrics;
  metrics_htm : Pll_lib.Analysis.closed_loop_metrics;
}

val compute : ?spec:Pll_lib.Design.spec -> ?n_harm:int -> unit -> t
val print : Format.formatter -> t -> unit
val run : unit -> unit
