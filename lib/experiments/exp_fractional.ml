type row = { modulator : string; spur1_dbc : float; spur2_dbc : float }

type t = {
  rows : row list;
  predicted_first_order : float;
  ratio : float;
}

let b = 16
let ratio = 0.01

let compute ?(periods = 4096) () =
  let n_int = 64 in
  let frac = 1.0 /. float_of_int b in
  let spec =
    {
      Pll_lib.Design.default_spec with
      Pll_lib.Design.n_div = float_of_int n_int +. frac;
      ratio;
    }
  in
  let pll = Pll_lib.Design.synthesize spec in
  let measure_periods =
    (* leakage-free: a multiple of b, covering the second half of the run *)
    periods / 2 / b * b
  in
  let rows =
    List.map
      (fun (name, modulator) ->
        let record =
          Sim.Fractional.run pll
            { Sim.Fractional.modulator; n_int; frac }
            ~steps_per_period:64 ~periods ()
        in
        {
          modulator = name;
          spur1_dbc =
            Sim.Fractional.spur_dbc record ~pll ~frac_denominator:b ~harmonic:1
              ~periods:measure_periods;
          spur2_dbc =
            Sim.Fractional.spur_dbc record ~pll ~frac_denominator:b ~harmonic:2
              ~periods:measure_periods;
        })
      [
        ("first-order", Sim.Fractional.First_order);
        ("MASH 1-1", Sim.Fractional.Mash2);
        ("MASH 1-1-1", Sim.Fractional.Mash3);
      ]
  in
  {
    rows;
    predicted_first_order =
      Sim.Fractional.predicted_first_order_spur_dbc pll ~frac_denominator:b;
    ratio;
  }

let print ppf r =
  Report.section ppf "FRACTIONAL: delta-sigma fractional-N spurs";
  Report.kv ppf "configuration" "N = 64 + 1/%d, loop ratio %g" b r.ratio;
  Report.kv ppf "analytic first-order fundamental" "%.1f dBc"
    r.predicted_first_order;
  Report.table ppf ~title:"measured fractional spurs (VCO output, dBc)"
    ~header:[ "modulator"; "spur @ w0/16"; "spur @ 2w0/16" ]
    (List.map
       (fun row ->
         [
           row.modulator;
           Printf.sprintf "%.1f" row.spur1_dbc;
           Printf.sprintf "%.1f" row.spur2_dbc;
         ])
       r.rows)

let run () = print Format.std_formatter (compute ())
