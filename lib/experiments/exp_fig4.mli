(** FIG4 — finite PFD pulses vs Dirac impulses (paper Fig. 4).

    The sampling-PFD model replaces each charge-pump pulse (width [w],
    height [I_cp]) by an impulse of weight [I_cp·w]. The paper argues
    the two are equivalent when [w] is small against the loop-filter/VCO
    time constant. This experiment quantifies that claim on the exact
    linear dynamics: the end-of-period state response to a rectangular
    pulse is compared with the response to the matching impulse, sweeping
    the pulse width over decades. The deviation shrinks linearly with
    the width (the leading error is the w/2 centroid shift of the
    pulse). *)

type row = {
  width_frac : float;  (** pulse width / reference period *)
  theta_pulse : float;  (** time-shift response at t = T, pulse drive *)
  theta_impulse : float;  (** same, impulse drive *)
  rel_err : float;
}

(** Widths are analyzed in parallel on [pool] (default
    [Parallel.Pool.default]); rows are bit-identical for any pool
    size. *)
val compute :
  ?spec:Pll_lib.Design.spec ->
  ?widths:float list ->
  ?pool:Parallel.Pool.t ->
  unit ->
  row list

(** Typical in-lock pulse widths from the behavioral simulator, for
    context: (max width)/T during a modulated locked run. *)
val typical_lock_width : ?spec:Pll_lib.Design.spec -> unit -> float

val print : Format.formatter -> row list -> unit
val run : unit -> unit
