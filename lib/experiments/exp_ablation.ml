open Numeric

type lambda_row = { terms : int; rel_err : float }
type htm_row = { n_harm : int; rel_err : float }

type filter_row = {
  ripple_pole_factor : float;
  pm_lti_deg : float;
  pm_eff_deg : float;
  stable : bool;
}

type t = {
  lambda_rows : lambda_row list;
  htm_rows : htm_row list;
  filter_rows : filter_row list;
}

let lambda_truncation p =
  let w0 = Pll_lib.Pll.omega0 p in
  let s = Cx.jomega (0.23 *. w0) in
  let exact = Pll_lib.Pll.lambda p s in
  List.map
    (fun terms ->
      let lam = Pll_lib.Pll.lambda_fn p (Pll_lib.Pll.Truncated terms) in
      { terms; rel_err = Cx.abs (Cx.sub exact (lam s)) /. Cx.abs exact })
    [ 5; 20; 100; 500; 2000; 10000 ]

let htm_truncation p =
  let w0 = Pll_lib.Pll.omega0 p in
  let s = Cx.jomega (0.23 *. w0) in
  let exact = Pll_lib.Pll.h00 p s in
  let cl = Pll_lib.Pll.closed_loop_htm p in
  List.map
    (fun n_harm ->
      let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
      let m = Htm_core.Htm.to_matrix ctx cl s in
      let c = Htm_core.Htm.index_of_harmonic ctx 0 in
      let h00 = Cmat.get m c c in
      { n_harm; rel_err = Cx.abs (Cx.sub exact h00) /. Cx.abs exact })
    [ 2; 5; 10; 20; 40; 80 ]

let with_ripple_pole spec factor =
  let base = Pll_lib.Design.synthesize spec in
  match factor with
  | f when Float.equal f Float.infinity -> base
  | f ->
      let w_pole = f *. Pll_lib.Design.omega_ug spec in
      let filter =
        match base.Pll_lib.Pll.filter.Pll_lib.Loop_filter.topology with
        | Pll_lib.Loop_filter.Second_order { r; c1; c2 } ->
            Pll_lib.Loop_filter.make
              (Pll_lib.Loop_filter.Third_order
                 { r; c1; c2; r3 = r; c3 = 1.0 /. (w_pole *. r) })
              ~icp:base.Pll_lib.Pll.filter.Pll_lib.Loop_filter.icp
        | _ -> base.Pll_lib.Pll.filter
      in
      Pll_lib.Pll.make ~fref:spec.Pll_lib.Design.fref
        ~n_div:spec.Pll_lib.Design.n_div ~filter ~vco:base.Pll_lib.Pll.vco ()

let filter_ablation spec =
  List.map
    (fun factor ->
      let p = with_ripple_pole spec factor in
      let lti = Pll_lib.Analysis.lti_report p in
      let stable = Pll_lib.Analysis.is_stable_tv p in
      let eff =
        if stable then Pll_lib.Analysis.effective_report p
        else
          { Pll_lib.Analysis.omega_ug = None;
            phase_margin_deg = None;
            gain_margin_db = None }
      in
      {
        ripple_pole_factor = factor;
        pm_lti_deg =
          Option.value ~default:Float.nan lti.Pll_lib.Analysis.phase_margin_deg;
        pm_eff_deg =
          Option.value ~default:Float.nan eff.Pll_lib.Analysis.phase_margin_deg;
        stable;
      })
    [ Float.infinity; 20.0; 10.0; 5.0; 3.0; 2.0 ]

let compute ?(spec = Pll_lib.Design.default_spec) () =
  let p = Pll_lib.Design.synthesize spec in
  let spec_fast = Pll_lib.Design.with_ratio spec 0.2 in
  {
    lambda_rows = lambda_truncation p;
    htm_rows = htm_truncation p;
    filter_rows = filter_ablation spec_fast;
  }

let print ppf r =
  Report.section ppf "ABLATION: truncation orders and filter topology";
  Report.table ppf
    ~title:"lambda truncation vs exact coth closed form (w = 0.23 w0)"
    ~header:[ "terms"; "rel err" ]
    (List.map
       (fun row -> [ string_of_int row.terms; Printf.sprintf "%.3e" row.rel_err ])
       r.lambda_rows);
  Report.table ppf
    ~title:"generic LU closed loop vs rank-one closed form"
    ~header:[ "harmonics"; "rel err of H00" ]
    (List.map
       (fun row -> [ string_of_int row.n_harm; Printf.sprintf "%.3e" row.rel_err ])
       r.htm_rows);
  Report.table ppf
    ~title:"third-order ripple pole at factor*w_UG (ratio 0.2)"
    ~header:[ "pole factor"; "PM LTI"; "PM lambda"; "TV stable" ]
    (List.map
       (fun row ->
         [
           (if Float.equal row.ripple_pole_factor Float.infinity then
              "none (2nd order)"
            else Report.g row.ripple_pole_factor);
           Report.f3 row.pm_lti_deg;
           Report.f3 row.pm_eff_deg;
           Report.yn row.stable;
         ])
       r.filter_rows)

let run () = print Format.std_formatter (compute ())
