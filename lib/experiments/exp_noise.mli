(** NOISE — Monte-Carlo validation of the spectral predictions.

    White VCO frequency noise and white reference time-shift noise are
    injected into the behavioral model (deterministic seeds); the output
    time-shift PSD is Welch-estimated and compared band-by-band against
    the time-varying prediction of {!Pll_lib.Noise} and against the
    classical LTI prediction. The headline: for reference noise the LTI
    analysis under-predicts the output by roughly the number of folded
    bands (two orders of magnitude here) — folding is not a correction
    term, it is the answer. *)

type row = {
  injection : string;
  band_lo : float;  (** fraction of ω₀ *)
  band_hi : float;
  measured : float;  (** band-averaged two-sided PSD *)
  ratio_tv : float;  (** measured / time-varying prediction *)
  ratio_lti : float;  (** measured / LTI prediction *)
}

val compute : ?spec:Pll_lib.Design.spec -> ?periods:int -> unit -> row list
val print : Format.formatter -> row list -> unit
val run : unit -> unit
