open Numeric

type t = {
  harmonics : int;
  omega_frac : float;
  closed_form : float array array;
  generic : float array array;
  max_rel_dev : float;
  sampler_rank : int;
}

let compute ?(spec = Pll_lib.Design.default_spec) ?(harmonics = 2)
    ?(n_harm = 30) ?(omega_frac = 0.2) () =
  let p = Pll_lib.Design.synthesize spec in
  let w0 = Pll_lib.Pll.omega0 p in
  let s = Cx.jomega (omega_frac *. w0) in
  let ctx = Htm_core.Htm.ctx ~n_harm ~omega0:w0 in
  let size = (2 * harmonics) + 1 in
  (* closed form, eq. 36: H_{n,m} = A(s + jnω₀)/(1 + λ(s)) for every m *)
  let lam = Pll_lib.Pll.lambda_fn p Pll_lib.Pll.Exact in
  let denom = Cx.add Cx.one (lam s) in
  let a = Pll_lib.Pll.a_of_s p in
  let closed_form =
    Array.init size (fun i ->
        let n = i - harmonics in
        let num = a (Cx.add s (Cx.jomega (float_of_int n *. w0))) in
        let v = Cx.abs (Cx.div num denom) in
        Array.make size v)
  in
  (* generic truncated feedback via LU on the full composition tree *)
  let cl = Pll_lib.Pll.closed_loop_htm p in
  let m = Htm_core.Htm.to_matrix ctx cl s in
  let center = Htm_core.Htm.index_of_harmonic ctx 0 in
  let generic =
    Array.init size (fun i ->
        Array.init size (fun k ->
            Cx.abs
              (Cmat.get m (center + i - harmonics) (center + k - harmonics))))
  in
  let max_rel_dev = ref 0.0 in
  for i = 0 to size - 1 do
    for k = 0 to size - 1 do
      max_rel_dev :=
        Stdlib.max !max_rel_dev
          (Stats.rel_err closed_form.(i).(k) generic.(i).(k))
    done
  done;
  {
    harmonics;
    omega_frac;
    closed_form;
    generic;
    max_rel_dev = !max_rel_dev;
    sampler_rank = Pll_lib.Pfd.sampler_matrix_rank ctx;
  }

let print ppf r =
  Report.section ppf "FIG2: band-to-band signal transfer map |H_{n,m}(jw)|";
  Report.kv ppf "evaluation offset" "w = %g * w0" r.omega_frac;
  Report.kv ppf "closed form (eq. 36) vs truncated LU closed loop, max rel deviation"
    "%.3e" r.max_rel_dev;
  Report.kv ppf "sampling-PFD HTM rank" "%d (aliasing: all bands fold everywhere)"
    r.sampler_rank;
  let header =
    "out\\in"
    :: List.init
         ((2 * r.harmonics) + 1)
         (fun k -> Printf.sprintf "m=%+d" (k - r.harmonics))
  in
  let rows =
    List.init
      ((2 * r.harmonics) + 1)
      (fun i ->
        Printf.sprintf "n=%+d" (i - r.harmonics)
        :: Array.to_list (Array.map Report.f4 r.closed_form.(i)))
  in
  Report.table ppf ~title:"closed-form magnitudes" ~header rows

let run () = print Format.std_formatter (compute ())
