let table ppf ~title ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Report.table: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    rows;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@.%s@.%s@.%s@." title (line header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) rows

let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let g x = Printf.sprintf "%g" x
let db x = Printf.sprintf "%.2f dB" x
let yn b = if b then "yes" else "no"

let section ppf name =
  let bar = String.make (String.length name + 8) '=' in
  Format.fprintf ppf "@.%s@.=== %s ===@.%s@." bar name bar

let kv ppf key fmt =
  Format.fprintf ppf "%s: " key;
  Format.kfprintf (fun p -> Format.fprintf p "@.") ppf fmt
