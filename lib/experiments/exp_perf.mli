(** PERF — runtime comparison (paper §5 prose claim).

    "Evaluating (38) is only a matter of seconds while it takes several
    minutes for the time-marching simulations to complete." Here the
    exact closed form, the truncated sum, the generic truncated-matrix
    method and the time-marching extraction are timed on the same
    frequency-response task; the speedup of the closed form over
    time-marching per frequency point is reported. Fine-grained
    micro-benchmarks live in [bench/main.ml] (Bechamel). *)

type row = {
  label : string;
  points : int;  (** frequency points evaluated *)
  seconds : float;  (** CPU time *)
  per_point : float;
}

type t = { rows : row list; speedup : float }

val compute : ?spec:Pll_lib.Design.spec -> unit -> t
val print : Format.formatter -> t -> unit
val run : unit -> unit
