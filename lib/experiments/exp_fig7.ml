let default_ratios =
  [ 0.02; 0.05; 0.08; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4; 0.45; 0.5 ]

let compute ?(spec = Pll_lib.Design.default_spec) ?(ratios = default_ratios)
    ?pool () =
  Pll_lib.Analysis.ratio_sweep ?pool spec ratios

let print ppf rows =
  Report.section ppf "FIG7: effective UGF and phase margin of lambda vs w_UG/w0";
  (match rows with
  | r :: _ ->
      Report.kv ppf "LTI phase margin (horizontal line)" "%.2f deg" r.Pll_lib.Analysis.pm_lti_deg
  | [] -> ());
  Report.table ppf ~title:"time-varying loop metrics"
    ~header:
      [ "w_UG/w0"; "w_UG,eff/w_UG"; "PM(lambda) deg"; "PM loss %"; "peaking"; "stable" ]
    (List.map
       (fun r ->
         let open Pll_lib.Analysis in
         [
           Report.g r.ratio;
           Report.f4 r.omega_ug_eff_norm;
           Report.f3 r.pm_eff_deg;
           Report.f3 (100.0 *. (1.0 -. (r.pm_eff_deg /. r.pm_lti_deg)));
           Report.db r.peak_db;
           Report.yn r.stable;
         ])
       rows)

let run () = print Format.std_formatter (compute ())
