open Numeric

type t =
  | Sampling
  | Mixing of { gain : float; harmonics : int }

let sampling = Sampling
let mixing ~gain = Mixing { gain; harmonics = 1 }

let htm = function
  | Sampling -> Htm_core.Htm.sampler
  | Mixing { gain; harmonics } ->
      (* gain * cos(omega0 t): coefficients gain/2 at k = +-1 *)
      let n = Stdlib.max 1 harmonics in
      let coeffs = Array.make ((2 * n) + 1) Cx.zero in
      coeffs.(n + 1) <- Cx.of_float (gain /. 2.0);
      coeffs.(n - 1) <- Cx.of_float (gain /. 2.0);
      Htm_core.Htm.periodic_gain coeffs

let lti_gain pfd ~omega0 =
  match pfd with
  | Sampling -> omega0 /. (2.0 *. Float.pi)
  | Mixing _ -> 0.0
(* a mixer has no DC-to-DC term: its LTI approximation at baseband
   vanishes, which is exactly why sampling detectors dominate *)

let sampler_matrix_rank ctx =
  let m = Htm_core.Htm.to_matrix ctx Htm_core.Htm.sampler Cx.one in
  (* Gaussian-elimination rank with a crude threshold; the sampler is
     exactly rank one so this stays robust. *)
  let n = Cmat.rows m in
  let a = Array.init n (fun i -> Array.init n (fun k -> Cmat.get m i k)) in
  let rank = ref 0 in
  let row = ref 0 in
  for col = 0 to n - 1 do
    if !row < n then begin
      (* find pivot *)
      let best = ref !row and best_mag = ref (Cx.abs a.(!row).(col)) in
      for i = !row + 1 to n - 1 do
        let mag = Cx.abs a.(i).(col) in
        if mag > !best_mag then begin
          best := i;
          best_mag := mag
        end
      done;
      if !best_mag > 1e-12 then begin
        let tmp = a.(!row) in
        a.(!row) <- a.(!best);
        a.(!best) <- tmp;
        for i = !row + 1 to n - 1 do
          let factor = Cx.div a.(i).(col) a.(!row).(col) in
          for k = col to n - 1 do
            a.(i).(k) <- Cx.sub a.(i).(k) (Cx.mul factor a.(!row).(k))
          done
        done;
        incr rank;
        incr row
      end
    end
  done;
  !rank
