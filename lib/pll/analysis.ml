open Numeric

type loop_report = {
  omega_ug : float option;
  phase_margin_deg : float option;
  gain_margin_db : float option;
}

type closed_loop_metrics = {
  dc_mag : float;
  peak_mag : float;
  peak_db : float;
  peak_freq : float;
  bandwidth_3db : float option;
}

let of_margins (r : Lti.Margins.report) =
  {
    omega_ug = r.Lti.Margins.unity_gain_freq;
    phase_margin_deg = r.Lti.Margins.phase_margin_deg;
    gain_margin_db = r.Lti.Margins.gain_margin_db;
  }

let lti_report p =
  let a = Lti.Tf.freq_response (Pll.open_loop_tf p) in
  let w0 = Pll.omega0 p in
  of_margins (Lti.Margins.analyze a ~lo:(w0 *. 1e-5) ~hi:(w0 *. 10.0))

let effective_report ?(method_ = Pll.Exact) p =
  let lam = Pll.lambda_fn p method_ in
  let w0 = Pll.omega0 p in
  let f w = lam (Cx.jomega w) in
  (* λ is ω₀-periodic on the jω axis with poles at every mω₀: the
     meaningful crossover lives strictly inside (0, ω₀/2). *)
  of_margins (Lti.Margins.analyze f ~lo:(w0 *. 1e-5) ~hi:(w0 *. 0.4999))

(* peak/bandwidth extraction shared by the closed-form and the
   HTM-grid metric paths: [mags] is |H₀₀| on the grid [ws], [mag] is a
   sequential evaluator used only by the refinement searches. *)
let metrics_of_grid ~points ~ws ~mags ~mag =
  let dc_mag = mags.(0) in
  let peak_idx = ref 0 in
  Array.iteri (fun i m -> if m > mags.(!peak_idx) then peak_idx := i) mags;
  (* refine the peak with a golden search around the best grid point *)
  let peak_freq, peak_mag =
    if !peak_idx = 0 || !peak_idx = points - 1 then
      (ws.(!peak_idx), mags.(!peak_idx))
    else begin
      let a = ws.(!peak_idx - 1) and b = ws.(!peak_idx + 1) in
      let w = Optimize.golden_min (fun w -> -.mag w) a b in
      (w, mag w)
    end
  in
  let threshold = dc_mag /. sqrt 2.0 in
  let bandwidth_3db =
    let rec scan i =
      if i >= points then None
      else if mags.(i) < threshold then
        if i = 0 then Some ws.(0)
        else
          Some (Optimize.brent (fun w -> mag w -. threshold) ws.(i - 1) ws.(i))
      else scan (i + 1)
    in
    (* start past the peak region only if the response peaks above DC *)
    scan 0
  in
  {
    dc_mag;
    peak_mag;
    peak_db = Stats.db (peak_mag /. dc_mag);
    peak_freq;
    bandwidth_3db;
  }

let closed_loop_metrics ?(method_ = Pll.Exact) ?(points = 800) ?pool p =
  let h = Pll.h00_fn p method_ in
  let w0 = Pll.omega0 p in
  let mag w = Cx.abs (h (Cx.jomega w)) in
  let lo = w0 *. 1e-5 and hi = w0 *. 0.4999 in
  let ws = Optimize.logspace lo hi points in
  let mags = Parallel.Sweep.grid ?pool mag ws in
  metrics_of_grid ~points ~ws ~mags ~mag

let closed_loop_metrics_htm ?(n_harm = 12) ?(points = 800) ?pool p =
  (* same metrics from the truncated closed-loop HTM instead of the
     time-invariant closed form: valid for ISF VCOs and mixing PFDs.
     The grid runs through per-lane plans; the peak/bandwidth
     refinement searches reuse one sequential plan. *)
  let c = { Htm_core.Htm.n_harm; omega0 = Pll.omega0 p } in
  let w0 = Pll.omega0 p in
  let lo = w0 *. 1e-5 and hi = w0 *. 0.4999 in
  let ws = Optimize.logspace lo hi points in
  let mags =
    Parallel.Sweep.grid_local ?pool
      ~local:(fun () -> Pll.closed_loop_plan c p)
      (fun plan w -> Cx.abs (Htm_core.Plan.baseband plan (Cx.jomega w)))
      ws
  in
  let plan = Pll.closed_loop_plan c p in
  let mag w = Cx.abs (Htm_core.Plan.baseband plan (Cx.jomega w)) in
  metrics_of_grid ~points ~ws ~mags ~mag

type ratio_point = {
  ratio : float;
  pm_lti_deg : float;
  omega_ug_eff_norm : float;
  pm_eff_deg : float;
  peak_db : float;
  stable : bool;
}

let is_stable_tv p = Zmodel.is_stable (Zmodel.of_pll p)

let ratio_sweep ?pool spec ratios =
  Parallel.Sweep.map_list ?pool
    (fun ratio ->
      let p = Design.synthesize (Design.with_ratio spec ratio) in
      let lti = lti_report p in
      let eff = effective_report p in
      let metrics = closed_loop_metrics ?pool p in
      let w_ug = Design.omega_ug (Design.with_ratio spec ratio) in
      {
        ratio;
        pm_lti_deg = Option.value ~default:Float.nan lti.phase_margin_deg;
        omega_ug_eff_norm =
          (match eff.omega_ug with
          | Some w -> w /. w_ug
          | None -> Float.nan);
        pm_eff_deg = Option.value ~default:Float.nan eff.phase_margin_deg;
        peak_db = metrics.peak_db;
        stable = is_stable_tv p;
      })
    ratios

let design_for_effective_margin spec ~target_deg =
  (* The map (LTI target) -> (effective margin) is monotone over the
     usable range; walk it with the current shortfall as the step. *)
  let effective lti_target =
    let candidate = { spec with Design.phase_margin_deg = lti_target } in
    let p = Design.synthesize candidate in
    if not (is_stable_tv p) then None
    else
      Option.map
        (fun pm -> (candidate, pm))
        (effective_report p).phase_margin_deg
  in
  let rec refine lti_target iterations =
    if iterations = 0 || lti_target >= 88.0 then None
    else
      match effective lti_target with
      | None -> refine (lti_target +. 5.0) (iterations - 1)
      | Some (candidate, pm) ->
          if Float.abs (pm -. target_deg) < 0.05 then Some (candidate, pm)
          else refine (lti_target +. (target_deg -. pm)) (iterations - 1)
  in
  refine target_deg 40

let pp_opt pp_v ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some v -> pp_v ppf v

let pp_loop_report ppf r =
  Format.fprintf ppf "ω_UG=%a rad/s, PM=%a°, GM=%a dB"
    (pp_opt (fun f x -> Format.fprintf f "%.6g" x))
    r.omega_ug
    (pp_opt (fun f x -> Format.fprintf f "%.2f" x))
    r.phase_margin_deg
    (pp_opt (fun f x -> Format.fprintf f "%.2f" x))
    r.gain_margin_db
