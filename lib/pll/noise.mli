(** Phase-noise propagation through the time-varying closed loop.

    This is the extension the paper's machinery enables: because the
    sampler aliases every band into every band, stationary noise on the
    reference folds down with weight [|H_{0,m}(jω)|²] from each band
    [m]. With the closed form [H_{0,m} = A(jω)/(1+λ(jω))] (independent
    of [m]), the time-averaged output PSD at baseband is

    [S_out(ω) = |H₀₀(jω)|² · Σ_m S_ref(ω + m ω₀)]  (reference noise)

    [S_out(ω) = |1−H₀₀|² S_vco(ω) + |H₀₀|² Σ_{m≠0} S_vco(ω + m ω₀)]
    (VCO noise, which enters after the sampler through the error
    transfer [(I+G)^{-1}]).

    PSDs are two-sided, in (time-shift)²·s/rad as a function of angular
    frequency; only ratios and shapes matter to the experiments. *)

type psd = float -> float

(** [white level] — flat PSD. *)
val white : float -> psd

(** [one_over_f2 k] — [k/ω²], the open-loop VCO phase-noise shape
    ([Demir et al.]'s diffusive phase noise). *)
val one_over_f2 : float -> psd

(** [lorentzian ~level ~corner] — flat to [corner], then 1/ω². *)
val lorentzian : level:float -> corner:float -> psd

(** [reference_noise_out p ?folds ?pool s_ref w] — output PSD at
    baseband offset [w] from reference noise, folding [2*folds+1] bands
    (default 50). Alias terms are evaluated on [pool] (default
    [Parallel.Pool.default]) and reduced in a fixed order, so the sum is
    bit-identical to the sequential one for any pool size. *)
val reference_noise_out :
  Pll.t -> ?folds:int -> ?pool:Parallel.Pool.t -> psd -> float -> float

(** [reference_noise_out_htm p ?n_harm ?pool s_ref ws] — the HTM-native
    folded output PSD over a whole frequency grid:
    [S_out(ω) = Σ_m |H_{0,m}(jω)|² S_ref(ω + m ω₀)] with the weights
    taken from row 0 of the truncated closed-loop HTM, realized point by
    point through grid-batched plans ({!Pll.closed_loop_plan}, one per
    lane). Each band carries its own transfer weight, so this remains
    valid for ISF VCOs and mixing PFDs where [H_{0,m}] depends on [m];
    folding range is the truncation [-n_harm..n_harm]. For a
    time-invariant sampling loop it agrees with {!reference_noise_out}
    up to the folding tail (bands beyond the truncation). *)
val reference_noise_out_htm :
  Pll.t -> ?n_harm:int -> ?pool:Parallel.Pool.t -> psd -> float array -> float array

(** [vco_noise_out p ?folds ?pool s_vco w] — output PSD from open-loop
    VCO noise. *)
val vco_noise_out :
  Pll.t -> ?folds:int -> ?pool:Parallel.Pool.t -> psd -> float -> float

(** [lti_reference_noise_out p s_ref w] — what classical LTI analysis
    predicts: no folding, [|H₀₀,LTI|² S_ref(ω)]. *)
val lti_reference_noise_out : Pll.t -> psd -> float -> float

(** [rms_jitter s ~lo ~hi] — RMS time jitter from a (two-sided, given
    for ω > 0) output PSD: [σ = sqrt((1/π) ∫_lo^hi S(ω) dω)]. *)
val rms_jitter : psd -> lo:float -> hi:float -> float
