open Numeric

type t = {
  fref : float;
  n_div : float;
  filter : Loop_filter.t;
  vco : Vco.t;
  pfd : Pfd.t;
}

let make ~fref ~n_div ~filter ~vco ?(pfd = Pfd.sampling) () =
  if fref <= 0.0 then invalid_arg "Pll.make: fref must be positive";
  if n_div <= 0.0 then invalid_arg "Pll.make: n_div must be positive";
  { fref; n_div; filter; vco; pfd }

let omega0 p = 2.0 *. Float.pi *. p.fref
let period p = 1.0 /. p.fref

let open_loop_tf p =
  (* A(s) = (omega0/2pi) * (v0/s) * H_LF(s) = fref * v0 * Icp * Z(s) / s *)
  let sampling_gain = Pfd.lti_gain p.pfd ~omega0:(omega0 p) in
  Lti.Tf.scale sampling_gain
    (Lti.Tf.mul (Vco.tf p.vco) (Loop_filter.tf p.filter))

let a_of_s p = Lti.Tf.eval (open_loop_tf p)

type lambda_method = Exact | Truncated of int

let lambda_fn p method_ =
  let a = open_loop_tf p in
  let w0 = omega0 p in
  match method_ with
  | Truncated terms ->
      let eval = Lti.Tf.eval a in
      fun s ->
        let acc = ref (eval s) in
        for m = 1 to terms do
          let shift = Cx.jomega (float_of_int m *. w0) in
          acc := Cx.add !acc (Cx.add (eval (Cx.add s shift)) (eval (Cx.sub s shift)))
        done;
        !acc
  | Exact ->
      let rat = Lti.Tf.to_rat a in
      if not (Rat.is_strictly_proper rat) then
        invalid_arg "Pll.lambda_fn: open loop must be strictly proper";
      let expansion = Partial_fraction.expand rat in
      fun s ->
        List.fold_left
          (fun acc { Partial_fraction.pole; order; residue } ->
            Cx.add acc
              (Cx.mul residue
                 (Special.harmonic_sum ~k:order ~omega0:w0 (Cx.sub s pole))))
          Cx.zero expansion.Partial_fraction.terms

let lambda p s = lambda_fn p Exact s

let h00_fn p method_ =
  let a = Lti.Tf.eval (open_loop_tf p) in
  let lam = lambda_fn p method_ in
  fun s -> Cx.div (a s) (Cx.add Cx.one (lam s))

let h00 p s = h00_fn p Exact s

let htm_element_fn p method_ ~n =
  let a = Lti.Tf.eval (open_loop_tf p) in
  let lam = lambda_fn p method_ in
  let w0 = omega0 p in
  fun s ->
    let shifted = Cx.add s (Cx.jomega (float_of_int n *. w0)) in
    Cx.div (a shifted) (Cx.add Cx.one (lam s))

let h00_lti p s =
  let a = a_of_s p s in
  Cx.div a (Cx.add Cx.one a)

let open_loop_htm p =
  Htm_core.Htm.series_list
    [ Vco.htm p.vco;
      Htm_core.Htm.lti_rat (Lti.Tf.to_rat (Loop_filter.tf p.filter));
      Pfd.htm p.pfd ]

let closed_loop_htm p = Htm_core.Htm.feedback (open_loop_htm p)

let closed_loop_plan ?(exact_lambda = true) ctx p =
  (* the Special fast path: for a time-invariant VCO behind the sampler
     the closed loop realizes as rank one, and its Sherman–Morrison
     denominator term can be replaced by the exact λ(s) of eq. 37
     (coth lattice sums) instead of the truncated [vᵀu] — the planned
     evaluation then carries no truncation error in the denominator *)
  let lambda =
    match p.pfd with
    | Pfd.Sampling when exact_lambda && Vco.is_time_invariant p.vco ->
        Some (lambda_fn p Exact)
    | _ -> None
  in
  Htm_core.Plan.make ?lambda ctx (closed_loop_htm p)

let forward_chain_matrix ctx p s =
  (* H_VCO(s) * H_LF(s) as a truncated matrix *)
  let open Htm_core in
  let chain =
    Htm.series (Vco.htm p.vco)
      (Htm.lti_rat (Lti.Tf.to_rat (Loop_filter.tf p.filter)))
  in
  Htm.to_matrix ctx chain s

let v_tilde ctx p s =
  match p.pfd with
  | Pfd.Sampling ->
      let m = forward_chain_matrix ctx p s in
      let l = Cvec.ones (Cmat.rows m) in
      Cvec.scale
        (Cx.of_float (omega0 p /. (2.0 *. Float.pi)))
        (Cmat.mv m l)
  | Pfd.Mixing _ ->
      invalid_arg "Pll.v_tilde: rank-one form requires a sampling PFD"

let lambda_matrix ctx p s =
  let v = v_tilde ctx p s in
  Cvec.sum v

let closed_loop_rank_one ctx p s =
  let v = v_tilde ctx p s in
  let lam = Cvec.sum v in
  let denom = Cx.add Cx.one lam in
  let n = Cvec.dim v in
  (* H = V l^T / (1 + lambda): every column equals V / (1 + lambda) *)
  Cmat.init n n (fun i _ -> Cx.div (Cvec.get v i) denom)
