(** Feedback divider (prescaler).

    In the paper's time-shift phase convention
    ([V(t) = x(t + θ(t))], θ in seconds) an ideal ÷N divider is the
    *identity* on θ: when every VCO edge moves by θ seconds, every N-th
    edge still moves by θ seconds. The division ratio only scales the
    VCO sensitivity [v₀ = K_vco/(N·f_ref)] (see {!Vco}).

    In the more common radian convention θ_rad = ω_osc·θ the divider is
    the familiar 1/N gain; both views are provided to keep unit
    conversions honest in examples and tests. *)

type t = { ratio : float }

val make : float -> t

(** Time-shift transfer (identity). *)
val time_shift_gain : t -> float

(** Radian-phase transfer (1/N). *)
val radian_gain : t -> float

(** [htm d] — identity HTM in the time-shift convention. *)
val htm : t -> Htm_core.Htm.t

(** [to_radians d ~fref theta] — seconds of time shift at the divided
    output to radians of phase at the divider output:
    [θ_rad = 2π f_ref θ]. *)
val to_radians : t -> fref:float -> float -> float

(** [vco_radians_of_time_shift d ~fref theta] — radians at the *VCO*
    output: [θ_rad,vco = 2π N f_ref θ]. *)
val vco_radians_of_time_shift : t -> fref:float -> float -> float
