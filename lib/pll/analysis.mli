(** Loop analysis: LTI predictions vs. the paper's time-varying ones.

    The LTI report analyzes [A(jω)] — classical textbook analysis. The
    effective report analyzes [λ(jω)], the effective open-loop gain of
    eq. 37, whose unity-gain frequency and phase margin are the
    quantities plotted in the paper's Fig. 7. λ is ω₀-periodic along the
    imaginary axis (it has poles at every multiple of ω₀), so the
    crossover search is confined to (0, ω₀/2). *)

type loop_report = {
  omega_ug : float option;  (** unity-gain frequency, rad/s *)
  phase_margin_deg : float option;
  gain_margin_db : float option;
}

type closed_loop_metrics = {
  dc_mag : float;  (** |H₀₀| at the low-frequency end (≈1 in lock) *)
  peak_mag : float;  (** max |H₀₀(jω)| over the band *)
  peak_db : float;
  peak_freq : float;  (** rad/s *)
  bandwidth_3db : float option;
      (** first ω where |H₀₀| drops 3 dB below [dc_mag] *)
}

(** [lti_report p] — margins of the classical open loop [A(jω)]. *)
val lti_report : Pll.t -> loop_report

(** [effective_report ?method_ p] — margins of λ(jω), searched over
    (0, ω₀/2). Default method: [Exact]. *)
val effective_report : ?method_:Pll.lambda_method -> Pll.t -> loop_report

(** [closed_loop_metrics ?method_ ?points ?pool p] — peaking and
    bandwidth of [|H₀₀(jω)|] (eq. 38) on a log grid up to ω₀/2. The grid
    is evaluated on [pool] (default [Parallel.Pool.default]); results
    are bit-identical for any pool size. *)
val closed_loop_metrics :
  ?method_:Pll.lambda_method ->
  ?points:int ->
  ?pool:Parallel.Pool.t ->
  Pll.t ->
  closed_loop_metrics

(** [closed_loop_metrics_htm ?n_harm ?points ?pool p] — the same
    metrics computed from [|H₀₀|] of the {b truncated closed-loop HTM}
    (grid-batched through {!Pll.closed_loop_plan}, one plan per lane)
    instead of the time-invariant closed form: this path is also valid
    for ISF VCOs and mixing PFDs, where eq. 38 does not apply. For a
    time-invariant VCO with the sampling PFD the two agree to rounding
    (the plan substitutes the exact λ). *)
val closed_loop_metrics_htm :
  ?n_harm:int ->
  ?points:int ->
  ?pool:Parallel.Pool.t ->
  Pll.t ->
  closed_loop_metrics

(** Row of the Fig. 7 sweep. *)
type ratio_point = {
  ratio : float;  (** ω_UG/ω₀ *)
  pm_lti_deg : float;  (** LTI phase margin — the horizontal line *)
  omega_ug_eff_norm : float;  (** ω_UG,eff / ω_UG — upper plot *)
  pm_eff_deg : float;  (** phase margin of λ — lower plot *)
  peak_db : float;  (** closed-loop peaking, Fig. 6's other symptom *)
  stable : bool;  (** closed loop stable per the discrete-time model *)
}

(** [ratio_sweep ?pool spec ratios] — re-synthesizes the loop at each
    ratio and evaluates the Fig. 7 quantities. Ratios are analyzed in
    parallel on [pool] (default [Parallel.Pool.default]); row order and
    every float are bit-identical for any pool size. *)
val ratio_sweep :
  ?pool:Parallel.Pool.t -> Design.spec -> float list -> ratio_point list

(** [is_stable_tv p] — time-varying stability: all closed-loop poles of
    the exact discrete-time model inside the unit circle. *)
val is_stable_tv : Pll.t -> bool

(** [design_for_effective_margin spec ~target_deg] — iterate the *LTI*
    margin target until the *time-varying* margin (phase margin of λ)
    reaches [target_deg]: the design loop closed on the paper's analysis
    instead of the textbook one. Returns the over-designed spec and the
    achieved effective margin, or [None] when no second-order design can
    deliver the target at this loop speed (fast loops hit the Gardner
    bound — see EXPERIMENTS.md). *)
val design_for_effective_margin :
  Design.spec -> target_deg:float -> (Design.spec * float) option

val pp_loop_report : Format.formatter -> loop_report -> unit
