open Numeric

type t = { v0 : float; harmonics : Cx.t array option }

let sensitivity ~kvco ~n_div ~fref =
  if kvco <= 0.0 || n_div <= 0.0 || fref <= 0.0 then
    invalid_arg "Vco.sensitivity: kvco, n_div and fref must be positive";
  kvco /. (n_div *. fref)

let time_invariant ~kvco ~n_div ~fref =
  { v0 = sensitivity ~kvco ~n_div ~fref; harmonics = None }

let with_isf ~kvco ~n_div ~fref ~harmonics =
  let v0 = sensitivity ~kvco ~n_div ~fref in
  let k = List.length harmonics in
  let arr = Array.make ((2 * k) + 1) Cx.zero in
  arr.(k) <- Cx.of_float v0;
  List.iteri
    (fun i r ->
      let c = Cx.scale v0 r in
      arr.(k + i + 1) <- c;
      arr.(k - i - 1) <- Cx.conj c)
    harmonics;
  { v0; harmonics = Some arr }

let is_time_invariant vco = Option.is_none vco.harmonics

let isf_coeffs vco ~max_harmonic =
  let out = Array.make ((2 * max_harmonic) + 1) Cx.zero in
  (match vco.harmonics with
  | None -> out.(max_harmonic) <- Cx.of_float vco.v0
  | Some src ->
      let src_max = Array.length src / 2 in
      for k = -max_harmonic to max_harmonic do
        if abs k <= src_max then out.(k + max_harmonic) <- src.(k + src_max)
      done);
  out

let tf vco = Lti.Tf.scale vco.v0 Lti.Tf.integrator

(* rational leaves so the plan/execute grid layer fills these diagonals
   without boxing (see Htm.lti_rat) *)
let htm vco =
  match vco.harmonics with
  | None -> Htm_core.Htm.lti_rat (Lti.Tf.to_rat (tf vco))
  | Some coeffs ->
      Htm_core.Htm.series
        (Htm_core.Htm.lti_rat (Lti.Tf.to_rat Lti.Tf.integrator))
        (Htm_core.Htm.periodic_gain coeffs)
