(** Voltage-controlled oscillator small-signal model (paper §3.3).

    Following [Demir–Mehrotra–Roychowdhury], a perturbation [Δu(t)] on
    the control input moves the oscillator's time shift [θ] (seconds, as
    in the paper's signal model [V_osc(t) = x_osc(t + θ(t))]) according
    to [dθ/dt = v(t + θ)·Δu(t)] where [v] is the T-periodic impulse
    sensitivity function (ISF). Near lock ([θ/T ≪ 1]) this linearizes to
    the LPTV operator "multiply by v(t), then integrate" whose HTM is
    eq. 25.

    The time-invariant special case [v(t) = v₀] gives the diagonal HTM
    [v₀/s] used in the paper's experiments; the general case is the
    "time-varying VCO" extension the paper points to.

    A prescaler (÷N) is part of the VCO model (paper's footnote): an
    edge time shift of [θ] seconds on the VCO output is a time shift of
    the same [θ] seconds on the divided output, so the divider is the
    identity in this time-shift formulation; it only enters through the
    sensitivity [v₀ = K_vco / (N·f_ref)]. *)

type t = {
  v0 : float;  (** DC ISF component: time-shift sensitivity, 1/V *)
  harmonics : Numeric.Cx.t array option;
      (** full ISF Fourier coefficients (odd length, DC at center,
          including [v0] at the center slot); [None] = time-invariant *)
}

(** [time_invariant ~kvco ~n_div ~fref] — [v₀ = K_vco/(N·f_ref)] with
    [K_vco] in Hz/V. *)
val time_invariant : kvco:float -> n_div:float -> fref:float -> t

(** [with_isf ~kvco ~n_div ~fref ~harmonics] — time-varying ISF given as
    relative harmonics [r_k] (the actual ISF is [v₀·(1 + Σ_{k≠0} r_k
    e^{jkω₀t})]); [harmonics] lists [r_k] for [k = 1..]; conjugate
    symmetry is applied automatically so the ISF is real. *)
val with_isf :
  kvco:float -> n_div:float -> fref:float -> harmonics:Numeric.Cx.t list -> t

(** [isf_coeffs vco ~max_harmonic] — padded/truncated coefficient array
    (odd length [2*max_harmonic+1]) ready for HTM construction. *)
val isf_coeffs : t -> max_harmonic:int -> Numeric.Cx.t array

val is_time_invariant : t -> bool

(** [htm vco] — eq. 25: [series (lti 1/s) (periodic_gain v)]. *)
val htm : t -> Htm_core.Htm.t

(** [tf vco] — LTI approximation [v₀/s].*)
val tf : t -> Lti.Tf.t
