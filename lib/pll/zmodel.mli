(** Exact discrete-time PLL model (the [Hein & Scott 1988] /
    [Gardner 1980] baseline, in exact state-space form).

    Between two sampling instants the loop is autonomous; each PFD
    impulse kicks the loop-filter/VCO state by [B·e_k]. With
    [P(s) = I_cp·Z_LF(s)·v₀/s = T·A(s)] realized as [(A, B, C)] and
    [Φ = e^{AT}]:

    [x_{k+1} = Φ(x_k + B e_k)],  [θ_k = C x_k],  [e_k = θref_k − θ_k].

    The open loop is [L(z) = C (zI−Φ)^{-1} Φ B]. Because [P] has
    relative degree ≥ 2 (so its impulse response vanishes at 0), the
    impulse-invariance identity makes [L(e^{jωT})] equal the paper's
    effective open-loop gain [λ(jω) = Σ_m A(jω + jmω₀)] *exactly* — the
    two formalisms are property-tested against each other through
    entirely different numerics (matrix exponential vs. coth lattice
    sums). *)

type t = {
  phi : Numeric.Rmat.t;  (** [e^{AT}] *)
  b : float array;
  c : float array;
  period : float;
}

(** [of_pll p] — requires a time-invariant VCO and a sampling PFD.
    @raise Invalid_argument otherwise. *)
val of_pll : Pll.t -> t

(** [open_loop p] is [L(z)] as an explicit z-rational. *)
val open_loop : t -> Lti.Zdomain.t

(** [closed_loop p] is [L/(1+L)]. *)
val closed_loop : t -> Lti.Zdomain.t

(** [open_loop_response m w] is [L(e^{jwT})]. *)
val open_loop_response : t -> float -> Numeric.Cx.t

(** [closed_loop_poles m] — eigenvalues of [Φ(I − B C)]. *)
val closed_loop_poles : t -> Numeric.Cx.t list

val is_stable : ?tol:float -> t -> bool

(** [predicted_s_poles m] — the continuous-frequency images
    [s = ln(z)/T] (principal branch) of the closed-loop z-poles; these
    are roots of [1 + λ(s) = 0]. *)
val predicted_s_poles : t -> Numeric.Cx.t list

(** [step_response m ~n] — sampled phase [θ_k] for a unit reference
    phase step. *)
val step_response : t -> n:int -> float array
