open Numeric

type psd = float -> float

let white level _ = level

let one_over_f2 k w =
  let w2 = w *. w in
  if Float.equal w2 0.0 then Float.infinity else k /. w2

let lorentzian ~level ~corner w = level /. (1.0 +. ((w /. corner) ** 2.0))

(* Alias terms of the folding sums, laid out in the order the original
   sequential loop accumulated them — [s(w); s(w+ω₀); s(w-ω₀); ...] —
   so the parallel evaluation + in-order reduction of [Sweep.sum] is
   bit-identical to the historical left-to-right sum. *)
let alias_term ~omega0 s w i =
  if i = 0 then s w
  else begin
    let shift = float_of_int ((i + 1) / 2) *. omega0 in
    if i land 1 = 1 then s (w +. shift) else s (w -. shift)
  end

let fold_sum ?pool ~omega0 ~folds s w =
  Parallel.Sweep.sum ?pool ((2 * folds) + 1) (alias_term ~omega0 s w)

let reference_noise_out p ?(folds = 50) ?pool s_ref w =
  let h = Cx.abs (Pll.h00 p (Cx.jomega w)) in
  let folded = fold_sum ?pool ~omega0:(Pll.omega0 p) ~folds s_ref w in
  h *. h *. folded

let vco_noise_out p ?(folds = 50) ?pool s_vco w =
  let h00 = Pll.h00 p (Cx.jomega w) in
  let err = Cx.sub Cx.one h00 in
  let direct = Cx.norm2 err *. s_vco w in
  let omega0 = Pll.omega0 p in
  (* skip the m = 0 term: VCO noise at baseband enters through the error
     transfer instead (the [direct] term) *)
  let folded_rest =
    Parallel.Sweep.sum ?pool (2 * folds) (fun i ->
        alias_term ~omega0 s_vco w (i + 1))
  in
  direct +. (Cx.norm2 h00 *. folded_rest)

let lti_reference_noise_out p s_ref w =
  let h = Cx.abs (Pll.h00_lti p (Cx.jomega w)) in
  h *. h *. s_ref w

let rms_jitter s ~lo ~hi =
  if lo <= 0.0 || hi <= lo then invalid_arg "Noise.rms_jitter: need 0 < lo < hi";
  (* log-substitution: ∫ S dω = ∫ S(e^u) e^u du — PSDs span decades *)
  let integral =
    Quad.simpson ~tol:1e-14
      (fun u ->
        let w = exp u in
        s w *. w)
      (log lo) (log hi)
  in
  sqrt (integral /. Float.pi)
