open Numeric

type psd = float -> float

let white level _ = level

let one_over_f2 k w =
  let w2 = w *. w in
  if w2 = 0.0 then Float.infinity else k /. w2

let lorentzian ~level ~corner w = level /. (1.0 +. ((w /. corner) ** 2.0))

let fold_sum ~omega0 ~folds s w =
  let acc = ref (s w) in
  for m = 1 to folds do
    let shift = float_of_int m *. omega0 in
    acc := !acc +. s (w +. shift) +. s (w -. shift)
  done;
  !acc

let reference_noise_out p ?(folds = 50) s_ref w =
  let h = Cx.abs (Pll.h00 p (Cx.jomega w)) in
  let folded = fold_sum ~omega0:(Pll.omega0 p) ~folds s_ref w in
  h *. h *. folded

let vco_noise_out p ?(folds = 50) s_vco w =
  let h00 = Pll.h00 p (Cx.jomega w) in
  let err = Cx.sub Cx.one h00 in
  let direct = Cx.norm2 err *. s_vco w in
  let omega0 = Pll.omega0 p in
  let folded_rest =
    let acc = ref 0.0 in
    for m = 1 to folds do
      let shift = float_of_int m *. omega0 in
      acc := !acc +. s_vco (w +. shift) +. s_vco (w -. shift)
    done;
    !acc
  in
  direct +. (Cx.norm2 h00 *. folded_rest)

let lti_reference_noise_out p s_ref w =
  let h = Cx.abs (Pll.h00_lti p (Cx.jomega w)) in
  h *. h *. s_ref w

let rms_jitter s ~lo ~hi =
  if lo <= 0.0 || hi <= lo then invalid_arg "Noise.rms_jitter: need 0 < lo < hi";
  (* log-substitution: ∫ S dω = ∫ S(e^u) e^u du — PSDs span decades *)
  let integral =
    Quad.simpson ~tol:1e-14
      (fun u ->
        let w = exp u in
        s w *. w)
      (log lo) (log hi)
  in
  sqrt (integral /. Float.pi)
