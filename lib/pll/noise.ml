open Numeric

type psd = float -> float

let white level _ = level

let one_over_f2 k w =
  let w2 = w *. w in
  if Float.equal w2 0.0 then Float.infinity else k /. w2

let lorentzian ~level ~corner w = level /. (1.0 +. ((w /. corner) ** 2.0))

(* Alias terms of the folding sums, laid out in the order the original
   sequential loop accumulated them — [s(w); s(w+ω₀); s(w-ω₀); ...] —
   so the parallel evaluation + in-order reduction of [Sweep.sum] is
   bit-identical to the historical left-to-right sum. *)
let alias_term ~omega0 s w i =
  if i = 0 then s w
  else begin
    let shift = float_of_int ((i + 1) / 2) *. omega0 in
    if i land 1 = 1 then s (w +. shift) else s (w -. shift)
  end

let fold_sum ?pool ~omega0 ~folds s w =
  Parallel.Sweep.sum ?pool ((2 * folds) + 1) (alias_term ~omega0 s w)

let reference_noise_out p ?(folds = 50) ?pool s_ref w =
  let h = Cx.abs (Pll.h00 p (Cx.jomega w)) in
  let folded = fold_sum ?pool ~omega0:(Pll.omega0 p) ~folds s_ref w in
  h *. h *. folded

let reference_noise_out_htm p ?(n_harm = 12) ?pool s_ref ws =
  (* HTM-native folding over a whole grid: each point realizes the
     closed-loop HTM through a per-lane plan and accumulates
     S_out(ω) = Σ_m |H_{0,m}(jω)|² S_ref(ω + m ω₀) from row 0 of the
     truncated matrix (m from -n_harm to n_harm, in that fixed order).
     Unlike [reference_noise_out], each band gets its own transfer
     weight, so this path stays valid for ISF VCOs and mixing PFDs
     where H_{0,m} depends on m; the folding range is the truncation
     itself rather than a separate [folds] parameter. *)
  let omega0 = Pll.omega0 p in
  let c = { Htm_core.Htm.n_harm; omega0 } in
  let i0 = Htm_core.Htm.index_of_harmonic c 0 in
  Parallel.Sweep.grid_local ?pool
    ~local:(fun () -> Pll.closed_loop_plan c p)
    (fun plan w ->
      let sm = Htm_core.Plan.eval plan (Cx.jomega w) in
      let acc = ref 0.0 in
      for m = -n_harm to n_harm do
        let h = Htm_core.Smat.get sm i0 (Htm_core.Htm.index_of_harmonic c m) in
        acc := !acc +. (Cx.norm2 h *. s_ref (w +. (float_of_int m *. omega0)))
      done;
      !acc)
    ws

let vco_noise_out p ?(folds = 50) ?pool s_vco w =
  let h00 = Pll.h00 p (Cx.jomega w) in
  let err = Cx.sub Cx.one h00 in
  let direct = Cx.norm2 err *. s_vco w in
  let omega0 = Pll.omega0 p in
  (* skip the m = 0 term: VCO noise at baseband enters through the error
     transfer instead (the [direct] term) *)
  let folded_rest =
    Parallel.Sweep.sum ?pool (2 * folds) (fun i ->
        alias_term ~omega0 s_vco w (i + 1))
  in
  direct +. (Cx.norm2 h00 *. folded_rest)

let lti_reference_noise_out p s_ref w =
  let h = Cx.abs (Pll.h00_lti p (Cx.jomega w)) in
  h *. h *. s_ref w

let rms_jitter s ~lo ~hi =
  if lo <= 0.0 || hi <= lo then invalid_arg "Noise.rms_jitter: need 0 < lo < hi";
  (* log-substitution: ∫ S dω = ∫ S(e^u) e^u du — PSDs span decades *)
  let integral =
    Quad.simpson ~tol:1e-14
      (fun u ->
        let w = exp u in
        s w *. w)
      (log lo) (log hi)
  in
  sqrt (integral /. Float.pi)
