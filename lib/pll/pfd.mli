(** Phase-frequency detector models (paper §3.1).

    The sampling PFD measures the phase error once per reference period
    and, when its output pulses are narrow relative to the loop-filter
    time constant, acts as multiplication of the error by a Dirac
    impulse train (Fig. 4, eqs. 16–20):

    [H_PFD(s) = (ω₀/2π)·l·lᵀ]  —  a rank-one HTM: sampling aliases every
    input band into every output band with equal weight.

    A multiplying (mixer-type) detector is provided as the "arbitrary
    PFD" extension the paper mentions: multiplication by a periodic
    carrier, a banded Toeplitz HTM rather than a rank-one one. *)

type t =
  | Sampling  (** charge-pump PFD in the impulse-train approximation *)
  | Mixing of { gain : float; harmonics : int }
      (** multiplication by [gain·cos(ω₀t)] truncated to [harmonics] *)

val sampling : t
val mixing : gain:float -> t

(** [htm pfd] — HTM of the detector alone (the charge-pump current and
    filter impedance live in {!Loop_filter}). *)
val htm : t -> Htm_core.Htm.t

(** [lti_gain pfd ~omega0] — the baseband (0,0) gain used by the
    classical LTI approximation: [ω₀/2π] for the sampler. *)
val lti_gain : t -> omega0:float -> float

(** [sampler_matrix_rank ctx] — numerical rank of the realized sampler
    HTM (always 1; exported for the aliasing invariant test). *)
val sampler_matrix_rank : Htm_core.Htm.ctx -> int
