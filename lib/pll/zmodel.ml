open Numeric

type t = { phi : Rmat.t; b : float array; c : float array; period : float }

let of_pll p =
  if not (Vco.is_time_invariant p.Pll.vco) then
    invalid_arg "Zmodel.of_pll: requires a time-invariant VCO";
  (match p.Pll.pfd with
  | Pfd.Sampling -> ()
  | Pfd.Mixing _ -> invalid_arg "Zmodel.of_pll: requires a sampling PFD");
  let period = Pll.period p in
  (* P(s) = T * A(s): impulse-weight (seconds of phase error) to
     time-shift response of the filter/VCO chain *)
  let chain = Lti.Tf.scale period (Pll.open_loop_tf p) in
  let ss = Lti.Ss.of_tf chain in
  let phi = Rmat.expm (Rmat.scale period ss.Lti.Ss.a) in
  { phi; b = ss.Lti.Ss.b; c = ss.Lti.Ss.c; period }

let open_loop m =
  Lti.Zdomain.from_state_space ~phi:m.phi ~b:(Rmat.mv m.phi m.b) ~c:m.c

let closed_loop m = Lti.Zdomain.feedback_unity (open_loop m)

let open_loop_response m w =
  Lti.Zdomain.freq_response (open_loop m) ~period:m.period w

let closed_loop_poles m =
  let n = Rmat.rows m.phi in
  let bc = Rmat.init n n (fun i k -> m.b.(i) *. m.c.(k)) in
  let acl = Rmat.mul m.phi (Rmat.sub (Rmat.identity n) bc) in
  Rmat.eigenvalues acl

let is_stable ?(tol = 1e-9) m =
  List.for_all (fun z -> Cx.abs z < 1.0 -. tol) (closed_loop_poles m)

let predicted_s_poles m =
  List.map
    (fun z -> Cx.scale (1.0 /. m.period) (Cx.log z))
    (List.filter (fun z -> Cx.abs z > 0.0) (closed_loop_poles m))

let step_response m ~n =
  let order = Rmat.rows m.phi in
  let x = ref (Array.make order 0.0) in
  Array.init n (fun _ ->
      let theta =
        let acc = ref 0.0 in
        Array.iteri (fun i ci -> acc := !acc +. (ci *. !x.(i))) m.c;
        !acc
      in
      let e = 1.0 -. theta in
      let kicked = Array.mapi (fun i xi -> xi +. (m.b.(i) *. e)) !x in
      x := Rmat.mv m.phi kicked;
      theta)
