(** Charge-pump loop filters (Fig. 3).

    The loop filter of a charge-pump PLL is the transimpedance
    [H_LF(s) = I_cp · Z_LF(s)] (eq. 21) from the pump current to the VCO
    control voltage. The classical second-order topology — a series
    [R, C₁] branch in parallel with [C₂] — gives the open loop of the
    paper's Fig. 5: two poles at DC (one from [Z_LF], one from the VCO),
    one finite pole and one zero. *)

type topology =
  | Second_order of { r : float; c1 : float; c2 : float }
      (** series R-C₁ in parallel with C₂ *)
  | Third_order of { r : float; c1 : float; c2 : float; r3 : float; c3 : float }
      (** second-order core followed by an R₃-C₃ ripple pole (buffered
          cascade approximation) *)
  | Custom of Lti.Tf.t  (** arbitrary transimpedance Z(s) in Ω *)

type t = { topology : topology; icp : float  (** pump current, A *) }

val make : topology -> icp:float -> t

(** [of_netlist netlist ~icp ?sense ()] — build the filter from a
    circuit description: the charge pump drives node 1; the control
    voltage is sensed at [sense] (default: node 1). The transimpedance
    is extracted exactly by modified nodal analysis
    ({!Circuit.Mna.transimpedance}), so arbitrary passive (and
    VCVS-buffered) networks can be used without hand-derived
    formulas. *)
val of_netlist : Circuit.Netlist.t -> icp:float -> ?sense:int -> unit -> t

(** [impedance f] is [Z_LF(s)] in Ω. *)
val impedance : t -> Lti.Tf.t

(** [tf f] is [H_LF(s) = I_cp·Z_LF(s)]: V per (A·s impulse ⋅ s⁻¹)…
    i.e. the voltage response to the pump current. *)
val tf : t -> Lti.Tf.t

(** [zero_freq f] / [pole_freq f] — the finite zero and non-DC pole of a
    second/third-order topology in rad/s.
    @raise Invalid_argument for [Custom]. *)
val zero_freq : t -> float

val pole_freq : t -> float

(** [synthesize_second_order ~omega_ug ~gamma ~kdc] returns [(r, c1, c2)]
    for a second-order filter with zero at [omega_ug/gamma], pole at
    [omega_ug*gamma], and total capacitance chosen so that
    [kdc = 1/(C₁+C₂)] matches the loop-gain normalization computed by
    {!Design}. *)
val synthesize_second_order :
  omega_ug:float -> gamma:float -> ctotal:float -> float * float * float

val pp : Format.formatter -> t -> unit
