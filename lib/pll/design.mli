(** Loop-design synthesis.

    Produces the paper's reference loop shape (Fig. 5: two poles at DC,
    one zero, one finite pole) at any requested [ω_UG/ω₀] ratio with a
    prescribed *LTI* phase margin, using the standard γ-factor placement
    (zero at [ω_UG/γ], pole at [ω_UG·γ], [γ = tan(45° + φ_m/2)]).

    Every experiment sweeps this synthesis over ratios so that — exactly
    as in the paper — the normalized open-loop characteristic is held
    fixed while the loop speed moves relative to the reference
    frequency. *)

type spec = {
  fref : float;  (** reference frequency, Hz *)
  n_div : float;
  icp : float;  (** charge-pump current, A *)
  kvco : float;  (** VCO gain, Hz/V *)
  ratio : float;  (** target [ω_UG/ω₀] *)
  phase_margin_deg : float;  (** target LTI phase margin *)
}

(** A sensible default: 1 MHz reference, ÷64, 100 µA pump, 20 MHz/V
    VCO, 55° LTI phase margin, ratio 0.1. *)
val default_spec : spec

(** [synthesize spec] — returns the PLL with a second-order charge-pump
    filter realizing the spec; the LTI unity-gain frequency and phase
    margin land on the spec values by construction. *)
val synthesize : spec -> Pll.t

(** [with_ratio spec r] — same spec at a different [ω_UG/ω₀]. *)
val with_ratio : spec -> float -> spec

(** [gamma_of_phase_margin pm_deg] — the pole/zero spread
    [γ = tan(45° + φ_m/2)]. *)
val gamma_of_phase_margin : float -> float

(** [omega_ug spec] — the target unity-gain frequency in rad/s. *)
val omega_ug : spec -> float

